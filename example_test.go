package manetkit_test

import (
	"fmt"
	"time"

	"manetkit"
)

// Example reproduces the paper's headline capability in a dozen lines:
// deploy a reactive routing protocol on an emulated five-node chain and
// send data end to end — the route is discovered on demand.
func Example() {
	clk := manetkit.NewVirtualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := manetkit.NewNetwork(clk, 1)
	addrs := manetkit.Addrs(5)
	stacks, err := manetkit.NewStacks(net, addrs, manetkit.StackOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer func() {
		for _, s := range stacks {
			s.Close()
		}
	}()
	if err := manetkit.BuildLine(net, addrs, manetkit.DefaultQuality()); err != nil {
		fmt.Println(err)
		return
	}
	for _, s := range stacks {
		if _, err := s.DeployDYMO(manetkit.DYMOConfig{}); err != nil {
			fmt.Println(err)
			return
		}
	}
	stacks[4].OnDeliver(func(src manetkit.Addr, payload []byte) {
		fmt.Printf("%v received %q from %v\n", stacks[4].Addr(), payload, src)
	})
	if err := stacks[0].SendData(addrs[4], []byte("hello")); err != nil {
		fmt.Println(err)
		return
	}
	clk.Advance(time.Second)
	// Output: 10.0.0.5 received "hello" from 10.0.0.1
}

// ExampleStack_EnableFisheye shows a fine-grained runtime reconfiguration:
// deploying the fisheye component automatically interposes it in the
// TC_OUT event path; undeploying heals the path.
func ExampleStack_EnableFisheye() {
	clk := manetkit.NewVirtualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := manetkit.NewNetwork(clk, 1)
	s, err := manetkit.NewStack(net, manetkit.MustParseAddr("10.0.0.1"), manetkit.StackOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer s.Close()
	if _, err := s.DeployOLSR(manetkit.OLSRConfig{}); err != nil {
		fmt.Println(err)
		return
	}
	if err := s.EnableFisheye(nil); err != nil {
		fmt.Println(err)
		return
	}
	inter, _ := s.Manager().Chain("TC_OUT")
	fmt.Println("TC_OUT interposers:", inter)
	if err := s.DisableFisheye(); err != nil {
		fmt.Println(err)
		return
	}
	inter, _ = s.Manager().Chain("TC_OUT")
	fmt.Println("after removal:", len(inter))
	// Output:
	// TC_OUT interposers: [fisheye]
	// after removal: 0
}

// ExampleCoordinate switches a whole running network from proactive OLSR
// to reactive DYMO atomically.
func ExampleCoordinate() {
	clk := manetkit.NewVirtualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := manetkit.NewNetwork(clk, 1)
	addrs := manetkit.Addrs(3)
	stacks, err := manetkit.NewStacks(net, addrs, manetkit.StackOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer func() {
		for _, s := range stacks {
			s.Close()
		}
	}()
	manetkit.BuildLine(net, addrs, manetkit.DefaultQuality())
	for _, s := range stacks {
		if _, err := s.DeployOLSR(manetkit.OLSRConfig{}); err != nil {
			fmt.Println(err)
			return
		}
	}
	clk.Advance(10 * time.Second)

	err = manetkit.Coordinate(stacks, manetkit.CoordinatedAction{
		Name: "switch-to-dymo",
		Apply: func(s *manetkit.Stack) error {
			if err := s.UndeployOLSR(); err != nil {
				return err
			}
			if err := s.UndeployMPR(); err != nil {
				return err
			}
			_, err := s.DeployDYMO(manetkit.DYMOConfig{})
			return err
		},
	})
	fmt.Println("switched:", err == nil)
	fmt.Println("units on node 1:", stacks[0].Manager().Units())
	// Output:
	// switched: true
	// units on node 1: [system neighbor-detection dymo]
}
