package olsr

import (
	"sync"

	"manetkit/internal/core"
	"manetkit/internal/event"
	"manetkit/internal/mpr"
	"manetkit/internal/packetbb"
)

// DefaultFisheyePattern is the classic fisheye TTL sequence: most TC
// emissions reach only nearby scopes; every third travels the full network.
var DefaultFisheyePattern = []uint8{2, 2, 255}

// NewFisheye builds the fisheye-routing variant component (§5.1): a CFS
// unit that both requires and provides TC_OUT, so the Framework Manager
// automatically interposes it in the TC_OUT path. It rewrites the TTL of
// locally-originated TC messages following the given pattern, refreshing
// topology frequently for nearby nodes and rarely for distant ones —
// trading optimal long-distance routes for scalability.
//
// Deploying the unit inserts the behaviour; undeploying removes it. No
// OLSR code changes in either direction.
func NewFisheye(name string, pattern []uint8) *core.Protocol {
	if name == "" {
		name = "fisheye"
	}
	if len(pattern) == 0 {
		pattern = DefaultFisheyePattern
	}
	p := core.NewProtocol(name)
	p.SetTuple(event.Tuple{
		Required: []event.Requirement{{Type: event.TCOut}},
		Provided: []event.Type{event.TCOut},
	})
	var mu sync.Mutex
	emissions := 0
	h := core.NewHandler("fisheye-ttl", event.TCOut, func(ctx *core.Context, ev *event.Event) error {
		if ev.Msg == nil {
			return nil
		}
		// Forwarded TCs (hop count > 0) pass through untouched; only the
		// local origination schedule is fisheyed.
		if ev.Msg.HopCount > 0 || ev.Msg.Originator != ctx.Node() {
			ctx.Emit(ev)
			return nil
		}
		mu.Lock()
		ttl := pattern[emissions%len(pattern)]
		emissions++
		mu.Unlock()
		out := *ev
		out.Msg = ev.Msg.Clone()
		if out.Msg.HopLimit > ttl {
			out.Msg.HopLimit = ttl
		}
		ctx.Emit(&out)
		return nil
	})
	if err := p.AddHandler(h); err != nil {
		panic(err)
	}
	return p
}

// EnablePowerAware applies the power-aware routing variant (§5.1):
//
//  1. the MPR CF's calculator is replaced by the power-aware version
//     (relay selection maximises residual battery);
//  2. a ResidualPower component is plugged into the OLSR CF — it tracks
//     the node's own battery from POWER_STATUS context events and
//     disseminates it in TC messages via the TLVResidualPower TLV;
//  3. the OLSR tuple additionally requires POWER_STATUS (declarative
//     rewire).
func (o *OLSR) EnablePowerAware() error {
	if err := o.m.SetCalculator(mpr.NewPowerAwareCalculator()); err != nil {
		return err
	}
	rp := core.NewHandler("residual-power", event.PowerStatus,
		func(ctx *core.Context, ev *event.Event) error {
			if ev.Power != nil {
				o.state.SetOwnPower(ev.Power.Fraction)
			}
			return nil
		})
	if err := o.proto.AddHandler(rp); err != nil {
		return err
	}
	t := o.proto.Tuple()
	t.Required = append(t.Required, event.Requirement{Type: event.PowerStatus})
	o.proto.SetTuple(t)
	o.setPowerAware(true)
	return nil
}

// DisablePowerAware removes the variant, restoring the greedy calculator.
func (o *OLSR) DisablePowerAware() error {
	if err := o.m.SetCalculator(mpr.NewGreedyCalculator()); err != nil {
		return err
	}
	if err := o.proto.RemoveHandler("residual-power"); err != nil {
		return err
	}
	t := o.proto.Tuple()
	kept := t.Required[:0:0]
	for _, r := range t.Required {
		if r.Type != event.PowerStatus {
			kept = append(kept, r)
		}
	}
	t.Required = kept
	o.proto.SetTuple(t)
	o.setPowerAware(false)
	return nil
}

func (o *OLSR) setPowerAware(on bool) {
	o.state.mu.Lock()
	o.state.powerAware = on
	o.state.mu.Unlock()
}

// PowerAware reports whether the variant is active.
func (o *OLSR) PowerAware() bool {
	o.state.mu.Lock()
	defer o.state.mu.Unlock()
	return o.state.powerAware
}

// powerTLV returns the residual-power TLV for outgoing TCs when the
// variant is enabled.
func (o *OLSR) powerTLV() (packetbb.TLV, bool) {
	o.state.mu.Lock()
	defer o.state.mu.Unlock()
	if !o.state.powerAware {
		return packetbb.TLV{}, false
	}
	pct := uint8(o.state.ownPower * 100)
	return packetbb.TLV{Type: TLVResidualPower, Value: packetbb.U8(pct)}, true
}

// NewHysteresis builds the link-hysteresis filter of Fig 5 as an
// NHOOD_CHANGE interposer: a neighbour must be observed `threshold` times
// before its appearance events pass upward, damping flapping links. Loss
// events always pass immediately.
func NewHysteresis(name string, threshold int) *core.Protocol {
	if name == "" {
		name = "hysteresis"
	}
	if threshold < 1 {
		threshold = 2
	}
	p := core.NewProtocol(name)
	p.SetTuple(event.Tuple{
		Required: []event.Requirement{{Type: event.NhoodChange}},
		Provided: []event.Type{event.NhoodChange},
	})
	var mu sync.Mutex
	seen := make(map[string]int)
	h := core.NewHandler("hysteresis-filter", event.NhoodChange, func(ctx *core.Context, ev *event.Event) error {
		if ev.Nhood == nil {
			ctx.Emit(ev)
			return nil
		}
		key := ev.Nhood.Neighbor.String()
		mu.Lock()
		defer mu.Unlock()
		switch ev.Nhood.Kind {
		case event.NeighborLost:
			delete(seen, key)
			ctx.Emit(ev)
		case event.NeighborAppeared, event.NeighborSymmetric:
			seen[key]++
			if seen[key] >= threshold {
				ctx.Emit(ev)
			}
		default:
			ctx.Emit(ev)
		}
		return nil
	})
	if err := p.AddHandler(h); err != nil {
		panic(err)
	}
	return p
}
