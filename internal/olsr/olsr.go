package olsr

import (
	"time"

	"manetkit/internal/core"
	"manetkit/internal/event"
	"manetkit/internal/metrics"
	"manetkit/internal/mnet"
	"manetkit/internal/mpr"
	"manetkit/internal/neighbor"
	"manetkit/internal/packetbb"
	"manetkit/internal/route"
	"manetkit/internal/vclock"
)

// UnitName is the OLSR CF's default unit name.
const UnitName = "olsr"

// TLVResidualPower is the TC message TLV carrying residual battery (u8
// percent) in the power-aware variant.
const TLVResidualPower uint8 = 10

// Config parameterises the OLSR CF.
type Config struct {
	// TCInterval is the topology-control emission period (default 5s).
	TCInterval time.Duration
	// Jitter is the fractional TC jitter (default 0.1).
	Jitter float64
	// TopologyHold is the topology tuple validity (default 3×TCInterval).
	TopologyHold time.Duration
	// RouteHold is the computed-route validity (default TopologyHold).
	RouteHold time.Duration
	// RecomputeInterval is the quantum at which triggered route recomputes
	// are drained (default TCInterval/50). Topology and neighbourhood
	// changes mark the route set dirty; one vclock timer per node drains
	// the flag at the next quantization boundary, so a TC flood burst costs
	// one shortest-path run instead of one per message, with staleness
	// bounded by this interval.
	RecomputeInterval time.Duration
	// FIB, when non-nil, receives the protocol's routes (the kernel table).
	FIB *route.FIB
	// Device names the FIB device for installed routes.
	Device string
	// Clock drives the routing table's lifetimes; defaults to the
	// deployment clock at attach time — set it explicitly only in tests
	// that use the state before deployment.
	Clock vclock.Clock
}

func (c *Config) fill() {
	if c.TCInterval <= 0 {
		c.TCInterval = 5 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.1
	}
	if c.TopologyHold <= 0 {
		c.TopologyHold = 3 * c.TCInterval
	}
	if c.RouteHold <= 0 {
		c.RouteHold = c.TopologyHold
	}
	if c.RecomputeInterval <= 0 {
		c.RecomputeInterval = c.TCInterval / 50
	}
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
}

// OLSR is the OLSR ManetProtocol CF, stacked on an MPR CF instance.
type OLSR struct {
	proto *core.Protocol
	m     *mpr.MPR
	state *State
	cfg   Config

	// Recompute coalescing state, guarded by the protocol's critical
	// section (handlers, sources and RunLocked callbacks all hold it).
	dirty      bool         // route set may be stale
	drainTimer vclock.Timer // armed quantized drain, nil when idle

	// Instruments, resolved from the deployment's registry on Start; nil
	// (no-op) when the deployment carries no metrics.
	mTCTx      *metrics.Counter // TC emissions (periodic + triggered)
	mTCRx      *metrics.Counter // TCs accepted from symmetric neighbours
	mTCFwd     *metrics.Counter // MPR-optimised flood forwards
	mMPRChange *metrics.Counter // triggered advertised-set changes
}

// New builds an OLSR CF using the given MPR CF for link sensing, relay
// selection and optimised flooding. Deploy both units into the same
// Manager; their event tuples wire them together automatically.
func New(name string, relay *mpr.MPR, cfg Config) *OLSR {
	if name == "" {
		name = UnitName
	}
	cfg.fill()
	o := &OLSR{
		proto: core.NewProtocol(name),
		m:     relay,
		cfg:   cfg,
	}
	rt := route.NewTable(cfg.Clock)
	if cfg.FIB != nil {
		rt.SyncFIB(cfg.FIB, cfg.Device)
	}
	o.state = NewState(rt)

	o.proto.SetTuple(event.Tuple{
		Required: []event.Requirement{
			{Type: event.TCIn},
			{Type: event.NhoodChange},
			{Type: event.MPRChange},
		},
		Provided: []event.Type{event.TCOut},
	})
	if err := o.proto.SetState(core.NewStateComponent("state", o.state)); err != nil {
		panic(err)
	}
	o.proto.Provide("IOLSRState", o.state)

	for _, h := range []core.Handler{
		core.NewHandler("tc-handler", event.TCIn, o.onTC),
		core.NewHandler("nhood-handler", event.NhoodChange, o.onNhood),
		core.NewHandler("mpr-handler", event.MPRChange, o.onMPRChange),
	} {
		if err := o.proto.AddHandler(h); err != nil {
			panic(err)
		}
	}
	if err := o.proto.AddSource(core.NewSource("tc-generator", cfg.TCInterval, cfg.Jitter, o.emitTC)); err != nil {
		panic(err)
	}
	// Periodic purge/recompute at 1/5 the TC interval.
	if err := o.proto.AddSource(core.NewSource("topo-sweep", cfg.TCInterval/5, 0, o.sweep)); err != nil {
		panic(err)
	}
	o.proto.OnStart(func(ctx *core.Context) error {
		reg := ctx.Env().Metrics()
		o.mTCTx = reg.Counter("olsr_tc_tx")
		o.mTCRx = reg.Counter("olsr_tc_rx")
		o.mTCFwd = reg.Counter("olsr_tc_fwd")
		o.mMPRChange = reg.Counter("olsr_mpr_changes")
		return nil
	})
	o.proto.OnStop(func(ctx *core.Context) error {
		if o.drainTimer != nil {
			o.drainTimer.Stop()
			o.drainTimer = nil
		}
		o.dirty = false
		o.state.Routes.Clear()
		return nil
	})
	return o
}

// Protocol returns the OLSR CF as a deployable unit.
func (o *OLSR) Protocol() *core.Protocol { return o.proto }

// State returns the S element value.
func (o *OLSR) State() *State { return o.state }

// Routes returns the protocol's routing table.
func (o *OLSR) Routes() *route.Table { return o.state.Routes }

// BuildTC assembles this node's topology-control message, advertising the
// MPR selector set. Exported for the micro-benchmarks.
func (o *OLSR) BuildTC(self mnet.Addr) *packetbb.Message {
	msg := &packetbb.Message{
		Type:       packetbb.MsgTC,
		Originator: self,
		HopLimit:   255,
		HopCount:   0,
		SeqNum:     o.state.NextMsgSeq(),
		TLVs: []packetbb.TLV{
			{Type: packetbb.TLVANSN, Value: packetbb.U16(o.state.ANSN())},
		},
	}
	if tlv, ok := o.powerTLV(); ok {
		msg.TLVs = append(msg.TLVs, tlv)
	}
	if sel := o.m.State().Selectors(); len(sel) > 0 {
		msg.AddrBlocks = append(msg.AddrBlocks, packetbb.AddrBlock{Addrs: sel})
	}
	return msg
}

func (o *OLSR) emitTC(ctx *core.Context) {
	// Only nodes selected as relays advertise (RFC 3626 §9.3).
	if len(o.m.State().Selectors()) == 0 {
		return
	}
	msg := o.BuildTC(ctx.Node())
	o.m.Flooder().Seen(ctx.Node(), msg.SeqNum, ctx.Clock().Now())
	o.mTCTx.Inc()
	ctx.Emit(&event.Event{Type: event.TCOut, Msg: msg, Dst: mnet.Broadcast})
}

// ProcessTC folds one received TC into the topology set and decides
// forwarding; exported for the time-to-process benchmark (Table 1).
func (o *OLSR) ProcessTC(ctx *core.Context, ev *event.Event) error {
	return o.onTC(ctx, ev)
}

func (o *OLSR) onTC(ctx *core.Context, ev *event.Event) error {
	msg := ev.Msg
	if msg == nil || msg.Originator == ctx.Node() {
		return nil
	}
	// Per RFC 3626 §9.5: discard TCs whose previous hop is not a symmetric
	// neighbour.
	if nb, ok := o.m.State().Links.Get(ev.Src); !ok || nb.Status != neighbor.StatusSymmetric {
		return nil
	}
	o.mTCRx.Inc()
	ansn := uint16(0)
	if tlv, ok := msg.FindTLV(packetbb.TLVANSN); ok {
		if v, err := packetbb.ParseU16(tlv.Value); err == nil {
			ansn = v
		}
	}
	var advertised []mnet.Addr
	for bi := range msg.AddrBlocks {
		advertised = append(advertised, msg.AddrBlocks[bi].Addrs...)
	}
	now := ctx.Clock().Now()
	changed := o.state.RecordTC(msg.Originator, ansn, advertised, now.Add(o.cfg.TopologyHold))

	// Power-aware: learn the originator's residual battery.
	if tlv, ok := msg.FindTLV(TLVResidualPower); ok {
		if v, err := packetbb.ParseU8(tlv.Value); err == nil {
			o.state.SetPower(msg.Originator, float64(v)/100)
		}
	}
	if changed {
		o.markDirty(ctx)
	}
	// MPR-optimised flood forwarding.
	if msg.HopLimit > 1 && o.m.Flooder().ShouldForward(msg.Originator, msg.SeqNum, ev.Src, now) {
		fwd := msg.Clone()
		fwd.HopLimit--
		fwd.HopCount++
		o.mTCFwd.Inc()
		ctx.Emit(&event.Event{Type: event.TCOut, Msg: fwd, Dst: mnet.Broadcast})
	}
	return nil
}

func (o *OLSR) onNhood(ctx *core.Context, ev *event.Event) error {
	o.markDirty(ctx)
	return nil
}

func (o *OLSR) onMPRChange(ctx *core.Context, ev *event.Event) error {
	// The advertised (selector) set changed: bump ANSN and send a
	// triggered TC so topology propagates ahead of the periodic timer.
	o.state.BumpANSN()
	o.mMPRChange.Inc()
	if len(o.m.State().Selectors()) > 0 {
		msg := o.BuildTC(ctx.Node())
		o.m.Flooder().Seen(ctx.Node(), msg.SeqNum, ctx.Clock().Now())
		o.mTCTx.Inc()
		ctx.Emit(&event.Event{Type: event.TCOut, Msg: msg, Dst: mnet.Broadcast})
	}
	o.markDirty(ctx)
	return nil
}

func (o *OLSR) sweep(ctx *core.Context) {
	o.state.PurgeTopo(ctx.Clock().Now())
	// Recompute unconditionally: this refreshes route lifetimes from the
	// still-live topology (RecordTC reports "unchanged" for pure expiry
	// refreshes, so changes alone would let routes age out). The sweep
	// already runs on a periodic source, so it drains inline rather than
	// going through the quantized timer.
	o.dirty = true
	o.drainLocked(ctx)
	o.state.Routes.PurgeExpired()
}

// markDirty notes that the route set may be stale and arms at most one
// vclock timer to drain the recompute at the next RecomputeInterval
// boundary. Quantizing the deadline (rather than "now + interval") makes
// the drain instant a deterministic function of virtual time, so replays
// are byte-identical regardless of which trigger fired first. Called only
// inside the protocol's critical section, which is what makes the flag and
// timer handle safe without a lock of their own.
func (o *OLSR) markDirty(ctx *core.Context) {
	o.dirty = true
	if o.drainTimer != nil {
		return
	}
	clk := ctx.Clock()
	now := clk.Now()
	fire := now.Truncate(o.cfg.RecomputeInterval).Add(o.cfg.RecomputeInterval)
	o.drainTimer = clk.AfterFunc(fire.Sub(now), func() {
		// The timer callback runs outside the critical section; re-enter it
		// to drain. A stopped deployment reports ErrNotDeployed — the
		// pending recompute is moot then.
		_ = o.proto.RunLocked(o.drainLocked)
	})
}

// drainLocked runs the coalesced recompute if one is pending. Critical
// section held by the caller.
func (o *OLSR) drainLocked(ctx *core.Context) {
	o.drainTimer = nil
	if !o.dirty {
		return
	}
	o.dirty = false
	o.recompute(ctx)
}

func (o *OLSR) recompute(ctx *core.Context) {
	links := o.m.State().Links
	// ComputeRoutes resolves learned HNA prefixes against the fresh
	// shortest-path pass and diff-installs hosts and gateways in one batch.
	o.state.ComputeRoutes(
		ctx.Node(),
		links.SymmetricAddrs(),
		links.TwoHopSet(ctx.Node()),
		ctx.Clock().Now(),
		o.cfg.RouteHold,
		o.proto.Name(),
	)
}
