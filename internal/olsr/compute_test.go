package olsr

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/route"
	"manetkit/internal/testbed"
	"manetkit/internal/vclock"
)

type hopRef struct {
	nextHop mnet.Addr
	metric  int
}

// referenceRoutes is the pre-index shortest-path calculation — the
// O(E×diameter) fixpoint relaxation ComputeRoutes replaced — kept here as
// the differential-test oracle. The only addition over the historical code
// is the equal-metric tie-break towards the smaller next hop, which is the
// canonical solution the BFS min-merge converges to; metrics and the
// reachable set are exactly the historical ones.
func referenceRoutes(s *State, self mnet.Addr, oneHop []mnet.Addr, twoHop map[mnet.Addr][]mnet.Addr, now time.Time) map[mnet.Addr]hopRef {
	best := make(map[mnet.Addr]hopRef)
	for _, nb := range oneHop {
		best[nb] = hopRef{nextHop: nb, metric: 1}
	}
	for dst, vias := range twoHop {
		if _, ok := best[dst]; ok || len(vias) == 0 {
			continue
		}
		best[dst] = hopRef{nextHop: vias[0], metric: 2}
	}
	edges := s.Edges(now)
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			last, dest := e[0], e[1]
			if dest == self {
				continue
			}
			le, ok := best[last]
			if !ok {
				continue
			}
			cand := hopRef{nextHop: le.nextHop, metric: le.metric + 1}
			cur, ok := best[dest]
			if !ok || cand.metric < cur.metric ||
				(cand.metric == cur.metric && cand.nextHop.Less(cur.nextHop)) {
				best[dest] = cand
				changed = true
			}
		}
	}
	return best
}

// modelTopo is a naive flat tuple set mirroring the semantics the
// per-originator index must preserve: ANSN gating, fresher-ANSN flush,
// per-tuple expiry.
type modelTopo struct {
	tuples map[[2]mnet.Addr]time.Time
	ansn   map[mnet.Addr]uint16
}

func newModelTopo() *modelTopo {
	return &modelTopo{tuples: make(map[[2]mnet.Addr]time.Time), ansn: make(map[mnet.Addr]uint16)}
}

func (m *modelTopo) recordTC(orig mnet.Addr, ansn uint16, advertised []mnet.Addr, expiry time.Time) {
	if prev, ok := m.ansn[orig]; ok && seqOlder(ansn, prev) {
		return
	}
	if prev, ok := m.ansn[orig]; !ok || seqOlder(prev, ansn) {
		for e := range m.tuples {
			if e[0] == orig {
				delete(m.tuples, e)
			}
		}
	}
	m.ansn[orig] = ansn
	for _, d := range advertised {
		if d == orig {
			continue
		}
		m.tuples[[2]mnet.Addr{orig, d}] = expiry
	}
}

func (m *modelTopo) purge(now time.Time) {
	for e, exp := range m.tuples {
		if !exp.After(now) {
			delete(m.tuples, e)
		}
	}
}

func (m *modelTopo) edges(now time.Time) [][2]mnet.Addr {
	out := make([][2]mnet.Addr, 0, len(m.tuples))
	for e, exp := range m.tuples {
		if exp.After(now) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0].Less(out[j][0])
		}
		return out[i][1].Less(out[j][1])
	})
	return out
}

func nodeAddr(i int) mnet.Addr {
	return mnet.AddrFrom(0x0a000001 + uint32(i))
}

// TestComputeRoutesMatchesReference drives the indexed BFS and the fixpoint
// oracle over randomized topology histories — stale-ANSN interleavings,
// self-loop advertisements, expiry purges, disconnected components — and
// requires the per-originator index to match a naive flat tuple model and
// the installed route table to match the oracle exactly.
func TestComputeRoutesMatchesReference(t *testing.T) {
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		clk := vclock.NewVirtual(testbed.Epoch)
		s := NewState(route.NewTable(clk))
		model := newModelTopo()
		n := 4 + rng.Intn(12)
		self := nodeAddr(0)

		randomCompute := func() {
			// Random neighbourhood inputs: a sorted symmetric set (never
			// self) and a 2-hop map with sorted vias.
			var oneHop []mnet.Addr
			for i := 1; i < n; i++ {
				if rng.Intn(3) == 0 {
					oneHop = append(oneHop, nodeAddr(i))
				}
			}
			twoHop := make(map[mnet.Addr][]mnet.Addr)
			for i := 1; i < n; i++ {
				if rng.Intn(4) != 0 {
					continue
				}
				var vias []mnet.Addr
				for v := 1; v < n; v++ {
					if rng.Intn(5) == 0 {
						vias = append(vias, nodeAddr(v))
					}
				}
				twoHop[nodeAddr(i)] = vias // sometimes empty: must be skipped
			}
			now := clk.Now()
			got := s.ComputeRoutes(self, oneHop, twoHop, now, time.Minute, "olsr")
			want := referenceRoutes(s, self, oneHop, twoHop, now)
			if got != len(want) {
				t.Fatalf("trial %d: ComputeRoutes = %d destinations, reference = %d", trial, got, len(want))
			}
			entries := s.Routes.Entries()
			if len(entries) != len(want) {
				t.Fatalf("trial %d: table has %d entries, reference %d", trial, len(entries), len(want))
			}
			for _, e := range entries {
				ref, ok := want[e.Dst.Addr]
				if !ok {
					t.Fatalf("trial %d: table has unexpected destination %v", trial, e.Dst)
				}
				if !e.Valid || e.Proto != "olsr" || len(e.Paths) != 1 {
					t.Fatalf("trial %d: malformed entry %+v", trial, e)
				}
				if e.Paths[0].NextHop != ref.nextHop || e.Paths[0].Metric != ref.metric {
					t.Fatalf("trial %d: route to %v = via %v metric %d, reference via %v metric %d",
						trial, e.Dst.Addr, e.Paths[0].NextHop, e.Paths[0].Metric, ref.nextHop, ref.metric)
				}
			}
		}

		ops := 10 + rng.Intn(40)
		for op := 0; op < ops; op++ {
			switch rng.Intn(12) {
			case 0:
				now := clk.Now()
				if s.PurgeTopo(now) != (func() bool { before := len(model.tuples); model.purge(now); return len(model.tuples) != before })() {
					t.Fatalf("trial %d: PurgeTopo changed-report diverges from model", trial)
				}
			case 1:
				clk.Advance(time.Duration(1+rng.Intn(3)) * time.Second)
			case 2:
				randomCompute() // interleaved: exercises diff-install removal
			default:
				orig := nodeAddr(rng.Intn(n))
				ansn := uint16(rng.Intn(8)) // small range forces stale interleavings
				adv := make([]mnet.Addr, 0, 6)
				if rng.Intn(4) == 0 {
					adv = append(adv, orig) // self-loop: must be ignored
				}
				for k := rng.Intn(5); k > 0; k-- {
					adv = append(adv, nodeAddr(rng.Intn(n)))
				}
				expiry := clk.Now().Add(time.Duration(1+rng.Intn(5)) * time.Second)
				s.RecordTC(orig, ansn, adv, expiry)
				model.recordTC(orig, ansn, adv, expiry)
			}
			gotE, wantE := s.Edges(clk.Now()), model.edges(clk.Now())
			if len(gotE) != len(wantE) {
				t.Fatalf("trial %d op %d: index has %d edges, model %d", trial, op, len(gotE), len(wantE))
			}
			for i := range gotE {
				if gotE[i] != wantE[i] {
					t.Fatalf("trial %d op %d: edge[%d] = %v, model %v", trial, op, i, gotE[i], wantE[i])
				}
			}
		}
		randomCompute()
	}
}

// TestComputeRoutesCanonicalTieBreak pins the equal-cost rule: when a
// destination is reachable over several shortest paths, the installed next
// hop is the lexicographically smallest one.
func TestComputeRoutesCanonicalTieBreak(t *testing.T) {
	s, clk := newState()
	self := addr("10.0.0.1")
	a, b, d := addr("10.0.0.2"), addr("10.0.0.3"), addr("10.0.0.9")
	exp := clk.Now().Add(time.Minute)
	// Diamond: both neighbours advertise d — two equal-cost 2-hop paths.
	s.RecordTC(b, 1, []mnet.Addr{d}, exp) // deliberately record the larger hop first
	s.RecordTC(a, 1, []mnet.Addr{d}, exp)
	s.ComputeRoutes(self, []mnet.Addr{a, b}, nil, clk.Now(), time.Minute, "olsr")
	e, ok := s.Routes.Get(mnet.HostPrefix(d))
	if !ok || e.Paths[0].NextHop != a || e.Paths[0].Metric != 2 {
		t.Fatalf("diamond route = %+v, want via %v metric 2", e, a)
	}
}

// TestComputeRoutesInstallsHNA pins the folded gateway install: learned
// prefixes route like their gateway one hop beyond it, expire with the
// association, and vanish while the gateway is unreachable.
func TestComputeRoutesInstallsHNA(t *testing.T) {
	s, clk := newState()
	self := addr("10.0.0.1")
	nb, gw := addr("10.0.0.2"), addr("10.0.0.5")
	p := mnet.Prefix{Addr: addr("192.168.7.0"), Bits: 24}
	exp := clk.Now().Add(time.Minute)
	s.RecordTC(nb, 1, []mnet.Addr{gw}, exp)
	s.hna = map[mnet.Prefix]hnaEntry{p: {gateway: gw, expires: exp}}

	s.ComputeRoutes(self, []mnet.Addr{nb}, nil, clk.Now(), time.Minute, "olsr")
	e, ok := s.Routes.Get(p)
	if !ok || e.Paths[0].NextHop != nb || e.Paths[0].Metric != 3 {
		t.Fatalf("HNA route = %+v (ok=%v), want via %v metric 3", e, ok, nb)
	}
	if !e.Paths[0].Expires.Equal(exp) {
		t.Fatalf("HNA route expires %v, want association expiry %v", e.Paths[0].Expires, exp)
	}

	// Gateway unreachable: the prefix route must drop out of the next pass.
	s.ComputeRoutes(self, nil, nil, clk.Now(), time.Minute, "olsr")
	if _, ok := s.Routes.Get(p); ok {
		t.Fatal("HNA route survived an unreachable gateway")
	}
}

// buildRing records a 4-regular ring topology of n originators (4n tuples)
// so benchmark sizes scale by edge count while staying fully connected.
func buildRing(s *State, n int, expiry time.Time) {
	for i := 0; i < n; i++ {
		adv := []mnet.Addr{
			nodeAddr((i + 1) % n),
			nodeAddr((i + 2) % n),
			nodeAddr((i - 1 + n) % n),
			nodeAddr((i - 2 + n) % n),
		}
		s.RecordTC(nodeAddr(i), 1, adv, expiry)
	}
}

// TestComputeRoutesSteadyStateAllocs pins the acceptance criterion: a
// steady-state recompute at 1000 topology edges performs at most 2
// allocations (measured: 0 — scratch buffers and the diff install are
// warm after the first two passes).
func TestComputeRoutesSteadyStateAllocs(t *testing.T) {
	s, clk := newState()
	n := 250 // 4n = 1000 topology tuples
	buildRing(s, n, clk.Now().Add(time.Hour))
	self := nodeAddr(0)
	oneHop := []mnet.Addr{nodeAddr(1), nodeAddr(n - 1)}
	twoHop := map[mnet.Addr][]mnet.Addr{
		nodeAddr(2):     {nodeAddr(1)},
		nodeAddr(n - 2): {nodeAddr(n - 1)},
	}
	now := clk.Now()
	s.ComputeRoutes(self, oneHop, twoHop, now, time.Hour, "olsr")
	s.ComputeRoutes(self, oneHop, twoHop, now, time.Hour, "olsr")
	allocs := testing.AllocsPerRun(20, func() {
		s.ComputeRoutes(self, oneHop, twoHop, now, time.Hour, "olsr")
	})
	if allocs > 2 {
		t.Fatalf("steady-state ComputeRoutes at 1000 edges allocates %.1f times per run, want <= 2", allocs)
	}
}

func BenchmarkComputeRoutes(b *testing.B) {
	for _, edges := range []int{100, 500, 1000} {
		b.Run(fmt.Sprintf("edges=%d", edges), func(b *testing.B) {
			s, clk := newState()
			n := edges / 4
			buildRing(s, n, clk.Now().Add(time.Hour))
			self := nodeAddr(0)
			oneHop := []mnet.Addr{nodeAddr(1), nodeAddr(n - 1)}
			twoHop := map[mnet.Addr][]mnet.Addr{
				nodeAddr(2):     {nodeAddr(1)},
				nodeAddr(n - 2): {nodeAddr(n - 1)},
			}
			now := clk.Now()
			s.ComputeRoutes(self, oneHop, twoHop, now, time.Hour, "olsr")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ComputeRoutes(self, oneHop, twoHop, now, time.Hour, "olsr")
			}
		})
	}
}
