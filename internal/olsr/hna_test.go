package olsr

import (
	"testing"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/packetbb"
)

func TestHNAAdvertiseWithdraw(t *testing.T) {
	c, nodes := deployOLSR(t, 1, Config{})
	_ = c
	o := nodes[0].olsr
	p1 := mnet.Prefix{Addr: addr("192.168.0.0"), Bits: 16}
	p2 := mnet.Prefix{Addr: addr("172.16.4.0"), Bits: 24}
	o.AdvertiseNetwork(p1)
	o.AdvertiseNetwork(p2)
	got := o.AttachedNetworks()
	if len(got) != 2 || got[0] != p2 || got[1] != p1 {
		t.Fatalf("AttachedNetworks = %v", got)
	}
	o.WithdrawNetwork(p2)
	if got := o.AttachedNetworks(); len(got) != 1 || got[0] != p1 {
		t.Fatalf("after withdraw = %v", got)
	}
}

func TestBuildHNARoundTrip(t *testing.T) {
	c, nodes := deployOLSR(t, 1, Config{})
	_ = c
	o := nodes[0].olsr
	if o.BuildHNA(addr("10.0.0.1")) != nil {
		t.Fatal("HNA built with no attached networks")
	}
	o.AdvertiseNetwork(mnet.Prefix{Addr: addr("192.168.0.0"), Bits: 16})
	msg := o.BuildHNA(addr("10.0.0.1"))
	if msg == nil || msg.Type != packetbb.MsgHNA {
		t.Fatalf("msg = %+v", msg)
	}
	wire, err := packetbb.EncodeMessage(msg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := packetbb.DecodeMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	blk := back.AddrBlocks[0]
	if blk.Addrs[0] != addr("192.168.0.0") || blk.PrefixLens[0] != 16 {
		t.Fatalf("block = %+v", blk)
	}
	if _, ok := blk.AddrTLVFor(packetbb.ATLVGateway, 0); !ok {
		t.Fatal("gateway TLV missing")
	}
}

func TestHNAGatewayRoutingEndToEnd(t *testing.T) {
	c, nodes := deployOLSR(t, 4, Config{TCInterval: 5 * time.Second})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	for _, on := range nodes {
		if err := on.olsr.EnableHNA(0); err != nil {
			t.Fatal(err)
		}
	}
	// The far-end node is a gateway to an attached /16.
	ext := mnet.Prefix{Addr: addr("192.168.0.0"), Bits: 16}
	nodes[3].olsr.AdvertiseNetwork(ext)
	c.Run(40 * time.Second)

	// Every other node routes the external prefix towards the gateway.
	for i := 0; i < 3; i++ {
		extHost := addr("192.168.77.5")
		e, p, err := nodes[i].olsr.Routes().Lookup(extHost)
		if err != nil {
			t.Fatalf("node %d: no route to external host: %v", i, err)
		}
		if e.Dst != ext {
			t.Fatalf("node %d matched %v, want %v", i, e.Dst, ext)
		}
		// Next hop is the same as towards the gateway; metric one beyond.
		_, gwPath, err := nodes[i].olsr.Routes().Lookup(c.Addrs()[3])
		if err != nil {
			t.Fatal(err)
		}
		if p.NextHop != gwPath.NextHop || p.Metric != gwPath.Metric+1 {
			t.Fatalf("node %d: prefix path %+v vs gateway path %+v", i, p, gwPath)
		}
		// The kernel FIB resolves it too.
		if _, ok := nodes[i].node.FIB().Lookup(extHost); !ok {
			t.Fatalf("node %d: FIB does not resolve external host", i)
		}
	}
}

func TestHNARoutesAgeOutAfterWithdraw(t *testing.T) {
	c, nodes := deployOLSR(t, 2, Config{TCInterval: 2 * time.Second})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	for _, on := range nodes {
		if err := on.olsr.EnableHNA(0); err != nil {
			t.Fatal(err)
		}
	}
	ext := mnet.Prefix{Addr: addr("192.168.0.0"), Bits: 16}
	nodes[1].olsr.AdvertiseNetwork(ext)
	c.Run(15 * time.Second)
	if _, _, err := nodes[0].olsr.Routes().Lookup(addr("192.168.1.1")); err != nil {
		t.Fatal("setup: no external route")
	}
	nodes[1].olsr.WithdrawNetwork(ext)
	c.Run(15 * time.Second) // hold time = 3 * TC interval
	if _, _, err := nodes[0].olsr.Routes().Lookup(addr("192.168.1.1")); err == nil {
		t.Fatal("withdrawn prefix still routed")
	}
}

func TestDisableHNA(t *testing.T) {
	c, nodes := deployOLSR(t, 1, Config{})
	_ = c
	o := nodes[0].olsr
	if err := o.EnableHNA(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := o.Protocol().CF().Plug("hna-handler"); !ok {
		t.Fatal("hna-handler not plugged")
	}
	if err := o.DisableHNA(); err != nil {
		t.Fatal(err)
	}
	if _, ok := o.Protocol().CF().Plug("hna-handler"); ok {
		t.Fatal("hna-handler still plugged")
	}
	tp := o.Protocol().Tuple()
	if tp.Provides("HNA_OUT") {
		t.Fatal("tuple still provides HNA_OUT")
	}
}
