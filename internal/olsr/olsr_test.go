package olsr

import (
	"testing"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/emunet"
	"manetkit/internal/event"
	"manetkit/internal/mnet"
	"manetkit/internal/mpr"
	"manetkit/internal/packetbb"
	"manetkit/internal/route"
	"manetkit/internal/testbed"
	"manetkit/internal/vclock"
)

func addr(s string) mnet.Addr { return mnet.MustParseAddr(s) }

func newState() (*State, *vclock.Virtual) {
	clk := vclock.NewVirtual(testbed.Epoch)
	return NewState(route.NewTable(clk)), clk
}

func TestSeqOlder(t *testing.T) {
	tests := []struct {
		a, b uint16
		want bool
	}{
		{1, 2, true},
		{2, 1, false},
		{5, 5, false},
		{65535, 0, true},  // wraparound
		{0, 65535, false}, // wraparound
	}
	for _, tt := range tests {
		if got := seqOlder(tt.a, tt.b); got != tt.want {
			t.Errorf("seqOlder(%d,%d) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestRecordTCANSN(t *testing.T) {
	s, clk := newState()
	orig := addr("10.0.0.2")
	exp := clk.Now().Add(15 * time.Second)
	if !s.RecordTC(orig, 5, []mnet.Addr{addr("10.0.0.3")}, exp) {
		t.Fatal("fresh TC reported unchanged")
	}
	// Stale ANSN rejected.
	if s.RecordTC(orig, 4, []mnet.Addr{addr("10.0.0.9")}, exp) {
		t.Fatal("stale ANSN accepted")
	}
	// Newer ANSN flushes old tuples.
	if !s.RecordTC(orig, 6, []mnet.Addr{addr("10.0.0.4")}, exp) {
		t.Fatal("fresher TC reported unchanged")
	}
	edges := s.Edges(clk.Now())
	if len(edges) != 1 || edges[0][1] != addr("10.0.0.4") {
		t.Fatalf("edges = %v", edges)
	}
	// Self-loop advertisements are ignored.
	s.RecordTC(orig, 7, []mnet.Addr{orig}, exp)
	if len(s.Edges(clk.Now())) != 0 {
		t.Fatal("self-edge recorded")
	}
}

func TestPurgeTopo(t *testing.T) {
	s, clk := newState()
	s.RecordTC(addr("10.0.0.2"), 1, []mnet.Addr{addr("10.0.0.3")}, clk.Now().Add(time.Second))
	if s.PurgeTopo(clk.Now()) {
		t.Fatal("unexpired tuple purged")
	}
	clk.Advance(2 * time.Second)
	if !s.PurgeTopo(clk.Now()) {
		t.Fatal("expired tuple not purged")
	}
}

func TestComputeRoutesChain(t *testing.T) {
	s, clk := newState()
	self := addr("10.0.0.1")
	n2, n3, n4, n5 := addr("10.0.0.2"), addr("10.0.0.3"), addr("10.0.0.4"), addr("10.0.0.5")
	exp := clk.Now().Add(time.Minute)
	// Topology: 2-3 (from 2's TC), 3-4, 4-5.
	s.RecordTC(n2, 1, []mnet.Addr{n3}, exp)
	s.RecordTC(n3, 1, []mnet.Addr{n2, n4}, exp)
	s.RecordTC(n4, 1, []mnet.Addr{n3, n5}, exp)

	n := s.ComputeRoutes(self, []mnet.Addr{n2}, map[mnet.Addr][]mnet.Addr{n3: {n2}}, clk.Now(), time.Minute, "olsr")
	if n != 4 {
		t.Fatalf("reachable = %d", n)
	}
	for i, dst := range []mnet.Addr{n2, n3, n4, n5} {
		e, p, err := s.Routes.Lookup(dst)
		if err != nil {
			t.Fatalf("no route to %v", dst)
		}
		if p.NextHop != n2 || p.Metric != i+1 {
			t.Fatalf("route to %v = %+v via %+v", dst, e, p)
		}
	}
	// Unreachable destination stays unreachable.
	if _, _, err := s.Routes.Lookup(addr("10.0.0.99")); err == nil {
		t.Fatal("phantom route")
	}
}

func TestComputeRoutesRemovesStale(t *testing.T) {
	s, clk := newState()
	self := addr("10.0.0.1")
	n2, n3 := addr("10.0.0.2"), addr("10.0.0.3")
	exp := clk.Now().Add(time.Minute)
	s.RecordTC(n2, 1, []mnet.Addr{n3}, exp)
	s.ComputeRoutes(self, []mnet.Addr{n2}, nil, clk.Now(), time.Minute, "olsr")
	if s.Routes.ValidCount() != 2 {
		t.Fatalf("ValidCount = %d", s.Routes.ValidCount())
	}
	// Link to n2 gone: recompute with no neighbours removes everything.
	s.ComputeRoutes(self, nil, nil, clk.Now(), time.Minute, "olsr")
	if s.Routes.ValidCount() != 0 {
		t.Fatalf("stale routes remain: %v", s.Routes.Entries())
	}
}

// olsrNode bundles the per-node protocol instances.
type olsrNode struct {
	node *testbed.Node
	mpr  *mpr.MPR
	olsr *OLSR
}

// deployOLSR sets up a cluster with MPR+OLSR on every node (the Fig 5
// composition).
func deployOLSR(t *testing.T, n int, cfg Config) (*testbed.Cluster, []*olsrNode) {
	t.Helper()
	c, err := testbed.New(n, testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	nodes := make([]*olsrNode, n)
	for i, node := range c.Nodes {
		nodes[i] = deployOLSROn(t, c, node, cfg)
	}
	return c, nodes
}

func deployOLSROn(t *testing.T, c *testbed.Cluster, node *testbed.Node, cfg Config) *olsrNode {
	t.Helper()
	relay := mpr.New("", mpr.Config{HelloInterval: 2 * time.Second})
	cfg.Clock = c.Clock
	cfg.FIB = node.FIB()
	cfg.Device = node.Sys.NIC().Device()
	o := New("", relay, cfg)
	for _, u := range []*core.Protocol{relay.Protocol(), o.Protocol()} {
		if err := node.Mgr.Deploy(u); err != nil {
			t.Fatal(err)
		}
		if err := u.Start(); err != nil {
			t.Fatal(err)
		}
	}
	return &olsrNode{node: node, mpr: relay, olsr: o}
}

func TestOLSRConvergesOnLine(t *testing.T) {
	c, nodes := deployOLSR(t, 5, Config{TCInterval: 5 * time.Second})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(30 * time.Second)

	addrs := c.Addrs()
	for i, on := range nodes {
		if got := on.olsr.Routes().ValidCount(); got != 4 {
			t.Fatalf("node %d has %d routes, want 4: %+v", i, got, on.olsr.Routes().Entries())
		}
		// Next hops follow the chain.
		for j, dst := range addrs {
			if i == j {
				continue
			}
			_, p, err := on.olsr.Routes().Lookup(dst)
			if err != nil {
				t.Fatalf("node %d: no route to %v", i, dst)
			}
			var wantNext mnet.Addr
			if j > i {
				wantNext = addrs[i+1]
			} else {
				wantNext = addrs[i-1]
			}
			if p.NextHop != wantNext {
				t.Fatalf("node %d -> %v via %v, want %v", i, dst, p.NextHop, wantNext)
			}
			wantMetric := j - i
			if wantMetric < 0 {
				wantMetric = -wantMetric
			}
			if p.Metric != wantMetric {
				t.Fatalf("node %d -> %v metric %d, want %d", i, dst, p.Metric, wantMetric)
			}
		}
		// Kernel FIB mirrors the table.
		if on.node.FIB().Len() != 4 {
			t.Fatalf("node %d FIB has %d entries", i, on.node.FIB().Len())
		}
	}
}

func TestOLSRRepairsAfterLinkBreak(t *testing.T) {
	c, nodes := deployOLSR(t, 4, Config{TCInterval: 5 * time.Second})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(30 * time.Second)
	if nodes[0].olsr.Routes().ValidCount() != 3 {
		t.Fatal("setup: not converged")
	}
	// Sever 2-3: the network partitions into {0,1} and {2,3} (line).
	c.Net.CutLink(c.Addrs()[1], c.Addrs()[2])
	c.Run(20 * time.Second)
	if got := nodes[0].olsr.Routes().ValidCount(); got != 1 {
		t.Fatalf("node 0 routes after partition = %d, want 1: %v", got, nodes[0].olsr.Routes().Entries())
	}
	// Heal: routes come back.
	if err := c.Net.SetLink(c.Addrs()[1], c.Addrs()[2], emunet.DefaultQuality()); err != nil {
		t.Fatal(err)
	}
	c.Run(30 * time.Second)
	if got := nodes[0].olsr.Routes().ValidCount(); got != 3 {
		t.Fatalf("node 0 routes after heal = %d, want 3", got)
	}
}

func TestOLSRCompositionMatchesFig5(t *testing.T) {
	c, nodes := deployOLSR(t, 1, Config{})
	_ = c
	on := nodes[0]
	// OLSR CF plug-ins.
	for _, name := range []string{"control", "state", "tc-handler", "nhood-handler", "mpr-handler", "tc-generator", "topo-sweep"} {
		if _, ok := on.olsr.Protocol().CF().Plug(name); !ok {
			t.Errorf("OLSR CF missing %q", name)
		}
	}
	// MPR CF plug-ins.
	for _, name := range []string{"control", "state", "forward", "hello-handler", "power-handler", "hello-gen", "mpr-calculator"} {
		if _, ok := on.mpr.Protocol().CF().Plug(name); !ok {
			t.Errorf("MPR CF missing %q", name)
		}
	}
	// Manager bindings: MPR provides NHOOD_CHANGE/MPR_CHANGE required by OLSR.
	arch := on.node.Mgr.CF().Arch()
	var mprToOLSR bool
	for _, b := range arch.Bindings {
		if b.From == "mpr" && b.To == "olsr" {
			mprToOLSR = true
		}
	}
	if !mprToOLSR {
		t.Fatalf("no mpr->olsr binding derived: %+v", arch.Bindings)
	}
}

func TestFisheyeInterposesAndCapsTTL(t *testing.T) {
	c, _ := deployOLSR(t, 5, Config{TCInterval: 5 * time.Second})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	// Deploy fisheye on node 2 (an MPR in the middle of the chain).
	fish := NewFisheye("", []uint8{1, 255})
	if err := c.Nodes[2].Mgr.Deploy(fish); err != nil {
		t.Fatal(err)
	}
	if err := fish.Start(); err != nil {
		t.Fatal(err)
	}
	inter, _ := c.Nodes[2].Mgr.Chain(event.TCOut)
	if len(inter) != 1 || inter[0] != "fisheye" {
		t.Fatalf("TC_OUT interposers = %v", inter)
	}
	// Capture TTLs of TCs transmitted by node 2.
	var ttls []uint8
	c.Net.SetTap(func(f emunet.Frame, rcv mnet.Addr) {
		if f.Src != c.Addrs()[2] || len(f.Payload) == 0 || f.Payload[0] != 0x01 {
			return
		}
		pkt, err := packetbb.DecodePacket(f.Payload[1:])
		if err != nil {
			return
		}
		for _, m := range pkt.Messages {
			if m.Type == packetbb.MsgTC && m.Originator == c.Addrs()[2] {
				ttls = append(ttls, m.HopLimit)
			}
		}
	})
	c.Run(40 * time.Second)
	if len(ttls) < 4 {
		t.Fatalf("too few TCs observed: %v", ttls)
	}
	sawShort, sawLong := false, false
	for _, ttl := range ttls {
		if ttl == 1 {
			sawShort = true
		}
		if ttl > 100 {
			sawLong = true
		}
	}
	if !sawShort || !sawLong {
		t.Fatalf("fisheye TTL pattern not applied: %v", ttls)
	}
}

func TestPowerAwareEnableDisable(t *testing.T) {
	c, nodes := deployOLSR(t, 1, Config{})
	_ = c
	on := nodes[0]
	if err := on.olsr.EnablePowerAware(); err != nil {
		t.Fatal(err)
	}
	if !on.olsr.PowerAware() {
		t.Fatal("PowerAware = false after enable")
	}
	if on.mpr.CalculatorName() != "mpr-calculator-power" {
		t.Fatalf("calculator = %q", on.mpr.CalculatorName())
	}
	// The tuple now requires POWER_STATUS.
	if !on.olsr.Protocol().Tuple().Requires(on.node.Mgr.Ontology(), event.PowerStatus) {
		t.Fatal("tuple does not require POWER_STATUS")
	}
	// TC carries the residual-power TLV.
	on.olsr.State().SetOwnPower(0.42)
	msg := on.olsr.BuildTC(on.node.Addr)
	tlv, ok := msg.FindTLV(TLVResidualPower)
	if !ok {
		t.Fatal("TC missing residual power TLV")
	}
	if v, _ := packetbb.ParseU8(tlv.Value); v != 42 {
		t.Fatalf("power TLV = %d", v)
	}
	if err := on.olsr.DisablePowerAware(); err != nil {
		t.Fatal(err)
	}
	if on.olsr.PowerAware() || on.mpr.CalculatorName() != "mpr-calculator" {
		t.Fatal("disable did not restore base configuration")
	}
	if _, ok := on.olsr.BuildTC(on.node.Addr).FindTLV(TLVResidualPower); ok {
		t.Fatal("TC still carries power TLV after disable")
	}
}

func TestHysteresisDampsFlapping(t *testing.T) {
	clk := vclock.NewVirtual(testbed.Epoch)
	mgr, err := core.NewManager(core.Config{Node: addr("10.0.0.1"), Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	src := core.NewProtocol("sensing")
	src.SetTuple(event.Tuple{Provided: []event.Type{event.NhoodChange}})
	var passed []event.ChangeKind
	sink := core.NewProtocol("consumer")
	sink.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.NhoodChange}}})
	sink.AddHandler(core.NewHandler("h", event.NhoodChange, func(ctx *core.Context, ev *event.Event) error {
		passed = append(passed, ev.Nhood.Kind)
		return nil
	}))
	hyst := NewHysteresis("", 3)
	for _, u := range []*core.Protocol{src, hyst, sink} {
		if err := mgr.Deploy(u); err != nil {
			t.Fatal(err)
		}
	}
	nb := addr("10.0.0.2")
	appear := func() {
		src.Emit(&event.Event{Type: event.NhoodChange, Nhood: &event.NhoodPayload{Kind: event.NeighborAppeared, Neighbor: nb}})
	}
	lost := func() {
		src.Emit(&event.Event{Type: event.NhoodChange, Nhood: &event.NhoodPayload{Kind: event.NeighborLost, Neighbor: nb}})
	}
	appear() // 1: suppressed
	lost()   // passes, resets
	appear() // 1: suppressed
	appear() // 2: suppressed
	appear() // 3: passes
	mgr.WaitIdle()
	if len(passed) != 2 || passed[0] != event.NeighborLost || passed[1] != event.NeighborAppeared {
		t.Fatalf("passed = %v", passed)
	}
}
