// Package olsr implements the Optimized Link State Routing protocol as a
// MANETKit composition (§5.1, Fig 5): an OLSR ManetProtocol stacked on the
// MPR CF, from which it takes link sensing, relay selection and optimised
// flooding. The package also provides the paper's two OLSR variants —
// fisheye routing (a TC_OUT interposer) and power-aware routing (a residual
// power component plus the power-aware MPR calculator) — and the link
// hysteresis filter of Fig 5.
package olsr

import (
	"sort"
	"sync"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/route"
)

// edge is one topology tuple: lastHop advertises reachability of dest.
type edge struct {
	last mnet.Addr
	dest mnet.Addr
}

// State is the OLSR CF's S element: the topology set learned from TC
// messages, per-originator ANSN bookkeeping, learned residual power, and
// the protocol's routing table.
type State struct {
	Routes *route.Table

	mu      sync.Mutex
	topo    map[edge]time.Time   // expiry per tuple
	ansn    map[mnet.Addr]uint16 // freshest ANSN per originator
	power   map[mnet.Addr]float64
	ourANSN uint16
	msgSeq  uint16

	// Power-aware variant state.
	powerAware bool
	ownPower   float64

	// HNA (gateway) state.
	attached map[mnet.Prefix]bool     // prefixes this node announces
	hna      map[mnet.Prefix]hnaEntry // learned gateway associations
}

// NewState returns an empty OLSR state whose routing table lives on clock
// time supplied by the table.
func NewState(routes *route.Table) *State {
	return &State{
		Routes:   routes,
		topo:     make(map[edge]time.Time),
		ansn:     make(map[mnet.Addr]uint16),
		power:    make(map[mnet.Addr]float64),
		ownPower: 1.0,
	}
}

// SetOwnPower records the node's own residual battery fraction.
func (s *State) SetOwnPower(frac float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ownPower = frac
}

// OwnPower returns the node's own residual battery fraction.
func (s *State) OwnPower() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ownPower
}

// NextMsgSeq returns a fresh TC message sequence number.
func (s *State) NextMsgSeq() uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.msgSeq++
	return s.msgSeq
}

// ANSN returns the node's own advertised neighbour sequence number.
func (s *State) ANSN() uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ourANSN
}

// BumpANSN increments the node's ANSN (the advertised set changed).
func (s *State) BumpANSN() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ourANSN++
}

// RecordTC folds a TC message into the topology set: tuples (orig → dest)
// for each advertised address, expiring at expiry. Stale ANSNs are
// rejected; a fresher ANSN first flushes the originator's old tuples. It
// reports whether the topology changed.
func (s *State) RecordTC(orig mnet.Addr, ansn uint16, advertised []mnet.Addr, expiry time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.ansn[orig]; ok && seqOlder(ansn, prev) {
		return false
	}
	changed := false
	if prev, ok := s.ansn[orig]; !ok || seqOlder(prev, ansn) {
		for e := range s.topo {
			if e.last == orig {
				delete(s.topo, e)
				changed = true
			}
		}
	}
	s.ansn[orig] = ansn
	for _, d := range advertised {
		if d == orig {
			continue
		}
		e := edge{last: orig, dest: d}
		if _, ok := s.topo[e]; !ok {
			changed = true
		}
		s.topo[e] = expiry
	}
	return changed
}

// seqOlder reports whether a is older than b under 16-bit serial-number
// arithmetic (RFC 1982).
func seqOlder(a, b uint16) bool {
	return a != b && ((a < b && b-a < 0x8000) || (a > b && a-b > 0x8000))
}

// PurgeTopo drops expired tuples; it reports whether anything was removed.
func (s *State) PurgeTopo(now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := false
	for e, exp := range s.topo {
		if !exp.After(now) {
			delete(s.topo, e)
			changed = true
		}
	}
	return changed
}

// Edges returns the live topology tuples at time now, sorted.
func (s *State) Edges(now time.Time) [][2]mnet.Addr {
	s.mu.Lock()
	out := make([][2]mnet.Addr, 0, len(s.topo))
	for e, exp := range s.topo {
		if exp.After(now) {
			out = append(out, [2]mnet.Addr{e.last, e.dest})
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0].Less(out[j][0])
		}
		return out[i][1].Less(out[j][1])
	})
	return out
}

// SetPower records a node's advertised residual power (power-aware
// variant).
func (s *State) SetPower(n mnet.Addr, frac float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.power[n] = frac
}

// Power returns a node's last advertised residual power (1.0 when
// unknown).
func (s *State) Power(n mnet.Addr) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.power[n]; ok {
		return f
	}
	return 1.0
}

// hopEntry is an intermediate of the route calculation.
type hopEntry struct {
	nextHop mnet.Addr
	metric  int
}

// ComputeRoutes rebuilds the routing table from the symmetric
// neighbourhood, the 2-hop set and the topology tuples — the RFC 3626
// §10 shortest-path calculation, done as an iterative relaxation over
// last-hop tuples. Returns the number of reachable destinations.
func (s *State) ComputeRoutes(self mnet.Addr, oneHop []mnet.Addr, twoHop map[mnet.Addr][]mnet.Addr, now time.Time, holdTime time.Duration, proto string) int {
	best := make(map[mnet.Addr]hopEntry)
	for _, nb := range oneHop {
		best[nb] = hopEntry{nextHop: nb, metric: 1}
	}
	for dst, vias := range twoHop {
		if _, ok := best[dst]; ok || len(vias) == 0 {
			continue
		}
		best[dst] = hopEntry{nextHop: vias[0], metric: 2}
	}
	edges := s.Edges(now)
	// Relax until fixpoint: route(dest) = route(last) + 1.
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			last, dest := e[0], e[1]
			if dest == self {
				continue
			}
			le, ok := best[last]
			if !ok {
				continue
			}
			cand := hopEntry{nextHop: le.nextHop, metric: le.metric + 1}
			if cur, ok := best[dest]; !ok || cand.metric < cur.metric {
				best[dest] = cand
				changed = true
			}
		}
	}

	// Install: replace the table's contents with the fresh computation.
	seen := make(map[mnet.Prefix]bool, len(best))
	for dst, he := range best {
		p := mnet.HostPrefix(dst)
		seen[p] = true
		s.Routes.Upsert(route.Entry{
			Dst:   p,
			Paths: []route.Path{{NextHop: he.nextHop, Metric: he.metric, Expires: now.Add(holdTime)}},
			Valid: true,
			Proto: proto,
		})
	}
	for _, e := range s.Routes.Entries() {
		if !seen[e.Dst] {
			s.Routes.Remove(e.Dst)
		}
	}
	return len(best)
}
