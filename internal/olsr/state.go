// Package olsr implements the Optimized Link State Routing protocol as a
// MANETKit composition (§5.1, Fig 5): an OLSR ManetProtocol stacked on the
// MPR CF, from which it takes link sensing, relay selection and optimised
// flooding. The package also provides the paper's two OLSR variants —
// fisheye routing (a TC_OUT interposer) and power-aware routing (a residual
// power component plus the power-aware MPR calculator) — and the link
// hysteresis filter of Fig 5.
package olsr

import (
	"sort"
	"sync"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/route"
)

// origTopo is one originator's slice of the topology set: the destinations
// this last hop advertises, keyed by expiry, plus a lazily rebuilt sorted
// view that gives the shortest-path BFS a deterministic, allocation-free
// iteration order.
type origTopo struct {
	dests  map[mnet.Addr]time.Time
	sorted []mnet.Addr
	stale  bool // sorted needs rebuilding from dests
}

// ensureSorted rebuilds the sorted destination list after the key set
// changed. Steady state (expiry-only refreshes) never marks the list stale,
// so recomputes between topology changes pay nothing here.
//
//mk:allow hotalloc rebuild runs only after the destination set changed; steady-state recomputes see stale=false
func (ot *origTopo) ensureSorted() {
	if !ot.stale {
		return
	}
	ot.sorted = ot.sorted[:0]
	for d := range ot.dests {
		ot.sorted = append(ot.sorted, d)
	}
	sortAddrs(ot.sorted)
	ot.stale = false
}

func sortAddrs(a []mnet.Addr) {
	//mk:allow hotalloc sort.Slice closure; callers run this only on cold rebuild edges
	sort.Slice(a, func(i, j int) bool { return a[i].Less(a[j]) })
}

// hnaAssoc pairs a learned gateway prefix with its association entry for
// the sorted install pass.
type hnaAssoc struct {
	p mnet.Prefix
	e hnaEntry
}

// spScratch is the reusable shortest-path working set. Addresses map to
// dense slots that stay stable across recomputes; per-slot arrays are
// generation-stamped so "visited this round" is one compare instead of a
// map clear. All slices are grown only in ensure/slotOf, so the BFS itself
// runs allocation-free once the network has been seen.
type spScratch struct {
	slot  map[mnet.Addr]int32 // addr → dense slot, monotonic
	addrs []mnet.Addr         // slot → addr
	dist  []int32             // slot → hop count this generation
	nhop  []mnet.Addr         // slot → canonical next hop this generation
	gen   []uint32            // slot → generation stamp
	cur   uint32              // current generation

	order   []int32 // slots in visit order (frontier by frontier)
	front   []int32
	next    []int32
	twoKeys []mnet.Addr
	desired []route.ProtoRoute
	hnaLive []hnaAssoc
}

// ensure grows the frontier and install buffers to hold at most bound
// visited nodes plus hnaN gateway prefixes.
//
//mk:allow hotalloc scratch growth is amortized: buffers are reused and grow only when the network outgrows every previous recompute
func (sc *spScratch) ensure(bound, hnaN int) {
	if sc.slot == nil {
		sc.slot = make(map[mnet.Addr]int32)
	}
	if cap(sc.order) < bound {
		sc.order = make([]int32, bound)
		sc.front = make([]int32, bound)
		sc.next = make([]int32, bound)
	} else {
		sc.order = sc.order[:cap(sc.order)]
		sc.front = sc.front[:cap(sc.front)]
		sc.next = sc.next[:cap(sc.next)]
	}
	if cap(sc.desired) < bound+hnaN {
		sc.desired = make([]route.ProtoRoute, bound+hnaN)
	} else {
		sc.desired = sc.desired[:cap(sc.desired)]
	}
}

// slotOf returns a's dense slot, creating one on first sight. New slots are
// the only allocating path of the BFS and appear once per distinct address.
//
//mk:allow hotalloc new-slot appends happen once per distinct address; the steady-state BFS never grows
func (sc *spScratch) slotOf(a mnet.Addr) int32 {
	if s, ok := sc.slot[a]; ok {
		return s
	}
	s := int32(len(sc.addrs))
	sc.slot[a] = s
	sc.addrs = append(sc.addrs, a)
	sc.dist = append(sc.dist, 0)
	sc.nhop = append(sc.nhop, mnet.Addr{})
	sc.gen = append(sc.gen, 0)
	return s
}

// resetGen invalidates every generation stamp after the uint32 counter
// wraps (once per ~4 billion recomputes).
func (sc *spScratch) resetGen() {
	for i := range sc.gen {
		sc.gen[i] = 0
	}
	sc.cur = 1
}

// State is the OLSR CF's S element: the topology set learned from TC
// messages (indexed per originator), per-originator ANSN bookkeeping,
// learned residual power, and the protocol's routing table.
type State struct {
	Routes *route.Table

	mu      sync.Mutex
	topo    map[mnet.Addr]*origTopo // advertised destinations per last hop
	tuples  int                     // live+expired tuple count across topo
	ansn    map[mnet.Addr]uint16    // freshest ANSN per originator
	power   map[mnet.Addr]float64
	ourANSN uint16
	msgSeq  uint16
	scratch spScratch

	// Power-aware variant state.
	powerAware bool
	ownPower   float64

	// HNA (gateway) state.
	attached map[mnet.Prefix]bool     // prefixes this node announces
	hna      map[mnet.Prefix]hnaEntry // learned gateway associations
}

// NewState returns an empty OLSR state whose routing table lives on clock
// time supplied by the table.
func NewState(routes *route.Table) *State {
	return &State{
		Routes:   routes,
		topo:     make(map[mnet.Addr]*origTopo),
		ansn:     make(map[mnet.Addr]uint16),
		power:    make(map[mnet.Addr]float64),
		ownPower: 1.0,
	}
}

// SetOwnPower records the node's own residual battery fraction.
func (s *State) SetOwnPower(frac float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ownPower = frac
}

// OwnPower returns the node's own residual battery fraction.
func (s *State) OwnPower() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ownPower
}

// NextMsgSeq returns a fresh TC message sequence number.
func (s *State) NextMsgSeq() uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.msgSeq++
	return s.msgSeq
}

// ANSN returns the node's own advertised neighbour sequence number.
func (s *State) ANSN() uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ourANSN
}

// BumpANSN increments the node's ANSN (the advertised set changed).
func (s *State) BumpANSN() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ourANSN++
}

// RecordTC folds a TC message into the topology set: tuples (orig → dest)
// for each advertised address, expiring at expiry. Stale ANSNs are
// rejected; a fresher ANSN first flushes the originator's old tuples —
// O(degree) on the per-originator index, where the flat tuple set forced a
// full O(E) scan per fresher TC. It reports whether the topology changed.
func (s *State) RecordTC(orig mnet.Addr, ansn uint16, advertised []mnet.Addr, expiry time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, known := s.ansn[orig]
	if known && seqOlder(ansn, prev) {
		return false
	}
	ot := s.topo[orig]
	changed := false
	if (!known || seqOlder(prev, ansn)) && ot != nil && len(ot.dests) > 0 {
		s.tuples -= len(ot.dests)
		clear(ot.dests)
		ot.sorted = ot.sorted[:0]
		ot.stale = false
		changed = true
	}
	s.ansn[orig] = ansn
	for _, d := range advertised {
		if d == orig {
			continue
		}
		if ot == nil {
			ot = &origTopo{dests: make(map[mnet.Addr]time.Time, len(advertised))}
			s.topo[orig] = ot
		}
		if _, ok := ot.dests[d]; !ok {
			changed = true
			s.tuples++
			ot.stale = true
		}
		ot.dests[d] = expiry
	}
	return changed
}

// seqOlder reports whether a is older than b under 16-bit serial-number
// arithmetic (RFC 1982).
func seqOlder(a, b uint16) bool {
	return a != b && ((a < b && b-a < 0x8000) || (a > b && a-b > 0x8000))
}

// PurgeTopo drops expired tuples; it reports whether anything was removed.
func (s *State) PurgeTopo(now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := false
	for orig, ot := range s.topo {
		for d, exp := range ot.dests {
			if !exp.After(now) {
				delete(ot.dests, d)
				s.tuples--
				ot.stale = true
				changed = true
			}
		}
		if len(ot.dests) == 0 {
			delete(s.topo, orig)
		}
	}
	return changed
}

// Edges returns the live topology tuples at time now, sorted.
func (s *State) Edges(now time.Time) [][2]mnet.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	origins := make([]mnet.Addr, 0, len(s.topo))
	for o := range s.topo {
		origins = append(origins, o)
	}
	sortAddrs(origins)
	out := make([][2]mnet.Addr, 0, s.tuples)
	for _, o := range origins {
		ot := s.topo[o]
		ot.ensureSorted()
		for _, d := range ot.sorted {
			if ot.dests[d].After(now) {
				out = append(out, [2]mnet.Addr{o, d})
			}
		}
	}
	return out
}

// SetPower records a node's advertised residual power (power-aware
// variant).
func (s *State) SetPower(n mnet.Addr, frac float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.power[n] = frac
}

// Power returns a node's last advertised residual power (1.0 when
// unknown).
func (s *State) Power(n mnet.Addr) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.power[n]; ok {
		return f
	}
	return 1.0
}

// collectLiveHNA gathers the live gateway associations in sorted prefix
// order, expiring stale ones in passing. Called with s.mu held; uses the
// scratch buffer so repeat recomputes reuse one backing array.
//
//mk:allow hotalloc HNA scratch reuses one backing array; gateway sets are small and the sort closure rides that cold edge
func (s *State) collectLiveHNA(now time.Time) []hnaAssoc {
	if len(s.hna) == 0 {
		return nil
	}
	live := s.scratch.hnaLive[:0]
	for p, e := range s.hna {
		if e.expires.After(now) {
			live = append(live, hnaAssoc{p, e})
		} else {
			delete(s.hna, p)
		}
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].p.Addr != live[j].p.Addr {
			return live[i].p.Addr.Less(live[j].p.Addr)
		}
		return live[i].p.Bits < live[j].p.Bits
	})
	s.scratch.hnaLive = live
	return live
}

// sortedTwoHopKeys materialises the 2-hop destination set in sorted order
// into the reusable scratch key buffer. Called with s.mu held. Insertion
// sort rather than sort.Slice: the set is degree-bounded and this runs on
// every recompute, where sort.Slice's closure would allocate.
//
//mk:allow hotalloc key buffer is scratch-backed and grows amortized
func (s *State) sortedTwoHopKeys(twoHop map[mnet.Addr][]mnet.Addr) []mnet.Addr {
	keys := s.scratch.twoKeys[:0]
	for dst := range twoHop {
		//mk:allow maporder keys are insertion-sorted below before they are returned
		keys = append(keys, dst)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j].Less(keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	s.scratch.twoKeys = keys
	return keys
}

// ComputeRoutes rebuilds the routing table from the symmetric
// neighbourhood, the 2-hop set and the topology tuples — the RFC 3626 §10
// shortest-path calculation. With unit metrics BFS is exact Dijkstra, so
// the calculation runs as a layered frontier expansion over the
// per-originator index: seed the 1-hop neighbourhood at metric 1 and the
// strict 2-hop set at metric 2 (via its minimum sorted via), then expand
// level by level through each last hop's sorted destination list. Within a
// level, equal-cost discoveries min-merge the next hop, so every
// destination ends at the canonical (lexicographically smallest) next hop
// over all shortest paths — a deterministic function of the topology alone,
// independent of arrival order. Learned HNA prefixes resolve against the
// freshly visited gateway and install in the same batch.
//
// The result diff-installs into the routing table via ReplaceProto: only
// changed entries fire callbacks or touch the FIB, vanished ones are
// removed by mark generation, and a steady-state recompute is byte-free.
// Scratch buffers make the whole pass allocation-free once the network has
// been seen. Calls are serialized by the protocol's critical section; the
// method is not reentrant. Returns the number of reachable destinations.
//
//mk:hotpath
func (s *State) ComputeRoutes(self mnet.Addr, oneHop []mnet.Addr, twoHop map[mnet.Addr][]mnet.Addr, now time.Time, holdTime time.Duration, proto string) int {
	s.mu.Lock()
	sc := &s.scratch
	bound := len(oneHop) + len(twoHop) + s.tuples
	sc.ensure(bound, len(s.hna))
	sc.cur++
	if sc.cur == 0 {
		sc.resetGen()
	}
	cur := sc.cur

	norder, nfront, nnext := 0, 0, 0
	for _, nb := range oneHop {
		ns := sc.slotOf(nb)
		if sc.gen[ns] == cur {
			continue
		}
		sc.gen[ns] = cur
		sc.dist[ns] = 1
		sc.nhop[ns] = nb
		sc.order[norder] = ns
		norder++
		sc.front[nfront] = ns
		nfront++
	}
	for _, dst := range s.sortedTwoHopKeys(twoHop) {
		vias := twoHop[dst]
		if len(vias) == 0 {
			continue
		}
		ds := sc.slotOf(dst)
		if sc.gen[ds] == cur {
			continue // already a 1-hop neighbour
		}
		sc.gen[ds] = cur
		sc.dist[ds] = 2
		sc.nhop[ds] = vias[0]
		sc.order[norder] = ds
		norder++
		sc.next[nnext] = ds
		nnext++
	}

	front, next := sc.front, sc.next
	d := int32(1)
	if nfront == 0 {
		// No symmetric neighbours, but a 2-hop set was supplied: the BFS
		// starts at the dist-2 frontier (the historical relaxation expanded
		// from those seeds too).
		front, next = next, front
		nfront, nnext = nnext, 0
		d = 2
	}
	for ; nfront > 0; d++ {
		for fi := 0; fi < nfront; fi++ {
			us := front[fi]
			ot := s.topo[sc.addrs[us]]
			if ot == nil {
				continue
			}
			ot.ensureSorted()
			unh := sc.nhop[us]
			for _, dst := range ot.sorted {
				if dst == self || !ot.dests[dst].After(now) {
					continue
				}
				ds := sc.slotOf(dst)
				if sc.gen[ds] != cur {
					sc.gen[ds] = cur
					sc.dist[ds] = d + 1
					sc.nhop[ds] = unh
					sc.order[norder] = ds
					norder++
					next[nnext] = ds
					nnext++
				} else if sc.dist[ds] == d+1 && unh.Less(sc.nhop[ds]) {
					sc.nhop[ds] = unh
				}
			}
		}
		front, next = next, front
		nfront, nnext = nnext, 0
	}

	exp := now.Add(holdTime)
	nd := 0
	for i := 0; i < norder; i++ {
		slot := sc.order[i]
		sc.desired[nd] = route.ProtoRoute{
			Dst:     mnet.HostPrefix(sc.addrs[slot]),
			NextHop: sc.nhop[slot],
			Metric:  int(sc.dist[slot]),
			Expires: exp,
		}
		nd++
	}
	// Gateway prefixes route like their gateway, one hop beyond it; skip
	// associations whose gateway is unreachable this round.
	for _, a := range s.collectLiveHNA(now) {
		gs, ok := sc.slot[a.e.gateway]
		if !ok || sc.gen[gs] != cur {
			continue
		}
		sc.desired[nd] = route.ProtoRoute{
			Dst:     a.p,
			NextHop: sc.nhop[gs],
			Metric:  int(sc.dist[gs]) + 1,
			Expires: a.e.expires,
		}
		nd++
	}
	s.mu.Unlock()

	s.Routes.ReplaceProto(proto, sc.desired[:nd])
	return norder
}
