package olsr

import (
	"sort"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/event"
	"manetkit/internal/mnet"
	"manetkit/internal/packetbb"
)

// Host and Network Association (HNA) support, as in RFC 3626 §12: nodes
// with attached (non-MANET) networks periodically flood HNA messages
// associating their address with the network prefixes they can reach;
// every node installs prefix routes towards the advertising gateway. HNA
// is enabled by EnableHNA — another fine-grained reconfiguration: it plugs
// an hna-generator source and an hna-handler into the OLSR CF and extends
// the event tuple declaratively.

// hnaEntry is one learned gateway association.
type hnaEntry struct {
	gateway mnet.Addr
	expires time.Time
}

// AdvertiseNetwork announces an attached network prefix in this node's HNA
// messages (call EnableHNA first, or the advertisement never leaves).
func (o *OLSR) AdvertiseNetwork(p mnet.Prefix) {
	o.state.mu.Lock()
	defer o.state.mu.Unlock()
	if o.state.attached == nil {
		o.state.attached = make(map[mnet.Prefix]bool)
	}
	o.state.attached[p] = true
}

// WithdrawNetwork stops announcing the prefix; remote routes age out with
// the HNA hold time.
func (o *OLSR) WithdrawNetwork(p mnet.Prefix) {
	o.state.mu.Lock()
	defer o.state.mu.Unlock()
	delete(o.state.attached, p)
}

// AttachedNetworks returns the prefixes this node currently announces.
func (o *OLSR) AttachedNetworks() []mnet.Prefix {
	o.state.mu.Lock()
	defer o.state.mu.Unlock()
	out := make([]mnet.Prefix, 0, len(o.state.attached))
	for p := range o.state.attached {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr.Less(out[j].Addr)
		}
		return out[i].Bits < out[j].Bits
	})
	return out
}

// EnableHNA plugs gateway support into a (possibly running) OLSR CF:
// an hna-generator Event Source and an hna-handler, plus the HNA event
// types on the tuple. interval defaults to the TC interval.
func (o *OLSR) EnableHNA(interval time.Duration) error {
	if interval <= 0 {
		interval = o.cfg.TCInterval
	}
	if err := o.proto.AddHandler(core.NewHandler("hna-handler", event.HNAIn, o.onHNA)); err != nil {
		return err
	}
	if err := o.proto.AddSource(core.NewSource("hna-generator", interval, o.cfg.Jitter, o.emitHNA)); err != nil {
		return err
	}
	t := o.proto.Tuple()
	t.Required = append(t.Required, event.Requirement{Type: event.HNAIn})
	t.Provided = append(t.Provided, event.HNAOut)
	o.proto.SetTuple(t)
	return nil
}

// DisableHNA removes gateway support; learned prefixes age out.
func (o *OLSR) DisableHNA() error {
	if err := o.proto.RemoveSource("hna-generator"); err != nil {
		return err
	}
	if err := o.proto.RemoveHandler("hna-handler"); err != nil {
		return err
	}
	t := o.proto.Tuple()
	req := t.Required[:0:0]
	for _, r := range t.Required {
		if r.Type != event.HNAIn {
			req = append(req, r)
		}
	}
	prov := t.Provided[:0:0]
	for _, p := range t.Provided {
		if p != event.HNAOut {
			prov = append(prov, p)
		}
	}
	t.Required, t.Provided = req, prov
	o.proto.SetTuple(t)
	return nil
}

// BuildHNA assembles the node's HNA message: an address block of attached
// network prefixes.
func (o *OLSR) BuildHNA(self mnet.Addr) *packetbb.Message {
	attached := o.AttachedNetworks()
	if len(attached) == 0 {
		return nil
	}
	blk := packetbb.AddrBlock{}
	for _, p := range attached {
		blk.Addrs = append(blk.Addrs, p.Addr)
		blk.PrefixLens = append(blk.PrefixLens, uint8(p.Bits))
	}
	// Flag every address as a gateway association.
	blk.TLVs = append(blk.TLVs, packetbb.AddrTLV{
		Type: packetbb.ATLVGateway, IndexStart: 0, IndexStop: uint8(len(blk.Addrs) - 1),
	})
	return &packetbb.Message{
		Type:       packetbb.MsgHNA,
		Originator: self,
		HopLimit:   255,
		SeqNum:     o.state.NextMsgSeq(),
		AddrBlocks: []packetbb.AddrBlock{blk},
	}
}

func (o *OLSR) emitHNA(ctx *core.Context) {
	msg := o.BuildHNA(ctx.Node())
	if msg == nil {
		return
	}
	o.m.Flooder().Seen(ctx.Node(), msg.SeqNum, ctx.Clock().Now())
	ctx.Emit(&event.Event{Type: event.HNAOut, Msg: msg, Dst: mnet.Broadcast})
}

// onHNA learns gateway associations and forwards the flood via MPR.
func (o *OLSR) onHNA(ctx *core.Context, ev *event.Event) error {
	msg := ev.Msg
	if msg == nil || msg.Originator == ctx.Node() || len(msg.AddrBlocks) == 0 {
		return nil
	}
	now := ctx.Clock().Now()
	blk := &msg.AddrBlocks[0]
	o.state.mu.Lock()
	if o.state.hna == nil {
		o.state.hna = make(map[mnet.Prefix]hnaEntry)
	}
	for i, a := range blk.Addrs {
		bits := 8 * mnet.AddrLen
		if len(blk.PrefixLens) == len(blk.Addrs) {
			bits = int(blk.PrefixLens[i])
		}
		p := mnet.Prefix{Addr: a, Bits: bits}
		o.state.hna[p] = hnaEntry{gateway: msg.Originator, expires: now.Add(3 * o.cfg.TCInterval)}
	}
	o.state.mu.Unlock()
	o.markDirty(ctx)

	if msg.HopLimit > 1 && o.m.Flooder().ShouldForward(msg.Originator, msg.SeqNum, ev.Src, now) {
		fwd := msg.Clone()
		fwd.HopLimit--
		fwd.HopCount++
		ctx.Emit(&event.Event{Type: event.HNAOut, Msg: fwd, Dst: mnet.Broadcast})
	}
	return nil
}
