package zrp

import (
	"sync"
	"testing"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/emunet"
	"manetkit/internal/mnet"
	"manetkit/internal/mpr"
	"manetkit/internal/route"
	"manetkit/internal/testbed"
)

type zrpNode struct {
	node  *testbed.Node
	relay *mpr.MPR
	zrp   *ZRP
}

func deployZRP(t *testing.T, n int, cfg Config) (*testbed.Cluster, []*zrpNode) {
	t.Helper()
	c, err := testbed.New(n, testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	nodes := make([]*zrpNode, n)
	for i, node := range c.Nodes {
		relay := mpr.New("", mpr.Config{HelloInterval: time.Second})
		cfg := cfg
		cfg.Clock = c.Clock
		cfg.FIB = node.FIB()
		cfg.Device = node.Sys.NIC().Device()
		z := New("", relay, cfg)
		for _, u := range []*core.Protocol{relay.Protocol(), z.Protocol()} {
			if err := node.Mgr.Deploy(u); err != nil {
				t.Fatal(err)
			}
			if err := u.Start(); err != nil {
				t.Fatal(err)
			}
		}
		nodes[i] = &zrpNode{node: node, relay: relay, zrp: z}
	}
	return c, nodes
}

func TestIntrazoneRoutesAreProactive(t *testing.T) {
	// Line of 3: everything is within each node's radius-2 zone; no
	// discovery ever happens.
	c, nodes := deployZRP(t, 3, Config{})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(6 * time.Second)
	for i, zn := range nodes {
		if got := zn.zrp.Routes().ValidCount(); got != 2 {
			t.Fatalf("node %d has %d zone routes, want 2", i, got)
		}
	}
	// End-to-end data without discovery.
	var mu sync.Mutex
	delivered := 0
	nodes[2].node.Sys.Filter().OnDeliver(func(mnet.Addr, []byte) {
		mu.Lock()
		delivered++
		mu.Unlock()
	})
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[2], []byte("in-zone"))
	c.Run(time.Second)
	mu.Lock()
	defer mu.Unlock()
	if delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
	if st := nodes[0].zrp.State().Stats(); st.Discoveries != 0 {
		t.Fatalf("in-zone traffic triggered discovery: %+v", st)
	}
}

func TestInterzoneDiscoveryAnsweredByZone(t *testing.T) {
	// Line of 6: node 1 -> node 6 is out of zone; some node whose zone
	// covers node 6 (node 4 or 5) answers before the RREQ reaches node 6.
	c, nodes := deployZRP(t, 6, Config{})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(6 * time.Second)

	var mu sync.Mutex
	delivered := 0
	nodes[5].node.Sys.Filter().OnDeliver(func(mnet.Addr, []byte) {
		mu.Lock()
		delivered++
		mu.Unlock()
	})
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[5], []byte("out-of-zone"))
	c.Run(2 * time.Second)

	mu.Lock()
	if delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
	mu.Unlock()
	_, p, err := nodes[0].zrp.Routes().Lookup(c.Addrs()[5])
	if err != nil {
		t.Fatalf("no interzone route: %v", err)
	}
	if p.Metric != 5 || p.NextHop != c.Addrs()[1] {
		t.Fatalf("interzone route = %+v", p)
	}
	// A zone answer happened; the target never answered itself.
	var zoneAnswers, terminalAnswers uint64
	for _, zn := range nodes {
		st := zn.zrp.State().Stats()
		zoneAnswers += st.ZoneAnswers
		terminalAnswers += st.TerminalAnswers
	}
	if zoneAnswers == 0 {
		t.Fatal("no in-zone node answered for the target")
	}
	if terminalAnswers != 0 {
		t.Fatalf("target answered itself despite zone coverage: %d", terminalAnswers)
	}
}

func TestHybridFloodShallowerThanReactive(t *testing.T) {
	// On the 6-line, ZRP's RREQ stops at the first node whose zone covers
	// the target. Pure reactive flooding would forward at nodes 2,3,4,5;
	// ZRP must forward strictly fewer times.
	c, nodes := deployZRP(t, 6, Config{})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(6 * time.Second)
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[5], []byte("x"))
	c.Run(2 * time.Second)
	var forwards uint64
	for _, zn := range nodes {
		forwards += zn.zrp.State().Stats().RREQForwards
	}
	if forwards >= 4 {
		t.Fatalf("hybrid flood forwarded %d times; expected < 4 (pure reactive)", forwards)
	}
}

func TestZoneRepairAfterLinkBreak(t *testing.T) {
	c, nodes := deployZRP(t, 3, Config{})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(6 * time.Second)
	if _, _, err := nodes[0].zrp.Routes().Lookup(c.Addrs()[2]); err != nil {
		t.Fatal("setup: no zone route")
	}
	// Cut 2-3: node 3 leaves node 1's zone and the route ages out.
	c.Net.CutLink(c.Addrs()[1], c.Addrs()[2])
	c.Run(15 * time.Second)
	if _, _, err := nodes[0].zrp.Routes().Lookup(c.Addrs()[2]); err == nil {
		t.Fatal("zone route survived partition")
	}
	// Heal: the zone re-forms.
	if err := c.Net.SetLink(c.Addrs()[1], c.Addrs()[2], qualityOf(c)); err != nil {
		t.Fatal(err)
	}
	c.Run(10 * time.Second)
	if _, _, err := nodes[0].zrp.Routes().Lookup(c.Addrs()[2]); err != nil {
		t.Fatal("zone route did not re-form after heal")
	}
}

func TestGiveUpUnreachable(t *testing.T) {
	c, nodes := deployZRP(t, 2, Config{RREQWait: 100 * time.Millisecond, RREQTries: 2})
	// No links.
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[1], []byte("x"))
	c.Run(2 * time.Second)
	if st := nodes[0].zrp.State().Stats(); st.GiveUps != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func qualityOf(c *testbed.Cluster) emunet.Quality {
	_ = c
	return emunet.DefaultQuality()
}

// TestZeroRadiusZone is the degenerate-zone case: an isolated node has no
// symmetric neighbours, so its zone is empty and nothing is reachable
// proactively. A send must go through the full IERP discovery and give up
// cleanly — never an intrazone hit, never a route.
func TestZeroRadiusZone(t *testing.T) {
	// Two nodes, deliberately never linked.
	c, nodes := deployZRP(t, 2, Config{RREQWait: 500 * time.Millisecond, RREQTries: 2})
	c.Run(6 * time.Second)

	if got := nodes[0].zrp.Routes().ValidCount(); got != 0 {
		t.Fatalf("isolated node has %d zone routes, want 0", got)
	}
	if err := nodes[0].node.Sys.Filter().SendData(c.Addrs()[1], []byte("void")); err != nil {
		t.Fatal(err)
	}
	// Past both attempts (500ms + 1s backoff).
	c.Run(3 * time.Second)

	st := nodes[0].zrp.State().Stats()
	if st.IntrazoneHits != 0 {
		t.Fatalf("empty zone produced an intrazone hit: %+v", st)
	}
	if st.Discoveries != 1 || st.GiveUps != 1 {
		t.Fatalf("discovery did not run to give-up: %+v", st)
	}
	if st.Retries != 1 {
		t.Fatalf("retries = %d, want 1 (RREQTries=2)", st.Retries)
	}
	if got := nodes[0].zrp.Routes().ValidCount(); got != 0 {
		t.Fatalf("give-up left %d routes", got)
	}
}

// TestBorderlessZone is the opposite degenerate case: on a clique every
// node is inside every other node's zone, so the network has no zone
// border at all — routing is purely proactive and IERP never fires.
func TestBorderlessZone(t *testing.T) {
	c, nodes := deployZRP(t, 4, Config{})
	if err := c.Clique(); err != nil {
		t.Fatal(err)
	}
	c.Run(6 * time.Second)

	for i, zn := range nodes {
		if got := zn.zrp.Routes().ValidCount(); got != 3 {
			t.Fatalf("node %d has %d zone routes, want 3", i, got)
		}
	}
	var mu sync.Mutex
	delivered := 0
	for _, zn := range nodes[1:] {
		zn.node.Sys.Filter().OnDeliver(func(mnet.Addr, []byte) {
			mu.Lock()
			delivered++
			mu.Unlock()
		})
	}
	for _, dst := range c.Addrs()[1:] {
		if err := nodes[0].node.Sys.Filter().SendData(dst, []byte("borderless")); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(time.Second)

	mu.Lock()
	got := delivered
	mu.Unlock()
	if got != 3 {
		t.Fatalf("delivered = %d, want 3", got)
	}
	for i, zn := range nodes {
		st := zn.zrp.State().Stats()
		if st.Discoveries != 0 || st.ZoneAnswers != 0 || st.TerminalAnswers != 0 {
			t.Fatalf("node %d ran IERP machinery on a borderless network: %+v", i, st)
		}
	}
}

func TestZoneRefreshIsChurnFree(t *testing.T) {
	// Once the zone has converged, periodic IARP refreshes must be pure
	// lifetime extensions: no route-change callbacks, no FIB writes.
	c, nodes := deployZRP(t, 3, Config{})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(6 * time.Second)
	mid := nodes[1]
	if got := mid.zrp.Routes().ValidCount(); got != 2 {
		t.Fatalf("zone not converged: %d routes", got)
	}
	var mu sync.Mutex
	churn := 0
	mid.zrp.Routes().OnChange(func(route.ChangeKind, route.Entry) {
		mu.Lock()
		churn++
		mu.Unlock()
	})
	fibOps := mid.node.FIB().Ops()
	c.Run(10 * time.Second) // several ZoneHold periods of steady state
	mu.Lock()
	defer mu.Unlock()
	if churn != 0 {
		t.Fatalf("steady-state zone refresh fired %d change callbacks", churn)
	}
	if got := mid.node.FIB().Ops(); got != fibOps {
		t.Fatalf("steady-state zone refresh wrote the FIB: ops %d -> %d", fibOps, got)
	}
	if got := mid.zrp.Routes().ValidCount(); got != 2 {
		t.Fatalf("zone routes decayed during refresh-only window: %d", got)
	}
}
