// Package zrp implements a zone-routing hybrid protocol in the style of
// ZRP (Haas et al., the paper's §2 hybrid category) as a MANETKit
// composition — the protocol *hybridisation* the paper names as future
// work (§7), built almost entirely from existing building blocks:
//
//   - IARP (intrazone, proactive): the MPR CF's link sensing already
//     yields the radius-2 zone (symmetric neighbours + their symmetric
//     neighbours); ZRP folds it straight into its routing table, so
//     in-zone destinations never need discovery.
//   - IERP (interzone, reactive): DYMO-style route requests, with the
//     hybrid twist that any node whose *zone* contains the target answers
//     on its behalf — discoveries terminate a zone radius early and
//     floods stay shallower than pure reactive routing.
//
// ZRP stacks on an MPR CF exactly like OLSR does (Fig 5's pattern) and is
// deployed/undeployed like any other ManetProtocol.
package zrp

import (
	"sort"
	"sync"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/event"
	"manetkit/internal/metrics"
	"manetkit/internal/mnet"
	"manetkit/internal/mpr"
	"manetkit/internal/neighbor"
	"manetkit/internal/packetbb"
	"manetkit/internal/route"
	"manetkit/internal/vclock"
)

// UnitName is the ZRP CF's default unit name.
const UnitName = "zrp"

// tlvZoneDist carries, on a ZRP RREP, the answering node's distance to the
// target (u8) so reply forwarders can compute full path metrics.
const tlvZoneDist uint8 = 66

// Config parameterises the ZRP CF. The zone radius is fixed at 2 — the
// radius the MPR CF's link state provides for free.
type Config struct {
	// RouteLifetime is the reactive-route validity (default 5s).
	RouteLifetime time.Duration
	// ZoneHold is the proactive in-zone route validity (default 7s,
	// refreshed continuously from link state).
	ZoneHold time.Duration
	// RREQWait is the per-attempt reply wait (default 1s).
	RREQWait time.Duration
	// RREQTries bounds discovery attempts (default 3).
	RREQTries int
	// HopLimit caps interzone control propagation (default 10).
	HopLimit uint8
	// FIB, when non-nil, receives the protocol's routes.
	FIB *route.FIB
	// Device names the FIB device for installed routes.
	Device string
	// Clock drives route lifetimes before deployment (defaults to real).
	Clock vclock.Clock
}

func (c *Config) fill() {
	if c.RouteLifetime <= 0 {
		c.RouteLifetime = 5 * time.Second
	}
	if c.ZoneHold <= 0 {
		c.ZoneHold = 7 * time.Second
	}
	if c.RREQWait <= 0 {
		c.RREQWait = time.Second
	}
	if c.RREQTries <= 0 {
		c.RREQTries = 3
	}
	if c.HopLimit == 0 {
		c.HopLimit = 10
	}
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
}

type dupKey struct {
	orig mnet.Addr
	seq  uint16
}

type pending struct {
	tries int
	timer vclock.Timer
}

// Stats counts ZRP activity.
type Stats struct {
	IntrazoneHits   uint64 // NO_ROUTE satisfied proactively
	Discoveries     uint64 // interzone discoveries started
	Retries         uint64
	GiveUps         uint64
	RREQForwards    uint64
	ZoneAnswers     uint64 // RREPs sent because the target was in our zone
	TerminalAnswers uint64 // RREPs sent by the target itself
}

// State is the ZRP CF's S element.
type State struct {
	Routes *route.Table

	mu      sync.Mutex
	seq     uint16
	pending map[mnet.Addr]*pending
	dupes   map[dupKey]time.Time
	stats   Stats
}

// NewState returns an empty ZRP state.
func NewState(routes *route.Table) *State {
	return &State{
		Routes:  routes,
		pending: make(map[mnet.Addr]*pending),
		dupes:   make(map[dupKey]time.Time),
	}
}

// NextSeq increments and returns the node's sequence number.
func (s *State) NextSeq() uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	if s.seq == 0 {
		s.seq = 1
	}
	return s.seq
}

// Stats returns a snapshot of the protocol counters.
func (s *State) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *State) bump(fn func(*Stats)) {
	s.mu.Lock()
	fn(&s.stats)
	s.mu.Unlock()
}

func (s *State) seenDup(k dupKey, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, dup := s.dupes[k]
	s.dupes[k] = now
	return dup
}

// ZRP is the hybrid zone-routing CF.
type ZRP struct {
	proto *core.Protocol
	relay *mpr.MPR
	state *State
	cfg   Config

	// Zone-refresh scratch, reused across refreshes so a steady-state IARP
	// pass stays allocation-free. Guarded by the protocol's critical
	// section like the rest of the refresh path.
	zoneScratch []route.ProtoRoute
	zoneKeys    []mnet.Addr

	// Instruments, resolved from the deployment's registry on Start; nil
	// (no-op) when the deployment carries no metrics.
	mIntrazone   *metrics.Counter // NO_ROUTE satisfied from the zone
	mDiscoveries *metrics.Counter // interzone (IERP) discoveries started
	mZoneAnswers *metrics.Counter // RREPs sent on an in-zone target's behalf
	mTerminal    *metrics.Counter // RREPs sent by the target itself
}

// New builds a ZRP CF stacked on the given MPR CF (which supplies the
// zone's link state).
func New(name string, relay *mpr.MPR, cfg Config) *ZRP {
	if name == "" {
		name = UnitName
	}
	cfg.fill()
	z := &ZRP{proto: core.NewProtocol(name), relay: relay, cfg: cfg}
	rt := route.NewTable(cfg.Clock)
	if cfg.FIB != nil {
		rt.SyncFIB(cfg.FIB, cfg.Device)
	}
	z.state = NewState(rt)

	z.proto.SetTuple(event.Tuple{
		Required: []event.Requirement{
			{Type: event.REIn},
			{Type: event.NhoodChange},
			{Type: event.NoRoute, Exclusive: true},
			{Type: event.RouteUpdate},
			{Type: event.LinkBreak},
		},
		Provided: []event.Type{event.REOut, event.RouteFound},
	})
	if err := z.proto.SetState(core.NewStateComponent("state", z.state)); err != nil {
		panic(err)
	}
	z.proto.Provide("IZRPState", z.state)

	for _, h := range []core.Handler{
		core.NewHandler("re-handler", event.REIn, z.onRE),
		core.NewHandler("nhood-handler", event.NhoodChange, z.onNhood),
		core.NewHandler("noroute-handler", event.NoRoute, z.onNoRoute),
		core.NewHandler("routeupdate-handler", event.RouteUpdate, z.onRouteUpdate),
		core.NewHandler("linkbreak-handler", event.LinkBreak, z.onLinkBreak),
	} {
		if err := z.proto.AddHandler(h); err != nil {
			panic(err)
		}
	}
	// IARP refresh: fold the zone's link state into the table continuously.
	if err := z.proto.AddSource(core.NewSource("iarp-refresh", cfg.ZoneHold/3, 0, z.refreshZone)); err != nil {
		panic(err)
	}
	if err := z.proto.AddSource(core.NewSource("route-sweep", cfg.RouteLifetime/2, 0, z.sweep)); err != nil {
		panic(err)
	}
	z.proto.OnStart(func(ctx *core.Context) error {
		reg := ctx.Env().Metrics()
		z.mIntrazone = reg.Counter("zrp_intrazone_hits")
		z.mDiscoveries = reg.Counter("zrp_discoveries")
		z.mZoneAnswers = reg.Counter("zrp_zone_answers")
		z.mTerminal = reg.Counter("zrp_terminal_answers")
		return nil
	})
	z.proto.OnStop(func(ctx *core.Context) error {
		z.state.mu.Lock()
		for _, p := range z.state.pending {
			if p.timer != nil {
				p.timer.Stop()
			}
		}
		z.state.pending = make(map[mnet.Addr]*pending)
		z.state.mu.Unlock()
		z.state.Routes.Clear()
		return nil
	})
	return z
}

// Protocol returns the ZRP CF as a deployable unit.
func (z *ZRP) Protocol() *core.Protocol { return z.proto }

// State returns the S element value.
func (z *ZRP) State() *State { return z.state }

// Routes returns the protocol's routing table.
func (z *ZRP) Routes() *route.Table { return z.state.Routes }

// zoneDistance returns this node's distance to dst within its radius-2
// zone: 1 (symmetric neighbour), 2 (2-hop), or 0 when out of zone. via is
// the first hop towards it.
func (z *ZRP) zoneDistance(self, dst mnet.Addr) (dist int, via mnet.Addr) {
	links := z.relay.State().Links
	if nb, ok := links.Get(dst); ok && nb.Status == neighbor.StatusSymmetric {
		return 1, dst
	}
	if vias, ok := links.TwoHopSet(self)[dst]; ok && len(vias) > 0 {
		return 2, vias[0]
	}
	return 0, mnet.Addr{}
}

// refreshZone is IARP: install proactive routes for the whole zone. The
// desired set goes through the table's keep-better diff install
// (RefreshProto) in one batch: shorter reactive (IERP) routes survive with
// their lifetimes extended, unchanged zone routes refresh in place without
// firing change callbacks or touching the FIB, and nothing outside the
// zone is removed. Calls run inside the protocol's critical section, which
// serialises use of the scratch buffers.
func (z *ZRP) refreshZone(ctx *core.Context) {
	now := ctx.Clock().Now()
	links := z.relay.State().Links
	expiry := now.Add(z.cfg.ZoneHold)
	desired := z.zoneScratch[:0]
	for _, nb := range links.Symmetric() {
		desired = append(desired, route.ProtoRoute{
			Dst: mnet.HostPrefix(nb.Addr), NextHop: nb.Addr, Metric: 1, Expires: expiry,
		})
	}
	twoHop := links.TwoHopSet(ctx.Node())
	keys := z.zoneKeys[:0]
	for dst := range twoHop {
		keys = append(keys, dst)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	for _, dst := range keys {
		vias := twoHop[dst]
		if len(vias) == 0 {
			continue
		}
		desired = append(desired, route.ProtoRoute{
			Dst: mnet.HostPrefix(dst), NextHop: vias[0], Metric: 2, Expires: expiry,
		})
	}
	z.zoneScratch, z.zoneKeys = desired[:0], keys[:0]
	z.state.Routes.RefreshProto(z.proto.Name(), desired)
}

// onNhood keeps the zone fresh on membership changes and invalidates
// through lost neighbours.
func (z *ZRP) onNhood(ctx *core.Context, ev *event.Event) error {
	if ev.Nhood != nil && ev.Nhood.Kind == event.NeighborLost {
		z.state.Routes.InvalidateVia(ev.Nhood.Neighbor)
	}
	z.refreshZone(ctx)
	return nil
}

// onNoRoute: in-zone targets are satisfied proactively (IARP); out-of-zone
// targets start an interzone discovery (IERP).
func (z *ZRP) onNoRoute(ctx *core.Context, ev *event.Event) error {
	if ev.Route == nil {
		return nil
	}
	dst := ev.Route.Dst
	if dist, via := z.zoneDistance(ctx.Node(), dst); dist > 0 {
		// The zone already covers it: install and release the packet.
		z.state.Routes.Upsert(route.Entry{
			Dst:   mnet.HostPrefix(dst),
			Paths: []route.Path{{NextHop: via, Metric: dist, Expires: ctx.Clock().Now().Add(z.cfg.ZoneHold)}},
			Valid: true,
			Proto: z.proto.Name(),
		})
		z.state.bump(func(st *Stats) { st.IntrazoneHits++ })
		z.mIntrazone.Inc()
		ctx.Emit(&event.Event{Type: event.RouteFound, Route: &event.RoutePayload{Dst: dst}})
		return nil
	}
	z.state.mu.Lock()
	_, already := z.state.pending[dst]
	if !already {
		z.state.pending[dst] = &pending{}
		z.state.stats.Discoveries++
	}
	z.state.mu.Unlock()
	if !already {
		z.mDiscoveries.Inc()
		z.sendRREQ(ctx, dst, 1)
	}
	return nil
}

func (z *ZRP) sendRREQ(ctx *core.Context, dst mnet.Addr, attempt int) {
	seq := z.state.NextSeq()
	msg := &packetbb.Message{
		Type:       packetbb.MsgRREQ,
		Originator: ctx.Node(),
		SeqNum:     seq,
		HopLimit:   z.cfg.HopLimit,
		AddrBlocks: []packetbb.AddrBlock{{Addrs: []mnet.Addr{dst}}},
	}
	z.state.seenDup(dupKey{orig: ctx.Node(), seq: seq}, ctx.Clock().Now())
	ctx.Emit(&event.Event{Type: event.REOut, Msg: msg, Dst: mnet.Broadcast})

	timer := ctx.Clock().AfterFunc(z.cfg.RREQWait<<(attempt-1), func() {
		_ = z.proto.RunLocked(func(ctx *core.Context) { z.retry(ctx, dst, attempt) })
	})
	z.state.mu.Lock()
	if p, ok := z.state.pending[dst]; ok {
		p.tries = attempt
		p.timer = timer
	} else {
		timer.Stop()
	}
	z.state.mu.Unlock()
}

func (z *ZRP) retry(ctx *core.Context, dst mnet.Addr, attempt int) {
	z.state.mu.Lock()
	p, ok := z.state.pending[dst]
	if !ok || p.tries != attempt {
		z.state.mu.Unlock()
		return
	}
	if attempt >= z.cfg.RREQTries {
		delete(z.state.pending, dst)
		z.state.stats.GiveUps++
		z.state.mu.Unlock()
		return
	}
	z.state.stats.Retries++
	z.state.mu.Unlock()
	z.sendRREQ(ctx, dst, attempt+1)
}

// learn installs/refreshes a reactive route.
func (z *ZRP) learn(ctx *core.Context, node, via mnet.Addr, metric int) {
	if node == ctx.Node() {
		return
	}
	if metric < 1 {
		metric = 1
	}
	now := ctx.Clock().Now()
	if e, ok := z.state.Routes.Get(mnet.HostPrefix(node)); ok && e.Valid {
		if best, has := e.Best(now); has && best.Metric <= metric {
			z.state.Routes.ExtendLifetime(mnet.HostPrefix(node), mnet.Addr{}, z.cfg.RouteLifetime)
			z.completeDiscovery(ctx, node)
			return
		}
	}
	z.state.Routes.Upsert(route.Entry{
		Dst:   mnet.HostPrefix(node),
		Paths: []route.Path{{NextHop: via, Metric: metric, Expires: now.Add(z.cfg.RouteLifetime)}},
		Valid: true,
		Proto: z.proto.Name(),
	})
	z.completeDiscovery(ctx, node)
}

func (z *ZRP) completeDiscovery(ctx *core.Context, dst mnet.Addr) {
	z.state.mu.Lock()
	p, ok := z.state.pending[dst]
	if ok {
		if p.timer != nil {
			p.timer.Stop()
		}
		delete(z.state.pending, dst)
	}
	z.state.mu.Unlock()
	if ok {
		ctx.Emit(&event.Event{Type: event.RouteFound, Route: &event.RoutePayload{Dst: dst}})
	}
}

func (z *ZRP) onRE(ctx *core.Context, ev *event.Event) error {
	msg := ev.Msg
	if msg == nil || msg.Originator == ctx.Node() || len(msg.AddrBlocks) == 0 {
		return nil
	}
	switch msg.Type {
	case packetbb.MsgRREQ:
		return z.onRREQ(ctx, ev)
	case packetbb.MsgRREP:
		return z.onRREP(ctx, ev)
	default:
		return nil
	}
}

func (z *ZRP) onRREQ(ctx *core.Context, ev *event.Event) error {
	msg := ev.Msg
	target := msg.AddrBlocks[0].Addrs[0]
	now := ctx.Clock().Now()
	z.learn(ctx, msg.Originator, ev.Src, int(msg.HopCount)+1)

	if z.state.seenDup(dupKey{orig: msg.Originator, seq: msg.SeqNum}, now) {
		return nil
	}
	// The hybrid answer: the target itself, or any node whose zone covers
	// the target, replies — the discovery terminates a zone radius early.
	if target == ctx.Node() {
		z.state.bump(func(st *Stats) { st.TerminalAnswers++ })
		z.mTerminal.Inc()
		z.sendRREP(ctx, msg.Originator, target, 0, ev.Src)
		return nil
	}
	if dist, _ := z.zoneDistance(ctx.Node(), target); dist > 0 {
		z.state.bump(func(st *Stats) { st.ZoneAnswers++ })
		z.mZoneAnswers.Inc()
		z.sendRREP(ctx, msg.Originator, target, uint8(dist), ev.Src)
		return nil
	}
	if msg.HopLimit <= 1 {
		return nil
	}
	fwd := msg.Clone()
	fwd.HopLimit--
	fwd.HopCount++
	z.state.bump(func(st *Stats) { st.RREQForwards++ })
	ctx.Emit(&event.Event{Type: event.REOut, Msg: fwd, Dst: mnet.Broadcast})
	return nil
}

// sendRREP answers for target, zoneDist hops away from this node.
func (z *ZRP) sendRREP(ctx *core.Context, reqOrig, target mnet.Addr, zoneDist uint8, via mnet.Addr) {
	rrep := &packetbb.Message{
		Type:       packetbb.MsgRREP,
		Originator: target,
		SeqNum:     z.state.NextSeq(),
		HopLimit:   z.cfg.HopLimit,
		TLVs:       []packetbb.TLV{{Type: tlvZoneDist, Value: packetbb.U8(zoneDist)}},
		AddrBlocks: []packetbb.AddrBlock{{Addrs: []mnet.Addr{reqOrig}}},
	}
	ctx.Emit(&event.Event{Type: event.REOut, Msg: rrep, Dst: via})
}

func (z *ZRP) onRREP(ctx *core.Context, ev *event.Event) error {
	msg := ev.Msg
	reqOrig := msg.AddrBlocks[0].Addrs[0]
	zoneDist := 0
	if tlv, ok := msg.FindTLV(tlvZoneDist); ok {
		if v, err := packetbb.ParseU8(tlv.Value); err == nil {
			zoneDist = int(v)
		}
	}
	// Our distance to the target: hops the RREP travelled plus the
	// answering node's zone distance.
	z.learn(ctx, msg.Originator, ev.Src, int(msg.HopCount)+1+zoneDist)

	if reqOrig == ctx.Node() {
		return nil
	}
	_, p, err := z.state.Routes.Lookup(reqOrig)
	if err != nil || msg.HopLimit <= 1 {
		return nil
	}
	fwd := msg.Clone()
	fwd.HopLimit--
	fwd.HopCount++
	ctx.Emit(&event.Event{Type: event.REOut, Msg: fwd, Dst: p.NextHop})
	return nil
}

func (z *ZRP) onRouteUpdate(ctx *core.Context, ev *event.Event) error {
	if ev.Route == nil {
		return nil
	}
	z.state.Routes.ExtendLifetime(mnet.HostPrefix(ev.Route.Dst), mnet.Addr{}, z.cfg.RouteLifetime)
	return nil
}

func (z *ZRP) onLinkBreak(ctx *core.Context, ev *event.Event) error {
	if ev.Route == nil || ev.Route.NextHop.IsUnspecified() {
		return nil
	}
	z.state.Routes.InvalidateVia(ev.Route.NextHop)
	return nil
}

func (z *ZRP) sweep(ctx *core.Context) {
	z.state.Routes.PurgeExpired()
	now := ctx.Clock().Now()
	z.state.mu.Lock()
	for k, t := range z.state.dupes {
		if now.Sub(t) > 30*time.Second {
			delete(z.state.dupes, k)
		}
	}
	z.state.mu.Unlock()
}
