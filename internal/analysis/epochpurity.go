package analysis

import (
	"go/ast"
	"go/token"
)

// Epochpurity proves the determinism argument of the sharded event core
// (DESIGN.md §8) at compile time. The engine's parallel epoch executes in two
// phases: workers prepare deliveries concurrently, then a single goroutine
// commits them in (when, seq) order. Replay stays byte-identical only because
// the parallel phase is pure: node-local reads and per-delivery scratch
// writes, nothing else. Functions on that phase carry
//
//	//mk:parallelprep
//
// in their doc comment; everything reachable from them must not
//
//   - write shared engine state (emunet.Network / emunet.engine fields),
//   - draw randomness or read the wall clock,
//   - schedule virtual-clock timers,
//   - record trace spans (the tracer ring is shared),
//   - emit events or call the reconfiguration surface,
//   - spawn goroutines or take the shared engine locks.
//
// The serial commit phase is exempt simply by not being marked. Reachability
// is interprocedural: helpers in other packages are checked through their
// imported fact summaries, and diagnostics carry the offending call chain.
var Epochpurity = &Analyzer{
	Name: "epochpurity",
	Doc: "forbid shared-state mutation, RNG draws, timer scheduling, trace " +
		"recording and emits — directly or through any call chain — in " +
		"//mk:parallelprep functions (the engine's parallel epoch-prep phase)",
	Run: runEpochpurity,
}

func runEpochpurity(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isParallelPrep(fd) {
				continue
			}
			node := pass.Facts.nodeOf(fd)
			if node == nil {
				continue
			}
			// Direct impure primitives in the marked function itself.
			seen := map[token.Pos]bool{}
			for _, ev := range node.events {
				if ev.kind != primImpure {
					continue
				}
				seen[ev.pos] = true
				pass.Reportf(ev.pos,
					"%s in //mk:parallelprep %s: the parallel prep phase must be read-only node-local work or replay diverges (DESIGN.md §8); move this to the serial commit phase or annotate //mk:allow epochpurity <reason>",
					ev.desc, fd.Name.Name)
			}
			// Transitive: callees whose summary says impure work is reachable.
			// Skip positions already reported directly (a call can be both a
			// primitive — e.g. vclock.AfterFunc — and carry its own fact).
			for _, call := range node.calls {
				if seen[call.pos] {
					continue
				}
				if fact, ok := pass.Facts.Of(call.fn); ok && fact.Impure != nil {
					pass.Reportf(call.pos,
						"call to %s in //mk:parallelprep %s reaches %s (call chain: %s); the parallel prep phase must be read-only node-local work or replay diverges (DESIGN.md §8); move this to the serial commit phase or annotate //mk:allow epochpurity <reason>",
						shortFuncName(call.fn), fd.Name.Name, fact.Impure[len(fact.Impure)-1],
						chainString(shortFuncName(call.fn), fact.Impure))
				}
			}
		}
	}
	return nil
}
