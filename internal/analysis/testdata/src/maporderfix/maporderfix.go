// Package maporderfix exercises the maporder determinism-taint analyzer:
// map iteration order must not reach a deterministic output (writers,
// encoders, fingerprint hashes) unless the data is sorted first. Both
// reported shapes appear here — a sink called per-iteration inside a map
// range, and map-order-tainted data passed to a sink — alongside the
// sorted-iteration patterns that must stay silent.
package maporderfix

import (
	"fmt"
	"io"
	"sort"
)

func emitEachUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "fmt.Fprintf inside range over map: per-iteration output order is the random map order"
	}
}

func emitTaintedSlice(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	fmt.Fprintln(w, keys) // want "map-order-tainted keys passed to fmt.Fprintln"
}

func emitSortedSlice(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintln(w, keys) // sorted first: ok
}

// unsortedKeys returns the keys in random map order — its summary records
// MapOrdered, so callers inherit the taint across the call.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// wrappedKeys forwards unsortedKeys' taint through its own return value.
func wrappedKeys(m map[string]int) []string {
	return unsortedKeys(m)
}

func emitCalleeTaint(w io.Writer, m map[string]int) {
	keys := unsortedKeys(m)
	fmt.Fprintln(w, keys) // want "map-order-tainted keys passed to fmt.Fprintln"
}

func emitCalleeTaintInline(w io.Writer, m map[string]int) {
	fmt.Fprintln(w, unsortedKeys(m)) // want "map-order-tainted result of maporderfix.unsortedKeys passed to fmt.Fprintln"
}

func emitWrappedTaint(w io.Writer, m map[string]int) {
	fmt.Fprintln(w, wrappedKeys(m)) // want "map-order-tainted result of maporderfix.wrappedKeys passed to fmt.Fprintln"
}

func emitCalleeSorted(w io.Writer, m map[string]int) {
	keys := unsortedKeys(m)
	sort.Strings(keys)
	fmt.Fprintln(w, keys) // sorted after the call: ok
}

// dump forwards into the writer; its summary records the sink, so calls
// inside a map range are caught transitively with the chain.
func dump(w io.Writer, k string, v int) {
	fmt.Fprintf(w, "%s=%d\n", k, v)
}

func emitViaHelper(w io.Writer, m map[string]int) {
	for k, v := range m {
		dump(w, k, v) // want "call to maporderfix.dump inside range over map reaches fmt.Fprintf"
	}
}

// insertionKeys keeps the slice ordered as it builds it, so the audited
// append does not taint the result.
func insertionKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		//mk:allow maporder keys are kept sorted by the insertion below
		keys = append(keys, k)
		for i := len(keys) - 1; i > 0 && keys[i-1] > keys[i]; i-- {
			keys[i-1], keys[i] = keys[i], keys[i-1]
		}
	}
	return keys
}

func emitInsertionSorted(w io.Writer, m map[string]int) {
	fmt.Fprintln(w, insertionKeys(m)) // audited append: no taint
}

func emitAllowed(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) //mk:allow maporder debug dump, order-insensitive consumer
	}
}
