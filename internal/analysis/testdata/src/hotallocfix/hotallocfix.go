// Package hotallocfix exercises the hotalloc analyzer: allocating syntax
// inside //mk:hotpath functions is flagged, value-typed struct literals and
// unmarked functions are not, and //mk:allow hotalloc suppresses cold
// sub-paths.
package hotallocfix

import "fmt"

type span struct{ a, b int }

func drain(vals []int) {}

//mk:hotpath
func hotClean(vals []int) int {
	s := span{a: 1, b: 2} // value struct literal stays on the stack: ok
	total := s.a + s.b
	for _, v := range vals {
		total += v
	}
	return total
}

//mk:hotpath
func hotMake(n int) []int {
	return make([]int, n) // want "make in //mk:hotpath hotMake allocates"
}

//mk:hotpath
func hotNew() *span {
	return new(span) // want "new in //mk:hotpath hotNew allocates"
}

//mk:hotpath
func hotAppend(dst []int, v int) []int {
	return append(dst, v) // want "append in //mk:hotpath hotAppend allocates on growth"
}

//mk:hotpath
func hotGo(vals []int) {
	go drain(vals) // want "go statement in //mk:hotpath hotGo allocates a goroutine"
}

//mk:hotpath
func hotClosure(v int) func() int {
	return func() int { return v } // want "closure in //mk:hotpath hotClosure may allocate"
}

//mk:hotpath
func hotSliceLit() []int {
	return []int{1, 2, 3} // want "slice/map literal in //mk:hotpath hotSliceLit allocates"
}

//mk:hotpath
func hotMapLit() map[string]int {
	return map[string]int{"a": 1} // want "slice/map literal in //mk:hotpath hotMapLit allocates"
}

//mk:hotpath
func hotEscape() *span {
	return &span{a: 1} // want "&composite literal in //mk:hotpath hotEscape escapes to the heap"
}

//mk:hotpath
func hotFmt(v int) {
	fmt.Println(v) // want "fmt.Println in //mk:hotpath hotFmt allocates"
}

//mk:hotpath
func hotConvert(s string) []byte {
	return []byte(s) // want "conversion in //mk:hotpath hotConvert copies and allocates"
}

//mk:hotpath
func hotConvertBack(b []byte) string {
	return string(b) // want "conversion in //mk:hotpath hotConvertBack copies and allocates"
}

func coldUnmarked(vals []int) []int {
	out := make([]int, 0, len(vals))
	return append(out, vals...) // unmarked function: ok
}

//mk:hotpath
func hotWithColdPath(vals []int, fail bool) ([]int, error) {
	total := 0
	for _, v := range vals {
		total += v
	}
	if fail {
		//mk:allow hotalloc error path is cold
		return nil, fmt.Errorf("total %d", total) // suppressed by line-above allow
	}
	return vals, nil
}

// buildScratch allocates; hot callers inherit the Alloc fact with the chain.
func buildScratch(n int) []int {
	return make([]int, n)
}

//mk:hotpath
func hotTransitive(n int) []int {
	return buildScratch(n) // want "call to hotallocfix.buildScratch in //mk:hotpath hotTransitive reaches make \\(call chain: hotallocfix.buildScratch -> make\\)"
}

// hotAudited calls the same helper behind an audited edge: no diagnostic.
//
//mk:hotpath
func hotAudited(n int) []int {
	//mk:allow hotalloc cold-start scratch growth, amortized to zero
	return buildScratch(n)
}

// hotDocAllowed is hot but fully allowed by its doc comment.
//
//mk:hotpath
//mk:allow hotalloc fixture demonstrates a whole-function waiver
func hotDocAllowed() *span {
	return &span{}
}
