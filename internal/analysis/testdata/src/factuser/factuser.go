// Package factuser imports factlib and exercises cross-package fact import:
// the transitive diagnostics below only fire when factlib's summaries made
// it across the package boundary, the way mkvet ships them via VetxOutput.
package factuser

import (
	"core"
	"factlib"
)

func notifyWhileLocked(p *core.Protocol, e *core.Env, ev *core.Event) {
	sec := p.Section()
	sec.Lock()
	defer sec.Unlock()
	factlib.Notify(e, ev) // want "call to factlib.Notify while holding sec reaches \\(core.Env\\).Emit"
}

func notifyUnlocked(e *core.Env, ev *core.Event) {
	factlib.Notify(e, ev) // no lock held: ok
}

//mk:hotpath
func hotGrow(buf []byte) []byte {
	return factlib.Grow(buf, 16) // want "call to factlib.Grow in //mk:hotpath hotGrow reaches make \\(call chain: factlib.Grow -> make\\)"
}

func coldGrow(buf []byte) []byte {
	return factlib.Grow(buf, 16) // unmarked: ok
}

// reNotify audits the emit edge: the allow stops factlib.Notify's Emit fact
// from propagating, so notifyViaAudited stays clean even under the lock.
func reNotify(e *core.Env, ev *core.Event) {
	//mk:allow lockemit bootstrap-only path, runs before dispatch starts
	factlib.Notify(e, ev)
}

func notifyViaAudited(p *core.Protocol, e *core.Env, ev *core.Event) {
	sec := p.Section()
	sec.Lock()
	defer sec.Unlock()
	reNotify(e, ev) // audited edge above: no Emit fact to inherit
}
