// Package telemetry is a miniature stand-in for manetkit/internal/telemetry:
// a bus whose publish/fan-out path carries //mk:nonblocking. The contract is
// the static half of Published == Delivered + Dropped: a slow subscriber
// costs a Dropped count, never a stalled publisher. The bus's own short
// mutex sections and select-with-default sends are permitted; everything
// else that can park the goroutine is flagged.
package telemetry

import (
	"sync"
	"time"
)

// Event mirrors the bus event record.
type Event struct{ Seq uint64 }

type subscriber struct {
	ch      chan Event
	dropped uint64
}

// Bus mirrors the streaming telemetry bus.
type Bus struct {
	mu   sync.Mutex
	subs []*subscriber
}

// registryMu stands in for a lock the bus does not own.
var registryMu sync.Mutex

// Publish is the real shape: snapshot under the bus's own lock, then
// select-with-default fan-out. Nothing here blocks.
//
//mk:nonblocking
func (b *Bus) Publish(ev Event) {
	b.mu.Lock() // bus-owned short section: permitted
	subs := b.subs
	b.mu.Unlock()
	for _, s := range subs {
		select {
		case s.ch <- ev: // non-blocking by construction
		default:
			s.dropped++
		}
	}
}

//mk:nonblocking
func (b *Bus) publishBlockingSend(ev Event) {
	for _, s := range b.subs {
		s.ch <- ev // want "channel send outside select-with-default in //mk:nonblocking publishBlockingSend"
	}
}

//mk:nonblocking
func (b *Bus) publishSleeps(ev Event) {
	time.Sleep(time.Millisecond) // want "time.Sleep in //mk:nonblocking publishSleeps"
	b.Publish(ev)
}

//mk:nonblocking
func (b *Bus) publishUnderForeignLock(ev Event) {
	registryMu.Lock() // want "acquires registryMu \\(sync.Mutex\\) in //mk:nonblocking publishUnderForeignLock"
	defer registryMu.Unlock()
	b.Publish(ev)
}

//mk:nonblocking
func (b *Bus) publishThenWait(wg *sync.WaitGroup, ev Event) {
	b.Publish(ev)
	wg.Wait() // want "sync.WaitGroup.Wait in //mk:nonblocking publishThenWait"
}

// flush drains a subscriber synchronously — blocking by design; only the
// exporter goroutine may call it.
func flush(s *subscriber) {
	for range s.ch {
	}
}

//mk:nonblocking
func (b *Bus) publishThenFlush(ev Event) {
	b.Publish(ev)
	for _, s := range b.subs {
		flush(s) // want "call to telemetry.flush in //mk:nonblocking publishThenFlush reaches range over channel"
	}
}

// PublishSync is the deliberately blocking variant used by shutdown tests;
// the waiver is audited.
//
//mk:nonblocking
func (b *Bus) PublishSync(ev Event) {
	for _, s := range b.subs {
		s.ch <- ev //mk:allow blockingpub shutdown-only variant, never on the dispatch path
	}
}
