// Package lockuser exercises lockemit from outside the core package: the
// TicketMutex section reached through Protocol.Section(), the way unit
// shepherds and benchmarks drive Accept.
package lockuser

import "core"

func emitUnderSection(p *core.Protocol, c *core.Context, ev *core.Event) {
	sec := p.Section()
	sec.Lock()
	c.Emit(ev) // want "Context.Emit called while holding sec"
	sec.Unlock()
}

func emitOutsideSection(p *core.Protocol, c *core.Context, ev *core.Event) {
	sec := p.Section()
	sec.Lock()
	sec.Unlock()
	c.Emit(ev) // released: ok
}

func reconfigureUnderSection(m *core.Manager, p *core.Protocol, u any) {
	sec := p.Section()
	sec.Lock()
	defer sec.Unlock()
	_ = m.Deploy(u) // want "Manager.Deploy called while holding sec"
}

func reconfigureAfterwards(m *core.Manager, p *core.Protocol, u any) {
	sec := p.Section()
	sec.Lock()
	sec.Unlock()
	_ = m.Deploy(u) // released: ok
}
