// Package ctxleakfix exercises the ctxleak analyzer: every way the pooled
// *core.Context can escape its handler invocation, and the sanctioned
// RunLocked re-entry idiom that must stay silent.
package ctxleakfix

import "core"

type keeper struct {
	ctx *core.Context
}

var globalCtx *core.Context

type registry struct {
	byName map[string]*core.Context
}

func storeField(k *keeper, ctx *core.Context, ev *core.Event) {
	k.ctx = ctx // want "stored into field ctx"
}

func storeAlias(k *keeper, ctx *core.Context) {
	c := ctx
	k.ctx = c // want "stored into field ctx"
}

func storeGlobal(ctx *core.Context) {
	globalCtx = ctx // want "package-level var globalCtx"
}

func storeMap(r *registry, ctx *core.Context) {
	r.byName["x"] = ctx // want "map/slice element"
}

func giveBack(ctx *core.Context) *core.Context {
	return ctx // want "returned from the handler"
}

func sendAway(ch chan *core.Context, ctx *core.Context) {
	ch <- ctx // want "sent on a channel"
}

func appendSlice(dst []*core.Context, ctx *core.Context) {
	_ = append(dst, ctx) // want "appended to a slice"
}

func inLiteral(ctx *core.Context) {
	_ = []*core.Context{ctx} // want "composite literal"
}

func timerCapture(ctx *core.Context, clk core.Clock) {
	clk.AfterFunc(10, func() {
		ctx.Emit(&core.Event{}) // want "captured by a closure passed to AfterFunc"
	})
}

func goroutineCapture(ctx *core.Context) {
	go func() {
		ctx.Emit(&core.Event{}) // want "captured by a closure passed to a goroutine"
	}()
}

func directArg(ctx *core.Context, clk core.Clock) {
	_ = clk         // executor called with the context itself, not a closure
	ScheduleAt(ctx) // want "passed to ScheduleAt"
}

// ScheduleAt stands in for a deferred executor taking the context directly.
func ScheduleAt(ctx *core.Context) {}

// --- negative space -----------------------------------------------------

func plainUse(ctx *core.Context, ev *core.Event) {
	ctx.Emit(ev) // synchronous use inside the handler: ok
}

func reentry(p *core.Protocol, ctx *core.Context, dst string) {
	// The sanctioned timer idiom: the closure re-enters through RunLocked
	// and receives a fresh context; the pooled one is never captured.
	ctx.Clock().AfterFunc(10, func() {
		_ = p.RunLocked(func(ctx *core.Context) {
			ctx.Emit(&core.Event{Type: dst})
		})
	})
}

func allowedStore(k *keeper, ctx *core.Context) {
	k.ctx = ctx //mk:allow ctxleak test shim retains the context deliberately
}
