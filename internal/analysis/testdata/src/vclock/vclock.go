// Package vclock mirrors the real facade: the one package allowed to ground
// Clock in package time. The determinism analyzer must stay silent here.
package vclock

import "time"

// Timer mirrors the virtual timer handle.
type Timer interface{ Stop() bool }

type Clock interface {
	Now() time.Time
	AfterFunc(d time.Duration, fn func()) Timer
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func Sleepy(d time.Duration) { time.Sleep(d) }
