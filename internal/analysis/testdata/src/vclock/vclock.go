// Package vclock mirrors the real facade: the one package allowed to ground
// Clock in package time. The determinism analyzer must stay silent here.
package vclock

import "time"

type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func Sleepy(d time.Duration) { time.Sleep(d) }
