// Package directivefix carries malformed //mk:allow directives; the runner
// test asserts the mkdirective diagnostics directly (want comments cannot
// share a line with the directive under test).
package directivefix

func placeholder() int {
	//mk:allow
	x := 1
	//mk:allow determinism
	return x + 1
}
