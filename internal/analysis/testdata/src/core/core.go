// Package core is a miniature stand-in for manetkit/internal/core: just
// enough surface (Manager, Protocol, Env, Context, TicketMutex, Clock) for
// the lockemit and ctxleak fixtures to type-check. The analyzers match types
// by package base name, so this single-segment "core" exercises the same
// code paths as the real module path.
package core

import "sync"

// Event mirrors event.Event for fixture purposes.
type Event struct{ Type string }

// TicketMutex mirrors the FIFO ticket lock guarding a unit's section.
type TicketMutex struct {
	mu sync.Mutex
	n  uint64
}

func (t *TicketMutex) Ticket() uint64     { t.mu.Lock(); t.n++; n := t.n; t.mu.Unlock(); return n }
func (t *TicketMutex) Wait(ticket uint64) { _ = ticket }
func (t *TicketMutex) Lock()              { t.mu.Lock() }
func (t *TicketMutex) Unlock()            { t.mu.Unlock() }

// Timer and Clock mirror the vclock surface the ctxleak fixtures schedule on.
type Timer interface{ Stop() bool }

type Clock interface {
	AfterFunc(d int64, fn func()) Timer
}

// Manager mirrors the Framework Manager's reconfiguration surface.
type Manager struct {
	mu sync.Mutex
}

func (m *Manager) Deploy(u any) error         { return nil }
func (m *Manager) Undeploy(name string) error { return nil }
func (m *Manager) Rewire()                    {}
func (m *Manager) SetModel(v int)             {}
func (m *Manager) Quiesce() func()            { return func() {} }
func (m *Manager) Close()                     {}

// Protocol mirrors the ManetProtocol CF.
type Protocol struct {
	mu      sync.Mutex
	section TicketMutex
}

func (p *Protocol) SetTuple(t any)                        {}
func (p *Protocol) Emit(ev *Event)                        {}
func (p *Protocol) Section() *TicketMutex                 { return &p.section }
func (p *Protocol) RunLocked(fn func(ctx *Context)) error { fn(&Context{}); return nil }

// Env mirrors the deployment environment.
type Env struct{}

func (e *Env) Emit(from string, ev *Event) {}

// Context mirrors the pooled handler context.
type Context struct{}

func (c *Context) Emit(ev *Event) {}
func (c *Context) Clock() Clock   { return nil }
