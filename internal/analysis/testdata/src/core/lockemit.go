package core

// Lockemit fixtures: banned calls under Manager.mu, Protocol.mu and the
// TicketMutex section, plus the unlocked/branched/deferred shapes that must
// stay silent.

func (m *Manager) deployLocked(u any) {
	m.mu.Lock()
	_ = m.Deploy(u) // want "Manager.Deploy called while holding m.mu"
	m.mu.Unlock()
}

func (m *Manager) emitDeferred(e *Env, ev *Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e.Emit("x", ev) // want "Env.Emit called while holding m.mu"
}

func (m *Manager) emitAfterUnlock(e *Env, ev *Event) {
	m.mu.Lock()
	m.mu.Unlock()
	e.Emit("x", ev) // unlocked: ok
}

func (m *Manager) emitBranches(e *Env, ev *Event, cond bool) {
	m.mu.Lock()
	if cond {
		m.mu.Unlock()
		e.Emit("x", ev) // unlocked on this path: ok
		return
	}
	m.mu.Unlock()
	e.Emit("x", ev) // unlocked: ok
}

func (m *Manager) emitOneArm(e *Env, ev *Event, cond bool) {
	m.mu.Lock()
	if cond {
		m.mu.Unlock()
	}
	e.Emit("x", ev) // want "Env.Emit called while holding m.mu"
}

func (p *Protocol) setTupleLocked(t any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.SetTuple(t) // want "Protocol.SetTuple called while holding p.mu"
}

func (p *Protocol) emitInSection(c *Context, ev *Event) {
	p.section.Lock()
	c.Emit(ev) // want "Context.Emit called while holding p.section"
	p.section.Unlock()
}

func (p *Protocol) emitAfterTicket(c *Context, ev *Event) {
	t := p.section.Ticket()
	p.section.Wait(t)
	c.Emit(ev) // want "Context.Emit called while holding p.section"
	p.section.Unlock()
}

func (p *Protocol) emitInGoroutine(c *Context, ev *Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		c.Emit(ev) // the goroutine runs without this frame's locks: ok
	}()
}

func (p *Protocol) emitInClosureUnderOwnLock(c *Context, ev *Event) {
	fn := func() {
		p.mu.Lock()
		c.Emit(ev) // want "Context.Emit called while holding p.mu"
		p.mu.Unlock()
	}
	fn()
}

// notifyHelper re-emits through the Env; locked callers inherit the fact.
func (m *Manager) notifyHelper(e *Env, ev *Event) {
	e.Emit("notify", ev)
}

func (m *Manager) notifyWhileLocked(e *Env, ev *Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.notifyHelper(e, ev) // want "call to \\(core.Manager\\).notifyHelper while holding m.mu reaches \\(core.Env\\).Emit"
}

func (m *Manager) notifyAfterUnlock(e *Env, ev *Event) {
	m.mu.Lock()
	m.mu.Unlock()
	m.notifyHelper(e, ev) // unlocked: ok even with the Emit fact
}

//mk:allow lockemit single-threaded bootstrap runs before dispatch starts
func (m *Manager) allowedByDocComment(e *Env, ev *Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e.Emit("x", ev) // suppressed by the doc-comment directive
}

func (m *Manager) allowedInline(e *Env, ev *Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e.Emit("x", ev) //mk:allow lockemit fixture exercises the same-line allow
}
