package determ

import "time"

// Test files are exempt: wall-clock watchdogs around virtual runs are fine.
func watchdogDeadline() time.Time {
	return time.Now().Add(5 * time.Second)
}
