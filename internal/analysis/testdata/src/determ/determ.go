// Package determ exercises the determinism analyzer: wall-clock reads and
// unseeded global randomness are flagged; duration arithmetic, seeded
// generators and //mk:allow waivers are not.
package determ

import (
	"math/rand"
	"time"
)

func wallClock() {
	_ = time.Now()                // want "time.Now bypasses the deployment clock"
	time.Sleep(time.Millisecond)  // want "time.Sleep bypasses the deployment clock"
	_ = time.Since(time.Time{})   // want "time.Since bypasses the deployment clock"
	_ = <-time.After(time.Second) // want "time.After bypasses the deployment clock"
	t := time.NewTimer(0)         // want "time.NewTimer bypasses the deployment clock"
	t.Stop()
}

func globalRand() {
	_ = rand.Intn(10)  // want "rand.Intn draws from the global unseeded source"
	_ = rand.Float64() // want "rand.Float64 draws from the global unseeded source"
}

func deterministic() {
	r := rand.New(rand.NewSource(42)) // seeded constructor: ok
	_ = r.Intn(10)                    // method on the seeded *rand.Rand: ok
	_ = 5 * time.Millisecond
	_ = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC) // pure construction: ok
	_ = time.Unix(0, 0)
}

func allowedInline() {
	_ = time.Now() //mk:allow determinism fixture marks a wall-clock boundary
}

func allowedLineAbove() {
	//mk:allow determinism fixture marks a wall-clock boundary
	_ = time.Now()
}

//mk:allow determinism whole function is a wall-clock boundary
func allowedWholeFunc() time.Time {
	return time.Now()
}
