// Package emunet is a miniature stand-in for manetkit/internal/emunet: just
// enough of the sharded event core (Network, engine, per-delivery scratch)
// for the epochpurity fixtures to type-check. Functions marked
// //mk:parallelprep are the parallel epoch-prep phase and must stay
// read-only; the unmarked commit path may write anything.
package emunet

import (
	"math/rand"
	"sync"
	"time"

	"vclock"
)

// Network mirrors the shared event-core state the prep phase must not touch.
type Network struct {
	mu  sync.Mutex
	Seq uint64
}

// engine mirrors the sharded scheduler that owns the network.
type engine struct {
	net *Network
}

// delivery is per-delivery scratch: prep may write it freely.
type delivery struct {
	when   int64
	jitter float64
	dst    int
}

// prepClean is the shape the real prep has: shared state is only read,
// writes go to per-delivery scratch.
//
//mk:parallelprep
func prepClean(d *delivery, n *Network) {
	if n.Seq > 0 {
		d.dst++
	}
}

//mk:parallelprep
func prepDraws(d *delivery) {
	d.jitter = rand.Float64() // want "math/rand.Float64 \\(RNG draw\\) in //mk:parallelprep prepDraws"
}

//mk:parallelprep
func prepWallClock(d *delivery) {
	d.when = time.Now().UnixNano() // want "time.Now in //mk:parallelprep prepWallClock"
}

//mk:parallelprep
func (e *engine) prepWritesShared() {
	e.net.Seq++ // want "writes shared engine state \\(e.net.Seq\\) in //mk:parallelprep prepWritesShared"
}

//mk:parallelprep
func (e *engine) prepLocksShared() {
	e.net.mu.Lock() // want "locks e.net.mu \\(shared engine mutex\\) in //mk:parallelprep prepLocksShared"
	e.net.mu.Unlock()
}

//mk:parallelprep
func prepSchedules(clk vclock.Clock, d *delivery) {
	clk.AfterFunc(time.Duration(d.when), func() {}) // want "\\(vclock.Clock\\).AfterFunc \\(schedules a timer\\) in //mk:parallelprep prepSchedules"
}

//mk:parallelprep
func prepSpawns(d *delivery) {
	go prepClean(d, nil) // want "go statement \\(spawns a goroutine\\) in //mk:parallelprep prepSpawns"
}

// reseed draws randomness; prep callers inherit the Impure fact.
func reseed(d *delivery) {
	d.jitter = rand.Float64()
}

// jitterPipeline reaches randomness one hop further down.
func jitterPipeline(d *delivery) {
	reseed(d)
}

//mk:parallelprep
func prepTransitive(d *delivery) {
	reseed(d) // want "call to emunet.reseed in //mk:parallelprep prepTransitive reaches math/rand.Float64 \\(RNG draw\\)"
}

//mk:parallelprep
func prepDeepChain(d *delivery) {
	jitterPipeline(d) // want "call chain: emunet.jitterPipeline -> emunet.reseed -> math/rand.Float64"
}

// commit is the serial phase: unmarked, so shared writes are fine here.
func (e *engine) commit(d *delivery) {
	e.net.Seq++
	_ = d
}

//mk:parallelprep
func prepAllowed(d *delivery) {
	d.jitter = rand.Float64() //mk:allow epochpurity fixture exercises the audited-site waiver
}
