// Package factlib holds helpers whose summaries must travel to importers —
// the library half of the cross-package fact fixture. No diagnostics fire
// here (nothing is locked or hot); the facts matter to package factuser.
package factlib

import "core"

// Notify re-emits through the deployment Env; its summary records the
// reachable emit entry point.
func Notify(e *core.Env, ev *core.Event) {
	e.Emit("notify", ev)
}

// Grow allocates a scratch buffer; hot callers inherit the Alloc fact.
func Grow(buf []byte, n int) []byte {
	extra := make([]byte, n)
	return append(buf, extra...)
}
