// Package atomicfix exercises the atomicstats analyzer: once any access to
// a struct field goes through sync/atomic, every plain access to the same
// field elsewhere in the package is flagged.
package atomicfix

import "sync/atomic"

type stats struct {
	handled uint64
	errors  uint64
	plain   uint64 // never touched atomically: plain access is fine
}

func (s *stats) inc() {
	atomic.AddUint64(&s.handled, 1) // sanctions the field, not flagged itself
	atomic.AddUint64(&s.errors, 1)
}

func (s *stats) snapshot() (uint64, uint64) {
	h := atomic.LoadUint64(&s.handled) // atomic access: ok
	e := s.errors                      // want "field stats.errors is accessed via sync/atomic"
	return h, e
}

func (s *stats) reset() {
	s.handled = 0 // want "field stats.handled is accessed via sync/atomic"
	s.plain++     // ok: no atomic access anywhere
}

func (s *stats) swap() {
	old := atomic.SwapUint64(&s.errors, 0) // atomic access: ok
	_ = old
}

//mk:allow atomicstats constructor runs before the stats are shared
func newStats() *stats {
	s := &stats{}
	s.handled = 0 // suppressed by the doc-comment waiver
	return s
}

type other struct {
	handled uint64 // same field name, different type: independent
}

func (o *other) touch() {
	o.handled++ // ok: other.handled is never accessed atomically
}
