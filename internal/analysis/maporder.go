package analysis

import (
	"go/ast"
	"go/types"
)

// Maporder is a determinism-taint analyzer: Go randomizes map iteration
// order per process, so any map `range` whose order reaches a deterministic
// output — emitted telemetry events, trace spans, NDJSON encoders, replay
// fingerprint hashes, writer-directed formatting — silently breaks
// byte-identical replay. Two shapes are reported:
//
//  1. a sink call lexically inside a `range` over a map (each iteration
//     publishes/encodes in random order), and
//  2. map-order-tainted data passed to a sink: a slice built by appending
//     inside a map range, or returned by a function whose fact summary says
//     it returns map-order-tainted data — unless a sort.* / slices.* call
//     cleared the taint first.
//
// Sinks are matched directly (telemetry.Bus.Publish/PublishAt,
// trace.Tracer.Record, json.Encoder.Encode, io.Writer.Write — which covers
// hash.Hash — bufio writers, io.WriteString, fmt.Fprint*) and transitively
// through fact summaries, so a helper that forwards into a sink counts.
// Sorted iteration (collect keys, sort, then emit) passes by construction
// because the sink sits outside the map-range body and the sorted slice's
// taint is cleared.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc: "forbid map iteration order from reaching deterministic outputs " +
		"(telemetry events, trace spans, NDJSON encoders, fingerprint hashes) " +
		"unless the iteration is sorted first",
	Run: runMaporder,
}

func runMaporder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			node := pass.Facts.nodeOf(fd)
			if node == nil {
				continue
			}
			checkMaporder(pass, fd, node)
		}
	}
	return nil
}

func checkMaporder(pass *Pass, fd *ast.FuncDecl, node *funcNode) {
	// Locals carrying map-iteration order: appended to inside a map range, or
	// assigned from a callee that returns map-order-tainted data. A sort.* /
	// slices.* call on the variable clears the taint.
	tainted := map[types.Object]bool{}
	for obj := range node.taintedAppend {
		if !node.sortCleared[obj] {
			tainted[obj] = true
		}
	}
	for obj, ac := range node.assignedFrom {
		if node.sortCleared[obj] {
			continue
		}
		if gf, ok := pass.Facts.Of(ac.fn); ok && gf.MapOrdered {
			tainted[obj] = true
		}
	}

	for _, call := range node.calls {
		sinkDesc, isSink := sinkCall(call.fn)
		var chain string
		if !isSink {
			if gf, ok := pass.Facts.Of(call.fn); ok && gf.Sink != nil {
				isSink = true
				sinkDesc = gf.Sink[len(gf.Sink)-1]
				chain = chainString(shortFuncName(call.fn), gf.Sink)
			}
		}
		if !isSink {
			continue
		}
		// Shape 2: map-order-tainted data flowing into the sink's arguments.
		if src := taintedArg(pass, call.expr, tainted); src != "" {
			if chain != "" {
				pass.Reportf(call.pos,
					"%s passed to %s reaches %s (call chain: %s): data ordered by an unsorted map iteration breaks byte-identical replay; sort before emitting or annotate //mk:allow maporder <reason>",
					src, shortFuncName(call.fn), sinkDesc, chain)
			} else {
				pass.Reportf(call.pos,
					"%s passed to %s: data ordered by an unsorted map iteration breaks byte-identical replay; sort before emitting or annotate //mk:allow maporder <reason>",
					src, sinkDesc)
			}
			continue
		}
		// Shape 1: the sink call itself sits inside a map-range body, so the
		// order of the output stream is the (random) iteration order.
		if node.inMapRange(call.pos) {
			if chain != "" {
				pass.Reportf(call.pos,
					"call to %s inside range over map reaches %s (call chain: %s): per-iteration output order is the random map order and breaks byte-identical replay; collect and sort keys first or annotate //mk:allow maporder <reason>",
					shortFuncName(call.fn), sinkDesc, chain)
			} else {
				pass.Reportf(call.pos,
					"%s inside range over map: per-iteration output order is the random map order and breaks byte-identical replay; collect and sort keys first or annotate //mk:allow maporder <reason>",
					sinkDesc)
			}
		}
	}
}

// taintedArg scans a sink call's arguments for map-order-tainted data: a
// tainted local identifier, or a direct call to a function whose summary says
// it returns map-order-tainted data. Returns a display string for the
// diagnostic ("map-order-tainted keys" / "map-order-tainted result of
// olsr.unsortedKeys") — empty when clean.
func taintedArg(pass *Pass, call *ast.CallExpr, tainted map[types.Object]bool) string {
	if call == nil {
		return ""
	}
	for _, a := range call.Args {
		switch e := ast.Unparen(a).(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[e]; obj != nil && tainted[obj] {
				return "map-order-tainted " + e.Name
			}
		case *ast.CallExpr:
			if fn := funcOf(pass.Info, e); fn != nil {
				if gf, ok := pass.Facts.Of(fn); ok && gf.MapOrdered {
					return "map-order-tainted result of " + shortFuncName(fn)
				}
			}
		}
	}
	return ""
}
