package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestAllowBudget keeps the module's //mk:allow population auditable: every
// suppression in non-fixture source must appear in allow_budget.txt (the
// committed inventory of audited waivers, one "path<TAB>analyzer<TAB>reason"
// line per allow). A new allow fails this test until the budget is
// regenerated — which is the review hook: the diff to allow_budget.txt shows
// exactly which invariant is being waived where, and why.
//
// Regenerate with:
//
//	MANETKIT_UPDATE_GOLDEN=1 go test ./internal/analysis -run TestAllowBudget
func TestAllowBudget(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}

	var got []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Fixture allows are test inputs, not audited waivers; .git and
			// editor/tool state are not source.
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				names, reason, ok := parseAllow(text)
				if !ok {
					continue
				}
				if len(names) == 0 || reason == "" {
					t.Errorf("%s: unaudited suppression %q: every //mk:allow needs an analyzer name and a reason", rel, c.Text)
					continue
				}
				for _, name := range names {
					got = append(got, rel+"\t"+name+"\t"+reason)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	body := strings.Join(got, "\n") + "\n"

	budgetPath := filepath.Join(root, "internal", "analysis", "allow_budget.txt")
	if os.Getenv("MANETKIT_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(budgetPath, []byte(body), 0o666); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d audited suppressions", budgetPath, len(got))
		return
	}

	data, err := os.ReadFile(budgetPath)
	if err != nil {
		t.Fatalf("read %s: %v (regenerate with MANETKIT_UPDATE_GOLDEN=1 go test ./internal/analysis -run TestAllowBudget)", budgetPath, err)
	}
	want := map[string]int{}
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if line != "" {
			want[line]++
		}
	}
	have := map[string]int{}
	for _, line := range got {
		have[line]++
	}
	for line, n := range have {
		if want[line] < n {
			t.Errorf("suppression not in the audited budget (%d in source, %d budgeted):\n  %s\naudit it and regenerate allow_budget.txt", n, want[line], line)
		}
	}
	for line, n := range want {
		if have[line] < n {
			t.Errorf("stale budget entry (%d budgeted, %d in source):\n  %s\nregenerate allow_budget.txt", n, have[line], line)
		}
	}
}
