package analysis

// All returns the full mkvet analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Atomicstats,
		Blockingpub,
		Ctxleak,
		Determinism,
		Epochpurity,
		Hotalloc,
		Lockemit,
		Maporder,
	}
}

// ByName resolves one analyzer (nil when unknown).
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
