package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds the interprocedural layer the transitive analyzers stand
// on: a module-local call graph plus per-function summaries ("may emit",
// "may allocate", "may block", "may violate epoch purity", "may sink into
// ordered output", "returns map-order-tainted data"). Summaries are computed
// per package — seeded from the fact files of imported packages, closed over
// the package's own call graph by a monotone fixpoint — and exported through
// mkvet's VetxOutput so `go vet -vettool` propagates them across packages.
//
// A summary records an example call path down to the primitive operation, so
// a diagnostic at a call site can show the whole offending chain:
//
//	Env.Emit reached via notifyPeers -> broadcast -> (core.Env).Emit
//
// Suppression composes with propagation: a primitive site covered by an
// //mk:allow for the analyzer that owns the invariant class does not seed a
// fact, so a justified cold-path allocation deep in a helper never taints
// its callers.

// primKind classifies a primitive operation that seeds a fact.
type primKind int

const (
	primEmit primKind = iota
	primAlloc
	primBlock
	primImpure
	primSink
)

// primAnalyzer names the analyzer whose //mk:allow suppresses facts of each
// kind at their primitive site.
var primAnalyzer = map[primKind]string{
	primEmit:   "lockemit",
	primAlloc:  "hotalloc",
	primBlock:  "blockingpub",
	primImpure: "epochpurity",
	primSink:   "maporder",
}

// primEvent is one primitive operation observed in a function body.
type primEvent struct {
	kind primKind
	pos  token.Pos
	desc string
}

// callSite is one statically resolved call in a function body. The call
// expression is retained so argument-level checks (maporder taint) can look
// inside without re-walking the file.
type callSite struct {
	pos  token.Pos
	fn   *types.Func
	expr *ast.CallExpr
}

// posSpan is a source region (used for map-range bodies).
type posSpan struct{ start, end token.Pos }

func (s posSpan) contains(p token.Pos) bool { return p >= s.start && p <= s.end }

// assignedCall records that a local variable was assigned the result of a
// direct call (x := f(...)); the maporder analyzer taints x when f's fact
// says it returns map-order-tainted data.
type assignedCall struct {
	fn  *types.Func
	pos token.Pos
}

// funcNode is one function's call-graph node with everything the analyzers
// need to report precisely at local positions.
type funcNode struct {
	fn     *types.Func
	decl   *ast.FuncDecl
	events []primEvent
	calls  []callSite

	// maporder bookkeeping.
	mapRanges     []posSpan
	taintedAppend map[types.Object]token.Pos
	assignedFrom  map[types.Object]assignedCall
	sortCleared   map[types.Object]bool
	returnedObjs  []types.Object
	returnedCalls []*types.Func
}

// Facts is the per-package interprocedural view handed to every analyzer:
// imported summaries from dependency fact files plus the fixpointed local
// summaries and raw call-graph nodes of the package under analysis.
type Facts struct {
	imported *FactSet
	local    map[string]FuncFact
	nodes    map[*ast.FuncDecl]*funcNode
	byFn     map[*types.Func]*funcNode
	fset     *token.FileSet
	idx      *directiveIndex
}

// Of returns the summary for fn, preferring the local (current-package)
// fixpoint over imported facts.
func (fx *Facts) Of(fn *types.Func) (FuncFact, bool) {
	if fx == nil || fn == nil {
		return FuncFact{}, false
	}
	name := fn.FullName()
	if f, ok := fx.local[name]; ok {
		return f, true
	}
	return fx.imported.Lookup(name)
}

// nodeOf returns the call-graph node for a declaration (nil when the
// declaration has no body).
func (fx *Facts) nodeOf(fd *ast.FuncDecl) *funcNode {
	if fx == nil {
		return nil
	}
	return fx.nodes[fd]
}

// Exported returns the cumulative fact set to serialize for importers: the
// imported facts plus every local function with a non-empty summary.
func (fx *Facts) Exported() *FactSet {
	out := NewFactSet()
	if fx == nil {
		return out
	}
	out.Merge(fx.imported)
	for name, f := range fx.local {
		if !f.empty() {
			out.Funcs[name] = f
		}
	}
	return out
}

// shortFuncName renders fn for call-chain diagnostics: pkg.Func for plain
// functions, (pkg.Type).Method for methods.
func shortFuncName(fn *types.Func) string {
	if recv := recvNamed(fn); recv != nil {
		return fmt.Sprintf("(%s.%s).%s", pkgBase(recv.Obj().Pkg()), recv.Obj().Name(), fn.Name())
	}
	if fn.Pkg() != nil {
		return pkgBase(fn.Pkg()) + "." + fn.Name()
	}
	return fn.Name()
}

func pkgBase(pkg *types.Package) string {
	if pkg == nil {
		return ""
	}
	path := pkg.Path()
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// chainString renders a fact path for a diagnostic: "a -> b -> primitive".
func chainString(first string, path []string) string {
	out := first
	for _, step := range path {
		out += " -> " + step
	}
	return out
}

// buildFacts collects primitive events and call sites for every function in
// the package, then closes the summaries over the call graph.
func buildFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, idx *directiveIndex, imported *FactSet) *Facts {
	if imported == nil {
		imported = NewFactSet()
	}
	fx := &Facts{
		imported: imported,
		local:    map[string]FuncFact{},
		nodes:    map[*ast.FuncDecl]*funcNode{},
		byFn:     map[*types.Func]*funcNode{},
		fset:     fset,
		idx:      idx,
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			node := &funcNode{
				fn:            fn,
				decl:          fd,
				taintedAppend: map[types.Object]token.Pos{},
				assignedFrom:  map[types.Object]assignedCall{},
				sortCleared:   map[types.Object]bool{},
			}
			c := &collector{fset: fset, info: info, idx: idx, node: node}
			c.walk(fd.Body, false)
			fx.nodes[fd] = node
			fx.byFn[fn] = node
		}
	}
	fx.fixpoint()
	return fx
}

// seedFact returns the summary seeded from a node's own primitive events
// (first event of each kind wins — one example path suffices).
func seedFact(node *funcNode) FuncFact {
	var f FuncFact
	for _, ev := range node.events {
		switch ev.kind {
		case primEmit:
			if f.Emit == nil {
				f.Emit = []string{ev.desc}
			}
		case primAlloc:
			if f.Alloc == nil {
				f.Alloc = []string{ev.desc}
			}
		case primBlock:
			if f.Block == nil {
				f.Block = []string{ev.desc}
			}
		case primImpure:
			if f.Impure == nil {
				f.Impure = []string{ev.desc}
			}
		case primSink:
			if f.Sink == nil {
				f.Sink = []string{ev.desc}
			}
		}
	}
	f.MapOrdered = node.returnsLocalTaint()
	return f
}

// returnsLocalTaint reports whether the function returns a slice built by
// appending inside an unsorted map iteration.
func (n *funcNode) returnsLocalTaint() bool {
	for _, obj := range n.returnedObjs {
		if _, tainted := n.taintedAppend[obj]; tainted && !n.sortCleared[obj] {
			return true
		}
	}
	return false
}

// fixpoint closes the local summaries over the call graph. Facts only turn
// on (a path, once set, is never replaced), so the iteration is monotone and
// terminates even on recursive call graphs. An //mk:allow at a call site
// (for the analyzer owning the invariant class) stops propagation through
// that edge: the caller audited the callee's behaviour, so the chain ends
// there instead of tainting everything above it.
func (fx *Facts) fixpoint() {
	for _, node := range fx.nodes {
		fx.local[node.fn.FullName()] = seedFact(node)
	}
	edgeAllowed := func(kind primKind, pos token.Pos) bool {
		return fx.idx != nil && fx.idx.allows(primAnalyzer[kind], fx.fset.Position(pos))
	}
	for changed := true; changed; {
		changed = false
		for _, node := range fx.nodes {
			name := node.fn.FullName()
			cur := fx.local[name]
			for _, call := range node.calls {
				cf, ok := fx.Of(call.fn)
				if !ok {
					continue
				}
				step := shortFuncName(call.fn)
				if cur.Emit == nil && cf.Emit != nil && !edgeAllowed(primEmit, call.pos) {
					cur.Emit = append([]string{step}, cf.Emit...)
					changed = true
				}
				if cur.Alloc == nil && cf.Alloc != nil && !edgeAllowed(primAlloc, call.pos) {
					cur.Alloc = append([]string{step}, cf.Alloc...)
					changed = true
				}
				if cur.Block == nil && cf.Block != nil && !edgeAllowed(primBlock, call.pos) {
					cur.Block = append([]string{step}, cf.Block...)
					changed = true
				}
				if cur.Impure == nil && cf.Impure != nil && !edgeAllowed(primImpure, call.pos) {
					cur.Impure = append([]string{step}, cf.Impure...)
					changed = true
				}
				if cur.Sink == nil && cf.Sink != nil && !edgeAllowed(primSink, call.pos) {
					cur.Sink = append([]string{step}, cf.Sink...)
					changed = true
				}
			}
			if !cur.MapOrdered {
				// Returned data derived from a callee that itself returns
				// map-order-tainted data stays tainted unless sorted.
				for _, g := range node.returnedCalls {
					if gf, ok := fx.Of(g); ok && gf.MapOrdered {
						cur.MapOrdered = true
						changed = true
						break
					}
				}
				if !cur.MapOrdered {
					for _, obj := range node.returnedObjs {
						ac, ok := node.assignedFrom[obj]
						if !ok || node.sortCleared[obj] {
							continue
						}
						if gf, ok := fx.Of(ac.fn); ok && gf.MapOrdered {
							cur.MapOrdered = true
							changed = true
							break
						}
					}
				}
			}
			fx.local[name] = cur
		}
	}
}

// --- primitive collection ---------------------------------------------------

// collector walks one function body gathering primitive events, resolved
// call sites and maporder bookkeeping. Function literals are attributed to
// the enclosing declaration (they usually run synchronously: sort closures,
// range callbacks); `go` statement literals are not — their bodies run on
// another goroutine, and the `go` itself is already recorded.
type collector struct {
	fset *token.FileSet
	info *types.Info
	idx  *directiveIndex
	node *funcNode
}

// add records an event unless an //mk:allow for the owning analyzer covers
// the primitive site.
func (c *collector) add(kind primKind, pos token.Pos, desc string) {
	if c.idx != nil && c.idx.allows(primAnalyzer[kind], c.fset.Position(pos)) {
		return
	}
	c.node.events = append(c.node.events, primEvent{kind: kind, pos: pos, desc: desc})
}

// walk visits n; commExempt marks select-with-default comm statements whose
// channel operation is non-blocking by construction.
func (c *collector) walk(n ast.Node, commExempt bool) {
	if n == nil {
		return
	}
	switch s := n.(type) {
	case *ast.GoStmt:
		c.add(primAlloc, s.Pos(), "go statement")
		c.add(primImpure, s.Pos(), "go statement (spawns a goroutine)")
		// Arguments evaluate in this goroutine; the function body does not.
		for _, a := range s.Call.Args {
			if _, ok := ast.Unparen(a).(*ast.FuncLit); !ok {
				c.walk(a, false)
			}
		}
		return
	case *ast.FuncLit:
		c.add(primAlloc, s.Pos(), "closure")
		c.walk(s.Body, false)
		return
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			c.add(primBlock, s.Pos(), "select without default")
		}
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm != nil {
				c.walk(cc.Comm, hasDefault)
			}
			for _, stmt := range cc.Body {
				c.walk(stmt, false)
			}
		}
		return
	case *ast.SendStmt:
		if !commExempt {
			c.add(primBlock, s.Pos(), "channel send outside select-with-default")
		}
		c.walk(s.Chan, false)
		c.walk(s.Value, false)
		return
	case *ast.UnaryExpr:
		if s.Op == token.ARROW && !commExempt {
			c.add(primBlock, s.Pos(), "channel receive")
		}
		if s.Op == token.AND {
			if _, ok := ast.Unparen(s.X).(*ast.CompositeLit); ok {
				c.add(primAlloc, s.Pos(), "&composite literal")
			}
		}
		c.walk(s.X, false)
		return
	case *ast.CompositeLit:
		t := c.info.TypeOf(s)
		under := t
		if nd := namedOf(t); nd != nil {
			under = nd.Underlying()
		}
		switch under.(type) {
		case *types.Slice:
			c.add(primAlloc, s.Pos(), "slice literal")
		case *types.Map:
			c.add(primAlloc, s.Pos(), "map literal")
		}
	case *ast.SelectorExpr:
		if fn, ok := c.info.Uses[s.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && recvNamed(fn) == nil {
			c.add(primAlloc, s.Pos(), "fmt."+fn.Name())
		}
	case *ast.RangeStmt:
		c.walk(s.X, false)
		if t := c.info.TypeOf(s.X); t != nil {
			switch t.Underlying().(type) {
			case *types.Map:
				c.node.mapRanges = append(c.node.mapRanges, posSpan{start: s.Body.Pos(), end: s.Body.End()})
			case *types.Chan:
				c.add(primBlock, s.Pos(), "range over channel")
			}
		}
		c.walk(s.Body, false)
		return
	case *ast.AssignStmt:
		c.collectAssign(s)
	case *ast.IncDecStmt:
		c.checkSharedWrite(s.X, s.Pos())
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			switch e := ast.Unparen(r).(type) {
			case *ast.Ident:
				if obj := c.info.Uses[e]; obj != nil {
					c.node.returnedObjs = append(c.node.returnedObjs, obj)
				}
			case *ast.CallExpr:
				if fn := funcOf(c.info, e); fn != nil {
					c.node.returnedCalls = append(c.node.returnedCalls, fn)
				}
			}
		}
	case *ast.CallExpr:
		c.collectCall(s)
	}
	// Generic traversal for everything not fully handled above.
	for _, child := range childNodes(n) {
		c.walk(child, false)
	}
}

// collectAssign handles shared-state write detection and maporder taint
// bookkeeping for one assignment, then lets the generic walk descend.
func (c *collector) collectAssign(s *ast.AssignStmt) {
	for _, lhs := range s.Lhs {
		c.checkSharedWrite(lhs, s.Pos())
	}
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, rhs := range s.Rhs {
		lhsIdent, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := c.info.Defs[lhsIdent]
		if obj == nil {
			obj = c.info.Uses[lhsIdent]
		}
		if obj == nil {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := c.info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" {
				// Suppression composes with taint seeding too: an audited
				// append (e.g. followed by a manual insertion sort) does not
				// mark the slice map-ordered.
				if c.node.inMapRange(s.Pos()) &&
					!(c.idx != nil && c.idx.allows(primAnalyzer[primSink], c.fset.Position(s.Pos()))) {
					c.node.taintedAppend[obj] = s.Pos()
				}
				continue
			}
		}
		if fn := funcOf(c.info, call); fn != nil {
			c.node.assignedFrom[obj] = assignedCall{fn: fn, pos: s.Pos()}
		}
	}
}

// inMapRange reports whether pos falls inside a recorded map-range body
// (during collection, ranges are recorded before their bodies are walked).
func (n *funcNode) inMapRange(pos token.Pos) bool {
	for _, span := range n.mapRanges {
		if span.contains(pos) {
			return true
		}
	}
	return false
}

// checkSharedWrite flags writes whose destination chain passes through the
// shared event-core state (emunet.Network / emunet.engine): the prep phase
// of a parallel epoch must treat both as read-only.
func (c *collector) checkSharedWrite(lhs ast.Expr, pos token.Pos) {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if t := c.info.TypeOf(e.X); t != nil && isSharedEngineType(t) {
				c.add(primImpure, pos, fmt.Sprintf("writes shared engine state (%s.%s)", types.ExprString(e.X), e.Sel.Name))
				return
			}
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return
		}
	}
}

func isSharedEngineType(t types.Type) bool {
	return namedIn(t, "emunet", "Network") || namedIn(t, "emunet", "engine")
}

// collectCall records the resolved call site and classifies the callee
// against every primitive surface.
func (c *collector) collectCall(call *ast.CallExpr) {
	// Builtins with allocation semantics.
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				c.add(primAlloc, call.Pos(), b.Name())
			case "append":
				c.add(primAlloc, call.Pos(), "append")
			}
			return
		}
	}
	// string <-> []byte/[]rune conversions.
	if len(call.Args) == 1 {
		if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() {
			to := tv.Type
			from := c.info.TypeOf(call.Args[0])
			if from != nil && ((isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))) {
				c.add(primAlloc, call.Pos(), "string conversion")
			}
		}
	}
	fn := funcOf(c.info, call)
	if fn == nil {
		return
	}
	c.node.calls = append(c.node.calls, callSite{pos: call.Pos(), fn: fn, expr: call})

	if desc, ok := emitEntry(fn); ok {
		c.add(primEmit, call.Pos(), desc)
		c.add(primImpure, call.Pos(), desc)
	}
	if desc, ok := blockingCall(c.info, call, fn); ok {
		c.add(primBlock, call.Pos(), desc)
	}
	if desc, ok := impureCall(fn); ok {
		c.add(primImpure, call.Pos(), desc)
	}
	if desc, ok := sinkCall(fn); ok {
		c.add(primSink, call.Pos(), desc)
	}
	if desc, ok := sharedLockCall(c.info, call, fn); ok {
		c.add(primImpure, call.Pos(), desc)
	}
	// sort/slices calls clear maporder taint on their slice argument.
	if fn.Pkg() != nil && (fn.Pkg().Path() == "sort" || fn.Pkg().Path() == "slices") && recvNamed(fn) == nil {
		for _, a := range call.Args {
			clearSortArg(c, a)
		}
	}
}

// clearSortArg untaints the identifier at the heart of a sort call argument
// (including one conversion layer, for sort.Sort(byName(keys))).
func clearSortArg(c *collector, arg ast.Expr) {
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		if obj := c.info.Uses[e]; obj != nil {
			c.node.sortCleared[obj] = true
		}
	case *ast.CallExpr:
		if len(e.Args) == 1 {
			clearSortArg(c, e.Args[0])
		}
	}
}

// emitEntry reports whether fn is on the banned emit/reconfigure surface
// (shared with lockemit's direct check).
func emitEntry(fn *types.Func) (string, bool) {
	recv := recvNamed(fn)
	if recv == nil || !pkgIs(recv.Obj().Pkg(), "core") {
		return "", false
	}
	if methods, ok := bannedWhileLocked[recv.Obj().Name()]; ok && methods[fn.Name()] {
		return shortFuncName(fn), true
	}
	return "", false
}

// blockingCall reports whether the call can block the calling goroutine:
// lock acquisition outside package telemetry's own types, WaitGroup/Cond
// waits, sleeps, and I/O entry points.
func blockingCall(info *types.Info, call *ast.CallExpr, fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	recv := recvNamed(fn)
	switch pkg.Path() {
	case "sync":
		if recv == nil {
			return "", false
		}
		switch recv.Obj().Name() {
		case "Mutex", "RWMutex":
			if fn.Name() == "Lock" || fn.Name() == "RLock" {
				if telemetryOwnedLock(info, call) {
					return "", false
				}
				return fmt.Sprintf("acquires %s (sync.%s)", lockExprString(call), recv.Obj().Name()), true
			}
		case "WaitGroup":
			if fn.Name() == "Wait" {
				return "sync.WaitGroup.Wait", true
			}
		case "Cond":
			if fn.Name() == "Wait" {
				return "sync.Cond.Wait", true
			}
		}
		return "", false
	case "time":
		if recv == nil && fn.Name() == "Sleep" {
			return "time.Sleep", true
		}
		return "", false
	case "os", "net", "io":
		return shortFuncName(fn) + " (I/O)", true
	}
	if recv != nil && recv.Obj().Pkg() != nil {
		switch recv.Obj().Pkg().Path() {
		case "os", "net":
			return shortFuncName(fn) + " (I/O)", true
		}
	}
	return "", false
}

// telemetryOwnedLock reports whether a Lock call's mutex is a field of a
// package-telemetry type — the bus's own short critical sections, which the
// non-blocking-publish contract explicitly permits.
func telemetryOwnedLock(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fieldSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	ownerType := info.TypeOf(fieldSel.X)
	if ownerType == nil {
		return false
	}
	n := namedOf(ownerType)
	return n != nil && pkgIs(n.Obj().Pkg(), "telemetry")
}

func lockExprString(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X)
	}
	return "lock"
}

// impureCall reports callees the parallel epoch-prep phase may never reach:
// randomness, timer scheduling, wall-clock reads and trace recording. (Emit
// entry points and shared-state writes are classified separately.)
func impureCall(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	recv := recvNamed(fn)
	switch pkg.Path() {
	case "math/rand", "math/rand/v2":
		return "math/rand." + fn.Name() + " (RNG draw)", true
	case "time":
		if recv == nil && wallClockFuncs[fn.Name()] {
			return "time." + fn.Name(), true
		}
	}
	if pkgIs(pkg, "vclock") {
		switch fn.Name() {
		case "AfterFunc", "AfterFuncAt", "NewPeriodic":
			return shortFuncName(fn) + " (schedules a timer)", true
		}
	}
	if recv != nil && pkgIs(recv.Obj().Pkg(), "trace") && recv.Obj().Name() == "Tracer" && fn.Name() == "Record" {
		return "(trace.Tracer).Record (shared ring write)", true
	}
	return "", false
}

// sharedLockCall flags Lock/Unlock on the event core's own mutexes: the
// prep phase must not touch the network lock at all.
func sharedLockCall(info *types.Info, call *ast.CallExpr, fn *types.Func) (string, bool) {
	if fn.Name() != "Lock" && fn.Name() != "RLock" {
		return "", false
	}
	recv := recvNamed(fn)
	if recv == nil || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != "sync" {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fieldSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if t := info.TypeOf(fieldSel.X); t != nil && isSharedEngineType(t) {
		return fmt.Sprintf("locks %s (shared engine mutex)", types.ExprString(sel.X)), true
	}
	return "", false
}

// sinkCall reports callees that feed order-sensitive deterministic outputs:
// telemetry publishes, trace records, NDJSON/stream encoders, hashes and
// writer-directed formatting.
func sinkCall(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	recv := recvNamed(fn)
	if recv != nil {
		switch {
		case pkgIs(recv.Obj().Pkg(), "telemetry") && recv.Obj().Name() == "Bus" &&
			(fn.Name() == "Publish" || fn.Name() == "PublishAt"):
			return "(telemetry.Bus)." + fn.Name(), true
		case pkgIs(recv.Obj().Pkg(), "trace") && recv.Obj().Name() == "Tracer" && fn.Name() == "Record":
			return "(trace.Tracer).Record", true
		case recv.Obj().Pkg() != nil && recv.Obj().Pkg().Path() == "encoding/json" &&
			recv.Obj().Name() == "Encoder" && fn.Name() == "Encode":
			return "(json.Encoder).Encode", true
		case recv.Obj().Pkg() != nil && recv.Obj().Pkg().Path() == "bufio" &&
			recv.Obj().Name() == "Writer" && (fn.Name() == "Write" || fn.Name() == "WriteString"):
			return "(bufio.Writer)." + fn.Name(), true
		case recv.Obj().Pkg() != nil && recv.Obj().Pkg().Path() == "io" &&
			recv.Obj().Name() == "Writer" && fn.Name() == "Write":
			// Interface method: covers hash.Hash too (it embeds io.Writer),
			// which makes fingerprint inputs a sink.
			return "io.Writer.Write", true
		}
		return "", false
	}
	switch pkg.Path() {
	case "io":
		if fn.Name() == "WriteString" {
			return "io.WriteString", true
		}
	case "fmt":
		switch fn.Name() {
		case "Fprintf", "Fprint", "Fprintln":
			return "fmt." + fn.Name(), true
		}
	}
	return "", false
}

// childNodes enumerates the direct children of n for the generic traversal
// arm of collector.walk.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(child ast.Node) bool {
		if first {
			first = false
			return true
		}
		if child != nil {
			out = append(out, child)
		}
		return false
	})
	return out
}
