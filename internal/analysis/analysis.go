// Package analysis is MANETKit's compile-time invariant checker: a small,
// dependency-free analogue of golang.org/x/tools/go/analysis that encodes
// the framework's runtime integrity rules as static analyzers.
//
// The paper's Framework Manager polices composition at runtime (integrity
// rules, quiescent reconfiguration); this package moves the hottest of those
// rules into the build, the way RFC 5444 structural constraints are already
// checked in internal/packetbb. Each analyzer rejects a class of bug the
// runtime test suite can only catch after the fact:
//
//   - determinism: wall-clock and global-randomness calls outside the
//     vclock facade (they break golden traces and chaos fingerprints);
//   - lockemit: emitting or reconfiguring while holding a framework lock
//     (the deadlock/stall class the RCU dispatch plan exists to avoid);
//   - hotalloc: allocation sites inside //mk:hotpath functions (the static
//     complement of the det(0) runtime alloc gate);
//   - ctxleak: pooled handler Contexts escaping the delivery that owns them;
//   - atomicstats: mixed atomic/plain access to the same struct field;
//   - epochpurity: impure work reachable from the engine's parallel
//     epoch-prep phase (//mk:parallelprep — the DESIGN.md §8 replay argument);
//   - blockingpub: blocking operations reachable from the telemetry
//     publish/fan-out path (//mk:nonblocking — the backpressure contract);
//   - maporder: map iteration order reaching deterministic outputs
//     (telemetry events, trace spans, NDJSON, fingerprints) unsorted.
//
// The suite is interprocedural: factbuild.go computes per-function summaries
// ("may emit", "may allocate", "may block", "may violate epoch purity",
// "returns map-order-tainted data"), closes them over the package call graph,
// and mkvet serializes them through the vet.cfg VetxOutput/PackageVetx
// plumbing so lockemit, hotalloc and the reachability analyzers see through
// helpers in other packages and report the offending call chain.
//
// Analyzers run over standard go/ast + go/types input, so they work both
// under `go vet -vettool=mkvet` (export-data type checking, see cmd/mkvet)
// and in analysistest-style fixture tests (source type checking).
//
// Findings are suppressed with an in-source directive:
//
//	//mk:allow <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line, on the line above it, or in the enclosing
// function's doc comment. A reason is required: a bare //mk:allow is itself
// reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //mk:allow directives.
	Name string
	// Doc is a one-paragraph description: the rule and the failure class it
	// prevents.
	Doc string
	// Run reports violations through pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one package's worth of typed syntax through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Facts is the interprocedural view: per-function summaries for this
	// package (closed over its call graph) plus summaries imported from
	// dependency fact files. See factbuild.go.
	Facts *Facts

	directives *directiveIndex
	report     func(Diagnostic)
}

// Reportf records a finding at pos unless an //mk:allow directive for this
// analyzer covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.directives.allows(p.Analyzer.Name, position) {
		return
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e (nil when untypeable).
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Run executes the analyzers over one typed package and returns the surviving
// diagnostics sorted by position. Directive scanning (//mk:allow, //mk:hotpath)
// is shared across analyzers. No imported facts: transitive analysis covers
// the package's own call graph only.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunWithFacts(fset, files, pkg, info, analyzers, nil)
	return diags, err
}

// RunWithFacts is Run seeded with dependency summaries (from mkvet's
// PackageVetx fact files, or sibling fixtures in analysistest). It also
// returns the cumulative fact set to serialize for importing packages.
// Diagnostics come back sorted by position and deduplicated, so the output
// order is stable for the vet cache and for golden assertions.
func RunWithFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, imported *FactSet) ([]Diagnostic, *FactSet, error) {
	idx := indexDirectives(fset, files)
	facts := buildFacts(fset, files, pkg, info, idx, imported)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			Info:       info,
			Facts:      facts,
			directives: idx,
			report:     func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	diags = append(diags, idx.malformed...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	// Dedup: two analyzers (or one analyzer via two paths) reporting the
	// same finding at the same position collapse to one line.
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out, facts.Exported(), nil
}

// ComputeFacts builds and returns the cumulative fact set for one package
// without running any analyzer — the fixture importer uses it to mimic
// mkvet's cross-package fact flow inside analysistest.
func ComputeFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, imported *FactSet) *FactSet {
	idx := indexDirectives(fset, files)
	return buildFacts(fset, files, pkg, info, idx, imported).Exported()
}

// NewInfo returns a types.Info populated with every map the analyzers need.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// --- directives -------------------------------------------------------------

const (
	allowPrefix   = "mk:allow"
	hotpathMarker = "mk:hotpath"
	// parallelPrepMarker names a function that runs on the engine's parallel
	// epoch-prep workers; epochpurity checks everything reachable from it.
	parallelPrepMarker = "mk:parallelprep"
	// nonblockingMarker names a publish/fan-out entry point that must never
	// block; blockingpub checks everything reachable from it.
	nonblockingMarker = "mk:nonblocking"
)

// directiveIndex maps (file, line) to the analyzer names allowed there, plus
// the span of each function whose doc comment carries a directive.
type directiveIndex struct {
	fset *token.FileSet
	// allowed[file][line] lists analyzer names suppressed on that line.
	allowed map[string]map[int][]string
	// funcAllows extends a doc-comment directive to the whole declaration.
	funcAllows []spanAllow
	malformed  []Diagnostic
}

type spanAllow struct {
	file       string
	start, end int // line range, inclusive
	names      []string
}

func (ix *directiveIndex) allows(analyzer string, pos token.Position) bool {
	lines := ix.allowed[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer {
				return true
			}
		}
	}
	for _, fa := range ix.funcAllows {
		if fa.file != pos.Filename || pos.Line < fa.start || pos.Line > fa.end {
			continue
		}
		for _, name := range fa.names {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// parseAllow splits "//mk:allow a,b reason" into analyzer names and reason.
func parseAllow(text string) (names []string, reason string, ok bool) {
	rest := strings.TrimPrefix(text, allowPrefix)
	if rest == text {
		return nil, "", false
	}
	rest = strings.TrimSpace(rest)
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "", true // malformed: no analyzer name
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n != "" {
			names = append(names, n)
		}
	}
	return names, strings.TrimSpace(strings.Join(fields[1:], " ")), true
}

func indexDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	ix := &directiveIndex{fset: fset, allowed: map[string]map[int][]string{}}
	for _, f := range files {
		fileName := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				names, reason, ok := parseAllow(text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if len(names) == 0 || reason == "" {
					ix.malformed = append(ix.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "mkdirective",
						Message:  "malformed //mk:allow: need analyzer name(s) and a justification, e.g. //mk:allow determinism wall-clock benchmark",
					})
					continue
				}
				if ix.allowed[fileName] == nil {
					ix.allowed[fileName] = map[int][]string{}
				}
				ix.allowed[fileName][pos.Line] = append(ix.allowed[fileName][pos.Line], names...)
			}
		}
		// Doc-comment directives cover the whole declaration.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Doc != nil && docHasDirective(fd.Doc, allowPrefix) {
				names := docAllowNames(fd.Doc)
				if len(names) > 0 {
					ix.funcAllows = append(ix.funcAllows, spanAllow{
						file:  fileName,
						start: fset.Position(fd.Pos()).Line,
						end:   fset.Position(fd.End()).Line,
						names: names,
					})
				}
			}
		}
	}
	return ix
}

func docHasDirective(doc *ast.CommentGroup, prefix string) bool {
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), prefix) {
			return true
		}
	}
	return false
}

func docAllowNames(doc *ast.CommentGroup) []string {
	var names []string
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if ns, reason, ok := parseAllow(text); ok && reason != "" {
			names = append(names, ns...)
		}
	}
	return names
}

// isHotpath reports whether fn's doc comment carries //mk:hotpath.
func isHotpath(fn *ast.FuncDecl) bool {
	return fn.Doc != nil && docHasDirective(fn.Doc, hotpathMarker)
}

// isParallelPrep reports whether fn's doc comment carries //mk:parallelprep.
func isParallelPrep(fn *ast.FuncDecl) bool {
	return fn.Doc != nil && docHasDirective(fn.Doc, parallelPrepMarker)
}

// isNonblocking reports whether fn's doc comment carries //mk:nonblocking.
func isNonblocking(fn *ast.FuncDecl) bool {
	return fn.Doc != nil && docHasDirective(fn.Doc, nonblockingMarker)
}

// --- shared type helpers ----------------------------------------------------

// pkgIs reports whether pkg is the named MANETKit package: an exact path
// match, a "/<base>"-suffixed match (manetkit/internal/core), or the bare
// base name (analysistest fixtures use single-segment import paths).
func pkgIs(pkg *types.Package, base string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == base || strings.HasSuffix(path, "/"+base)
}

// namedIn returns the *types.Named behind t (through pointers and aliases)
// when it is declared in a package matching base with the given type name.
func namedIn(t types.Type, base, name string) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Name() == name && pkgIs(n.Obj().Pkg(), base)
}

// namedOf unwraps pointers and aliases down to a named type.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// funcOf resolves a call's static callee (nil for calls through function
// values and interfaces... which still resolve for interface methods).
func funcOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// recvNamed returns the named receiver type of fn (nil for plain functions).
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// isTestFile reports whether pos lies in a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
