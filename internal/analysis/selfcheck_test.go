package analysis_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestRepoIsMkvetClean is the suite's self-check: it builds cmd/mkvet and
// runs it over the whole module through the real `go vet -vettool` protocol,
// asserting zero diagnostics. Every invariant the analyzers encode must hold
// in this repository (or carry a justified //mk:allow), so a regression in
// either the code or the analyzers fails here before it fails in CI.
func TestRepoIsMkvetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping full-module vet run")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	tool := filepath.Join(t.TempDir(), "mkvet")
	build := exec.Command("go", "build", "-o", tool, "./cmd/mkvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building mkvet: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("mkvet found violations (or failed): %v\n%s", err, out)
	}
}
