package analysis_test

import (
	"strings"
	"testing"

	"manetkit/internal/analysis"
	"manetkit/internal/analysis/analysistest"
)

func TestDeterminismFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "determ", analysis.Determinism)
}

func TestDeterminismSkipsVclock(t *testing.T) {
	// The facade itself grounds Clock in package time: zero diagnostics.
	analysistest.Run(t, "testdata", "vclock", analysis.Determinism)
}

func TestLockemitFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "core", analysis.Lockemit)
}

func TestLockemitFromImportingPackage(t *testing.T) {
	analysistest.Run(t, "testdata", "lockuser", analysis.Lockemit)
}

func TestCtxleakFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "ctxleakfix", analysis.Ctxleak)
}

func TestHotallocFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "hotallocfix", analysis.Hotalloc)
}

func TestAtomicstatsFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "atomicfix", analysis.Atomicstats)
}

func TestEpochpurityFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "emunet", analysis.Epochpurity)
}

func TestBlockingpubFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "telemetry", analysis.Blockingpub)
}

func TestMaporderFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "maporderfix", analysis.Maporder)
}

// TestCrossPackageFacts drives factuser, whose transitive lockemit and
// hotalloc diagnostics exist only if factlib's fact summaries crossed the
// package boundary (the analysistest importer mirrors mkvet's PackageVetx
// hand-off).
func TestCrossPackageFacts(t *testing.T) {
	analysistest.Run(t, "testdata", "factuser", analysis.Lockemit, analysis.Hotalloc)
}

// TestExportedFactSummaries asserts on the summaries themselves: what a
// package writes into its fact file for importers.
func TestExportedFactSummaries(t *testing.T) {
	lib := analysistest.Facts(t, "testdata", "factlib")
	notify, ok := lib.Lookup("factlib.Notify")
	if !ok || len(notify.Emit) == 0 || notify.Emit[len(notify.Emit)-1] != "(core.Env).Emit" {
		t.Errorf("factlib.Notify summary = %+v, want Emit path ending in (core.Env).Emit", notify)
	}
	grow, ok := lib.Lookup("factlib.Grow")
	if !ok || len(grow.Alloc) == 0 {
		t.Errorf("factlib.Grow summary = %+v, want an Alloc path", grow)
	}

	mo := analysistest.Facts(t, "testdata", "maporderfix")
	for _, fn := range []string{"maporderfix.unsortedKeys", "maporderfix.wrappedKeys"} {
		if f, ok := mo.Lookup(fn); !ok || !f.MapOrdered {
			t.Errorf("%s summary = %+v, want MapOrdered", fn, f)
		}
	}
	if f, ok := mo.Lookup("maporderfix.insertionKeys"); ok && f.MapOrdered {
		t.Errorf("maporderfix.insertionKeys summary = %+v: audited append must not taint the result", f)
	}
	if f, ok := mo.Lookup("maporderfix.dump"); !ok || len(f.Sink) == 0 {
		t.Errorf("maporderfix.dump summary = %+v, want a Sink path", f)
	}
}

func TestMalformedDirectivesReported(t *testing.T) {
	fset, files, pkg, info := analysistest.Load(t, "testdata", "directivefix")
	diags, err := analysis.Run(fset, files, pkg, info, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 mkdirective findings: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "mkdirective" {
			t.Fatalf("unexpected analyzer %q in %s", d.Analyzer, d)
		}
		if !strings.Contains(d.Message, "malformed //mk:allow") {
			t.Fatalf("unexpected message: %s", d)
		}
	}
}

func TestSuiteShape(t *testing.T) {
	all := analysis.All()
	if len(all) != 8 {
		t.Fatalf("suite has %d analyzers, want 8", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v is missing a name, doc or run function", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if analysis.ByName(a.Name) != a {
			t.Fatalf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if analysis.ByName("nope") != nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}
