package analysis_test

import (
	"strings"
	"testing"

	"manetkit/internal/analysis"
	"manetkit/internal/analysis/analysistest"
)

func TestDeterminismFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "determ", analysis.Determinism)
}

func TestDeterminismSkipsVclock(t *testing.T) {
	// The facade itself grounds Clock in package time: zero diagnostics.
	analysistest.Run(t, "testdata", "vclock", analysis.Determinism)
}

func TestLockemitFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "core", analysis.Lockemit)
}

func TestLockemitFromImportingPackage(t *testing.T) {
	analysistest.Run(t, "testdata", "lockuser", analysis.Lockemit)
}

func TestCtxleakFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "ctxleakfix", analysis.Ctxleak)
}

func TestHotallocFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "hotallocfix", analysis.Hotalloc)
}

func TestAtomicstatsFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "atomicfix", analysis.Atomicstats)
}

func TestMalformedDirectivesReported(t *testing.T) {
	fset, files, pkg, info := analysistest.Load(t, "testdata", "directivefix")
	diags, err := analysis.Run(fset, files, pkg, info, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 mkdirective findings: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "mkdirective" {
			t.Fatalf("unexpected analyzer %q in %s", d.Analyzer, d)
		}
		if !strings.Contains(d.Message, "malformed //mk:allow") {
			t.Fatalf("unexpected message: %s", d)
		}
	}
}

func TestSuiteShape(t *testing.T) {
	all := analysis.All()
	if len(all) != 5 {
		t.Fatalf("suite has %d analyzers, want 5", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v is missing a name, doc or run function", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if analysis.ByName(a.Name) != a {
			t.Fatalf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if analysis.ByName("nope") != nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}
