package analysis

import (
	"go/ast"
	"go/types"
)

// Ctxleak polices the pooled handler Context of the accept plan
// (core/accept_plan.go). One *core.Context value is compiled per protocol
// and reused for every delivery under the current plan; retaining it beyond
// the handler invocation aliases later deliveries' context (and, if a future
// plan swaps the environment, a stale one). The analyzer tracks every
// function parameter of type *core.Context (and its direct local aliases)
// and reports when the value can outlive the call:
//
//   - stored into a struct field, map/slice element, or package-level var
//   - appended to a slice or placed in a composite literal
//   - sent on a channel or returned
//   - captured by a closure handed to a deferred executor (go statements,
//     Clock.AfterFunc, vclock.NewPeriodic, pool Submit, ScheduleAt)
//
// The sanctioned idiom for timers is re-entry: schedule a closure that calls
// Protocol.RunLocked and receives a fresh context (see aodv/dymo retries).
var Ctxleak = &Analyzer{
	Name: "ctxleak",
	Doc: "forbid retaining the pooled *core.Context beyond the handler call: " +
		"no stores to fields/globals/containers, no returns or channel sends, " +
		"no capture by deferred closures; re-enter via Protocol.RunLocked instead",
	Run: runCtxleak,
}

// deferredExecutors name call targets whose function-literal arguments run
// after the current call returns.
var deferredExecutors = map[string]bool{
	"AfterFunc": true, "NewPeriodic": true, "Submit": true, "ScheduleAt": true,
}

func runCtxleak(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkCtxFunc(pass, fd.Type, fd.Body)
			}
		}
		// Function literals at any depth get the same treatment.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkCtxFunc(pass, lit.Type, lit.Body)
			}
			return true
		})
	}
	return nil
}

func isCoreContextPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return namedIn(p.Elem(), "core", "Context")
}

// checkCtxFunc analyses one function whose signature binds *core.Context
// parameters.
func checkCtxFunc(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	tracked := map[types.Object]bool{}
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				obj := pass.Info.Defs[name]
				if obj != nil && isCoreContextPtr(obj.Type()) {
					tracked[obj] = true
				}
			}
		}
	}
	if len(tracked) == 0 {
		return
	}
	// One aliasing pass: `c := ctx` makes c tracked too.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && tracked[pass.Info.Uses[id]] {
				if lid, ok := as.Lhs[i].(*ast.Ident); ok {
					if def := pass.Info.Defs[lid]; def != nil {
						tracked[def] = true
					} else if use := pass.Info.Uses[lid]; use != nil && use.Parent() != nil && use.Parent() != pass.Pkg.Scope() {
						tracked[use] = true
					}
				}
			}
		}
		return true
	})

	isTracked := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && tracked[pass.Info.Uses[id]]
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) || !isTracked(rhs) {
					continue
				}
				switch lhs := s.Lhs[i].(type) {
				case *ast.SelectorExpr:
					pass.Reportf(s.Pos(), "pooled *core.Context stored into field %s: it is recycled after the handler returns; re-enter via Protocol.RunLocked instead", lhs.Sel.Name)
				case *ast.IndexExpr:
					pass.Reportf(s.Pos(), "pooled *core.Context stored into a map/slice element outlives the handler; re-enter via Protocol.RunLocked instead")
				case *ast.Ident:
					if obj := pass.Info.Uses[lhs]; obj != nil && obj.Parent() == pass.Pkg.Scope() {
						pass.Reportf(s.Pos(), "pooled *core.Context stored into package-level var %s outlives the handler", lhs.Name)
					}
				case *ast.StarExpr:
					pass.Reportf(s.Pos(), "pooled *core.Context stored through a pointer may outlive the handler")
				}
			}
		case *ast.SendStmt:
			if isTracked(s.Value) {
				pass.Reportf(s.Pos(), "pooled *core.Context sent on a channel outlives the handler")
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if isTracked(r) {
					pass.Reportf(s.Pos(), "pooled *core.Context returned from the handler escapes its delivery")
				}
			}
		case *ast.CompositeLit:
			for _, el := range s.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isTracked(v) {
					pass.Reportf(v.Pos(), "pooled *core.Context placed in a composite literal may outlive the handler")
				}
			}
		case *ast.CallExpr:
			if fun, ok := ast.Unparen(s.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" {
					for _, a := range s.Args[1:] {
						if isTracked(a) {
							pass.Reportf(a.Pos(), "pooled *core.Context appended to a slice outlives the handler")
						}
					}
					return true
				}
			}
			checkDeferredCapture(pass, s, tracked)
		case *ast.GoStmt:
			reportCtxCapture(pass, s.Call, tracked, "a goroutine")
		}
		return true
	})
}

// checkDeferredCapture flags closures capturing a tracked context when they
// are handed to a deferred executor (timers, periodics, worker pools).
func checkDeferredCapture(pass *Pass, call *ast.CallExpr, tracked map[types.Object]bool) {
	var calleeName string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		calleeName = fun.Sel.Name
	case *ast.Ident:
		calleeName = fun.Name
	}
	if !deferredExecutors[calleeName] {
		return
	}
	reportCtxCapture(pass, call, tracked, calleeName)
}

func reportCtxCapture(pass *Pass, call *ast.CallExpr, tracked map[types.Object]bool, where string) {
	exprs := append([]ast.Expr{call.Fun}, call.Args...)
	for _, a := range exprs {
		lit, ok := ast.Unparen(a).(*ast.FuncLit)
		if !ok {
			continue
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && tracked[pass.Info.Uses[id]] {
				pass.Reportf(id.Pos(), "pooled *core.Context captured by a closure passed to %s runs after the handler returns; re-enter via Protocol.RunLocked instead", where)
				return false
			}
			return true
		})
	}
	// The context passed directly as an argument to a deferred executor.
	for _, a := range call.Args {
		if id, ok := ast.Unparen(a).(*ast.Ident); ok && tracked[pass.Info.Uses[id]] {
			pass.Reportf(id.Pos(), "pooled *core.Context passed to %s outlives the handler", where)
		}
	}
}
