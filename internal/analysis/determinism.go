package analysis

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package time entry points that read or schedule on
// the wall clock. Pure arithmetic (time.Duration, time.Unix, Parse, ...) is
// deterministic and allowed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "Sleep": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// globalRandConstructors are the math/rand entry points that build an
// explicitly seeded generator; everything else at package level draws from
// the shared, unseeded source.
var globalRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 seeded constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// Determinism flags wall-clock and global-randomness use outside the vclock
// facade. Everything feeding golden traces, chaos fingerprints or mkbench
// baselines must take its time from vclock.Clock (so virtual-clock runs are
// byte-for-byte reproducible) and its randomness from an explicitly seeded
// *rand.Rand. Test files are exempt: wall-clock watchdogs around a virtual
// run are fine.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now/Since/After/Sleep/Tick/NewTimer/NewTicker/AfterFunc and " +
		"unseeded math/rand outside internal/vclock; deterministic paths must use " +
		"the deployment clock (vclock.Clock) and seeded generators",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if pkgIs(pass.Pkg, "vclock") {
		// The facade itself grounds Clock in package time.
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || recvNamed(fn) != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s bypasses the deployment clock; use vclock.Clock (Now/Since/AfterFunc) so virtual-clock runs stay deterministic, or annotate //mk:allow determinism <reason>",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !globalRandConstructors[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"rand.%s draws from the global unseeded source; use a seeded rand.New(rand.NewSource(seed)) so runs are reproducible, or annotate //mk:allow determinism <reason>",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
