package analysis

import (
	"go/ast"
	"go/types"
)

// Hotalloc is the static complement of the runtime det(0) allocation gate
// (harness.MeasureDispatch / mkbench -ablation dispatch): functions marked
//
//	//mk:hotpath
//
// in their doc comment are the steady-state dispatch path, benchmarked at
// zero allocations per operation. The analyzer rejects syntax that commonly
// compiles to a heap allocation:
//
//   - function literals (closures) and `go` statements
//   - make/new calls
//   - slice and map composite literals, and &T{...} (escaping candidates;
//     plain value struct literals like trace.Span{...} stay on the stack and
//     are allowed)
//   - append (growth allocates)
//   - any reference into package fmt
//   - string <-> []byte/[]rune conversions
//
// The check is transitive: calling a helper whose interprocedural summary
// (factbuild.go) says it may allocate is reported with the offending call
// chain, even when the helper lives in another package. Cold sub-paths
// inside a hot function (error handling, contended-lock parking) carry a
// justified //mk:allow hotalloc — which also stops the suppressed site from
// seeding an Alloc fact, so audited cold paths don't taint their callers.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc: "forbid likely-allocating syntax (closures, go, make/new, &T{...}, " +
		"slice/map literals, append, fmt, string<->[]byte conversions) in " +
		"//mk:hotpath functions, directly or through any helper call chain — " +
		"the static half of the det(0) alloc gate",
	Run: runHotalloc,
}

func runHotalloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(e.Pos(), "go statement in //mk:hotpath %s allocates a goroutine", fd.Name.Name)
		case *ast.FuncLit:
			pass.Reportf(e.Pos(), "closure in //mk:hotpath %s may allocate its capture environment", fd.Name.Name)
			return false // the literal runs elsewhere; don't double-report its body
		case *ast.CompositeLit:
			t := pass.TypeOf(e)
			under := t
			if n := namedOf(t); n != nil {
				under = n.Underlying()
			}
			switch under.(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(e.Pos(), "slice/map literal in //mk:hotpath %s allocates", fd.Name.Name)
			}
		case *ast.UnaryExpr:
			if e.Op.String() == "&" {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					pass.Reportf(e.Pos(), "&composite literal in //mk:hotpath %s escapes to the heap", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, e)
		case *ast.SelectorExpr:
			if fn, ok := pass.Info.Uses[e.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				pass.Reportf(e.Pos(), "fmt.%s in //mk:hotpath %s allocates (formatting boxes arguments)", fn.Name(), fd.Name.Name)
			}
		}
		return true
	})
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s in //mk:hotpath %s allocates", obj.Name(), fd.Name.Name)
			case "append":
				pass.Reportf(call.Pos(), "append in //mk:hotpath %s allocates on growth", fd.Name.Name)
			}
			return
		}
	}
	// Conversion string([]byte), []byte(string), []rune(string), string([]rune).
	if len(call.Args) == 1 {
		if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
			to := tv.Type
			from := pass.TypeOf(call.Args[0])
			if from == nil {
				return
			}
			if (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from)) {
				pass.Reportf(call.Pos(), "string<->[]byte/[]rune conversion in //mk:hotpath %s copies and allocates", fd.Name.Name)
			}
			return
		}
	}
	// Transitive: the callee's summary says allocating syntax is reachable
	// through it.
	fn := funcOf(pass.Info, call)
	if fn == nil {
		return
	}
	if fact, ok := pass.Facts.Of(fn); ok && fact.Alloc != nil {
		pass.Reportf(call.Pos(),
			"call to %s in //mk:hotpath %s reaches %s (call chain: %s); the dispatch path is benchmarked at det(0) allocations — inline a non-allocating variant or annotate //mk:allow hotalloc <reason>",
			shortFuncName(fn), fd.Name.Name, fact.Alloc[len(fact.Alloc)-1],
			chainString(shortFuncName(fn), fact.Alloc))
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
