package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Lockemit flags framework entry points invoked while a framework lock is
// held. Emitting an event or triggering a reconfiguration from inside
// Manager.mu, Protocol.mu or a unit's TicketMutex critical section is the
// deadlock/stall class the RCU dispatch plan was built to avoid: emit
// delivers into critical sections, and the reconfiguration surface takes the
// manager mutex, so re-entering either from under a framework lock inverts
// the lock order (Manager.mu -> Protocol.mu -> section).
//
// The lock-state walk is intra-procedural — it tracks Lock/Unlock pairs
// (including TicketMutex Wait-redemption) through straight-line code and
// branches, treating `defer mu.Unlock()` as held-to-return — but the call
// check is transitive: a call to a helper whose interprocedural summary
// says it may reach an emit/reconfigure entry point (see factbuild.go) is
// reported with the offending call chain, even when the helper lives in
// another package.
var Lockemit = &Analyzer{
	Name: "lockemit",
	Doc: "forbid Env.Emit/Context.Emit/Protocol.Emit and the reconfiguration " +
		"surface (Manager.Deploy/Undeploy/Rewire/SetModel/Quiesce/Close, " +
		"Protocol.SetTuple) — directly or through any helper call chain — " +
		"while holding Manager.mu, Protocol.mu or a TicketMutex",
	Run: runLockemit,
}

// bannedWhileLocked maps receiver type name -> method set. All types live in
// the core package.
var bannedWhileLocked = map[string]map[string]bool{
	"Manager": {
		"Deploy": true, "Undeploy": true, "Rewire": true,
		"SetModel": true, "Quiesce": true, "Close": true,
	},
	"Protocol": {"SetTuple": true, "Emit": true},
	"Env":      {"Emit": true},
	"Context":  {"Emit": true},
}

func runLockemit(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			le := &lockEmitWalker{pass: pass}
			le.walkFunc(fd.Body)
		}
	}
	return nil
}

// lockEmitWalker runs a small abstract interpretation over one function body
// (function literals are walked as their own scopes: a closure does not
// inherit the creating function's lock state, because it typically runs
// later on another goroutine or under the framework's own locking).
type lockEmitWalker struct {
	pass *Pass
}

// lockState is the set of held guards, keyed by the printed guard expression.
type lockState map[string]bool

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (w *lockEmitWalker) walkFunc(body *ast.BlockStmt) {
	w.walkStmts(body.List, lockState{})
}

// walkStmts interprets stmts under state, returning the resulting state and
// whether control definitely leaves the function (return/panic).
func (w *lockEmitWalker) walkStmts(stmts []ast.Stmt, state lockState) (lockState, bool) {
	for _, stmt := range stmts {
		var terminated bool
		state, terminated = w.walkStmt(stmt, state)
		if terminated {
			return state, true
		}
	}
	return state, false
}

func (w *lockEmitWalker) walkStmt(stmt ast.Stmt, state lockState) (lockState, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		w.checkExpr(s.X, state)
		state = w.applyGuards(s.X, state)
	case *ast.DeferStmt:
		// defer mu.Unlock() releases at return, not here: the guard stays
		// held for everything that follows. Other deferred calls are checked
		// under the current state (they run while any still-held guard from
		// a bare Lock remains held at return; conservative but cheap).
		if w.guardKey(s.Call, "Unlock") == "" {
			w.checkExpr(s.Call, state)
		}
	case *ast.GoStmt:
		// The goroutine body runs concurrently, without this frame's locks.
		w.walkCallFunLit(s.Call)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.checkExpr(rhs, state)
			state = w.applyGuards(rhs, state)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r, state)
		}
		return state, true
	case *ast.BranchStmt:
		// break/continue/goto: approximate as fallthrough.
	case *ast.IfStmt:
		if s.Init != nil {
			state, _ = w.walkStmt(s.Init, state)
		}
		w.checkExpr(s.Cond, state)
		thenState, thenTerm := w.walkStmts(s.Body.List, state.clone())
		elseState, elseTerm := state.clone(), false
		if s.Else != nil {
			elseState, elseTerm = w.walkStmt(s.Else, state.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return state, true
		case thenTerm:
			return elseState, false
		case elseTerm:
			return thenState, false
		default:
			return union(thenState, elseState), false
		}
	case *ast.BlockStmt:
		return w.walkStmts(s.List, state)
	case *ast.ForStmt:
		if s.Init != nil {
			state, _ = w.walkStmt(s.Init, state)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, state)
		}
		bodyState, term := w.walkStmts(s.Body.List, state.clone())
		if term {
			// Body always returns: code after the loop only runs when the
			// loop body never ran.
			return state, false
		}
		return union(state, bodyState), false
	case *ast.RangeStmt:
		w.checkExpr(s.X, state)
		bodyState, term := w.walkStmts(s.Body.List, state.clone())
		if term {
			return state, false
		}
		return union(state, bodyState), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			state, _ = w.walkStmt(s.Init, state)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, state)
		}
		return w.walkCases(s.Body, state)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			state, _ = w.walkStmt(s.Init, state)
		}
		return w.walkCases(s.Body, state)
	case *ast.SelectStmt:
		return w.walkCases(s.Body, state)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, state)
	case *ast.SendStmt:
		w.checkExpr(s.Value, state)
	case *ast.IncDecStmt, *ast.DeclStmt, *ast.EmptyStmt:
		if ds, ok := stmt.(*ast.DeclStmt); ok {
			ast.Inspect(ds, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					w.checkExpr(e, state)
					return false
				}
				return true
			})
		}
	}
	return state, false
}

// walkCases merges the states of all case bodies of a switch/select.
func (w *lockEmitWalker) walkCases(body *ast.BlockStmt, state lockState) (lockState, bool) {
	merged := lockState(nil)
	allTerm := len(body.List) > 0
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts = c.Body
		case *ast.CommClause:
			stmts = c.Body
		}
		caseState, term := w.walkStmts(stmts, state.clone())
		if !term {
			allTerm = false
			if merged == nil {
				merged = caseState
			} else {
				merged = union(merged, caseState)
			}
		}
	}
	if allTerm {
		return state, true
	}
	if merged == nil {
		merged = state
	}
	// A switch may fall through all cases without matching.
	return union(merged, state), false
}

func union(a, b lockState) lockState {
	out := a.clone()
	for k := range b {
		out[k] = true
	}
	return out
}

// applyGuards updates the lock state for Lock/Wait/Unlock calls appearing in
// expr (including inside call chains). Function literals are skipped: their
// acquisitions happen in their own scope, not the current frame's.
func (w *lockEmitWalker) applyGuards(expr ast.Expr, state lockState) lockState {
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key := w.guardKey(call, "Lock"); key != "" {
			state[key] = true
		} else if key := w.guardKey(call, "Wait"); key != "" {
			// TicketMutex.Wait redeems a ticket: it enters the section.
			state[key] = true
		} else if key := w.guardKey(call, "Unlock"); key != "" {
			delete(state, key)
		}
		return true
	})
	return state
}

// guardKey returns a stable key when call is <guard>.<method>() on a tracked
// framework lock: a TicketMutex anywhere, or a sync.Mutex/RWMutex field of
// core.Manager / core.Protocol.
func (w *lockEmitWalker) guardKey(call *ast.CallExpr, method string) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return ""
	}
	recv := ast.Unparen(sel.X)
	rt := w.pass.TypeOf(recv)
	if rt == nil {
		return ""
	}
	if namedIn(rt, "core", "TicketMutex") {
		if method == "Wait" && len(call.Args) != 1 {
			return ""
		}
		return types.ExprString(recv)
	}
	if method == "Wait" {
		return "" // sync.Cond.Wait and friends are not acquisitions
	}
	// A mutex field on Manager or Protocol: <owner>.<field>.Lock().
	fieldSel, ok := recv.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if n := namedOf(rt); n == nil || n.Obj().Pkg() == nil || !isSyncMutex(n) {
		return ""
	}
	ownerType := w.pass.TypeOf(fieldSel.X)
	if ownerType == nil {
		return ""
	}
	if namedIn(ownerType, "core", "Manager") || namedIn(ownerType, "core", "Protocol") {
		return types.ExprString(recv)
	}
	return ""
}

func isSyncMutex(n *types.Named) bool {
	name := n.Obj().Name()
	return (name == "Mutex" || name == "RWMutex") && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
}

// checkExpr reports banned calls found anywhere in expr while a guard is
// held. Function literals are walked as fresh scopes.
func (w *lockEmitWalker) checkExpr(expr ast.Expr, state lockState) {
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			w.walkFunc(e.Body)
			return false
		case *ast.CallExpr:
			if len(state) == 0 {
				return true
			}
			fn := funcOf(w.pass.Info, e)
			if fn == nil {
				return true
			}
			if recv := recvNamed(fn); recv != nil && pkgIs(recv.Obj().Pkg(), "core") {
				if methods, ok := bannedWhileLocked[recv.Obj().Name()]; ok && methods[fn.Name()] {
					w.pass.Reportf(e.Pos(),
						"%s.%s called while holding %s: emit/reconfigure under a framework lock inverts the Manager.mu -> Protocol.mu -> section order and can deadlock or stall dispatch; release the lock first or annotate //mk:allow lockemit <reason>",
						recv.Obj().Name(), fn.Name(), heldNames(state))
					return true
				}
			}
			// Transitive: the callee's summary says an emit/reconfigure entry
			// point is reachable through it.
			if fact, ok := w.pass.Facts.Of(fn); ok && fact.Emit != nil {
				w.pass.Reportf(e.Pos(),
					"call to %s while holding %s reaches %s (call chain: %s); emit/reconfigure under a framework lock inverts the Manager.mu -> Protocol.mu -> section order and can deadlock or stall dispatch; release the lock first or annotate //mk:allow lockemit <reason>",
					shortFuncName(fn), heldNames(state), fact.Emit[len(fact.Emit)-1],
					chainString(shortFuncName(fn), fact.Emit))
			}
		}
		return true
	})
}

// walkCallFunLit walks `go f(...)` bodies when f is a literal.
func (w *lockEmitWalker) walkCallFunLit(call *ast.CallExpr) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.walkFunc(lit.Body)
	}
	for _, a := range call.Args {
		if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			w.walkFunc(lit.Body)
		}
	}
}

func heldNames(state lockState) string {
	names := make([]string, 0, len(state))
	for k := range state {
		names = append(names, k)
	}
	sort.Strings(names) // deterministic order for diagnostics
	return strings.Join(names, ", ")
}
