package analysis

import (
	"go/ast"
	"go/token"
)

// Blockingpub enforces the telemetry backpressure contract at compile time:
// the bus publishes from the protocol dispatch path, so a slow subscriber
// must cost a dropped event, never a stalled publisher. The runtime half is
// the Published == Delivered + Dropped conservation check; this analyzer is
// the static half. Functions on the publish/fan-out path carry
//
//	//mk:nonblocking
//
// in their doc comment; everything reachable from them must not block:
//
//   - channel sends or receives outside select-with-default,
//   - select statements without a default clause, range over channels,
//   - acquiring locks other than package telemetry's own short-section
//     mutexes (b.mu is fine; a protocol or engine lock is not),
//   - sync.WaitGroup.Wait / sync.Cond.Wait / time.Sleep,
//   - I/O (os, net, io entry points — exporters run on their own goroutine).
//
// Reachability is interprocedural: helpers in other packages are checked
// through their imported fact summaries, and diagnostics carry the offending
// call chain.
var Blockingpub = &Analyzer{
	Name: "blockingpub",
	Doc: "forbid blocking operations (selectless channel ops, non-telemetry " +
		"lock acquisition, waits, sleeps, I/O) — directly or through any call " +
		"chain — in //mk:nonblocking functions (the telemetry publish/fan-out path)",
	Run: runBlockingpub,
}

func runBlockingpub(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isNonblocking(fd) {
				continue
			}
			node := pass.Facts.nodeOf(fd)
			if node == nil {
				continue
			}
			seen := map[token.Pos]bool{}
			for _, ev := range node.events {
				if ev.kind != primBlock {
					continue
				}
				seen[ev.pos] = true
				pass.Reportf(ev.pos,
					"%s in //mk:nonblocking %s: the publish/fan-out path must never block (backpressure contract: a slow subscriber costs a Dropped count, not a stalled publisher); use select-with-default or annotate //mk:allow blockingpub <reason>",
					ev.desc, fd.Name.Name)
			}
			for _, call := range node.calls {
				if seen[call.pos] {
					continue
				}
				if fact, ok := pass.Facts.Of(call.fn); ok && fact.Block != nil {
					pass.Reportf(call.pos,
						"call to %s in //mk:nonblocking %s reaches %s (call chain: %s); the publish/fan-out path must never block (backpressure contract: a slow subscriber costs a Dropped count, not a stalled publisher); drop instead of waiting or annotate //mk:allow blockingpub <reason>",
						shortFuncName(call.fn), fd.Name.Name, fact.Block[len(fact.Block)-1],
						chainString(shortFuncName(call.fn), fact.Block))
				}
			}
		}
	}
	return nil
}
