package analysis

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// FactsHeader is the first line of a serialized fact file. cmd/go treats the
// VetxOutput file as an opaque blob keyed by the tool fingerprint, so bumping
// this version string is enough to invalidate stale fact files from older
// mkvet builds (decoding tolerates unknown versions by returning an empty
// set — analysis then degrades to intra-procedural, never to a crash).
const FactsHeader = "mkvet-facts-v2"

// FuncFact is one function's interprocedural summary: for each invariant
// class, the call path from this function down to the primitive operation
// that establishes the fact (empty = the function is clean for that class).
// Paths are display strings — "emunet.grow" or "make(map) in olsr.rebuild" —
// ordered from the first callee to the primitive, so a diagnostic at a call
// site can print the whole offending chain without re-walking other packages.
type FuncFact struct {
	// Emit: the function may (transitively) call an Emit/reconfigure entry
	// point (the lockemit banned surface).
	Emit []string `json:"emit,omitempty"`
	// Alloc: the function may (transitively) execute allocating syntax
	// (the hotalloc primitive set).
	Alloc []string `json:"alloc,omitempty"`
	// Block: the function may (transitively) block — channel operations
	// outside select-with-default, non-telemetry lock acquisition, I/O.
	Block []string `json:"block,omitempty"`
	// Impure: the function may (transitively) violate parallel epoch-prep
	// purity — mutate shared engine state, draw randomness, schedule
	// timers, record trace spans, or emit.
	Impure []string `json:"impure,omitempty"`
	// Sink: the function may (transitively) feed data into an
	// order-sensitive deterministic output (telemetry publish, trace
	// record, NDJSON/hash/writer encoders).
	Sink []string `json:"sink,omitempty"`
	// MapOrdered: the function returns data whose order derives from an
	// unsorted map iteration.
	MapOrdered bool `json:"map_ordered,omitempty"`
}

func (f FuncFact) empty() bool {
	return f.Emit == nil && f.Alloc == nil && f.Block == nil &&
		f.Impure == nil && f.Sink == nil && !f.MapOrdered
}

// FactSet maps a function's full name (types.Func.FullName, e.g.
// "manetkit/internal/emunet.prep" or "(*manetkit/internal/core.Manager).Deploy")
// to its summary. A set serialized by one package is cumulative: it carries
// the package's own functions plus every fact imported from its
// dependencies, so a consumer only ever needs the fact files of its direct
// imports even when cmd/go withholds transitive ones.
type FactSet struct {
	Funcs map[string]FuncFact `json:"funcs"`
}

// NewFactSet returns an empty set.
func NewFactSet() *FactSet { return &FactSet{Funcs: map[string]FuncFact{}} }

// Lookup returns the summary for a full function name.
func (s *FactSet) Lookup(name string) (FuncFact, bool) {
	if s == nil || s.Funcs == nil {
		return FuncFact{}, false
	}
	f, ok := s.Funcs[name]
	return f, ok
}

// Merge folds other into s (other wins on collision; collisions only happen
// when two packages serialized the same dependency fact, which is identical
// by construction).
func (s *FactSet) Merge(other *FactSet) {
	if other == nil {
		return
	}
	for name, f := range other.Funcs {
		s.Funcs[name] = f
	}
}

// Len reports how many functions carry at least one fact.
func (s *FactSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.Funcs)
}

// EncodeFacts writes the set in the stable mkvet fact format: a version
// header line followed by canonical JSON (encoding/json emits map keys in
// sorted order, so equal sets serialize byte-identically — the property the
// vet cache and the round-trip tests rely on).
func EncodeFacts(w io.Writer, s *FactSet) error {
	if _, err := fmt.Fprintln(w, FactsHeader); err != nil {
		return err
	}
	if s == nil {
		s = NewFactSet()
	}
	data, err := json.Marshal(s)
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// DecodeFacts parses a fact file. Unknown or legacy headers (including the
// v1 stub files older mkvet builds wrote) yield an empty set, not an error:
// a missing summary only costs transitive precision.
func DecodeFacts(r io.Reader) (*FactSet, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		if err == io.EOF {
			return NewFactSet(), nil
		}
		return nil, err
	}
	if strings.TrimSpace(header) != FactsHeader {
		return NewFactSet(), nil
	}
	body, err := io.ReadAll(br)
	if err != nil {
		return nil, err
	}
	s := NewFactSet()
	if len(body) == 0 {
		return s, nil
	}
	if err := json.Unmarshal(body, s); err != nil {
		return nil, fmt.Errorf("facts body: %w", err)
	}
	if s.Funcs == nil {
		s.Funcs = map[string]FuncFact{}
	}
	return s, nil
}

// Names returns the fact keys in sorted order (test helper).
func (s *FactSet) Names() []string {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.Funcs))
	for n := range s.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
