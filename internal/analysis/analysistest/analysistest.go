// Package analysistest runs mkvet analyzers over fixture packages, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixture sources live
// under testdata/src/<pkg>, and every line expecting a diagnostic carries a
//
//	// want "regexp"
//
// comment (several per line allowed). The runner type-checks the fixture —
// stdlib imports resolve from $GOROOT source, sibling fixture packages from
// testdata/src — executes the analyzers, and fails the test on any
// unmatched diagnostic or unsatisfied expectation.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"manetkit/internal/analysis"
)

// Run analyses the fixture package at testdata/src/<pkg> (relative to dir)
// with the given analyzers and checks diagnostics against // want comments.
func Run(t *testing.T, dir, pkg string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	pkgDir := filepath.Join(dir, "src", pkg)
	files, err := parseDir(fset, pkgDir)
	if err != nil {
		t.Fatalf("parsing fixture %s: %v", pkg, err)
	}
	info := analysis.NewInfo()
	tpkg, err := typecheck(fset, pkg, filepath.Join(dir, "src"), files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", pkg, err)
	}
	// Seed with sibling-fixture facts, mimicking mkvet's PackageVetx flow:
	// the importer computed each dependency's summaries as it resolved them.
	imported := importedFixtureFacts(filepath.Join(dir, "src"), tpkg)
	diags, _, err := analysis.RunWithFacts(fset, files, tpkg, info, analyzers, imported)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", pkg, err)
	}
	checkWants(t, fset, files, diags)
}

// Facts returns the cumulative fact set a fixture package would export to
// importers (test helper for asserting on summaries directly).
func Facts(t *testing.T, dir, pkg string) *analysis.FactSet {
	t.Helper()
	fset, files, tpkg, info := Load(t, dir, pkg)
	imported := importedFixtureFacts(filepath.Join(dir, "src"), tpkg)
	return analysis.ComputeFacts(fset, files, tpkg, info, imported)
}

// Load parses and type-checks a fixture package and returns everything
// needed to drive analysis.Run directly (for tests that assert on raw
// diagnostics rather than // want comments).
func Load(t *testing.T, dir, pkg string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := parseDir(fset, filepath.Join(dir, "src", pkg))
	if err != nil {
		t.Fatalf("parsing fixture %s: %v", pkg, err)
	}
	info := analysis.NewInfo()
	tpkg, err := typecheck(fset, pkg, filepath.Join(dir, "src"), files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", pkg, err)
	}
	return fset, files, tpkg, info
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return fset.Position(files[i].Pos()).Filename < fset.Position(files[j].Pos()).Filename
	})
	return files, nil
}

// stdImporter type-checks stdlib packages from $GOROOT source; building it
// is expensive, so one instance (with its own FileSet) is shared by every
// fixture in the test binary.
var (
	stdOnce     sync.Once
	stdImp      types.Importer
	stdImpMu    sync.Mutex
	fixtureMu   sync.Mutex
	fixtureMemo = map[string]*types.Package{}
	// fixtureFacts memoizes each fixture package's exported fact set (keyed
	// like fixtureMemo, by absolute directory) so importing fixtures see
	// their dependencies' summaries the same way mkvet consumers see
	// PackageVetx fact files.
	fixtureFacts = map[string]*analysis.FactSet{}
)

func stdImporter() types.Importer {
	stdOnce.Do(func() {
		stdImp = importer.ForCompiler(token.NewFileSet(), "source", nil)
	})
	return stdImp
}

// fixtureImporter resolves sibling fixture packages from srcRoot first, then
// falls back to the stdlib source importer.
type fixtureImporter struct {
	fset    *token.FileSet
	srcRoot string
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(fi.srcRoot, path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		fixtureMu.Lock()
		p, ok := fixtureMemo[dir]
		fixtureMu.Unlock()
		if ok {
			return p, nil
		}
		files, err := parseDir(fi.fset, dir)
		if err != nil {
			return nil, err
		}
		info := analysis.NewInfo()
		// Type-checking recurses into this importer for nested fixture
		// imports, so fixtureMu must NOT be held across it.
		pkg, err := typecheck(fi.fset, path, fi.srcRoot, files, info)
		if err != nil {
			return nil, err
		}
		// Dependencies resolved recursively above, so their fact sets are
		// already memoized; this package's cumulative set builds on them.
		facts := analysis.ComputeFacts(fi.fset, files, pkg, info,
			importedFixtureFacts(fi.srcRoot, pkg))
		fixtureMu.Lock()
		fixtureMemo[dir] = pkg
		fixtureFacts[dir] = facts
		fixtureMu.Unlock()
		return pkg, nil
	}
	stdImpMu.Lock()
	defer stdImpMu.Unlock()
	return stdImporter().Import(path)
}

func typecheck(fset *token.FileSet, path, srcRoot string, files []*ast.File, info *types.Info) (*types.Package, error) {
	return typecheckLocked(fset, path, srcRoot, files, info)
}

// importedFixtureFacts merges the memoized fact sets of pkg's direct
// fixture imports (stdlib imports have none).
func importedFixtureFacts(srcRoot string, pkg *types.Package) *analysis.FactSet {
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	return importedFixtureFactsLocked(srcRoot, pkg)
}

func importedFixtureFactsLocked(srcRoot string, pkg *types.Package) *analysis.FactSet {
	merged := analysis.NewFactSet()
	for _, imp := range pkg.Imports() {
		if set, ok := fixtureFacts[filepath.Join(srcRoot, imp.Path())]; ok {
			merged.Merge(set)
		}
	}
	return merged
}

func typecheckLocked(fset *token.FileSet, path, srcRoot string, files []*ast.File, info *types.Info) (*types.Package, error) {
	conf := &types.Config{
		Importer: &fixtureImporter{fset: fset, srcRoot: srcRoot},
	}
	return conf.Check(path, fset, files, info)
}

// --- want-comment matching --------------------------------------------------

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type expectation struct {
	re      *regexp.Regexp
	raw     string
	line    int
	file    string
	matched bool
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		fileName := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := fset.Position(c.Pos()).Line
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", fileName, line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", fileName, line, pat, err)
					}
					wants = append(wants, &expectation{re: re, raw: pat, line: line, file: fileName})
				}
			}
		}
	}
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) || w.re.MatchString(d.Analyzer+": "+d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
