package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomicstats enforces all-or-nothing atomic discipline per struct field,
// the rule behind the Errors <= Handled <= Delivered stats snapshot
// invariant (core/protocol.go): once any access to a field goes through
// sync/atomic (atomic.AddUint64(&s.f, 1) style), every access must — a
// plain load can observe a torn or stale value and break snapshot ordering,
// and a plain store can lose concurrent increments entirely.
//
// Fields of the typed atomic kinds (atomic.Uint64, atomic.Pointer[T], ...)
// are safe by construction and need no checking; the analyzer exists for the
// pointer-based API, where the compiler cannot see the discipline.
var Atomicstats = &Analyzer{
	Name: "atomicstats",
	Doc: "a struct field accessed via sync/atomic functions anywhere in the " +
		"package must never be read or written non-atomically elsewhere " +
		"(preserves stats snapshot ordering such as Errors <= Handled <= Delivered)",
	Run: runAtomicstats,
}

// fieldKey identifies a struct field across the package.
type fieldKey struct {
	typ   *types.TypeName
	field string
}

func runAtomicstats(pass *Pass) error {
	atomicFields := map[fieldKey]bool{}
	inAtomicArg := map[*ast.SelectorExpr]bool{}

	// Pass 1: every &x.f handed to a sync/atomic function marks (type, f),
	// and the selector itself is remembered as a sanctioned access.
	forEachNode(pass.Files, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := funcOf(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || recvNamed(fn) != nil {
			return
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if key, ok := fieldKeyOf(pass, sel); ok {
				atomicFields[key] = true
				inAtomicArg[sel] = true
			}
		}
	})
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: any other access to a marked field is a violation.
	forEachNode(pass.Files, func(n ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || inAtomicArg[sel] {
			return
		}
		key, ok := fieldKeyOf(pass, sel)
		if !ok || !atomicFields[key] {
			return
		}
		pass.Reportf(sel.Pos(),
			"field %s.%s is accessed via sync/atomic elsewhere in this package; this plain access can tear or lose updates — use the atomic API here too (or migrate the field to a typed atomic)",
			key.typ.Name(), key.field)
	})
	return nil
}

func forEachNode(files []*ast.File, fn func(ast.Node)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn(n)
			return true
		})
	}
}

// fieldKeyOf resolves expr as a field selection on a named struct type.
func fieldKeyOf(pass *Pass, expr ast.Expr) (fieldKey, bool) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return fieldKey{}, false
	}
	sl, ok := pass.Info.Selections[sel]
	if !ok || sl.Kind() != types.FieldVal {
		return fieldKey{}, false
	}
	recv := namedOf(sl.Recv())
	if recv == nil {
		return fieldKey{}, false
	}
	return fieldKey{typ: recv.Obj(), field: sl.Obj().Name()}, true
}
