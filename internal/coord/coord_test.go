package coord

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"manetkit/internal/aodv"
	"manetkit/internal/core"
	"manetkit/internal/dymo"
	"manetkit/internal/mpr"
	"manetkit/internal/olsr"
	"manetkit/internal/testbed"
)

func members(t *testing.T, n int) (*testbed.Cluster, []*Member) {
	t.Helper()
	c, err := testbed.New(n, testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ms := make([]*Member, n)
	for i, node := range c.Nodes {
		ms[i] = &Member{Name: fmt.Sprintf("node-%d", i+1), Mgr: node.Mgr}
	}
	return c, ms
}

func TestRunRequiresApply(t *testing.T) {
	if _, err := Run(nil, Action{Name: "empty"}); err == nil {
		t.Fatal("action without Apply accepted")
	}
}

func TestCommitAcrossAllMembers(t *testing.T) {
	c, ms := members(t, 3)
	_ = c
	applied := map[string]bool{}
	res, err := Run(ms, Action{
		Name:  "deploy-probe",
		Apply: func(m *Member) error { applied[m.Name] = true; return nil },
	})
	if err != nil || !res.Committed {
		t.Fatalf("Run = %+v, %v", res, err)
	}
	if len(applied) != 3 {
		t.Fatalf("applied on %d members", len(applied))
	}
	if len(res.Transcript) != 3 {
		t.Fatalf("transcript = %+v", res.Transcript)
	}
}

func TestPrepareVetoAbortsBeforeAnyChange(t *testing.T) {
	c, ms := members(t, 3)
	_ = c
	applied := 0
	res, err := Run(ms, Action{
		Name: "vetoed",
		Prepare: func(m *Member) error {
			if m.Name == "node-2" {
				return errors.New("not enough battery")
			}
			return nil
		},
		Apply: func(m *Member) error { applied++; return nil },
	})
	if !errors.Is(err, ErrVetoed) {
		t.Fatalf("err = %v", err)
	}
	if applied != 0 || res.Committed {
		t.Fatalf("applied=%d committed=%v", applied, res.Committed)
	}
	// Transcript records the successful prepare on node-1 and the veto.
	if len(res.Transcript) != 2 || res.Transcript[1].Err == nil {
		t.Fatalf("transcript = %+v", res.Transcript)
	}
}

func TestApplyFailureRollsBackInReverse(t *testing.T) {
	c, ms := members(t, 3)
	_ = c
	var log []string
	res, err := Run(ms, Action{
		Name: "partial",
		Apply: func(m *Member) error {
			if m.Name == "node-3" {
				return errors.New("boom")
			}
			log = append(log, "apply:"+m.Name)
			return nil
		},
		Undo: func(m *Member) error {
			log = append(log, "undo:"+m.Name)
			return nil
		},
	})
	if !errors.Is(err, ErrRollback) || res.Committed {
		t.Fatalf("err=%v committed=%v", err, res.Committed)
	}
	want := []string{"apply:node-1", "apply:node-2", "undo:node-2", "undo:node-1"}
	if len(log) != len(want) {
		t.Fatalf("log = %v", log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestUndoFailureIsReported(t *testing.T) {
	c, ms := members(t, 2)
	_ = c
	undoErr := errors.New("stuck")
	_, err := Run(ms, Action{
		Name: "sticky",
		Apply: func(m *Member) error {
			if m.Name == "node-2" {
				return errors.New("boom")
			}
			return nil
		},
		Undo: func(m *Member) error { return undoErr },
	})
	if !errors.Is(err, ErrRollback) || !errors.Is(err, undoErr) {
		t.Fatalf("err = %v", err)
	}
}

// TestDistributedProtocolSwitch is the §7 scenario end to end: switch a
// whole running OLSR network to DYMO atomically; when one node vetoes,
// every node stays on OLSR.
func TestDistributedProtocolSwitch(t *testing.T) {
	c, ms := members(t, 3)
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	// Deploy OLSR everywhere.
	relays := make(map[string]*mpr.MPR)
	olsrs := make(map[string]*olsr.OLSR)
	for _, m := range ms {
		relay := mpr.New("", mpr.Config{HelloInterval: 2 * time.Second})
		o := olsr.New("", relay, olsr.Config{Clock: c.Clock})
		for _, u := range []*core.Protocol{relay.Protocol(), o.Protocol()} {
			if err := m.Mgr.Deploy(u); err != nil {
				t.Fatal(err)
			}
			if err := u.Start(); err != nil {
				t.Fatal(err)
			}
		}
		relays[m.Name], olsrs[m.Name] = relay, o
	}
	c.Run(10 * time.Second)

	switchAction := func(veto string) Action {
		return Action{
			Name: "olsr->dymo",
			Prepare: func(m *Member) error {
				if m.Name == veto {
					return errors.New("administratively refused")
				}
				return nil
			},
			Apply: func(m *Member) error {
				if err := m.Mgr.Undeploy("olsr"); err != nil {
					return err
				}
				if err := m.Mgr.Undeploy("mpr"); err != nil {
					return err
				}
				d := dymo.New("", dymo.Config{Clock: c.Clock})
				if err := m.Mgr.Deploy(d.Protocol()); err != nil {
					return err
				}
				return d.Protocol().Start()
			},
			Undo: func(m *Member) error {
				if err := m.Mgr.Undeploy("dymo"); err != nil {
					return err
				}
				relay := mpr.New("", mpr.Config{HelloInterval: 2 * time.Second})
				o := olsr.New("", relay, olsr.Config{Clock: c.Clock})
				for _, u := range []*core.Protocol{relay.Protocol(), o.Protocol()} {
					if err := m.Mgr.Deploy(u); err != nil {
						return err
					}
					if err := u.Start(); err != nil {
						return err
					}
				}
				return nil
			},
		}
	}

	// A vetoed switch leaves everyone on OLSR.
	if _, err := Run(ms, switchAction("node-2")); !errors.Is(err, ErrVetoed) {
		t.Fatalf("err = %v", err)
	}
	for _, m := range ms {
		if !contains(m.Mgr.Units(), "olsr") {
			t.Fatalf("%s lost OLSR after veto", m.Name)
		}
	}
	// The unvetoed switch commits everywhere.
	res, err := Run(ms, switchAction(""))
	if err != nil || !res.Committed {
		t.Fatalf("switch failed: %v", err)
	}
	for _, m := range ms {
		units := m.Mgr.Units()
		if contains(units, "olsr") || !contains(units, "dymo") {
			t.Fatalf("%s units after switch = %v", m.Name, units)
		}
	}
}

// TestDistributedSwitchRollbackViaIntegrityRule makes the apply phase fail
// on the last node (its integrity rule rejects a second reactive protocol)
// and checks the first nodes roll back.
func TestDistributedSwitchRollbackViaIntegrityRule(t *testing.T) {
	c, ms := members(t, 3)
	// Node 3 already runs AODV and enforces single-reactive.
	last := ms[2]
	if err := last.Mgr.AddRule(aodv.RuleSingleReactive("aodv", "dymo")); err != nil {
		t.Fatal(err)
	}
	a := aodv.New("aodv", nil, aodv.Config{Clock: c.Clock})
	if err := last.Mgr.Deploy(a.Protocol()); err != nil {
		t.Fatal(err)
	}
	act := Action{
		Name: "deploy-dymo",
		Apply: func(m *Member) error {
			d := dymo.New("dymo", dymo.Config{Clock: c.Clock})
			return m.Mgr.Deploy(d.Protocol())
		},
		Undo: func(m *Member) error { return m.Mgr.Undeploy("dymo") },
	}
	res, err := Run(ms, act)
	if !errors.Is(err, ErrRollback) || res.Committed {
		t.Fatalf("err=%v committed=%v", err, res.Committed)
	}
	for _, m := range ms[:2] {
		if contains(m.Mgr.Units(), "dymo") {
			t.Fatalf("%s kept dymo after rollback", m.Name)
		}
	}
}

func TestStepKindString(t *testing.T) {
	if StepPrepare.String() != "prepare" || StepApply.String() != "apply" ||
		StepUndo.String() != "undo" || StepKind(9).String() != "unknown" {
		t.Fatal("StepKind names wrong")
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
