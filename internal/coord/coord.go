// Package coord implements the coordinated distributed dynamic
// reconfiguration the paper lists as future work (§7: "coordinated
// distributed dynamic reconfiguration as well as merely per-node
// reconfiguration"). It runs a reconfiguration across a set of nodes over
// the management backplane (direct in-process access — the analogue of the
// testbed's Ethernet management network) with two-phase semantics:
//
//  1. Prepare: every member checks feasibility; any veto aborts the whole
//     reconfiguration before anything changes.
//  2. Apply: members are reconfigured in order; a failure rolls back the
//     members already reconfigured (in reverse order) via Undo.
//
// Per-node safety (quiescence of the protocols being touched) is provided
// by the framework itself — Manager/Protocol operations take the affected
// critical sections; the coordinator adds cross-node atomicity.
package coord

import (
	"errors"
	"fmt"

	"manetkit/internal/core"
)

// Member is one participating node.
type Member struct {
	// Name identifies the node in errors and the transcript.
	Name string
	// Mgr is the node's Framework Manager.
	Mgr *core.Manager
}

// Action is one distributed reconfiguration.
type Action struct {
	// Name identifies the action in errors and the transcript.
	Name string
	// Prepare (optional) checks feasibility without mutating; any error
	// vetoes the whole action.
	Prepare func(m *Member) error
	// Apply enacts the reconfiguration on one member.
	Apply func(m *Member) error
	// Undo (optional) reverts Apply during rollback.
	Undo func(m *Member) error
}

// StepKind classifies transcript entries.
type StepKind uint8

// Transcript step kinds.
const (
	StepPrepare StepKind = iota + 1
	StepApply
	StepUndo
)

// String implements fmt.Stringer.
func (k StepKind) String() string {
	switch k {
	case StepPrepare:
		return "prepare"
	case StepApply:
		return "apply"
	case StepUndo:
		return "undo"
	default:
		return "unknown"
	}
}

// Step is one transcript entry.
type Step struct {
	Kind   StepKind
	Member string
	Err    error
}

// Result reports a coordinated run: whether it committed, and the full
// step transcript (useful for the §7-style experimentation the paper
// anticipates).
type Result struct {
	Committed  bool
	Transcript []Step
}

// ErrVetoed reports that a member's Prepare refused the action.
var ErrVetoed = errors.New("coord: action vetoed in prepare phase")

// ErrRollback reports an Apply failure; the wrapped error chain includes
// the cause and any rollback failures.
var ErrRollback = errors.New("coord: action failed and was rolled back")

// Run executes the action across the members with two-phase semantics.
func Run(members []*Member, act Action) (Result, error) {
	var res Result
	if act.Apply == nil {
		return res, errors.New("coord: action needs an Apply")
	}
	// Phase 1: prepare.
	if act.Prepare != nil {
		for _, m := range members {
			err := act.Prepare(m)
			res.Transcript = append(res.Transcript, Step{Kind: StepPrepare, Member: m.Name, Err: err})
			if err != nil {
				return res, fmt.Errorf("%w: %s on %q: %v", ErrVetoed, act.Name, m.Name, err)
			}
		}
	}
	// Phase 2: apply with rollback.
	for i, m := range members {
		err := act.Apply(m)
		res.Transcript = append(res.Transcript, Step{Kind: StepApply, Member: m.Name, Err: err})
		if err == nil {
			continue
		}
		rollbackErrs := []error{fmt.Errorf("%s on %q: %w", act.Name, m.Name, err)}
		if act.Undo != nil {
			for j := i - 1; j >= 0; j-- {
				uerr := act.Undo(members[j])
				res.Transcript = append(res.Transcript, Step{Kind: StepUndo, Member: members[j].Name, Err: uerr})
				if uerr != nil {
					rollbackErrs = append(rollbackErrs,
						fmt.Errorf("undo on %q: %w", members[j].Name, uerr))
				}
			}
		}
		return res, fmt.Errorf("%w: %w", ErrRollback, errors.Join(rollbackErrs...))
	}
	res.Committed = true
	return res, nil
}
