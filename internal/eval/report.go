package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// ReportSchema versions the JSON layout; bump on incompatible change.
const ReportSchema = 1

// Band summarises one metric across a cell's seeds: the confidence band
// reported alongside every mean, as the comparison studies do. CI95 is the
// half-width of the normal-approximation 95% interval (0 for one seed).
type Band struct {
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	StdDev float64 `json:"stddev"`
	CI95   float64 `json:"ci95"`
}

func band(vals []float64) Band {
	if len(vals) == 0 {
		return Band{}
	}
	b := Band{Min: vals[0], Max: vals[0]}
	for _, v := range vals {
		b.Mean += v
		if v < b.Min {
			b.Min = v
		}
		if v > b.Max {
			b.Max = v
		}
	}
	n := float64(len(vals))
	b.Mean /= n
	if len(vals) > 1 {
		var ss float64
		for _, v := range vals {
			ss += (v - b.Mean) * (v - b.Mean)
		}
		b.StdDev = math.Sqrt(ss / (n - 1))
		b.CI95 = 1.96 * b.StdDev / math.Sqrt(n)
	}
	return b
}

// SeedResult is the outcome of one cell run under one seed. Every field is
// deterministic: counts and virtual-clock times only, no wall time.
type SeedResult struct {
	Seed int64 `json:"seed"`

	// Sent and Delivered count end-to-end application packets; PDR is
	// their ratio (the packet delivery ratio).
	Sent      int     `json:"sent"`
	Delivered int     `json:"delivered"`
	PDR       float64 `json:"pdr"`

	// End-to-end latency percentiles over delivered packets, in virtual
	// milliseconds, measured send-to-delivery (route discovery and
	// buffering included).
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyMaxMs float64 `json:"latency_max_ms"`

	// HopMean is the mean hop count of delivered data packets, from the
	// causal path reconstruction; PathDrops counts frame drops those
	// packets' paths absorbed (retransmitted hops, lost duplicates).
	HopMean   float64 `json:"hop_mean"`
	PathDrops int     `json:"path_drops"`

	// Transmission-side medium accounting by wire class. Overhead is the
	// normalised routing load: control transmissions per delivered data
	// packet. CtrlShare is the control fraction of transmitted bytes.
	CtrlTxFrames uint64  `json:"ctrl_tx_frames"`
	CtrlTxBytes  uint64  `json:"ctrl_tx_bytes"`
	DataTxFrames uint64  `json:"data_tx_frames"`
	DataTxBytes  uint64  `json:"data_tx_bytes"`
	Overhead     float64 `json:"overhead"`
	CtrlShare    float64 `json:"ctrl_share"`

	// TapFrames is how many control frames the live sequence watcher
	// decoded during the run (proof the invariant layer was engaged).
	TapFrames uint64 `json:"tap_frames"`
	// Violations counts snapshot-suite plus live-watcher breaches; a
	// healthy cell has zero, and the golden gate enforces that.
	Violations      int      `json:"violations"`
	ViolationDetail []string `json:"violation_detail,omitempty"`
}

// CellResult is one matrix cell: per-seed results plus confidence bands.
type CellResult struct {
	Proto   string `json:"proto"`
	Density string `json:"density"`
	Load    string `json:"load"`
	Nodes   int    `json:"nodes"`
	Flows   int    `json:"flows"`

	PerSeed []SeedResult `json:"per_seed"`

	PDR          Band `json:"pdr"`
	LatencyP50Ms Band `json:"latency_p50_ms"`
	LatencyP95Ms Band `json:"latency_p95_ms"`
	Overhead     Band `json:"overhead"`
	CtrlShare    Band `json:"ctrl_share"`
	HopMean      Band `json:"hop_mean"`

	// Violations totals invariant breaches across all seeds.
	Violations int `json:"violations"`

	// Profile summarises the cell's CPU/heap pprof captures when the
	// campaign ran with profiling enabled. Diagnostic only: wall-clock
	// derived, never gated on by Compare, absent from default runs.
	Profile *CellProfile `json:"profile,omitempty"`
}

// Key identifies the cell within a report.
func (c *CellResult) Key() string {
	return c.Proto + "/" + c.Density + "/" + c.Load
}

// aggregate fills the bands from PerSeed.
func (c *CellResult) aggregate() {
	pick := func(f func(SeedResult) float64) []float64 {
		out := make([]float64, len(c.PerSeed))
		for i, sr := range c.PerSeed {
			out[i] = f(sr)
		}
		return out
	}
	c.PDR = band(pick(func(s SeedResult) float64 { return s.PDR }))
	c.LatencyP50Ms = band(pick(func(s SeedResult) float64 { return s.LatencyP50Ms }))
	c.LatencyP95Ms = band(pick(func(s SeedResult) float64 { return s.LatencyP95Ms }))
	c.Overhead = band(pick(func(s SeedResult) float64 { return s.Overhead }))
	c.CtrlShare = band(pick(func(s SeedResult) float64 { return s.CtrlShare }))
	c.HopMean = band(pick(func(s SeedResult) float64 { return s.HopMean }))
	c.Violations = 0
	for _, sr := range c.PerSeed {
		c.Violations += sr.Violations
	}
}

// Report is the full campaign document. Cells are sorted by (proto,
// density, load), every value is deterministic, and encoding uses fixed
// field order — the same matrix always marshals to identical bytes.
type Report struct {
	Schema    int          `json:"schema"`
	Protos    []string     `json:"protos"`
	Densities []string     `json:"densities"`
	Loads     []string     `json:"loads"`
	Seeds     []int64      `json:"seeds"`
	Cells     []CellResult `json:"cells"`
}

// Cell returns the named cell, or nil.
func (r *Report) Cell(proto, density, load string) *CellResult {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Proto == proto && c.Density == density && c.Load == load {
			return c
		}
	}
	return nil
}

// WriteJSON emits the canonical indented encoding.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a report written by WriteJSON.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("eval: parsing report: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("eval: report schema %d, want %d (regenerate the golden)", r.Schema, ReportSchema)
	}
	return &r, nil
}

// LoadReport reads a report file.
func LoadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadReport(f)
}

// Tolerances is the drift policy the golden gate applies per cell. All
// campaign metrics are deterministic under the virtual clock, so an
// unchanged tree reproduces the golden exactly; the bands exist to let
// intentional protocol changes land without regenerating goldens for
// noise-scale drift, while real behaviour regressions fail loudly.
type Tolerances struct {
	// PDRAbs is the allowed absolute drift of a cell's mean delivery
	// ratio (PDR is already in [0,1]; relative bands would over-penalise
	// lossy cells).
	PDRAbs float64
	// OverheadRel is the allowed relative drift of the normalised routing
	// load.
	OverheadRel float64
	// LatencyRel is the allowed relative drift of the p95 latency.
	LatencyRel float64
}

// DefaultTolerances is the committed gate policy (see EXPERIMENTS.md).
func DefaultTolerances() Tolerances {
	return Tolerances{PDRAbs: 0.05, OverheadRel: 0.20, LatencyRel: 0.30}
}

// Compare gates got against golden: missing or extra cells, invariant
// violations, and any drift past the tolerance band are regressions. The
// returned strings are human-readable findings; empty means the gate
// passes.
func Compare(golden, got *Report, tol Tolerances) []string {
	var bad []string
	index := func(r *Report) map[string]*CellResult {
		m := make(map[string]*CellResult, len(r.Cells))
		for i := range r.Cells {
			m[r.Cells[i].Key()] = &r.Cells[i]
		}
		return m
	}
	gold, cur := index(golden), index(got)
	for _, gc := range golden.Cells {
		cc, ok := cur[gc.Key()]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: cell missing from this run", gc.Key()))
			continue
		}
		if cc.Violations > 0 {
			bad = append(bad, fmt.Sprintf("%s: %d invariant violation(s)", gc.Key(), cc.Violations))
		}
		if d := math.Abs(cc.PDR.Mean - gc.PDR.Mean); d > tol.PDRAbs {
			bad = append(bad, fmt.Sprintf("%s: pdr %.3f, golden %.3f (|Δ| %.3f > %.3f)",
				gc.Key(), cc.PDR.Mean, gc.PDR.Mean, d, tol.PDRAbs))
		}
		if d, lim := relDrift(gc.Overhead.Mean, cc.Overhead.Mean), tol.OverheadRel; d > lim {
			bad = append(bad, fmt.Sprintf("%s: overhead %.2f, golden %.2f (drift %.1f%% > %.0f%%)",
				gc.Key(), cc.Overhead.Mean, gc.Overhead.Mean, 100*d, 100*lim))
		}
		if d, lim := relDrift(gc.LatencyP95Ms.Mean, cc.LatencyP95Ms.Mean), tol.LatencyRel; d > lim {
			bad = append(bad, fmt.Sprintf("%s: latency p95 %.1fms, golden %.1fms (drift %.1f%% > %.0f%%)",
				gc.Key(), cc.LatencyP95Ms.Mean, gc.LatencyP95Ms.Mean, 100*d, 100*lim))
		}
	}
	for _, cc := range got.Cells {
		if _, ok := gold[cc.Key()]; !ok {
			bad = append(bad, fmt.Sprintf("%s: cell not in golden (regenerate the golden to admit it)", cc.Key()))
		}
	}
	return bad
}

// relDrift is |got-golden| relative to golden, falling back to absolute
// drift when the golden value is ~0 so a zero baseline still gates.
func relDrift(golden, got float64) float64 {
	d := math.Abs(got - golden)
	if math.Abs(golden) < 1e-9 {
		return d
	}
	return d / math.Abs(golden)
}

// WriteHuman renders the campaign as a table, one row per cell.
func (r *Report) WriteHuman(w io.Writer) {
	fmt.Fprintf(w, "%-6s %-7s %-6s %6s %7s %12s %12s %10s %8s %5s\n",
		"proto", "density", "load", "nodes", "pdr", "lat p50", "lat p95", "overhead", "hops", "viol")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-6s %-7s %-6s %6d %7s %12s %12s %10s %8.1f %5d\n",
			c.Proto, c.Density, c.Load, c.Nodes,
			fmt.Sprintf("%.3f", c.PDR.Mean),
			fmtBandMs(c.LatencyP50Ms), fmtBandMs(c.LatencyP95Ms),
			fmt.Sprintf("%.1f±%.1f", c.Overhead.Mean, c.Overhead.CI95),
			c.HopMean.Mean, c.Violations)
	}
	fmt.Fprintf(w, "%d cells × %d seeds; pdr = delivered/sent, overhead = control tx per delivered packet (±95%% CI)\n",
		len(r.Cells), len(r.Seeds))
}

func fmtBandMs(b Band) string {
	s := fmt.Sprintf("%.1f±%.1fms", b.Mean, b.CI95)
	return strings.ReplaceAll(s, "±0.0ms", "ms")
}
