package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/testbed"
)

// flow is one application conversation between two node indices.
type flow struct {
	src, dst int
}

// packetKey identifies one generated packet within a cell run.
type packetKey struct {
	flow, seq int
}

// generator drives one Load over a cluster: flow endpoints are drawn from
// the cell seed, emissions are scheduled on the virtual clock, and every
// packet's send and delivery instants are recorded so end-to-end latency
// is exact virtual time (discovery and buffering delays included). The
// payload carries the (flow, seq) identity, so delivery matching survives
// forwarding; the generator also mirrors the packet filter's per-source
// packet-ID counter, which is what lets each packet be joined to its
// causal path reconstruction (inspect.Correlate) afterwards.
type generator struct {
	c     *testbed.Cluster
	load  Load
	flows []flow

	sent    int
	sendAt  map[packetKey]time.Time
	recvAt  map[packetKey]time.Time
	keyOf   map[string]packetKey // correlation ID -> packet
	nextID  map[int]uint64       // per-source mirror of the netlink packet-ID counter
	order   []packetKey          // emission order, for deterministic iteration
	sendErr error                // first SendData failure, surfaced after the run
}

// newGenerator draws the flow endpoints for one cell. Endpoints are a pure
// function of (seed, load, cluster size): the same cell replays the same
// conversations.
func newGenerator(c *testbed.Cluster, load Load, seed int64) *generator {
	n := len(c.Nodes)
	rng := rand.New(rand.NewSource(seed))
	g := &generator{
		c: c, load: load,
		sendAt: make(map[packetKey]time.Time),
		recvAt: make(map[packetKey]time.Time),
		keyOf:  make(map[string]packetKey),
		nextID: make(map[int]uint64),
	}
	for f := 0; f < load.Flows; f++ {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		g.flows = append(g.flows, flow{src: src, dst: dst})
	}
	return g
}

// install hooks every node's local-delivery upcall. Deliveries run on the
// clock-driving goroutine (SingleThreaded model), so plain maps are safe.
func (g *generator) install() {
	for i, node := range g.c.Nodes {
		i := i
		node.Sys.Filter().OnDeliver(func(src mnet.Addr, payload []byte) {
			f, seq, ok := parsePayload(payload)
			if !ok || f >= len(g.flows) || g.flows[f].dst != i {
				return
			}
			key := packetKey{flow: f, seq: seq}
			if _, dup := g.recvAt[key]; dup {
				return // duplicated frame: first arrival defines the latency
			}
			if _, known := g.sendAt[key]; !known {
				return
			}
			g.recvAt[key] = g.c.Clock.Now()
		})
	}
}

// schedule books every emission on the virtual clock, relative to now.
// Bursts land back-to-back at the same instant; the clock executes them in
// scheduling order, which is fixed, so the whole workload is replayable.
func (g *generator) schedule() {
	for f := range g.flows {
		f := f
		for s := 0; s < g.load.Packets; s++ {
			s := s
			at := time.Duration(s/g.load.Burst) * g.load.Interval
			g.c.Clock.AfterFunc(at, func() { g.send(f, s) })
		}
	}
}

// send originates one packet and records its identity and send instant.
func (g *generator) send(f, s int) {
	fl := g.flows[f]
	src := g.c.Nodes[fl.src]
	dst := g.c.Nodes[fl.dst].Addr
	key := packetKey{flow: f, seq: s}

	// The packet filter assigns IDs sequentially per source node; the
	// generator is the only data source in a cell, so mirroring the count
	// reproduces the correlation ID each hop's trace spans will carry.
	g.nextID[fl.src]++
	g.keyOf[fmt.Sprintf("DATA:%s:%d", src.Addr, g.nextID[fl.src])] = key

	g.sendAt[key] = g.c.Clock.Now()
	g.order = append(g.order, key)
	if err := src.Sys.Filter().SendData(dst, encodePayload(f, s, g.load.PayloadBytes)); err != nil {
		delete(g.sendAt, key)
		if g.sendErr == nil {
			g.sendErr = fmt.Errorf("eval: flow %d packet %d: %w", f, s, err)
		}
		return
	}
	g.sent++
}

// delivered counts packets that reached their destination.
func (g *generator) delivered() int { return len(g.recvAt) }

// latencies returns the end-to-end virtual-clock latency of every
// delivered packet, sorted ascending.
func (g *generator) latencies() []time.Duration {
	out := make([]time.Duration, 0, len(g.recvAt))
	for _, key := range g.order {
		recv, ok := g.recvAt[key]
		if !ok {
			continue
		}
		out = append(out, recv.Sub(g.sendAt[key]))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// encodePayload stamps the (flow, seq) identity and pads to size bytes.
func encodePayload(f, s, size int) []byte {
	b := []byte(fmt.Sprintf("ev:%d:%d|", f, s))
	for len(b) < size {
		b = append(b, 'x')
	}
	return b
}

// parsePayload recovers the (flow, seq) identity from a delivered payload.
func parsePayload(b []byte) (f, s int, ok bool) {
	if len(b) < 3 || b[0] != 'e' || b[1] != 'v' || b[2] != ':' {
		return 0, 0, false
	}
	i := 3
	f, i, ok = parseInt(b, i, ':')
	if !ok {
		return 0, 0, false
	}
	s, _, ok = parseInt(b, i, '|')
	if !ok {
		return 0, 0, false
	}
	return f, s, true
}

func parseInt(b []byte, i int, stop byte) (v, next int, ok bool) {
	start := i
	for i < len(b) && b[i] != stop {
		if b[i] < '0' || b[i] > '9' {
			return 0, 0, false
		}
		v = v*10 + int(b[i]-'0')
		i++
	}
	if i == start || i == len(b) {
		return 0, 0, false
	}
	return v, i + 1, true
}
