package eval

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"manetkit/internal/prof"
)

// TestCampaignCellProfiling runs one real cell under the profiler and
// checks the whole chain: pprof files on disk, parseable, top tables in
// the report, and a JSON roundtrip that keeps the profile block.
func TestCampaignCellProfiling(t *testing.T) {
	if testing.Short() {
		t.Skip("profiled campaign cell; skipped in -short")
	}
	dir := t.TempDir()
	cfg := Config{
		Protos:     []string{"aodv"},
		Densities:  []string{"sparse"},
		Loads:      []string{"cbr"},
		Seeds:      []int64{1},
		ProfileDir: dir,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if len(rep.Cells) != 1 {
		t.Fatalf("want 1 cell, got %d", len(rep.Cells))
	}
	p := rep.Cells[0].Profile
	if p == nil {
		t.Fatal("profiled run produced no CellProfile")
	}
	if p.CPUFile != filepath.Join(dir, "aodv_sparse_cbr.cpu.pb.gz") {
		t.Errorf("unexpected cpu path %q", p.CPUFile)
	}
	var heap *prof.Profile
	for _, f := range []string{p.CPUFile, p.HeapFile} {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("profile artifact missing: %v", err)
		}
		parsed, err := prof.Parse(data)
		if err != nil {
			t.Fatalf("artifact %s unparseable: %v", f, err)
		}
		if f == p.HeapFile {
			heap = parsed
		}
	}
	// The cell's allocations are dead by dump time, so in-use may be zero;
	// the cumulative alloc_space dimension must show the run happened.
	var allocTotal int64
	for i, st := range heap.SampleTypes {
		if st.Type == "alloc_space" {
			allocTotal = heap.Total(i)
		}
	}
	if allocTotal <= 0 {
		t.Errorf("heap artifact shows no allocations (types %+v)", heap.SampleTypes)
	}
	if p.HeapInuseBytes < 0 {
		t.Errorf("negative heap in-use %d", p.HeapInuseBytes)
	}
	if len(p.TopCPU) == 0 {
		// A fast machine can finish the cell between 10ms CPU samples;
		// the totals must still be consistent.
		t.Logf("no CPU samples landed (cell ran %dns of profiled CPU)", p.CPUTotalNs)
	}
	for _, s := range append(append([]prof.Symbol{}, p.TopCPU...), p.TopHeap...) {
		if s.Name == "" || s.Flat <= 0 || s.Share <= 0 || s.Share > 1 {
			t.Errorf("degenerate symbol in report: %+v", s)
		}
	}

	// The profile block survives the report encoding.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.Cells[0].Profile == nil {
		t.Fatal("profile block lost in JSON roundtrip")
	}
	if back.Cells[0].Profile.HeapInuseBytes != p.HeapInuseBytes {
		t.Errorf("profile mutated across roundtrip")
	}
}

// TestDefaultRunsCarryNoProfile: without -profile the field is absent,
// keeping golden reports byte-stable.
func TestDefaultRunsCarryNoProfile(t *testing.T) {
	rep, err := Run(Config{
		Protos: []string{"aodv"}, Densities: []string{"sparse"},
		Loads: []string{"cbr"}, Seeds: []int64{1},
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"profile"`)) {
		t.Fatal("unprofiled report leaked a profile block")
	}
}
