package eval

// The campaign golden gate: the full default matrix runs against the
// committed golden report, and any cell whose PDR, overhead or p95 latency
// drifts past the tolerance policy — or that breaks a routing invariant —
// fails. Every metric is deterministic under the virtual clock, so an
// unchanged tree reproduces the golden exactly; the tolerances only give
// intentional protocol changes room to land without noise churn.
//
// When a change legitimately alters network behaviour, regenerate with
//
//	MANETKIT_UPDATE_GOLDEN=1 go test ./internal/eval -run TestCampaignGolden -update
//
// The env var is a second key on the trigger, matching the harness golden
// flow: -update alone fails loudly.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false,
	"rewrite testdata/golden_campaign.json from this run (requires MANETKIT_UPDATE_GOLDEN=1)")

const goldenPath = "testdata/golden_campaign.json"

func TestCampaignGolden(t *testing.T) {
	rep, err := Run(DefaultConfig())
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}

	if *updateGolden {
		if os.Getenv("MANETKIT_UPDATE_GOLDEN") == "" {
			t.Fatal("-update passed without MANETKIT_UPDATE_GOLDEN=1; refusing to rewrite the golden")
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("write: %v", err)
		}
		t.Logf("rewrote %s with %d cells", goldenPath, len(rep.Cells))
		return
	}

	golden, err := LoadReport(goldenPath)
	if err != nil {
		t.Fatalf("read %s: %v (regenerate with MANETKIT_UPDATE_GOLDEN=1 go test ./internal/eval -run TestCampaignGolden -update)", goldenPath, err)
	}
	for _, finding := range Compare(golden, rep, DefaultTolerances()) {
		t.Errorf("REGRESSION: %s", finding)
	}
	if t.Failed() {
		t.Logf("network behaviour drifted past tolerance; if intentional, regenerate with " +
			"MANETKIT_UPDATE_GOLDEN=1 go test ./internal/eval -run TestCampaignGolden -update")
	}
}

// TestGoldenMatchesDefaultMatrix keeps the committed golden in lockstep
// with the default matrix shape: adding an axis value without regenerating
// the golden must fail here, not silently pass the tolerance gate.
func TestGoldenMatchesDefaultMatrix(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	golden, err := LoadReport(goldenPath)
	if err != nil {
		t.Fatalf("read %s: %v", goldenPath, err)
	}
	cfg := DefaultConfig()
	want := len(cfg.Protos) * len(cfg.Densities) * len(cfg.Loads)
	if len(golden.Cells) != want {
		t.Fatalf("golden has %d cells, default matrix has %d; regenerate the golden", len(golden.Cells), want)
	}
	for _, c := range golden.Cells {
		if len(c.PerSeed) != len(cfg.Seeds) {
			t.Fatalf("golden cell %s has %d seeds, default config has %d", c.Key(), len(c.PerSeed), len(cfg.Seeds))
		}
	}
}
