package eval

// The packetbb fuzz targets ship with hand-written seeds; the campaign can
// do better, because its cells transmit real multi-protocol control
// traffic. CaptureControlCorpus harvests those frames, and the regen test
// below writes them into the fuzz targets' seed corpus in Go's corpus file
// format. Regeneration is env-gated like the goldens:
//
//	MANETKIT_UPDATE_CORPUS=1 go test ./internal/eval -run TestRegenerateFuzzCorpus
//
// The committed corpus files are exercised by every ordinary
// `go test ./internal/packetbb` run (seed corpus entries run in non-fuzz
// mode), so a stale corpus that no longer decodes fails fast.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"manetkit/internal/harness"
	"manetkit/internal/packetbb"
)

// corpusPerFamily bounds how many distinct packets each family contributes.
const corpusPerFamily = 6

func captureFamily(t *testing.T, proto string) [][]byte {
	t.Helper()
	density, err := DensityByName("sparse")
	if err != nil {
		t.Fatal(err)
	}
	load, err := LoadByName("cbr")
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := CaptureControlCorpus(proto, density, load, 1, corpusPerFamily)
	if err != nil {
		t.Fatalf("capture %s: %v", proto, err)
	}
	return corpus
}

// TestCaptureControlCorpus validates the harvesting machinery on every
// family: the capture is non-empty, deterministic, distinct, and every
// harvested body is a decodable PacketBB packet carrying messages.
func TestCaptureControlCorpus(t *testing.T) {
	for _, proto := range harness.Families() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			corpus := captureFamily(t, proto)
			if len(corpus) == 0 {
				t.Fatal("campaign cell transmitted no control frames")
			}
			seen := make(map[string]bool)
			for i, body := range corpus {
				if seen[string(body)] {
					t.Errorf("corpus[%d] duplicates an earlier entry", i)
				}
				seen[string(body)] = true
				pkt, err := packetbb.DecodePacket(body)
				if err != nil {
					t.Errorf("corpus[%d] does not decode: %v", i, err)
					continue
				}
				if len(pkt.Messages) == 0 {
					t.Errorf("corpus[%d] decodes to a message-less packet", i)
				}
			}
			again := captureFamily(t, proto)
			if len(again) != len(corpus) {
				t.Fatalf("capture not deterministic: %d then %d entries", len(corpus), len(again))
			}
			for i := range corpus {
				if !bytes.Equal(corpus[i], again[i]) {
					t.Fatalf("capture not deterministic at entry %d", i)
				}
			}
		})
	}
}

// TestRegenerateFuzzCorpus rewrites the campaign-sourced seed corpus of the
// packetbb fuzz targets. Gated on MANETKIT_UPDATE_CORPUS=1; a plain test
// run never touches the tree.
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("MANETKIT_UPDATE_CORPUS") == "" {
		t.Skip("set MANETKIT_UPDATE_CORPUS=1 to rewrite the packetbb fuzz seed corpus")
	}
	pktDir := filepath.Join("..", "packetbb", "testdata", "fuzz", "FuzzDecodePacket")
	msgDir := filepath.Join("..", "packetbb", "testdata", "fuzz", "FuzzDecodeMessage")

	// Replace, don't accumulate: stale campaign files from a previous matrix
	// would linger forever otherwise.
	for _, dir := range []string{pktDir, msgDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		old, err := filepath.Glob(filepath.Join(dir, "campaign-*"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range old {
			if err := os.Remove(f); err != nil {
				t.Fatal(err)
			}
		}
	}

	writeEntry := func(dir, name string, body []byte) {
		t.Helper()
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", body)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var packets, messages int
	seenMsg := make(map[string]bool)
	for _, proto := range harness.Families() {
		for i, body := range captureFamily(t, proto) {
			writeEntry(pktDir, fmt.Sprintf("campaign-%s-%02d", proto, i), body)
			packets++

			// Derive the message-level corpus from the same traffic: each
			// message re-encoded standalone is exactly what FuzzDecodeMessage
			// parses.
			pkt, err := packetbb.DecodePacket(body)
			if err != nil {
				t.Fatalf("campaign %s packet %d does not decode: %v", proto, i, err)
			}
			for m := range pkt.Messages {
				enc, err := packetbb.EncodeMessage(&pkt.Messages[m])
				if err != nil {
					t.Fatalf("campaign %s packet %d message %d does not re-encode: %v", proto, i, m, err)
				}
				if seenMsg[string(enc)] {
					continue
				}
				seenMsg[string(enc)] = true
				writeEntry(msgDir, fmt.Sprintf("campaign-%s-%02d-%d", proto, i, m), enc)
				messages++
			}
		}
	}
	t.Logf("wrote %d packet and %d message corpus entries", packets, messages)
}
