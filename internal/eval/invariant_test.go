package eval

// Every campaign cell runs with the invariant layer live: the sequence
// watcher taps every delivered control frame during the run, and the
// snapshot suite audits routing state after cooldown. These tests prove
// the checkers are engaged (not merely wired and silent) and hold on a
// seed outside the golden matrix, for every protocol family.

import (
	"strings"
	"testing"

	"manetkit/internal/harness"
	"manetkit/internal/invariant"
)

func TestInvariantsEngagedPerCell(t *testing.T) {
	density, err := DensityByName("medium")
	if err != nil {
		t.Fatal(err)
	}
	load, err := LoadByName("cbr")
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range harness.Families() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			// Seed 3 is deliberately outside the default golden seeds {1, 2}:
			// the invariants must hold for any realisation, not the blessed ones.
			sr, err := RunCell(proto, density, load, 3, DefaultWarmup, DefaultCooldown)
			if err != nil {
				t.Fatalf("cell: %v", err)
			}
			if sr.Sent == 0 {
				t.Error("generator sent no packets")
			}
			if sr.Delivered == 0 {
				t.Error("no packet delivered; the cell measured a dead network")
			}
			if sr.CtrlTxFrames == 0 {
				t.Error("no control frames transmitted; protocol not running")
			}
			// TapFrames counts control frames the live watcher decoded during
			// the cell. Zero would mean the invariant layer was not engaged
			// while traffic flowed — exactly the regression this test exists
			// to catch.
			if sr.TapFrames == 0 {
				t.Error("sequence watcher observed no frames during the campaign cell")
			}
			if sr.Violations != 0 {
				t.Errorf("%d invariant violation(s):\n  %s",
					sr.Violations, strings.Join(sr.ViolationDetail, "\n  "))
			}
		})
	}
}

// TestInvariantSuiteNonEmpty guards the trivially-green failure mode: if
// the default suite ever became empty, every cell would report zero
// violations while checking nothing.
func TestInvariantSuiteNonEmpty(t *testing.T) {
	if n := len(invariant.DefaultSuite().Checkers()); n == 0 {
		t.Fatal("invariant.DefaultSuite() has no checkers")
	}
}
