package eval

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestLoadWindow(t *testing.T) {
	cases := []struct {
		name string
		load Load
		want time.Duration
	}{
		{"cbr 8 packets every 2s", Load{Packets: 8, Burst: 1, Interval: 2 * time.Second}, 14 * time.Second},
		{"bursts of 4", Load{Packets: 12, Burst: 4, Interval: 4 * time.Second}, 8 * time.Second},
		{"partial final burst", Load{Packets: 10, Burst: 4, Interval: 4 * time.Second}, 8 * time.Second},
		{"single packet", Load{Packets: 1, Burst: 1, Interval: time.Second}, 0},
		{"empty", Load{}, 0},
	}
	for _, tc := range cases {
		if got := tc.load.Window(); got != tc.want {
			t.Errorf("%s: Window() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPercentile(t *testing.T) {
	sorted := []time.Duration{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50}, {0.95, 100}, {0.0, 10}, {1.0, 100},
	}
	for _, tc := range cases {
		if got := percentile(sorted, tc.q); got != tc.want {
			t.Errorf("percentile(q=%.2f) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
	one := []time.Duration{42}
	if got := percentile(one, 0.95); got != 42 {
		t.Errorf("percentile(single, 0.95) = %v, want 42", got)
	}
}

func TestBand(t *testing.T) {
	b := band([]float64{2, 4, 6})
	if b.Mean != 4 || b.Min != 2 || b.Max != 6 {
		t.Fatalf("band = %+v", b)
	}
	if math.Abs(b.StdDev-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2 (sample stddev)", b.StdDev)
	}
	if want := 1.96 * 2 / math.Sqrt(3); math.Abs(b.CI95-want) > 1e-12 {
		t.Errorf("ci95 = %v, want %v", b.CI95, want)
	}
	single := band([]float64{7})
	if single.Mean != 7 || single.StdDev != 0 || single.CI95 != 0 {
		t.Errorf("single-value band = %+v, want degenerate", single)
	}
	if z := band(nil); z != (Band{}) {
		t.Errorf("band(nil) = %+v, want zero", z)
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	for _, tc := range []struct{ f, s, size int }{
		{0, 0, 16}, {2, 7, 64}, {12, 345, 192}, {1, 1, 4},
	} {
		b := encodePayload(tc.f, tc.s, tc.size)
		if tc.size > len(b) {
			t.Errorf("encodePayload(%d,%d,%d) only %d bytes", tc.f, tc.s, tc.size, len(b))
		}
		f, s, ok := parsePayload(b)
		if !ok || f != tc.f || s != tc.s {
			t.Errorf("round trip (%d,%d) -> (%d,%d,%v)", tc.f, tc.s, f, s, ok)
		}
	}
	for _, bad := range [][]byte{nil, []byte("x"), []byte("ev:"), []byte("ev:9"), []byte("ev:a:1|"), []byte("ev:1:b|"), []byte("ev:1:2")} {
		if _, _, ok := parsePayload(bad); ok {
			t.Errorf("parsePayload(%q) accepted garbage", bad)
		}
	}
}

func TestMatrixLookups(t *testing.T) {
	if _, err := DensityByName("nope"); err == nil {
		t.Error("unknown density accepted")
	}
	if _, err := LoadByName("nope"); err == nil {
		t.Error("unknown load accepted")
	}
	for _, d := range Densities() {
		got, err := DensityByName(d.Name)
		if err != nil || got.Nodes != d.Nodes {
			t.Errorf("DensityByName(%q) = %+v, %v", d.Name, got, err)
		}
	}
	for _, l := range Loads() {
		if _, err := LoadByName(l.Name); err != nil {
			t.Errorf("LoadByName(%q): %v", l.Name, err)
		}
	}
}

func TestRunRejectsUnknownAxes(t *testing.T) {
	for _, cfg := range []Config{
		{Protos: []string{"ospf"}},
		{Densities: []string{"urban"}},
		{Loads: []string{"elephant"}},
	} {
		if _, err := Run(cfg); err == nil {
			t.Errorf("Run(%+v) accepted unknown axis value", cfg)
		}
	}
}

// syntheticCell builds a healthy one-seed cell for Compare tests.
func syntheticCell(proto string, pdr, overhead, p95 float64) CellResult {
	c := CellResult{
		Proto: proto, Density: "sparse", Load: "cbr", Nodes: 8, Flows: 2,
		PerSeed: []SeedResult{{
			Seed: 1, Sent: 16, Delivered: int(16 * pdr), PDR: pdr,
			LatencyP95Ms: p95, Overhead: overhead,
		}},
	}
	c.aggregate()
	return c
}

func syntheticReport(cells ...CellResult) *Report {
	return &Report{
		Schema: ReportSchema,
		Protos: []string{"aodv"}, Densities: []string{"sparse"},
		Loads: []string{"cbr"}, Seeds: []int64{1}, Cells: cells,
	}
}

func TestCompareGates(t *testing.T) {
	tol := DefaultTolerances()
	golden := syntheticReport(syntheticCell("aodv", 0.90, 20, 1000))

	cases := []struct {
		name string
		got  *Report
		want string // substring of the expected finding; "" = clean
	}{
		{"identical", syntheticReport(syntheticCell("aodv", 0.90, 20, 1000)), ""},
		{"within tolerance", syntheticReport(syntheticCell("aodv", 0.87, 22, 1100)), ""},
		{"pdr collapse", syntheticReport(syntheticCell("aodv", 0.70, 20, 1000)), "pdr"},
		{"overhead blowup", syntheticReport(syntheticCell("aodv", 0.90, 30, 1000)), "overhead"},
		{"latency blowup", syntheticReport(syntheticCell("aodv", 0.90, 20, 1500)), "latency"},
		{"missing cell", syntheticReport(), "missing"},
		{"extra cell", syntheticReport(
			syntheticCell("aodv", 0.90, 20, 1000),
			syntheticCell("dymo", 0.90, 20, 1000)), "not in golden"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			findings := Compare(golden, tc.got, tol)
			if tc.want == "" {
				if len(findings) != 0 {
					t.Fatalf("clean comparison flagged: %v", findings)
				}
				return
			}
			if len(findings) == 0 {
				t.Fatalf("regression not flagged (want finding containing %q)", tc.want)
			}
			for _, f := range findings {
				if strings.Contains(f, tc.want) {
					return
				}
			}
			t.Fatalf("no finding contains %q: %v", tc.want, findings)
		})
	}
}

// TestCompareFlagsViolations: a cell that picks up invariant violations is
// a regression even if every metric is inside its band.
func TestCompareFlagsViolations(t *testing.T) {
	golden := syntheticReport(syntheticCell("aodv", 0.90, 20, 1000))
	got := syntheticReport(syntheticCell("aodv", 0.90, 20, 1000))
	got.Cells[0].PerSeed[0].Violations = 2
	got.Cells[0].aggregate()
	findings := Compare(golden, got, DefaultTolerances())
	if len(findings) != 1 || !strings.Contains(findings[0], "violation") {
		t.Fatalf("violations not gated: %v", findings)
	}
}

func TestRelDrift(t *testing.T) {
	if d := relDrift(10, 12); math.Abs(d-0.2) > 1e-12 {
		t.Errorf("relDrift(10,12) = %v, want 0.2", d)
	}
	// Zero golden falls back to absolute drift so a silent-baseline cell
	// still gates.
	if d := relDrift(0, 0.5); d != 0.5 {
		t.Errorf("relDrift(0,0.5) = %v, want 0.5", d)
	}
}
