package eval

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"manetkit/internal/emunet"
	"manetkit/internal/harness"
	"manetkit/internal/inspect"
	"manetkit/internal/invariant"
	"manetkit/internal/metrics"
	"manetkit/internal/system"
	"manetkit/internal/testbed"
	"manetkit/internal/trace"
)

// Campaign phase defaults. Warmup gives the proactive protocols time to
// converge (HELLO 2 s, TC 5 s: three TC rounds reach a diameter-7 chain);
// cooldown outlasts the 5 s route hold and packet-buffer timeouts so every
// in-flight delivery and expiry lands before the cell is measured.
const (
	DefaultWarmup   = 15 * time.Second
	DefaultCooldown = 12 * time.Second

	// campaignTraceCap sizes the per-cell span ring: large enough that no
	// span of a cell run is evicted, so path reconstruction sees every hop.
	campaignTraceCap = 1 << 17

	// LinkLoss is the per-frame loss probability of every campaign link.
	// The comparison studies run over radios that drop frames; a lossless
	// medium would pin PDR at 1.0 and measure nothing. 2% per hop compounds
	// to a realistic multi-hop delivery problem (≈13% raw loss over 7 hops)
	// that the protocols' retransmission and rediscovery machinery must
	// recover, and it makes the seed axis meaningful: each seed draws a
	// different loss realisation, which is what the confidence bands span.
	LinkLoss = 0.02
)

// linkQuality is the campaign medium: the default healthy 802.11b/g link
// with LinkLoss applied.
func linkQuality() emunet.Quality {
	q := emunet.DefaultQuality()
	q.Loss = LinkLoss
	return q
}

// Config declares one campaign: the matrix axes and the seeds each cell is
// replicated over.
type Config struct {
	// Protos are protocol families (harness.Families()); default all four.
	Protos []string
	// Densities name topology regimes (Densities()); default all three.
	Densities []string
	// Loads name traffic profiles (Loads()); default both.
	Loads []string
	// Seeds replicate every cell; confidence bands span them (default 1,2).
	Seeds []int64
	// Warmup and Cooldown bound the traffic window (defaults above).
	Warmup   time.Duration
	Cooldown time.Duration
	// ProfileDir, when non-empty, captures per-cell CPU and heap pprof
	// profiles under it and embeds top-N hot symbols in each cell's
	// result (see CellProfile). Profiles are wall-clock artifacts; the
	// behavioural metrics stay deterministic regardless.
	ProfileDir string
	// ProfileTopN bounds the hot-symbol tables (default
	// DefaultProfileTopN).
	ProfileTopN int
}

// DefaultConfig is the standing matrix CI sweeps: 4 families × 3 densities
// × 2 loads × 2 seeds = 48 cell runs.
func DefaultConfig() Config {
	return Config{
		Protos:    harness.Families(),
		Densities: []string{"sparse", "medium", "dense"},
		Loads:     []string{"cbr", "burst"},
		Seeds:     []int64{1, 2},
	}
}

func (cfg *Config) fill() error {
	if len(cfg.Protos) == 0 {
		cfg.Protos = harness.Families()
	}
	if len(cfg.Densities) == 0 {
		cfg.Densities = []string{"sparse", "medium", "dense"}
	}
	if len(cfg.Loads) == 0 {
		cfg.Loads = []string{"cbr", "burst"}
	}
	if len(cfg.Seeds) == 0 {
		cfg.Seeds = []int64{1, 2}
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = DefaultWarmup
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = DefaultCooldown
	}
	if cfg.ProfileTopN == 0 {
		cfg.ProfileTopN = DefaultProfileTopN
	}
	known := make(map[string]bool)
	for _, f := range harness.Families() {
		known[f] = true
	}
	for _, p := range cfg.Protos {
		if !known[p] {
			return fmt.Errorf("eval: unknown protocol family %q", p)
		}
	}
	for _, d := range cfg.Densities {
		if _, err := DensityByName(d); err != nil {
			return err
		}
	}
	for _, l := range cfg.Loads {
		if _, err := LoadByName(l); err != nil {
			return err
		}
	}
	return nil
}

// Run executes every cell of the matrix over every seed and aggregates the
// per-seed results into confidence bands. Cells are emitted in sorted
// (proto, density, load) order regardless of the order the axes were
// given, so the report is canonical.
func Run(cfg Config) (*Report, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	rep := &Report{
		Schema:    ReportSchema,
		Protos:    append([]string(nil), cfg.Protos...),
		Densities: append([]string(nil), cfg.Densities...),
		Loads:     append([]string(nil), cfg.Loads...),
		Seeds:     append([]int64(nil), cfg.Seeds...),
	}
	sort.Strings(rep.Protos)
	sort.Strings(rep.Densities)
	sort.Strings(rep.Loads)
	for _, proto := range rep.Protos {
		for _, dname := range rep.Densities {
			density, err := DensityByName(dname)
			if err != nil {
				return nil, err
			}
			for _, lname := range rep.Loads {
				load, err := LoadByName(lname)
				if err != nil {
					return nil, err
				}
				cell := CellResult{
					Proto: proto, Density: dname, Load: lname,
					Nodes: density.Nodes, Flows: load.Flows,
				}
				runSeeds := func() error {
					for _, seed := range cfg.Seeds {
						sr, err := RunCell(proto, density, load, seed, cfg.Warmup, cfg.Cooldown)
						if err != nil {
							return fmt.Errorf("eval: cell %s/%s/%s seed %d: %w",
								proto, dname, lname, seed, err)
						}
						cell.PerSeed = append(cell.PerSeed, sr)
					}
					return nil
				}
				if cfg.ProfileDir == "" {
					if err := runSeeds(); err != nil {
						return nil, err
					}
				} else {
					base := proto + "_" + dname + "_" + lname
					p, err := profileCell(cfg.ProfileDir, base, cfg.ProfileTopN, runSeeds)
					if err != nil {
						return nil, err
					}
					cell.Profile = p
				}
				cell.aggregate()
				rep.Cells = append(rep.Cells, cell)
			}
		}
	}
	return rep, nil
}

// RunCell executes one (protocol, density, load) cell for one seed: build
// the topology, deploy the family on every node, converge, drive the
// traffic profile, then measure. The result is a pure function of the
// arguments — the determinism regression test pins this.
func RunCell(proto string, density Density, load Load, seed int64, warmup, cooldown time.Duration) (SeedResult, error) {
	return runCell(proto, density, load, seed, warmup, cooldown, nil)
}

// CaptureControlCorpus runs one cell and returns the distinct PacketBB
// bodies of the control frames it transmitted, in first-transmission
// order — real campaign traffic, harvested as seed inputs for the packetbb
// fuzz targets. max bounds the corpus size (<= 0: unbounded).
func CaptureControlCorpus(proto string, density Density, load Load, seed int64, max int) ([][]byte, error) {
	seen := make(map[string]bool)
	var corpus [][]byte
	_, err := runCell(proto, density, load, seed, DefaultWarmup, DefaultCooldown, func(f emunet.Frame) {
		body, ok := system.ControlBody(f.Payload)
		if !ok || seen[string(body)] {
			return
		}
		if max > 0 && len(corpus) >= max {
			return
		}
		seen[string(body)] = true
		corpus = append(corpus, append([]byte(nil), body...))
	})
	return corpus, err
}

// runCell is RunCell plus an optional transmission observer chained onto
// the campaign's own accounting tap.
func runCell(proto string, density Density, load Load, seed int64, warmup, cooldown time.Duration, txObs func(emunet.Frame)) (SeedResult, error) {
	reg := metrics.NewRegistry()
	tr := trace.New(testbed.Epoch, campaignTraceCap)
	c, err := testbed.New(density.Nodes, testbed.Options{
		Seed: seed, Metrics: reg, Tracer: tr, LinkQuality: linkQuality(),
	})
	if err != nil {
		return SeedResult{}, err
	}
	defer c.Close()
	if err := density.Build(c); err != nil {
		return SeedResult{}, err
	}

	fams := make([]*harness.FamilyNode, len(c.Nodes))
	for i, node := range c.Nodes {
		if fams[i], err = harness.DeployFamily(c, node, proto); err != nil {
			return SeedResult{}, err
		}
	}

	// Live invariant checking runs for the whole cell, not only chaos
	// scenarios: the sequence watcher decodes every delivered control
	// frame, and the snapshot suite audits routing state after cooldown.
	watch := invariant.NewSeqWatcher()
	c.Net.SetTap(watch.Observe)

	// Control-overhead accounting at the transmission side (the convention
	// of the comparison literature: every control transmission costs the
	// medium, whether or not it is delivered).
	res := SeedResult{Seed: seed}
	c.Net.SetTxTap(func(f emunet.Frame) {
		switch {
		case system.IsControlFrame(f.Payload):
			res.CtrlTxFrames++
			res.CtrlTxBytes += uint64(len(f.Payload))
		case system.IsDataFrame(f.Payload):
			res.DataTxFrames++
			res.DataTxBytes += uint64(len(f.Payload))
		}
		if txObs != nil {
			txObs(f)
		}
	})

	c.Run(warmup)

	gen := newGenerator(c, load, seed)
	gen.install()
	gen.schedule()
	c.Run(load.Window() + cooldown)
	if gen.sendErr != nil {
		return SeedResult{}, gen.sendErr
	}

	res.Sent = gen.sent
	res.Delivered = gen.delivered()
	if res.Sent > 0 {
		res.PDR = float64(res.Delivered) / float64(res.Sent)
	}
	lats := gen.latencies()
	res.LatencyP50Ms = ms(percentile(lats, 0.50))
	res.LatencyP95Ms = ms(percentile(lats, 0.95))
	if n := len(lats); n > 0 {
		res.LatencyMaxMs = ms(lats[n-1])
	}
	if res.Delivered > 0 {
		res.Overhead = float64(res.CtrlTxFrames) / float64(res.Delivered)
	} else {
		res.Overhead = float64(res.CtrlTxFrames)
	}
	if total := res.CtrlTxBytes + res.DataTxBytes; total > 0 {
		res.CtrlShare = float64(res.CtrlTxBytes) / float64(total)
	}
	res.HopMean, res.PathDrops = pathStats(tr, gen)
	res.TapFrames = watch.Frames()

	violations := invariant.DefaultSuite().Run(harness.SnapshotFamilies(c, fams))
	violations = append(violations, watch.Violations()...)
	res.Violations = len(violations)
	for _, v := range violations {
		res.ViolationDetail = append(res.ViolationDetail, v.String())
	}
	return res, nil
}

// pathStats joins every delivered packet to its causal path reconstruction
// (inspect.Correlate over the cell's trace) and reports the mean hop count
// of delivered data packets plus the frame drops their paths absorbed.
// Reconstruction is cross-checked against the generator's own bookkeeping:
// only packets the generator saw delivered contribute.
func pathStats(tr *trace.Tracer, gen *generator) (hopMean float64, drops int) {
	paths := inspect.Correlate(tr.Spans())
	var hops, matched int
	for _, p := range paths {
		if !strings.HasPrefix(p.Corr, "DATA:") {
			continue
		}
		key, ok := gen.keyOf[p.Corr]
		if !ok {
			continue
		}
		drops += p.Drops
		if _, delivered := gen.recvAt[key]; !delivered {
			continue
		}
		hops += len(p.Hops)
		matched++
	}
	if matched > 0 {
		hopMean = float64(hops) / float64(matched)
	}
	return hopMean, drops
}

// percentile returns the q-quantile of sorted durations (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
