package eval

// The determinism regression: a campaign is a pure function of its config.
// Same seed, same cell ⇒ byte-identical JSON. This is what makes the
// committed golden meaningful — any nondeterminism smuggled into the stack
// (wall-clock reads, map-order dependence, unseeded randomness) breaks
// these tests before it can turn the golden gate flaky.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"runtime"
	"testing"
)

func smallConfig() Config {
	return Config{
		Protos:    []string{"aodv", "olsr"},
		Densities: []string{"sparse"},
		Loads:     []string{"cbr"},
		Seeds:     []int64{1, 2},
	}
}

func TestCampaignByteDeterminism(t *testing.T) {
	encode := func() []byte {
		t.Helper()
		rep, err := Run(smallConfig())
		if err != nil {
			t.Fatalf("campaign: %v", err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		return buf.Bytes()
	}
	first, second := encode(), encode()
	if !bytes.Equal(first, second) {
		t.Fatalf("same config, different reports:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestCampaignDeterminismAcrossGOMAXPROCS re-runs the campaign with the
// scheduler pinned to one CPU and compares against the parallel run. The
// sharded event core fans epoch prep across worker goroutines, so this is
// the gate that campaign metrics — delivery ratios, latency percentiles,
// violation strings — cannot depend on how many workers the host gave us.
func TestCampaignDeterminismAcrossGOMAXPROCS(t *testing.T) {
	encode := func() []byte {
		t.Helper()
		rep, err := Run(smallConfig())
		if err != nil {
			t.Fatalf("campaign: %v", err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		return buf.Bytes()
	}
	prev := runtime.GOMAXPROCS(1)
	serial := encode()
	runtime.GOMAXPROCS(prev)
	parallel := encode()
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("campaign diverged across GOMAXPROCS 1 vs %d:\n--- serial ---\n%s\n--- parallel ---\n%s",
			runtime.GOMAXPROCS(0), serial, parallel)
	}
}

// TestCellDeterminism pins the per-cell contract directly: RunCell twice
// with identical arguments returns identical results, violation strings
// and all.
func TestCellDeterminism(t *testing.T) {
	density, err := DensityByName("medium")
	if err != nil {
		t.Fatal(err)
	}
	load, err := LoadByName("burst")
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunCell("dymo", density, load, 5, DefaultWarmup, DefaultCooldown)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunCell("dymo", density, load, 5, DefaultWarmup, DefaultCooldown)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("same cell, different results:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// TestSeedsVaryTheRealisation guards the other side of determinism: the
// seed must actually reach the loss process and flow draw, or multi-seed
// confidence bands would be theatre.
func TestSeedsVaryTheRealisation(t *testing.T) {
	density, err := DensityByName("sparse")
	if err != nil {
		t.Fatal(err)
	}
	load, err := LoadByName("cbr")
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunCell("aodv", density, load, 1, DefaultWarmup, DefaultCooldown)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCell("aodv", density, load, 2, DefaultWarmup, DefaultCooldown)
	if err != nil {
		t.Fatal(err)
	}
	a.Seed, b.Seed = 0, 0
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if bytes.Equal(ja, jb) {
		t.Fatalf("seeds 1 and 2 produced identical cell results: %s", ja)
	}
}

// TestReportRoundTrip: the JSON written by WriteJSON parses back into an
// equal report, so goldens survive the encode/decode cycle exactly.
func TestReportRoundTrip(t *testing.T) {
	rep, err := Run(Config{
		Protos: []string{"zrp"}, Densities: []string{"dense"},
		Loads: []string{"cbr"}, Seeds: []int64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := back.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if got, want := again.String(), func() string {
		var b bytes.Buffer
		rep.WriteJSON(&b)
		return b.String()
	}(); got != want {
		t.Fatalf("round trip changed the report:\n%s\nvs\n%s", got, want)
	}
}
