// Cell-scoped profiling: `mkeval -profile <dir>` wraps every campaign
// cell (all its seeds) in a CPU profile, snapshots the heap when the cell
// finishes, and embeds a top-N hot-symbol table in the report next to the
// behavioural metrics. The raw pprof files land beside the report for
// `go tool pprof`; the embedded summary makes "where did this cell spend
// its time" diffable in CI without any tooling.
//
// Profiles are wall-clock artifacts and therefore nondeterministic; they
// live in CellResult.Profile, which Compare never gates on, and are
// omitted entirely unless profiling was requested, so default reports are
// byte-stable as before.
package eval

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"manetkit/internal/prof"
)

// DefaultProfileTopN is how many hot symbols each table keeps.
const DefaultProfileTopN = 10

// CellProfile summarises one cell's CPU and heap captures.
type CellProfile struct {
	// CPUFile and HeapFile are the gzipped pprof dumps (profile.proto),
	// named <proto>_<density>_<load>.{cpu,heap}.pb.gz under the profile
	// directory.
	CPUFile  string `json:"cpu_file"`
	HeapFile string `json:"heap_file"`

	// CPUTotalNs is the profiler-sampled CPU time over the whole cell
	// (every seed); 0 when the cell ran too briefly to be sampled.
	CPUTotalNs int64 `json:"cpu_total_ns"`
	// HeapInuseBytes is sampled live heap after the cell's clusters were
	// torn down and the heap settled.
	HeapInuseBytes int64 `json:"heap_inuse_bytes"`

	// TopCPU and TopHeap are the flat (leaf-attributed) hot-symbol
	// tables, descending.
	TopCPU  []prof.Symbol `json:"top_cpu,omitempty"`
	TopHeap []prof.Symbol `json:"top_heap,omitempty"`
}

// profileCell runs one cell's seed loop under a CPU profile, snapshots
// the heap afterwards, writes both dumps under dir and returns their
// summary. run errors take precedence over profile-plumbing errors.
func profileCell(dir, base string, topN int, run func() error) (*CellProfile, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("eval: profile dir: %w", err)
	}
	cpuPath := filepath.Join(dir, base+".cpu.pb.gz")
	heapPath := filepath.Join(dir, base+".heap.pb.gz")

	cf, err := os.Create(cpuPath)
	if err != nil {
		return nil, fmt.Errorf("eval: profile: %w", err)
	}
	if err := pprof.StartCPUProfile(cf); err != nil {
		cf.Close()
		return nil, fmt.Errorf("eval: cpu profile: %w", err)
	}
	runErr := run()
	pprof.StopCPUProfile()
	if cerr := cf.Close(); runErr == nil && cerr != nil {
		runErr = fmt.Errorf("eval: cpu profile: %w", cerr)
	}
	if runErr != nil {
		return nil, runErr
	}

	// Settle the heap so inuse reflects what the cell left live, not the
	// garbage it churned.
	runtime.GC()
	hf, err := os.Create(heapPath)
	if err != nil {
		return nil, fmt.Errorf("eval: profile: %w", err)
	}
	err = pprof.Lookup("heap").WriteTo(hf, 0)
	if cerr := hf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("eval: heap profile: %w", err)
	}

	cp := &CellProfile{CPUFile: cpuPath, HeapFile: heapPath}
	cpu, err := parseProfileFile(cpuPath)
	if err != nil {
		return nil, err
	}
	idx := cpu.DefaultValueIndex()
	cp.CPUTotalNs = cpu.Total(idx)
	cp.TopCPU = cpu.TopFlat(topN, idx)

	heap, err := parseProfileFile(heapPath)
	if err != nil {
		return nil, err
	}
	idx = heap.DefaultValueIndex()
	cp.HeapInuseBytes = heap.Total(idx)
	cp.TopHeap = heap.TopFlat(topN, idx)
	return cp, nil
}

func parseProfileFile(path string) (*prof.Profile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("eval: profile: %w", err)
	}
	p, err := prof.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("eval: profile %s: %w", path, err)
	}
	return p, nil
}
