// Package eval is the standing evaluation campaign: deterministic traffic
// generators driven over emulated protocol deployments, swept across a
// declarative {protocol family} × {density} × {traffic load} matrix, with
// the metrics the protocol-comparison literature reports — packet delivery
// ratio, end-to-end latency percentiles and control overhead — collected
// per cell as first-class, machine-readable outputs.
//
// Everything runs on the virtual clock with seeded randomness, so a cell
// is a pure function of (protocol, density, load, seed): the same cell
// with the same seed produces a byte-identical JSON result. Multi-seed
// runs add confidence bands on top of that determinism, and committed
// goldens with tolerance thresholds (testdata/golden_campaign.json) turn
// the campaign into a network-behaviour regression gate: a change that
// degrades AODV's delivery ratio under load fails CI even if every ns/op
// benchmark improved.
package eval

import (
	"fmt"
	"time"

	"manetkit/internal/testbed"
)

// Density names one topology regime of the sweep. The protocol-comparison
// studies vary node density because it flips which protocol family wins:
// sparse multi-hop chains favour low-overhead reactive discovery, dense
// single-hop neighbourhoods favour proactive link state with MPR flooding.
type Density struct {
	// Name identifies the regime in matrix specs and reports.
	Name string
	// Nodes is the cluster size.
	Nodes int
	// Build links an already-attached cluster into the regime's topology.
	Build func(c *testbed.Cluster) error
}

// Densities lists the built-in topology regimes in report order:
//
//	sparse — 8 nodes in a line (diameter 7, the long-chain regime)
//	medium — 9 nodes on a 3×3 grid (mixed path lengths, route choice)
//	dense  — 8 nodes fully meshed (single hop everywhere, flooding cost)
func Densities() []Density {
	return []Density{
		{Name: "sparse", Nodes: 8, Build: func(c *testbed.Cluster) error { return c.Line() }},
		{Name: "medium", Nodes: 9, Build: func(c *testbed.Cluster) error { return c.Grid(3) }},
		{Name: "dense", Nodes: 8, Build: func(c *testbed.Cluster) error { return c.Clique() }},
	}
}

// DensityByName resolves one of the built-in regimes.
func DensityByName(name string) (Density, error) {
	for _, d := range Densities() {
		if d.Name == name {
			return d, nil
		}
	}
	return Density{}, fmt.Errorf("eval: unknown density %q", name)
}

// Load is one deterministic application traffic profile. Emissions happen
// on the virtual clock: a CBR profile (Burst = 1) sends one packet per
// Interval per flow; a burst profile sends Burst packets back-to-back
// every Interval, the on/off source that stresses route caches and packet
// buffers.
type Load struct {
	// Name identifies the profile in matrix specs and reports.
	Name string
	// Flows is how many concurrent (src, dst) flows run; the endpoints are
	// drawn deterministically from the cell seed.
	Flows int
	// Packets is the number of data packets each flow originates.
	Packets int
	// Burst is how many packets are sent back-to-back per emission
	// (1 = pure CBR).
	Burst int
	// Interval separates consecutive emissions of one flow.
	Interval time.Duration
	// PayloadBytes pads every packet to this size.
	PayloadBytes int
}

// Loads lists the built-in traffic profiles in report order:
//
//	cbr   — 2 flows × 8 packets, one every 2 s, 64-byte payload
//	burst — 3 flows × 12 packets in bursts of 4 every 4 s, 192-byte payload
func Loads() []Load {
	return []Load{
		{Name: "cbr", Flows: 2, Packets: 8, Burst: 1, Interval: 2 * time.Second, PayloadBytes: 64},
		{Name: "burst", Flows: 3, Packets: 12, Burst: 4, Interval: 4 * time.Second, PayloadBytes: 192},
	}
}

// LoadByName resolves one of the built-in profiles.
func LoadByName(name string) (Load, error) {
	for _, l := range Loads() {
		if l.Name == name {
			return l, nil
		}
	}
	return Load{}, fmt.Errorf("eval: unknown load %q", name)
}

// Window is the span from a profile's first emission to its last: the
// traffic phase of a cell run (delivery may trail into the cooldown).
func (l Load) Window() time.Duration {
	if l.Burst <= 0 || l.Packets <= 0 {
		return 0
	}
	emissions := (l.Packets + l.Burst - 1) / l.Burst
	return time.Duration(emissions-1) * l.Interval
}
