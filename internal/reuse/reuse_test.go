package reuse

import (
	"os"
	"path/filepath"
	"testing"
)

// repoRoot walks up from the CWD to the directory containing go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above CWD")
		}
		dir = parent
	}
}

func TestCountLoC(t *testing.T) {
	tmp := filepath.Join(t.TempDir(), "x.go")
	src := `// Package x is a comment.
package x

/* block
comment */
import "fmt"

// F does things.
func F() {
	fmt.Println("hi") // trailing comment counts as code
}
/* one-liner */ var G = 1
`
	if err := os.WriteFile(tmp, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := CountLoC(tmp)
	if err != nil {
		t.Fatal(err)
	}
	// package, import, func, Println, closing brace, var G = 5+1 lines.
	if got != 6 {
		t.Fatalf("CountLoC = %d, want 6", got)
	}
	if _, err := CountLoC(filepath.Join(t.TempDir(), "missing.go")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestManifestFilesExist(t *testing.T) {
	root := repoRoot(t)
	for _, comp := range Manifest() {
		if len(comp.Files) == 0 {
			t.Errorf("%s: no files", comp.Name)
		}
		for _, f := range comp.Files {
			if _, err := os.Stat(filepath.Join(root, f)); err != nil {
				t.Errorf("%s: %v", comp.Name, err)
			}
		}
		if !comp.OLSR && !comp.DYMO && !comp.AODV {
			t.Errorf("%s: used by no protocol", comp.Name)
		}
	}
}

func TestAnalyzeReproducesTable3Shape(t *testing.T) {
	r, err := Analyze(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Table 3: 12 generic components in each composition and
	// generic:specific at least 2:1.
	if r.GenericCountOLSR < 2*r.SpecificCountOLSR {
		t.Errorf("OLSR generic:specific = %d:%d, want >= 2:1", r.GenericCountOLSR, r.SpecificCountOLSR)
	}
	if r.GenericCountDYMO < 2*r.SpecificCountDYMO {
		t.Errorf("DYMO generic:specific = %d:%d, want >= 2:1", r.GenericCountDYMO, r.SpecificCountDYMO)
	}
	// Fig 7's shape: a majority of each protocol's code base is reused,
	// with DYMO's proportion at least OLSR's (paper: 57% vs 66%).
	if f := r.ReusedFractionOLSR(); f < 0.5 {
		t.Errorf("OLSR reused fraction = %.2f, want >= 0.5", f)
	}
	if f := r.ReusedFractionDYMO(); f < 0.5 {
		t.Errorf("DYMO reused fraction = %.2f, want >= 0.5", f)
	}
	if f := r.ReusedFractionAODV(); f < 0.5 {
		t.Errorf("AODV reused fraction = %.2f, want >= 0.5", f)
	}
	if r.GenericCountAODV < 2*r.SpecificCountAODV {
		t.Errorf("AODV generic:specific = %d:%d, want >= 2:1", r.GenericCountAODV, r.SpecificCountAODV)
	}
	if r.ReusedFractionDYMO() <= r.ReusedFractionOLSR()-0.05 {
		t.Errorf("expected DYMO reuse (%.2f) >= OLSR reuse (%.2f) as in the paper",
			r.ReusedFractionDYMO(), r.ReusedFractionOLSR())
	}
	for _, row := range r.Rows {
		if row.LoC <= 0 {
			t.Errorf("%s: zero LoC", row.Component.Name)
		}
	}
}
