// Package reuse regenerates the paper's code-reuse analysis (Table 3 and
// Fig 7): it counts the lines of code of every component in this
// repository's OLSR and DYMO compositions and classifies them as reusable
// generic components or protocol-specific ones. The paper uses this as the
// (indirect) measure of how much MANETKit shortens protocol development and
// porting (§6.3).
package reuse

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Component is one row of the analysis: a named component, the source
// files that implement it, and which protocol compositions use it.
type Component struct {
	Name    string
	Files   []string // repo-relative Go files (tests excluded by CountLoC)
	Generic bool     // reusable across protocols vs protocol-specific
	OLSR    bool     // part of the OLSR composition
	DYMO    bool     // part of the DYMO composition
	AODV    bool     // part of the AODV composition (extension column)
}

// Manifest maps the paper's Table 3 component rows onto this repository's
// sources. The generic set mirrors the paper's: System CF elements, the
// NetLink packet filter, queue/threadpool/timer utilities, the PacketBB
// generator/parser, the routing-table template, the ManetControl CF
// machinery, the Neighbour Detection CF, the MPR calculator and state, and
// the configurator (CF/integrity machinery).
func Manifest() []Component {
	return []Component{
		{Name: "System CF (C/F/S)", Files: []string{"internal/system/system.go", "internal/system/battery.go"}, Generic: true, OLSR: true, DYMO: true, AODV: true},
		{Name: "Netlink (packet filter)", Files: []string{"internal/system/netlink.go"}, Generic: true, DYMO: true, AODV: true},
		{Name: "Queue", Files: []string{"internal/queue/queue.go"}, Generic: true, OLSR: true, DYMO: true, AODV: true},
		{Name: "Threadpool", Files: []string{"internal/pool/pool.go"}, Generic: true, OLSR: true, DYMO: true, AODV: true},
		{Name: "Timer", Files: []string{"internal/vclock/clock.go", "internal/vclock/periodic.go"}, Generic: true, OLSR: true, DYMO: true, AODV: true},
		{Name: "PacketGenerator", Files: []string{"internal/packetbb/encode.go"}, Generic: true, OLSR: true, DYMO: true, AODV: true},
		{Name: "PacketParser", Files: []string{"internal/packetbb/decode.go", "internal/packetbb/packetbb.go"}, Generic: true, OLSR: true, DYMO: true, AODV: true},
		{Name: "RouteTable", Files: []string{"internal/route/route.go", "internal/route/fib.go"}, Generic: true, OLSR: true, DYMO: true, AODV: true},
		{Name: "ManetControl CF", Files: []string{"internal/core/protocol.go", "internal/core/ticket.go", "internal/core/state.go"}, Generic: true, OLSR: true, DYMO: true, AODV: true},
		{Name: "NeighbourDetection CF", Files: []string{"internal/neighbor/detector.go", "internal/neighbor/table.go"}, Generic: true, DYMO: true, AODV: true},
		{Name: "MPRCalculator", Files: []string{"internal/mpr/calculator.go"}, Generic: true, OLSR: true},
		{Name: "MPRState", Files: []string{"internal/mpr/mpr.go"}, Generic: true, OLSR: true},
		{Name: "Configurator", Files: []string{"internal/kernel/cf.go"}, Generic: true, OLSR: true, DYMO: true, AODV: true},

		{Name: "OLSR protocol logic", Files: []string{"internal/olsr/olsr.go"}, OLSR: true},
		{Name: "OLSR state (topology set)", Files: []string{"internal/olsr/state.go"}, OLSR: true},
		{Name: "OLSR variants (fisheye, power)", Files: []string{"internal/olsr/variants.go"}, OLSR: true},
		{Name: "DYMO protocol logic", Files: []string{"internal/dymo/dymo.go"}, DYMO: true},
		{Name: "DYMO variants (multipath, gossip)", Files: []string{"internal/dymo/variants.go"}, DYMO: true},
		{Name: "AODV protocol logic", Files: []string{"internal/aodv/aodv.go"}, AODV: true},
	}
}

// CountLoC counts the non-blank, non-comment lines of the given Go file.
func CountLoC(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("reuse: %w", err)
	}
	defer f.Close()

	count := 0
	inBlock := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		// Peel leading comments (possibly several on one line) until code
		// or nothing remains.
		for {
			if line == "" {
				break
			}
			if inBlock {
				idx := strings.Index(line, "*/")
				if idx < 0 {
					line = ""
					break
				}
				inBlock = false
				line = strings.TrimSpace(line[idx+2:])
				continue
			}
			if strings.HasPrefix(line, "//") {
				line = ""
				break
			}
			if strings.HasPrefix(line, "/*") {
				inBlock = true
				line = line[2:]
				continue
			}
			break
		}
		if line != "" {
			count++
		}
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("reuse: %w", err)
	}
	return count, nil
}

// Row is one measured Table 3 entry.
type Row struct {
	Component Component
	LoC       int
}

// Report is the full analysis: the rows plus the Fig 7 aggregates.
type Report struct {
	Rows []Row

	GenericCountOLSR  int // reused generic components in the OLSR composition
	GenericCountDYMO  int
	GenericCountAODV  int
	SpecificCountOLSR int
	SpecificCountDYMO int
	SpecificCountAODV int

	ReusedLoCOLSR   int
	SpecificLoCOLSR int
	ReusedLoCDYMO   int
	SpecificLoCDYMO int
	ReusedLoCAODV   int
	SpecificLoCAODV int
}

// Analyze measures every manifest component under the repository root.
func Analyze(root string) (*Report, error) {
	r := &Report{}
	for _, comp := range Manifest() {
		loc := 0
		for _, file := range comp.Files {
			n, err := CountLoC(filepath.Join(root, file))
			if err != nil {
				return nil, err
			}
			loc += n
		}
		r.Rows = append(r.Rows, Row{Component: comp, LoC: loc})
		if comp.OLSR {
			if comp.Generic {
				r.GenericCountOLSR++
				r.ReusedLoCOLSR += loc
			} else {
				r.SpecificCountOLSR++
				r.SpecificLoCOLSR += loc
			}
		}
		if comp.DYMO {
			if comp.Generic {
				r.GenericCountDYMO++
				r.ReusedLoCDYMO += loc
			} else {
				r.SpecificCountDYMO++
				r.SpecificLoCDYMO += loc
			}
		}
		if comp.AODV {
			if comp.Generic {
				r.GenericCountAODV++
				r.ReusedLoCAODV += loc
			} else {
				r.SpecificCountAODV++
				r.SpecificLoCAODV += loc
			}
		}
	}
	return r, nil
}

// ReusedFractionAODV returns the reusable proportion for the AODV
// composition (extension beyond the paper's two protocols).
func (r *Report) ReusedFractionAODV() float64 {
	total := r.ReusedLoCAODV + r.SpecificLoCAODV
	if total == 0 {
		return 0
	}
	return float64(r.ReusedLoCAODV) / float64(total)
}

// ReusedFractionOLSR returns Fig 7's reusable proportion for OLSR.
func (r *Report) ReusedFractionOLSR() float64 {
	total := r.ReusedLoCOLSR + r.SpecificLoCOLSR
	if total == 0 {
		return 0
	}
	return float64(r.ReusedLoCOLSR) / float64(total)
}

// ReusedFractionDYMO returns Fig 7's reusable proportion for DYMO.
func (r *Report) ReusedFractionDYMO() float64 {
	total := r.ReusedLoCDYMO + r.SpecificLoCDYMO
	if total == 0 {
		return 0
	}
	return float64(r.ReusedLoCDYMO) / float64(total)
}

// PrintTable3 renders the paper's Table 3 layout, plus the AODV extension
// column.
func (r *Report) PrintTable3() {
	fmt.Println("Table 3. Reused generic components in MANET protocol compositions")
	fmt.Printf("%-34s %14s %6s %6s %6s\n", "", "Lines of Code", "OLSR", "DYMO", "AODV")
	mark := func(b bool) string {
		if b {
			return "X"
		}
		return ""
	}
	for _, row := range r.Rows {
		if !row.Component.Generic {
			continue
		}
		fmt.Printf("%-34s %14d %6s %6s %6s\n", row.Component.Name, row.LoC,
			mark(row.Component.OLSR), mark(row.Component.DYMO), mark(row.Component.AODV))
	}
	fmt.Printf("%-34s %14s %6d %6d %6d\n", "Reused Generic Components", "-",
		r.GenericCountOLSR, r.GenericCountDYMO, r.GenericCountAODV)
	fmt.Printf("%-34s %14s %6d %6d %6d\n", "Protocol-specific Components", "-",
		r.SpecificCountOLSR, r.SpecificCountDYMO, r.SpecificCountAODV)
}

// PrintFig7 renders Fig 7's series (reused vs specific LoC per protocol).
func (r *Report) PrintFig7() {
	fmt.Println("Fig 7. The proportion of reusable code in each protocol")
	fmt.Printf("%-8s %10s %10s %10s\n", "", "Reused", "Specific", "Reused%")
	fmt.Printf("%-8s %10d %10d %9.0f%%\n", "OLSR", r.ReusedLoCOLSR, r.SpecificLoCOLSR, 100*r.ReusedFractionOLSR())
	fmt.Printf("%-8s %10d %10d %9.0f%%\n", "DYMO", r.ReusedLoCDYMO, r.SpecificLoCDYMO, 100*r.ReusedFractionDYMO())
	fmt.Printf("%-8s %10d %10d %9.0f%%\n", "AODV", r.ReusedLoCAODV, r.SpecificLoCAODV, 100*r.ReusedFractionAODV())
}
