package testbed

import (
	"testing"
	"time"

	"manetkit/internal/emunet"
	"manetkit/internal/mnet"
	"manetkit/internal/neighbor"
)

// deployDetector puts a HELLO-beaconing neighbour detector on a node so
// the cluster has periodic traffic to observe.
func deployDetector(t *testing.T, n *Node) *neighbor.Detector {
	t.Helper()
	d := neighbor.New("", neighbor.Config{HelloInterval: 2 * time.Second})
	if err := n.Mgr.Deploy(d.Protocol()); err != nil {
		t.Fatalf("deploy detector: %v", err)
	}
	if err := d.Protocol().Start(); err != nil {
		t.Fatalf("start detector: %v", err)
	}
	return d
}

func TestNewBuildsStartedNodes(t *testing.T) {
	c, err := New(4, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	if len(c.Nodes) != 4 {
		t.Fatalf("got %d nodes", len(c.Nodes))
	}
	if got := c.Clock.Now(); !got.Equal(Epoch) {
		t.Fatalf("clock starts at %v, want %v", got, Epoch)
	}
	for i, n := range c.Nodes {
		if n.Addr != emunet.Addrs(4)[i] {
			t.Fatalf("node %d addr %v", i, n.Addr)
		}
		if !n.Sys.Protocol().Started() {
			t.Fatalf("node %d System CF not started", i)
		}
		if n.FIB() == nil {
			t.Fatalf("node %d has no FIB", i)
		}
		if c.Node(i) != n {
			t.Fatalf("Node(%d) mismatch", i)
		}
	}
	if len(c.Addrs()) != 4 {
		t.Fatalf("Addrs: %v", c.Addrs())
	}
}

// TestSharedVirtualClock verifies every node's timers run off the one
// cluster clock: advancing it moves HELLO traffic on all nodes at once.
func TestSharedVirtualClock(t *testing.T) {
	c, err := New(2, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	if err := c.Line(); err != nil {
		t.Fatalf("Line: %v", err)
	}
	var dets []*neighbor.Detector
	for _, n := range c.Nodes {
		dets = append(dets, deployDetector(t, n))
	}
	c.Run(10 * time.Second)
	if got := c.Net.Stats().TxFrames; got == 0 {
		t.Fatalf("no frames after 10s: the nodes are not on the cluster clock")
	}
	// Both nodes beaconed off the one clock, and heard each other.
	for i, n := range c.Nodes {
		tx, rx := n.Sys.NIC().Counters()
		if tx == 0 || rx == 0 {
			t.Fatalf("node %d tx=%d rx=%d: not driven by the cluster clock", i, tx, rx)
		}
		peer := c.Nodes[1-i].Addr
		if got, ok := dets[i].Table().Get(peer); !ok || got.Status != neighbor.StatusSymmetric {
			t.Fatalf("node %d never sensed %v", i, peer)
		}
	}
	want := Epoch.Add(10 * time.Second)
	if got := c.Clock.Now(); !got.Equal(want) {
		t.Fatalf("clock at %v, want %v", got, want)
	}
}

func TestTopologyHelpers(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(c *Cluster) error
		links [][2]int // expected sample links (node indices)
	}{
		{"line", func(c *Cluster) error { return c.Line() }, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{"grid", func(c *Cluster) error { return c.Grid(2) }, [][2]int{{0, 1}, {0, 2}, {1, 3}}},
		{"clique", func(c *Cluster) error { return c.Clique() }, [][2]int{{0, 3}, {1, 2}}},
		{"random", func(c *Cluster) error { return c.Random(0.5, 3) }, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(4, Options{})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer c.Close()
			if err := tc.build(c); err != nil {
				t.Fatalf("build: %v", err)
			}
			addrs := c.Addrs()
			for _, l := range tc.links {
				if !c.Net.Linked(addrs[l[0]], addrs[l[1]]) {
					t.Fatalf("%s: nodes %d and %d not linked", tc.name, l[0], l[1])
				}
			}
			// Random must at least leave every node connected somehow.
			if tc.name == "random" {
				for i, a := range addrs {
					any := false
					for _, b := range addrs {
						if a != b && c.Net.Linked(a, b) {
							any = true
						}
					}
					if !any {
						t.Fatalf("random left node %d isolated", i)
					}
				}
			}
		})
	}
}

// TestAddNodeJoinsRunningCluster covers the route-establishment
// experiment's shape: a node joins (and re-joins) a live network.
func TestAddNodeJoinsRunningCluster(t *testing.T) {
	c, err := New(2, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	if err := c.Line(); err != nil {
		t.Fatalf("Line: %v", err)
	}
	c.Run(5 * time.Second)

	late := mnet.MustParseAddr("10.0.0.100")
	node, err := c.AddNode(late)
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if len(c.Nodes) != 3 || node.Addr != late {
		t.Fatalf("join failed: %d nodes", len(c.Nodes))
	}
	if err := c.Net.SetLink(late, c.Nodes[1].Addr, emunet.DefaultQuality()); err != nil {
		t.Fatalf("SetLink: %v", err)
	}
	if !c.Net.Linked(late, c.Nodes[1].Addr) {
		t.Fatalf("late node not linked")
	}
	// A second node at the same address must be refused while attached.
	if _, err := c.AddNode(late); err == nil {
		t.Fatalf("duplicate address accepted")
	}
}

// TestNodeReattachAfterCrash exercises the crash-modeling path: detach a
// node's NIC mid-run, then re-attach the same NIC and verify traffic
// flows again.
func TestNodeReattachAfterCrash(t *testing.T) {
	c, err := New(3, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	if err := c.Line(); err != nil {
		t.Fatalf("Line: %v", err)
	}
	for _, n := range c.Nodes {
		deployDetector(t, n)
	}
	c.Run(4 * time.Second)

	victim := c.Nodes[1]
	nic := victim.Sys.NIC()
	saved := c.Net.Neighbors(victim.Addr)
	if len(saved) == 0 {
		t.Fatalf("victim has no links to lose")
	}
	if err := c.Net.Detach(victim.Addr); err != nil {
		t.Fatalf("Detach: %v", err)
	}
	rxAtDetach := c.Net.Stats().RxFrames
	_, rxNICAtDetach := nic.Counters()
	c.Run(4 * time.Second)
	if c.Net.Linked(c.Nodes[0].Addr, victim.Addr) {
		t.Fatalf("victim still linked after detach")
	}
	if _, rx := nic.Counters(); rx != rxNICAtDetach {
		t.Fatalf("detached NIC still receiving: %d -> %d", rxNICAtDetach, rx)
	}

	if err := c.Net.Reattach(nic); err != nil {
		t.Fatalf("Reattach: %v", err)
	}
	for _, nb := range saved {
		if err := c.Net.SetLink(victim.Addr, nb, emunet.DefaultQuality()); err != nil {
			t.Fatalf("relink: %v", err)
		}
	}
	c.Run(4 * time.Second)
	if got := c.Net.Stats().RxFrames; got <= rxAtDetach {
		t.Fatalf("no deliveries after re-attach: %d then %d", rxAtDetach, got)
	}
}

// TestCloseIsIdempotentTeardown verifies teardown silences the cluster
// and can run twice without panicking.
func TestCloseIsIdempotentTeardown(t *testing.T) {
	c, err := New(2, Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Line(); err != nil {
		t.Fatalf("Line: %v", err)
	}
	for _, n := range c.Nodes {
		deployDetector(t, n)
	}
	c.Run(3 * time.Second)
	if c.Net.Stats().TxFrames == 0 {
		t.Fatalf("cluster silent before Close")
	}
	c.Close()
	before := c.Net.Stats().TxFrames
	c.Run(5 * time.Second)
	if got := c.Net.Stats().TxFrames; got != before {
		t.Fatalf("closed cluster still transmits: %d -> %d", before, got)
	}
	c.Close() // second Close must not panic
}
