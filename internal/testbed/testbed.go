// Package testbed assembles multi-node MANETKit deployments over the
// emulated medium — the in-process analogue of the paper's 5-node testbed
// with its Ethernet management backplane. It is used by the protocol
// integration tests, the examples and the experiment harness.
package testbed

import (
	"fmt"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/emunet"
	"manetkit/internal/inspect"
	"manetkit/internal/metrics"
	"manetkit/internal/mnet"
	"manetkit/internal/route"
	"manetkit/internal/system"
	"manetkit/internal/trace"
	"manetkit/internal/vclock"
)

// Epoch is the virtual-clock start time used throughout the experiments.
var Epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// Node is one emulated MANET host: its framework deployment and System CF.
type Node struct {
	Addr mnet.Addr
	Mgr  *core.Manager
	Sys  *system.System
}

// FIB returns the node's simulated kernel forwarding table.
func (n *Node) FIB() *route.FIB { return n.Sys.FIB() }

// Options tunes cluster construction.
type Options struct {
	// Model is the concurrency model (default core.SingleThreaded).
	Model core.Model
	// Seed drives the medium's loss process (default 1).
	Seed int64
	// LinkQuality is applied by the topology helpers (default
	// emunet.DefaultQuality()).
	LinkQuality emunet.Quality
	// Battery, when non-nil, is cloned per node (same parameters).
	BatteryTemplate *system.Battery
	// SystemConfig tweaks each node's System CF; NIC is filled in.
	SystemConfig func(addr mnet.Addr, cfg *system.Config)
	// Metrics, when non-nil, is shared by the medium and every node's
	// Framework Manager (one registry per cluster).
	Metrics *metrics.Registry
	// Tracer, when non-nil, records structured spans from the medium and
	// every node; under the cluster's virtual clock the trace is
	// byte-identical run to run for the same seed.
	Tracer *trace.Tracer
	// Journal, when non-nil, watches every node's manager so each topology
	// re-derivation (deploy, undeploy, model switch, retuple) is recorded
	// as a timestamped snapshot diff.
	Journal *inspect.Journal
	// Engine selects and tunes the medium's delivery engine (zero value:
	// the sharded event core with default tuning).
	Engine emunet.EngineConfig
}

// Cluster is a set of co-emulated MANETKit nodes on one virtual clock.
type Cluster struct {
	Clock *vclock.Virtual
	Net   *emunet.Network
	Nodes []*Node
	opts  Options
}

// New builds a cluster of n nodes with deployed, started System CFs and no
// links (use Line/Grid/Clique or the Net directly).
func New(n int, opts Options) (*Cluster, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Model == 0 {
		opts.Model = core.SingleThreaded
	}
	if opts.LinkQuality == (emunet.Quality{}) {
		opts.LinkQuality = emunet.DefaultQuality()
	}
	clk := vclock.NewVirtual(Epoch)
	net := emunet.NewWithConfig(clk, opts.Seed, opts.Engine)
	if opts.Metrics != nil {
		net.SetMetrics(opts.Metrics)
	}
	if opts.Tracer != nil {
		net.SetTracer(opts.Tracer)
		if opts.Metrics != nil {
			// Ring overflow used to discard spans silently; with both
			// instruments installed, every eviction now shows up as a
			// cluster-wide counter.
			opts.Tracer.SetDropHook(opts.Metrics.Counter("trace_dropped_total").Inc)
		}
	}
	c := &Cluster{Clock: clk, Net: net, opts: opts}
	for _, addr := range emunet.Addrs(n) {
		node, err := c.AddNode(addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		_ = node
	}
	return c, nil
}

// AddNode attaches one more host at addr — used by the route-establishment
// experiment, where a new node joins a running network.
func (c *Cluster) AddNode(addr mnet.Addr) (*Node, error) {
	nic, err := c.Net.Attach(addr)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	mgr, err := core.NewManager(core.Config{
		Node: addr, Clock: c.Clock, Model: c.opts.Model,
		Metrics: c.opts.Metrics, Tracer: c.opts.Tracer,
	})
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	sysCfg := system.Config{NIC: nic}
	if c.opts.SystemConfig != nil {
		c.opts.SystemConfig(addr, &sysCfg)
	}
	sys, err := system.New(sysCfg)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	if err := mgr.Deploy(sys.Protocol()); err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	if err := sys.Protocol().Start(); err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	if c.opts.Journal != nil {
		c.opts.Journal.Watch(mgr)
	}
	node := &Node{Addr: addr, Mgr: mgr, Sys: sys}
	c.Nodes = append(c.Nodes, node)
	return node, nil
}

// Addrs returns the node addresses in order.
func (c *Cluster) Addrs() []mnet.Addr {
	out := make([]mnet.Addr, len(c.Nodes))
	for i, n := range c.Nodes {
		out[i] = n.Addr
	}
	return out
}

// Node returns the node at index i.
func (c *Cluster) Node(i int) *Node { return c.Nodes[i] }

// Metrics returns the cluster's shared registry (nil when not configured).
func (c *Cluster) Metrics() *metrics.Registry { return c.opts.Metrics }

// Tracer returns the cluster's shared tracer (nil when not configured).
func (c *Cluster) Tracer() *trace.Tracer { return c.opts.Tracer }

// Journal returns the cluster's rewire journal (nil when not configured).
func (c *Cluster) Journal() *inspect.Journal { return c.opts.Journal }

// Snapshot captures the live architecture meta-model of every node.
func (c *Cluster) Snapshot() inspect.Snapshot {
	mgrs := make([]*core.Manager, len(c.Nodes))
	for i, n := range c.Nodes {
		mgrs[i] = n.Mgr
	}
	return inspect.Capture(mgrs...)
}

// Line links the nodes into the paper's linear chain topology.
func (c *Cluster) Line() error { return emunet.BuildLine(c.Net, c.Addrs(), c.opts.LinkQuality) }

// Grid links the nodes as a cols-wide grid.
func (c *Cluster) Grid(cols int) error {
	return emunet.BuildGrid(c.Net, c.Addrs(), cols, c.opts.LinkQuality)
}

// Clique links every pair of nodes.
func (c *Cluster) Clique() error { return emunet.BuildClique(c.Net, c.Addrs(), c.opts.LinkQuality) }

// Random links nodes with the given density (plus a connectivity chain).
func (c *Cluster) Random(density float64, seed int64) error {
	return emunet.BuildRandom(c.Net, c.Addrs(), density, seed, c.opts.LinkQuality)
}

// Run advances the shared virtual clock by d, executing all protocol
// timers and in-flight deliveries in deterministic order.
func (c *Cluster) Run(d time.Duration) { c.Clock.Advance(d) }

// Settle drains all pending timers (bounded by maxEvents; -1 unbounded).
func (c *Cluster) Settle(maxEvents int) int { return c.Clock.RunUntilIdle(maxEvents) }

// Close shuts down every node's manager.
func (c *Cluster) Close() {
	for _, n := range c.Nodes {
		n.Mgr.Close()
	}
}
