package testbed_test

import (
	"testing"
	"time"

	"manetkit/internal/metrics"
	"manetkit/internal/testbed"
	"manetkit/internal/trace"
)

// TestTraceDropCounterWired: when a cluster has both instruments, every
// span the trace ring evicts is visible as the cluster-wide
// trace_dropped_total counter — silent span loss is over.
func TestTraceDropCounterWired(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := trace.New(testbed.Epoch, 8) // tiny ring: eviction guaranteed
	c, err := testbed.New(3, testbed.Options{Seed: 1, Metrics: reg, Tracer: tr})
	if err != nil {
		t.Fatalf("testbed.New: %v", err)
	}
	defer c.Close()
	if err := c.Line(); err != nil {
		t.Fatalf("Line: %v", err)
	}
	// 20 unicast frames, each recording send+delivery spans: far past 8.
	src, dst := c.Nodes[0].Sys.NIC(), c.Nodes[1].Addr
	for i := 0; i < 20; i++ {
		if err := src.Send(dst, []byte("probe")); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
		c.Run(time.Millisecond)
	}

	dropped := tr.Dropped()
	if dropped == 0 {
		t.Fatal("expected ring evictions with capacity 8 over 10s of beaconing")
	}
	if got := reg.Snapshot().Counters["trace_dropped_total"]; got != dropped {
		t.Fatalf("trace_dropped_total = %d, want %d (Tracer.Dropped)", got, dropped)
	}
}
