package mnet

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAddrString(t *testing.T) {
	tests := []struct {
		addr Addr
		want string
	}{
		{Addr{10, 0, 0, 1}, "10.0.0.1"},
		{Addr{}, "0.0.0.0"},
		{Broadcast, "255.255.255.255"},
		{Addr{192, 168, 1, 200}, "192.168.1.200"},
	}
	for _, tt := range tests {
		if got := tt.addr.String(); got != tt.want {
			t.Errorf("String(%v) = %q, want %q", [4]byte(tt.addr), got, tt.want)
		}
	}
}

func TestParseAddr(t *testing.T) {
	tests := []struct {
		in      string
		want    Addr
		wantErr bool
	}{
		{"10.0.0.1", Addr{10, 0, 0, 1}, false},
		{"255.255.255.255", Broadcast, false},
		{"0.0.0.0", Addr{}, false},
		{"1.2.3", Addr{}, true},
		{"1.2.3.4.5", Addr{}, true},
		{"256.0.0.1", Addr{}, true},
		{"-1.0.0.1", Addr{}, true},
		{"01.0.0.1", Addr{}, true}, // leading zero rejected
		{"a.b.c.d", Addr{}, true},
		{"", Addr{}, true},
	}
	for _, tt := range tests {
		got, err := ParseAddr(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseAddr(%q): want error, got %v", tt.in, got)
			} else if !errors.Is(err, ErrBadAddr) {
				t.Errorf("ParseAddr(%q): error %v is not ErrBadAddr", tt.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseAddr(%q): unexpected error %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseAddrRoundTrip(t *testing.T) {
	f := func(u uint32) bool {
		a := AddrFrom(u)
		back, err := ParseAddr(a.String())
		return err == nil && back == a && back.Uint32() == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseAddr on bad input did not panic")
		}
	}()
	MustParseAddr("not-an-addr")
}

func TestAddrPredicates(t *testing.T) {
	if !Broadcast.IsBroadcast() {
		t.Error("Broadcast.IsBroadcast() = false")
	}
	if (Addr{10, 0, 0, 1}).IsBroadcast() {
		t.Error("unicast address reported as broadcast")
	}
	if !(Addr{}).IsUnspecified() {
		t.Error("zero address not unspecified")
	}
	if Broadcast.IsUnspecified() {
		t.Error("broadcast reported unspecified")
	}
}

func TestAddrLess(t *testing.T) {
	a := Addr{10, 0, 0, 1}
	b := Addr{10, 0, 1, 0}
	if !a.Less(b) || b.Less(a) || a.Less(a) {
		t.Errorf("Less ordering broken for %v, %v", a, b)
	}
}

func TestPrefixContains(t *testing.T) {
	tests := []struct {
		prefix string
		bits   int
		addr   string
		want   bool
	}{
		{"10.0.0.0", 8, "10.1.2.3", true},
		{"10.0.0.0", 8, "11.0.0.0", false},
		{"10.0.0.1", 32, "10.0.0.1", true},
		{"10.0.0.1", 32, "10.0.0.2", false},
		{"0.0.0.0", 0, "255.1.2.3", true},
		{"192.168.4.0", 24, "192.168.4.200", true},
		{"192.168.4.0", 24, "192.168.5.1", false},
	}
	for _, tt := range tests {
		p := Prefix{Addr: MustParseAddr(tt.prefix), Bits: tt.bits}
		if got := p.Contains(MustParseAddr(tt.addr)); got != tt.want {
			t.Errorf("%v.Contains(%s) = %v, want %v", p, tt.addr, got, tt.want)
		}
	}
}

func TestPrefixValidity(t *testing.T) {
	if (Prefix{Bits: -1}).IsValid() || (Prefix{Bits: 33}).IsValid() {
		t.Error("out-of-range prefix reported valid")
	}
	if !(Prefix{Bits: 0}).IsValid() || !(Prefix{Bits: 32}).IsValid() {
		t.Error("in-range prefix reported invalid")
	}
	if (Prefix{Addr: Addr{1, 2, 3, 4}, Bits: 33}).Contains(Addr{1, 2, 3, 4}) {
		t.Error("invalid prefix must contain nothing")
	}
}

func TestHostPrefix(t *testing.T) {
	a := MustParseAddr("10.0.0.9")
	p := HostPrefix(a)
	if p.Bits != 32 || !p.Contains(a) || p.Contains(MustParseAddr("10.0.0.8")) {
		t.Errorf("HostPrefix(%v) = %v behaves wrongly", a, p)
	}
	if got, want := p.String(), "10.0.0.9/32"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestPrefixContainsProperty(t *testing.T) {
	// Every prefix derived from an address by masking contains that address.
	f := func(u uint32, bits uint8) bool {
		b := int(bits % 33)
		var masked uint32
		if b > 0 {
			masked = u & (^uint32(0) << (32 - uint(b)))
		}
		p := Prefix{Addr: AddrFrom(masked), Bits: b}
		return p.Contains(AddrFrom(u))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
