// Package mnet defines the elementary network types shared by every layer
// of MANETKit: node addresses, prefixes and related helpers.
//
// MANETKit deployments identify nodes by a 4-byte address in the style of
// IPv4. The address doubles as the node identity on the emulated medium
// (package emunet) and as the originator/target address carried inside
// PacketBB messages (package packetbb).
package mnet

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// AddrLen is the length in bytes of a MANETKit node address.
const AddrLen = 4

// Addr is a 4-byte node address. The zero value is the unspecified address.
type Addr [AddrLen]byte

// Broadcast is the link-local broadcast address: frames sent to it are
// delivered to every in-range node.
var Broadcast = Addr{0xff, 0xff, 0xff, 0xff}

// AddrFrom builds an address from a 32-bit integer in big-endian order.
// AddrFrom(0x0a000001) is "10.0.0.1".
func AddrFrom(u uint32) Addr {
	return Addr{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)}
}

// Uint32 returns the address as a big-endian 32-bit integer.
func (a Addr) Uint32() uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// IsBroadcast reports whether a is the broadcast address.
func (a Addr) IsBroadcast() bool { return a == Broadcast }

// IsUnspecified reports whether a is the zero address.
func (a Addr) IsUnspecified() bool { return a == Addr{} }

// String renders the address in dotted-quad notation.
func (a Addr) String() string {
	var b strings.Builder
	b.Grow(15)
	for i, octet := range a {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(int(octet)))
	}
	return b.String()
}

// ErrBadAddr reports a malformed textual address.
var ErrBadAddr = errors.New("mnet: malformed address")

// ParseAddr parses a dotted-quad address such as "10.0.0.7".
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != AddrLen {
		return Addr{}, fmt.Errorf("%w: %q", ErrBadAddr, s)
	}
	var a Addr
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 || (len(p) > 1 && p[0] == '0') {
			return Addr{}, fmt.Errorf("%w: %q", ErrBadAddr, s)
		}
		a[i] = byte(n)
	}
	return a, nil
}

// MustParseAddr is ParseAddr for tests and tables of literals; it panics on
// malformed input.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Less imposes a total order on addresses (lexicographic, i.e. numeric on
// the big-endian value). Used to keep route and neighbour tables in a
// deterministic iteration order.
func (a Addr) Less(b Addr) bool { return a.Uint32() < b.Uint32() }

// Prefix is an address prefix: a base address plus a prefix length in bits.
// A host route has Bits == 32.
type Prefix struct {
	Addr Addr
	Bits int
}

// HostPrefix returns the /32 prefix covering exactly addr.
func HostPrefix(addr Addr) Prefix { return Prefix{Addr: addr, Bits: 8 * AddrLen} }

// Contains reports whether the prefix covers addr.
func (p Prefix) Contains(addr Addr) bool {
	if p.Bits <= 0 {
		return true
	}
	if p.Bits > 8*AddrLen {
		return false
	}
	mask := ^uint32(0) << (32 - uint(p.Bits))
	return p.Addr.Uint32()&mask == addr.Uint32()&mask
}

// IsValid reports whether the prefix length is within range.
func (p Prefix) IsValid() bool { return p.Bits >= 0 && p.Bits <= 8*AddrLen }

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	return p.Addr.String() + "/" + strconv.Itoa(p.Bits)
}
