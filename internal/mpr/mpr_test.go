package mpr

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/event"
	"manetkit/internal/mnet"
	"manetkit/internal/neighbor"
	"manetkit/internal/testbed"
)

func addr(s string) mnet.Addr { return mnet.MustParseAddr(s) }

// buildLinks constructs a link table for MPR selection unit tests: self's
// symmetric neighbours and, per neighbour, the 2-hop nodes it reaches.
func buildLinks(nbs map[string][]string, wills map[string]uint8) *neighbor.Table {
	t := neighbor.NewTable()
	for nb, reaches := range nbs {
		var two []mnet.Addr
		for _, r := range reaches {
			two = append(two, addr(r))
		}
		w := uint8(3)
		if wills != nil {
			if v, ok := wills[nb]; ok {
				w = v
			}
		}
		t.Observe(addr(nb), true, w, two, testbed.Epoch)
	}
	return t
}

func TestGreedyCoversAllTwoHop(t *testing.T) {
	self := addr("10.0.0.1")
	links := buildLinks(map[string][]string{
		"10.0.0.2": {"10.0.1.1", "10.0.1.2"},
		"10.0.0.3": {"10.0.1.2", "10.0.1.3"},
		"10.0.0.4": {"10.0.1.3"},
	}, nil)
	sel := NewGreedyCalculator().Select(self, links)
	covered := make(map[mnet.Addr]bool)
	th := links.TwoHopSet(self)
	for _, s := range sel {
		for dst, vias := range th {
			for _, v := range vias {
				if v == s {
					covered[dst] = true
				}
			}
		}
	}
	if len(covered) != len(th) {
		t.Fatalf("selection %v covers %d/%d 2-hop nodes", sel, len(covered), len(th))
	}
}

func TestGreedyPicksSoleVia(t *testing.T) {
	self := addr("10.0.0.1")
	links := buildLinks(map[string][]string{
		"10.0.0.2": {"10.0.1.1"},
		"10.0.0.3": {"10.0.1.1", "10.0.1.2"}, // 10.0.1.2 only via n3
	}, nil)
	sel := NewGreedyCalculator().Select(self, links)
	found := false
	for _, s := range sel {
		if s == addr("10.0.0.3") {
			found = true
		}
	}
	if !found {
		t.Fatalf("sole-via neighbour not selected: %v", sel)
	}
}

func TestGreedySkipsWillNever(t *testing.T) {
	self := addr("10.0.0.1")
	links := buildLinks(map[string][]string{
		"10.0.0.2": {"10.0.1.1"},
		"10.0.0.3": {"10.0.1.1"},
	}, map[string]uint8{"10.0.0.2": 0})
	sel := NewGreedyCalculator().Select(self, links)
	if len(sel) != 1 || sel[0] != addr("10.0.0.3") {
		t.Fatalf("selection = %v (must avoid WILL_NEVER)", sel)
	}
}

func TestGreedySelectionIsMinimalish(t *testing.T) {
	// A star where one neighbour covers everything: selection should be 1.
	self := addr("10.0.0.1")
	links := buildLinks(map[string][]string{
		"10.0.0.2": {"10.0.1.1", "10.0.1.2", "10.0.1.3"},
		"10.0.0.3": {"10.0.1.1"},
		"10.0.0.4": {"10.0.1.2"},
	}, nil)
	sel := NewGreedyCalculator().Select(self, links)
	if len(sel) != 1 || sel[0] != addr("10.0.0.2") {
		t.Fatalf("selection = %v, want just the hub", sel)
	}
}

func TestPowerAwarePrefersHighBattery(t *testing.T) {
	self := addr("10.0.0.1")
	links := buildLinks(map[string][]string{
		"10.0.0.2": {"10.0.1.1", "10.0.1.2"}, // big coverage, low battery
		"10.0.0.3": {"10.0.1.1"},             // high battery
		"10.0.0.4": {"10.0.1.2"},             // high battery
	}, map[string]uint8{"10.0.0.2": 1, "10.0.0.3": 7, "10.0.0.4": 7})
	greedy := NewGreedyCalculator().Select(self, links)
	power := NewPowerAwareCalculator().Select(self, links)
	if len(greedy) != 1 || greedy[0] != addr("10.0.0.2") {
		t.Fatalf("greedy = %v", greedy)
	}
	if len(power) != 2 {
		t.Fatalf("power-aware = %v, want the two high-battery relays", power)
	}
	for _, a := range power {
		if a == addr("10.0.0.2") {
			t.Fatalf("power-aware picked the drained relay: %v", power)
		}
	}
}

func TestSelectionCoverageProperty(t *testing.T) {
	// For random 2-hop topologies, the greedy selection always covers every
	// 2-hop node reachable via a willing relay.
	f := func(seed int64) bool {
		rng := newRand(seed)
		links := neighbor.NewTable()
		self := addr("10.0.0.1")
		nNbs := 2 + rng.Intn(6)
		for i := 0; i < nNbs; i++ {
			nb := mnet.AddrFrom(0x0a000002 + uint32(i))
			var two []mnet.Addr
			for j := 0; j < rng.Intn(5); j++ {
				two = append(two, mnet.AddrFrom(0x0a000100+uint32(rng.Intn(8))))
			}
			links.Observe(nb, true, uint8(1+rng.Intn(7)), two, testbed.Epoch)
		}
		sel := NewGreedyCalculator().Select(self, links)
		selSet := make(map[mnet.Addr]bool)
		for _, s := range sel {
			selSet[s] = true
		}
		for dst, vias := range links.TwoHopSet(self) {
			covered := false
			for _, v := range vias {
				if selSet[v] {
					covered = true
					break
				}
			}
			if !covered {
				_ = dst
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// deployMPRs builds a cluster with an MPR CF per node.
func deployMPRs(t *testing.T, n int) (*testbed.Cluster, []*MPR) {
	t.Helper()
	c, err := testbed.New(n, testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ms := make([]*MPR, n)
	for i, node := range c.Nodes {
		ms[i] = New("", Config{HelloInterval: time.Second})
		if err := node.Mgr.Deploy(ms[i].Protocol()); err != nil {
			t.Fatal(err)
		}
		if err := ms[i].Protocol().Start(); err != nil {
			t.Fatal(err)
		}
	}
	return c, ms
}

func TestMPRConvergenceOnLine(t *testing.T) {
	c, ms := deployMPRs(t, 3)
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(8 * time.Second)

	// Ends select the middle node as their (only possible) relay.
	for _, i := range []int{0, 2} {
		sel := ms[i].State().Selected()
		if len(sel) != 1 || sel[0] != c.Nodes[1].Addr {
			t.Fatalf("node %d selected %v", i, sel)
		}
	}
	// Middle node knows both ends selected it.
	selectors := ms[1].State().Selectors()
	if len(selectors) != 2 {
		t.Fatalf("middle selectors = %v", selectors)
	}
	// Middle node has no 2-hop nodes (line of 3), so selects nobody.
	if sel := ms[1].State().Selected(); len(sel) != 0 {
		t.Fatalf("middle selected %v", sel)
	}
}

func TestMPRChangeEventEmitted(t *testing.T) {
	c, _ := deployMPRs(t, 3)
	var mu sync.Mutex
	var payloads []*event.MPRPayload
	c.Nodes[0].Mgr.SubscribeContext(event.MPRChange, func(ev *event.Event) {
		mu.Lock()
		payloads = append(payloads, ev.MPR)
		mu.Unlock()
	})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(8 * time.Second)
	mu.Lock()
	defer mu.Unlock()
	if len(payloads) == 0 {
		t.Fatal("no MPR_CHANGE emitted")
	}
	last := payloads[len(payloads)-1]
	if len(last.Selected) != 1 || last.Selected[0] != c.Nodes[1].Addr {
		t.Fatalf("final MPR payload = %+v", last)
	}
}

func TestFlooderDedupAndSelectorGate(t *testing.T) {
	m := New("", Config{})
	f := m.Flooder()
	orig := addr("10.0.0.9")
	prev := addr("10.0.0.2")
	now := testbed.Epoch

	// prev has not selected us: no forwarding.
	if f.ShouldForward(orig, 1, prev, now) {
		t.Fatal("forwarded without being prev's MPR")
	}
	// Mark prev as a selector.
	m.State().mu.Lock()
	m.State().selectors[prev] = true
	m.State().mu.Unlock()
	if !f.ShouldForward(orig, 2, prev, now) {
		t.Fatal("selector's flood not forwarded")
	}
	// Duplicate suppressed.
	if f.ShouldForward(orig, 2, prev, now) {
		t.Fatal("duplicate forwarded")
	}
	// Seen() pre-marks our own floods.
	f.Seen(orig, 3, now)
	if f.ShouldForward(orig, 3, prev, now) {
		t.Fatal("own flood forwarded back")
	}
}

func TestWillingnessFollowsBattery(t *testing.T) {
	c, ms := deployMPRs(t, 1)
	node := c.Nodes[0]
	// Fake POWER_STATUS events through a co-deployed sensor protocol.
	sensor := newSensorProto(t, node)
	sensor.Emit(&event.Event{Type: event.PowerStatus, Power: &event.PowerPayload{Fraction: 1.0}})
	if w := ms[0].State().Willingness(); w != 7 {
		t.Fatalf("willingness at full battery = %d", w)
	}
	sensor.Emit(&event.Event{Type: event.PowerStatus, Power: &event.PowerPayload{Fraction: 0.5}})
	if w := ms[0].State().Willingness(); w != 4 {
		t.Fatalf("willingness at half battery = %d", w)
	}
	sensor.Emit(&event.Event{Type: event.PowerStatus, Power: &event.PowerPayload{Fraction: 0.01}})
	if w := ms[0].State().Willingness(); w != 0 {
		t.Fatalf("willingness when flat = %d", w)
	}
}

func TestSetCalculatorSwapsComponent(t *testing.T) {
	c, ms := deployMPRs(t, 1)
	_ = c
	m := ms[0]
	if m.CalculatorName() != "mpr-calculator" {
		t.Fatalf("initial calculator = %q", m.CalculatorName())
	}
	if err := m.SetCalculator(NewPowerAwareCalculator()); err != nil {
		t.Fatal(err)
	}
	if m.CalculatorName() != "mpr-calculator-power" {
		t.Fatalf("calculator after swap = %q", m.CalculatorName())
	}
	// The CF reflects the swap.
	if _, ok := m.Protocol().CF().Plug("mpr-calculator-power"); !ok {
		t.Fatal("new calculator not plugged into CF")
	}
	if _, ok := m.Protocol().CF().Plug("mpr-calculator"); ok {
		t.Fatal("old calculator still plugged")
	}
}

// newSensorProto deploys a minimal unit providing POWER_STATUS on the node.
func newSensorProto(t *testing.T, node *testbed.Node) *core.Protocol {
	t.Helper()
	p := core.NewProtocol("fake-sensor")
	p.SetTuple(event.Tuple{Provided: []event.Type{event.PowerStatus}})
	if err := node.Mgr.Deploy(p); err != nil {
		t.Fatal(err)
	}
	return p
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestGreedySelectionTable pins the selection heuristic's edge cases:
// deterministic tie-breaking, isolated neighbourhoods and willingness
// filtering interacting with the mandatory sole-via step.
func TestGreedySelectionTable(t *testing.T) {
	cases := []struct {
		name  string
		nbs   map[string][]string
		wills map[string]uint8
		want  []string
	}{
		{
			name: "equal score breaks ties by lowest address",
			nbs: map[string][]string{
				"10.0.0.9": {"10.0.1.1"},
				"10.0.0.2": {"10.0.1.1"},
				"10.0.0.5": {"10.0.1.1"},
			},
			want: []string{"10.0.0.2"},
		},
		{
			name: "equal coverage prefers higher willingness",
			nbs: map[string][]string{
				"10.0.0.2": {"10.0.1.1"},
				"10.0.0.3": {"10.0.1.1"},
			},
			wills: map[string]uint8{"10.0.0.2": 3, "10.0.0.3": 6},
			want:  []string{"10.0.0.3"},
		},
		{
			name: "coverage dominates willingness in the default scorer",
			nbs: map[string][]string{
				"10.0.0.2": {"10.0.1.1", "10.0.1.2"},
				"10.0.0.3": {"10.0.1.1"},
			},
			wills: map[string]uint8{"10.0.0.2": 1, "10.0.0.3": 7},
			want:  []string{"10.0.0.2"},
		},
		{
			name: "isolated neighbours need no relays",
			nbs: map[string][]string{
				"10.0.0.2": {},
				"10.0.0.3": {},
			},
			want: []string{},
		},
		{
			name: "no selection at all without neighbours",
			nbs:  map[string][]string{},
			want: []string{},
		},
		{
			name: "two-hop node reachable only via unwilling relays is skipped",
			nbs: map[string][]string{
				"10.0.0.2": {"10.0.1.1"},
				"10.0.0.3": {"10.0.1.1"},
			},
			wills: map[string]uint8{"10.0.0.2": 0, "10.0.0.3": 0},
			want:  []string{},
		},
		{
			name: "sole-via step ignores WILL_NEVER alternatives",
			nbs: map[string][]string{
				"10.0.0.2": {"10.0.1.1"},
				"10.0.0.3": {"10.0.1.1"},
			},
			wills: map[string]uint8{"10.0.0.2": 0, "10.0.0.3": 3},
			want:  []string{"10.0.0.3"},
		},
		{
			name: "mandatory sole-via beats a better-scoring rival",
			nbs: map[string][]string{
				"10.0.0.2": {"10.0.1.1", "10.0.1.2", "10.0.1.3"},
				"10.0.0.3": {"10.0.1.4"},
			},
			wills: map[string]uint8{"10.0.0.2": 7, "10.0.0.3": 1},
			want:  []string{"10.0.0.2", "10.0.0.3"},
		},
	}
	self := addr("10.0.0.1")
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sel := NewGreedyCalculator().Select(self, buildLinks(tc.nbs, tc.wills))
			got := make([]string, len(sel))
			for i, a := range sel {
				got[i] = a.String()
			}
			want := tc.want
			if len(got) != len(want) {
				t.Fatalf("Select() = %v, want %v", got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Select() = %v, want %v", got, want)
				}
			}
		})
	}
}
