package mpr

import (
	"fmt"
	"testing"

	"manetkit/internal/mnet"
	"manetkit/internal/neighbor"
	"manetkit/internal/testbed"
)

// benchLinks builds a link table with nbs symmetric neighbours, each
// reaching twoHopPer distinct 2-hop nodes (with 50% overlap between
// consecutive neighbours).
func benchLinks(nbs, twoHopPer int) *neighbor.Table {
	t := neighbor.NewTable()
	for i := 0; i < nbs; i++ {
		nb := mnet.AddrFrom(0x0a000002 + uint32(i))
		var two []mnet.Addr
		for j := 0; j < twoHopPer; j++ {
			two = append(two, mnet.AddrFrom(0x0a010000+uint32(i*twoHopPer/2+j)))
		}
		t.Observe(nb, true, uint8(1+i%7), two, testbed.Epoch)
	}
	return t
}

func benchmarkSelect(b *testing.B, calc Calculator, nbs, twoHopPer int) {
	b.Helper()
	self := mnet.AddrFrom(0x0a000001)
	links := benchLinks(nbs, twoHopPer)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := calc.Select(self, links); len(got) == 0 {
			b.Fatal("empty selection")
		}
	}
}

func BenchmarkGreedySelect(b *testing.B) {
	for _, size := range []struct{ nbs, two int }{{8, 4}, {20, 8}, {50, 10}} {
		b.Run(fmt.Sprintf("n%d-t%d", size.nbs, size.two), func(b *testing.B) {
			benchmarkSelect(b, NewGreedyCalculator(), size.nbs, size.two)
		})
	}
}

func BenchmarkPowerAwareSelect(b *testing.B) {
	benchmarkSelect(b, NewPowerAwareCalculator(), 20, 8)
}

func BenchmarkFlooderShouldForward(b *testing.B) {
	m := New("", Config{})
	f := m.Flooder()
	prev := mnet.AddrFrom(0x0a000002)
	m.State().mu.Lock()
	m.State().selectors[prev] = true
	m.State().mu.Unlock()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ShouldForward(mnet.AddrFrom(uint32(0x0a010000+i)), uint16(i), prev, testbed.Epoch)
	}
}
