package mpr

import (
	"sort"

	"manetkit/internal/kernel"
	"manetkit/internal/mnet"
	"manetkit/internal/neighbor"
)

// GreedyCalculator is the default relay-selection component: the RFC 3626
// heuristic. It first picks neighbours that are the sole path to some
// 2-hop node, then repeatedly picks the neighbour covering the most
// uncovered 2-hop nodes (willingness, then degree, as tie-breakers).
type GreedyCalculator struct {
	base *kernel.Base
}

var _ Calculator = (*GreedyCalculator)(nil)

// NewGreedyCalculator returns the default calculator under the component
// name "mpr-calculator".
func NewGreedyCalculator() *GreedyCalculator {
	return &GreedyCalculator{base: kernel.NewBase("mpr-calculator")}
}

func (g *GreedyCalculator) Name() string                     { return g.base.Name() }
func (g *GreedyCalculator) Provided() map[string]any         { return g.base.Provided() }
func (g *GreedyCalculator) ReceptacleNames() []string        { return g.base.ReceptacleNames() }
func (g *GreedyCalculator) Connect(r string, i any) error    { return g.base.Connect(r, i) }
func (g *GreedyCalculator) Disconnect(r string, i any) error { return g.base.Disconnect(r, i) }

// Select implements Calculator.
func (g *GreedyCalculator) Select(self mnet.Addr, links *neighbor.Table) []mnet.Addr {
	return greedySelect(self, links, func(n neighbor.Info, coverage int) (score float64) {
		return float64(coverage)*8 + float64(n.Willingness)
	})
}

// PowerAwareCalculator is the §5.1 variant: relay selection weighs residual
// battery (reported through willingness) above raw coverage, maximising the
// lifetime of relay paths at some cost in MPR-set size.
type PowerAwareCalculator struct {
	base *kernel.Base
}

var _ Calculator = (*PowerAwareCalculator)(nil)

// NewPowerAwareCalculator returns the power-aware calculator under the
// component name "mpr-calculator-power".
func NewPowerAwareCalculator() *PowerAwareCalculator {
	return &PowerAwareCalculator{base: kernel.NewBase("mpr-calculator-power")}
}

func (p *PowerAwareCalculator) Name() string                     { return p.base.Name() }
func (p *PowerAwareCalculator) Provided() map[string]any         { return p.base.Provided() }
func (p *PowerAwareCalculator) ReceptacleNames() []string        { return p.base.ReceptacleNames() }
func (p *PowerAwareCalculator) Connect(r string, i any) error    { return p.base.Connect(r, i) }
func (p *PowerAwareCalculator) Disconnect(r string, i any) error { return p.base.Disconnect(r, i) }

// Select implements Calculator: willingness (battery) dominates coverage.
func (p *PowerAwareCalculator) Select(self mnet.Addr, links *neighbor.Table) []mnet.Addr {
	return greedySelect(self, links, func(n neighbor.Info, coverage int) (score float64) {
		return float64(n.Willingness)*16 + float64(coverage)
	})
}

// greedySelect runs coverage-greedy MPR selection with a pluggable scoring
// function.
func greedySelect(self mnet.Addr, links *neighbor.Table, score func(neighbor.Info, int) float64) []mnet.Addr {
	twoHop := links.TwoHopSet(self) // 2-hop dst -> candidate vias
	syms := links.Symmetric()
	info := make(map[mnet.Addr]neighbor.Info, len(syms))
	for _, s := range syms {
		info[s.Addr] = s
	}

	uncovered := make(map[mnet.Addr]bool, len(twoHop))
	for dst := range twoHop {
		uncovered[dst] = true
	}
	selected := make(map[mnet.Addr]bool)

	cover := func(via mnet.Addr) {
		selected[via] = true
		for dst, vias := range twoHop {
			for _, v := range vias {
				if v == via {
					delete(uncovered, dst)
					break
				}
			}
		}
	}

	// Mandatory: sole-via 2-hop nodes (skipping WILL_NEVER relays).
	for dst, vias := range twoHop {
		usable := vias[:0:0]
		for _, v := range vias {
			if info[v].Willingness > 0 {
				usable = append(usable, v)
			}
		}
		if len(usable) == 1 && uncovered[dst] {
			cover(usable[0])
		}
	}

	// Greedy coverage.
	for len(uncovered) > 0 {
		type cand struct {
			addr     mnet.Addr
			coverage int
			score    float64
		}
		var best *cand
		for _, s := range syms {
			if selected[s.Addr] || s.Willingness == 0 {
				continue
			}
			cov := 0
			for dst := range uncovered {
				for _, v := range twoHop[dst] {
					if v == s.Addr {
						cov++
						break
					}
				}
			}
			if cov == 0 {
				continue
			}
			c := &cand{addr: s.Addr, coverage: cov, score: score(s, cov)}
			if best == nil || c.score > best.score ||
				(c.score == best.score && c.addr.Less(best.addr)) {
				best = c
			}
		}
		if best == nil {
			break // remaining 2-hop nodes unreachable via willing relays
		}
		cover(best.addr)
	}

	out := make([]mnet.Addr, 0, len(selected))
	for a := range selected {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
