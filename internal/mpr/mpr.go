// Package mpr implements the Multipoint Relaying ManetProtocol of §5.1: a
// CFS unit responsible for link sensing and relay selection, whose
// forwarding service other protocols (OLSR's topology flooding, DYMO's
// optimised-flooding variant) use to curb broadcast overhead.
//
// The MPR set is computed by a pluggable Calculator component — the default
// is the greedy 2-hop-coverage heuristic of RFC 3626; the power-aware
// variant (Mahfoudh & Minet) swaps in a calculator that weighs residual
// battery, together with a hello handler that derives link costs from
// transmission power.
package mpr

import (
	"sort"
	"sync"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/event"
	"manetkit/internal/kernel"
	"manetkit/internal/metrics"
	"manetkit/internal/mnet"
	"manetkit/internal/neighbor"
	"manetkit/internal/packetbb"
)

// UnitName is the MPR CF's default unit name.
const UnitName = "mpr"

// Calculator is the pluggable relay-selection component.
type Calculator interface {
	kernel.Component
	// Select computes the MPR set for self given the current link state.
	Select(self mnet.Addr, links *neighbor.Table) []mnet.Addr
}

// Config parameterises the MPR CF.
type Config struct {
	// HelloInterval is the beacon period (default 2s).
	HelloInterval time.Duration
	// Jitter is the fractional beacon jitter (default 0.1).
	Jitter float64
	// HoldFactor multiplies HelloInterval into the neighbour hold time
	// (default 3.5).
	HoldFactor float64
	// Willingness is the initial advertised relay willingness (default 3);
	// it is updated dynamically from POWER_STATUS context events, the
	// paper's battery-driven willingness metric (§5.1).
	Willingness uint8
	// DupHold is how long flooding duplicates are remembered (default 30s).
	DupHold time.Duration
}

func (c *Config) fill() {
	if c.HelloInterval <= 0 {
		c.HelloInterval = 2 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.1
	}
	if c.HoldFactor <= 0 {
		c.HoldFactor = 3.5
	}
	if c.Willingness == 0 {
		c.Willingness = 3
	}
	if c.DupHold <= 0 {
		c.DupHold = 30 * time.Second
	}
}

// State is the MPR CF's S element: link set, 2-hop set, relay selections in
// both directions, and the flooding duplicate set.
type State struct {
	Links *neighbor.Table

	mu          sync.Mutex
	selected    map[mnet.Addr]bool // neighbours we chose as relays
	selectors   map[mnet.Addr]bool // neighbours that chose us
	willingness uint8
	dupes       map[dupeKey]time.Time
}

type dupeKey struct {
	orig mnet.Addr
	seq  uint16
}

// NewState returns an empty MPR state.
func NewState() *State {
	return &State{
		Links:       neighbor.NewTable(),
		selected:    make(map[mnet.Addr]bool),
		selectors:   make(map[mnet.Addr]bool),
		willingness: 3,
		dupes:       make(map[dupeKey]time.Time),
	}
}

// Selected returns the current MPR set, sorted.
func (s *State) Selected() []mnet.Addr { return s.sortedSet(&s.selected) }

// Selectors returns the neighbours that selected us, sorted.
func (s *State) Selectors() []mnet.Addr { return s.sortedSet(&s.selectors) }

func (s *State) sortedSet(m *map[mnet.Addr]bool) []mnet.Addr {
	s.mu.Lock()
	out := make([]mnet.Addr, 0, len(*m))
	for a := range *m {
		out = append(out, a)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// IsSelector reports whether nb selected us as its relay.
func (s *State) IsSelector(nb mnet.Addr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.selectors[nb]
}

// Willingness returns the node's current advertised willingness.
func (s *State) Willingness() uint8 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.willingness
}

// MPR is the Multipoint Relay CF.
type MPR struct {
	proto *core.Protocol
	state *State
	cfg   Config

	mu       sync.Mutex
	calc     Calculator
	helloSeq uint16

	// Instruments, resolved from the deployment's registry on Start; nil
	// (no-op) when the deployment carries no metrics.
	mHelloTx *metrics.Counter
	mHelloRx *metrics.Counter
}

// New builds an MPR CF (name defaults to UnitName).
func New(name string, cfg Config) *MPR {
	if name == "" {
		name = UnitName
	}
	cfg.fill()
	m := &MPR{
		proto: core.NewProtocol(name),
		state: NewState(),
		cfg:   cfg,
		calc:  NewGreedyCalculator(),
	}
	m.state.willingness = cfg.Willingness

	m.proto.SetTuple(event.Tuple{
		Required: []event.Requirement{
			{Type: event.HelloIn},
			{Type: event.PowerStatus},
		},
		Provided: []event.Type{event.HelloOut, event.NhoodChange, event.MPRChange},
	})
	if err := m.proto.SetState(core.NewStateComponent("state", m.state)); err != nil {
		panic(err)
	}
	// F element: the flooding service, callable directly by stacked
	// protocols (OLSR "uses the latter's forwarding services").
	fwd := kernel.NewBase("forward")
	fwd.Provide("IMPRFlood", &Flooder{m: m})
	if err := m.proto.SetForward(fwd); err != nil {
		panic(err)
	}
	m.proto.Provide("IMPRState", m.state)
	m.proto.Provide("IMPRFlood", &Flooder{m: m})

	if err := m.proto.CF().Insert(m.calc); err != nil {
		panic(err)
	}
	if err := m.proto.AddHandler(core.NewHandler("hello-handler", event.HelloIn, m.onHello)); err != nil {
		panic(err)
	}
	if err := m.proto.AddHandler(core.NewHandler("power-handler", event.PowerStatus, m.onPower)); err != nil {
		panic(err)
	}
	if err := m.proto.AddSource(core.NewSource("hello-gen", cfg.HelloInterval, cfg.Jitter, m.emitHello).Immediate()); err != nil {
		panic(err)
	}
	if err := m.proto.AddSource(core.NewSource("expiry-sweep", cfg.HelloInterval/2, 0, m.sweep)); err != nil {
		panic(err)
	}
	m.proto.OnStart(func(ctx *core.Context) error {
		reg := ctx.Env().Metrics()
		m.mHelloTx = reg.Counter("mpr_hello_tx")
		m.mHelloRx = reg.Counter("mpr_hello_rx")
		return nil
	})
	return m
}

// Protocol returns the MPR CF as a deployable unit.
func (m *MPR) Protocol() *core.Protocol { return m.proto }

// State returns the S element value.
func (m *MPR) State() *State { return m.state }

// Flooder returns the F element's flooding service.
func (m *MPR) Flooder() *Flooder { return &Flooder{m: m} }

// SetCalculator swaps the relay-selection component at runtime (quiescing
// the protocol) — the reconfiguration step of the power-aware variant.
func (m *MPR) SetCalculator(c Calculator) error {
	m.mu.Lock()
	old := m.calc
	m.mu.Unlock()
	if err := m.proto.Reconfigure(func() error {
		return m.proto.CF().Replace(old.Name(), c)
	}); err != nil {
		return err
	}
	m.mu.Lock()
	m.calc = c
	m.mu.Unlock()
	return nil
}

// CalculatorName returns the active calculator component's name.
func (m *MPR) CalculatorName() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.calc.Name()
}

func (m *MPR) emitHello(ctx *core.Context) {
	m.mHelloTx.Inc()
	ctx.Emit(&event.Event{
		Type: event.HelloOut,
		Msg:  m.BuildHello(ctx.Node()),
		Dst:  mnet.Broadcast,
	})
}

// BuildHello assembles the MPR beacon: the neighbour list with link-status
// TLVs plus the ATLVMPR flag on selected relays and the node's willingness.
func (m *MPR) BuildHello(self mnet.Addr) *packetbb.Message {
	st := m.state
	m.mu.Lock()
	m.helloSeq++
	seq := m.helloSeq
	m.mu.Unlock()
	msg := &packetbb.Message{
		Type:       packetbb.MsgHello,
		Originator: self,
		HopLimit:   1,
		SeqNum:     seq,
		TLVs: []packetbb.TLV{
			{Type: packetbb.TLVWillingness, Value: packetbb.U8(st.Willingness())},
		},
	}
	nbs := st.Links.Neighbors()
	if len(nbs) == 0 {
		return msg
	}
	st.mu.Lock()
	selected := make(map[mnet.Addr]bool, len(st.selected))
	for a := range st.selected {
		selected[a] = true
	}
	st.mu.Unlock()

	blk := packetbb.AddrBlock{}
	for _, nb := range nbs {
		blk.Addrs = append(blk.Addrs, nb.Addr)
	}
	for i, nb := range nbs {
		status := packetbb.LinkStatusHeard
		if nb.Status == neighbor.StatusSymmetric {
			status = packetbb.LinkStatusSymmetric
		}
		blk.TLVs = append(blk.TLVs, packetbb.AddrTLV{
			Type:       packetbb.ATLVLinkStatus,
			IndexStart: uint8(i),
			IndexStop:  uint8(i),
			Value:      packetbb.U8(status),
		})
		if selected[nb.Addr] {
			blk.TLVs = append(blk.TLVs, packetbb.AddrTLV{
				Type:       packetbb.ATLVMPR,
				IndexStart: uint8(i),
				IndexStop:  uint8(i),
			})
		}
	}
	msg.AddrBlocks = append(msg.AddrBlocks, blk)
	return msg
}

func (m *MPR) onHello(ctx *core.Context, ev *event.Event) error {
	if ev.Msg == nil {
		return nil
	}
	m.mHelloRx.Inc()
	src := ev.Msg.Originator
	if src.IsUnspecified() {
		src = ev.Src
	}
	listsUs, will, syms := neighbor.ParseHello(ev.Msg, ctx.Node())
	prev := m.state.Links.Observe(src, listsUs, will, syms, ctx.Clock().Now())

	// Did the sender select us as a relay?
	selectedUs := false
	for bi := range ev.Msg.AddrBlocks {
		blk := &ev.Msg.AddrBlocks[bi]
		for i, a := range blk.Addrs {
			if a != ctx.Node() {
				continue
			}
			if _, ok := blk.AddrTLVFor(packetbb.ATLVMPR, i); ok {
				selectedUs = true
			}
		}
	}
	m.state.mu.Lock()
	changedSel := m.state.selectors[src] != selectedUs
	if selectedUs {
		m.state.selectors[src] = true
	} else {
		delete(m.state.selectors, src)
	}
	m.state.mu.Unlock()

	cur, _ := m.state.Links.Get(src)
	if prev == 0 || prev == neighbor.StatusLost {
		ctx.Emit(&event.Event{
			Type:  event.NhoodChange,
			Nhood: &event.NhoodPayload{Kind: event.NeighborAppeared, Neighbor: src, TwoHopVia: cur.TwoHop},
		})
	} else if prev == neighbor.StatusHeard && cur.Status == neighbor.StatusSymmetric {
		ctx.Emit(&event.Event{
			Type:  event.NhoodChange,
			Nhood: &event.NhoodPayload{Kind: event.NeighborSymmetric, Neighbor: src, TwoHopVia: cur.TwoHop},
		})
	}
	m.recompute(ctx, changedSel)
	return nil
}

// onPower folds battery level into the advertised willingness — the
// "willingness metric ... factored into the relay selection process"
// (§5.1).
func (m *MPR) onPower(ctx *core.Context, ev *event.Event) error {
	if ev.Power == nil {
		return nil
	}
	w := uint8(1 + ev.Power.Fraction*6) // 1..7
	if ev.Power.Fraction <= 0.05 {
		w = 0 // WILL_NEVER when nearly flat
	}
	m.state.mu.Lock()
	m.state.willingness = w
	m.state.mu.Unlock()
	return nil
}

func (m *MPR) sweep(ctx *core.Context) {
	now := ctx.Clock().Now()
	hold := time.Duration(float64(m.cfg.HelloInterval) * m.cfg.HoldFactor)
	lost := m.state.Links.Expire(now.Add(-hold))
	for _, nb := range lost {
		m.state.mu.Lock()
		delete(m.state.selectors, nb)
		m.state.mu.Unlock()
		ctx.Emit(&event.Event{
			Type:  event.NhoodChange,
			Nhood: &event.NhoodPayload{Kind: event.NeighborLost, Neighbor: nb},
		})
	}
	m.state.Links.Drop(now.Add(-3 * hold))
	// Expire flooding duplicates.
	m.state.mu.Lock()
	for k, t := range m.state.dupes {
		if now.Sub(t) > m.cfg.DupHold {
			delete(m.state.dupes, k)
		}
	}
	m.state.mu.Unlock()
	if len(lost) > 0 {
		m.recompute(ctx, false)
	}
}

// recompute re-runs the calculator and emits MPR_CHANGE when the relay set
// (or the selector set) changed.
func (m *MPR) recompute(ctx *core.Context, selectorsChanged bool) {
	m.mu.Lock()
	calc := m.calc
	m.mu.Unlock()
	newSet := calc.Select(ctx.Node(), m.state.Links)

	m.state.mu.Lock()
	changed := len(newSet) != len(m.state.selected)
	if !changed {
		for _, a := range newSet {
			if !m.state.selected[a] {
				changed = true
				break
			}
		}
	}
	if changed {
		m.state.selected = make(map[mnet.Addr]bool, len(newSet))
		for _, a := range newSet {
			m.state.selected[a] = true
		}
	}
	m.state.mu.Unlock()

	if changed || selectorsChanged {
		ctx.Emit(&event.Event{
			Type: event.MPRChange,
			MPR:  &event.MPRPayload{Selected: m.state.Selected(), Selectors: m.state.Selectors()},
		})
	}
}

// Flooder is the MPR CF's forwarding service (IMPRFlood): optimised
// flooding in which only selected relays rebroadcast.
type Flooder struct{ m *MPR }

// ShouldForward decides whether this node relays a flooded message
// identified by (orig, seq) received from prevHop: it deduplicates and
// relays only when prevHop selected us as its MPR.
func (f *Flooder) ShouldForward(orig mnet.Addr, seq uint16, prevHop mnet.Addr, now time.Time) bool {
	st := f.m.state
	st.mu.Lock()
	key := dupeKey{orig: orig, seq: seq}
	_, dup := st.dupes[key]
	st.dupes[key] = now
	isSelector := st.selectors[prevHop]
	st.mu.Unlock()
	return !dup && isSelector
}

// Seen records (orig, seq) without a forwarding decision — originators call
// this so their own flood is not re-relayed back through them.
func (f *Flooder) Seen(orig mnet.Addr, seq uint16, now time.Time) {
	st := f.m.state
	st.mu.Lock()
	st.dupes[dupeKey{orig: orig, seq: seq}] = now
	st.mu.Unlock()
}
