// Package harness builds the paper's evaluation (§6): deployments of the
// MANETKit protocol compositions and their monolithic comparators on the
// emulated testbed, plus the measurement procedures behind Table 1 (time
// to process a message, route establishment delay), Table 2 (memory
// footprint) and the variant/concurrency ablations. cmd/mkbench and the
// top-level benchmarks drive it.
package harness

import (
	"fmt"
	"time"

	"manetkit/internal/aodv"
	"manetkit/internal/core"
	"manetkit/internal/dymo"
	"manetkit/internal/emunet"
	"manetkit/internal/mnet"
	"manetkit/internal/mono"
	"manetkit/internal/mpr"
	"manetkit/internal/neighbor"
	"manetkit/internal/olsr"
	"manetkit/internal/testbed"
	"manetkit/internal/vclock"
	"manetkit/internal/zrp"
)

// Protocol intervals used across all experiments — identical for the
// MANETKit and monolithic implementations, as the paper requires
// ("identical HELLO and Topology Change intervals, and route hold times").
const (
	HelloInterval = 2 * time.Second
	TCInterval    = 5 * time.Second
	RouteLifetime = 5 * time.Second
)

// OLSRNode is one node of the MANETKit OLSR composition.
type OLSRNode struct {
	Node *testbed.Node
	MPR  *mpr.MPR
	OLSR *olsr.OLSR
}

// DeployOLSR installs the Fig 5 composition (MPR + OLSR) on a testbed node.
func DeployOLSR(c *testbed.Cluster, node *testbed.Node) (*OLSRNode, error) {
	relay := mpr.New("", mpr.Config{HelloInterval: HelloInterval})
	o := olsr.New("", relay, olsr.Config{
		TCInterval: TCInterval,
		Clock:      c.Clock,
		FIB:        node.FIB(),
		Device:     node.Sys.NIC().Device(),
	})
	for _, u := range []*core.Protocol{relay.Protocol(), o.Protocol()} {
		if err := node.Mgr.Deploy(u); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		if err := u.Start(); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
	}
	return &OLSRNode{Node: node, MPR: relay, OLSR: o}, nil
}

// DYMONode is one node of the MANETKit DYMO composition.
type DYMONode struct {
	Node *testbed.Node
	ND   *neighbor.Detector
	DYMO *dymo.DYMO
}

// DeployDYMO installs the Fig 6 composition (Neighbour Detection + DYMO)
// on a testbed node.
func DeployDYMO(c *testbed.Cluster, node *testbed.Node) (*DYMONode, error) {
	nd := neighbor.New("", neighbor.Config{HelloInterval: HelloInterval, LinkLayerFeedback: true})
	d := dymo.New("", dymo.Config{
		RouteLifetime: RouteLifetime,
		Clock:         c.Clock,
		FIB:           node.FIB(),
		Device:        node.Sys.NIC().Device(),
	})
	for _, u := range []*core.Protocol{nd.Protocol(), d.Protocol()} {
		if err := node.Mgr.Deploy(u); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		if err := u.Start(); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
	}
	return &DYMONode{Node: node, ND: nd, DYMO: d}, nil
}

// AODVNode is one node of the MANETKit AODV composition.
type AODVNode struct {
	Node *testbed.Node
	ND   *neighbor.Detector
	AODV *aodv.AODV
}

// DeployAODV installs the on-demand composition (Neighbour Detection +
// AODV) on a testbed node.
func DeployAODV(c *testbed.Cluster, node *testbed.Node) (*AODVNode, error) {
	nd := neighbor.New("", neighbor.Config{HelloInterval: HelloInterval, LinkLayerFeedback: true})
	a := aodv.New("", nd, aodv.Config{
		RouteLifetime: RouteLifetime,
		Clock:         c.Clock,
		FIB:           node.FIB(),
		Device:        node.Sys.NIC().Device(),
	})
	for _, u := range []*core.Protocol{nd.Protocol(), a.Protocol()} {
		if err := node.Mgr.Deploy(u); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		if err := u.Start(); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
	}
	return &AODVNode{Node: node, ND: nd, AODV: a}, nil
}

// ZRPNode is one node of the MANETKit zone-routing composition.
type ZRPNode struct {
	Node *testbed.Node
	MPR  *mpr.MPR
	ZRP  *zrp.ZRP
}

// DeployZRP installs the hybrid composition (MPR + ZRP) on a testbed node.
func DeployZRP(c *testbed.Cluster, node *testbed.Node) (*ZRPNode, error) {
	relay := mpr.New("", mpr.Config{HelloInterval: HelloInterval})
	z := zrp.New("", relay, zrp.Config{
		RouteLifetime: RouteLifetime,
		Clock:         c.Clock,
		FIB:           node.FIB(),
		Device:        node.Sys.NIC().Device(),
	})
	for _, u := range []*core.Protocol{relay.Protocol(), z.Protocol()} {
		if err := node.Mgr.Deploy(u); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		if err := u.Start(); err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
	}
	return &ZRPNode{Node: node, MPR: relay, ZRP: z}, nil
}

// OLSRCluster deploys the MANETKit OLSR composition on every node of a
// fresh n-node cluster.
func OLSRCluster(n int) (*testbed.Cluster, []*OLSRNode, error) {
	c, err := testbed.New(n, testbed.Options{})
	if err != nil {
		return nil, nil, err
	}
	nodes := make([]*OLSRNode, n)
	for i, node := range c.Nodes {
		nodes[i], err = DeployOLSR(c, node)
		if err != nil {
			c.Close()
			return nil, nil, err
		}
	}
	return c, nodes, nil
}

// DYMOCluster deploys the MANETKit DYMO composition on every node.
func DYMOCluster(n int) (*testbed.Cluster, []*DYMONode, error) {
	c, err := testbed.New(n, testbed.Options{})
	if err != nil {
		return nil, nil, err
	}
	nodes := make([]*DYMONode, n)
	for i, node := range c.Nodes {
		nodes[i], err = DeployDYMO(c, node)
		if err != nil {
			c.Close()
			return nil, nil, err
		}
	}
	return c, nodes, nil
}

// MonoCluster is an emulated network of monolithic protocol instances.
type MonoCluster struct {
	Clock *vclock.Virtual
	Net   *emunet.Network
	Addrs []mnet.Addr
	OLSR  []*mono.OLSR
	DYMO  []*mono.DYMO
}

// MonoOLSRCluster builds n monolithic OLSR nodes (unlinked).
func MonoOLSRCluster(n int) (*MonoCluster, error) {
	mc, err := monoBase(n)
	if err != nil {
		return nil, err
	}
	for _, a := range mc.Addrs {
		nic, _ := mc.Net.NIC(a)
		o := mono.NewOLSR(nic, mc.Clock, mono.OLSRConfig{HelloInterval: HelloInterval, TCInterval: TCInterval})
		o.Start()
		mc.OLSR = append(mc.OLSR, o)
	}
	return mc, nil
}

// MonoDYMOCluster builds n monolithic DYMO nodes (unlinked).
func MonoDYMOCluster(n int) (*MonoCluster, error) {
	mc, err := monoBase(n)
	if err != nil {
		return nil, err
	}
	for _, a := range mc.Addrs {
		nic, _ := mc.Net.NIC(a)
		d := mono.NewDYMO(nic, mc.Clock, mono.DYMOConfig{RouteLifetime: RouteLifetime})
		d.Start()
		mc.DYMO = append(mc.DYMO, d)
	}
	return mc, nil
}

func monoBase(n int) (*MonoCluster, error) {
	clk := vclock.NewVirtual(testbed.Epoch)
	net := emunet.New(clk, 1)
	mc := &MonoCluster{Clock: clk, Net: net, Addrs: emunet.Addrs(n)}
	for _, a := range mc.Addrs {
		if _, err := net.Attach(a); err != nil {
			return nil, err
		}
	}
	return mc, nil
}

// Line links the mono cluster in a chain.
func (mc *MonoCluster) Line() error {
	for i := 0; i+1 < len(mc.Addrs); i++ {
		if err := mc.Net.SetLink(mc.Addrs[i], mc.Addrs[i+1], emunet.DefaultQuality()); err != nil {
			return err
		}
	}
	return nil
}

// Close stops all protocol instances.
func (mc *MonoCluster) Close() {
	for _, o := range mc.OLSR {
		o.Stop()
	}
	for _, d := range mc.DYMO {
		d.Stop()
	}
}
