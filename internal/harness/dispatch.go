package harness

import (
	"fmt"
	"testing"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/event"
	"manetkit/internal/mnet"
	"manetkit/internal/vclock"
)

// Dispatch holds the steady-state event-path microbenchmarks: the cost of
// one framework hop with observability disabled, in nanoseconds and heap
// allocations per emitted event. The alloc counts are deterministic — the
// RCU dispatch plans make the steady-state path allocation-free, and CI
// gates on them staying exactly zero.
type Dispatch struct {
	DirectNs     float64 // provider -> requirer, one handler
	DirectAllocs float64
	ChainNs      float64 // provider -> interposer -> requirer
	ChainAllocs  float64
}

// Print renders the measurements.
func (d Dispatch) Print() {
	fmt.Printf("%-34s %10s %12s\n", "event path (observability off)", "ns/op", "allocs/op")
	fmt.Printf("%-34s %10.1f %12.0f\n", "direct (provider->requirer)", d.DirectNs, d.DirectAllocs)
	fmt.Printf("%-34s %10.1f %12.0f\n", "interposed (one hop inserted)", d.ChainNs, d.ChainAllocs)
}

// MeasureDispatch benchmarks the bare framework event path, mirroring the
// repo-level BenchmarkEventRouting workload so mkbench and `go test -bench`
// gate the same numbers.
func MeasureDispatch() (Dispatch, error) {
	var d Dispatch
	var err error
	d.DirectNs, d.DirectAllocs, err = benchEmit(false)
	if err != nil {
		return d, err
	}
	d.ChainNs, d.ChainAllocs, err = benchEmit(true)
	return d, err
}

func benchEmit(interposed bool) (nsPerOp, allocsPerOp float64, err error) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	mgr, err := core.NewManager(core.Config{
		Node:  mnet.AddrFrom(0x0a000001),
		Clock: vclock.NewVirtual(epoch),
	})
	if err != nil {
		return 0, 0, err
	}
	defer mgr.Close()

	src := core.NewProtocol("src")
	src.SetTuple(event.Tuple{Provided: []event.Type{event.HelloIn}})
	units := []*core.Protocol{src}
	if interposed {
		mid := core.NewProtocol("mid")
		mid.SetTuple(event.Tuple{
			Provided: []event.Type{event.HelloIn},
			Required: []event.Requirement{{Type: event.HelloIn}},
		})
		if err := mid.AddHandler(core.NewHandler("fwd", event.HelloIn,
			func(ctx *core.Context, ev *event.Event) error {
				ctx.Emit(ev)
				return nil
			})); err != nil {
			return 0, 0, err
		}
		units = append(units, mid)
	}
	sink := core.NewProtocol("sink")
	sink.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.HelloIn}}})
	if err := sink.AddHandler(core.NewHandler("h", event.HelloIn,
		func(*core.Context, *event.Event) error { return nil })); err != nil {
		return 0, 0, err
	}
	units = append(units, sink)
	for _, u := range units {
		if err := mgr.Deploy(u); err != nil {
			return 0, 0, err
		}
	}

	ev := &event.Event{Type: event.HelloIn}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := src.Emit(ev); err != nil {
				b.Fatal(err)
			}
		}
	})
	return float64(res.NsPerOp()), float64(res.AllocsPerOp()), nil
}
