package harness

// Chaos scenarios: scripted fault schedules (emunet.FaultPlan) driven
// against full protocol deployments on the virtual clock, with the
// invariant suite (internal/invariant) asserting that routing state stays
// sane. This is the executable form of the paper's robustness claim: the
// compositions keep routing — loop-free, live, symmetric — through
// partitions, crashes, frame corruption and even mid-run coordinated
// reconfiguration (§4.5, §7).
//
// Everything runs on the shared virtual clock with seeded randomness, so a
// scenario is a pure function of (config, seed): two runs with the same
// ChaosConfig produce byte-identical ChaosReports. The determinism tests
// and `mkemu -chaos` both rely on that.

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"manetkit/internal/coord"
	"manetkit/internal/core"
	"manetkit/internal/emunet"
	"manetkit/internal/event"
	"manetkit/internal/inspect"
	"manetkit/internal/invariant"
	"manetkit/internal/metrics"
	"manetkit/internal/mnet"
	"manetkit/internal/telemetry"
	"manetkit/internal/testbed"
	"manetkit/internal/trace"
)

// Chaos scenario names accepted by RunChaos.
const (
	ScenarioPartition  = "partition"  // network splits during a TC flood, then heals
	ScenarioCrash      = "crash"      // a relay node crashes mid route discovery and restarts with state loss
	ScenarioCorruption = "corruption" // frames are corrupted, duplicated and reordered in flight
	ScenarioReconfig   = "reconfig"   // coordinated reconfiguration lands while the topology churns
	ScenarioStorm      = "storm"      // all of the above in one run
)

// Scenarios lists the chaos scenarios in a stable order.
func Scenarios() []string {
	return []string{ScenarioPartition, ScenarioCrash, ScenarioCorruption, ScenarioReconfig, ScenarioStorm}
}

// ChaosProtos lists the protocol families RunChaos can deploy.
func ChaosProtos() []string { return Families() }

// ChaosConfig parameterises one chaos run.
type ChaosConfig struct {
	// Proto is the composition to deploy: olsr, dymo, aodv or zrp.
	Proto string
	// Scenario is one of the Scenario* constants (default storm).
	Scenario string
	// Nodes is the cluster size on a line topology (default 5, min 4).
	Nodes int
	// Seed drives both the medium loss process and the fault plan
	// (default 1).
	Seed int64
	// Traffic is the number of end-to-end data packets sent from the
	// first node to the last across the fault window (default 7).
	Traffic int
	// Tracer, when non-nil, records structured spans from the whole run
	// (mkemu -trace). It does not perturb the report: span recording is
	// passive and the fingerprint covers only counters.
	Tracer *trace.Tracer
	// Telemetry, when non-nil, streams the run live: engine epochs, rewire
	// journal entries, health transitions (checked every 5s of virtual
	// time), metric deltas (sampled every 2s) and — when Tracer is also
	// set — spans. The bus's epoch must be testbed.Epoch. Attaching a bus
	// adds periodic health checks, so the report's final Health covers the
	// last window rather than the whole run; everything fingerprinted
	// stays untouched.
	Telemetry *telemetry.Bus
}

func (cfg *ChaosConfig) fill() error {
	if cfg.Scenario == "" {
		cfg.Scenario = ScenarioStorm
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = 5
	}
	if cfg.Nodes < 4 {
		return fmt.Errorf("harness: chaos needs at least 4 nodes, got %d", cfg.Nodes)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Traffic == 0 {
		cfg.Traffic = 7
	}
	switch cfg.Proto {
	case "olsr", "dymo", "aodv", "zrp":
	default:
		return fmt.Errorf("harness: unknown chaos proto %q", cfg.Proto)
	}
	switch cfg.Scenario {
	case ScenarioPartition, ScenarioCrash, ScenarioCorruption, ScenarioReconfig, ScenarioStorm:
	default:
		return fmt.Errorf("harness: unknown chaos scenario %q", cfg.Scenario)
	}
	return nil
}

// ChaosReport is the deterministic outcome of one chaos run.
type ChaosReport struct {
	Proto    string
	Scenario string
	Seed     int64
	Nodes    int

	// Sent and Delivered count the end-to-end data workload.
	Sent      int
	Delivered int

	// Medium are the emulated-medium counters, including injected faults.
	Medium emunet.Stats
	// FaultLog is the injector's timestamped event log.
	FaultLog []string
	// TapFrames is how many control frames the sequence watcher decoded.
	TapFrames uint64
	// Reconfigured reports whether the coordinated reconfiguration
	// committed (reconfig/storm scenarios only).
	Reconfigured bool

	// Metrics is the cluster-wide counter snapshot at the end of the run
	// (framework, medium and protocol counters). Counters are deterministic
	// under the virtual clock, so they are part of the fingerprint; gauges
	// and wall-time histograms are deliberately excluded.
	Metrics map[string]uint64

	// Violations are the snapshot-invariant breaches found after the
	// convergence bound; SeqViolations are live monotonic-sequence
	// breaches observed during the run. Both empty on a healthy run.
	Violations    []invariant.Violation
	SeqViolations []invariant.Violation

	// Arch is the architecture meta-model snapshot at the end of the run
	// (mkemu -graph; uploaded as a CI artifact). Deliberately outside the
	// fingerprint: it is itself covered by the snapshot determinism tests.
	Arch inspect.Snapshot
	// Health is the final watchdog report over queues, dispatch progress,
	// route staleness and neighbour churn.
	Health inspect.Report
	// Journal is the rewire journal of the whole run: every deploy and the
	// coordinated reconfiguration's sniffer insertion appear as timestamped
	// snapshot diffs.
	Journal []inspect.Entry
}

// OK reports whether every invariant held.
func (r *ChaosReport) OK() bool {
	return len(r.Violations) == 0 && len(r.SeqViolations) == 0
}

// Fingerprint digests every deterministic field of the report; two runs
// with the same ChaosConfig must produce equal fingerprints.
func (r *ChaosReport) Fingerprint() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%s/%d/%d|sent=%d got=%d|%+v|tap=%d|reconf=%v\n",
		r.Proto, r.Scenario, r.Seed, r.Nodes, r.Sent, r.Delivered, r.Medium,
		r.TapFrames, r.Reconfigured)
	for _, l := range r.FaultLog {
		fmt.Fprintln(h, l)
	}
	for _, k := range sortedMetricKeys(r.Metrics) {
		fmt.Fprintf(h, "metric %s=%d\n", k, r.Metrics[k])
	}
	for _, v := range r.Violations {
		fmt.Fprintln(h, v.String())
	}
	for _, v := range r.SeqViolations {
		fmt.Fprintln(h, v.String())
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Summary renders the report for humans (mkemu -chaos).
func (r *ChaosReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos %s/%s: %d nodes, seed %d\n", r.Proto, r.Scenario, r.Nodes, r.Seed)
	fmt.Fprintf(&b, "traffic: %d/%d data packets delivered end-to-end\n", r.Delivered, r.Sent)
	fmt.Fprintf(&b, "medium:  %d tx, %d rx, %d lost, %d corrupted, %d duplicated, %d reordered\n",
		r.Medium.TxFrames, r.Medium.RxFrames, r.Medium.DroppedLoss,
		r.Medium.Corrupted, r.Medium.Duplicated, r.Medium.Reordered)
	for _, l := range r.FaultLog {
		fmt.Fprintf(&b, "fault:   %s\n", l)
	}
	if r.Reconfigured {
		fmt.Fprintf(&b, "reconfig: coordinated sniffer deployment committed on all nodes\n")
	}
	if len(r.Metrics) > 0 {
		fmt.Fprintf(&b, "metrics:\n")
		for _, k := range sortedMetricKeys(r.Metrics) {
			fmt.Fprintf(&b, "  %-28s %d\n", k, r.Metrics[k])
		}
	}
	fmt.Fprintf(&b, "invariants: %d control frames watched, %d snapshot + %d live violations\n",
		r.TapFrames, len(r.Violations), len(r.SeqViolations))
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "VIOLATION: %s\n", v.String())
	}
	for _, v := range r.SeqViolations {
		fmt.Fprintf(&b, "VIOLATION: %s\n", v.String())
	}
	if r.OK() {
		fmt.Fprintf(&b, "all invariants held\n")
	}
	return b.String()
}

// sortedMetricKeys returns the counter names in stable (sorted) order so
// the fingerprint and summary are deterministic.
func sortedMetricKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// RunChaos executes one scripted-fault scenario and checks the invariant
// suite after the convergence bound. The returned report is deterministic:
// same config, same report.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	journal := inspect.NewJournal(testbed.Epoch)
	c, err := testbed.New(cfg.Nodes, testbed.Options{
		Seed: cfg.Seed, Metrics: reg, Tracer: cfg.Tracer, Journal: journal,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.Line(); err != nil {
		return nil, err
	}

	monitor := inspect.NewMonitor(testbed.Epoch, reg, inspect.MonitorConfig{})

	// Streaming telemetry: every source feeds the bus, and two virtual-time
	// loops (metric sampling, health checks) pace the continuous streams.
	// All of it runs on the clock goroutine, so the recorded streams are as
	// deterministic as the run itself. Attached before the deploys so the
	// journal and span streams cover the deployment churn too.
	var sampler *telemetry.Sampler
	if cfg.Telemetry != nil {
		b := cfg.Telemetry
		telemetry.AttachEngine(b, c.Net)
		telemetry.AttachJournal(b, journal)
		telemetry.AttachHealth(b, monitor)
		if cfg.Tracer != nil {
			telemetry.AttachTracer(b, cfg.Tracer)
		}
		sampler = telemetry.NewSampler(b, reg, c.Clock, 2*time.Second)
		sampler.Start()
		defer sampler.Stop()
		var healthTick func()
		healthTick = func() {
			monitor.Check(c.Clock.Now())
			c.Clock.AfterFunc(5*time.Second, healthTick)
		}
		c.Clock.AfterFunc(5*time.Second, healthTick)
	}

	nodes := make([]*FamilyNode, cfg.Nodes)
	byAddr := make(map[mnet.Addr]*FamilyNode, cfg.Nodes)
	for i, node := range c.Nodes {
		fn, err := DeployFamily(c, node, cfg.Proto)
		if err != nil {
			return nil, err
		}
		nodes[i] = fn
		byAddr[node.Addr] = fn
		monitor.Watch(inspect.Target{Mgr: node.Mgr, Tables: fn.RIBs})
	}

	// Live invariant: monotonic sequence numbers, watched on the medium tap.
	watch := invariant.NewSeqWatcher()
	c.Net.SetTap(watch.Observe)

	report := &ChaosReport{
		Proto:    cfg.Proto,
		Scenario: cfg.Scenario,
		Seed:     cfg.Seed,
		Nodes:    cfg.Nodes,
	}

	// Count end-to-end deliveries at the sink. Everything runs on the
	// driving goroutine (SingleThreaded model), so a plain int is safe.
	sink := c.Nodes[cfg.Nodes-1]
	sink.Sys.Filter().OnDeliver(func(src mnet.Addr, payload []byte) {
		report.Delivered++
	})

	// The fault schedule. Windows are placed so topology faults never
	// overlap (a heal cannot restore links through a detached node):
	//   t=14s..20s   partition between the first half and the rest —
	//                spans at least one full TC interval (5s)
	//   t=14s..23s   corruption / duplication / reorder windows
	//   t=24s..30s   crash of a middle relay; traffic at t≈22s has just
	//                kicked off a route discovery through it
	//   t=16s        coordinated reconfiguration (reconfig/storm)
	// then quiet until t=60s — well past HELLO/TC intervals and route
	// hold times — before the snapshot is checked.
	plan := emunet.NewFaultPlan(cfg.Seed)
	plan.OnCrash = func(addr mnet.Addr) {
		if fn := byAddr[addr]; fn != nil {
			fn.Crash()
		}
	}
	plan.OnRestart = func(addr mnet.Addr) {
		if fn := byAddr[addr]; fn != nil {
			watch.Forget(addr) // counters may legitimately reset
			if err := fn.Restart(c.Clock.Now()); err != nil {
				panic(fmt.Sprintf("harness: chaos restart: %v", err))
			}
		}
	}

	addrs := c.Addrs()
	withPartition := cfg.Scenario == ScenarioPartition || cfg.Scenario == ScenarioReconfig || cfg.Scenario == ScenarioStorm
	withCrash := cfg.Scenario == ScenarioCrash || cfg.Scenario == ScenarioStorm
	withCorruption := cfg.Scenario == ScenarioCorruption || cfg.Scenario == ScenarioStorm
	withReconfig := cfg.Scenario == ScenarioReconfig || cfg.Scenario == ScenarioStorm

	if withPartition {
		half := cfg.Nodes / 2
		plan.Partition(14*time.Second, 20*time.Second, addrs[:half], addrs[half:])
	}
	if withCrash {
		plan.Crash(24*time.Second, 30*time.Second, addrs[cfg.Nodes/2])
	}
	if withCorruption {
		plan.CorruptFrames(14*time.Second, 22*time.Second, 0.15)
		plan.DuplicateFrames(16*time.Second, 23*time.Second, 0.2)
		plan.ReorderFrames(18*time.Second, 23*time.Second, 0.2, 4*time.Millisecond)
	}
	inj := plan.Apply(c.Net)

	if withReconfig {
		// Mid-churn (the partition is open), a coordinated two-phase
		// reconfiguration deploys a monitoring sniffer on every node —
		// the §7 "coordinated distributed dynamic reconfiguration".
		members := make([]*coord.Member, cfg.Nodes)
		for i, node := range c.Nodes {
			members[i] = &coord.Member{Name: node.Addr.String(), Mgr: node.Mgr}
		}
		c.Net.ScheduleAt(16*time.Second, func(*emunet.Network) {
			res, err := coord.Run(members, coord.Action{
				Name: "chaos-sniffer",
				Apply: func(m *coord.Member) error {
					sn, err := core.NewSniffer("chaos-sniffer", func(*event.Event) {})
					if err != nil {
						return err
					}
					if err := m.Mgr.Deploy(sn); err != nil {
						return err
					}
					return sn.Start()
				},
			})
			if err != nil {
				panic(fmt.Sprintf("harness: chaos reconfig: %v", err))
			}
			report.Reconfigured = res.Committed
		})
	}

	// Warm up, then drive the data workload across the fault window: one
	// packet from the first node to the last every 3s starting at t=13s.
	// The reactive protocols answer each with a route discovery; the send
	// at t≈22s is the one the crash lands on.
	src := c.Nodes[0]
	dst := addrs[cfg.Nodes-1]
	c.Run(13 * time.Second)
	for i := 0; i < cfg.Traffic; i++ {
		if err := src.Sys.Filter().SendData(dst, []byte(fmt.Sprintf("chaos-%d", i))); err == nil {
			report.Sent++
		}
		c.Run(3 * time.Second)
	}
	// Converge: quiet time past every hold time and periodic interval.
	if left := 60*time.Second - time.Duration(13+3*cfg.Traffic)*time.Second; left > 0 {
		c.Run(left)
	}

	sampler.SampleNow() // cover the tail of the run in the metrics stream

	report.Medium = c.Net.Stats()
	report.FaultLog = inj.Log()
	report.Metrics = reg.Snapshot().Counters
	report.TapFrames = watch.Frames()
	report.SeqViolations = watch.Violations()
	report.Violations = invariant.DefaultSuite().Run(SnapshotFamilies(c, nodes))
	report.Arch = c.Snapshot()
	report.Health = monitor.Check(c.Clock.Now())
	report.Journal = journal.Entries()
	return report, nil
}
