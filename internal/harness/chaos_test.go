package harness

import (
	"strings"
	"testing"
)

// stormTwice runs the full fault storm twice with the same seed and
// asserts the acceptance criteria: zero invariant violations after the
// convergence bound, and byte-identical reports run to run.
func stormTwice(t *testing.T, proto string) *ChaosReport {
	t.Helper()
	cfg := ChaosConfig{Proto: proto, Scenario: ScenarioStorm, Seed: 7}
	r1, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	r2, err := RunChaos(cfg)
	if err != nil {
		t.Fatalf("RunChaos (replay): %v", err)
	}
	if f1, f2 := r1.Fingerprint(), r2.Fingerprint(); f1 != f2 {
		t.Fatalf("nondeterministic chaos run: %s vs %s\nrun1:\n%srun2:\n%s",
			f1, f2, r1.Summary(), r2.Summary())
	}
	if !r1.OK() {
		t.Fatalf("invariant violations:\n%s", r1.Summary())
	}
	// The storm must actually have happened.
	if len(r1.FaultLog) == 0 {
		t.Fatalf("no faults injected")
	}
	log := strings.Join(r1.FaultLog, "\n")
	for _, want := range []string{"partition", "heal", "crash", "restart", "corrupt"} {
		if !strings.Contains(log, want) {
			t.Fatalf("fault log missing %q:\n%s", want, log)
		}
	}
	if r1.Medium.Corrupted == 0 {
		t.Fatalf("no frames corrupted:\n%s", r1.Summary())
	}
	if r1.TapFrames == 0 {
		t.Fatalf("sequence watcher saw no control frames")
	}
	if r1.Sent != 7 {
		t.Fatalf("sent %d data packets, want 7", r1.Sent)
	}
	if !r1.Reconfigured {
		t.Fatalf("coordinated reconfiguration did not commit")
	}
	return r1
}

func TestChaosStormOLSR(t *testing.T) { stormTwice(t, "olsr") }
func TestChaosStormDYMO(t *testing.T) { stormTwice(t, "dymo") }
func TestChaosStormAODV(t *testing.T) { stormTwice(t, "aodv") }
func TestChaosStormZRP(t *testing.T)  { stormTwice(t, "zrp") }

// TestChaosScenarios exercises each focused scenario (one protocol is
// enough — the storm tests above cover the full matrix).
func TestChaosScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc, func(t *testing.T) {
			r, err := RunChaos(ChaosConfig{Proto: "dymo", Scenario: sc, Seed: 3})
			if err != nil {
				t.Fatalf("RunChaos: %v", err)
			}
			if !r.OK() {
				t.Fatalf("violations:\n%s", r.Summary())
			}
			log := strings.Join(r.FaultLog, "\n")
			switch sc {
			case ScenarioPartition:
				if !strings.Contains(log, "partition") || !strings.Contains(log, "heal") {
					t.Fatalf("fault log: %s", log)
				}
			case ScenarioCrash:
				if !strings.Contains(log, "crash") || !strings.Contains(log, "restart") {
					t.Fatalf("fault log: %s", log)
				}
			case ScenarioCorruption:
				if r.Medium.Corrupted == 0 || r.Medium.Duplicated == 0 {
					t.Fatalf("no corruption/duplication:\n%s", r.Summary())
				}
			case ScenarioReconfig:
				if !r.Reconfigured {
					t.Fatalf("reconfiguration did not commit:\n%s", r.Summary())
				}
			}
		})
	}
}

// TestChaosSeedsDiverge guards against the injector accidentally sharing
// (and thus re-synchronising on) the medium's loss stream.
func TestChaosSeedsDiverge(t *testing.T) {
	a, err := RunChaos(ChaosConfig{Proto: "dymo", Scenario: ScenarioCorruption, Seed: 1})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	b, err := RunChaos(ChaosConfig{Proto: "dymo", Scenario: ScenarioCorruption, Seed: 2})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatalf("different seeds produced identical runs: %s", a.Fingerprint())
	}
}

func TestChaosConfigValidation(t *testing.T) {
	if _, err := RunChaos(ChaosConfig{Proto: "babel"}); err == nil {
		t.Fatalf("unknown proto accepted")
	}
	if _, err := RunChaos(ChaosConfig{Proto: "olsr", Scenario: "meteor"}); err == nil {
		t.Fatalf("unknown scenario accepted")
	}
	if _, err := RunChaos(ChaosConfig{Proto: "olsr", Nodes: 3}); err == nil {
		t.Fatalf("undersized cluster accepted")
	}
}
