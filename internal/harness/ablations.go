package harness

import (
	"fmt"
	"sync"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/dymo"
	"manetkit/internal/emunet"
	"manetkit/internal/event"
	"manetkit/internal/mnet"
	"manetkit/internal/mpr"
	"manetkit/internal/olsr"
	"manetkit/internal/packetbb"
	"manetkit/internal/testbed"
	"manetkit/internal/vclock"
)

// ConcurrencyResult reports one concurrency model's throughput (§4.4
// ablation).
type ConcurrencyResult struct {
	Model     core.Model
	Events    int
	Elapsed   time.Duration
	PerSecond float64
}

// MeasureConcurrency floods events through a stack of consumer protocols
// under the given model and reports wall-clock throughput, exposing the
// resource/throughput trade-off of §4.4. Handlers carry a small CPU cost
// (cost iterations of work) so parallelism can pay off.
func MeasureConcurrency(model core.Model, consumers, events, cost int) (ConcurrencyResult, error) {
	mgr, err := core.NewManager(core.Config{
		Node:     mnet.AddrFrom(0x0a000001),
		Clock:    vclock.NewVirtual(testbed.Epoch),
		Model:    model,
		PoolSize: 4,
	})
	if err != nil {
		return ConcurrencyResult{}, err
	}
	defer mgr.Close()

	src := core.NewProtocol("src")
	src.SetTuple(event.Tuple{Provided: []event.Type{event.HelloIn}})
	if err := mgr.Deploy(src); err != nil {
		return ConcurrencyResult{}, err
	}
	var total int64
	var mu sync.Mutex
	for i := 0; i < consumers; i++ {
		p := core.NewProtocol(fmt.Sprintf("consumer-%d", i))
		p.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.HelloIn}}})
		p.AddHandler(core.NewHandler("work", event.HelloIn, func(*core.Context, *event.Event) error {
			// Busy work standing in for protocol processing.
			acc := 0
			for j := 0; j < cost; j++ {
				acc += j * j
			}
			mu.Lock()
			total += int64(acc)
			mu.Unlock()
			return nil
		}))
		if err := mgr.Deploy(p); err != nil {
			return ConcurrencyResult{}, err
		}
	}

	start := time.Now() //mk:allow determinism wall-clock microbenchmark, reports real elapsed time
	for i := 0; i < events; i++ {
		_ = src.Emit(&event.Event{Type: event.HelloIn})
	}
	mgr.WaitIdle()
	elapsed := time.Since(start) //mk:allow determinism wall-clock microbenchmark, reports real elapsed time
	return ConcurrencyResult{
		Model:     model,
		Events:    events,
		Elapsed:   elapsed,
		PerSecond: float64(events) / elapsed.Seconds(),
	}, nil
}

// FisheyeResult compares TC transmission overhead with and without the
// fisheye interposer (§5.1 variant ablation).
type FisheyeResult struct {
	BaselineTCTx uint64 // TC-bearing frames transmitted, plain OLSR
	FisheyeTCTx  uint64 // with the fisheye interposer on every node
	Reduction    float64
}

// MeasureFisheye runs a grid OLSR network for the given duration and counts
// TC-bearing transmissions with and without the fisheye variant.
func MeasureFisheye(nodes, cols int, duration time.Duration) (FisheyeResult, error) {
	run := func(withFisheye bool) (uint64, error) {
		c, kits, err := OLSRCluster(nodes)
		if err != nil {
			return 0, err
		}
		defer c.Close()
		if err := c.Grid(cols); err != nil {
			return 0, err
		}
		if withFisheye {
			for _, node := range c.Nodes {
				fish := olsr.NewFisheye("", nil)
				if err := node.Mgr.Deploy(fish); err != nil {
					return 0, err
				}
				if err := fish.Start(); err != nil {
					return 0, err
				}
			}
		}
		_ = kits
		c.Run(30 * time.Second) // converge
		// The tap fires once per delivery; counting distinct
		// (sender, originator, seq, hopcount) tuples yields the number of
		// TC transmissions regardless of receiver fan-out.
		var tcTx uint64
		var mu sync.Mutex
		seen := make(map[string]bool)
		c.Net.SetTap(func(f emunet.Frame, rcv mnet.Addr) {
			if len(f.Payload) == 0 || f.Payload[0] != 0x01 {
				return
			}
			pkt, err := packetbb.DecodePacket(f.Payload[1:])
			if err != nil {
				return
			}
			for _, m := range pkt.Messages {
				if m.Type != packetbb.MsgTC {
					continue
				}
				key := fmt.Sprintf("%v|%v|%d|%d", f.Src, m.Originator, m.SeqNum, m.HopCount)
				mu.Lock()
				if !seen[key] {
					seen[key] = true
					tcTx++
				}
				mu.Unlock()
			}
		})
		c.Run(duration)
		c.Net.SetTap(nil)
		return tcTx, nil
	}
	base, err := run(false)
	if err != nil {
		return FisheyeResult{}, err
	}
	fish, err := run(true)
	if err != nil {
		return FisheyeResult{}, err
	}
	r := FisheyeResult{BaselineTCTx: base, FisheyeTCTx: fish}
	if base > 0 {
		r.Reduction = 1 - float64(fish)/float64(base)
	}
	return r, nil
}

// FloodingResult compares RREQ dissemination cost across flooding
// strategies (§5.2 variant plus the §2 gossip alternative).
type FloodingResult struct {
	BlindForwards     uint64
	GossipForwards    uint64 // probabilistic flooding at p=0.65
	OptimisedForwards uint64 // MPR flooding
	Reduction         float64
}

// floodMode selects a flooding strategy for MeasureDYMOFlooding.
type floodMode int

const (
	floodBlind floodMode = iota
	floodGossip
	floodMPR
)

// MeasureDYMOFlooding runs one route discovery across a dense (clique)
// network under each flooding regime and compares RREQ re-broadcasts.
func MeasureDYMOFlooding(nodes int) (FloodingResult, error) {
	run := func(mode floodMode) (uint64, error) {
		c, kits, err := DYMOCluster(nodes)
		if err != nil {
			return 0, err
		}
		defer c.Close()
		switch mode {
		case floodMPR:
			for i, node := range c.Nodes {
				relay := mpr.New("", mpr.Config{HelloInterval: HelloInterval})
				if err := node.Mgr.Deploy(relay.Protocol()); err != nil {
					return 0, err
				}
				if err := relay.Protocol().Start(); err != nil {
					return 0, err
				}
				kits[i].DYMO.SetFlooder(relay.Flooder())
			}
		case floodGossip:
			for i := range c.Nodes {
				kits[i].DYMO.SetFlooder(dymo.NewGossipFlooder(0.65, int64(i+1)))
			}
		}
		if err := c.Clique(); err != nil {
			return 0, err
		}
		c.Run(15 * time.Second)
		if err := kits[0].Node.Sys.Filter().SendData(c.Addrs()[nodes-1], []byte("x")); err != nil {
			return 0, err
		}
		c.Run(2 * time.Second)
		var forwards uint64
		for _, k := range kits {
			forwards += k.DYMO.State().Stats().RREQForwards
		}
		if _, _, err := kits[0].DYMO.Routes().Lookup(c.Addrs()[nodes-1]); err != nil {
			return 0, fmt.Errorf("harness: discovery failed (mode=%d): %w", mode, err)
		}
		return forwards, nil
	}
	var r FloodingResult
	var err error
	if r.BlindForwards, err = run(floodBlind); err != nil {
		return r, err
	}
	if r.GossipForwards, err = run(floodGossip); err != nil {
		return r, err
	}
	if r.OptimisedForwards, err = run(floodMPR); err != nil {
		return r, err
	}
	if r.BlindForwards > 0 {
		r.Reduction = 1 - float64(r.OptimisedForwards)/float64(r.BlindForwards)
	}
	return r, nil
}

// MultipathResult compares re-discovery counts under link failure with and
// without the multipath DYMO variant (§5.2).
type MultipathResult struct {
	BaseDiscoveries      uint64
	MultipathDiscoveries uint64
}

// MeasureMultipath establishes a route across a diamond topology, breaks
// the active path, keeps sending, and counts how many route discoveries
// each variant needed.
func MeasureMultipath() (MultipathResult, error) {
	run := func(multipath bool) (uint64, error) {
		c, kits, err := DYMOCluster(4)
		if err != nil {
			return 0, err
		}
		defer c.Close()
		a := c.Addrs()
		for _, pair := range [][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 3}} {
			if err := c.Net.SetLink(a[pair[0]], a[pair[1]], linkQuality()); err != nil {
				return 0, err
			}
		}
		if multipath {
			for _, k := range kits {
				if err := k.DYMO.EnableMultipath(2); err != nil {
					return 0, err
				}
			}
		}
		c.Run(5 * time.Second)
		send := func() {
			_ = kits[0].Node.Sys.Filter().SendData(a[3], []byte("x"))
			c.Run(time.Second)
		}
		send() // discovery #1
		c.Net.CutLink(a[0], a[1])
		send() // triggers LINK_BREAK; multipath fails over, base re-discovers
		send()
		send()
		return kits[0].DYMO.State().Stats().Discoveries, nil
	}
	base, err := run(false)
	if err != nil {
		return MultipathResult{}, err
	}
	mp, err := run(true)
	if err != nil {
		return MultipathResult{}, err
	}
	return MultipathResult{BaseDiscoveries: base, MultipathDiscoveries: mp}, nil
}

// PowerAwareResult reports the relay burden placed on a battery-drained
// node with and without the power-aware variant (§5.1).
type PowerAwareResult struct {
	DrainedSelectedBase  bool // drained node serves as MPR under base OLSR
	DrainedSelectedPower bool // ... under power-aware OLSR
}

// MeasurePowerAware builds a topology where a drained node and a charged
// node can both cover the 2-hop neighbourhood, and checks which one relay
// selection picks under each variant.
func MeasurePowerAware() (PowerAwareResult, error) {
	run := func(powerAware bool) (bool, error) {
		// Topology: 0 is the selector. The drained node 1 covers both
		// 2-hop targets {3,4}; the charged nodes 2 and 5 cover one each.
		// Coverage-greedy selection prefers the drained hub; power-aware
		// selection pays the extra relay to spare it.
		c, kits, err := OLSRCluster(6)
		if err != nil {
			return false, err
		}
		defer c.Close()
		a := c.Addrs()
		for _, pair := range [][2]int{{0, 1}, {0, 2}, {0, 5}, {1, 3}, {1, 4}, {2, 3}, {5, 4}} {
			if err := c.Net.SetLink(a[pair[0]], a[pair[1]], linkQuality()); err != nil {
				return false, err
			}
		}
		if powerAware {
			for _, k := range kits {
				if err := k.OLSR.EnablePowerAware(); err != nil {
					return false, err
				}
			}
		}
		// Node 1 advertises a nearly flat battery, nodes 2 and 5 full
		// ones. The fake sensor units stand in for the System CF battery
		// sensor. Deploy in fixed node order: each deploy records rewire
		// spans in the node's trace, and the run's fingerprint must not
		// depend on map iteration order.
		for _, bat := range []struct {
			node int
			frac float64
		}{{1, 0.15}, {2, 1.0}, {5, 1.0}} {
			sensor := core.NewProtocol("fake-power")
			sensor.SetTuple(event.Tuple{Provided: []event.Type{event.PowerStatus}})
			if err := c.Nodes[bat.node].Mgr.Deploy(sensor); err != nil {
				return false, err
			}
			if err := sensor.Emit(&event.Event{
				Type:  event.PowerStatus,
				Power: &event.PowerPayload{Fraction: bat.frac, Draining: true},
			}); err != nil {
				return false, err
			}
		}
		c.Run(20 * time.Second)
		for _, sel := range kits[0].MPR.State().Selected() {
			if sel == a[1] {
				return true, nil
			}
		}
		return false, nil
	}
	base, err := run(false)
	if err != nil {
		return PowerAwareResult{}, err
	}
	power, err := run(true)
	if err != nil {
		return PowerAwareResult{}, err
	}
	return PowerAwareResult{DrainedSelectedBase: base, DrainedSelectedPower: power}, nil
}
