package harness

import (
	"testing"
	"time"

	"manetkit/internal/core"
)

func TestTimeToProcessMeasurements(t *testing.T) {
	for name, fn := range map[string]func(int) (time.Duration, error){
		"olsr-kit":  TimeToProcessOLSRKit,
		"olsr-mono": TimeToProcessOLSRMono,
		"dymo-kit":  TimeToProcessDYMOKit,
		"dymo-mono": TimeToProcessDYMOMono,
	} {
		d, err := fn(200)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d <= 0 || d > 50*time.Millisecond {
			t.Fatalf("%s: implausible per-message time %v", name, d)
		}
	}
}

func TestRouteEstablishmentOLSR(t *testing.T) {
	kit, err := RouteEstablishmentOLSRKit()
	if err != nil {
		t.Fatal(err)
	}
	mono, err := RouteEstablishmentOLSRMono()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's shape: OLSR route establishment is on the order of the
	// HELLO/TC intervals (hundreds of ms to seconds), for both
	// implementations.
	for name, d := range map[string]time.Duration{"kit": kit, "mono": mono} {
		if d < 100*time.Millisecond || d > 60*time.Second {
			t.Fatalf("OLSR %s route establishment = %v, implausible", name, d)
		}
	}
}

func TestRouteEstablishmentDYMO(t *testing.T) {
	kit, err := RouteEstablishmentDYMOKit()
	if err != nil {
		t.Fatal(err)
	}
	mono, err := RouteEstablishmentDYMOMono()
	if err != nil {
		t.Fatal(err)
	}
	// DYMO discovery is a single RREQ/RREP round trip: tens of ms.
	for name, d := range map[string]time.Duration{"kit": kit, "mono": mono} {
		if d <= 0 || d > 500*time.Millisecond {
			t.Fatalf("DYMO %s discovery = %v, implausible", name, d)
		}
	}
}

func TestPaperShapeOLSRSlowerThanDYMO(t *testing.T) {
	// Table 1's central comparison: proactive route establishment is
	// orders of magnitude slower than a reactive discovery.
	olsrKit, err := RouteEstablishmentOLSRKit()
	if err != nil {
		t.Fatal(err)
	}
	dymoKit, err := RouteEstablishmentDYMOKit()
	if err != nil {
		t.Fatal(err)
	}
	if olsrKit < 5*dymoKit {
		t.Fatalf("expected OLSR (%v) >> DYMO (%v)", olsrKit, dymoKit)
	}
}

func TestFootprintShape(t *testing.T) {
	tab, err := MeasureTable2()
	if err != nil {
		t.Fatal(err)
	}
	if tab.MonoOLSR <= 0 || tab.KitOLSR <= 0 || tab.MonoDYMO <= 0 || tab.KitDYMO <= 0 {
		t.Fatalf("zero footprints: %+v", tab)
	}
	// Table 2's shapes: single-protocol MANETKit deployments cost more
	// than their monolithic counterparts (framework machinery)...
	if tab.KitOLSR <= tab.MonoOLSR {
		t.Errorf("MKit-OLSR (%0.1fKB) should exceed mono (%0.1fKB)", tab.KitOLSR, tab.MonoOLSR)
	}
	if tab.KitDYMO <= tab.MonoDYMO {
		t.Errorf("MKit-DYMO (%0.1fKB) should exceed mono (%0.1fKB)", tab.KitDYMO, tab.MonoDYMO)
	}
	// ...but the two-protocol deployment amortises the shared substrate:
	// deploying both in MANETKit costs less than the sum of the two
	// standalone MANETKit deployments.
	if tab.KitBoth >= tab.KitOLSR+tab.KitDYMO {
		t.Errorf("co-deployment (%0.1fKB) should undercut sum of singles (%0.1f + %0.1f)",
			tab.KitBoth, tab.KitOLSR, tab.KitDYMO)
	}
	if tab.KitBothSealed > tab.KitBoth {
		t.Errorf("sealed deployment (%0.1fKB) larger than unsealed (%0.1fKB)", tab.KitBothSealed, tab.KitBoth)
	}
}

func TestConcurrencyModels(t *testing.T) {
	for _, model := range []core.Model{core.SingleThreaded, core.PerMessage, core.PerN} {
		r, err := MeasureConcurrency(model, 3, 300, 2000)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if r.Events != 300 || r.PerSecond <= 0 {
			t.Fatalf("%v: result %+v", model, r)
		}
	}
}

func TestFisheyeReducesOverhead(t *testing.T) {
	r, err := MeasureFisheye(16, 4, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.BaselineTCTx == 0 {
		t.Fatal("no TC traffic in baseline")
	}
	if r.FisheyeTCTx >= r.BaselineTCTx {
		t.Fatalf("fisheye did not reduce TC transmissions: %d -> %d", r.BaselineTCTx, r.FisheyeTCTx)
	}
}

func TestDYMOFloodingAblation(t *testing.T) {
	r, err := MeasureDYMOFlooding(8)
	if err != nil {
		t.Fatal(err)
	}
	if r.OptimisedForwards >= r.BlindForwards {
		t.Fatalf("MPR flooding not cheaper: blind=%d optimised=%d", r.BlindForwards, r.OptimisedForwards)
	}
}

func TestMultipathAblation(t *testing.T) {
	r, err := MeasureMultipath()
	if err != nil {
		t.Fatal(err)
	}
	if r.MultipathDiscoveries >= r.BaseDiscoveries {
		t.Fatalf("multipath should need fewer discoveries: base=%d multipath=%d",
			r.BaseDiscoveries, r.MultipathDiscoveries)
	}
}

func TestHybridAblation(t *testing.T) {
	r, err := MeasureHybrid(7)
	if err != nil {
		t.Fatal(err)
	}
	if r.HybridForwards >= r.ReactiveForwards {
		t.Fatalf("hybrid flood not shallower: reactive=%d hybrid=%d", r.ReactiveForwards, r.HybridForwards)
	}
	if r.ZoneAnswers == 0 {
		t.Fatal("no zone answers recorded")
	}
	if r.NearDiscoveries != 0 {
		t.Fatalf("in-zone traffic triggered %d discoveries", r.NearDiscoveries)
	}
	if r.ReactiveDelay <= 0 || r.HybridDelay <= 0 {
		t.Fatalf("delays = %v / %v", r.ReactiveDelay, r.HybridDelay)
	}
}

func TestPowerAwareAblation(t *testing.T) {
	r, err := MeasurePowerAware()
	if err != nil {
		t.Fatal(err)
	}
	if !r.DrainedSelectedBase {
		t.Fatalf("coverage-greedy base should pick the drained hub: %+v", r)
	}
	if r.DrainedSelectedPower {
		t.Fatalf("power-aware selection still burdens the drained relay: %+v", r)
	}
}
