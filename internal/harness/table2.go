package harness

import (
	"fmt"
	"runtime"

	"manetkit/internal/core"
	"manetkit/internal/dymo"
	"manetkit/internal/emunet"
	"manetkit/internal/mnet"
	"manetkit/internal/mono"
	"manetkit/internal/mpr"
	"manetkit/internal/neighbor"
	"manetkit/internal/olsr"
	"manetkit/internal/route"
	"manetkit/internal/system"
	"manetkit/internal/testbed"
	"manetkit/internal/vclock"
)

// Table2 holds the memory-footprint measurements of the paper's Table 2
// (kilobytes of live heap attributable to each deployment).
type Table2 struct {
	MonoOLSR      float64
	KitOLSR       float64
	MonoDYMO      float64
	KitDYMO       float64
	MonoBoth      float64 // Unik-olsrd + DYMOUM analogues side by side
	KitBoth       float64 // both protocols in one MANETKit deployment
	KitBothSealed float64 // same, after unloading the kernel machinery (§6.2 fn.3)
}

// Print renders the table in the paper's layout.
func (t Table2) Print() {
	fmt.Println("Table 2. Comparative Resource Overhead of MANETKit Protocols")
	fmt.Printf("%-24s %10s %10s %10s %10s %16s %16s %18s\n", "",
		"Mono-olsr", "MKit-OLSR", "Mono-dymo", "MKit-DYMO", "Mono olsr+dymo", "MKit OLSR+DYMO", "MKit sealed")
	fmt.Printf("%-24s %10.1f %10.1f %10.1f %10.1f %16.1f %16.1f %18.1f\n",
		"Memory Footprint (KB)",
		t.MonoOLSR, t.KitOLSR, t.MonoDYMO, t.KitDYMO, t.MonoBoth, t.KitBoth, t.KitBothSealed)
}

// heapDelta measures the live-heap growth caused by build, keeping the
// built object reachable until after measurement.
func heapDelta(build func() any) float64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&before)
	keep := build()
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(keep)
	delta := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if delta < 0 {
		delta = 0
	}
	return float64(delta) / 1024
}

// kitDeployment is the retained object graph for footprint measurement.
type kitDeployment struct {
	mgr   *core.Manager
	sys   *system.System
	extra []any
}

// buildKitBase constructs a single-node MANETKit deployment (manager +
// System CF) on its own emulated medium.
func buildKitBase() (*kitDeployment, *testbed.Cluster, error) {
	c, err := testbed.New(1, testbed.Options{})
	if err != nil {
		return nil, nil, err
	}
	n := c.Nodes[0]
	return &kitDeployment{mgr: n.Mgr, sys: n.Sys}, c, nil
}

// MeasureTable2 builds each deployment and records its heap footprint.
func MeasureTable2() (Table2, error) {
	var t Table2
	var buildErr error

	clk := vclock.NewVirtual(testbed.Epoch)

	t.MonoOLSR = heapDelta(func() any {
		net := emunet.New(clk, 1)
		nic, err := net.Attach(mnet.AddrFrom(0x0a000001))
		if err != nil {
			buildErr = err
			return nil
		}
		return mono.NewOLSR(nic, clk, mono.OLSRConfig{})
	})
	t.MonoDYMO = heapDelta(func() any {
		net := emunet.New(clk, 1)
		nic, err := net.Attach(mnet.AddrFrom(0x0a000001))
		if err != nil {
			buildErr = err
			return nil
		}
		return mono.NewDYMO(nic, clk, mono.DYMOConfig{})
	})
	t.MonoBoth = heapDelta(func() any {
		net := emunet.New(clk, 1)
		nicA, err := net.Attach(mnet.AddrFrom(0x0a000001))
		if err != nil {
			buildErr = err
			return nil
		}
		nicB, err := net.Attach(mnet.AddrFrom(0x0a000002))
		if err != nil {
			buildErr = err
			return nil
		}
		return []any{
			mono.NewOLSR(nicA, clk, mono.OLSRConfig{}),
			mono.NewDYMO(nicB, clk, mono.DYMOConfig{}),
		}
	})

	t.KitOLSR = heapDelta(func() any {
		dep, c, err := buildKitBase()
		if err != nil {
			buildErr = err
			return nil
		}
		relay := mpr.New("", mpr.Config{HelloInterval: HelloInterval})
		o := olsr.New("", relay, olsr.Config{Clock: c.Clock, FIB: route.NewFIB()})
		if err := dep.mgr.Deploy(relay.Protocol()); err != nil {
			buildErr = err
		}
		if err := dep.mgr.Deploy(o.Protocol()); err != nil {
			buildErr = err
		}
		dep.extra = append(dep.extra, relay, o, c)
		return dep
	})
	t.KitDYMO = heapDelta(func() any {
		dep, c, err := buildKitBase()
		if err != nil {
			buildErr = err
			return nil
		}
		nd := neighbor.New("", neighbor.Config{HelloInterval: HelloInterval})
		d := dymo.New("", dymo.Config{Clock: c.Clock, FIB: route.NewFIB()})
		if err := dep.mgr.Deploy(nd.Protocol()); err != nil {
			buildErr = err
		}
		if err := dep.mgr.Deploy(d.Protocol()); err != nil {
			buildErr = err
		}
		dep.extra = append(dep.extra, nd, d, c)
		return dep
	})

	buildBoth := func() (*kitDeployment, error) {
		// The co-deployment shares the manager, the System CF and the MPR
		// CF: DYMO uses MPR as its optimised-flooding / neighbour sensing
		// substrate instead of a private Neighbour Detection CF — the
		// paper's "leaner deployment" (§5.2).
		dep, c, err := buildKitBase()
		if err != nil {
			return nil, err
		}
		relay := mpr.New("", mpr.Config{HelloInterval: HelloInterval})
		o := olsr.New("", relay, olsr.Config{Clock: c.Clock, FIB: route.NewFIB()})
		d := dymo.New("", dymo.Config{Clock: c.Clock, FIB: route.NewFIB()})
		d.SetFlooder(relay.Flooder())
		for _, u := range []*core.Protocol{relay.Protocol(), o.Protocol(), d.Protocol()} {
			if err := dep.mgr.Deploy(u); err != nil {
				return nil, err
			}
		}
		dep.extra = append(dep.extra, relay, o, d, c)
		return dep, nil
	}

	t.KitBoth = heapDelta(func() any {
		dep, err := buildBoth()
		if err != nil {
			buildErr = err
		}
		return dep
	})
	t.KitBothSealed = heapDelta(func() any {
		dep, err := buildBoth()
		if err != nil {
			buildErr = err
			return nil
		}
		// "Once a desired configuration has been achieved it is possible
		// to unload the OpenCom kernel to free up memory" — Seal drops the
		// kernel metadata, the binding mirror and the integrity rules.
		dep.mgr.Seal()
		return dep
	})
	return t, buildErr
}
