package harness

import (
	"fmt"
	"sync"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/mnet"
	"manetkit/internal/mpr"
	"manetkit/internal/testbed"
	"manetkit/internal/zrp"
)

// HybridResult compares the zone-routing hybrid against pure reactive
// routing for one end-to-end discovery on a line topology (the §2/§7
// hybridisation claim: the zone terminates discoveries early).
type HybridResult struct {
	ReactiveForwards uint64 // DYMO RREQ re-broadcasts
	HybridForwards   uint64 // ZRP RREQ re-broadcasts
	ReactiveDelay    time.Duration
	HybridDelay      time.Duration
	ZoneAnswers      uint64 // replies issued by in-zone nodes on the target's behalf
	// NearDiscoveries counts discoveries triggered by the in-zone send —
	// 0 under ZRP, whose proactive zone covers it before NO_ROUTE can
	// even fire.
	NearDiscoveries uint64
}

// MeasureHybrid runs the same workload — one discovery to the far end of
// an n-node line, plus one send to a 2-hop neighbour — under DYMO and
// under ZRP, comparing flood depth and discovery latency.
func MeasureHybrid(n int) (HybridResult, error) {
	var r HybridResult

	// Reactive baseline.
	{
		c, kits, err := DYMOCluster(n)
		if err != nil {
			return r, err
		}
		if err := c.Line(); err != nil {
			c.Close()
			return r, err
		}
		c.Run(5 * time.Second)
		delay, err := timedDelivery(c, kits[len(kits)-1].Node, func() error {
			return kits[0].Node.Sys.Filter().SendData(c.Addrs()[n-1], []byte("x"))
		})
		if err != nil {
			c.Close()
			return r, err
		}
		r.ReactiveDelay = delay
		for _, k := range kits {
			r.ReactiveForwards += k.DYMO.State().Stats().RREQForwards
		}
		c.Close()
	}

	// Hybrid.
	{
		c, err := testbed.New(n, testbed.Options{})
		if err != nil {
			return r, err
		}
		defer c.Close()
		zrps := make([]*zrp.ZRP, n)
		for i, node := range c.Nodes {
			relay := mpr.New("", mpr.Config{HelloInterval: HelloInterval})
			z := zrp.New("", relay, zrp.Config{
				Clock: c.Clock, FIB: node.FIB(), Device: node.Sys.NIC().Device(),
			})
			for _, u := range []*core.Protocol{relay.Protocol(), z.Protocol()} {
				if err := node.Mgr.Deploy(u); err != nil {
					return r, err
				}
				if err := u.Start(); err != nil {
					return r, err
				}
			}
			zrps[i] = z
		}
		if err := c.Line(); err != nil {
			return r, err
		}
		c.Run(8 * time.Second)

		// In-zone traffic: the proactive zone serves it with no discovery.
		if err := c.Nodes[0].Sys.Filter().SendData(c.Addrs()[2], []byte("near")); err != nil {
			return r, err
		}
		c.Run(time.Second)
		r.NearDiscoveries = zrps[0].State().Stats().Discoveries

		delay, err := timedDelivery(c, c.Nodes[n-1], func() error {
			return c.Nodes[0].Sys.Filter().SendData(c.Addrs()[n-1], []byte("x"))
		})
		if err != nil {
			return r, err
		}
		r.HybridDelay = delay
		for _, z := range zrps {
			st := z.State().Stats()
			r.HybridForwards += st.RREQForwards
			r.ZoneAnswers += st.ZoneAnswers
		}
	}
	return r, nil
}

// timedDelivery measures the simulated time from send until the node's
// packet filter delivers something locally.
func timedDelivery(c *testbed.Cluster, dst *testbed.Node, send func() error) (time.Duration, error) {
	var mu sync.Mutex
	done := false
	dst.Sys.Filter().OnDeliver(func(mnet.Addr, []byte) {
		mu.Lock()
		done = true
		mu.Unlock()
	})
	start := c.Clock.Now()
	if err := send(); err != nil {
		return 0, err
	}
	deadline := start.Add(30 * time.Second)
	for {
		mu.Lock()
		ok := done
		mu.Unlock()
		if ok {
			return c.Clock.Now().Sub(start), nil
		}
		if !c.Clock.Step() || c.Clock.Now().After(deadline) {
			return 0, fmt.Errorf("harness: delivery never happened")
		}
	}
}
