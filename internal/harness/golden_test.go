package harness

// Golden-trace tests: one small scripted run per protocol family, traced
// through the observability layer, with the trace fingerprint committed.
// The virtual clock and seeded medium make the span stream a pure function
// of (composition, seed), so any change to dispatch order, timer firing,
// message handling or the frame pipeline shows up as a fingerprint drift —
// the strongest whole-stack determinism regression we have. When a change
// legitimately alters protocol behaviour, re-run with -run TestGoldenTrace
// -v and update the constant from the failure message.

import (
	"testing"
	"time"

	"manetkit/internal/metrics"
	"manetkit/internal/testbed"
	"manetkit/internal/trace"
)

// goldenTrace drives the canonical scripted run for one protocol family:
// a 3-node line, 13s of convergence, one end-to-end data packet, then 10s
// of settling — all traced.
func goldenTrace(t *testing.T, proto string) *trace.Tracer {
	t.Helper()
	tr := trace.New(testbed.Epoch, 0)
	c, err := testbed.New(3, testbed.Options{
		Seed: 1, Tracer: tr, Metrics: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("testbed.New: %v", err)
	}
	defer c.Close()
	if err := c.Line(); err != nil {
		t.Fatalf("Line: %v", err)
	}
	for _, node := range c.Nodes {
		if _, err := deployChaos(c, node, proto); err != nil {
			t.Fatalf("deploy %s: %v", proto, err)
		}
	}
	c.Run(13 * time.Second)
	if err := c.Nodes[0].Sys.Filter().SendData(c.Nodes[2].Addr, []byte("golden")); err != nil {
		t.Fatalf("SendData: %v", err)
	}
	c.Run(10 * time.Second)
	return tr
}

// Committed golden fingerprints, one per protocol family.
var goldenFingerprints = map[string]string{
	"olsr": "698703c26adb0e30",
	"dymo": "c3fa97f260855a23",
	"aodv": "a1f74b7fb4a7a59e",
	"zrp":  "9ad3acaefae968a7",
}

func TestGoldenTraces(t *testing.T) {
	for proto, want := range goldenFingerprints {
		proto, want := proto, want
		t.Run(proto, func(t *testing.T) {
			tr := goldenTrace(t, proto)
			if tr.Len() == 0 {
				t.Fatal("empty trace")
			}
			if tr.Dropped() != 0 {
				t.Fatalf("trace evicted %d spans; raise the capacity so the golden covers the whole run", tr.Dropped())
			}
			if got := tr.Fingerprint(); got != want {
				t.Errorf("%s golden trace fingerprint = %s, want %s (%d spans)\n"+
					"If this change intentionally alters protocol behaviour, update goldenFingerprints.",
					proto, got, want, tr.Len())
			}
		})
	}
}

// TestGoldenTraceReproducible guards the foundation the committed
// fingerprints stand on: two identical runs must produce byte-identical
// traces on any host.
func TestGoldenTraceReproducible(t *testing.T) {
	a := goldenTrace(t, "dymo")
	b := goldenTrace(t, "dymo")
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Fatalf("same-seed traces diverged: %s vs %s", fa, fb)
	}
}
