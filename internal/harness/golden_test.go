package harness

// Golden-trace tests: one small scripted run per protocol family, traced
// through the observability layer, with the trace fingerprint committed to
// testdata/golden_fingerprints.json. The virtual clock and seeded medium
// make the span stream a pure function of (composition, seed), so any
// change to dispatch order, timer firing, message handling or the frame
// pipeline shows up as a fingerprint drift — the strongest whole-stack
// determinism regression we have.
//
// When a change legitimately alters protocol behaviour (or the span
// schema), regenerate the committed fingerprints with
//
//	MANETKIT_UPDATE_GOLDEN=1 go test ./internal/harness -run TestGoldenTraces -update
//
// The env var is a second key on the trigger: -update alone fails loudly,
// so a stray flag in someone's test invocation can never silently rewrite
// the goldens.

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"manetkit/internal/metrics"
	"manetkit/internal/testbed"
	"manetkit/internal/trace"
)

var updateGolden = flag.Bool("update", false,
	"rewrite testdata/golden_fingerprints.json from this run (requires MANETKIT_UPDATE_GOLDEN=1)")

const goldenPath = "testdata/golden_fingerprints.json"

// goldenTrace drives the canonical scripted run for one protocol family:
// a 3-node line, 13s of convergence, one end-to-end data packet, then 10s
// of settling — all traced.
func goldenTrace(t *testing.T, proto string) *trace.Tracer {
	t.Helper()
	tr := trace.New(testbed.Epoch, 0)
	c, err := testbed.New(3, testbed.Options{
		Seed: 1, Tracer: tr, Metrics: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("testbed.New: %v", err)
	}
	defer c.Close()
	if err := c.Line(); err != nil {
		t.Fatalf("Line: %v", err)
	}
	for _, node := range c.Nodes {
		if _, err := DeployFamily(c, node, proto); err != nil {
			t.Fatalf("deploy %s: %v", proto, err)
		}
	}
	c.Run(13 * time.Second)
	if err := c.Nodes[0].Sys.Filter().SendData(c.Nodes[2].Addr, []byte("golden")); err != nil {
		t.Fatalf("SendData: %v", err)
	}
	c.Run(10 * time.Second)
	return tr
}

// loadGoldenFingerprints reads the committed per-protocol fingerprints.
func loadGoldenFingerprints(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read %s: %v (regenerate with MANETKIT_UPDATE_GOLDEN=1 go test -run TestGoldenTraces -update)", goldenPath, err)
	}
	var out map[string]string
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	return out
}

// writeGoldenFingerprints rewrites the testdata file deterministically.
func writeGoldenFingerprints(t *testing.T, fps map[string]string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatalf("mkdir testdata: %v", err)
	}
	data, err := json.MarshalIndent(fps, "", "  ")
	if err != nil {
		t.Fatalf("marshal fingerprints: %v", err)
	}
	if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write %s: %v", goldenPath, err)
	}
	t.Logf("rewrote %s with %d fingerprints", goldenPath, len(fps))
}

// goldenProtos lists the protocol families under golden coverage, in
// stable order.
func goldenProtos(fps map[string]string) []string {
	protos := make([]string, 0, len(fps))
	for p := range fps {
		protos = append(protos, p)
	}
	sort.Strings(protos)
	return protos
}

func TestGoldenTraces(t *testing.T) {
	if *updateGolden {
		if os.Getenv("MANETKIT_UPDATE_GOLDEN") == "" {
			t.Fatal("-update passed without MANETKIT_UPDATE_GOLDEN=1; refusing to rewrite the goldens")
		}
		fresh := map[string]string{}
		for _, proto := range ChaosProtos() {
			tr := goldenTrace(t, proto)
			fresh[proto] = tr.Fingerprint()
		}
		writeGoldenFingerprints(t, fresh)
		return
	}
	golden := loadGoldenFingerprints(t)
	for _, proto := range goldenProtos(golden) {
		proto, want := proto, golden[proto]
		t.Run(proto, func(t *testing.T) {
			tr := goldenTrace(t, proto)
			if tr.Len() == 0 {
				t.Fatal("empty trace")
			}
			if tr.Dropped() != 0 {
				t.Fatalf("trace evicted %d spans; raise the capacity so the golden covers the whole run", tr.Dropped())
			}
			if got := tr.Fingerprint(); got != want {
				t.Errorf("%s golden trace fingerprint = %s, want %s (%d spans)\n"+
					"If this change intentionally alters protocol behaviour, regenerate with\n"+
					"MANETKIT_UPDATE_GOLDEN=1 go test ./internal/harness -run TestGoldenTraces -update",
					proto, got, want, tr.Len())
			}
		})
	}
}

// TestGoldenTraceReproducible guards the foundation the committed
// fingerprints stand on: two identical runs must produce byte-identical
// traces on any host.
func TestGoldenTraceReproducible(t *testing.T) {
	a := goldenTrace(t, "dymo")
	b := goldenTrace(t, "dymo")
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Fatalf("same-seed traces diverged: %s vs %s", fa, fb)
	}
}
