package harness

import (
	"fmt"
	"time"

	"manetkit/internal/emunet"
	"manetkit/internal/event"
	"manetkit/internal/mnet"
	"manetkit/internal/mono"
	"manetkit/internal/packetbb"
)

// Table1 holds the measurements of the paper's Table 1.
type Table1 struct {
	// Time to Process Message (mean per message).
	ProcOLSRMono time.Duration // Unik-olsrd analogue, TC message
	ProcOLSRKit  time.Duration // MANETKit OLSR, TC message
	ProcDYMOMono time.Duration // DYMOUM analogue, RREQ
	ProcDYMOKit  time.Duration // MANETKit DYMO, RREQ

	// Route Establishment Delay (simulated time).
	RouteOLSRMono time.Duration
	RouteOLSRKit  time.Duration
	RouteDYMOMono time.Duration
	RouteDYMOKit  time.Duration
}

// Print renders the table in the paper's layout.
func (t Table1) Print() {
	fmt.Println("Table 1. Comparative Performance of MANETKit Protocols")
	fmt.Printf("%-32s %12s %12s %14s %12s\n", "", "Mono-olsr", "MKit-OLSR", "Mono-dymo", "MKit-DYMO")
	fmt.Printf("%-32s %12s %12s %14s %12s\n", "Time to Process Message (ms)",
		fms(t.ProcOLSRMono), fms(t.ProcOLSRKit), fms(t.ProcDYMOMono), fms(t.ProcDYMOKit))
	fmt.Printf("%-32s %12s %12s %14s %12s\n", "Route Establishment Delay (ms)",
		fms(t.RouteOLSRMono), fms(t.RouteOLSRKit), fms(t.RouteDYMOMono), fms(t.RouteDYMOKit))
}

func fms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}

// MeasureTable1 runs all four measurements of both rows.
func MeasureTable1(procIters int) (Table1, error) {
	var t Table1
	var err error
	if t.ProcOLSRKit, err = TimeToProcessOLSRKit(procIters); err != nil {
		return t, err
	}
	if t.ProcOLSRMono, err = TimeToProcessOLSRMono(procIters); err != nil {
		return t, err
	}
	if t.ProcDYMOKit, err = TimeToProcessDYMOKit(procIters); err != nil {
		return t, err
	}
	if t.ProcDYMOMono, err = TimeToProcessDYMOMono(procIters); err != nil {
		return t, err
	}
	if t.RouteOLSRKit, err = RouteEstablishmentOLSRKit(); err != nil {
		return t, err
	}
	if t.RouteOLSRMono, err = RouteEstablishmentOLSRMono(); err != nil {
		return t, err
	}
	if t.RouteDYMOKit, err = RouteEstablishmentDYMOKit(); err != nil {
		return t, err
	}
	if t.RouteDYMOMono, err = RouteEstablishmentDYMOMono(); err != nil {
		return t, err
	}
	return t, nil
}

// tcWorkload builds the i-th distinct TC message from a fixed neighbour:
// fresh ANSN and sequence number so every iteration does full update work.
func tcWorkload(orig mnet.Addr, i int) *packetbb.Message {
	ansn := uint16(i + 1)
	return &packetbb.Message{
		Type:       packetbb.MsgTC,
		Originator: orig,
		HopLimit:   250,
		SeqNum:     uint16(i + 1),
		TLVs:       []packetbb.TLV{{Type: packetbb.TLVANSN, Value: packetbb.U16(ansn)}},
		AddrBlocks: []packetbb.AddrBlock{{
			Addrs: []mnet.Addr{
				mnet.AddrFrom(0x0a000100 + uint32(i%3)),
				mnet.AddrFrom(0x0a000200 + uint32(i%5)),
			},
		}},
	}
}

// TimeToProcessOLSRKit measures the MANETKit OLSR composition's per-TC
// processing time (receipt at the unit to handler completion), Table 1.
func TimeToProcessOLSRKit(iters int) (time.Duration, error) {
	c, nodes, err := OLSRCluster(1)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	self := c.Nodes[0]
	peer := mnet.AddrFrom(0x0a0000fe)
	// Prime the link state: the TC sender must be a symmetric neighbour.
	nodes[0].MPR.State().Links.Observe(peer, true, 3, nil, c.Clock.Now())

	unit := nodes[0].OLSR.Protocol()
	start := time.Now() //mk:allow determinism wall-clock microbenchmark, reports real elapsed time
	for i := 0; i < iters; i++ {
		ev := &event.Event{Type: event.TCIn, Msg: tcWorkload(peer, i), Src: peer, Time: c.Clock.Now()}
		sec := unit.Section()
		sec.Lock()
		if err := unit.Accept(ev); err != nil {
			sec.Unlock()
			return 0, err
		}
		sec.Unlock()
	}
	_ = self
	return time.Since(start) / time.Duration(iters), nil //mk:allow determinism wall-clock microbenchmark, reports real elapsed time
}

// TimeToProcessOLSRMono is the monolithic counterpart.
func TimeToProcessOLSRMono(iters int) (time.Duration, error) {
	mc, err := MonoOLSRCluster(1)
	if err != nil {
		return 0, err
	}
	defer mc.Close()
	o := mc.OLSR[0]
	peer := mnet.AddrFrom(0x0a0000fe)
	// Prime: a HELLO from the peer listing us makes the link symmetric.
	hello := &packetbb.Message{
		Type:       packetbb.MsgHello,
		Originator: peer,
		AddrBlocks: []packetbb.AddrBlock{{
			Addrs: []mnet.Addr{mc.Addrs[0]},
			TLVs: []packetbb.AddrTLV{{
				Type: packetbb.ATLVLinkStatus, Value: packetbb.U8(packetbb.LinkStatusSymmetric),
			}},
		}},
	}
	o.HandleHello(hello, peer)

	start := time.Now() //mk:allow determinism wall-clock microbenchmark, reports real elapsed time
	for i := 0; i < iters; i++ {
		o.HandleTC(tcWorkload(peer, i), peer)
	}
	return time.Since(start) / time.Duration(iters), nil //mk:allow determinism wall-clock microbenchmark, reports real elapsed time
}

// rreqWorkload builds the i-th distinct RREQ (fresh originator sequence
// number so duplicate suppression never triggers).
func rreqWorkload(orig, target mnet.Addr, i int) *packetbb.Message {
	return &packetbb.Message{
		Type:       packetbb.MsgRREQ,
		Originator: orig,
		SeqNum:     uint16(i + 1),
		HopLimit:   10,
		HopCount:   2,
		AddrBlocks: []packetbb.AddrBlock{{Addrs: []mnet.Addr{target}}},
	}
}

// TimeToProcessDYMOKit measures the MANETKit DYMO composition's per-RREQ
// processing time (the node acts as an intermediate forwarder).
func TimeToProcessDYMOKit(iters int) (time.Duration, error) {
	c, nodes, err := DYMOCluster(1)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	orig := mnet.AddrFrom(0x0a0000fe)
	target := mnet.AddrFrom(0x0a0000fd)
	unit := nodes[0].DYMO.Protocol()
	start := time.Now() //mk:allow determinism wall-clock microbenchmark, reports real elapsed time
	for i := 0; i < iters; i++ {
		ev := &event.Event{Type: event.REIn, Msg: rreqWorkload(orig, target, i), Src: orig, Time: c.Clock.Now()}
		sec := unit.Section()
		sec.Lock()
		if err := unit.Accept(ev); err != nil {
			sec.Unlock()
			return 0, err
		}
		sec.Unlock()
	}
	return time.Since(start) / time.Duration(iters), nil //mk:allow determinism wall-clock microbenchmark, reports real elapsed time
}

// TimeToProcessDYMOMono is the monolithic counterpart.
func TimeToProcessDYMOMono(iters int) (time.Duration, error) {
	mc, err := MonoDYMOCluster(1)
	if err != nil {
		return 0, err
	}
	defer mc.Close()
	d := mc.DYMO[0]
	orig := mnet.AddrFrom(0x0a0000fe)
	target := mnet.AddrFrom(0x0a0000fd)
	start := time.Now() //mk:allow determinism wall-clock microbenchmark, reports real elapsed time
	for i := 0; i < iters; i++ {
		d.HandleRREQ(rreqWorkload(orig, target, i), orig)
	}
	return time.Since(start) / time.Duration(iters), nil //mk:allow determinism wall-clock microbenchmark, reports real elapsed time
}

// joinOffsets varies the instant the newcomer powers on relative to the
// running network's beacon/TC phases; route establishment is averaged over
// them so the comparison is not an artifact of one timer alignment.
var joinOffsets = []time.Duration{
	0, 1100 * time.Millisecond, 2300 * time.Millisecond,
	3700 * time.Millisecond, 4900 * time.Millisecond,
}

// RouteEstablishmentOLSRKit reproduces the paper's macro metric: a 4-node
// linear MANETKit-OLSR network runs to convergence, a 5th node joins at
// one end, and we measure the simulated time until the newcomer's routing
// table is fully populated (4 routes). The result is averaged over several
// join instants.
func RouteEstablishmentOLSRKit() (time.Duration, error) {
	var total time.Duration
	for _, off := range joinOffsets {
		d, err := routeEstablishmentOLSRKitOnce(off)
		if err != nil {
			return 0, err
		}
		total += d
	}
	return total / time.Duration(len(joinOffsets)), nil
}

func routeEstablishmentOLSRKitOnce(joinOffset time.Duration) (time.Duration, error) {
	c, _, err := OLSRCluster(4)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if err := c.Line(); err != nil {
		return 0, err
	}
	c.Run(40*time.Second + joinOffset) // converge the existing network

	newcomer, err := c.AddNode(mnet.AddrFrom(0x0a000001 + 4))
	if err != nil {
		return 0, err
	}
	// The newcomer is in radio range when its routing daemon starts.
	if err := c.Net.SetLink(c.Addrs()[3], newcomer.Addr, linkQuality()); err != nil {
		return 0, err
	}
	on, err := DeployOLSR(c, newcomer)
	if err != nil {
		return 0, err
	}
	start := c.Clock.Now()
	deadline := start.Add(5 * time.Minute)
	for on.OLSR.Routes().ValidCount() < 4 {
		if !c.Clock.Step() || c.Clock.Now().After(deadline) {
			return 0, fmt.Errorf("harness: OLSR newcomer never converged (%d routes)", on.OLSR.Routes().ValidCount())
		}
	}
	return c.Clock.Now().Sub(start), nil
}

// RouteEstablishmentOLSRMono is the monolithic counterpart, averaged over
// the same join instants.
func RouteEstablishmentOLSRMono() (time.Duration, error) {
	var total time.Duration
	for _, off := range joinOffsets {
		d, err := routeEstablishmentOLSRMonoOnce(off)
		if err != nil {
			return 0, err
		}
		total += d
	}
	return total / time.Duration(len(joinOffsets)), nil
}

func routeEstablishmentOLSRMonoOnce(joinOffset time.Duration) (time.Duration, error) {
	mc, err := MonoOLSRCluster(4)
	if err != nil {
		return 0, err
	}
	defer mc.Close()
	if err := mc.Line(); err != nil {
		return 0, err
	}
	mc.Clock.Advance(40*time.Second + joinOffset)

	addr := mnet.AddrFrom(0x0a000001 + 4)
	nic, err := mc.Net.Attach(addr)
	if err != nil {
		return 0, err
	}
	if err := mc.Net.SetLink(mc.Addrs[3], addr, linkQuality()); err != nil {
		return 0, err
	}
	o := mono.NewOLSR(nic, mc.Clock, mono.OLSRConfig{HelloInterval: HelloInterval, TCInterval: TCInterval})
	o.Start()
	defer o.Stop()
	start := mc.Clock.Now()
	deadline := start.Add(5 * time.Minute)
	for o.RouteCount() < 4 {
		if !mc.Clock.Step() || mc.Clock.Now().After(deadline) {
			return 0, fmt.Errorf("harness: mono OLSR newcomer never converged (%d routes)", o.RouteCount())
		}
	}
	return mc.Clock.Now().Sub(start), nil
}

// RouteEstablishmentDYMOKit measures a cold route discovery across the
// 5-node line: data send at one end to the other, NO_ROUTE through
// ROUTE_FOUND.
func RouteEstablishmentDYMOKit() (time.Duration, error) {
	c, nodes, err := DYMOCluster(5)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if err := c.Line(); err != nil {
		return 0, err
	}
	c.Run(10 * time.Second) // neighbour detection settles; no routes yet

	done := false
	c.Nodes[0].Mgr.SubscribeContext(event.RouteFound, func(ev *event.Event) { done = true })
	start := c.Clock.Now()
	if err := nodes[0].Node.Sys.Filter().SendData(c.Addrs()[4], []byte("probe")); err != nil {
		return 0, err
	}
	deadline := start.Add(time.Minute)
	for !done {
		if !c.Clock.Step() || c.Clock.Now().After(deadline) {
			return 0, fmt.Errorf("harness: DYMO discovery never completed")
		}
	}
	return c.Clock.Now().Sub(start), nil
}

// RouteEstablishmentDYMOMono is the monolithic counterpart.
func RouteEstablishmentDYMOMono() (time.Duration, error) {
	mc, err := MonoDYMOCluster(5)
	if err != nil {
		return 0, err
	}
	defer mc.Close()
	if err := mc.Line(); err != nil {
		return 0, err
	}
	mc.Clock.Advance(10 * time.Second)

	done := false
	mc.DYMO[0].Discover(mc.Addrs[4], func(ok bool) { done = ok })
	start := mc.Clock.Now()
	deadline := start.Add(time.Minute)
	for !done {
		if !mc.Clock.Step() || mc.Clock.Now().After(deadline) {
			return 0, fmt.Errorf("harness: mono DYMO discovery never completed")
		}
	}
	return mc.Clock.Now().Sub(start), nil
}

func linkQuality() emunet.Quality { return emunet.DefaultQuality() }
