package harness

// The scale ablation: how large an emulated network the medium sustains
// with routing protocols live. The MANET evaluation literature runs
// 50–1000-node scenarios as table stakes; the sharded discrete-event core
// (internal/emunet/engine.go) exists to put this repo in the same regime,
// and MeasureScale is the harness that proves it — node counts into the
// thousands with OLSR or AODV deployed on every node, deterministic frame
// counts for the CI gate, and wall-clock throughput for trending.

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"manetkit/internal/emunet"
	"manetkit/internal/testbed"
)

// ScaleSpec configures one cell of the scale ablation.
type ScaleSpec struct {
	// Protocol is "olsr" or "aodv".
	Protocol string
	// Nodes is the network size (default 100).
	Nodes int
	// Cols is the grid width (default ~sqrt(Nodes)).
	Cols int
	// Window is the virtual time driven (default 4s: two HELLO rounds plus
	// AODV discovery wavefronts, deliberately inside the first TCInterval —
	// a topology-wide TC flood is O(n²) deliveries and gets its own regime
	// once the mobility models land).
	Window time.Duration
	// Probes is the number of AODV route discoveries injected (default
	// 4 + Nodes/500, ignored for olsr). Most target a destination a few
	// hops away so the expanding ring resolves inside the window; the last
	// targets the far corner, forcing a full-diameter RREQ flood.
	Probes int
	// Seed drives the medium's loss process (default 1).
	Seed int64
	// Engine selects and tunes the delivery engine (zero value: the event
	// core with default tuning).
	Engine emunet.EngineConfig
}

func (s ScaleSpec) withDefaults() ScaleSpec {
	if s.Nodes <= 0 {
		s.Nodes = 100
	}
	if s.Cols <= 0 {
		s.Cols = int(math.Ceil(math.Sqrt(float64(s.Nodes))))
	}
	if s.Window <= 0 {
		s.Window = 4 * time.Second
	}
	if s.Probes <= 0 {
		s.Probes = 4 + s.Nodes/500
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// ScaleResult reports one scale-ablation cell. Stats and Routes are pure
// functions of the spec (virtual clock + seeds) and must reproduce exactly
// on any host at any GOMAXPROCS — the replay tests pin that. Elapsed,
// NodeSecPerSec and AllocsPerRx are host measurements.
type ScaleResult struct {
	Spec    ScaleSpec
	Virtual time.Duration // virtual time driven
	Elapsed time.Duration // wall clock for the drive
	Stats   emunet.Stats  // medium counters over the window (deterministic)
	// Routes is the protocol-liveness evidence: for aodv, how many probes
	// established a route by the end of the window; for olsr, the valid
	// route count at a mid-grid node.
	Routes int
	// NodeSecPerSec is emulation throughput: simulated node·seconds per
	// wall second (Nodes × Window / Elapsed).
	NodeSecPerSec float64
	// AllocsPerRx is heap allocations per delivered frame over the drive.
	AllocsPerRx float64
}

// Print writes the human-readable cell summary.
func (r ScaleResult) Print() {
	fmt.Printf("%-5s n=%-5d window=%v wall=%-8v tx=%-8d rx=%-8d routes=%-4d %10.0f node·s/s %6.2f allocs/rx\n",
		r.Spec.Protocol, r.Spec.Nodes, r.Virtual, r.Elapsed.Round(time.Millisecond),
		r.Stats.TxFrames, r.Stats.RxFrames, r.Routes, r.NodeSecPerSec, r.AllocsPerRx)
}

// MeasureScale builds an n-node grid with the protocol deployed on every
// node, drives the window on the virtual clock, and reports medium counts
// plus emulation throughput. Cluster construction and teardown are outside
// the measured region.
func MeasureScale(spec ScaleSpec) (ScaleResult, error) {
	spec = spec.withDefaults()
	c, err := testbed.New(spec.Nodes, testbed.Options{Seed: spec.Seed, Engine: spec.Engine})
	if err != nil {
		return ScaleResult{}, err
	}
	defer c.Close()

	var olsrs []*OLSRNode
	var aodvs []*AODVNode
	switch spec.Protocol {
	case "olsr":
		olsrs = make([]*OLSRNode, spec.Nodes)
		for i, node := range c.Nodes {
			if olsrs[i], err = DeployOLSR(c, node); err != nil {
				return ScaleResult{}, err
			}
		}
	case "aodv":
		aodvs = make([]*AODVNode, spec.Nodes)
		for i, node := range c.Nodes {
			if aodvs[i], err = DeployAODV(c, node); err != nil {
				return ScaleResult{}, err
			}
		}
	default:
		return ScaleResult{}, fmt.Errorf("harness: unknown scale protocol %q", spec.Protocol)
	}
	if err := c.Grid(spec.Cols); err != nil {
		return ScaleResult{}, err
	}

	addrs := c.Addrs()
	type probe struct{ src, dst int }
	var probes []probe
	if spec.Protocol == "aodv" {
		rows := (spec.Nodes + spec.Cols - 1) / spec.Cols
		for i := 0; i < spec.Probes; i++ {
			src := (i * 7919) % spec.Nodes
			// Step 2 rows and 3 columns (reflecting off the grid edges) so
			// every destination sits ~5 hops out — inside the expanding
			// ring's reach (TTLStart=2, +2 per try, 3 tries ⇒ max TTL 6)
			// with the third attempt landing about 2.2s after the send.
			r, col := src/spec.Cols, src%spec.Cols
			dr, dc := r+2, col+3
			if dr >= rows {
				dr = r - 2
			}
			if dc >= spec.Cols {
				dc = col - 3
			}
			dst := dr*spec.Cols + dc
			if i == spec.Probes-1 {
				// Far corner: exhausts the expanding ring without resolving,
				// exercising the retry/give-up path and its RREQ floods.
				src, dst = 0, spec.Nodes-1
			}
			if dst < 0 || dst >= spec.Nodes || src == dst {
				dst = (src + 1) % spec.Nodes
			}
			p := probe{src, dst}
			probes = append(probes, p)
			at := 200*time.Millisecond + time.Duration(i)*150*time.Millisecond
			c.Clock.AfterFunc(at, func() {
				_ = c.Nodes[p.src].Sys.Filter().SendData(addrs[p.dst], []byte("scale probe"))
			})
		}
	}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now() //mk:allow determinism wall-clock throughput measurement, reports real elapsed time
	c.Run(spec.Window)
	elapsed := time.Since(start) //mk:allow determinism wall-clock throughput measurement, reports real elapsed time
	runtime.ReadMemStats(&m1)

	res := ScaleResult{
		Spec:    spec,
		Virtual: spec.Window,
		Elapsed: elapsed,
		Stats:   c.Net.Stats(),
	}
	if elapsed > 0 {
		res.NodeSecPerSec = float64(spec.Nodes) * spec.Window.Seconds() / elapsed.Seconds()
	}
	if res.Stats.RxFrames > 0 {
		res.AllocsPerRx = float64(m1.Mallocs-m0.Mallocs) / float64(res.Stats.RxFrames)
	}
	switch spec.Protocol {
	case "olsr":
		res.Routes = olsrs[spec.Nodes/2].OLSR.Routes().ValidCount()
	case "aodv":
		for _, p := range probes {
			if _, _, err := aodvs[p.src].AODV.Routes().Lookup(addrs[p.dst]); err == nil {
				res.Routes++
			}
		}
	}
	return res, nil
}

// Digest is a compact rendering of a ScaleResult's deterministic fields,
// used by the replay tests to compare runs across GOMAXPROCS settings.
func (r ScaleResult) Digest() string {
	return fmt.Sprintf("proto=%s n=%d tx=%d rx=%d lostLoss=%d lostNoLink=%d txB=%d rxB=%d routes=%d",
		r.Spec.Protocol, r.Spec.Nodes, r.Stats.TxFrames, r.Stats.RxFrames,
		r.Stats.DroppedLoss, r.Stats.DroppedNoLink, r.Stats.TxBytes, r.Stats.RxBytes, r.Routes)
}
