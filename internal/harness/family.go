package harness

// Family deployment: one switchable entry point that installs any of the
// four protocol-family compositions (olsr, dymo, aodv, zrp) on a testbed
// node and hands back the state the measurement layers need — the routing
// units in start order (to crash/restart them), the per-protocol RIBs and
// the neighbour table (to snapshot them for the invariant suite). The
// chaos scenarios and the evaluation campaign (internal/eval) both deploy
// through here, so a protocol family behaves identically under fault
// injection and under the metric sweeps.

import (
	"fmt"
	"sort"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/invariant"
	"manetkit/internal/neighbor"
	"manetkit/internal/route"
	"manetkit/internal/testbed"
)

// Families lists the deployable protocol families in a stable order.
func Families() []string { return []string{"olsr", "dymo", "aodv", "zrp"} }

// FamilyNode is one deployed protocol-family composition plus the handles
// needed to crash it, flush its state and snapshot it.
type FamilyNode struct {
	Node *testbed.Node
	// Units are the routing units in start order.
	Units []*core.Protocol
	// RIBs are the composition's routing tables keyed by protocol name.
	RIBs map[string]*route.Table
	// Links is the composition's neighbour table.
	Links *neighbor.Table
}

// DeployFamily installs the requested composition on a node and returns
// the crash/snapshot handles.
func DeployFamily(c *testbed.Cluster, node *testbed.Node, family string) (*FamilyNode, error) {
	fn := &FamilyNode{Node: node, RIBs: map[string]*route.Table{}}
	switch family {
	case "olsr":
		d, err := DeployOLSR(c, node)
		if err != nil {
			return nil, err
		}
		fn.Units = []*core.Protocol{d.MPR.Protocol(), d.OLSR.Protocol()}
		fn.RIBs["olsr"] = d.OLSR.Routes()
		fn.Links = d.MPR.State().Links
	case "dymo":
		d, err := DeployDYMO(c, node)
		if err != nil {
			return nil, err
		}
		fn.Units = []*core.Protocol{d.ND.Protocol(), d.DYMO.Protocol()}
		fn.RIBs["dymo"] = d.DYMO.Routes()
		fn.Links = d.ND.Table()
	case "aodv":
		d, err := DeployAODV(c, node)
		if err != nil {
			return nil, err
		}
		fn.Units = []*core.Protocol{d.ND.Protocol(), d.AODV.Protocol()}
		fn.RIBs["aodv"] = d.AODV.Routes()
		fn.Links = d.ND.Table()
	case "zrp":
		d, err := DeployZRP(c, node)
		if err != nil {
			return nil, err
		}
		fn.Units = []*core.Protocol{d.MPR.Protocol(), d.ZRP.Protocol()}
		fn.RIBs["zrp"] = d.ZRP.Routes()
		fn.Links = d.MPR.State().Links
	default:
		return nil, fmt.Errorf("harness: unknown protocol family %q", family)
	}
	return fn, nil
}

// Crash stops the node's routing units (reverse start order) — the node
// has typically already been detached from the medium by a fault plan.
func (fn *FamilyNode) Crash() {
	for i := len(fn.Units) - 1; i >= 0; i-- {
		fn.Units[i].Stop()
	}
}

// Restart models a reboot with state loss: RIBs (and their FIB mirrors)
// and the neighbour table are flushed before the units start again.
func (fn *FamilyNode) Restart(now time.Time) error {
	for _, rib := range fn.RIBs {
		rib.Clear()
	}
	if fn.Links != nil {
		// Expire marks every entry lost, Drop then removes them: a full
		// neighbour-table flush without synthesising link-break events
		// (the node was dead — nothing was listening).
		flushAt := now.Add(time.Hour)
		fn.Links.Expire(flushAt)
		fn.Links.Drop(flushAt)
	}
	for _, u := range fn.Units {
		if err := u.Start(); err != nil {
			return err
		}
	}
	return nil
}

// State captures the node for the invariant snapshot.
func (fn *FamilyNode) State() invariant.NodeState {
	st := invariant.NodeState{Addr: fn.Node.Addr, FIB: fn.Node.FIB().List()}
	protos := make([]string, 0, len(fn.RIBs))
	for name := range fn.RIBs {
		protos = append(protos, name)
	}
	sort.Strings(protos)
	for _, name := range protos {
		st.RIBs = append(st.RIBs, invariant.RIB{Proto: name, Entries: fn.RIBs[name].Entries()})
	}
	if fn.Links != nil {
		st.Neighbors = fn.Links.Neighbors()
	}
	return st
}

// SnapshotFamilies captures every deployed node against the live link
// graph, ready for the invariant suite.
func SnapshotFamilies(c *testbed.Cluster, nodes []*FamilyNode) *invariant.Snapshot {
	snap := &invariant.Snapshot{Now: c.Clock.Now(), Topo: c.Net}
	for _, fn := range nodes {
		snap.Nodes = append(snap.Nodes, fn.State())
	}
	return snap
}
