package harness

import (
	"runtime"
	"testing"
	"time"
)

// TestMeasureScaleSmoke runs the 100-node cells of the scale ablation and
// checks the protocols actually converged: OLSR must have learned routes at
// the mid-grid node, and every AODV probe must have resolved.
func TestMeasureScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke is seconds-long; skipped in -short")
	}
	olsr, err := MeasureScale(ScaleSpec{Protocol: "olsr", Nodes: 100})
	if err != nil {
		t.Fatalf("olsr: %v", err)
	}
	if olsr.Stats.RxFrames == 0 {
		t.Fatalf("olsr: no frames delivered: %+v", olsr.Stats)
	}
	if olsr.Routes == 0 {
		t.Fatalf("olsr: mid-grid node learned no routes")
	}
	aodv, err := MeasureScale(ScaleSpec{Protocol: "aodv", Nodes: 100})
	if err != nil {
		t.Fatalf("aodv: %v", err)
	}
	// Every probe but the deliberately-unreachable far-corner one must
	// have discovered its route inside the window.
	if want := aodv.Spec.Probes - 1; aodv.Routes < want {
		t.Fatalf("aodv: %d of %d near probes established routes (stats %+v)",
			aodv.Routes, want, aodv.Stats)
	}
	t.Logf("olsr: %s", olsr.Digest())
	t.Logf("aodv: %s", aodv.Digest())
}

// TestMeasureScaleReplay is satellite coverage for the campaign-metric level
// of the determinism story: the full harness measurement — protocols, medium,
// probes, route liveness — must produce identical deterministic digests when
// the host parallelism changes underneath the event core's shard workers.
func TestMeasureScaleReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("scale replay is seconds-long; skipped in -short")
	}
	spec := ScaleSpec{Protocol: "aodv", Nodes: 300, Window: 3 * time.Second}
	prev := runtime.GOMAXPROCS(1)
	serial, err := MeasureScale(spec)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := MeasureScale(spec)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if got, want := parallel.Digest(), serial.Digest(); got != want {
		t.Fatalf("campaign metrics diverged across GOMAXPROCS:\n 1:   %s\n %d: %s",
			want, runtime.GOMAXPROCS(0), got)
	}
}
