package harness

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/emunet"
	"manetkit/internal/event"
	"manetkit/internal/testbed"
)

// TestShardWorkersVsReconfigure pits the event core's epoch workers against
// MANETKit's headline operation — reconfiguring protocol graphs on live
// nodes. One goroutine drives the cluster clock (OLSR hello/TC traffic keeps
// epochs full and the tiny shard size forces the parallel prep path on each
// one) while others Deploy/Undeploy an interposing protocol, flip its tuple
// (triggering declarative rewires) and apply fault schedules. Run under
// -race in CI; the assertion is memory safety, not determinism.
func TestShardWorkersVsReconfigure(t *testing.T) {
	const n = 16
	c, err := testbed.New(n, testbed.Options{
		Seed:   5,
		Engine: emunet.EngineConfig{ShardSize: 2, ParallelThreshold: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, node := range c.Nodes {
		if _, err := DeployOLSR(c, node); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Grid(4); err != nil {
		t.Fatal(err)
	}
	emunet.NewFaultPlan(42).
		Partition(500*time.Millisecond, 1500*time.Millisecond, c.Addrs()[:n/2], c.Addrs()[n/2:]).
		CorruptFrames(0, 3*time.Second, 0.1).
		DuplicateFrames(0, 3*time.Second, 0.1).
		Apply(c.Net)

	var wg sync.WaitGroup
	done := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 60; i++ {
			c.Run(50 * time.Millisecond)
		}
	}()

	// Reconfigure a rotating subset of nodes while their frames are in
	// flight: deploy a TC interposer, retuple it, rewire, tear it down.
	for g := 0; g < 2; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				mgr := c.Nodes[(g*7+i)%n].Mgr
				p := core.NewProtocol(fmt.Sprintf("interposer-%d-%d", g, i))
				p.SetTuple(event.Tuple{
					Provided: []event.Type{event.TCOut},
					Required: []event.Requirement{{Type: event.TCOut}},
				})
				if err := p.AddHandler(core.NewHandler("fwd", event.TCOut,
					func(ctx *core.Context, ev *event.Event) error {
						ctx.Emit(&event.Event{Type: event.TCOut, Msg: ev.Msg})
						return nil
					})); err != nil {
					t.Error(err)
					return
				}
				if err := mgr.Deploy(p); err != nil {
					t.Error(err)
					return
				}
				p.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.TCOut}}})
				mgr.Rewire()
				if err := mgr.Undeploy(p.Name()); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// Observer goroutine: snapshot surfaces the scale harness reads.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = c.Net.Stats()
			_ = c.Net.ShardStats()
			_ = c.Snapshot()
		}
	}()

	wg.Wait()
	if s := c.Net.Stats(); s.RxFrames == 0 {
		t.Fatal("no traffic moved during reconfiguration stress")
	}
}
