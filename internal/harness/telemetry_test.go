package harness

// Streaming telemetry over full chaos runs: subscribers watch a storm —
// deploys, a coordinated reconfiguration, partitions, corruption — live
// on every stream while the invariant layer runs. The gates: exact
// per-subscriber drop accounting, no perturbation of the fingerprinted
// report, and a flight-recorder dump that is byte-identical across
// GOMAXPROCS 1 and all CPUs.

import (
	"bytes"
	"runtime"
	"testing"

	"manetkit/internal/telemetry"
	"manetkit/internal/testbed"
	"manetkit/internal/trace"
)

// chaosWithBus runs one storm with a bus and one subscriber per stream,
// returning the report, the recorder dump and the drained event counts.
func chaosWithBus(t *testing.T, spanBuffer int) (*ChaosReport, []byte, map[string]int) {
	t.Helper()
	bus := telemetry.New(telemetry.Config{Epoch: testbed.Epoch})
	subs := make(map[string]*telemetry.Subscription)
	for _, name := range telemetry.Streams() {
		buf := 1 << 16
		if name == telemetry.StreamSpans {
			buf = spanBuffer
		}
		subs[name] = bus.Subscribe(buf, name)
	}
	tr := trace.New(testbed.Epoch, 1<<15)
	rep, err := RunChaos(ChaosConfig{
		Proto: "olsr", Scenario: ScenarioStorm, Seed: 7, Tracer: tr, Telemetry: bus,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	var dump bytes.Buffer
	if err := bus.WriteNDJSON(&dump); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	bus.Close()

	drained := make(map[string]int)
	for name, sub := range subs {
		for range sub.C() {
			drained[name]++
		}
		st := sub.Stats()
		if st.Published != st.Delivered+st.Dropped {
			t.Errorf("%s accounting broken: %+v", name, st)
		}
		if st.Delivered != uint64(drained[name]) {
			t.Errorf("%s delivered counter %d but consumer read %d", name, st.Delivered, drained[name])
		}
	}
	return rep, dump.Bytes(), drained
}

func TestChaosTelemetryStreaming(t *testing.T) {
	rep, dump, drained := chaosWithBus(t, 1<<16)
	if !rep.OK() {
		t.Fatalf("invariants broke under telemetry:\n%s", rep.Summary())
	}
	// Every busy stream carried traffic: the storm deploys protocols and
	// reconfigures (journal), commits epochs (engine), samples counters
	// (metrics) and traces frames (spans).
	for _, name := range []string{
		telemetry.StreamEngine, telemetry.StreamJournal,
		telemetry.StreamMetrics, telemetry.StreamSpans,
	} {
		if drained[name] == 0 {
			t.Errorf("stream %s delivered no events during a storm", name)
		}
	}
	// The journal stream and the report's journal agree on the churn.
	if got, want := drained[telemetry.StreamJournal], len(rep.Journal); got != want {
		t.Errorf("journal stream carried %d entries, report has %d", got, want)
	}
	if len(dump) == 0 {
		t.Fatal("flight recorder empty after a storm")
	}

	// The bus is passive: the fingerprinted report of a bus-attached run
	// equals the tracer-only run's.
	plain, err := RunChaos(ChaosConfig{
		Proto: "olsr", Scenario: ScenarioStorm, Seed: 7,
		Tracer: trace.New(testbed.Epoch, 1<<15),
	})
	if err != nil {
		t.Fatalf("RunChaos (plain): %v", err)
	}
	if f1, f2 := rep.Fingerprint(), plain.Fingerprint(); f1 != f2 {
		t.Errorf("attaching telemetry perturbed the report: %s vs %s\nbus:\n%splain:\n%s",
			f1, f2, rep.Summary(), plain.Summary())
	}
}

// TestChaosTelemetryBackpressure: a starved spans subscriber drops (the
// accounting is checked inside chaosWithBus) while the run itself and the
// recorder stay intact.
func TestChaosTelemetryBackpressure(t *testing.T) {
	rep, dump, drained := chaosWithBus(t, 4)
	if !rep.OK() {
		t.Fatalf("invariants broke:\n%s", rep.Summary())
	}
	if drained[telemetry.StreamSpans] > 4 {
		t.Errorf("starved subscriber read %d spans with buffer 4 and no consumer", drained[telemetry.StreamSpans])
	}
	if len(dump) == 0 {
		t.Fatal("recorder must be unaffected by subscriber backpressure")
	}
}

// TestChaosFlightRecorderAcrossGOMAXPROCS is the acceptance gate on the
// recorded streams: the full storm dump — spans, engine epochs, journal,
// health, metric deltas — is byte-identical with the scheduler pinned to
// one CPU and with all of them.
func TestChaosFlightRecorderAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	_, serial, _ := chaosWithBus(t, 1<<16)
	runtime.GOMAXPROCS(prev)
	_, parallel, _ := chaosWithBus(t, 1<<16)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("flight-recorder dump diverged across GOMAXPROCS 1 vs %d (%d vs %d bytes)",
			runtime.GOMAXPROCS(0), len(serial), len(parallel))
	}
	events, err := telemetry.ReadEvents(bytes.NewReader(serial))
	if err != nil {
		t.Fatalf("dump unreadable: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty dump")
	}
}
