package harness

import (
	"testing"
	"time"
)

// TestScaleOLSRRandom30 converges the proactive composition on a 30-node
// random topology and checks every node can route to every other — the
// "network grows" regime of the paper's motivation (§2).
func TestScaleOLSRRandom30(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	c, kits, err := OLSRCluster(30)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Random(0.08, 42); err != nil {
		t.Fatal(err)
	}
	c.Run(60 * time.Second)

	addrs := c.Addrs()
	missing := 0
	for i, k := range kits {
		for j, dst := range addrs {
			if i == j {
				continue
			}
			if _, _, err := k.OLSR.Routes().Lookup(dst); err != nil {
				missing++
			}
		}
	}
	if missing != 0 {
		t.Fatalf("%d of %d node pairs unroutable after convergence", missing, 30*29)
	}
	// MPR selection thinned the relay graph: the total number of
	// (selector, relay) edges is well below the symmetric link count.
	selections, links := 0, 0
	for _, k := range kits {
		selections += len(k.MPR.State().Selected())
		links += len(k.MPR.State().Links.SymmetricAddrs())
	}
	if selections == 0 || selections >= links {
		t.Fatalf("MPR selection did not thin the graph: %d selections over %d links", selections, links)
	}
}

// TestScaleDYMODiscoveries30 runs several cold discoveries across the same
// random 30-node topology and verifies they complete with plausible
// metrics.
func TestScaleDYMODiscoveries30(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	c, kits, err := DYMOCluster(30)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Random(0.08, 42); err != nil {
		t.Fatal(err)
	}
	c.Run(5 * time.Second)

	addrs := c.Addrs()
	pairs := [][2]int{{0, 29}, {5, 22}, {13, 2}, {29, 7}}
	for _, pair := range pairs {
		src, dst := pair[0], pair[1]
		if err := kits[src].Node.Sys.Filter().SendData(addrs[dst], []byte("probe")); err != nil {
			t.Fatal(err)
		}
		c.Run(3 * time.Second)
		_, p, err := kits[src].DYMO.Routes().Lookup(addrs[dst])
		if err != nil {
			t.Fatalf("discovery %d->%d failed: %v", src, dst, err)
		}
		if p.Metric < 1 || p.Metric > 29 {
			t.Fatalf("discovery %d->%d metric %d implausible", src, dst, p.Metric)
		}
	}
}

// TestScaleMixedProtocolsPartition stresses co-deployment under a
// partition/heal cycle on a 12-node grid.
func TestScaleMixedProtocolsPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	c, kits, err := OLSRCluster(12)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Grid(4); err != nil {
		t.Fatal(err)
	}
	c.Run(40 * time.Second)
	if got := kits[0].OLSR.Routes().ValidCount(); got != 11 {
		t.Fatalf("pre-partition routes = %d", got)
	}
	// Sever the middle column pair boundaries: cut all links between
	// column 1 and column 2 (grid is 4 wide, 3 rows).
	addrs := c.Addrs()
	for row := 0; row < 3; row++ {
		c.Net.CutLink(addrs[row*4+1], addrs[row*4+2])
	}
	c.Run(40 * time.Second)
	left := kits[0].OLSR.Routes().ValidCount()
	if left >= 11 {
		t.Fatalf("partition not observed: %d routes", left)
	}
	// Heal.
	q := linkQuality()
	for row := 0; row < 3; row++ {
		if err := c.Net.SetLink(addrs[row*4+1], addrs[row*4+2], q); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(40 * time.Second)
	if got := kits[0].OLSR.Routes().ValidCount(); got != 11 {
		t.Fatalf("post-heal routes = %d", got)
	}
}
