// Package trace records structured spans from MANETKit's event machinery
// into a bounded ring buffer: one Tracer per cluster, shared by every
// node's Framework Manager, the protocol demuxes and the emulated medium.
//
// Spans are stamped with virtual-clock offsets from a fixed epoch, never
// wall time, so a run under vclock.Virtual yields a byte-identical trace
// for the same seed — the property the golden-trace tests pin down. A nil
// *Tracer is a no-op recorder, so the disabled path costs one nil check
// (see the overhead guard in internal/core).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"time"
)

// Span kinds recorded by the framework.
const (
	KindEmit      = "emit"       // an event entered the Framework Manager
	KindDispatch  = "dispatch"   // a delivery was queued/routed to a unit
	KindHandle    = "handle"     // a handler matched and ran
	KindDrop      = "drop"       // a delivery was dropped (no chain, queue full)
	KindRebind    = "rebind"     // the manager re-derived its event topology
	KindFrameTx   = "frame-tx"   // the medium accepted a frame for transmission
	KindFrameRx   = "frame-rx"   // a NIC delivered a frame to its receiver
	KindFrameDrop = "frame-drop" // the medium dropped a frame (loss, no link)
)

// Span is one structured trace record. Field order is the JSONL field
// order; everything is either an integer or a string so encoding is
// platform-independent.
type Span struct {
	// Seq is the tracer-assigned record sequence number.
	Seq uint64 `json:"seq"`
	// T is the virtual-clock offset from the tracer's epoch, in
	// nanoseconds.
	T time.Duration `json:"t_ns"`
	// Node is the local node address ("" for cluster-global records).
	Node string `json:"node,omitempty"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Event is the event type or frame class the span describes.
	Event string `json:"event,omitempty"`
	// From and To name the source and destination units (or addresses for
	// frame spans).
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Handler names the handler component for KindHandle spans.
	Handler string `json:"handler,omitempty"`
	// Corr is the message correlation ID, derived from PacketBB message
	// identity (type:originator:seqnum, or data:<src>:<id> for data
	// packets). Every span a message touches — emit, dispatch, handle and
	// the frame spans on every hop, on every node — carries the same value,
	// which is what lets inspect.Correlate stitch cross-node causal paths.
	Corr string `json:"corr,omitempty"`
	// QDepth is the delivery-queue depth observed at dispatch time. No
	// omitempty: a queue depth of 0 is a legitimate observation and must
	// survive a JSONL round trip.
	QDepth int `json:"qdepth"`
	// Bytes is the payload size for frame spans.
	Bytes int `json:"bytes,omitempty"`
}

// Tracer is a bounded ring buffer of spans. Construct with New; a nil
// Tracer drops everything at the cost of one nil check.
type Tracer struct {
	epoch time.Time

	mu       sync.Mutex
	buf      []Span
	head     int // index of the oldest span
	count    int
	seq      uint64
	dropped  uint64
	obs      func(Span)
	dropHook func()
}

// DefaultCapacity bounds a tracer when New is given a non-positive
// capacity.
const DefaultCapacity = 1 << 16

// New creates a tracer whose span timestamps are offsets from epoch,
// keeping at most capacity spans (DefaultCapacity when capacity <= 0).
func New(epoch time.Time, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{epoch: epoch, buf: make([]Span, capacity)}
}

// Enabled reports whether t records spans (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// SetObserver installs fn to be called for every recorded span, after the
// tracer has stamped its sequence number and timestamp, in record order.
// fn runs under the tracer's lock and must not call back into the tracer;
// the telemetry bus uses it to stream spans live. nil detaches.
func (t *Tracer) SetObserver(fn func(Span)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.obs = fn
	t.mu.Unlock()
}

// SetDropHook installs fn to be called once per span evicted by ring
// overflow — the wiring point for the trace_dropped_total counter, which
// closes the silent gap where a full ring discarded history unnoticed.
// fn runs under the tracer's lock; nil detaches.
func (t *Tracer) SetDropHook(fn func()) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.dropHook = fn
	t.mu.Unlock()
}

// Record appends one span, stamping its sequence number and converting now
// into an epoch offset. When the ring is full the oldest span is evicted
// and counted in Dropped. Nil tracers discard the span.
func (t *Tracer) Record(now time.Time, s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	s.Seq = t.seq
	t.seq++
	s.T = now.Sub(t.epoch)
	if t.count == len(t.buf) {
		t.buf[t.head] = s
		t.head = (t.head + 1) % len(t.buf)
		t.dropped++
		if t.dropHook != nil {
			t.dropHook()
		}
	} else {
		t.buf[(t.head+t.count)%len(t.buf)] = s
		t.count++
	}
	if t.obs != nil {
		t.obs(s)
	}
	t.mu.Unlock()
}

// Len returns the number of buffered spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Dropped returns how many spans were evicted by ring overflow.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans copies out the buffered spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, t.count)
	for i := 0; i < t.count; i++ {
		out[i] = t.buf[(t.head+i)%len(t.buf)]
	}
	return out
}

// Reset discards all buffered spans and restarts the sequence counter.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.head, t.count, t.seq, t.dropped = 0, 0, 0, 0
	t.mu.Unlock()
}

// WriteJSONL streams the buffered spans as one JSON object per line,
// oldest first. The encoding is deterministic: struct field order, integer
// timestamps, no floats.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range t.Spans() {
		line, err := json.Marshal(s)
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Fingerprint digests the buffered spans (and the overflow count) into a
// short stable hex string — the committed golden value in the trace
// determinism tests.
func (t *Tracer) Fingerprint() string {
	h := fnv.New64a()
	if t != nil {
		t.mu.Lock()
		dropped := t.dropped
		t.mu.Unlock()
		fmt.Fprintf(h, "dropped=%d\n", dropped)
	}
	_ = t.WriteJSONL(h)
	return fmt.Sprintf("%016x", h.Sum64())
}
