package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestRecordAndSpans(t *testing.T) {
	tr := New(epoch, 8)
	tr.Record(epoch.Add(time.Millisecond), Span{Kind: KindEmit, Node: "10.0.0.1", Event: "HELLO_OUT"})
	tr.Record(epoch.Add(2*time.Millisecond), Span{Kind: KindDispatch, Node: "10.0.0.1", To: "mpr", QDepth: 1})
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("len(spans) = %d, want 2", len(spans))
	}
	if spans[0].Seq != 0 || spans[1].Seq != 1 {
		t.Fatalf("sequence numbers not assigned in order: %d, %d", spans[0].Seq, spans[1].Seq)
	}
	if spans[0].T != time.Millisecond {
		t.Fatalf("span T = %v, want 1ms", spans[0].T)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", tr.Dropped())
	}
}

func TestRingEvictsOldest(t *testing.T) {
	tr := New(epoch, 3)
	for i := 0; i < 5; i++ {
		tr.Record(epoch.Add(time.Duration(i)*time.Second), Span{Kind: KindEmit, Event: "E"})
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("len = %d, want 3", len(spans))
	}
	if spans[0].Seq != 2 || spans[2].Seq != 4 {
		t.Fatalf("ring kept wrong window: first seq %d, last seq %d", spans[0].Seq, spans[2].Seq)
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
}

func TestWriteJSONLDeterministic(t *testing.T) {
	build := func() *Tracer {
		tr := New(epoch, 16)
		tr.Record(epoch.Add(1500*time.Microsecond), Span{Kind: KindFrameTx, Node: "10.0.0.1", To: "10.0.0.2", Bytes: 42})
		tr.Record(epoch.Add(3*time.Millisecond), Span{Kind: KindFrameRx, Node: "10.0.0.2", From: "10.0.0.1", Bytes: 42})
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteJSONL(&a); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if err := build().WriteJSONL(&b); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("identical tracers encoded differently:\n%s\n---\n%s", a.String(), b.String())
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("line count = %d, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"kind":"frame-tx"`) || !strings.Contains(lines[0], `"t_ns":1500000`) {
		t.Fatalf("unexpected first line: %s", lines[0])
	}
	if build().Fingerprint() != build().Fingerprint() {
		t.Fatalf("fingerprint not stable")
	}
	if build().Fingerprint() == New(epoch, 16).Fingerprint() {
		t.Fatalf("fingerprint ignores content")
	}
}

// TestSpanRoundTripQDepthZero: a dispatch span with queue depth 0 must
// keep that depth through serialization. QDepth deliberately has no
// omitempty — depth 0 (an idle dedicated queue) is a legitimate
// measurement, distinct from "not a queued dispatch", and eliding it
// corrupted path correlation on quiet nodes.
func TestSpanRoundTripQDepthZero(t *testing.T) {
	in := Span{
		Kind: KindDispatch, Node: "10.0.0.1", Event: "HELLO_IN",
		To: "mpr", Corr: "HELLO:10.0.0.2:7", QDepth: 0,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if !strings.Contains(string(data), `"qdepth":0`) {
		t.Fatalf("qdepth 0 elided from JSON: %s", data)
	}
	var out Span
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if out != in {
		t.Fatalf("span did not round-trip:\n in=%+v\nout=%+v", in, out)
	}
	// A non-zero depth round-trips too.
	in.QDepth = 3
	data, _ = json.Marshal(in)
	var out2 Span
	if err := json.Unmarshal(data, &out2); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if out2.QDepth != 3 {
		t.Fatalf("qdepth = %d after round trip, want 3", out2.QDepth)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatalf("nil tracer reports enabled")
	}
	tr.Record(epoch, Span{Kind: KindEmit})
	if tr.Len() != 0 || tr.Dropped() != 0 || len(tr.Spans()) != 0 {
		t.Fatalf("nil tracer retained state")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("nil WriteJSONL: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil tracer wrote output: %q", buf.String())
	}
	tr.Reset()
}

// The disabled path must not allocate — same contract as metrics.
func TestNilRecordAllocatesNothing(t *testing.T) {
	var tr *Tracer
	s := Span{Kind: KindDispatch, Node: "n", Event: "E"}
	if n := testing.AllocsPerRun(1000, func() {
		tr.Record(epoch, s)
	}); n != 0 {
		t.Fatalf("nil Record allocated %.1f per run, want 0", n)
	}
}

func TestReset(t *testing.T) {
	tr := New(epoch, 4)
	tr.Record(epoch, Span{Kind: KindEmit})
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("len after reset = %d", tr.Len())
	}
	tr.Record(epoch, Span{Kind: KindEmit})
	if got := tr.Spans()[0].Seq; got != 0 {
		t.Fatalf("seq after reset = %d, want 0", got)
	}
}

func BenchmarkRecordDisabled(b *testing.B) {
	var tr *Tracer
	s := Span{Kind: KindDispatch}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(epoch, s)
	}
}

func BenchmarkRecordEnabled(b *testing.B) {
	tr := New(epoch, 1<<12)
	s := Span{Kind: KindDispatch, Node: "10.0.0.1", Event: "HELLO_OUT"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(epoch.Add(time.Duration(i)), s)
	}
}
