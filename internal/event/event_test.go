package event

import (
	"errors"
	"testing"
)

func TestOntologyDirectMatch(t *testing.T) {
	o := NewOntology()
	if !o.Matches(TCIn, TCIn) {
		t.Fatal("type does not match itself")
	}
}

func TestOntologyHierarchy(t *testing.T) {
	o := NewOntology()
	tests := []struct {
		t, pattern Type
		want       bool
	}{
		{TCIn, MsgIn, true},
		{HelloIn, MsgIn, true},
		{HelloOut, MsgOut, true},
		{HelloOut, MsgIn, false},
		{TCIn, Any, true},
		{NhoodChange, Context, true},
		{NoRoute, Routing, true},
		{NoRoute, Context, false},
		{MsgIn, TCIn, false}, // supertype does not satisfy subtype
		{Type("CUSTOM"), MsgIn, false},
	}
	for _, tt := range tests {
		if got := o.Matches(tt.t, tt.pattern); got != tt.want {
			t.Errorf("Matches(%s, %s) = %v, want %v", tt.t, tt.pattern, got, tt.want)
		}
	}
}

func TestOntologyRegisterType(t *testing.T) {
	o := NewOntology()
	if err := o.RegisterType("GOSSIP_IN", MsgIn); err != nil {
		t.Fatal(err)
	}
	if !o.Matches("GOSSIP_IN", MsgIn) || !o.Matches("GOSSIP_IN", Any) {
		t.Fatal("registered type not matched by ancestors")
	}
	if o.Parent("GOSSIP_IN") != MsgIn {
		t.Fatalf("Parent = %s", o.Parent("GOSSIP_IN"))
	}
}

func TestOntologyRejectsCycles(t *testing.T) {
	o := NewOntology()
	if err := o.RegisterType("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := o.RegisterType("B", "C"); err != nil {
		t.Fatal(err)
	}
	if err := o.RegisterType("C", "A"); err == nil {
		t.Fatal("cycle accepted")
	}
	if err := o.RegisterType("A", "A"); err == nil {
		t.Fatal("self-parent accepted")
	}
}

func TestTupleRequiresWithOntology(t *testing.T) {
	o := NewOntology()
	tp := Tuple{
		Required: []Requirement{{Type: MsgIn}, {Type: PowerStatus}},
		Provided: []Type{TCOut},
	}
	if !tp.Requires(o, TCIn) {
		t.Fatal("abstract requirement did not cover concrete type")
	}
	if !tp.Requires(o, PowerStatus) {
		t.Fatal("exact requirement failed")
	}
	if tp.Requires(o, NoRoute) {
		t.Fatal("unrelated type matched")
	}
	if !tp.Provides(TCOut) || tp.Provides(TCIn) {
		t.Fatal("Provides broken")
	}
}

func TestSinkFunc(t *testing.T) {
	sentinel := errors.New("sentinel")
	var got *Event
	s := SinkFunc(func(ev *Event) error {
		got = ev
		return sentinel
	})
	ev := &Event{Type: HelloIn}
	if err := s.Deliver(ev); !errors.Is(err, sentinel) {
		t.Fatalf("Deliver = %v", err)
	}
	if got != ev {
		t.Fatal("event not passed through")
	}
}

func TestChangeKindString(t *testing.T) {
	if NeighborAppeared.String() != "appeared" || NeighborLost.String() != "lost" ||
		NeighborSymmetric.String() != "symmetric" || TwoHopChanged.String() != "2hop-changed" {
		t.Fatal("ChangeKind names wrong")
	}
	if ChangeKind(99).String() != "ChangeKind(99)" {
		t.Fatal("unknown ChangeKind rendering wrong")
	}
}
