// Package event defines MANETKit's event ontology (§4.2 of the paper):
// the typed events that flow between CFS units, the polymorphic type
// hierarchy they are organised in, and the <required-events,
// provided-events> tuples from which the Framework Manager derives the
// binding topology.
//
// Events carry PacketBB messages (package packetbb) when they correspond to
// protocol traffic, or typed context payloads when they report system or
// protocol context (battery level, neighbourhood changes, …).
package event

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/packetbb"
)

// Type names an event kind, e.g. "TC_OUT".
type Type string

// The event vocabulary used by the protocols in this repository; the set is
// open — protocols may introduce further types (RegisterType).
const (
	// Root of the ontology.
	Any Type = "EVENT"

	// Abstract categories.
	MsgIn   Type = "MSG_IN"  // any incoming protocol message
	MsgOut  Type = "MSG_OUT" // any outgoing protocol message
	Context Type = "CONTEXT" // any context/sensor report
	Routing Type = "ROUTING" // any data-plane routing trigger

	// Concrete message events.
	HelloIn  Type = "HELLO_IN"
	HelloOut Type = "HELLO_OUT"
	TCIn     Type = "TC_IN"
	TCOut    Type = "TC_OUT"
	HNAIn    Type = "HNA_IN" // OLSR host-and-network association inbound
	HNAOut   Type = "HNA_OUT"
	REIn     Type = "RE_IN"   // DYMO routing element (RREQ/RREP) inbound
	REOut    Type = "RE_OUT"  // DYMO routing element outbound
	RerrIn   Type = "RERR_IN" // DYMO route error inbound
	RerrOut  Type = "RERR_OUT"

	// Topology/context events.
	NhoodChange Type = "NHOOD_CHANGE" // neighbourhood membership changed
	MPRChange   Type = "MPR_CHANGE"   // relay selection changed
	PowerStatus Type = "POWER_STATUS" // battery level report
	LinkInfo    Type = "LINK_INFO"    // link quality report
	SysStatus   Type = "SYS_STATUS"   // CPU/memory report

	// Data-plane triggers raised by the packet filter (System CF) and the
	// replies reactive protocols send back (§5.2).
	NoRoute      Type = "NO_ROUTE"       // data packet with no route buffered
	RouteUpdate  Type = "ROUTE_UPDATE"   // data packet used a route: refresh lifetime
	SendRouteErr Type = "SEND_ROUTE_ERR" // forwarding failed: notify sources
	RouteFound   Type = "ROUTE_FOUND"    // discovery succeeded: re-inject buffer
	LinkBreak    Type = "LINK_BREAK"     // link-layer feedback: next hop unreachable
)

// Event is the unit of communication between CFS units. Exactly one of Msg
// (protocol traffic) or a typed payload field is normally set, depending on
// the event type.
type Event struct {
	Type Type

	// Msg is the PacketBB message for *_IN/*_OUT events.
	Msg *packetbb.Message
	// Src is the link-level sender for *_IN events.
	Src mnet.Addr
	// Dst is the link-level destination for *_OUT events (often broadcast).
	Dst mnet.Addr
	// Device names the network interface the event entered or leaves on.
	Device string
	// Time stamps the event's creation on the deployment's clock.
	Time time.Time
	// Corr is the message correlation ID carried into trace spans so a
	// message's journey can be stitched across nodes (internal/inspect).
	// Protocols stamp it at message origination (Message.CorrID); the
	// framework back-fills it from Msg for forwarded/received events when
	// tracing is enabled.
	Corr string

	// Typed context payloads; nil unless the event type calls for them.
	Nhood *NhoodPayload
	MPR   *MPRPayload
	Power *PowerPayload
	Link  *LinkPayload
	Route *RoutePayload
	Sys   *SysPayload
}

// ChangeKind classifies a neighbourhood change.
type ChangeKind uint8

// Neighbourhood change kinds.
const (
	NeighborAppeared ChangeKind = iota + 1
	NeighborLost
	NeighborSymmetric // link became bidirectional
	TwoHopChanged
)

// String implements fmt.Stringer.
func (k ChangeKind) String() string {
	switch k {
	case NeighborAppeared:
		return "appeared"
	case NeighborLost:
		return "lost"
	case NeighborSymmetric:
		return "symmetric"
	case TwoHopChanged:
		return "2hop-changed"
	default:
		return fmt.Sprintf("ChangeKind(%d)", uint8(k))
	}
}

// NhoodPayload reports a neighbourhood change (NHOOD_CHANGE).
type NhoodPayload struct {
	Kind     ChangeKind
	Neighbor mnet.Addr
	// TwoHopVia lists the 2-hop destinations reachable via Neighbor at the
	// time of the event.
	TwoHopVia []mnet.Addr
}

// MPRPayload reports a relay-selection change (MPR_CHANGE).
type MPRPayload struct {
	// Selected is the node's current multipoint relay set.
	Selected []mnet.Addr
	// Selectors lists the neighbours that chose this node as a relay.
	Selectors []mnet.Addr
}

// PowerPayload reports battery state (POWER_STATUS).
type PowerPayload struct {
	// Fraction is remaining capacity in [0,1].
	Fraction float64
	// Draining reports whether the node runs on battery.
	Draining bool
}

// LinkPayload reports link quality to a specific neighbour (LINK_INFO).
type LinkPayload struct {
	Neighbor mnet.Addr
	// Quality is a normalised delivery ratio in [0,1].
	Quality float64
	// SignalDBm is the emulated received signal strength.
	SignalDBm float64
}

// RoutePayload accompanies the data-plane trigger events.
type RoutePayload struct {
	// Dst is the destination the trigger concerns.
	Dst mnet.Addr
	// Src is the originator of the affected data traffic.
	Src mnet.Addr
	// NextHop is set for LINK_BREAK / SEND_ROUTE_ERR.
	NextHop mnet.Addr
	// PacketID identifies the buffered data packet for NO_ROUTE/ROUTE_FOUND.
	PacketID uint64
}

// SysPayload reports host resource state (SYS_STATUS).
type SysPayload struct {
	CPUFraction float64
	MemBytes    uint64
}

// Requirement is one entry in a CFS unit's required-events set. Exclusive
// requirements consume the event: no other requirer sees it (§4.2,
// footnote 2).
type Requirement struct {
	Type      Type
	Exclusive bool
}

// Tuple is the paper's <required-events, provided-events> declaration.
type Tuple struct {
	Required []Requirement
	Provided []Type
}

// Requires reports whether the tuple's required set covers t under the
// given ontology.
func (tp Tuple) Requires(o *Ontology, t Type) bool {
	for _, r := range tp.Required {
		if o.Matches(t, r.Type) {
			return true
		}
	}
	return false
}

// Provides reports whether the tuple's provided set contains t exactly.
func (tp Tuple) Provides(t Type) bool {
	for _, p := range tp.Provided {
		if p == t {
			return true
		}
	}
	return false
}

// Sink consumes events; it is the interface through which the Framework
// Manager delivers events to CFS units.
type Sink interface {
	Deliver(ev *Event) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(ev *Event) error

// Deliver implements Sink.
func (f SinkFunc) Deliver(ev *Event) error { return f(ev) }

// TypeID is a dense small-integer identifier for a Type interned in an
// Ontology. IDs are assigned at snapshot-rebuild time and are stable only
// within one ontology instance; they index the precomputed ancestor bitsets
// that make Matches lock-free.
type TypeID int32

// ontSnapshot is the immutable, RCU-published view of an Ontology: every
// known type gets a dense ID and a bitset of its ancestor IDs (including
// itself), so a subtype test is two map lookups and one bit probe — no lock,
// no parent-chain walk. Mutations (RegisterType, interning) rebuild the
// whole snapshot and publish it atomically; reads never block.
type ontSnapshot struct {
	ids   map[Type]TypeID
	names []Type     // names[id] == type, sorted for deterministic IDs
	anc   [][]uint64 // anc[id]: bitset over TypeIDs of ancestors + self
}

// matches reports the subtype relation using the precomputed bitsets.
//
//mk:hotpath
func (s *ontSnapshot) matches(t, pattern TypeID) bool {
	row := s.anc[t]
	return row[pattern>>6]&(1<<(uint(pattern)&63)) != 0
}

// Ontology is the extensible polymorphic event-type hierarchy: a forest of
// is-a relations rooted at Any. A requirer declaring an abstract type
// receives all of its descendants.
//
// The hierarchy is read-mostly: protocols register types at deployment time
// and the dispatch path tests subtype relations per handler per event. The
// parent map is therefore compiled into an immutable snapshot with dense
// type IDs and ancestor bitsets (published via atomic.Pointer); Matches on
// known types touches no lock.
type Ontology struct {
	mu     sync.Mutex // serialises writers: parent-map mutation + snapshot rebuild
	parent map[Type]Type
	// extra holds types interned via ID without a parent relation, so they
	// survive snapshot rebuilds.
	extra   map[Type]bool
	version atomic.Uint64
	snap    atomic.Pointer[ontSnapshot]
}

// NewOntology returns the standard ontology used by the bundled protocols.
func NewOntology() *Ontology {
	o := &Ontology{parent: make(map[Type]Type), extra: make(map[Type]bool)}
	relations := map[Type]Type{
		MsgIn:   Any,
		MsgOut:  Any,
		Context: Any,
		Routing: Any,

		HelloIn: MsgIn,
		TCIn:    MsgIn,
		HNAIn:   MsgIn,
		REIn:    MsgIn,
		RerrIn:  MsgIn,

		HelloOut: MsgOut,
		TCOut:    MsgOut,
		HNAOut:   MsgOut,
		REOut:    MsgOut,
		RerrOut:  MsgOut,

		NhoodChange: Context,
		MPRChange:   Context,
		PowerStatus: Context,
		LinkInfo:    Context,
		SysStatus:   Context,

		NoRoute:      Routing,
		RouteUpdate:  Routing,
		SendRouteErr: Routing,
		RouteFound:   Routing,
		LinkBreak:    Routing,
	}
	for child, par := range relations {
		o.parent[child] = par
	}
	o.rebuildLocked()
	return o
}

// rebuildLocked recomputes the interned snapshot from the parent map and the
// standalone interned set, and publishes it. Callers hold o.mu.
func (o *Ontology) rebuildLocked() {
	// Collect the closure of every type mentioned: parent-map keys, every
	// ancestor appearing only as a value (e.g. Any), and standalone interns.
	seen := make(map[Type]bool, 2*len(o.parent)+len(o.extra))
	for child, par := range o.parent {
		seen[child] = true
		for p := par; p != ""; p = o.parent[p] {
			if seen[p] {
				break
			}
			seen[p] = true
		}
	}
	for t := range o.extra {
		seen[t] = true
	}
	names := make([]Type, 0, len(seen))
	for t := range seen {
		names = append(names, t)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	ids := make(map[Type]TypeID, len(names))
	for i, t := range names {
		ids[t] = TypeID(i)
	}
	words := (len(names) + 63) / 64
	anc := make([][]uint64, len(names))
	backing := make([]uint64, words*len(names))
	for i, t := range names {
		row := backing[i*words : (i+1)*words]
		set := func(id TypeID) { row[id>>6] |= 1 << (uint(id) & 63) }
		set(TypeID(i))
		for p := o.parent[t]; p != ""; p = o.parent[p] {
			set(ids[p])
		}
		anc[i] = row
	}
	o.snap.Store(&ontSnapshot{ids: ids, names: names, anc: anc})
}

// RegisterType adds a new event type below parent. Registering an existing
// type re-parents it; cycles are rejected.
func (o *Ontology) RegisterType(t, parent Type) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	// Reject cycles: walk up from parent; meeting t means t would become
	// its own ancestor.
	for p := parent; p != ""; {
		if p == t {
			return fmt.Errorf("event: registering %q under %q creates a cycle", t, parent)
		}
		p = o.parent[p]
	}
	o.parent[t] = parent
	o.version.Add(1)
	o.rebuildLocked()
	return nil
}

// Version counts hierarchy mutations (RegisterType). Compiled dispatch
// tables capture the version they were built against and rebuild lazily when
// it moves; plain interning does not bump it, because adding a standalone
// type cannot change any existing subtype relation.
func (o *Ontology) Version() uint64 { return o.version.Load() }

// ID interns t, assigning it a dense TypeID if it has none yet. Interning a
// type unknown to the hierarchy gives it no ancestors (it matches only
// itself and Any).
func (o *Ontology) ID(t Type) TypeID {
	if id, ok := o.snap.Load().ids[t]; ok {
		return id
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if id, ok := o.snap.Load().ids[t]; ok {
		return id
	}
	o.extra[t] = true
	o.rebuildLocked()
	return o.snap.Load().ids[t]
}

// Types lists every known type (registered or interned) in ID order. The
// returned slice is shared with the immutable snapshot; callers must not
// mutate it.
func (o *Ontology) Types() []Type {
	return o.snap.Load().names
}

// Matches reports whether concrete type t satisfies a requirement for
// pattern: t == pattern, or pattern is an ancestor of t. The test is
// lock-free: one snapshot load, two map probes, one bitset probe.
//
//mk:hotpath
func (o *Ontology) Matches(t, pattern Type) bool {
	if t == pattern || pattern == Any {
		return true
	}
	s := o.snap.Load()
	ti, ok := s.ids[t]
	if !ok {
		// Unknown concrete type: it has no registered ancestors, so only
		// the identity/Any cases above could have matched.
		return false
	}
	pi, ok := s.ids[pattern]
	if !ok {
		// A pattern the hierarchy has never seen cannot be an ancestor.
		return false
	}
	return s.matches(ti, pi)
}

// Parent returns the immediate supertype of t ("" at a root).
func (o *Ontology) Parent(t Type) Type {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.parent[t]
}
