package packetbb

import (
	"fmt"

	"manetkit/internal/mnet"
)

// decoder is a bounds-checked cursor over an input buffer.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) u8() (byte, error) {
	if d.remaining() < 1 {
		return 0, ErrTruncated
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u16() (uint16, error) {
	if d.remaining() < 2 {
		return 0, ErrTruncated
	}
	v := uint16(d.buf[d.off])<<8 | uint16(d.buf[d.off+1])
	d.off += 2
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.remaining() < n {
		return nil, ErrTruncated
	}
	v := d.buf[d.off : d.off+n]
	d.off += n
	return v, nil
}

// DecodePacket parses a wire-form packet.
func DecodePacket(buf []byte) (*Packet, error) {
	d := &decoder{buf: buf}
	flags, err := d.u8()
	if err != nil {
		return nil, fmt.Errorf("packet header: %w", err)
	}
	if flags&^(pktFlagHasSeq|pktFlagHasTLVs) != 0 {
		return nil, fmt.Errorf("%w: unknown packet flags %#x", ErrMalformed, flags)
	}
	p := &Packet{}
	if flags&pktFlagHasSeq != 0 {
		p.HasSeqNum = true
		if p.SeqNum, err = d.u16(); err != nil {
			return nil, fmt.Errorf("packet seqnum: %w", err)
		}
	}
	if flags&pktFlagHasTLVs != 0 {
		if p.TLVs, _, err = decodeTLVBlock(d, false); err != nil {
			return nil, fmt.Errorf("packet TLVs: %w", err)
		}
	}
	for d.remaining() > 0 {
		m, err := decodeMessage(d)
		if err != nil {
			return nil, fmt.Errorf("message %d: %w", len(p.Messages), err)
		}
		p.Messages = append(p.Messages, *m)
	}
	return p, nil
}

// DecodeMessage parses a single wire-form message; it requires the buffer to
// contain exactly one message.
func DecodeMessage(buf []byte) (*Message, error) {
	d := &decoder{buf: buf}
	m, err := decodeMessage(d)
	if err != nil {
		return nil, err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after message", ErrMalformed, d.remaining())
	}
	return m, nil
}

func decodeMessage(d *decoder) (*Message, error) {
	typ, err := d.u8()
	if err != nil {
		return nil, fmt.Errorf("type: %w", err)
	}
	flags, err := d.u8()
	if err != nil {
		return nil, fmt.Errorf("flags: %w", err)
	}
	if flags&^(msgFlagHasOrig|msgFlagHasHopLimit|msgFlagHasHopCount|msgFlagHasSeq) != 0 {
		return nil, fmt.Errorf("%w: unknown message flags %#x", ErrMalformed, flags)
	}
	size, err := d.u16()
	if err != nil {
		return nil, fmt.Errorf("size: %w", err)
	}
	// The size field counts the whole message including the 4 header bytes
	// already consumed.
	if int(size) < 4 {
		return nil, fmt.Errorf("%w: message size %d", ErrMalformed, size)
	}
	body, err := d.bytes(int(size) - 4)
	if err != nil {
		return nil, fmt.Errorf("body (%d bytes): %w", size-4, err)
	}
	md := &decoder{buf: body}

	m := &Message{Type: MsgType(typ)}
	if flags&msgFlagHasOrig != 0 {
		m.HasOriginator = true
		ob, err := md.bytes(mnet.AddrLen)
		if err != nil {
			return nil, fmt.Errorf("originator: %w", err)
		}
		copy(m.Originator[:], ob)
	}
	if flags&msgFlagHasHopLimit != 0 {
		m.HasHopLimit = true
		if m.HopLimit, err = md.u8(); err != nil {
			return nil, fmt.Errorf("hop limit: %w", err)
		}
	}
	if flags&msgFlagHasHopCount != 0 {
		m.HasHopCount = true
		if m.HopCount, err = md.u8(); err != nil {
			return nil, fmt.Errorf("hop count: %w", err)
		}
	}
	if flags&msgFlagHasSeq != 0 {
		m.HasSeqNum = true
		if m.SeqNum, err = md.u16(); err != nil {
			return nil, fmt.Errorf("seqnum: %w", err)
		}
	}
	if m.TLVs, _, err = decodeTLVBlock(md, false); err != nil {
		return nil, fmt.Errorf("message TLVs: %w", err)
	}
	for md.remaining() > 0 {
		b, err := decodeAddrBlock(md)
		if err != nil {
			return nil, fmt.Errorf("address block %d: %w", len(m.AddrBlocks), err)
		}
		m.AddrBlocks = append(m.AddrBlocks, *b)
	}
	return m, nil
}

// decodeTLVBlock reads one TLV block. With indexed=false it returns message
// TLVs (rejecting indexed entries); with indexed=true the reverse.
func decodeTLVBlock(d *decoder, indexed bool) ([]TLV, []AddrTLV, error) {
	blockLen, err := d.u16()
	if err != nil {
		return nil, nil, fmt.Errorf("block length: %w", err)
	}
	block, err := d.bytes(int(blockLen))
	if err != nil {
		return nil, nil, fmt.Errorf("block body: %w", err)
	}
	bd := &decoder{buf: block}
	var tlvs []TLV
	var atlvs []AddrTLV
	for bd.remaining() > 0 {
		typ, err := bd.u8()
		if err != nil {
			return nil, nil, err
		}
		flags, err := bd.u8()
		if err != nil {
			return nil, nil, ErrTruncated
		}
		if flags&^(tlvFlagHasValue|tlvFlagHasIndex|tlvFlagWideLen) != 0 {
			return nil, nil, fmt.Errorf("%w: unknown TLV flags %#x", ErrMalformed, flags)
		}
		hasIndex := flags&tlvFlagHasIndex != 0
		if hasIndex != indexed {
			return nil, nil, fmt.Errorf("%w: TLV indexing mismatch (indexed=%v)", ErrMalformed, hasIndex)
		}
		var idxStart, idxStop uint8
		if hasIndex {
			if idxStart, err = bd.u8(); err != nil {
				return nil, nil, ErrTruncated
			}
			if idxStop, err = bd.u8(); err != nil {
				return nil, nil, ErrTruncated
			}
			if idxStart > idxStop {
				return nil, nil, fmt.Errorf("%w: TLV index range [%d,%d]", ErrMalformed, idxStart, idxStop)
			}
		}
		var value []byte
		if flags&tlvFlagHasValue != 0 {
			var vlen int
			if flags&tlvFlagWideLen != 0 {
				wl, err := bd.u16()
				if err != nil {
					return nil, nil, ErrTruncated
				}
				vlen = int(wl)
			} else {
				bl, err := bd.u8()
				if err != nil {
					return nil, nil, ErrTruncated
				}
				vlen = int(bl)
			}
			raw, err := bd.bytes(vlen)
			if err != nil {
				return nil, nil, fmt.Errorf("TLV value (%d bytes): %w", vlen, err)
			}
			value = append([]byte(nil), raw...)
		} else if flags&tlvFlagWideLen != 0 {
			return nil, nil, fmt.Errorf("%w: wide-length flag without value", ErrMalformed)
		}
		if hasIndex {
			atlvs = append(atlvs, AddrTLV{Type: typ, IndexStart: idxStart, IndexStop: idxStop, Value: value})
		} else {
			tlvs = append(tlvs, TLV{Type: typ, Value: value})
		}
	}
	return tlvs, atlvs, nil
}

func decodeAddrBlock(d *decoder) (*AddrBlock, error) {
	num, err := d.u8()
	if err != nil {
		return nil, fmt.Errorf("address count: %w", err)
	}
	if num == 0 {
		return nil, fmt.Errorf("%w: empty address block", ErrMalformed)
	}
	flags, err := d.u8()
	if err != nil {
		return nil, fmt.Errorf("flags: %w", err)
	}
	if flags&^(abFlagHasHead|abFlagHasPrefixes) != 0 {
		return nil, fmt.Errorf("%w: unknown address block flags %#x", ErrMalformed, flags)
	}
	headLen := 0
	var head []byte
	if flags&abFlagHasHead != 0 {
		hl, err := d.u8()
		if err != nil {
			return nil, fmt.Errorf("head length: %w", err)
		}
		if int(hl) == 0 || int(hl) >= mnet.AddrLen {
			return nil, fmt.Errorf("%w: head length %d", ErrMalformed, hl)
		}
		headLen = int(hl)
		if head, err = d.bytes(headLen); err != nil {
			return nil, fmt.Errorf("head bytes: %w", err)
		}
	}
	b := &AddrBlock{Addrs: make([]mnet.Addr, num)}
	tail := mnet.AddrLen - headLen
	for i := range b.Addrs {
		tb, err := d.bytes(tail)
		if err != nil {
			return nil, fmt.Errorf("address %d: %w", i, err)
		}
		copy(b.Addrs[i][:headLen], head)
		copy(b.Addrs[i][headLen:], tb)
	}
	if flags&abFlagHasPrefixes != 0 {
		pb, err := d.bytes(int(num))
		if err != nil {
			return nil, fmt.Errorf("prefix lengths: %w", err)
		}
		b.PrefixLens = append([]uint8(nil), pb...)
		for _, p := range b.PrefixLens {
			if int(p) > 8*mnet.AddrLen {
				return nil, fmt.Errorf("%w: prefix length %d", ErrMalformed, p)
			}
		}
	}
	_, atlvs, err := decodeTLVBlock(d, true)
	if err != nil {
		return nil, fmt.Errorf("address TLVs: %w", err)
	}
	for _, tlv := range atlvs {
		if int(tlv.IndexStop) >= int(num) {
			return nil, fmt.Errorf("%w: TLV index %d over %d addresses", ErrMalformed, tlv.IndexStop, num)
		}
	}
	b.TLVs = atlvs
	return b, nil
}
