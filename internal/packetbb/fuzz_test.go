package packetbb

import (
	"bytes"
	"testing"

	"manetkit/internal/mnet"
)

// fuzzSeeds are valid wire encodings covering every element of the format:
// packet sequence numbers, packet/message/address TLVs, shared-head address
// compression, prefix lengths, multi-message packets.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	n1 := mnet.MustParseAddr("10.0.0.1")
	n2 := mnet.MustParseAddr("10.0.0.2")
	n3 := mnet.MustParseAddr("10.9.0.3")
	hello := Message{
		Type:       MsgHello,
		Originator: n1,
		SeqNum:     41,
		TLVs:       []TLV{{Type: TLVValidityTime, Value: U32(7000)}, {Type: TLVWillingness, Value: []byte{3}}},
		AddrBlocks: []AddrBlock{{
			Addrs: []mnet.Addr{n2, n3},
			TLVs: []AddrTLV{
				{Type: ATLVLinkStatus, IndexStart: 0, IndexStop: 1, Value: []byte{LinkStatusSymmetric}},
				{Type: ATLVMPR, IndexStart: 0, IndexStop: 0},
			},
		}},
	}
	tc := Message{
		Type:       MsgTC,
		Originator: n2,
		HopLimit:   16,
		HopCount:   2,
		SeqNum:     900,
		TLVs:       []TLV{{Type: TLVANSN, Value: U16(17)}},
		AddrBlocks: []AddrBlock{{Addrs: []mnet.Addr{n1, n3}}},
	}
	rreq := Message{
		Type:       MsgRREQ,
		Originator: n1,
		HopLimit:   10,
		SeqNum:     7,
		AddrBlocks: []AddrBlock{{
			Addrs:      []mnet.Addr{n1, n3},
			PrefixLens: []uint8{32, 32},
			TLVs: []AddrTLV{
				{Type: ATLVOrigSeq, IndexStart: 0, IndexStop: 0, Value: U16(55)},
				{Type: ATLVHopCount, IndexStart: 1, IndexStop: 1, Value: []byte{4}},
			},
		}},
	}
	packets := []*Packet{
		{Messages: []Message{hello}},
		{SeqNum: 1234, HasSeqNum: true, TLVs: []TLV{{Type: 200, Value: []byte{1, 2, 3}}}, Messages: []Message{tc}},
		{Messages: []Message{hello, tc, rreq}},
	}
	var out [][]byte
	for _, p := range packets {
		enc, err := EncodePacket(p)
		if err != nil {
			tb.Fatalf("seed encode: %v", err)
		}
		out = append(out, enc)
		// A corrupted variant of every seed: decoders meet these frames
		// whenever the emulated medium mangles payloads in flight.
		bad := append([]byte(nil), enc...)
		bad[len(bad)/2] ^= 0x55
		out = append(out, bad)
		out = append(out, enc[:len(enc)/2])
	}
	return out
}

// FuzzDecodePacket asserts the decoder never panics on arbitrary input,
// and that accepted inputs reach an encode/decode fixed point: the
// re-encoding of a decoded packet decodes to an identical re-encoding.
func FuzzDecodePacket(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := DecodePacket(data)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		enc, err := EncodePacket(pkt)
		if err != nil {
			t.Fatalf("decoded packet failed to re-encode: %v\n% x", err, data)
		}
		pkt2, err := DecodePacket(enc)
		if err != nil {
			t.Fatalf("re-encoding failed to decode: %v\n% x", err, enc)
		}
		enc2, err := EncodePacket(pkt2)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode/decode not a fixed point:\nfirst:  % x\nsecond: % x", enc, enc2)
		}
	})
}

// FuzzDecodeMessage is the same property at message granularity.
func FuzzDecodeMessage(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	m := Message{
		Type:       MsgRREP,
		Originator: mnet.MustParseAddr("10.0.0.9"),
		SeqNum:     3,
		AddrBlocks: []AddrBlock{{Addrs: []mnet.Addr{mnet.MustParseAddr("10.0.0.1")}}},
	}
	enc, err := EncodeMessage(&m)
	if err != nil {
		f.Fatalf("seed encode: %v", err)
	}
	f.Add(enc)
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeMessage(data)
		if err != nil {
			return
		}
		enc, err := EncodeMessage(msg)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v\n% x", err, data)
		}
		msg2, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("re-encoding failed to decode: %v\n% x", err, enc)
		}
		enc2, err := EncodeMessage(msg2)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode/decode not a fixed point:\nfirst:  % x\nsecond: % x", enc, enc2)
		}
	})
}
