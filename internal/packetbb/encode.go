package packetbb

import (
	"fmt"

	"manetkit/internal/mnet"
)

// Wire-format constants. The layout mirrors RFC 5444's structure with a
// simplified flag encoding; see package documentation.
const (
	pktFlagHasSeq  = 0x01
	pktFlagHasTLVs = 0x02

	msgFlagHasOrig     = 0x01
	msgFlagHasHopLimit = 0x02
	msgFlagHasHopCount = 0x04
	msgFlagHasSeq      = 0x08

	tlvFlagHasValue = 0x01
	tlvFlagHasIndex = 0x02
	tlvFlagWideLen  = 0x04

	abFlagHasHead     = 0x01
	abFlagHasPrefixes = 0x02

	maxTLVValue = 65535
	maxMsgSize  = 65535
)

// EncodePacket serialises a packet to its wire form.
func EncodePacket(p *Packet) ([]byte, error) {
	flags := byte(0)
	if p.HasSeqNum {
		flags |= pktFlagHasSeq
	}
	if len(p.TLVs) > 0 {
		flags |= pktFlagHasTLVs
	}
	buf := make([]byte, 0, 64)
	buf = append(buf, flags)
	if p.HasSeqNum {
		buf = append(buf, byte(p.SeqNum>>8), byte(p.SeqNum))
	}
	if len(p.TLVs) > 0 {
		var err error
		buf, err = appendTLVBlock(buf, p.TLVs, nil)
		if err != nil {
			return nil, fmt.Errorf("packet TLVs: %w", err)
		}
	}
	for i := range p.Messages {
		mb, err := EncodeMessage(&p.Messages[i])
		if err != nil {
			return nil, fmt.Errorf("message %d: %w", i, err)
		}
		buf = append(buf, mb...)
	}
	return buf, nil
}

// EncodeMessage serialises a single message. Header fields that are zero are
// omitted from the wire unless the corresponding Has flag is set.
func EncodeMessage(m *Message) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	hasOrig := m.HasOriginator || !m.Originator.IsUnspecified()
	hasHopLimit := m.HasHopLimit || m.HopLimit != 0
	hasHopCount := m.HasHopCount || m.HopCount != 0
	hasSeq := m.HasSeqNum || m.SeqNum != 0

	flags := byte(0)
	if hasOrig {
		flags |= msgFlagHasOrig
	}
	if hasHopLimit {
		flags |= msgFlagHasHopLimit
	}
	if hasHopCount {
		flags |= msgFlagHasHopCount
	}
	if hasSeq {
		flags |= msgFlagHasSeq
	}

	// Header: type, flags, u16 total size (patched at the end).
	buf := make([]byte, 0, 64)
	buf = append(buf, byte(m.Type), flags, 0, 0)
	if hasOrig {
		buf = append(buf, m.Originator[:]...)
	}
	if hasHopLimit {
		buf = append(buf, m.HopLimit)
	}
	if hasHopCount {
		buf = append(buf, m.HopCount)
	}
	if hasSeq {
		buf = append(buf, byte(m.SeqNum>>8), byte(m.SeqNum))
	}

	var err error
	buf, err = appendTLVBlock(buf, m.TLVs, nil)
	if err != nil {
		return nil, fmt.Errorf("message TLVs: %w", err)
	}
	for i := range m.AddrBlocks {
		buf, err = appendAddrBlock(buf, &m.AddrBlocks[i])
		if err != nil {
			return nil, fmt.Errorf("address block %d: %w", i, err)
		}
	}
	if len(buf) > maxMsgSize {
		return nil, fmt.Errorf("%w: message of %d bytes", ErrTooLarge, len(buf))
	}
	buf[2] = byte(len(buf) >> 8)
	buf[3] = byte(len(buf))
	return buf, nil
}

// appendTLVBlock writes a TLV block containing msgTLVs (index-less) or
// addrTLVs (indexed); exactly one of the two slices is used.
func appendTLVBlock(buf []byte, msgTLVs []TLV, addrTLVs []AddrTLV) ([]byte, error) {
	// Reserve the u16 block length.
	lenAt := len(buf)
	buf = append(buf, 0, 0)
	start := len(buf)
	for _, tlv := range msgTLVs {
		var err error
		buf, err = appendTLV(buf, tlv.Type, false, 0, 0, tlv.Value)
		if err != nil {
			return nil, err
		}
	}
	for _, tlv := range addrTLVs {
		var err error
		buf, err = appendTLV(buf, tlv.Type, true, tlv.IndexStart, tlv.IndexStop, tlv.Value)
		if err != nil {
			return nil, err
		}
	}
	blockLen := len(buf) - start
	if blockLen > maxTLVValue {
		return nil, fmt.Errorf("%w: TLV block of %d bytes", ErrTooLarge, blockLen)
	}
	buf[lenAt] = byte(blockLen >> 8)
	buf[lenAt+1] = byte(blockLen)
	return buf, nil
}

func appendTLV(buf []byte, typ uint8, hasIndex bool, idxStart, idxStop uint8, value []byte) ([]byte, error) {
	if len(value) > maxTLVValue {
		return nil, fmt.Errorf("%w: TLV value of %d bytes", ErrTooLarge, len(value))
	}
	flags := byte(0)
	if len(value) > 0 {
		flags |= tlvFlagHasValue
	}
	if hasIndex {
		flags |= tlvFlagHasIndex
	}
	if len(value) > 255 {
		flags |= tlvFlagWideLen
	}
	buf = append(buf, typ, flags)
	if hasIndex {
		buf = append(buf, idxStart, idxStop)
	}
	if len(value) > 0 {
		if len(value) > 255 {
			buf = append(buf, byte(len(value)>>8), byte(len(value)))
		} else {
			buf = append(buf, byte(len(value)))
		}
		buf = append(buf, value...)
	}
	return buf, nil
}

// appendAddrBlock writes an address block using shared-head compression:
// the longest common prefix of all addresses is emitted once.
func appendAddrBlock(buf []byte, b *AddrBlock) ([]byte, error) {
	head := commonHead(b.Addrs)
	flags := byte(0)
	if head > 0 {
		flags |= abFlagHasHead
	}
	if len(b.PrefixLens) > 0 {
		flags |= abFlagHasPrefixes
	}
	buf = append(buf, byte(len(b.Addrs)), flags)
	if head > 0 {
		buf = append(buf, byte(head))
		buf = append(buf, b.Addrs[0][:head]...)
	}
	for _, a := range b.Addrs {
		buf = append(buf, a[head:]...)
	}
	buf = append(buf, b.PrefixLens...)
	return appendTLVBlock(buf, nil, b.TLVs)
}

// commonHead returns the length of the longest common leading byte run of
// the addresses. A full-length head would leave zero tail bytes per address,
// which the decoder handles, but we cap at AddrLen-1 so every address
// contributes at least one byte (keeps blocks self-describing).
func commonHead(addrs []mnet.Addr) int {
	if len(addrs) < 2 {
		return 0
	}
	head := mnet.AddrLen - 1
	first := addrs[0]
	for _, a := range addrs[1:] {
		i := 0
		for i < head && a[i] == first[i] {
			i++
		}
		head = i
		if head == 0 {
			return 0
		}
	}
	return head
}
