// Package packetbb implements a generalized MANET packet/message format in
// the style of PacketBB (RFC 5444, at the time of the paper
// draft-ietf-manet-packetbb). The paper adopts PacketBB as the basis of
// MANETKit's event structure (§4.2): every protocol event that crosses the
// network carries one of these messages, and co-deployed protocols can share
// packets on the wire.
//
// The format is a faithful structural reproduction — packets containing
// messages, messages carrying TLV blocks and address blocks, address blocks
// using shared-head compression and per-address TLVs — with a simplified
// header bit layout. The codec is a complete binary wire format with
// validation on both encode and decode.
package packetbb

import (
	"errors"
	"fmt"

	"manetkit/internal/mnet"
)

// MsgType identifies the protocol message carried. Types 1–9 are reserved
// for link-state/proactive control, 10–19 for reactive control. Protocols
// may register further types.
type MsgType uint8

// Well-known message types used by the protocols in this repository.
const (
	MsgHello MsgType = 1  // neighbour sensing beacon (OLSR/NHDP style)
	MsgTC    MsgType = 2  // OLSR topology control
	MsgHNA   MsgType = 3  // OLSR host-and-network association (gateways)
	MsgRREQ  MsgType = 10 // DYMO route request (routing element)
	MsgRREP  MsgType = 11 // DYMO route reply (routing element)
	MsgRERR  MsgType = 12 // DYMO route error
)

// String implements fmt.Stringer for diagnostics.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "HELLO"
	case MsgTC:
		return "TC"
	case MsgHNA:
		return "HNA"
	case MsgRREQ:
		return "RREQ"
	case MsgRREP:
		return "RREP"
	case MsgRERR:
		return "RERR"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Well-known message-TLV types shared between protocols.
const (
	TLVValidityTime uint8 = 1 // message validity time, milliseconds (u32)
	TLVIntervalTime uint8 = 2 // emission interval, milliseconds (u32)
	TLVWillingness  uint8 = 3 // relay willingness 0..7 (u8)
	TLVANSN         uint8 = 4 // advertised neighbour sequence number (u16)
	TLVContentSeq   uint8 = 5 // content sequence number (u16)
)

// Well-known address-block TLV types.
const (
	ATLVLinkStatus uint8 = 1 // per-address link status (u8: LinkStatus*)
	ATLVMPR        uint8 = 2 // flag: address selected as MPR
	ATLVOrigSeq    uint8 = 3 // originator sequence number (u16), DYMO
	ATLVHopCount   uint8 = 4 // accumulated hop count (u8), DYMO path accumulation
	ATLVTargetSeq  uint8 = 5 // target sequence number (u16), DYMO
	ATLVGateway    uint8 = 6 // flag: address is an attached-network gateway
)

// Link status values carried in ATLVLinkStatus.
const (
	LinkStatusHeard     uint8 = 1 // asymmetric: we hear them
	LinkStatusSymmetric uint8 = 2 // bidirectional link confirmed
	LinkStatusLost      uint8 = 3 // link recently lost
)

// TLV is a type-length-value element attached to a packet or message.
type TLV struct {
	Type  uint8
	Value []byte
}

// AddrTLV is a TLV attached to a contiguous range of addresses
// [IndexStart, IndexStop] within an address block.
type AddrTLV struct {
	Type       uint8
	IndexStart uint8
	IndexStop  uint8
	Value      []byte
}

// AddrBlock groups addresses sharing semantics, with optional per-address
// prefix lengths and attached TLVs. On the wire the common head bytes of
// the addresses are stored once (shared-head compression).
type AddrBlock struct {
	Addrs      []mnet.Addr
	PrefixLens []uint8   // empty, or exactly one entry per address
	TLVs       []AddrTLV // index ranges refer to Addrs
}

// Message is a single protocol message: header fields, message TLVs and
// address blocks.
type Message struct {
	Type       MsgType
	Originator mnet.Addr
	HopLimit   uint8
	HopCount   uint8
	SeqNum     uint16

	// HasOriginator etc. control which header fields are present on the
	// wire; Encode sets them implicitly for non-zero fields, so most
	// callers can ignore them.
	HasOriginator bool
	HasHopLimit   bool
	HasHopCount   bool
	HasSeqNum     bool

	TLVs       []TLV
	AddrBlocks []AddrBlock
}

// Packet is the top-level wire unit: an optional packet sequence number,
// packet TLVs, and one or more messages. Multiple co-deployed protocols can
// place messages in the same packet.
type Packet struct {
	SeqNum    uint16
	HasSeqNum bool
	TLVs      []TLV
	Messages  []Message
}

// Errors reported by the codec.
var (
	ErrTruncated = errors.New("packetbb: truncated input")
	ErrMalformed = errors.New("packetbb: malformed input")
	ErrTooLarge  = errors.New("packetbb: element exceeds size limit")
)

// CorrID derives the message's correlation ID: type, originator and
// sequence number, which together identify one logical message across every
// hop of its flood or forwarding path. Sender, forwarders and receivers all
// compute the same value from the decoded message, so causal packet paths
// can be reconstructed from traces without any wire-format change.
func (m *Message) CorrID() string {
	return fmt.Sprintf("%s:%s:%d", m.Type, m.Originator, m.SeqNum)
}

// FindTLV returns the first message TLV of the given type.
func (m *Message) FindTLV(typ uint8) (TLV, bool) {
	for _, tlv := range m.TLVs {
		if tlv.Type == typ {
			return tlv, true
		}
	}
	return TLV{}, false
}

// AddrTLVFor returns the first TLV of the given type covering address index
// i in the block.
func (b *AddrBlock) AddrTLVFor(typ uint8, i int) (AddrTLV, bool) {
	for _, tlv := range b.TLVs {
		if tlv.Type == typ && int(tlv.IndexStart) <= i && i <= int(tlv.IndexStop) {
			return tlv, true
		}
	}
	return AddrTLV{}, false
}

// Clone returns a deep copy of the message, so a handler can mutate its copy
// (e.g. a fisheye interposer rewriting hop limits) without aliasing.
func (m *Message) Clone() *Message {
	c := *m
	c.TLVs = cloneTLVs(m.TLVs)
	if m.AddrBlocks == nil {
		return &c
	}
	c.AddrBlocks = make([]AddrBlock, len(m.AddrBlocks))
	for i, b := range m.AddrBlocks {
		nb := AddrBlock{
			Addrs:      append([]mnet.Addr(nil), b.Addrs...),
			PrefixLens: append([]uint8(nil), b.PrefixLens...),
		}
		if b.TLVs != nil {
			nb.TLVs = make([]AddrTLV, len(b.TLVs))
			for j, tlv := range b.TLVs {
				nt := tlv
				nt.Value = append([]byte(nil), tlv.Value...)
				nb.TLVs[j] = nt
			}
		}
		c.AddrBlocks[i] = nb
	}
	return &c
}

func cloneTLVs(in []TLV) []TLV {
	if in == nil {
		return nil
	}
	out := make([]TLV, len(in))
	for i, tlv := range in {
		nt := tlv
		nt.Value = append([]byte(nil), tlv.Value...)
		out[i] = nt
	}
	return out
}

// Validate checks structural invariants that Encode relies on.
func (m *Message) Validate() error {
	for _, b := range m.AddrBlocks {
		if len(b.Addrs) == 0 {
			return fmt.Errorf("%w: empty address block", ErrMalformed)
		}
		if len(b.Addrs) > 255 {
			return fmt.Errorf("%w: address block with %d addresses", ErrTooLarge, len(b.Addrs))
		}
		if len(b.PrefixLens) != 0 && len(b.PrefixLens) != len(b.Addrs) {
			return fmt.Errorf("%w: %d prefix lengths for %d addresses",
				ErrMalformed, len(b.PrefixLens), len(b.Addrs))
		}
		for _, p := range b.PrefixLens {
			if int(p) > 8*mnet.AddrLen {
				return fmt.Errorf("%w: prefix length %d", ErrMalformed, p)
			}
		}
		for _, tlv := range b.TLVs {
			if tlv.IndexStart > tlv.IndexStop || int(tlv.IndexStop) >= len(b.Addrs) {
				return fmt.Errorf("%w: address TLV index range [%d,%d] over %d addresses",
					ErrMalformed, tlv.IndexStart, tlv.IndexStop, len(b.Addrs))
			}
			if len(tlv.Value) > maxTLVValue {
				return fmt.Errorf("%w: address TLV value %d bytes", ErrTooLarge, len(tlv.Value))
			}
		}
	}
	for _, tlv := range m.TLVs {
		if len(tlv.Value) > maxTLVValue {
			return fmt.Errorf("%w: message TLV value %d bytes", ErrTooLarge, len(tlv.Value))
		}
	}
	return nil
}

// U8, U16 and U32 build big-endian TLV values; the matching ParseU* helpers
// decode them. They keep protocol code free of manual byte slicing.
func U8(v uint8) []byte   { return []byte{v} }
func U16(v uint16) []byte { return []byte{byte(v >> 8), byte(v)} }
func U32(v uint32) []byte {
	return []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// ParseU8 decodes a 1-byte TLV value.
func ParseU8(b []byte) (uint8, error) {
	if len(b) != 1 {
		return 0, fmt.Errorf("%w: u8 value of %d bytes", ErrMalformed, len(b))
	}
	return b[0], nil
}

// ParseU16 decodes a 2-byte big-endian TLV value.
func ParseU16(b []byte) (uint16, error) {
	if len(b) != 2 {
		return 0, fmt.Errorf("%w: u16 value of %d bytes", ErrMalformed, len(b))
	}
	return uint16(b[0])<<8 | uint16(b[1]), nil
}

// ParseU32 decodes a 4-byte big-endian TLV value.
func ParseU32(b []byte) (uint32, error) {
	if len(b) != 4 {
		return 0, fmt.Errorf("%w: u32 value of %d bytes", ErrMalformed, len(b))
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
}
