package packetbb

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"manetkit/internal/mnet"
)

func addr(s string) mnet.Addr { return mnet.MustParseAddr(s) }

func sampleHello() *Message {
	return &Message{
		Type:       MsgHello,
		Originator: addr("10.0.0.1"),
		HopLimit:   1,
		SeqNum:     42,
		TLVs: []TLV{
			{Type: TLVValidityTime, Value: U32(6000)},
			{Type: TLVWillingness, Value: U8(3)},
		},
		AddrBlocks: []AddrBlock{{
			Addrs: []mnet.Addr{addr("10.0.0.2"), addr("10.0.0.3"), addr("10.0.0.4")},
			TLVs: []AddrTLV{
				{Type: ATLVLinkStatus, IndexStart: 0, IndexStop: 1, Value: U8(LinkStatusSymmetric)},
				{Type: ATLVLinkStatus, IndexStart: 2, IndexStop: 2, Value: U8(LinkStatusHeard)},
				{Type: ATLVMPR, IndexStart: 0, IndexStop: 0, Value: nil},
			},
		}},
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := sampleHello()
	wire, err := EncodeMessage(m)
	if err != nil {
		t.Fatalf("EncodeMessage: %v", err)
	}
	got, err := DecodeMessage(wire)
	if err != nil {
		t.Fatalf("DecodeMessage: %v", err)
	}
	// Encode sets Has flags implicitly; normalise before comparing.
	want := *m
	want.HasOriginator, want.HasHopLimit, want.HasSeqNum = true, true, true
	if !reflect.DeepEqual(got, &want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, &want)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := &Packet{
		SeqNum:    7,
		HasSeqNum: true,
		TLVs:      []TLV{{Type: 99, Value: []byte{1, 2, 3}}},
		Messages:  []Message{*sampleHello(), *sampleHello()},
	}
	p.Messages[1].Type = MsgTC
	p.Messages[1].HopLimit = 255
	wire, err := EncodePacket(p)
	if err != nil {
		t.Fatalf("EncodePacket: %v", err)
	}
	got, err := DecodePacket(wire)
	if err != nil {
		t.Fatalf("DecodePacket: %v", err)
	}
	if !got.HasSeqNum || got.SeqNum != 7 {
		t.Fatalf("packet seq = %d,%v", got.SeqNum, got.HasSeqNum)
	}
	if len(got.Messages) != 2 || got.Messages[0].Type != MsgHello || got.Messages[1].Type != MsgTC {
		t.Fatalf("messages = %+v", got.Messages)
	}
	if got.Messages[1].HopLimit != 255 {
		t.Fatalf("hop limit = %d", got.Messages[1].HopLimit)
	}
	if len(got.TLVs) != 1 || !bytes.Equal(got.TLVs[0].Value, []byte{1, 2, 3}) {
		t.Fatalf("packet TLVs = %+v", got.TLVs)
	}
}

func TestEmptyMessage(t *testing.T) {
	m := &Message{Type: MsgRERR}
	wire, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgRERR || got.HasOriginator || len(got.TLVs) != 0 || len(got.AddrBlocks) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestHeadCompressionActuallyCompresses(t *testing.T) {
	shared := &Message{Type: MsgTC, AddrBlocks: []AddrBlock{{
		Addrs: []mnet.Addr{addr("10.0.0.1"), addr("10.0.0.2"), addr("10.0.0.3"), addr("10.0.0.4")},
	}}}
	distinct := &Message{Type: MsgTC, AddrBlocks: []AddrBlock{{
		Addrs: []mnet.Addr{addr("10.0.0.1"), addr("20.0.0.2"), addr("30.0.0.3"), addr("40.0.0.4")},
	}}}
	ws, err := EncodeMessage(shared)
	if err != nil {
		t.Fatal(err)
	}
	wd, err := EncodeMessage(distinct)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) >= len(wd) {
		t.Fatalf("shared-head block (%dB) not smaller than distinct block (%dB)", len(ws), len(wd))
	}
	back, err := DecodeMessage(ws)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.AddrBlocks[0].Addrs, shared.AddrBlocks[0].Addrs) {
		t.Fatalf("compressed addresses corrupted: %v", back.AddrBlocks[0].Addrs)
	}
}

func TestPrefixLens(t *testing.T) {
	m := &Message{Type: MsgTC, AddrBlocks: []AddrBlock{{
		Addrs:      []mnet.Addr{addr("10.0.0.0"), addr("10.0.1.0")},
		PrefixLens: []uint8{24, 28},
	}}}
	wire, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.AddrBlocks[0].PrefixLens, []uint8{24, 28}) {
		t.Fatalf("prefix lens = %v", got.AddrBlocks[0].PrefixLens)
	}
}

func TestWideTLVValue(t *testing.T) {
	big := make([]byte, 1000)
	for i := range big {
		big[i] = byte(i)
	}
	m := &Message{Type: MsgTC, TLVs: []TLV{{Type: 50, Value: big}}}
	wire, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.TLVs[0].Value, big) {
		t.Fatal("wide TLV value corrupted")
	}
}

func TestValidateRejects(t *testing.T) {
	tests := []struct {
		name string
		m    *Message
	}{
		{"empty address block", &Message{AddrBlocks: []AddrBlock{{}}}},
		{"prefix count mismatch", &Message{AddrBlocks: []AddrBlock{{
			Addrs: []mnet.Addr{addr("10.0.0.1")}, PrefixLens: []uint8{24, 24},
		}}}},
		{"prefix too long", &Message{AddrBlocks: []AddrBlock{{
			Addrs: []mnet.Addr{addr("10.0.0.1")}, PrefixLens: []uint8{40},
		}}}},
		{"TLV index out of range", &Message{AddrBlocks: []AddrBlock{{
			Addrs: []mnet.Addr{addr("10.0.0.1")},
			TLVs:  []AddrTLV{{Type: 1, IndexStart: 0, IndexStop: 3}},
		}}}},
		{"TLV index inverted", &Message{AddrBlocks: []AddrBlock{{
			Addrs: []mnet.Addr{addr("10.0.0.1"), addr("10.0.0.2")},
			TLVs:  []AddrTLV{{Type: 1, IndexStart: 1, IndexStop: 0}},
		}}}},
	}
	for _, tt := range tests {
		if _, err := EncodeMessage(tt.m); err == nil {
			t.Errorf("%s: encode succeeded", tt.name)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	valid, err := EncodeMessage(sampleHello())
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"truncated header", valid[:3]},
		{"truncated body", valid[:len(valid)-2]},
		{"trailing garbage", append(append([]byte{}, valid...), 0xde, 0xad)},
		{"bad flags", func() []byte {
			b := append([]byte{}, valid...)
			b[1] |= 0x80
			return b
		}()},
		{"size below header", []byte{1, 0, 0, 2}},
	}
	for _, tt := range tests {
		if _, err := DecodeMessage(tt.buf); err == nil {
			t.Errorf("%s: decode succeeded", tt.name)
		}
	}
}

func TestDecodeNeverPanics(t *testing.T) {
	// Feed pseudo-random garbage and mutated valid messages; decoder must
	// return errors, never panic.
	rng := rand.New(rand.NewSource(1))
	valid, err := EncodeMessage(sampleHello())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		var buf []byte
		if i%2 == 0 {
			buf = make([]byte, rng.Intn(80))
			rng.Read(buf)
		} else {
			buf = append([]byte{}, valid...)
			for j := 0; j < 1+rng.Intn(4); j++ {
				buf[rng.Intn(len(buf))] ^= byte(1 << rng.Intn(8))
			}
		}
		_, _ = DecodeMessage(buf) // must not panic
		_, _ = DecodePacket(buf)
	}
}

// randomMessage builds a structurally valid random message for the
// round-trip property test.
func randomMessage(rng *rand.Rand) *Message {
	m := &Message{
		Type:       MsgType(rng.Intn(250) + 1),
		Originator: mnet.AddrFrom(rng.Uint32()),
		HopLimit:   uint8(rng.Intn(256)),
		HopCount:   uint8(rng.Intn(256)),
		SeqNum:     uint16(rng.Intn(65536)),
	}
	for i := rng.Intn(4); i > 0; i-- {
		v := make([]byte, rng.Intn(20))
		rng.Read(v)
		if len(v) == 0 {
			v = nil
		}
		m.TLVs = append(m.TLVs, TLV{Type: uint8(rng.Intn(255) + 1), Value: v})
	}
	for i := rng.Intn(3); i > 0; i-- {
		n := rng.Intn(6) + 1
		b := AddrBlock{Addrs: make([]mnet.Addr, n)}
		base := rng.Uint32()
		for j := range b.Addrs {
			if rng.Intn(2) == 0 {
				b.Addrs[j] = mnet.AddrFrom(base + uint32(j)) // shared head likely
			} else {
				b.Addrs[j] = mnet.AddrFrom(rng.Uint32())
			}
		}
		if rng.Intn(2) == 0 {
			b.PrefixLens = make([]uint8, n)
			for j := range b.PrefixLens {
				b.PrefixLens[j] = uint8(rng.Intn(33))
			}
		}
		for k := rng.Intn(3); k > 0; k-- {
			start := rng.Intn(n)
			stop := start + rng.Intn(n-start)
			v := make([]byte, rng.Intn(8))
			rng.Read(v)
			if len(v) == 0 {
				v = nil
			}
			b.TLVs = append(b.TLVs, AddrTLV{
				Type:       uint8(rng.Intn(255) + 1),
				IndexStart: uint8(start),
				IndexStop:  uint8(stop),
				Value:      v,
			})
		}
		m.AddrBlocks = append(m.AddrBlocks, b)
	}
	return m
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMessage(rng)
		wire, err := EncodeMessage(m)
		if err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		got, err := DecodeMessage(wire)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		// Normalise implicit Has flags for comparison.
		want := m.Clone()
		want.HasOriginator = want.HasOriginator || !want.Originator.IsUnspecified()
		want.HasHopLimit = want.HasHopLimit || want.HopLimit != 0
		want.HasHopCount = want.HasHopCount || want.HopCount != 0
		want.HasSeqNum = want.HasSeqNum || want.SeqNum != 0
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	m := sampleHello()
	a, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("encoding not deterministic")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := sampleHello()
	c := m.Clone()
	c.TLVs[0].Value[0] = 0xff
	c.AddrBlocks[0].Addrs[0] = addr("99.99.99.99")
	c.AddrBlocks[0].TLVs[0].Value[0] = 0xff
	if m.TLVs[0].Value[0] == 0xff || m.AddrBlocks[0].Addrs[0] == addr("99.99.99.99") ||
		m.AddrBlocks[0].TLVs[0].Value[0] == 0xff {
		t.Fatal("Clone shares storage with original")
	}
}

func TestFindTLVAndAddrTLVFor(t *testing.T) {
	m := sampleHello()
	if tlv, ok := m.FindTLV(TLVWillingness); !ok || tlv.Value[0] != 3 {
		t.Fatalf("FindTLV(Willingness) = %+v, %v", tlv, ok)
	}
	if _, ok := m.FindTLV(200); ok {
		t.Fatal("FindTLV found absent type")
	}
	b := &m.AddrBlocks[0]
	if tlv, ok := b.AddrTLVFor(ATLVLinkStatus, 1); !ok || tlv.Value[0] != LinkStatusSymmetric {
		t.Fatalf("AddrTLVFor(idx 1) = %+v, %v", tlv, ok)
	}
	if tlv, ok := b.AddrTLVFor(ATLVLinkStatus, 2); !ok || tlv.Value[0] != LinkStatusHeard {
		t.Fatalf("AddrTLVFor(idx 2) = %+v, %v", tlv, ok)
	}
	if _, ok := b.AddrTLVFor(ATLVMPR, 2); ok {
		t.Fatal("AddrTLVFor matched outside index range")
	}
}

func TestParseHelpers(t *testing.T) {
	if v, err := ParseU8(U8(200)); err != nil || v != 200 {
		t.Fatalf("ParseU8 = %d, %v", v, err)
	}
	if v, err := ParseU16(U16(65534)); err != nil || v != 65534 {
		t.Fatalf("ParseU16 = %d, %v", v, err)
	}
	if v, err := ParseU32(U32(4_000_000_007)); err != nil || v != 4_000_000_007 {
		t.Fatalf("ParseU32 = %d, %v", v, err)
	}
	for _, err := range []error{
		func() error { _, e := ParseU8(nil); return e }(),
		func() error { _, e := ParseU16([]byte{1}); return e }(),
		func() error { _, e := ParseU32([]byte{1, 2, 3}); return e }(),
	} {
		if !errors.Is(err, ErrMalformed) {
			t.Fatalf("short value error = %v", err)
		}
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgHello.String() != "HELLO" || MsgTC.String() != "TC" || MsgRREQ.String() != "RREQ" ||
		MsgRREP.String() != "RREP" || MsgRERR.String() != "RERR" {
		t.Fatal("well-known MsgType names wrong")
	}
	if MsgType(200).String() != "MsgType(200)" {
		t.Fatalf("unknown MsgType renders %q", MsgType(200).String())
	}
}

func BenchmarkEncodeHello(b *testing.B) {
	m := sampleHello()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeMessage(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeHello(b *testing.B) {
	wire, err := EncodeMessage(sampleHello())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMessage(wire); err != nil {
			b.Fatal(err)
		}
	}
}
