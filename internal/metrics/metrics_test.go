package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frames_tx")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("frames_tx") != c {
		t.Fatalf("counter not interned by name")
	}

	g := r.Gauge("queue_depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}

	h := r.Histogram("lat", time.Millisecond, 10*time.Millisecond)
	h.Observe(500 * time.Microsecond) // bucket ≤1ms
	h.Observe(2 * time.Millisecond)   // bucket ≤10ms
	h.Observe(time.Minute)            // overflow bucket
	if h.Count() != 3 {
		t.Fatalf("histogram count = %d, want 3", h.Count())
	}
	snap := h.Snapshot()
	if len(snap.Buckets) != 3 {
		t.Fatalf("bucket count = %d, want 3", len(snap.Buckets))
	}
	wantCounts := []uint64{1, 1, 1}
	for i, b := range snap.Buckets {
		if b.Count != wantCounts[i] {
			t.Fatalf("bucket %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
	if snap.Buckets[2].UpperBound != 0 {
		t.Fatalf("overflow bucket bound = %v, want 0 (+inf)", snap.Buckets[2].UpperBound)
	}
	if got, want := h.Mean(), (500*time.Microsecond+2*time.Millisecond+time.Minute)/3; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

func TestNilRegistryHandsOutNilInstruments(t *testing.T) {
	var r *Registry
	if c := r.Counter("x"); c != nil {
		t.Fatalf("nil registry returned non-nil counter")
	}
	if g := r.Gauge("x"); g != nil {
		t.Fatalf("nil registry returned non-nil gauge")
	}
	if h := r.Histogram("x"); h != nil {
		t.Fatalf("nil registry returned non-nil histogram")
	}
	// All nil-instrument methods must be safe no-ops.
	r.Counter("x").Inc()
	r.Counter("x").Add(3)
	r.Gauge("x").Set(1)
	r.Gauge("x").Add(-1)
	r.Histogram("x").Observe(time.Second)
	if r.Counter("x").Value() != 0 || r.Gauge("x").Value() != 0 || r.Histogram("x").Count() != 0 {
		t.Fatalf("nil instruments reported non-zero values")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

// The disabled path must not allocate: this is the contract the core
// dispatch overhead guard builds on.
func TestDisabledPathAllocatesNothing(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.Add(1)
		h.Observe(time.Millisecond)
	}); n != 0 {
		t.Fatalf("disabled instruments allocated %.1f per run, want 0", n)
	}
}

// Enabled instruments must not allocate on the hot path either — only
// atomics.
func TestEnabledPathAllocatesNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(1)
		h.Observe(time.Millisecond)
	}); n != 0 {
		t.Fatalf("enabled instruments allocated %.1f per run, want 0", n)
	}
}

func TestSnapshotWriteTextIsSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Inc()
	r.Counter("alpha").Add(2)
	r.Gauge("mid").Set(9)
	r.Histogram("lat").Observe(time.Millisecond)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "alpha 2\n") || !strings.Contains(out, "zeta 1\n") {
		t.Fatalf("missing counters in output:\n%s", out)
	}
	if strings.Index(out, "alpha") > strings.Index(out, "zeta") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
	// Two snapshots of the same registry must render identically.
	var buf2 bytes.Buffer
	if err := r.Snapshot().WriteText(&buf2); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if buf.String() != buf2.String() {
		t.Fatalf("snapshot rendering not deterministic")
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("default")
	h.Observe(50 * time.Microsecond)
	snap := h.Snapshot()
	if len(snap.Buckets) != len(DefaultLatencyBuckets)+1 {
		t.Fatalf("bucket count = %d, want %d", len(snap.Buckets), len(DefaultLatencyBuckets)+1)
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncEnabled(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	h := NewRegistry().Histogram("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}
