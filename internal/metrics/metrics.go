// Package metrics is MANETKit's hot-path instrumentation layer: lock-cheap
// counters, gauges and fixed-bucket latency histograms, aggregated in a
// Registry shared by a whole deployment (typically one per testbed
// cluster).
//
// The design constraint is that observability must cost nothing when it is
// off. A nil *Registry hands out nil instruments, and every instrument
// method is nil-safe, so an uninstrumented call site compiles down to a
// single nil check — no map lookups, no locks, no allocations (see the
// overhead guard in internal/core). Call sites resolve their instruments
// once at construction time and keep the pointers; only Snapshot and
// instrument creation take the registry lock.
package metrics

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// usable; a nil Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level (queue depth, route count). The zero
// value is usable; a nil Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets spans 1µs–10s exponentially — wide enough for both
// per-message handler costs (µs) and route-discovery latencies (ms–s).
var DefaultLatencyBuckets = []time.Duration{
	time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
	time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	time.Second, 10 * time.Second,
}

// Histogram accumulates durations into fixed buckets chosen at creation.
// Observations use only atomics; a nil Histogram is a no-op.
type Histogram struct {
	bounds  []time.Duration // sorted upper bounds; len(buckets) == len(bounds)+1
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

func newHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	bounds = append([]time.Duration(nil), bounds...)
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations (0 on nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the average observation (0 when empty or nil).
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// HistogramSnapshot is a histogram's state at one instant.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     time.Duration `json:"sum_ns"`
	Buckets []BucketCount `json:"buckets"`
}

// BucketCount is one bucket of a HistogramSnapshot; the last bucket has
// UpperBound 0, meaning +inf.
type BucketCount struct {
	UpperBound time.Duration `json:"le_ns"`
	Count      uint64        `json:"count"`
}

// Snapshot captures the histogram. Nil histograms snapshot empty.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count.Load(), Sum: time.Duration(h.sum.Load())}
	for i := range h.buckets {
		var le time.Duration
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, BucketCount{UpperBound: le, Count: h.buckets[i].Load()})
	}
	return s
}

// Registry creates and owns instruments by name. A nil Registry hands out
// nil instruments, making every downstream call site a no-op; this is the
// "disabled" configuration and the default everywhere.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil
// registries return nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil registries
// return nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (DefaultLatencyBuckets when none are given;
// later calls reuse the first creation's buckets). Nil registries return
// nil.
func (r *Registry) Histogram(name string, bounds ...time.Duration) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a deterministic copy of every instrument's state.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry. Nil registries snapshot empty maps.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteText renders the snapshot sorted by instrument name — stable output
// for reports and tests.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "%s count=%d sum=%v mean=%v\n",
			name, h.Count, h.Sum, h.mean()); err != nil {
			return err
		}
	}
	return nil
}

func (h HistogramSnapshot) mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PublishExpvar exposes the registry under the named expvar variable (for
// mkemu's -http debug endpoint). expvar panics on duplicate names, so the
// name is published at most once per process; later calls with the same
// name are ignored.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
