// Package queue provides the FIFO queue components used throughout
// MANETKit: an unsynchronised growable ring buffer and a thread-safe
// blocking FIFO with optional bound and drop accounting.
//
// The paper lists "queues" among the utility components every protocol
// composition reuses (Table 3); the thread-per-ManetProtocol concurrency
// model in particular pairs each protocol with a dedicated FIFO of waiting
// events (§4.4).
package queue

import (
	"errors"
	"sync"

	"manetkit/internal/metrics"
)

// Ring is a growable circular buffer. It is not safe for concurrent use;
// wrap it (as FIFO does) when sharing across goroutines. The zero value is
// an empty ring.
type Ring[T any] struct {
	buf   []T
	head  int
	count int
}

// Len returns the number of queued items.
func (r *Ring[T]) Len() int { return r.count }

// Push appends v at the tail, growing the buffer as needed.
func (r *Ring[T]) Push(v T) {
	if r.count == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.count)%len(r.buf)] = v
	r.count++
}

// Pop removes and returns the head item. ok is false when the ring is empty.
func (r *Ring[T]) Pop() (v T, ok bool) {
	if r.count == 0 {
		return v, false
	}
	v = r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // release reference for GC
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	return v, true
}

// Peek returns the head item without removing it.
func (r *Ring[T]) Peek() (v T, ok bool) {
	if r.count == 0 {
		return v, false
	}
	return r.buf[r.head], true
}

func (r *Ring[T]) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]T, size)
	for i := 0; i < r.count; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}

// ErrClosed is returned by operations on a closed FIFO.
var ErrClosed = errors.New("queue: closed")

// ErrFull is returned by TryPush on a bounded FIFO at capacity.
var ErrFull = errors.New("queue: full")

// Stats counts queue activity; Dropped counts TryPush rejections on a full
// bounded queue.
type Stats struct {
	Pushed    uint64
	Popped    uint64
	Dropped   uint64
	HighWater int
}

// FIFO is a thread-safe first-in-first-out queue. A zero bound means
// unbounded. The zero value is unusable; construct with NewFIFO.
type FIFO[T any] struct {
	mu       sync.Mutex
	nonEmpty sync.Cond
	ring     Ring[T]
	bound    int
	closed   bool
	stats    Stats

	// Optional instruments (see Instrument); nil instruments are no-ops.
	mDepth   *metrics.Gauge
	mDropped *metrics.Counter
}

// NewFIFO returns an empty FIFO. bound <= 0 means unbounded.
func NewFIFO[T any](bound int) *FIFO[T] {
	q := &FIFO[T]{bound: bound}
	q.nonEmpty.L = &q.mu
	return q
}

// Instrument attaches metric instruments to the queue: depth tracks the
// live queue length and dropped counts TryPush rejections. Either may be
// nil (a nil instrument is a no-op). Call before the queue is shared.
func (q *FIFO[T]) Instrument(depth *metrics.Gauge, dropped *metrics.Counter) {
	q.mu.Lock()
	q.mDepth = depth
	q.mDropped = dropped
	q.mDepth.Set(int64(q.ring.Len()))
	q.mu.Unlock()
}

// Push enqueues v. On a bounded queue at capacity it behaves like TryPush
// (Push never blocks the producer; MANET event producers must not stall on
// a slow protocol).
func (q *FIFO[T]) Push(v T) error { return q.TryPush(v) }

// TryPush enqueues v, returning ErrFull if a bounded queue is at capacity
// or ErrClosed after Close.
func (q *FIFO[T]) TryPush(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.bound > 0 && q.ring.Len() >= q.bound {
		q.stats.Dropped++
		q.mDropped.Inc()
		return ErrFull
	}
	q.ring.Push(v)
	q.stats.Pushed++
	q.mDepth.Set(int64(q.ring.Len()))
	if n := q.ring.Len(); n > q.stats.HighWater {
		q.stats.HighWater = n
	}
	q.nonEmpty.Signal()
	return nil
}

// Pop blocks until an item is available or the queue is closed and drained,
// in which case it returns ErrClosed.
func (q *FIFO[T]) Pop() (T, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.ring.Len() == 0 && !q.closed {
		q.nonEmpty.Wait()
	}
	v, ok := q.ring.Pop()
	if !ok {
		var zero T
		return zero, ErrClosed
	}
	q.stats.Popped++
	q.mDepth.Set(int64(q.ring.Len()))
	return v, nil
}

// TryPop dequeues without blocking; ok is false when the queue is empty.
func (q *FIFO[T]) TryPop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	v, ok = q.ring.Pop()
	if ok {
		q.stats.Popped++
		q.mDepth.Set(int64(q.ring.Len()))
	}
	return v, ok
}

// Len returns the number of queued items.
func (q *FIFO[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.ring.Len()
}

// Close marks the queue closed. Queued items remain poppable; blocked Pops
// return ErrClosed once the queue drains. Close is idempotent.
func (q *FIFO[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.nonEmpty.Broadcast()
}

// Stats returns a snapshot of queue counters.
func (q *FIFO[T]) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}
