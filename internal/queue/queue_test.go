package queue

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestRingPushPopOrder(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 100; i++ {
		r.Push(i)
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d", r.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on empty ring succeeded")
	}
}

func TestRingInterleaved(t *testing.T) {
	var r Ring[int]
	next := 0
	expect := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			r.Push(next)
			next++
		}
		for i := 0; i < 2; i++ {
			v, ok := r.Pop()
			if !ok || v != expect {
				t.Fatalf("round %d: Pop = %d,%v want %d", round, v, ok, expect)
			}
			expect++
		}
	}
	for r.Len() > 0 {
		v, _ := r.Pop()
		if v != expect {
			t.Fatalf("drain: got %d want %d", v, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d items, pushed %d", expect, next)
	}
}

func TestRingPeek(t *testing.T) {
	var r Ring[string]
	if _, ok := r.Peek(); ok {
		t.Fatal("Peek on empty ring succeeded")
	}
	r.Push("a")
	r.Push("b")
	if v, ok := r.Peek(); !ok || v != "a" {
		t.Fatalf("Peek = %q,%v", v, ok)
	}
	if r.Len() != 2 {
		t.Fatal("Peek consumed an item")
	}
}

func TestRingFIFOProperty(t *testing.T) {
	// Any push sequence pops back in identical order.
	f := func(items []int16) bool {
		var r Ring[int16]
		for _, v := range items {
			r.Push(v)
		}
		for _, want := range items {
			got, ok := r.Pop()
			if !ok || got != want {
				return false
			}
		}
		_, ok := r.Pop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFIFOBasics(t *testing.T) {
	q := NewFIFO[int](0)
	for i := 0; i < 10; i++ {
		if err := q.Push(i); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 10; i++ {
		v, err := q.Pop()
		if err != nil || v != i {
			t.Fatalf("Pop = %d,%v want %d", v, err, i)
		}
	}
	if v, ok := q.TryPop(); ok {
		t.Fatalf("TryPop on empty = %d,true", v)
	}
}

func TestFIFOBounded(t *testing.T) {
	q := NewFIFO[int](2)
	if err := q.TryPush(1); err != nil {
		t.Fatal(err)
	}
	if err := q.TryPush(2); err != nil {
		t.Fatal(err)
	}
	if err := q.TryPush(3); !errors.Is(err, ErrFull) {
		t.Fatalf("TryPush over bound = %v, want ErrFull", err)
	}
	st := q.Stats()
	if st.Dropped != 1 || st.Pushed != 2 || st.HighWater != 2 {
		t.Fatalf("Stats = %+v", st)
	}
	q.TryPop()
	if err := q.TryPush(3); err != nil {
		t.Fatalf("TryPush after drain: %v", err)
	}
}

func TestFIFOClose(t *testing.T) {
	q := NewFIFO[int](0)
	q.Push(7)
	q.Close()
	if err := q.Push(8); !errors.Is(err, ErrClosed) {
		t.Fatalf("Push after Close = %v", err)
	}
	if v, err := q.Pop(); err != nil || v != 7 {
		t.Fatalf("queued item lost on Close: %d, %v", v, err)
	}
	if _, err := q.Pop(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Pop on drained closed queue = %v", err)
	}
	q.Close() // idempotent
}

func TestFIFOCloseWakesBlockedPop(t *testing.T) {
	q := NewFIFO[int](0)
	done := make(chan error, 1)
	go func() {
		_, err := q.Pop()
		done <- err
	}()
	q.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked Pop returned %v", err)
	}
}

func TestFIFOConcurrentProducersConsumers(t *testing.T) {
	const (
		producers = 8
		perProd   = 500
	)
	q := NewFIFO[int](0)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				if err := q.Push(p*perProd + i); err != nil {
					t.Errorf("Push: %v", err)
					return
				}
			}
		}(p)
	}
	go func() {
		wg.Wait()
		q.Close()
	}()

	var cwg sync.WaitGroup
	var mu sync.Mutex
	seen := make(map[int]bool, producers*perProd)
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, err := q.Pop()
				if err != nil {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("duplicate item %d", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	cwg.Wait()
	if len(seen) != producers*perProd {
		t.Fatalf("received %d items, want %d", len(seen), producers*perProd)
	}
	st := q.Stats()
	if st.Pushed != producers*perProd || st.Popped != producers*perProd {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestFIFOPerProducerOrderPreserved(t *testing.T) {
	q := NewFIFO[[2]int](0)
	const perProd = 300
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				q.Push([2]int{p, i})
			}
		}(p)
	}
	wg.Wait()
	q.Close()
	last := map[int]int{0: -1, 1: -1, 2: -1, 3: -1}
	for {
		v, err := q.Pop()
		if err != nil {
			break
		}
		if v[1] != last[v[0]]+1 {
			t.Fatalf("producer %d: got seq %d after %d", v[0], v[1], last[v[0]])
		}
		last[v[0]] = v[1]
	}
	for p, l := range last {
		if l != perProd-1 {
			t.Fatalf("producer %d: drained to %d", p, l)
		}
	}
}
