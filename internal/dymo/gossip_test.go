package dymo

import (
	"testing"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/testbed"
)

func TestGossipFlooderProbability(t *testing.T) {
	g := NewGossipFlooder(0.5, 42)
	now := testbed.Epoch
	prev := mnet.MustParseAddr("10.0.0.2")
	forwards := 0
	const n = 2000
	for i := 0; i < n; i++ {
		orig := mnet.AddrFrom(uint32(0x0a010000 + i))
		if g.ShouldForward(orig, uint16(i), prev, now) {
			forwards++
		}
	}
	if forwards < 900 || forwards > 1100 {
		t.Fatalf("forward rate %d/%d far from p=0.5", forwards, n)
	}
}

func TestGossipFlooderDedups(t *testing.T) {
	g := NewGossipFlooder(1.0, 1)
	now := testbed.Epoch
	orig := mnet.MustParseAddr("10.0.0.9")
	prev := mnet.MustParseAddr("10.0.0.2")
	if !g.ShouldForward(orig, 7, prev, now) {
		t.Fatal("p=1 flooder refused first copy")
	}
	if g.ShouldForward(orig, 7, prev, now) {
		t.Fatal("duplicate forwarded")
	}
	g.Seen(orig, 8, now)
	if g.ShouldForward(orig, 8, prev, now) {
		t.Fatal("pre-seen message forwarded")
	}
}

func TestGossipFlooderClampsP(t *testing.T) {
	lo := NewGossipFlooder(-3, 1)
	hi := NewGossipFlooder(9, 1)
	now := testbed.Epoch
	prev := mnet.MustParseAddr("10.0.0.2")
	if lo.ShouldForward(mnet.MustParseAddr("10.0.0.3"), 1, prev, now) {
		t.Fatal("p clamped to 0 still forwards")
	}
	if !hi.ShouldForward(mnet.MustParseAddr("10.0.0.3"), 1, prev, now) {
		t.Fatal("p clamped to 1 refuses")
	}
}

func TestGossipFloodingDiscoveryWorks(t *testing.T) {
	// A dense clique with p=0.7 gossip: discovery still completes, with
	// fewer forwards than blind flooding.
	c, nodes := deployDYMO(t, 8, Config{})
	for i, n := range nodes {
		n.dymo.SetFlooder(NewGossipFlooder(0.7, int64(i+1)))
	}
	if err := c.Clique(); err != nil {
		t.Fatal(err)
	}
	c.Run(3 * time.Second)
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[7], []byte("x"))
	c.Run(2 * time.Second)
	if _, _, err := nodes[0].dymo.Routes().Lookup(c.Addrs()[7]); err != nil {
		t.Fatalf("gossip discovery failed: %v", err)
	}
	var forwards uint64
	for _, n := range nodes {
		forwards += n.dymo.State().Stats().RREQForwards
	}
	// Blind flooding on an 8-clique forwards 6 times (every non-origin,
	// non-target node); gossip at 0.7 must do no more.
	if forwards > 6 {
		t.Fatalf("gossip forwards = %d", forwards)
	}
}
