package dymo

import (
	"math/rand"
	"sync"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/event"
	"manetkit/internal/mnet"
)

// GossipFlooder is the probabilistic-flooding alternative the paper's
// survey cites (§2, Haas et al.): each node re-broadcasts a route request
// with probability P instead of deterministically (blind) or by relay
// selection (MPR). Plug it in with DYMO.SetFlooder.
type GossipFlooder struct {
	p float64

	mu   sync.Mutex
	rng  *rand.Rand
	seen map[dupKey]time.Time
}

var _ Flooder = (*GossipFlooder)(nil)

// NewGossipFlooder builds a flooder with re-broadcast probability p,
// seeded for reproducibility.
func NewGossipFlooder(p float64, seed int64) *GossipFlooder {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return &GossipFlooder{
		p:    p,
		rng:  rand.New(rand.NewSource(seed)),
		seen: make(map[dupKey]time.Time),
	}
}

// ShouldForward implements Flooder: dedup, then a biased coin.
func (g *GossipFlooder) ShouldForward(orig mnet.Addr, seq uint16, prevHop mnet.Addr, now time.Time) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	k := dupKey{orig: orig, seq: seq}
	if _, dup := g.seen[k]; dup {
		return false
	}
	g.seen[k] = now
	// Opportunistic cleanup of stale entries.
	if len(g.seen) > 4096 {
		for key, t := range g.seen {
			if now.Sub(t) > time.Minute {
				delete(g.seen, key)
			}
		}
	}
	return g.rng.Float64() < g.p
}

// Seen implements Flooder.
func (g *GossipFlooder) Seen(orig mnet.Addr, seq uint16, now time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seen[dupKey{orig: orig, seq: seq}] = now
}

// EnableMultipath applies the multipath DYMO variant (§5.2, after Galvez &
// Ruiz): up to maxPaths link-disjoint paths are computed within a single
// route discovery. Per the paper, three components change:
//
//  1. the S element's route entries accommodate path lists (our route
//     table template already stores []Path; the flag switches the update
//     rule to retain equal-seq alternatives);
//  2. the RE handler is replaced by a version that processes — rather than
//     discards — duplicate route requests to find alternative paths
//     (handled by the target replying to multiple distinct previous hops);
//  3. the RERR handler only reports an error when no alternative path
//     remains (InvalidatePath keeps survivors).
//
// The handler components are swapped under quiescence so the change is
// atomic with respect to event processing.
func (d *DYMO) EnableMultipath(maxPaths int) error {
	if maxPaths < 2 {
		maxPaths = 2
	}
	// Swap the RE and RERR handlers for the multipath versions. The
	// handler logic shares d's methods; the replacement components gate
	// the multipath behaviour through the state flag set below, so the
	// observable reconfiguration is the CF-level component swap.
	if err := d.proto.ReplaceHandler("re-handler",
		core.NewHandler("re-handler-multipath", event.REIn, d.onRE)); err != nil {
		return err
	}
	if err := d.proto.ReplaceHandler("rerr-handler",
		core.NewHandler("rerr-handler-multipath", event.RerrIn, d.onRERR)); err != nil {
		return err
	}
	d.state.mu.Lock()
	d.state.multipath = true
	d.state.maxPaths = maxPaths
	d.state.mu.Unlock()
	return nil
}

// DisableMultipath restores the single-path protocol.
func (d *DYMO) DisableMultipath() error {
	if err := d.proto.ReplaceHandler("re-handler-multipath",
		core.NewHandler("re-handler", event.REIn, d.onRE)); err != nil {
		return err
	}
	if err := d.proto.ReplaceHandler("rerr-handler-multipath",
		core.NewHandler("rerr-handler", event.RerrIn, d.onRERR)); err != nil {
		return err
	}
	d.state.mu.Lock()
	d.state.multipath = false
	d.state.mu.Unlock()
	return nil
}
