// Package dymo implements the DYMO (Dynamic MANET On-demand) reactive
// routing protocol as a MANETKit composition (§5.2, Fig 6): a DYMO
// ManetProtocol atop the System CF, using the Neighbour Detection CF for
// link-break notification and the System CF's NetLink packet filter for
// its data-plane triggers (NO_ROUTE, ROUTE_UPDATE, SEND_ROUTE_ERR).
//
// The package also provides the paper's two DYMO variants: optimised
// flooding (RREQ dissemination through a shared MPR CF instead of blind
// re-broadcast) and multipath DYMO (link-disjoint path accumulation in a
// single discovery, per Galvez & Ruiz), both applied by fine-grained
// runtime reconfiguration.
package dymo

import (
	"sync"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/event"
	"manetkit/internal/metrics"
	"manetkit/internal/mnet"
	"manetkit/internal/packetbb"
	"manetkit/internal/route"
	"manetkit/internal/vclock"
)

// UnitName is the DYMO CF's default unit name.
const UnitName = "dymo"

// Config parameterises the DYMO CF.
type Config struct {
	// RouteLifetime is the validity added to used/learned routes
	// (default 5s).
	RouteLifetime time.Duration
	// RREQWait is the reply wait before a discovery retry (default 1s;
	// doubled per retry).
	RREQWait time.Duration
	// RREQTries bounds discovery attempts (default 3).
	RREQTries int
	// HopLimit caps control-message propagation (default 10).
	HopLimit uint8
	// AccumulatePaths enables DYMO path accumulation: RE messages gather
	// intermediate addresses so every node on the path learns routes to
	// all of them (default on, as in the DYMO draft).
	AccumulatePaths bool
	// FIB, when non-nil, receives the protocol's routes.
	FIB *route.FIB
	// Device names the FIB device for installed routes.
	Device string
	// Clock drives route lifetimes before deployment (defaults to real).
	Clock vclock.Clock
}

func (c *Config) fill() {
	if c.RouteLifetime <= 0 {
		c.RouteLifetime = 5 * time.Second
	}
	if c.RREQWait <= 0 {
		c.RREQWait = time.Second
	}
	if c.RREQTries <= 0 {
		c.RREQTries = 3
	}
	if c.HopLimit == 0 {
		c.HopLimit = 10
	}
	if c.Clock == nil {
		c.Clock = vclock.Real()
	}
}

// pendingREQ tracks one in-progress route discovery.
type pendingREQ struct {
	dst     mnet.Addr
	tries   int
	timer   vclock.Timer
	started time.Time // virtual-clock discovery start, for the latency histogram
}

// dupKey identifies an RE message for duplicate suppression.
type dupKey struct {
	orig mnet.Addr
	seq  uint16
}

// Stats counts DYMO activity (used by the evaluation harness).
type Stats struct {
	Discoveries  uint64 // route discoveries initiated
	Retries      uint64
	GiveUps      uint64
	RREQForwards uint64
	RREPSent     uint64
	RERRSent     uint64
	Unsupported  uint64 // routing elements rejected by the UERR handler
}

// State is the DYMO CF's S element (Fig 6): route table, pending-RREQ
// table, duplicate cache and sequence number.
type State struct {
	Routes *route.Table

	mu         sync.Mutex
	seq        uint16
	pending    map[mnet.Addr]*pendingREQ
	dupes      map[dupKey]time.Time
	repliedVia map[dupKey]map[mnet.Addr]bool // multipath: prev-hops already replied to
	replySeq   map[dupKey]uint16             // seq used for replies to one discovery
	stats      Stats

	// multipath is set by the variant: duplicate RREQs are mined for
	// link-disjoint paths instead of discarded.
	multipath bool
	maxPaths  int
}

// NewState returns an empty DYMO state.
func NewState(routes *route.Table) *State {
	return &State{
		Routes:     routes,
		pending:    make(map[mnet.Addr]*pendingREQ),
		dupes:      make(map[dupKey]time.Time),
		repliedVia: make(map[dupKey]map[mnet.Addr]bool),
		replySeq:   make(map[dupKey]uint16),
		maxPaths:   2,
	}
}

// NextSeq increments and returns the node's sequence number.
func (s *State) NextSeq() uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	if s.seq == 0 {
		s.seq = 1
	}
	return s.seq
}

// Seq returns the current sequence number.
func (s *State) Seq() uint16 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Stats returns a snapshot of the protocol counters.
func (s *State) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *State) bump(fn func(*Stats)) {
	s.mu.Lock()
	fn(&s.stats)
	s.mu.Unlock()
}

// seenDup records (orig, seq) and reports whether it was already known.
func (s *State) seenDup(k dupKey, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, dup := s.dupes[k]
	s.dupes[k] = now
	return dup
}

// Multipath reports whether the multipath variant is active.
func (s *State) Multipath() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.multipath
}

// freshEnough implements DYMO loop-freedom: newInfo (seq, metric) may
// overwrite an existing entry when its seq is newer, or equal-seq with a
// strictly better metric.
func freshEnough(entrySeq uint16, entryMetric int, seq uint16, metric int) bool {
	if seqNewer(seq, entrySeq) {
		return true
	}
	return seq == entrySeq && metric < entryMetric
}

// seqNewer reports a > b under 16-bit serial arithmetic.
func seqNewer(a, b uint16) bool {
	return a != b && ((a > b && a-b < 0x8000) || (a < b && b-a > 0x8000))
}

// DYMO is the DYMO ManetProtocol CF.
type DYMO struct {
	proto *core.Protocol
	state *State
	cfg   Config

	mu      sync.Mutex
	flooder Flooder // nil = blind flooding

	// Instruments, resolved from the deployment's registry on Start; nil
	// (no-op) when the deployment carries no metrics.
	mDiscoveries  *metrics.Counter
	mRetries      *metrics.Counter
	mGiveUps      *metrics.Counter
	mRREQTx       *metrics.Counter
	mDiscoveryLat *metrics.Histogram // virtual time: NoRoute -> RouteFound
}

// Flooder abstracts the optimised-flooding decision so the MPR CF can be
// plugged in (the paper's optimised-flooding variant shares the MPR
// instance with a co-deployed OLSR, §5.2).
type Flooder interface {
	ShouldForward(orig mnet.Addr, seq uint16, prevHop mnet.Addr, now time.Time) bool
	Seen(orig mnet.Addr, seq uint16, now time.Time)
}

// New builds a DYMO CF.
func New(name string, cfg Config) *DYMO {
	if name == "" {
		name = UnitName
	}
	cfg.fill()
	d := &DYMO{proto: core.NewProtocol(name), cfg: cfg}
	rt := route.NewTable(cfg.Clock)
	if cfg.FIB != nil {
		rt.SyncFIB(cfg.FIB, cfg.Device)
	}
	d.state = NewState(rt)

	d.proto.SetTuple(event.Tuple{
		Required: []event.Requirement{
			{Type: event.REIn},
			{Type: event.RerrIn},
			{Type: event.MsgIn}, // unknown routing elements -> UERR handler
			{Type: event.NhoodChange},
			{Type: event.NoRoute, Exclusive: true}, // sole reactive protocol
			{Type: event.RouteUpdate},
			{Type: event.SendRouteErr},
			{Type: event.LinkBreak},
		},
		Provided: []event.Type{event.REOut, event.RerrOut, event.RouteFound},
	})
	if err := d.proto.SetState(core.NewStateComponent("state", d.state)); err != nil {
		panic(err)
	}
	d.proto.Provide("IDYMOState", d.state)

	for _, h := range []core.Handler{
		core.NewHandler("re-handler", event.REIn, d.onRE),
		core.NewHandler("rerr-handler", event.RerrIn, d.onRERR),
		core.NewHandler("uerr-handler", event.MsgIn, d.onUnsupported),
		core.NewHandler("noroute-handler", event.NoRoute, d.onNoRoute),
		core.NewHandler("routeupdate-handler", event.RouteUpdate, d.onRouteUpdate),
		core.NewHandler("senderr-handler", event.SendRouteErr, d.onSendRouteErr),
		core.NewHandler("linkbreak-handler", event.LinkBreak, d.onLinkBreak),
		core.NewHandler("nhood-handler", event.NhoodChange, d.onNhood),
	} {
		if err := d.proto.AddHandler(h); err != nil {
			panic(err)
		}
	}
	// Periodic purge of expired routes and stale duplicate-cache entries.
	if err := d.proto.AddSource(core.NewSource("route-sweep", cfg.RouteLifetime/2, 0, d.sweep)); err != nil {
		panic(err)
	}
	d.proto.OnStart(func(ctx *core.Context) error {
		reg := ctx.Env().Metrics()
		d.mDiscoveries = reg.Counter("dymo_discoveries")
		d.mRetries = reg.Counter("dymo_retries")
		d.mGiveUps = reg.Counter("dymo_giveups")
		d.mRREQTx = reg.Counter("dymo_rreq_tx")
		d.mDiscoveryLat = reg.Histogram("dymo_discovery_latency")
		return nil
	})
	d.proto.OnStop(func(ctx *core.Context) error {
		d.state.mu.Lock()
		for _, p := range d.state.pending {
			if p.timer != nil {
				p.timer.Stop()
			}
		}
		d.state.pending = make(map[mnet.Addr]*pendingREQ)
		d.state.mu.Unlock()
		d.state.Routes.Clear()
		return nil
	})
	return d
}

// Protocol returns the DYMO CF as a deployable unit.
func (d *DYMO) Protocol() *core.Protocol { return d.proto }

// State returns the S element value.
func (d *DYMO) State() *State { return d.state }

// Routes returns the protocol's routing table.
func (d *DYMO) Routes() *route.Table { return d.state.Routes }

// SetFlooder installs (or clears, with nil) the optimised-flooding service
// — the paper's DYMO variant that replaces blind RREQ re-broadcast with
// multipoint relaying.
func (d *DYMO) SetFlooder(f Flooder) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.flooder = f
}

func (d *DYMO) currentFlooder() Flooder {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.flooder
}

// onNoRoute starts a route discovery for the buffered packet's destination.
func (d *DYMO) onNoRoute(ctx *core.Context, ev *event.Event) error {
	if ev.Route == nil {
		return nil
	}
	dst := ev.Route.Dst
	d.state.mu.Lock()
	_, already := d.state.pending[dst]
	if !already {
		d.state.pending[dst] = &pendingREQ{dst: dst, started: ctx.Clock().Now()}
		d.state.stats.Discoveries++
	}
	d.state.mu.Unlock()
	if already {
		return nil
	}
	d.mDiscoveries.Inc()
	d.sendRREQ(ctx, dst, 1)
	return nil
}

// sendRREQ broadcasts one discovery attempt and arms the retry timer.
func (d *DYMO) sendRREQ(ctx *core.Context, dst mnet.Addr, attempt int) {
	seq := d.state.NextSeq()
	msg := &packetbb.Message{
		Type:       packetbb.MsgRREQ,
		Originator: ctx.Node(),
		SeqNum:     seq,
		HopLimit:   d.cfg.HopLimit,
		AddrBlocks: []packetbb.AddrBlock{{
			Addrs: []mnet.Addr{dst},
			TLVs: []packetbb.AddrTLV{{
				Type: packetbb.ATLVTargetSeq, Value: packetbb.U16(d.lastKnownSeq(dst)),
			}},
		}},
	}
	now := ctx.Clock().Now()
	d.state.seenDup(dupKey{orig: ctx.Node(), seq: seq}, now)
	if f := d.currentFlooder(); f != nil {
		f.Seen(ctx.Node(), seq, now)
	}
	d.mRREQTx.Inc()
	ctx.Emit(&event.Event{Type: event.REOut, Msg: msg, Dst: mnet.Broadcast})

	wait := d.cfg.RREQWait << (attempt - 1) // binary exponential backoff
	timer := ctx.Clock().AfterFunc(wait, func() {
		_ = d.proto.RunLocked(func(ctx *core.Context) { d.retry(ctx, dst, attempt) })
	})
	d.state.mu.Lock()
	if p, ok := d.state.pending[dst]; ok {
		p.tries = attempt
		p.timer = timer
	} else {
		timer.Stop() // discovery completed in the meantime
	}
	d.state.mu.Unlock()
}

func (d *DYMO) retry(ctx *core.Context, dst mnet.Addr, attempt int) {
	d.state.mu.Lock()
	p, ok := d.state.pending[dst]
	if !ok || p.tries != attempt {
		d.state.mu.Unlock()
		return
	}
	if attempt >= d.cfg.RREQTries {
		delete(d.state.pending, dst)
		d.state.stats.GiveUps++
		d.state.mu.Unlock()
		d.mGiveUps.Inc()
		return
	}
	d.state.stats.Retries++
	d.mRetries.Inc()
	d.state.mu.Unlock()
	d.sendRREQ(ctx, dst, attempt+1)
}

func (d *DYMO) lastKnownSeq(dst mnet.Addr) uint16 {
	if e, ok := d.state.Routes.Get(mnet.HostPrefix(dst)); ok {
		return e.SeqNum
	}
	return 0
}

// learnRoute applies DYMO's route-update rule for (node via prevHop,
// metric, seq); it reports whether the table changed. A metric of 0 (the
// originator itself at the first hop) is treated as 1.
func (d *DYMO) learnRoute(ctx *core.Context, node, prevHop mnet.Addr, metric int, seq uint16) bool {
	if node == ctx.Node() {
		return false
	}
	if metric < 1 {
		metric = 1
	}
	dst := mnet.HostPrefix(node)
	now := ctx.Clock().Now()
	expiry := now.Add(d.cfg.RouteLifetime)
	cur, ok := d.state.Routes.Get(dst)
	if ok && cur.Valid {
		best, hasPath := curBest(cur, now)
		if hasPath && !freshEnough(cur.SeqNum, best.Metric, seq, metric) {
			if d.state.Multipath() && seq == cur.SeqNum {
				// The variant keeps extra link-disjoint paths of equal
				// freshness.
				d.state.Routes.AddPath(dst, d.proto.Name(), cur.SeqNum,
					route.Path{NextHop: prevHop, Metric: metric, Expires: expiry})
				return true
			}
			return false
		}
	}
	d.state.Routes.Upsert(route.Entry{
		Dst:    dst,
		Paths:  []route.Path{{NextHop: prevHop, Metric: metric, Expires: expiry}},
		SeqNum: seq,
		Valid:  true,
		Proto:  d.proto.Name(),
	})
	// Discovery for this destination is satisfied.
	d.completeDiscovery(ctx, node)
	return true
}

func curBest(e route.Entry, now time.Time) (route.Path, bool) {
	return e.Best(now)
}

// completeDiscovery finishes a pending discovery for dst, if any, and
// raises ROUTE_FOUND so the packet filter re-injects held traffic.
func (d *DYMO) completeDiscovery(ctx *core.Context, dst mnet.Addr) {
	d.state.mu.Lock()
	p, ok := d.state.pending[dst]
	if ok {
		if p.timer != nil {
			p.timer.Stop()
		}
		delete(d.state.pending, dst)
	}
	d.state.mu.Unlock()
	if ok {
		if !p.started.IsZero() {
			d.mDiscoveryLat.Observe(ctx.Clock().Now().Sub(p.started))
		}
		ctx.Emit(&event.Event{Type: event.RouteFound, Route: &event.RoutePayload{Dst: dst}})
	}
}

// onRE processes routing elements: RREQ and RREP.
func (d *DYMO) onRE(ctx *core.Context, ev *event.Event) error {
	msg := ev.Msg
	if msg == nil || msg.Originator == ctx.Node() || len(msg.AddrBlocks) == 0 {
		return nil
	}
	switch msg.Type {
	case packetbb.MsgRREQ:
		return d.onRREQ(ctx, ev)
	case packetbb.MsgRREP:
		return d.onRREP(ctx, ev)
	default:
		return nil
	}
}

func (d *DYMO) onRREQ(ctx *core.Context, ev *event.Event) error {
	msg := ev.Msg
	target := msg.AddrBlocks[0].Addrs[0]
	now := ctx.Clock().Now()
	metric := int(msg.HopCount) + 1

	// Reverse route to the RREQ originator (and any accumulated path).
	d.learnRoute(ctx, msg.Originator, ev.Src, metric, msg.SeqNum)
	d.learnAccumulated(ctx, msg, ev.Src)

	k := dupKey{orig: msg.Originator, seq: msg.SeqNum}
	dup := d.state.seenDup(k, now)

	if target == ctx.Node() {
		return d.replyToRREQ(ctx, ev, k, dup)
	}
	if dup && !d.state.Multipath() {
		return nil
	}
	if dup {
		// Multipath intermediate nodes still suppress duplicate
		// re-broadcast (paths diverge at the target, not mid-network).
		return nil
	}
	if msg.HopLimit <= 1 {
		return nil
	}
	// Optimised flooding: only relay when the previous hop selected us.
	if f := d.currentFlooder(); f != nil && !f.ShouldForward(msg.Originator, msg.SeqNum, ev.Src, now) {
		return nil
	}
	fwd := msg.Clone()
	fwd.HopLimit--
	fwd.HopCount++
	if d.cfg.AccumulatePaths {
		appendAccumulated(fwd, ctx.Node(), fwd.HopCount)
	}
	d.state.bump(func(st *Stats) { st.RREQForwards++ })
	ctx.Emit(&event.Event{Type: event.REOut, Msg: fwd, Dst: mnet.Broadcast})
	return nil
}

// replyToRREQ generates the RREP at the target. The base protocol replies
// only to the first copy; the multipath variant's replacement RE handler
// replies to up to maxPaths distinct previous hops (link-disjoint paths).
func (d *DYMO) replyToRREQ(ctx *core.Context, ev *event.Event, k dupKey, dup bool) error {
	msg := ev.Msg
	d.state.mu.Lock()
	replied := d.state.repliedVia[k]
	if replied == nil {
		replied = make(map[mnet.Addr]bool)
		d.state.repliedVia[k] = replied
	}
	canReply := false
	if !dup {
		canReply = true
	} else if d.state.multipath && !replied[ev.Src] && len(replied) < d.state.maxPaths {
		canReply = true
	}
	if canReply {
		replied[ev.Src] = true
	}
	d.state.mu.Unlock()
	if !canReply {
		return nil
	}

	// All replies to one discovery carry the same sequence number so the
	// originator retains them as equal-freshness alternative paths.
	d.state.mu.Lock()
	seq, ok := d.state.replySeq[k]
	d.state.mu.Unlock()
	if !ok {
		seq = d.state.NextSeq()
		d.state.mu.Lock()
		d.state.replySeq[k] = seq
		d.state.mu.Unlock()
	}

	rrep := &packetbb.Message{
		Type:       packetbb.MsgRREP,
		Originator: ctx.Node(),
		SeqNum:     seq,
		HopLimit:   d.cfg.HopLimit,
		AddrBlocks: []packetbb.AddrBlock{{
			Addrs: []mnet.Addr{msg.Originator},
			TLVs: []packetbb.AddrTLV{{
				Type: packetbb.ATLVTargetSeq, Value: packetbb.U16(msg.SeqNum),
			}},
		}},
	}
	d.state.bump(func(st *Stats) { st.RREPSent++ })
	// Unicast hop-by-hop back along the reverse route (here: the previous
	// hop the RREQ arrived from).
	ctx.Emit(&event.Event{Type: event.REOut, Msg: rrep, Dst: ev.Src})
	return nil
}

func (d *DYMO) onRREP(ctx *core.Context, ev *event.Event) error {
	msg := ev.Msg
	reqOrig := msg.AddrBlocks[0].Addrs[0] // the node that started discovery
	metric := int(msg.HopCount) + 1

	// Forward route to the RREP originator (the discovery target).
	d.learnRoute(ctx, msg.Originator, ev.Src, metric, msg.SeqNum)
	d.learnAccumulated(ctx, msg, ev.Src)

	if reqOrig == ctx.Node() {
		// Discovery complete; learnRoute already raised ROUTE_FOUND.
		return nil
	}
	// Forward the RREP one hop towards the discovery originator.
	_, p, err := d.state.Routes.Lookup(reqOrig)
	if err != nil {
		return nil // reverse route evaporated; the discovery will retry
	}
	if msg.HopLimit <= 1 {
		return nil
	}
	fwd := msg.Clone()
	fwd.HopLimit--
	fwd.HopCount++
	if d.cfg.AccumulatePaths {
		appendAccumulated(fwd, ctx.Node(), fwd.HopCount)
	}
	ctx.Emit(&event.Event{Type: event.REOut, Msg: fwd, Dst: p.NextHop})
	return nil
}

// learnAccumulated installs routes to every accumulated intermediate node.
func (d *DYMO) learnAccumulated(ctx *core.Context, msg *packetbb.Message, prevHop mnet.Addr) {
	if !d.cfg.AccumulatePaths || len(msg.AddrBlocks) < 2 {
		return
	}
	blk := &msg.AddrBlocks[1]
	for i, a := range blk.Addrs {
		hops := 1
		if tlv, ok := blk.AddrTLVFor(packetbb.ATLVHopCount, i); ok {
			if v, err := packetbb.ParseU8(tlv.Value); err == nil {
				// v is the node's distance from the originator; our
				// distance to it is msg.HopCount+1-v.
				hops = int(msg.HopCount) + 1 - int(v)
			}
		}
		if hops < 1 {
			hops = 1
		}
		d.learnRoute(ctx, a, prevHop, hops, 0)
	}
}

// appendAccumulated adds the forwarding node to the path-accumulation
// block.
func appendAccumulated(msg *packetbb.Message, self mnet.Addr, hopCount uint8) {
	for len(msg.AddrBlocks) < 2 {
		msg.AddrBlocks = append(msg.AddrBlocks, packetbb.AddrBlock{})
	}
	blk := &msg.AddrBlocks[1]
	idx := uint8(len(blk.Addrs))
	blk.Addrs = append(blk.Addrs, self)
	blk.TLVs = append(blk.TLVs, packetbb.AddrTLV{
		Type:       packetbb.ATLVHopCount,
		IndexStart: idx,
		IndexStop:  idx,
		Value:      packetbb.U8(hopCount),
	})
}

// onRouteUpdate extends the lifetime of an actively used route.
func (d *DYMO) onRouteUpdate(ctx *core.Context, ev *event.Event) error {
	if ev.Route == nil {
		return nil
	}
	d.state.Routes.ExtendLifetime(mnet.HostPrefix(ev.Route.Dst), mnet.Addr{}, d.cfg.RouteLifetime)
	return nil
}

// onLinkBreak invalidates routes through the broken next hop and
// advertises the loss.
func (d *DYMO) onLinkBreak(ctx *core.Context, ev *event.Event) error {
	if ev.Route == nil || ev.Route.NextHop.IsUnspecified() {
		return nil
	}
	d.invalidateVia(ctx, ev.Route.NextHop)
	return nil
}

// onNhood reacts to Neighbour Detection CF notifications: a lost neighbour
// invalidates the routes using it (§5.2: "route invalidation upon link
// breaks").
func (d *DYMO) onNhood(ctx *core.Context, ev *event.Event) error {
	if ev.Nhood == nil || ev.Nhood.Kind != event.NeighborLost {
		return nil
	}
	d.invalidateVia(ctx, ev.Nhood.Neighbor)
	return nil
}

// invalidateVia drops paths through nextHop; destinations left with no
// path are advertised in a RERR. The multipath variant's behaviour —
// "only send a route error when an alternative path is not available" —
// falls out of InvalidatePath keeping surviving paths.
func (d *DYMO) invalidateVia(ctx *core.Context, nextHop mnet.Addr) {
	affected := d.state.Routes.InvalidateVia(nextHop)
	var dead []mnet.Addr
	for _, p := range affected {
		if e, ok := d.state.Routes.Get(p); !ok || !e.Valid {
			dead = append(dead, p.Addr)
		}
	}
	if len(dead) > 0 {
		d.sendRERR(ctx, dead, mnet.Broadcast)
	}
}

// onSendRouteErr handles the packet filter's report that a transit packet
// had no route: notify the source with a RERR.
func (d *DYMO) onSendRouteErr(ctx *core.Context, ev *event.Event) error {
	if ev.Route == nil {
		return nil
	}
	d.sendRERR(ctx, []mnet.Addr{ev.Route.Dst}, mnet.Broadcast)
	return nil
}

// sendRERR advertises unreachable destinations.
func (d *DYMO) sendRERR(ctx *core.Context, unreachable []mnet.Addr, dst mnet.Addr) {
	msg := &packetbb.Message{
		Type:       packetbb.MsgRERR,
		Originator: ctx.Node(),
		SeqNum:     d.state.NextSeq(),
		HopLimit:   d.cfg.HopLimit,
		AddrBlocks: []packetbb.AddrBlock{{Addrs: unreachable}},
	}
	d.state.bump(func(st *Stats) { st.RERRSent++ })
	ctx.Emit(&event.Event{Type: event.RerrOut, Msg: msg, Dst: dst})
}

// onRERR invalidates listed routes that run through the RERR's sender and
// propagates the error if anything changed.
func (d *DYMO) onRERR(ctx *core.Context, ev *event.Event) error {
	msg := ev.Msg
	if msg == nil || msg.Originator == ctx.Node() || len(msg.AddrBlocks) == 0 {
		return nil
	}
	if d.state.seenDup(dupKey{orig: msg.Originator, seq: msg.SeqNum}, ctx.Clock().Now()) {
		return nil
	}
	var stillDead []mnet.Addr
	for _, dead := range msg.AddrBlocks[0].Addrs {
		p := mnet.HostPrefix(dead)
		e, ok := d.state.Routes.Get(p)
		if !ok || !e.Valid {
			continue
		}
		usesSender := false
		for _, path := range e.Paths {
			if path.NextHop == ev.Src {
				usesSender = true
				break
			}
		}
		if !usesSender {
			continue
		}
		if remains := d.state.Routes.InvalidatePath(p, ev.Src); !remains {
			stillDead = append(stillDead, dead)
		}
	}
	if len(stillDead) > 0 && msg.HopLimit > 1 {
		fwd := msg.Clone()
		fwd.HopLimit--
		fwd.HopCount++
		fwd.AddrBlocks[0] = packetbb.AddrBlock{Addrs: stillDead}
		ctx.Emit(&event.Event{Type: event.RerrOut, Msg: fwd, Dst: mnet.Broadcast})
	}
	return nil
}

// onUnsupported is the UERR handler of Fig 6: it counts routing elements
// this implementation cannot process (unknown DYMO-family message types).
func (d *DYMO) onUnsupported(ctx *core.Context, ev *event.Event) error {
	if ev.Type != event.MsgIn || ev.Msg == nil {
		return nil
	}
	d.state.bump(func(st *Stats) { st.Unsupported++ })
	return nil
}

func (d *DYMO) sweep(ctx *core.Context) {
	d.state.Routes.PurgeExpired()
	now := ctx.Clock().Now()
	d.state.mu.Lock()
	for k, t := range d.state.dupes {
		if now.Sub(t) > 30*time.Second {
			delete(d.state.dupes, k)
			delete(d.state.repliedVia, k)
			delete(d.state.replySeq, k)
		}
	}
	d.state.mu.Unlock()
}
