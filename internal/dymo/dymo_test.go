package dymo

import (
	"sync"
	"testing"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/emunet"
	"manetkit/internal/event"
	"manetkit/internal/mnet"
	"manetkit/internal/mpr"
	"manetkit/internal/neighbor"
	"manetkit/internal/testbed"
)

func TestSeqNewer(t *testing.T) {
	tests := []struct {
		a, b uint16
		want bool
	}{
		{2, 1, true},
		{1, 2, false},
		{5, 5, false},
		{0, 65535, true},  // wraparound
		{65535, 0, false}, // wraparound
	}
	for _, tt := range tests {
		if got := seqNewer(tt.a, tt.b); got != tt.want {
			t.Errorf("seqNewer(%d,%d) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestFreshEnough(t *testing.T) {
	tests := []struct {
		eSeq   uint16
		eMet   int
		seq    uint16
		metric int
		want   bool
	}{
		{5, 3, 6, 9, true},  // newer seq wins regardless of metric
		{5, 3, 5, 2, true},  // equal seq, better metric
		{5, 3, 5, 3, false}, // equal seq, equal metric
		{5, 3, 4, 1, false}, // older seq never
	}
	for _, tt := range tests {
		if got := freshEnough(tt.eSeq, tt.eMet, tt.seq, tt.metric); got != tt.want {
			t.Errorf("freshEnough(%d,%d,%d,%d) = %v", tt.eSeq, tt.eMet, tt.seq, tt.metric, got)
		}
	}
}

// dymoNode bundles the per-node composition of Fig 6.
type dymoNode struct {
	node *testbed.Node
	nd   *neighbor.Detector
	dymo *DYMO
}

func deployDYMO(t *testing.T, n int, cfg Config) (*testbed.Cluster, []*dymoNode) {
	t.Helper()
	c, err := testbed.New(n, testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	nodes := make([]*dymoNode, n)
	for i, node := range c.Nodes {
		nodes[i] = deployDYMOOn(t, c, node, cfg)
	}
	return c, nodes
}

func deployDYMOOn(t *testing.T, c *testbed.Cluster, node *testbed.Node, cfg Config) *dymoNode {
	t.Helper()
	nd := neighbor.New("", neighbor.Config{HelloInterval: time.Second, LinkLayerFeedback: true})
	cfg.Clock = c.Clock
	cfg.FIB = node.FIB()
	cfg.Device = node.Sys.NIC().Device()
	d := New("", cfg)
	for _, u := range []*core.Protocol{nd.Protocol(), d.Protocol()} {
		if err := node.Mgr.Deploy(u); err != nil {
			t.Fatal(err)
		}
		if err := u.Start(); err != nil {
			t.Fatal(err)
		}
	}
	return &dymoNode{node: node, nd: nd, dymo: d}
}

func TestRouteDiscoveryOnLine(t *testing.T) {
	c, nodes := deployDYMO(t, 5, Config{})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	// Let neighbour detection settle (not strictly required for discovery).
	c.Run(3 * time.Second)

	var mu sync.Mutex
	var delivered []string
	nodes[4].node.Sys.Filter().OnDeliver(func(src mnet.Addr, payload []byte) {
		mu.Lock()
		delivered = append(delivered, string(payload))
		mu.Unlock()
	})
	start := c.Clock.Now()
	if err := nodes[0].node.Sys.Filter().SendData(c.Addrs()[4], []byte("ping")); err != nil {
		t.Fatal(err)
	}
	c.Run(500 * time.Millisecond)

	mu.Lock()
	if len(delivered) != 1 || delivered[0] != "ping" {
		t.Fatalf("delivered = %v", delivered)
	}
	mu.Unlock()

	// Forward route at the originator: 4 hops via node 1.
	_, p, err := nodes[0].dymo.Routes().Lookup(c.Addrs()[4])
	if err != nil {
		t.Fatalf("no route after discovery: %v", err)
	}
	if p.NextHop != c.Addrs()[1] || p.Metric != 4 {
		t.Fatalf("route = %+v", p)
	}
	// Reverse route at the target.
	_, p, err = nodes[4].dymo.Routes().Lookup(c.Addrs()[0])
	if err != nil || p.NextHop != c.Addrs()[3] {
		t.Fatalf("reverse route = %+v, %v", p, err)
	}
	st := nodes[0].dymo.State().Stats()
	if st.Discoveries != 1 || st.GiveUps != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if elapsed := c.Clock.Now().Sub(start); elapsed > 500*time.Millisecond {
		t.Fatalf("discovery took %v", elapsed)
	}
}

func TestPathAccumulationLearnsIntermediates(t *testing.T) {
	c, nodes := deployDYMO(t, 5, Config{AccumulatePaths: true})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[4], []byte("x"))
	c.Run(time.Second)
	// The originator learned routes to the intermediates from the RREP's
	// accumulated path.
	for hop, dst := range []mnet.Addr{c.Addrs()[1], c.Addrs()[2], c.Addrs()[3]} {
		_, p, err := nodes[0].dymo.Routes().Lookup(dst)
		if err != nil {
			t.Fatalf("no accumulated route to hop %d (%v)", hop+1, dst)
		}
		if p.NextHop != c.Addrs()[1] {
			t.Fatalf("accumulated route to %v via %v", dst, p.NextHop)
		}
	}
	// And the target learned the reverse intermediates from the RREQ.
	for _, dst := range []mnet.Addr{c.Addrs()[1], c.Addrs()[2], c.Addrs()[3]} {
		if _, _, err := nodes[4].dymo.Routes().Lookup(dst); err != nil {
			t.Fatalf("target missing accumulated route to %v", dst)
		}
	}
}

func TestDiscoveryRetriesAndGivesUp(t *testing.T) {
	c, nodes := deployDYMO(t, 2, Config{RREQWait: 100 * time.Millisecond, RREQTries: 3})
	// No links at all: the target is unreachable.
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[1], []byte("x"))
	c.Run(2 * time.Second)
	st := nodes[0].dymo.State().Stats()
	if st.Discoveries != 1 || st.Retries != 2 || st.GiveUps != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, _, err := nodes[0].dymo.Routes().Lookup(c.Addrs()[1]); err == nil {
		t.Fatal("route materialised out of nothing")
	}
}

func TestLinkBreakTriggersRERRAndInvalidation(t *testing.T) {
	c, nodes := deployDYMO(t, 4, Config{RouteLifetime: time.Minute})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(3 * time.Second)
	// Establish 0 -> 3.
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[3], []byte("warm"))
	c.Run(time.Second)
	if _, _, err := nodes[0].dymo.Routes().Lookup(c.Addrs()[3]); err != nil {
		t.Fatalf("setup: no route: %v", err)
	}
	// Break 2-3 and send again: node 2 detects the break via MAC feedback,
	// invalidates and floods a RERR; upstream nodes drop the route.
	c.Net.CutLink(c.Addrs()[2], c.Addrs()[3])
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[3], []byte("probe"))
	c.Run(300 * time.Millisecond)

	if _, _, err := nodes[2].dymo.Routes().Lookup(c.Addrs()[3]); err == nil {
		t.Fatal("node 2 kept the broken route")
	}
	if st := nodes[2].dymo.State().Stats(); st.RERRSent == 0 {
		t.Fatalf("node 2 sent no RERR: %+v", st)
	}
	if _, _, err := nodes[1].dymo.Routes().Lookup(c.Addrs()[3]); err == nil {
		t.Fatal("node 1 kept the broken route after RERR")
	}
	if _, _, err := nodes[0].dymo.Routes().Lookup(c.Addrs()[3]); err == nil {
		t.Fatal("node 0 kept the broken route after RERR")
	}
}

// diamond builds the 4-node diamond: 0-1-3 and 0-2-3.
func diamond(t *testing.T, c *testbed.Cluster) {
	t.Helper()
	a := c.Addrs()
	q := emunet.DefaultQuality()
	for _, pair := range [][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 3}} {
		if err := c.Net.SetLink(a[pair[0]], a[pair[1]], q); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMultipathFindsDisjointPaths(t *testing.T) {
	c, nodes := deployDYMO(t, 4, Config{RouteLifetime: time.Minute})
	diamond(t, c)
	for _, n := range nodes {
		if err := n.dymo.EnableMultipath(2); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(3 * time.Second)
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[3], []byte("x"))
	c.Run(time.Second)

	e, ok := nodes[0].dymo.Routes().Get(mnet.HostPrefix(c.Addrs()[3]))
	if !ok || !e.Valid {
		t.Fatalf("no route: %+v", e)
	}
	if len(e.Paths) != 2 {
		t.Fatalf("paths = %+v, want 2 link-disjoint", e.Paths)
	}
	hops := map[mnet.Addr]bool{e.Paths[0].NextHop: true, e.Paths[1].NextHop: true}
	if !hops[c.Addrs()[1]] || !hops[c.Addrs()[2]] {
		t.Fatalf("paths not disjoint: %+v", e.Paths)
	}
}

func TestMultipathSurvivesSingleLinkBreakWithoutRediscovery(t *testing.T) {
	c, nodes := deployDYMO(t, 4, Config{RouteLifetime: time.Minute})
	diamond(t, c)
	for _, n := range nodes {
		if err := n.dymo.EnableMultipath(2); err != nil {
			t.Fatal(err)
		}
	}
	c.Run(3 * time.Second)
	var delivered int
	var mu sync.Mutex
	nodes[3].node.Sys.Filter().OnDeliver(func(mnet.Addr, []byte) {
		mu.Lock()
		delivered++
		mu.Unlock()
	})
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[3], []byte("a"))
	c.Run(time.Second)

	// Break the active best path 0-1; the alternative via 2 takes over
	// with no new discovery.
	c.Net.CutLink(c.Addrs()[0], c.Addrs()[1])
	before := nodes[0].dymo.State().Stats().Discoveries
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[3], []byte("b"))
	c.Run(time.Second)
	// First packet after the break may be lost to MAC feedback; the route
	// should have failed over for a subsequent send.
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[3], []byte("c"))
	c.Run(time.Second)

	mu.Lock()
	got := delivered
	mu.Unlock()
	if got < 2 {
		t.Fatalf("delivered = %d, want >= 2", got)
	}
	if after := nodes[0].dymo.State().Stats().Discoveries; after != before {
		t.Fatalf("multipath should avoid re-discovery: %d -> %d", before, after)
	}
	_, p, err := nodes[0].dymo.Routes().Lookup(c.Addrs()[3])
	if err != nil || p.NextHop != c.Addrs()[2] {
		t.Fatalf("failover path = %+v, %v", p, err)
	}
}

func TestMultipathDisable(t *testing.T) {
	c, nodes := deployDYMO(t, 1, Config{})
	_ = c
	d := nodes[0].dymo
	if err := d.EnableMultipath(3); err != nil {
		t.Fatal(err)
	}
	if !d.State().Multipath() {
		t.Fatal("multipath not enabled")
	}
	if _, ok := d.Protocol().CF().Plug("re-handler-multipath"); !ok {
		t.Fatal("multipath RE handler not plugged")
	}
	if err := d.DisableMultipath(); err != nil {
		t.Fatal(err)
	}
	if d.State().Multipath() {
		t.Fatal("multipath still enabled")
	}
	if _, ok := d.Protocol().CF().Plug("re-handler"); !ok {
		t.Fatal("base RE handler not restored")
	}
}

func TestOptimizedFloodingReducesRREQForwards(t *testing.T) {
	run := func(useMPR bool) uint64 {
		c, err := testbed.New(8, testbed.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		nodes := make([]*dymoNode, 8)
		relays := make([]*mpr.MPR, 8)
		for i, node := range c.Nodes {
			nodes[i] = deployDYMOOn(t, c, node, Config{})
			if useMPR {
				relays[i] = mpr.New("", mpr.Config{HelloInterval: time.Second})
				if err := node.Mgr.Deploy(relays[i].Protocol()); err != nil {
					t.Fatal(err)
				}
				if err := relays[i].Protocol().Start(); err != nil {
					t.Fatal(err)
				}
				nodes[i].dymo.SetFlooder(relays[i].Flooder())
			}
		}
		if err := c.Clique(); err != nil {
			t.Fatal(err)
		}
		c.Run(8 * time.Second) // let MPR selection converge
		nodes[0].node.Sys.Filter().SendData(c.Addrs()[7], []byte("x"))
		c.Run(time.Second)
		var forwards uint64
		for _, n := range nodes {
			forwards += n.dymo.State().Stats().RREQForwards
		}
		// Sanity: discovery succeeded either way.
		if _, _, err := nodes[0].dymo.Routes().Lookup(c.Addrs()[7]); err != nil {
			t.Fatalf("discovery failed (mpr=%v): %v", useMPR, err)
		}
		return forwards
	}
	blind := run(false)
	optimised := run(true)
	if optimised >= blind {
		t.Fatalf("optimised flooding (%d forwards) not cheaper than blind (%d)", optimised, blind)
	}
}

func TestRouteUpdateExtendsLifetime(t *testing.T) {
	c, nodes := deployDYMO(t, 2, Config{RouteLifetime: 2 * time.Second})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(time.Second)
	nodes[0].node.Sys.Filter().SendData(c.Addrs()[1], []byte("a"))
	c.Run(300 * time.Millisecond)
	if _, _, err := nodes[0].dymo.Routes().Lookup(c.Addrs()[1]); err != nil {
		t.Fatal("setup: no route")
	}
	// Keep using the route: lifetime extends past the base expiry.
	for i := 0; i < 6; i++ {
		nodes[0].node.Sys.Filter().SendData(c.Addrs()[1], []byte("keepalive"))
		c.Run(time.Second)
	}
	if _, _, err := nodes[0].dymo.Routes().Lookup(c.Addrs()[1]); err != nil {
		t.Fatal("actively used route expired")
	}
	// Stop using it: it ages out.
	c.Run(5 * time.Second)
	if _, _, err := nodes[0].dymo.Routes().Lookup(c.Addrs()[1]); err == nil {
		t.Fatal("idle route never expired")
	}
}

func TestCompositionMatchesFig6(t *testing.T) {
	c, nodes := deployDYMO(t, 1, Config{})
	on := nodes[0]
	for _, name := range []string{
		"control", "state", "re-handler", "rerr-handler", "uerr-handler",
		"noroute-handler", "routeupdate-handler", "senderr-handler",
		"linkbreak-handler", "nhood-handler", "route-sweep",
	} {
		if _, ok := on.dymo.Protocol().CF().Plug(name); !ok {
			t.Errorf("DYMO CF missing %q", name)
		}
	}
	// NO_ROUTE is consumed exclusively by DYMO.
	_, terms := on.node.Mgr.Chain(event.NoRoute)
	if len(terms) != 1 || terms[0] != "dymo" {
		t.Fatalf("NO_ROUTE terminals = %v", terms)
	}
	_ = c
}
