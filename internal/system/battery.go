package system

import (
	"sync"
	"time"
)

// Battery is the simulated power source behind the POWER_STATUS sensor.
// It drains linearly with time and additionally per transmitted frame —
// enough fidelity to drive the paper's power-aware routing variant, where
// relay willingness is derived from residual battery (§5.1).
type Battery struct {
	mu          sync.Mutex
	level       float64 // remaining fraction [0,1]
	perSecond   float64 // idle drain per second
	perFrame    float64 // drain per transmitted frame
	lastUpdated time.Time
}

// NewBattery creates a battery at the given initial level with the given
// drain rates. start anchors the time-based drain.
func NewBattery(initial, perSecond, perFrame float64, start time.Time) *Battery {
	if initial < 0 {
		initial = 0
	}
	if initial > 1 {
		initial = 1
	}
	return &Battery{level: initial, perSecond: perSecond, perFrame: perFrame, lastUpdated: start}
}

// Level returns the remaining fraction at time now.
func (b *Battery) Level(now time.Time) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.settleLocked(now)
	return b.level
}

// SpendFrame accounts one frame transmission.
func (b *Battery) SpendFrame() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.level -= b.perFrame
	if b.level < 0 {
		b.level = 0
	}
}

// Set forces the level (test/scenario control).
func (b *Battery) Set(level float64, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.level = level
	b.lastUpdated = now
}

func (b *Battery) settleLocked(now time.Time) {
	if dt := now.Sub(b.lastUpdated); dt > 0 {
		b.level -= b.perSecond * dt.Seconds()
		if b.level < 0 {
			b.level = 0
		}
		b.lastUpdated = now
	}
}
