package system

import (
	"fmt"
	"sync"
	"time"

	"manetkit/internal/emunet"
	"manetkit/internal/event"
	"manetkit/internal/mnet"
)

// dataHeader is the wire header of a data packet:
// [wireData][src 4][dst 4][ttl 1][id 8][payload...].
const dataHeaderLen = 1 + 2*mnet.AddrLen + 1 + 8

type dataPacket struct {
	Src     mnet.Addr
	Dst     mnet.Addr
	TTL     uint8
	ID      uint64
	Payload []byte
}

func encodeData(p *dataPacket) []byte {
	buf := make([]byte, 0, dataHeaderLen+len(p.Payload))
	buf = append(buf, wireData)
	buf = append(buf, p.Src[:]...)
	buf = append(buf, p.Dst[:]...)
	buf = append(buf, p.TTL)
	buf = append(buf,
		byte(p.ID>>56), byte(p.ID>>48), byte(p.ID>>40), byte(p.ID>>32),
		byte(p.ID>>24), byte(p.ID>>16), byte(p.ID>>8), byte(p.ID))
	return append(buf, p.Payload...)
}

func decodeData(b []byte) (*dataPacket, error) {
	if len(b) < dataHeaderLen || b[0] != wireData {
		return nil, fmt.Errorf("system: malformed data packet (%d bytes)", len(b))
	}
	p := &dataPacket{}
	copy(p.Src[:], b[1:5])
	copy(p.Dst[:], b[5:9])
	p.TTL = b[9]
	for i := 0; i < 8; i++ {
		p.ID = p.ID<<8 | uint64(b[10+i])
	}
	p.Payload = append([]byte(nil), b[dataHeaderLen:]...)
	return p, nil
}

// Netlink is the public face of the packet-filter component — the analogue
// of the paper's kernel module using Netfilter hooks to "examine, hold,
// drop" packets (§5.2).
type Netlink netlink

// netlink is the implementation.
type netlink struct {
	s       *System
	ttl     uint8
	cap     int
	timeout time.Duration

	mu        sync.Mutex
	nextID    uint64
	buffered  map[mnet.Addr][]*dataPacket
	onDeliver func(src mnet.Addr, payload []byte)
}

func newNetlink(s *System, ttl uint8, bufCap int, timeout time.Duration) *netlink {
	return &netlink{
		s:        s,
		ttl:      ttl,
		cap:      bufCap,
		timeout:  timeout,
		buffered: make(map[mnet.Addr][]*dataPacket),
	}
}

// OnDeliver installs the local-delivery upcall for data packets addressed
// to this node.
func (n *Netlink) OnDeliver(fn func(src mnet.Addr, payload []byte)) {
	nl := (*netlink)(n)
	nl.mu.Lock()
	defer nl.mu.Unlock()
	nl.onDeliver = fn
}

// SendData originates a data packet towards dst. With a route in the FIB it
// is forwarded immediately (refreshing the route's lifetime via
// ROUTE_UPDATE); without one it is held and NO_ROUTE is raised so a
// reactive protocol can start discovery.
func (n *Netlink) SendData(dst mnet.Addr, payload []byte) error {
	nl := (*netlink)(n)
	nl.mu.Lock()
	nl.nextID++
	pkt := &dataPacket{Src: nl.s.nic.Addr(), Dst: dst, TTL: nl.ttl, ID: nl.nextID}
	nl.mu.Unlock()
	pkt.Payload = append([]byte(nil), payload...)
	return nl.route(pkt, true)
}

// BufferedCount reports how many packets are held for dst.
func (n *Netlink) BufferedCount(dst mnet.Addr) int {
	nl := (*netlink)(n)
	nl.mu.Lock()
	defer nl.mu.Unlock()
	return len(nl.buffered[dst])
}

// corr derives the data packet's correlation ID — source plus the
// source-assigned packet ID, the identity every hop sees unchanged. Empty
// when tracing is disabled so the fast path stays allocation-free.
func (nl *netlink) corr(pkt *dataPacket) string {
	if !nl.s.proto.Tracing() {
		return ""
	}
	return fmt.Sprintf("DATA:%s:%d", pkt.Src, pkt.ID)
}

// route forwards or buffers one packet. originated marks locally-created
// packets (eligible for buffering + NO_ROUTE).
func (nl *netlink) route(pkt *dataPacket, originated bool) error {
	s := nl.s
	me := s.nic.Addr()
	if pkt.Dst == me {
		nl.deliverLocal(pkt)
		return nil
	}
	r, ok := s.fib.Lookup(pkt.Dst)
	if !ok {
		if !originated {
			// Intermediate node with a broken path: tell the protocol to
			// notify the source (§5.2 SEND_ROUTE_ERR).
			s.bumpData(func(st *Stats) { st.DataDropped++ })
			return s.proto.Emit(&event.Event{
				Type:  event.SendRouteErr,
				Route: &event.RoutePayload{Dst: pkt.Dst, Src: pkt.Src},
				Corr:  nl.corr(pkt),
			})
		}
		return nl.hold(pkt)
	}
	return nl.transmit(pkt, r.NextHop, originated)
}

// transmit sends the packet one hop with MAC feedback; a failed hop raises
// LINK_BREAK.
func (nl *netlink) transmit(pkt *dataPacket, nextHop mnet.Addr, originated bool) error {
	s := nl.s
	if originated {
		s.bumpData(func(st *Stats) { st.DataSent++ })
	} else {
		if pkt.TTL <= 1 {
			s.bumpData(func(st *Stats) { st.DataDropped++ })
			return nil
		}
		pkt.TTL--
		s.bumpData(func(st *Stats) { st.DataForwarded++ })
	}
	s.mu.Lock()
	battery := s.battery
	s.mu.Unlock()
	if battery != nil {
		battery.SpendFrame()
	}
	dst, src := pkt.Dst, pkt.Src
	corr := nl.corr(pkt)
	err := s.nic.SendWithFeedbackTagged(nextHop, encodeData(pkt), corr, func(delivered bool) {
		if delivered {
			return
		}
		_ = s.proto.Emit(&event.Event{
			Type:  event.LinkBreak,
			Route: &event.RoutePayload{Dst: dst, Src: src, NextHop: nextHop},
			Corr:  corr,
		})
	})
	if err != nil {
		return err
	}
	return s.proto.Emit(&event.Event{
		Type:  event.RouteUpdate,
		Route: &event.RoutePayload{Dst: dst, Src: src, NextHop: nextHop},
		Corr:  corr,
	})
}

// hold buffers a route-less packet and raises NO_ROUTE.
func (nl *netlink) hold(pkt *dataPacket) error {
	s := nl.s
	nl.mu.Lock()
	q := nl.buffered[pkt.Dst]
	if len(q) >= nl.cap {
		nl.mu.Unlock()
		s.bumpData(func(st *Stats) { st.DataDropped++ })
		return nil
	}
	nl.buffered[pkt.Dst] = append(q, pkt)
	nl.mu.Unlock()
	s.bumpData(func(st *Stats) { st.DataBuffered++ })

	// Expire the held packet if discovery never completes.
	if clk := s.proto.Clock(); clk != nil {
		id, dst := pkt.ID, pkt.Dst
		clk.AfterFunc(nl.timeout, func() { nl.expire(dst, id) })
	}

	return s.proto.Emit(&event.Event{
		Type:  event.NoRoute,
		Route: &event.RoutePayload{Dst: pkt.Dst, Src: pkt.Src, PacketID: pkt.ID},
		Corr:  nl.corr(pkt),
	})
}

func (nl *netlink) expire(dst mnet.Addr, id uint64) {
	nl.mu.Lock()
	q := nl.buffered[dst]
	for i, p := range q {
		if p.ID == id {
			nl.buffered[dst] = append(q[:i], q[i+1:]...)
			nl.mu.Unlock()
			nl.s.bumpData(func(st *Stats) { st.DataDropped++ })
			return
		}
	}
	nl.mu.Unlock()
}

// reinject drains the buffer for dst after ROUTE_FOUND.
func (nl *netlink) reinject(dst mnet.Addr) {
	nl.mu.Lock()
	q := nl.buffered[dst]
	delete(nl.buffered, dst)
	nl.mu.Unlock()
	for _, pkt := range q {
		_ = nl.route(pkt, true)
	}
}

// receiveData handles an incoming data frame: local delivery or forwarding.
func (nl *netlink) receiveData(f emunet.Frame) {
	pkt, err := decodeData(f.Payload)
	if err != nil {
		nl.s.bumpDecodeErr()
		return
	}
	_ = nl.route(pkt, false)
}

func (nl *netlink) deliverLocal(pkt *dataPacket) {
	nl.s.bumpData(func(st *Stats) { st.DataDelivered++ })
	nl.mu.Lock()
	fn := nl.onDeliver
	nl.mu.Unlock()
	if fn != nil {
		fn(pkt.Src, pkt.Payload)
	}
}

func (s *System) bumpData(fn func(*Stats)) {
	s.mu.Lock()
	fn(&s.stats)
	s.mu.Unlock()
}
