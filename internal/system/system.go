// Package system implements the paper's System CF (§4.3): the base-layer
// CFS unit every ManetProtocol instance is stacked on. It is the OS
// surrogate —
//
//   - its Control element initialises the routing environment (IP
//     forwarding, ICMP redirects) and hosts the context sensors;
//   - its State element manipulates the (simulated) kernel routing table
//     and lists network devices;
//   - its Forward element grounds message send/receive into the emulated
//     802.11 medium (package emunet), the libpcap/Netfilter analogue.
//
// The package also provides the NetLink packet-filter component that
// reactive protocols such as DYMO load into the System CF: it buffers
// route-less data packets and raises the NO_ROUTE / ROUTE_UPDATE /
// SEND_ROUTE_ERR / LINK_BREAK events that drive route discovery and
// invalidation (§5.2).
package system

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/emunet"
	"manetkit/internal/event"
	"manetkit/internal/kernel"
	"manetkit/internal/mnet"
	"manetkit/internal/packetbb"
	"manetkit/internal/route"
)

// UnitName is the System CF's unit name within a MANETKit deployment.
const UnitName = "system"

// Wire discriminator bytes: control traffic carries PacketBB, data traffic
// carries a data header.
const (
	wireControl byte = 0x01
	wireData    byte = 0x02
)

// Config parameterises a System CF.
type Config struct {
	// NIC is the node's attachment to the emulated medium (required).
	NIC *emunet.NIC
	// FIB is the simulated kernel forwarding table; defaults to a fresh one.
	FIB *route.FIB
	// DataTTL is the hop limit stamped on originated data packets
	// (default 16).
	DataTTL uint8
	// BufferCap bounds the per-destination packet buffer in the packet
	// filter (default 16).
	BufferCap int
	// BufferTimeout drops buffered packets whose route discovery never
	// completes (default 5s).
	BufferTimeout time.Duration
	// Battery, when non-nil, powers the POWER_STATUS sensor.
	Battery *Battery
	// SensorInterval is the context-sensor emission period (default 1s).
	SensorInterval time.Duration
}

// DeviceInfo describes one network device (the State element's
// query/list-devices operation).
type DeviceInfo struct {
	Name string
	Addr mnet.Addr
	Up   bool
}

// EnvFlags is the simulated host routing environment the Control element
// initialises.
type EnvFlags struct {
	IPForwarding  bool
	ICMPRedirects bool
}

// Stats counts System CF activity.
type Stats struct {
	CtrlSent      uint64
	CtrlReceived  uint64
	DataSent      uint64
	DataForwarded uint64
	DataDelivered uint64
	DataBuffered  uint64
	DataDropped   uint64 // TTL exhaustion, buffer overflow, buffer timeout
	DecodeErrors  uint64
}

// System is the System CF. It is built on the generic ManetProtocol CF
// machinery — the strongest form of the paper's claim that the System CF
// "is a base layer CFS unit" like any other.
type System struct {
	proto *core.Protocol
	nic   *emunet.NIC
	fib   *route.FIB

	mu       sync.Mutex
	envFlags EnvFlags
	battery  *Battery
	lastRSSI map[mnet.Addr]float64
	stats    Stats
	seq      uint16

	filter *netlink
}

// New builds a System CF over the given NIC.
func New(cfg Config) (*System, error) {
	if cfg.NIC == nil {
		return nil, errors.New("system: NIC required")
	}
	if cfg.FIB == nil {
		cfg.FIB = route.NewFIB()
	}
	if cfg.DataTTL == 0 {
		cfg.DataTTL = 16
	}
	if cfg.BufferCap <= 0 {
		cfg.BufferCap = 16
	}
	if cfg.BufferTimeout <= 0 {
		cfg.BufferTimeout = 5 * time.Second
	}
	if cfg.SensorInterval <= 0 {
		cfg.SensorInterval = time.Second
	}

	s := &System{
		proto:    core.NewProtocol(UnitName),
		nic:      cfg.NIC,
		fib:      cfg.FIB,
		battery:  cfg.Battery,
		lastRSSI: make(map[mnet.Addr]float64),
	}
	s.filter = newNetlink(s, cfg.DataTTL, cfg.BufferCap, cfg.BufferTimeout)

	s.proto.SetTuple(event.Tuple{
		Required: []event.Requirement{
			{Type: event.MsgOut},     // outgoing protocol messages to transmit
			{Type: event.RouteFound}, // re-inject buffered data packets
		},
		Provided: []event.Type{
			event.HelloIn, event.TCIn, event.HNAIn, event.REIn, event.RerrIn,
			event.NoRoute, event.RouteUpdate, event.SendRouteErr, event.LinkBreak,
			event.PowerStatus, event.LinkInfo, event.SysStatus,
		},
	})

	// Forward element: the send/receive primitives.
	fwd := kernel.NewBase("forward")
	fwd.Provide("IForward", &forwardFacade{s: s})
	if err := s.proto.SetForward(fwd); err != nil {
		return nil, err
	}
	// State element: kernel route table + device listing.
	st := core.NewStateComponent("state", &SysState{s: s})
	if err := s.proto.SetState(st); err != nil {
		return nil, err
	}
	s.proto.Provide("ISysState", &SysState{s: s})
	s.proto.Provide("ISysControl", &SysControl{s: s})

	// Netlink packet-filter plug-in (Fig 6): buffers and re-injects data
	// packets, raises the reactive-routing trigger events.
	nl := kernel.NewBase("netlink")
	nl.Provide("INetlink", s.filter)
	if err := s.proto.CF().Insert(nl); err != nil {
		return nil, err
	}

	// MSG_OUT handler: encode and transmit.
	err := s.proto.AddHandler(core.NewHandler("network-driver", event.MsgOut,
		func(ctx *core.Context, ev *event.Event) error { return s.sendControl(ev) }))
	if err != nil {
		return nil, err
	}
	// ROUTE_FOUND handler: drain the packet buffer.
	err = s.proto.AddHandler(core.NewHandler("reinject", event.RouteFound,
		func(ctx *core.Context, ev *event.Event) error {
			if ev.Route == nil {
				return errors.New("system: ROUTE_FOUND without payload")
			}
			s.filter.reinject(ev.Route.Dst)
			return nil
		}))
	if err != nil {
		return nil, err
	}

	// Context sensors (§4.5): battery and host status, emitted periodically.
	if s.battery != nil {
		err = s.proto.AddSource(core.NewSource("power-sensor", cfg.SensorInterval, 0,
			func(ctx *core.Context) {
				frac := s.battery.Level(ctx.Clock().Now())
				ctx.Emit(&event.Event{
					Type:  event.PowerStatus,
					Power: &event.PowerPayload{Fraction: frac, Draining: true},
				})
			}))
		if err != nil {
			return nil, err
		}
	}
	err = s.proto.AddSource(core.NewSource("link-sensor", cfg.SensorInterval, 0,
		func(ctx *core.Context) {
			for nb, rssi := range s.rssiSnapshot() {
				ctx.Emit(&event.Event{
					Type: event.LinkInfo,
					Link: &event.LinkPayload{Neighbor: nb, SignalDBm: rssi, Quality: qualityFromRSSI(rssi)},
				})
			}
		}))
	if err != nil {
		return nil, err
	}

	s.proto.OnStart(func(ctx *core.Context) error {
		s.nic.SetReceiver(s.receive)
		return nil
	})
	s.proto.OnStop(func(ctx *core.Context) error {
		s.nic.SetReceiver(nil)
		return nil
	})
	return s, nil
}

// Protocol returns the System CF as a deployable unit.
func (s *System) Protocol() *core.Protocol { return s.proto }

// FIB returns the simulated kernel forwarding table.
func (s *System) FIB() *route.FIB { return s.fib }

// NIC returns the underlying network attachment.
func (s *System) NIC() *emunet.NIC { return s.nic }

// Filter returns the NetLink packet-filter component.
func (s *System) Filter() *Netlink { return (*Netlink)(s.filter) }

// Stats returns a snapshot of System CF counters.
func (s *System) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// sendControl encodes the event's message into a PacketBB packet and
// transmits it.
func (s *System) sendControl(ev *event.Event) error {
	if ev.Msg == nil {
		return fmt.Errorf("system: %s event without message", ev.Type)
	}
	s.mu.Lock()
	s.seq++
	seq := s.seq
	s.stats.CtrlSent++
	battery := s.battery
	s.mu.Unlock()

	pkt := &packetbb.Packet{SeqNum: seq, HasSeqNum: true, Messages: []packetbb.Message{*ev.Msg}}
	wire, err := packetbb.EncodePacket(pkt)
	if err != nil {
		return fmt.Errorf("system: encoding %s: %w", ev.Type, err)
	}
	dst := ev.Dst
	if dst.IsUnspecified() {
		dst = mnet.Broadcast
	}
	if battery != nil {
		battery.SpendFrame()
	}
	return s.nic.SendTagged(dst, append([]byte{wireControl}, wire...), ev.Corr)
}

// receive is the NIC upcall: it decodes frames and pushes the resulting
// events up the framework (the paper's raising of events grounded in packet
// capture).
func (s *System) receive(f emunet.Frame) {
	s.mu.Lock()
	s.lastRSSI[f.Src] = f.RSSI
	s.mu.Unlock()

	if len(f.Payload) == 0 {
		s.bumpDecodeErr()
		return
	}
	switch f.Payload[0] {
	case wireControl:
		pkt, err := packetbb.DecodePacket(f.Payload[1:])
		if err != nil {
			s.bumpDecodeErr()
			return
		}
		s.mu.Lock()
		s.stats.CtrlReceived++
		s.mu.Unlock()
		for i := range pkt.Messages {
			msg := pkt.Messages[i]
			_ = s.proto.Emit(&event.Event{
				Type:   inEventType(msg.Type),
				Msg:    &msg,
				Src:    f.Src,
				Dst:    f.Dst,
				Device: f.Device,
			})
		}
	case wireData:
		s.filter.receiveData(f)
	default:
		s.bumpDecodeErr()
	}
}

func (s *System) bumpDecodeErr() {
	s.mu.Lock()
	s.stats.DecodeErrors++
	s.mu.Unlock()
}

func (s *System) rssiSnapshot() map[mnet.Addr]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[mnet.Addr]float64, len(s.lastRSSI))
	for k, v := range s.lastRSSI {
		out[k] = v
	}
	return out
}

// inEventType maps an incoming message type to its event type.
func inEventType(mt packetbb.MsgType) event.Type {
	switch mt {
	case packetbb.MsgHello:
		return event.HelloIn
	case packetbb.MsgTC:
		return event.TCIn
	case packetbb.MsgHNA:
		return event.HNAIn
	case packetbb.MsgRREQ, packetbb.MsgRREP:
		return event.REIn
	case packetbb.MsgRERR:
		return event.RerrIn
	default:
		return event.MsgIn
	}
}

// qualityFromRSSI maps signal strength to a normalised [0,1] link quality.
func qualityFromRSSI(rssi float64) float64 {
	// -90 dBm or worse -> 0; -40 dBm or better -> 1.
	q := (rssi + 90) / 50
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// forwardFacade is the Forward element's IForward interface: direct-call
// send primitives for protocols that bypass the event path (rare).
type forwardFacade struct{ s *System }

// Send transmits a single protocol message.
func (f *forwardFacade) Send(dst mnet.Addr, msg *packetbb.Message) error {
	return f.s.sendControl(&event.Event{Type: event.MsgOut, Msg: msg, Dst: dst})
}

// SysState is the State element facade (ISysState): kernel route table
// manipulation and device listing.
type SysState struct{ s *System }

// RouteAdd installs a kernel route.
func (st *SysState) RouteAdd(r route.FIBRoute) { st.s.fib.Set(r) }

// RouteDel removes a kernel route.
func (st *SysState) RouteDel(dst mnet.Prefix) bool { return st.s.fib.Del(dst) }

// Routes lists the kernel routing table.
func (st *SysState) Routes() []route.FIBRoute { return st.s.fib.List() }

// Devices lists the host's network devices.
func (st *SysState) Devices() []DeviceInfo {
	return []DeviceInfo{{Name: st.s.nic.Device(), Addr: st.s.nic.Addr(), Up: true}}
}

// SysControl is the Control element facade (ISysControl): OS-independent
// routing-environment initialisation.
type SysControl struct{ s *System }

// InitRoutingEnv enables IP forwarding and disables ICMP redirects, the
// standard MANET host preparation.
func (sc *SysControl) InitRoutingEnv() {
	sc.s.mu.Lock()
	defer sc.s.mu.Unlock()
	sc.s.envFlags = EnvFlags{IPForwarding: true, ICMPRedirects: false}
}

// Env returns the current simulated environment flags.
func (sc *SysControl) Env() EnvFlags {
	sc.s.mu.Lock()
	defer sc.s.mu.Unlock()
	return sc.s.envFlags
}
