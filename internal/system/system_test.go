package system

import (
	"sync"
	"testing"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/emunet"
	"manetkit/internal/event"
	"manetkit/internal/mnet"
	"manetkit/internal/packetbb"
	"manetkit/internal/route"
	"manetkit/internal/vclock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// node bundles one deployed System CF for tests.
type node struct {
	addr mnet.Addr
	mgr  *core.Manager
	sys  *System
}

func newTestNet(t *testing.T, n int) (*emunet.Network, *vclock.Virtual, []*node) {
	t.Helper()
	clk := vclock.NewVirtual(epoch)
	net := emunet.New(clk, 1)
	addrs := emunet.Addrs(n)
	nodes := make([]*node, n)
	for i, a := range addrs {
		nic, err := net.Attach(a)
		if err != nil {
			t.Fatal(err)
		}
		mgr, err := core.NewManager(core.Config{Node: a, Clock: clk})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(mgr.Close)
		sys, err := New(Config{NIC: nic})
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.Deploy(sys.Protocol()); err != nil {
			t.Fatal(err)
		}
		if err := sys.Protocol().Start(); err != nil {
			t.Fatal(err)
		}
		nodes[i] = &node{addr: a, mgr: mgr, sys: sys}
	}
	return net, clk, nodes
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil NIC accepted")
	}
}

func TestControlMessageEndToEnd(t *testing.T) {
	net, clk, nodes := newTestNet(t, 2)
	net.SetLink(nodes[0].addr, nodes[1].addr, emunet.DefaultQuality())

	// A HELLO consumer on node 1.
	var mu sync.Mutex
	var got []*event.Event
	consumer := core.NewProtocol("nbr")
	consumer.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.HelloIn}}})
	consumer.AddHandler(core.NewHandler("h", event.HelloIn, func(ctx *core.Context, ev *event.Event) error {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
		return nil
	}))
	if err := nodes[1].mgr.Deploy(consumer); err != nil {
		t.Fatal(err)
	}

	// A HELLO emitter on node 0.
	emitter := core.NewProtocol("beacon")
	emitter.SetTuple(event.Tuple{Provided: []event.Type{event.HelloOut}})
	if err := nodes[0].mgr.Deploy(emitter); err != nil {
		t.Fatal(err)
	}
	msg := &packetbb.Message{Type: packetbb.MsgHello, Originator: nodes[0].addr, SeqNum: 3}
	if err := emitter.Emit(&event.Event{Type: event.HelloOut, Msg: msg, Dst: mnet.Broadcast}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(50 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("consumer got %d events", len(got))
	}
	ev := got[0]
	if ev.Msg.Originator != nodes[0].addr || ev.Msg.SeqNum != 3 || ev.Src != nodes[0].addr {
		t.Fatalf("event = %+v msg = %+v", ev, ev.Msg)
	}
	if nodes[0].sys.Stats().CtrlSent != 1 || nodes[1].sys.Stats().CtrlReceived != 1 {
		t.Fatalf("stats = %+v / %+v", nodes[0].sys.Stats(), nodes[1].sys.Stats())
	}
}

func TestInEventTypeMapping(t *testing.T) {
	tests := []struct {
		mt   packetbb.MsgType
		want event.Type
	}{
		{packetbb.MsgHello, event.HelloIn},
		{packetbb.MsgTC, event.TCIn},
		{packetbb.MsgRREQ, event.REIn},
		{packetbb.MsgRREP, event.REIn},
		{packetbb.MsgRERR, event.RerrIn},
		{packetbb.MsgType(99), event.MsgIn},
	}
	for _, tt := range tests {
		if got := inEventType(tt.mt); got != tt.want {
			t.Errorf("inEventType(%v) = %v, want %v", tt.mt, got, tt.want)
		}
	}
}

func TestDataPlaneForwardingAndDelivery(t *testing.T) {
	net, clk, nodes := newTestNet(t, 3)
	// Line: 0 - 1 - 2.
	net.SetLink(nodes[0].addr, nodes[1].addr, emunet.DefaultQuality())
	net.SetLink(nodes[1].addr, nodes[2].addr, emunet.DefaultQuality())

	// Static routes: 0 -> 2 via 1; 1 -> 2 direct.
	nodes[0].sys.FIB().Set(route.FIBRoute{Dst: mnet.HostPrefix(nodes[2].addr), NextHop: nodes[1].addr})
	nodes[1].sys.FIB().Set(route.FIBRoute{Dst: mnet.HostPrefix(nodes[2].addr), NextHop: nodes[2].addr})

	var mu sync.Mutex
	var delivered []string
	nodes[2].sys.Filter().OnDeliver(func(src mnet.Addr, payload []byte) {
		mu.Lock()
		delivered = append(delivered, src.String()+":"+string(payload))
		mu.Unlock()
	})
	if err := nodes[0].sys.Filter().SendData(nodes[2].addr, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(50 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	if len(delivered) != 1 || delivered[0] != nodes[0].addr.String()+":ping" {
		t.Fatalf("delivered = %v", delivered)
	}
	if st := nodes[1].sys.Stats(); st.DataForwarded != 1 {
		t.Fatalf("relay stats = %+v", st)
	}
	if st := nodes[2].sys.Stats(); st.DataDelivered != 1 {
		t.Fatalf("dst stats = %+v", st)
	}
}

func TestNoRouteBuffersAndRaisesEvent(t *testing.T) {
	_, clk, nodes := newTestNet(t, 2)
	n := nodes[0]

	var mu sync.Mutex
	var events []*event.Event
	n.mgr.SubscribeContext(event.Routing, func(ev *event.Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	if err := n.sys.Filter().SendData(nodes[1].addr, []byte("x")); err != nil {
		t.Fatal(err)
	}
	clk.RunUntilIdle(0) // no timers needed; emission is synchronous
	mu.Lock()
	if len(events) != 1 || events[0].Type != event.NoRoute || events[0].Route.Dst != nodes[1].addr {
		t.Fatalf("events = %+v", events)
	}
	mu.Unlock()
	if n.sys.Filter().BufferedCount(nodes[1].addr) != 1 {
		t.Fatal("packet not buffered")
	}
	// Buffer expires when no route ever appears.
	clk.Advance(6 * time.Second)
	if n.sys.Filter().BufferedCount(nodes[1].addr) != 0 {
		t.Fatal("buffered packet not expired")
	}
	if st := n.sys.Stats(); st.DataDropped != 1 || st.DataBuffered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRouteFoundReinjects(t *testing.T) {
	net, clk, nodes := newTestNet(t, 2)
	net.SetLink(nodes[0].addr, nodes[1].addr, emunet.DefaultQuality())
	n := nodes[0]

	var mu sync.Mutex
	var delivered int
	nodes[1].sys.Filter().OnDeliver(func(mnet.Addr, []byte) {
		mu.Lock()
		delivered++
		mu.Unlock()
	})
	// Two packets held.
	n.sys.Filter().SendData(nodes[1].addr, []byte("a"))
	n.sys.Filter().SendData(nodes[1].addr, []byte("b"))
	if n.sys.Filter().BufferedCount(nodes[1].addr) != 2 {
		t.Fatal("packets not buffered")
	}
	// Discovery completes: install route and raise ROUTE_FOUND, as DYMO
	// would (§5.2).
	n.sys.FIB().Set(route.FIBRoute{Dst: mnet.HostPrefix(nodes[1].addr), NextHop: nodes[1].addr})
	reactive := core.NewProtocol("reactive")
	reactive.SetTuple(event.Tuple{Provided: []event.Type{event.RouteFound}})
	if err := n.mgr.Deploy(reactive); err != nil {
		t.Fatal(err)
	}
	reactive.Emit(&event.Event{Type: event.RouteFound, Route: &event.RoutePayload{Dst: nodes[1].addr}})
	clk.Advance(50 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	if delivered != 2 {
		t.Fatalf("delivered = %d", delivered)
	}
	if n.sys.Filter().BufferedCount(nodes[1].addr) != 0 {
		t.Fatal("buffer not drained")
	}
}

func TestLinkBreakFeedback(t *testing.T) {
	net, clk, nodes := newTestNet(t, 2)
	net.SetLink(nodes[0].addr, nodes[1].addr, emunet.DefaultQuality())
	n := nodes[0]
	n.sys.FIB().Set(route.FIBRoute{Dst: mnet.HostPrefix(nodes[1].addr), NextHop: nodes[1].addr})

	var mu sync.Mutex
	var breaks []*event.Event
	n.mgr.SubscribeContext(event.LinkBreak, func(ev *event.Event) {
		mu.Lock()
		breaks = append(breaks, ev)
		mu.Unlock()
	})
	// Cut the link, then send: MAC feedback reports failure -> LINK_BREAK.
	net.CutLink(nodes[0].addr, nodes[1].addr)
	n.sys.Filter().SendData(nodes[1].addr, []byte("x"))
	clk.Advance(50 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	if len(breaks) != 1 || breaks[0].Route.NextHop != nodes[1].addr {
		t.Fatalf("breaks = %+v", breaks)
	}
}

func TestTTLExhaustionDrops(t *testing.T) {
	// Routing loop: 0 and 1 route 2's address at each other.
	net, clk, nodes := newTestNet(t, 3)
	net.SetLink(nodes[0].addr, nodes[1].addr, emunet.DefaultQuality())
	nodes[0].sys.FIB().Set(route.FIBRoute{Dst: mnet.HostPrefix(nodes[2].addr), NextHop: nodes[1].addr})
	nodes[1].sys.FIB().Set(route.FIBRoute{Dst: mnet.HostPrefix(nodes[2].addr), NextHop: nodes[0].addr})
	nodes[0].sys.Filter().SendData(nodes[2].addr, []byte("loop"))
	clk.Advance(2 * time.Second)
	d0 := nodes[0].sys.Stats().DataDropped + nodes[1].sys.Stats().DataDropped
	if d0 != 1 {
		t.Fatalf("dropped = %d, want 1 (TTL exhaustion)", d0)
	}
}

func TestSysStateFacade(t *testing.T) {
	_, _, nodes := newTestNet(t, 1)
	st, ok := kernelQuerySysState(nodes[0])
	if !ok {
		t.Fatal("ISysState not provided")
	}
	devs := st.Devices()
	if len(devs) != 1 || devs[0].Addr != nodes[0].addr || !devs[0].Up {
		t.Fatalf("Devices = %+v", devs)
	}
	st.RouteAdd(route.FIBRoute{Dst: mnet.HostPrefix(nodes[0].addr), NextHop: nodes[0].addr})
	if len(st.Routes()) != 1 {
		t.Fatal("RouteAdd did not install")
	}
	if !st.RouteDel(mnet.HostPrefix(nodes[0].addr)) {
		t.Fatal("RouteDel failed")
	}
}

func kernelQuerySysState(n *node) (*SysState, bool) {
	impl, ok := n.sys.Protocol().Provided()["ISysState"]
	if !ok {
		return nil, false
	}
	st, ok := impl.(*SysState)
	return st, ok
}

func TestSysControlInitRoutingEnv(t *testing.T) {
	_, _, nodes := newTestNet(t, 1)
	impl := nodes[0].sys.Protocol().Provided()["ISysControl"]
	sc, ok := impl.(*SysControl)
	if !ok {
		t.Fatal("ISysControl not provided")
	}
	if sc.Env().IPForwarding {
		t.Fatal("IP forwarding on before init")
	}
	sc.InitRoutingEnv()
	env := sc.Env()
	if !env.IPForwarding || env.ICMPRedirects {
		t.Fatalf("Env = %+v", env)
	}
}

func TestPowerSensorEmitsBatteryLevel(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	net := emunet.New(clk, 1)
	addr := emunet.Addrs(1)[0]
	nic, _ := net.Attach(addr)
	mgr, _ := core.NewManager(core.Config{Node: addr, Clock: clk})
	defer mgr.Close()
	bat := NewBattery(1.0, 0.01, 0, epoch) // 1%/s idle drain
	sys, err := New(Config{NIC: nic, Battery: bat, SensorInterval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	mgr.Deploy(sys.Protocol())
	var mu sync.Mutex
	var levels []float64
	mgr.SubscribeContext(event.PowerStatus, func(ev *event.Event) {
		mu.Lock()
		levels = append(levels, ev.Power.Fraction)
		mu.Unlock()
	})
	sys.Protocol().Start()
	clk.Advance(3 * time.Second)
	mu.Lock()
	defer mu.Unlock()
	if len(levels) != 3 {
		t.Fatalf("got %d power reports", len(levels))
	}
	if !(levels[0] > levels[1] && levels[1] > levels[2]) {
		t.Fatalf("battery not draining: %v", levels)
	}
}

func TestBatteryModel(t *testing.T) {
	b := NewBattery(0.5, 0.1, 0.05, epoch)
	if got := b.Level(epoch.Add(2 * time.Second)); got < 0.29 || got > 0.31 {
		t.Fatalf("Level after 2s = %f", got)
	}
	b.SpendFrame()
	if got := b.Level(epoch.Add(2 * time.Second)); got < 0.24 || got > 0.26 {
		t.Fatalf("Level after frame = %f", got)
	}
	b.Set(0.01, epoch.Add(2*time.Second))
	if got := b.Level(epoch.Add(100 * time.Second)); got != 0 {
		t.Fatalf("Level floor = %f", got)
	}
	if NewBattery(7, 0, 0, epoch).Level(epoch) != 1 {
		t.Fatal("initial level not clamped")
	}
}

func TestLinkSensorReportsRSSI(t *testing.T) {
	net, clk, nodes := newTestNet(t, 2)
	net.SetLink(nodes[0].addr, nodes[1].addr, emunet.Quality{Delay: time.Millisecond, SignalDBm: -65})
	var mu sync.Mutex
	var infos []*event.LinkPayload
	nodes[1].mgr.SubscribeContext(event.LinkInfo, func(ev *event.Event) {
		mu.Lock()
		infos = append(infos, ev.Link)
		mu.Unlock()
	})
	// Node 0 sends a control frame so node 1 learns its RSSI.
	emitter := core.NewProtocol("beacon")
	emitter.SetTuple(event.Tuple{Provided: []event.Type{event.HelloOut}})
	nodes[0].mgr.Deploy(emitter)
	emitter.Emit(&event.Event{
		Type: event.HelloOut,
		Msg:  &packetbb.Message{Type: packetbb.MsgHello, Originator: nodes[0].addr},
		Dst:  mnet.Broadcast,
	})
	clk.Advance(1100 * time.Millisecond) // sensor interval is 1s
	mu.Lock()
	defer mu.Unlock()
	if len(infos) == 0 {
		t.Fatal("no LINK_INFO emitted")
	}
	li := infos[0]
	if li.Neighbor != nodes[0].addr || li.SignalDBm != -65 {
		t.Fatalf("LinkPayload = %+v", li)
	}
	if li.Quality <= 0 || li.Quality >= 1 {
		t.Fatalf("quality %f not in (0,1)", li.Quality)
	}
}

func TestQualityFromRSSIBounds(t *testing.T) {
	if qualityFromRSSI(-100) != 0 || qualityFromRSSI(-20) != 1 {
		t.Fatal("quality clamping broken")
	}
	mid := qualityFromRSSI(-65)
	if mid <= 0 || mid >= 1 {
		t.Fatalf("mid quality = %f", mid)
	}
}

func TestDataCodecRoundTrip(t *testing.T) {
	p := &dataPacket{
		Src:     mnet.MustParseAddr("10.0.0.1"),
		Dst:     mnet.MustParseAddr("10.0.0.2"),
		TTL:     7,
		ID:      0xdeadbeefcafe,
		Payload: []byte("payload"),
	}
	got, err := decodeData(encodeData(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != p.Src || got.Dst != p.Dst || got.TTL != p.TTL || got.ID != p.ID || string(got.Payload) != "payload" {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := decodeData([]byte{wireData, 1, 2}); err == nil {
		t.Fatal("short data packet accepted")
	}
	if _, err := decodeData(encodeData(p)[1:]); err == nil {
		t.Fatal("missing discriminator accepted")
	}
}

func TestDecodeErrorsCounted(t *testing.T) {
	net, clk, nodes := newTestNet(t, 2)
	net.SetLink(nodes[0].addr, nodes[1].addr, emunet.DefaultQuality())
	nodes[0].sys.NIC().Send(nodes[1].addr, []byte{wireControl, 0xff, 0xff})
	nodes[0].sys.NIC().Send(nodes[1].addr, []byte{0x77})
	nodes[0].sys.NIC().Send(nodes[1].addr, nil)
	clk.Advance(50 * time.Millisecond)
	if st := nodes[1].sys.Stats(); st.DecodeErrors != 3 {
		t.Fatalf("DecodeErrors = %d", st.DecodeErrors)
	}
}
