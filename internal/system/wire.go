package system

// Wire-class predicates for raw frame payloads, used by measurement taps
// (the evaluation campaign's overhead accounting) that must classify
// traffic without decoding it. The discriminator byte is the first payload
// byte: wireControl frames carry PacketBB, wireData frames carry the data
// header (see netlink.go).

// IsControlFrame reports whether payload is a routing-control frame
// (PacketBB under the control discriminator).
func IsControlFrame(payload []byte) bool {
	return len(payload) > 0 && payload[0] == wireControl
}

// IsDataFrame reports whether payload is an application data frame.
func IsDataFrame(payload []byte) bool {
	return len(payload) > 0 && payload[0] == wireData
}

// ControlBody returns the PacketBB bytes of a control frame (the payload
// with the wire discriminator stripped) and whether payload was one.
func ControlBody(payload []byte) ([]byte, bool) {
	if !IsControlFrame(payload) {
		return nil, false
	}
	return payload[1:], true
}
