// Package neighbor implements the paper's Neighbour Detection CF (§4.3): a
// generally-useful ManetProtocol instance that maintains information about
// nodes one and two hops away, notifies co-deployed protocols of link
// breaks via NHOOD_CHANGE events, supports pluggable sensing mechanisms
// (HELLO-based or link-layer feedback), and offers a piggybacking service
// for disseminating information on its periodic beacons.
package neighbor

import (
	"sort"
	"sync"
	"time"

	"manetkit/internal/mnet"
)

// Status is the sensed state of a link to a neighbour.
type Status uint8

// Link states, following the OLSR/NHDP sensing model.
const (
	StatusHeard     Status = iota + 1 // we hear them; not confirmed bidirectional
	StatusSymmetric                   // they list us in their HELLO: bidirectional
	StatusLost                        // recently lost; kept briefly for diagnostics
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusHeard:
		return "heard"
	case StatusSymmetric:
		return "symmetric"
	case StatusLost:
		return "lost"
	default:
		return "unknown"
	}
}

// Info is the queryable record for one neighbour.
type Info struct {
	Addr        mnet.Addr
	Status      Status
	LastHeard   time.Time
	Willingness uint8
	// TwoHop lists the symmetric neighbours the neighbour reported —
	// our 2-hop set via this node.
	TwoHop []mnet.Addr
}

// Table is the neighbour-state store: the S element of the Neighbour
// Detection CF (and, reused, the link-set/2-hop state of the MPR CF —
// Table 3's cross-protocol reuse).
type Table struct {
	mu      sync.Mutex
	entries map[mnet.Addr]*Info
}

// NewTable returns an empty neighbour table.
func NewTable() *Table {
	return &Table{entries: make(map[mnet.Addr]*Info)}
}

// Observe records a HELLO heard from nb: its link status towards us
// (symmetric when it listed us), its willingness, and its reported
// symmetric neighbours. It returns the previous status (0 when new).
func (t *Table) Observe(nb mnet.Addr, symmetric bool, willingness uint8, twoHop []mnet.Addr, now time.Time) Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[nb]
	prev := Status(0)
	if ok {
		prev = e.Status
	} else {
		e = &Info{Addr: nb}
		t.entries[nb] = e
	}
	e.LastHeard = now
	e.Willingness = willingness
	e.TwoHop = append(e.TwoHop[:0], twoHop...)
	if symmetric {
		e.Status = StatusSymmetric
	} else if e.Status != StatusSymmetric || prev == StatusLost {
		e.Status = StatusHeard
	} else {
		// Was symmetric but this HELLO does not list us: demote.
		e.Status = StatusHeard
	}
	return prev
}

// MarkLost transitions nb to StatusLost (expiry or link-layer feedback).
// It reports whether the neighbour was previously usable (heard/symmetric).
func (t *Table) MarkLost(nb mnet.Addr) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[nb]
	if !ok || e.Status == StatusLost {
		return false
	}
	e.Status = StatusLost
	e.TwoHop = nil
	return true
}

// Expire marks every neighbour not heard since the deadline as lost and
// returns them.
func (t *Table) Expire(deadline time.Time) []mnet.Addr {
	t.mu.Lock()
	var lost []mnet.Addr
	for a, e := range t.entries {
		if e.Status != StatusLost && e.LastHeard.Before(deadline) {
			e.Status = StatusLost
			e.TwoHop = nil
			lost = append(lost, a)
		}
	}
	t.mu.Unlock()
	sort.Slice(lost, func(i, j int) bool { return lost[i].Less(lost[j]) })
	return lost
}

// Drop removes lost entries older than the deadline entirely.
func (t *Table) Drop(deadline time.Time) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for a, e := range t.entries {
		if e.Status == StatusLost && e.LastHeard.Before(deadline) {
			delete(t.entries, a)
			n++
		}
	}
	return n
}

// Get returns the record for nb.
func (t *Table) Get(nb mnet.Addr) (Info, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[nb]
	if !ok {
		return Info{}, false
	}
	return t.snapshotLocked(e), true
}

// Neighbors returns all non-lost neighbours, sorted by address.
func (t *Table) Neighbors() []Info {
	return t.filter(func(e *Info) bool { return e.Status != StatusLost })
}

// Symmetric returns the symmetric neighbours, sorted by address.
func (t *Table) Symmetric() []Info {
	return t.filter(func(e *Info) bool { return e.Status == StatusSymmetric })
}

// SymmetricAddrs returns just the addresses of symmetric neighbours.
func (t *Table) SymmetricAddrs() []mnet.Addr {
	syms := t.Symmetric()
	out := make([]mnet.Addr, len(syms))
	for i, s := range syms {
		out[i] = s.Addr
	}
	return out
}

// TwoHopSet returns the strict 2-hop neighbourhood: nodes reachable via a
// symmetric neighbour that are not ourselves and not 1-hop neighbours.
func (t *Table) TwoHopSet(self mnet.Addr) map[mnet.Addr][]mnet.Addr {
	t.mu.Lock()
	defer t.mu.Unlock()
	oneHop := make(map[mnet.Addr]bool, len(t.entries))
	for a, e := range t.entries {
		if e.Status != StatusLost {
			oneHop[a] = true
		}
	}
	// two-hop destination -> the symmetric neighbours that reach it.
	out := make(map[mnet.Addr][]mnet.Addr)
	for a, e := range t.entries {
		if e.Status != StatusSymmetric {
			continue
		}
		for _, th := range e.TwoHop {
			if th == self || oneHop[th] {
				continue
			}
			out[th] = append(out[th], a)
		}
	}
	for th := range out {
		vias := out[th]
		sort.Slice(vias, func(i, j int) bool { return vias[i].Less(vias[j]) })
		out[th] = vias
	}
	return out
}

func (t *Table) filter(keep func(*Info) bool) []Info {
	t.mu.Lock()
	var out []Info
	for _, e := range t.entries {
		if keep(e) {
			out = append(out, t.snapshotLocked(e))
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

func (t *Table) snapshotLocked(e *Info) Info {
	c := *e
	c.TwoHop = append([]mnet.Addr(nil), e.TwoHop...)
	return c
}

// Len returns the number of tracked entries (including lost).
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}
