package neighbor

import (
	"sync"
	"testing"
	"time"

	"manetkit/internal/event"
	"manetkit/internal/mnet"
	"manetkit/internal/packetbb"
	"manetkit/internal/route"
	"manetkit/internal/testbed"
)

func addr(s string) mnet.Addr { return mnet.MustParseAddr(s) }

func TestTableObserveTransitions(t *testing.T) {
	tb := NewTable()
	nb := addr("10.0.0.2")
	now := testbed.Epoch

	if prev := tb.Observe(nb, false, 3, nil, now); prev != 0 {
		t.Fatalf("first Observe prev = %v", prev)
	}
	info, ok := tb.Get(nb)
	if !ok || info.Status != StatusHeard {
		t.Fatalf("after asym hello: %+v", info)
	}
	if prev := tb.Observe(nb, true, 5, []mnet.Addr{addr("10.0.0.3")}, now); prev != StatusHeard {
		t.Fatalf("second Observe prev = %v", prev)
	}
	info, _ = tb.Get(nb)
	if info.Status != StatusSymmetric || info.Willingness != 5 || len(info.TwoHop) != 1 {
		t.Fatalf("after sym hello: %+v", info)
	}
	// A hello no longer listing us demotes to heard.
	tb.Observe(nb, false, 5, nil, now)
	info, _ = tb.Get(nb)
	if info.Status != StatusHeard {
		t.Fatalf("after demotion: %+v", info)
	}
}

func TestTableExpiryAndDrop(t *testing.T) {
	tb := NewTable()
	now := testbed.Epoch
	tb.Observe(addr("10.0.0.2"), true, 3, nil, now)
	tb.Observe(addr("10.0.0.3"), true, 3, nil, now.Add(5*time.Second))

	lost := tb.Expire(now.Add(2 * time.Second))
	if len(lost) != 1 || lost[0] != addr("10.0.0.2") {
		t.Fatalf("lost = %v", lost)
	}
	if len(tb.Symmetric()) != 1 {
		t.Fatalf("Symmetric = %v", tb.Symmetric())
	}
	if got := tb.Expire(now.Add(2 * time.Second)); len(got) != 0 {
		t.Fatal("expire reported same neighbour twice")
	}
	if n := tb.Drop(now.Add(10 * time.Second)); n != 1 {
		t.Fatalf("Drop = %d", n)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestTableTwoHopSet(t *testing.T) {
	tb := NewTable()
	self := addr("10.0.0.1")
	now := testbed.Epoch
	// n2 (sym) reaches n4, n5 and self; n3 (heard only) reaches n6.
	tb.Observe(addr("10.0.0.2"), true, 3, []mnet.Addr{addr("10.0.0.4"), addr("10.0.0.5"), self}, now)
	tb.Observe(addr("10.0.0.3"), false, 3, []mnet.Addr{addr("10.0.0.6")}, now)
	// n5 is also a direct neighbour -> excluded from 2-hop.
	tb.Observe(addr("10.0.0.5"), true, 3, nil, now)

	th := tb.TwoHopSet(self)
	if len(th) != 1 {
		t.Fatalf("TwoHopSet = %v", th)
	}
	vias, ok := th[addr("10.0.0.4")]
	if !ok || len(vias) != 1 || vias[0] != addr("10.0.0.2") {
		t.Fatalf("vias for n4 = %v", vias)
	}
}

func TestHelloRoundTripThroughCodec(t *testing.T) {
	d := New("", Config{})
	d.Table().Observe(addr("10.0.0.2"), true, 3, nil, testbed.Epoch)
	d.Table().Observe(addr("10.0.0.3"), false, 3, nil, testbed.Epoch)
	self := addr("10.0.0.1")
	msg := d.BuildHello(self)
	wire, err := packetbb.EncodeMessage(msg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := packetbb.DecodeMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	// From 10.0.0.2's perspective: it is listed -> link is at least heard.
	listsUs, will, syms := ParseHello(back, addr("10.0.0.2"))
	if !listsUs || will != 3 {
		t.Fatalf("listsUs=%v will=%d", listsUs, will)
	}
	if len(syms) != 0 { // only 10.0.0.2 itself is symmetric in the hello
		t.Fatalf("syms = %v", syms)
	}
	// A third party sees 10.0.0.2 as the sender's symmetric neighbour.
	_, _, syms = ParseHello(back, addr("10.0.0.9"))
	if len(syms) != 1 || syms[0] != addr("10.0.0.2") {
		t.Fatalf("third-party syms = %v", syms)
	}
}

// deployDetectors builds a cluster with a detector on each node.
func deployDetectors(t *testing.T, n int, cfg Config) (*testbed.Cluster, []*Detector) {
	t.Helper()
	c, err := testbed.New(n, testbed.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ds := make([]*Detector, n)
	for i, node := range c.Nodes {
		ds[i] = New("", cfg)
		if err := node.Mgr.Deploy(ds[i].Protocol()); err != nil {
			t.Fatal(err)
		}
		if err := ds[i].Protocol().Start(); err != nil {
			t.Fatal(err)
		}
	}
	return c, ds
}

func TestDetectorsConvergeToSymmetric(t *testing.T) {
	c, ds := deployDetectors(t, 3, Config{HelloInterval: time.Second})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(5 * time.Second)

	// Middle node sees both ends as symmetric.
	syms := ds[1].Table().SymmetricAddrs()
	if len(syms) != 2 {
		t.Fatalf("middle node symmetric set = %v", syms)
	}
	// End node sees only the middle, and learns the far end as 2-hop.
	if syms := ds[0].Table().SymmetricAddrs(); len(syms) != 1 || syms[0] != c.Nodes[1].Addr {
		t.Fatalf("end node symmetric set = %v", syms)
	}
	th := ds[0].Table().TwoHopSet(c.Nodes[0].Addr)
	if vias, ok := th[c.Nodes[2].Addr]; !ok || len(vias) != 1 || vias[0] != c.Nodes[1].Addr {
		t.Fatalf("end node 2-hop set = %v", th)
	}
}

func TestDetectorEmitsNhoodChanges(t *testing.T) {
	c, _ := deployDetectors(t, 2, Config{HelloInterval: time.Second})
	var mu sync.Mutex
	changes := map[event.ChangeKind]int{}
	c.Nodes[0].Mgr.SubscribeContext(event.NhoodChange, func(ev *event.Event) {
		mu.Lock()
		changes[ev.Nhood.Kind]++
		mu.Unlock()
	})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(4 * time.Second)
	mu.Lock()
	appeared, sym := changes[event.NeighborAppeared], changes[event.NeighborSymmetric]
	mu.Unlock()
	if appeared != 1 || sym != 1 {
		t.Fatalf("changes = %v", changes)
	}
	// Cut the link; hold time (3.5s) later the neighbour is reported lost.
	c.Net.CutLink(c.Nodes[0].Addr, c.Nodes[1].Addr)
	c.Run(5 * time.Second)
	mu.Lock()
	lost := changes[event.NeighborLost]
	mu.Unlock()
	if lost != 1 {
		t.Fatalf("lost changes = %d (all: %v)", lost, changes)
	}
}

func TestLinkLayerFeedbackMarksLostImmediately(t *testing.T) {
	c, ds := deployDetectors(t, 2, Config{HelloInterval: time.Second, LinkLayerFeedback: true})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	c.Run(3 * time.Second)
	if len(ds[0].Table().SymmetricAddrs()) != 1 {
		t.Fatal("setup: not symmetric")
	}
	var mu sync.Mutex
	lost := 0
	c.Nodes[0].Mgr.SubscribeContext(event.NhoodChange, func(ev *event.Event) {
		if ev.Nhood.Kind == event.NeighborLost {
			mu.Lock()
			lost++
			mu.Unlock()
		}
	})
	// Cut the link and send a data packet: MAC feedback raises LINK_BREAK,
	// which the plug-in converts to an immediate loss (no hold-time wait).
	c.Net.CutLink(c.Nodes[0].Addr, c.Nodes[1].Addr)
	c.Nodes[0].FIB().Set(fibRouteTo(c.Nodes[1].Addr))
	c.Nodes[0].Sys.Filter().SendData(c.Nodes[1].Addr, []byte("x"))
	c.Run(10 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if lost != 1 {
		t.Fatalf("lost = %d", lost)
	}
	if nb, ok := ds[0].Table().Get(c.Nodes[1].Addr); !ok || nb.Status != StatusLost {
		t.Fatalf("neighbour state = %+v", nb)
	}
}

func TestPiggybacking(t *testing.T) {
	c, ds := deployDetectors(t, 2, Config{HelloInterval: time.Second})
	if err := c.Line(); err != nil {
		t.Fatal(err)
	}
	const tlvType = 200
	ds[0].Piggyback(tlvType, func() []byte { return []byte("route-hints") })
	var mu sync.Mutex
	var got []string
	ds[1].OnPiggyback(tlvType, func(src mnet.Addr, v []byte) {
		mu.Lock()
		got = append(got, src.String()+"="+string(v))
		mu.Unlock()
	})
	c.Run(2500 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("piggybacked TLV never arrived")
	}
	want := c.Nodes[0].Addr.String() + "=route-hints"
	if got[0] != want {
		t.Fatalf("got %q want %q", got[0], want)
	}
}

func TestStatusString(t *testing.T) {
	if StatusHeard.String() != "heard" || StatusSymmetric.String() != "symmetric" ||
		StatusLost.String() != "lost" || Status(9).String() != "unknown" {
		t.Fatal("Status names wrong")
	}
}

func fibRouteTo(a mnet.Addr) route.FIBRoute {
	return route.FIBRoute{Dst: mnet.HostPrefix(a), NextHop: a}
}
