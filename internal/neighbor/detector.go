package neighbor

import (
	"sort"
	"sync"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/event"
	"manetkit/internal/mnet"
	"manetkit/internal/packetbb"
)

// UnitName is the Neighbour Detection CF's default unit name.
const UnitName = "neighbor-detection"

// Config parameterises the detector.
type Config struct {
	// HelloInterval is the beacon period (default 2s, jittered).
	HelloInterval time.Duration
	// Jitter is the fractional beacon jitter (default 0.1).
	Jitter float64
	// HoldFactor multiplies HelloInterval into the neighbour hold time
	// (default 3.5, the OLSR NEIGHB_HOLD_TIME convention).
	HoldFactor float64
	// LinkLayerFeedback additionally plugs in the link-layer sensing
	// mechanism: LINK_BREAK events immediately mark the next hop lost —
	// the paper's "pluggable so that alternative mechanisms can be applied"
	// (§4.3).
	LinkLayerFeedback bool
	// Willingness is advertised in HELLOs for relay selection (0..7,
	// default 3 = WILL_DEFAULT).
	Willingness uint8
}

func (c *Config) fill() {
	if c.HelloInterval <= 0 {
		c.HelloInterval = 2 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.1
	}
	if c.HoldFactor <= 0 {
		c.HoldFactor = 3.5
	}
	if c.Willingness == 0 {
		c.Willingness = 3
	}
}

// Detector is the Neighbour Detection CF: a ManetProtocol instance built
// from the generic machinery, maintaining 1- and 2-hop neighbour state.
type Detector struct {
	proto *core.Protocol
	table *Table
	cfg   Config

	mu       sync.Mutex
	helloSeq uint16
	piggyOut map[uint8]func() []byte
	piggyIn  map[uint8]func(src mnet.Addr, value []byte)
}

// New builds a detector under the given unit name (defaults to UnitName for
// an empty string).
func New(name string, cfg Config) *Detector {
	if name == "" {
		name = UnitName
	}
	cfg.fill()
	d := &Detector{
		proto:    core.NewProtocol(name),
		table:    NewTable(),
		cfg:      cfg,
		piggyOut: make(map[uint8]func() []byte),
		piggyIn:  make(map[uint8]func(mnet.Addr, []byte)),
	}
	required := []event.Requirement{{Type: event.HelloIn}}
	if cfg.LinkLayerFeedback {
		required = append(required, event.Requirement{Type: event.LinkBreak})
	}
	d.proto.SetTuple(event.Tuple{
		Required: required,
		Provided: []event.Type{event.HelloOut, event.NhoodChange},
	})
	if err := d.proto.SetState(core.NewStateComponent("state", d.table)); err != nil {
		panic(err) // fresh protocol: cannot conflict
	}
	d.proto.Provide("INeighbourState", d)

	if err := d.proto.AddHandler(core.NewHandler("hello-handler", event.HelloIn, d.onHello)); err != nil {
		panic(err)
	}
	if cfg.LinkLayerFeedback {
		if err := d.proto.AddHandler(core.NewHandler("linkfb-handler", event.LinkBreak, d.onLinkBreak)); err != nil {
			panic(err)
		}
	}
	if err := d.proto.AddSource(core.NewSource("hello-gen", cfg.HelloInterval, cfg.Jitter, d.emitHello).Immediate()); err != nil {
		panic(err)
	}
	// Expiry sweep at half the hello interval.
	if err := d.proto.AddSource(core.NewSource("expiry-sweep", cfg.HelloInterval/2, 0, d.sweep)); err != nil {
		panic(err)
	}
	return d
}

// Protocol returns the detector as a deployable unit.
func (d *Detector) Protocol() *core.Protocol { return d.proto }

// Table returns the neighbour-state S element value.
func (d *Detector) Table() *Table { return d.table }

// Piggyback registers a producer whose bytes ride along every outgoing
// HELLO as a message TLV of the given type (§4.3's dissemination service,
// e.g. AODV piggybacking routing-table entries).
func (d *Detector) Piggyback(tlvType uint8, produce func() []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.piggyOut[tlvType] = produce
}

// OnPiggyback registers a consumer for piggybacked TLVs of the given type
// on incoming HELLOs.
func (d *Detector) OnPiggyback(tlvType uint8, consume func(src mnet.Addr, value []byte)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.piggyIn[tlvType] = consume
}

// BuildHello assembles this node's HELLO message: the neighbour list with
// per-address link-status TLVs, willingness, and piggybacked TLVs. Exported
// for reuse by the MPR CF, which extends the same beacon with relay
// selection.
func (d *Detector) BuildHello(self mnet.Addr) *packetbb.Message {
	d.mu.Lock()
	d.helloSeq++
	seq := d.helloSeq
	d.mu.Unlock()
	msg := &packetbb.Message{
		Type:       packetbb.MsgHello,
		Originator: self,
		HopLimit:   1,
		SeqNum:     seq,
		TLVs: []packetbb.TLV{
			{Type: packetbb.TLVWillingness, Value: packetbb.U8(d.cfg.Willingness)},
			{Type: packetbb.TLVValidityTime, Value: packetbb.U32(uint32(d.holdTime() / time.Millisecond))},
		},
	}
	d.mu.Lock()
	types := make([]int, 0, len(d.piggyOut))
	for tp := range d.piggyOut {
		types = append(types, int(tp))
	}
	sort.Ints(types)
	for _, tp := range types {
		if v := d.piggyOut[uint8(tp)](); v != nil {
			msg.TLVs = append(msg.TLVs, packetbb.TLV{Type: uint8(tp), Value: v})
		}
	}
	d.mu.Unlock()

	nbs := d.table.Neighbors()
	if len(nbs) > 0 {
		blk := packetbb.AddrBlock{}
		for _, nb := range nbs {
			blk.Addrs = append(blk.Addrs, nb.Addr)
		}
		for i, nb := range nbs {
			status := packetbb.LinkStatusHeard
			if nb.Status == StatusSymmetric {
				status = packetbb.LinkStatusSymmetric
			}
			blk.TLVs = append(blk.TLVs, packetbb.AddrTLV{
				Type:       packetbb.ATLVLinkStatus,
				IndexStart: uint8(i),
				IndexStop:  uint8(i),
				Value:      packetbb.U8(status),
			})
		}
		msg.AddrBlocks = append(msg.AddrBlocks, blk)
	}
	return msg
}

func (d *Detector) emitHello(ctx *core.Context) {
	ctx.Emit(&event.Event{
		Type: event.HelloOut,
		Msg:  d.BuildHello(ctx.Node()),
		Dst:  mnet.Broadcast,
	})
}

// ParseHello extracts the sender's view from a HELLO: whether it lists us
// as heard/symmetric, its willingness, and its symmetric neighbour set.
// Exported for reuse by the MPR CF's power-aware hello handler.
func ParseHello(msg *packetbb.Message, self mnet.Addr) (listsUs bool, willingness uint8, symNeighbors []mnet.Addr) {
	willingness = 3
	if tlv, ok := msg.FindTLV(packetbb.TLVWillingness); ok {
		if w, err := packetbb.ParseU8(tlv.Value); err == nil {
			willingness = w
		}
	}
	for bi := range msg.AddrBlocks {
		blk := &msg.AddrBlocks[bi]
		for i, a := range blk.Addrs {
			st := packetbb.LinkStatusHeard
			if tlv, ok := blk.AddrTLVFor(packetbb.ATLVLinkStatus, i); ok {
				if v, err := packetbb.ParseU8(tlv.Value); err == nil {
					st = v
				}
			}
			if a == self {
				if st == packetbb.LinkStatusSymmetric || st == packetbb.LinkStatusHeard {
					listsUs = true
				}
				continue
			}
			if st == packetbb.LinkStatusSymmetric {
				symNeighbors = append(symNeighbors, a)
			}
		}
	}
	return listsUs, willingness, symNeighbors
}

func (d *Detector) onHello(ctx *core.Context, ev *event.Event) error {
	if ev.Msg == nil {
		return nil
	}
	src := ev.Msg.Originator
	if src.IsUnspecified() {
		src = ev.Src
	}
	listsUs, will, syms := ParseHello(ev.Msg, ctx.Node())
	prev := d.table.Observe(src, listsUs, will, syms, ctx.Clock().Now())
	cur, _ := d.table.Get(src)

	switch {
	case prev == 0 || prev == StatusLost:
		ctx.Emit(&event.Event{
			Type:  event.NhoodChange,
			Nhood: &event.NhoodPayload{Kind: event.NeighborAppeared, Neighbor: src, TwoHopVia: cur.TwoHop},
		})
		if cur.Status == StatusSymmetric {
			ctx.Emit(&event.Event{
				Type:  event.NhoodChange,
				Nhood: &event.NhoodPayload{Kind: event.NeighborSymmetric, Neighbor: src, TwoHopVia: cur.TwoHop},
			})
		}
	case prev == StatusHeard && cur.Status == StatusSymmetric:
		ctx.Emit(&event.Event{
			Type:  event.NhoodChange,
			Nhood: &event.NhoodPayload{Kind: event.NeighborSymmetric, Neighbor: src, TwoHopVia: cur.TwoHop},
		})
	default:
		ctx.Emit(&event.Event{
			Type:  event.NhoodChange,
			Nhood: &event.NhoodPayload{Kind: event.TwoHopChanged, Neighbor: src, TwoHopVia: cur.TwoHop},
		})
	}

	// Piggyback consumers.
	d.mu.Lock()
	consumers := make(map[uint8]func(mnet.Addr, []byte), len(d.piggyIn))
	for k, v := range d.piggyIn {
		consumers[k] = v
	}
	d.mu.Unlock()
	for _, tlv := range ev.Msg.TLVs {
		if fn, ok := consumers[tlv.Type]; ok {
			fn(src, tlv.Value)
		}
	}
	return nil
}

func (d *Detector) onLinkBreak(ctx *core.Context, ev *event.Event) error {
	if ev.Route == nil || ev.Route.NextHop.IsUnspecified() {
		return nil
	}
	if d.table.MarkLost(ev.Route.NextHop) {
		ctx.Emit(&event.Event{
			Type:  event.NhoodChange,
			Nhood: &event.NhoodPayload{Kind: event.NeighborLost, Neighbor: ev.Route.NextHop},
		})
	}
	return nil
}

func (d *Detector) sweep(ctx *core.Context) {
	now := ctx.Clock().Now()
	lost := d.table.Expire(now.Add(-d.holdTime()))
	for _, nb := range lost {
		ctx.Emit(&event.Event{
			Type:  event.NhoodChange,
			Nhood: &event.NhoodPayload{Kind: event.NeighborLost, Neighbor: nb},
		})
	}
	d.table.Drop(now.Add(-3 * d.holdTime()))
}

func (d *Detector) holdTime() time.Duration {
	return time.Duration(float64(d.cfg.HelloInterval) * d.cfg.HoldFactor)
}
