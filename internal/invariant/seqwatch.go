package invariant

import (
	"fmt"
	"sync"

	"manetkit/internal/emunet"
	"manetkit/internal/mnet"
	"manetkit/internal/packetbb"
)

// wireControl is the System CF's control-frame marker byte (the first
// payload byte of every PacketBB-carrying frame on the emulated medium).
const wireControl byte = 0x01

// seqKind distinguishes the sequence-number spaces the watcher tracks.
type seqKind uint8

const (
	seqHeader  seqKind = iota // message-header SeqNum per (originator, type)
	seqOrigSeq                // DYMO/AODV ATLVOrigSeq per originator address
)

type seqKey struct {
	orig mnet.Addr
	typ  packetbb.MsgType
	kind seqKind
}

// SeqWatcher is the live monotonic-sequence-number invariant: installed as
// the medium tap (Network.SetTap(w.Observe)), it decodes every delivered
// control frame and checks that each originator's sequence numbers — the
// message-header SeqNum and the DYMO/AODV originator sequence number TLV —
// never move backwards.
//
// Only first-hop transmissions (frame source == message originator) are
// checked: forwarded copies legitimately carry old numbers. Corrupted
// frames (Frame.Corrupted, the FCS-would-have-failed marker) are ignored,
// as are frames that fail to decode. A small tolerance absorbs reorder
// jitter; wraparound near 0xffff is allowed. Call Forget when a node
// legitimately reboots with state loss.
type SeqWatcher struct {
	mu        sync.Mutex
	tolerance uint16
	last      map[seqKey]uint16
	frames    uint64
	violas    []Violation
}

// NewSeqWatcher returns a watcher with the default reorder tolerance (16).
func NewSeqWatcher() *SeqWatcher {
	return &SeqWatcher{tolerance: 16, last: make(map[seqKey]uint16)}
}

// SetTolerance adjusts how far a sequence number may step back (reorder
// allowance) before it counts as a violation.
func (w *SeqWatcher) SetTolerance(t uint16) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tolerance = t
}

// Observe is the medium-tap entry point: Network.SetTap(w.Observe).
func (w *SeqWatcher) Observe(f emunet.Frame, receiver mnet.Addr) {
	if f.Corrupted || len(f.Payload) < 2 || f.Payload[0] != wireControl {
		return
	}
	pkt, err := packetbb.DecodePacket(f.Payload[1:])
	if err != nil {
		return // mangled in flight; the decoder-robustness fuzzers own this
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.frames++
	for i := range pkt.Messages {
		m := &pkt.Messages[i]
		if !m.HasOriginator || m.Originator != f.Src {
			continue // forwarded copy: old numbers are legitimate
		}
		if m.HasSeqNum {
			w.observeLocked(seqKey{m.Originator, m.Type, seqHeader}, m.SeqNum,
				fmt.Sprintf("%v %v header seq", m.Originator, m.Type))
		}
		for bi := range m.AddrBlocks {
			b := &m.AddrBlocks[bi]
			for ai, addr := range b.Addrs {
				if addr != m.Originator {
					continue
				}
				tlv, ok := b.AddrTLVFor(packetbb.ATLVOrigSeq, ai)
				if !ok {
					continue
				}
				seq, err := packetbb.ParseU16(tlv.Value)
				if err != nil {
					continue
				}
				w.observeLocked(seqKey{addr, m.Type, seqOrigSeq}, seq,
					fmt.Sprintf("%v %v originator seq", addr, m.Type))
			}
		}
	}
}

func (w *SeqWatcher) observeLocked(k seqKey, cur uint16, what string) {
	last, seen := w.last[k]
	if !seen {
		w.last[k] = cur
		return
	}
	delta := cur - last // uint16 arithmetic: wraparound-aware
	switch {
	case delta == 0:
		// Duplicate delivery: fine.
	case delta < 0x8000:
		w.last[k] = cur // moved forward (possibly wrapping)
	default:
		if back := last - cur; back > w.tolerance {
			w.violas = append(w.violas, Violation{
				Checker: "monotonic-seq",
				Node:    k.orig,
				Detail:  fmt.Sprintf("%s went backwards: %d after %d", what, cur, last),
			})
		}
	}
}

// Forget clears the watcher's memory of an originator — call it when the
// node legitimately restarts with state loss, which may reset its counters.
func (w *SeqWatcher) Forget(orig mnet.Addr) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for k := range w.last {
		if k.orig == orig {
			delete(w.last, k)
		}
	}
}

// Frames returns how many control frames the watcher has decoded.
func (w *SeqWatcher) Frames() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.frames
}

// Violations returns the breaches observed so far, sorted.
func (w *SeqWatcher) Violations() []Violation {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := append([]Violation(nil), w.violas...)
	SortViolations(out)
	return out
}
