// Package invariant machine-checks protocol correctness conditions over a
// running emulated deployment — the safety net behind the paper's claim
// that MANETKit protocols keep routing while being reconfigured on a lossy,
// churning network (§4.5, §6).
//
// Two kinds of checkers exist. Snapshot checkers examine a point-in-time
// Snapshot of the whole cluster (every node's RIBs, FIB and neighbour
// table, plus the live link graph) and report Violations: routing loops,
// routes through dead links or to unreachable destinations, asymmetric
// neighbour perceptions. The SeqWatcher is a live checker: installed as the
// medium tap (Network.SetTap), it decodes every delivered control frame and
// flags originator sequence numbers that move backwards.
//
// Snapshots are meaningful only after the network has been quiescent for
// the protocols' convergence bound (hold times, TC/HELLO intervals); the
// chaos harness (internal/harness) settles the cluster before checking.
package invariant

import (
	"fmt"
	"sort"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/neighbor"
	"manetkit/internal/route"
)

// Violation is one invariant breach.
type Violation struct {
	// Checker names the invariant that failed.
	Checker string
	// Node is the node at which the breach was observed (zero when the
	// breach is network-wide).
	Node mnet.Addr
	// Detail is a human-readable description.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	if v.Node.IsUnspecified() {
		return fmt.Sprintf("[%s] %s", v.Checker, v.Detail)
	}
	return fmt.Sprintf("[%s] %v: %s", v.Checker, v.Node, v.Detail)
}

// Topology is the live link graph the checkers validate routes against.
// emunet.Network satisfies it.
type Topology interface {
	// Linked reports whether from can reach to in one hop.
	Linked(from, to mnet.Addr) bool
	// Nodes lists the attached addresses, sorted.
	Nodes() []mnet.Addr
}

// RIB is one protocol's routing table on one node.
type RIB struct {
	Proto   string
	Entries []route.Entry
}

// NodeState is the checkable state of one node.
type NodeState struct {
	Addr mnet.Addr
	// FIB is the node's kernel forwarding table.
	FIB []route.FIBRoute
	// RIBs are the node's per-protocol routing tables.
	RIBs []RIB
	// Neighbors is the node's neighbour-table view (nil when the deployed
	// composition exposes none).
	Neighbors []neighbor.Info
}

// Snapshot is a point-in-time capture of the cluster, taken after the
// convergence bound has elapsed.
type Snapshot struct {
	// Now is the virtual time of the capture (route lifetimes are evaluated
	// against it).
	Now time.Time
	// Topo is the live link graph.
	Topo Topology
	// Nodes is the per-node state, sorted by address.
	Nodes []NodeState
}

// Checker is one pluggable snapshot invariant.
type Checker interface {
	// Name identifies the invariant in Violations.
	Name() string
	// Check examines the snapshot and returns every breach found.
	Check(s *Snapshot) []Violation
}

// Suite is an ordered set of checkers run together.
type Suite struct {
	checkers []Checker
}

// NewSuite returns a suite over the given checkers.
func NewSuite(checkers ...Checker) *Suite { return &Suite{checkers: checkers} }

// DefaultSuite returns the standard protocol invariants: no routing loops,
// route liveness, neighbour-table symmetry.
func DefaultSuite() *Suite {
	return NewSuite(NoLoops{}, RouteLiveness{}, NeighborSymmetry{})
}

// Register appends further checkers.
func (s *Suite) Register(c ...Checker) { s.checkers = append(s.checkers, c...) }

// Checkers lists the registered checker names.
func (s *Suite) Checkers() []string {
	out := make([]string, len(s.checkers))
	for i, c := range s.checkers {
		out[i] = c.Name()
	}
	return out
}

// Run executes every checker against the snapshot and returns all
// violations, sorted for deterministic reporting.
func (s *Suite) Run(snap *Snapshot) []Violation {
	var out []Violation
	for _, c := range s.checkers {
		out = append(out, c.Check(snap)...)
	}
	SortViolations(out)
	return out
}

// SortViolations orders violations by (checker, node, detail) so reports
// are reproducible run to run.
func SortViolations(v []Violation) {
	sort.Slice(v, func(i, j int) bool {
		if v[i].Checker != v[j].Checker {
			return v[i].Checker < v[j].Checker
		}
		if v[i].Node != v[j].Node {
			return v[i].Node.Less(v[j].Node)
		}
		return v[i].Detail < v[j].Detail
	})
}

// nodeIndex maps addresses to their snapshot state.
func (s *Snapshot) nodeIndex() map[mnet.Addr]*NodeState {
	idx := make(map[mnet.Addr]*NodeState, len(s.Nodes))
	for i := range s.Nodes {
		idx[s.Nodes[i].Addr] = &s.Nodes[i]
	}
	return idx
}

// lookupFIB performs longest-prefix-match over a snapshot FIB.
func lookupFIB(fib []route.FIBRoute, dst mnet.Addr) (route.FIBRoute, bool) {
	var best route.FIBRoute
	bits := -1
	for _, r := range fib {
		if r.Dst.Contains(dst) && r.Dst.Bits > bits {
			best = r
			bits = r.Dst.Bits
		}
	}
	return best, bits >= 0
}

// reachable reports whether to can be reached from from over live links,
// searching breadth-first over the snapshot's node set.
func reachable(topo Topology, nodes []NodeState, from, to mnet.Addr) bool {
	if from == to {
		return true
	}
	visited := map[mnet.Addr]bool{from: true}
	queue := []mnet.Addr{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range nodes {
			if visited[n.Addr] || !topo.Linked(cur, n.Addr) {
				continue
			}
			if n.Addr == to {
				return true
			}
			visited[n.Addr] = true
			queue = append(queue, n.Addr)
		}
	}
	return false
}
