package invariant

import (
	"strings"
	"testing"
	"time"

	"manetkit/internal/emunet"
	"manetkit/internal/mnet"
	"manetkit/internal/neighbor"
	"manetkit/internal/packetbb"
	"manetkit/internal/route"
)

var (
	a1 = mnet.MustParseAddr("10.0.0.1")
	a2 = mnet.MustParseAddr("10.0.0.2")
	a3 = mnet.MustParseAddr("10.0.0.3")
)

// fakeTopo is a hand-built link graph.
type fakeTopo map[[2]mnet.Addr]bool

func (t fakeTopo) Linked(from, to mnet.Addr) bool { return t[[2]mnet.Addr{from, to}] }

func (t fakeTopo) Nodes() []mnet.Addr {
	seen := map[mnet.Addr]bool{}
	var out []mnet.Addr
	for k := range t {
		for _, a := range k {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

func link(pairs ...[2]mnet.Addr) fakeTopo {
	t := fakeTopo{}
	for _, p := range pairs {
		t[p] = true
		t[[2]mnet.Addr{p[1], p[0]}] = true
	}
	return t
}

func hostRoute(dst, via mnet.Addr) route.FIBRoute {
	return route.FIBRoute{Dst: mnet.HostPrefix(dst), NextHop: via, Metric: 1, Proto: "test"}
}

func ribEntry(dst, via mnet.Addr) route.Entry {
	return route.Entry{
		Dst:   mnet.HostPrefix(dst),
		Paths: []route.Path{{NextHop: via, Metric: 1}},
		Valid: true,
		Proto: "test",
	}
}

func TestNoLoopsDetectsCycle(t *testing.T) {
	// a1 routes to a3 via a2; a2 routes back via a1: classic two-node loop.
	snap := &Snapshot{
		Topo: link([2]mnet.Addr{a1, a2}, [2]mnet.Addr{a2, a3}),
		Nodes: []NodeState{
			{Addr: a1, FIB: []route.FIBRoute{hostRoute(a3, a2)}},
			{Addr: a2, FIB: []route.FIBRoute{hostRoute(a3, a1)}},
			{Addr: a3},
		},
	}
	v := NoLoops{}.Check(snap)
	if len(v) == 0 {
		t.Fatalf("loop not detected")
	}
	if !strings.Contains(v[0].Detail, "routing loop") {
		t.Fatalf("unexpected detail: %s", v[0].Detail)
	}
}

func TestNoLoopsAcceptsChain(t *testing.T) {
	snap := &Snapshot{
		Topo: link([2]mnet.Addr{a1, a2}, [2]mnet.Addr{a2, a3}),
		Nodes: []NodeState{
			{Addr: a1, FIB: []route.FIBRoute{hostRoute(a3, a2), hostRoute(a2, a2)}},
			{Addr: a2, FIB: []route.FIBRoute{hostRoute(a3, a3), hostRoute(a1, a1)}},
			{Addr: a3, FIB: []route.FIBRoute{hostRoute(a1, a2)}},
		},
	}
	if v := (NoLoops{}).Check(snap); len(v) != 0 {
		t.Fatalf("false loop: %v", v)
	}
}

func TestRouteLivenessFlagsDeadNextHop(t *testing.T) {
	snap := &Snapshot{
		Now:  time.Unix(0, 0),
		Topo: link([2]mnet.Addr{a2, a3}), // a1-a2 link is down
		Nodes: []NodeState{
			{Addr: a1, RIBs: []RIB{{Proto: "test", Entries: []route.Entry{ribEntry(a3, a2)}}}},
			{Addr: a2},
			{Addr: a3},
		},
	}
	v := RouteLiveness{}.Check(snap)
	if len(v) != 1 || !strings.Contains(v[0].Detail, "link to 10.0.0.2 is down") {
		t.Fatalf("got %v", v)
	}
}

func TestRouteLivenessFlagsUnreachableDestination(t *testing.T) {
	snap := &Snapshot{
		Now:  time.Unix(0, 0),
		Topo: link([2]mnet.Addr{a1, a2}), // a3 is islanded
		Nodes: []NodeState{
			{Addr: a1, RIBs: []RIB{{Proto: "test", Entries: []route.Entry{ribEntry(a3, a2)}}}},
			{Addr: a2},
			{Addr: a3},
		},
	}
	v := RouteLiveness{}.Check(snap)
	if len(v) != 1 || !strings.Contains(v[0].Detail, "unreachable") {
		t.Fatalf("got %v", v)
	}
}

func TestRouteLivenessSkipsExpiredAndInvalid(t *testing.T) {
	now := time.Unix(1000, 0)
	expired := ribEntry(a3, a2)
	expired.Paths[0].Expires = now.Add(-time.Second)
	invalid := ribEntry(a2, a2)
	invalid.Valid = false
	snap := &Snapshot{
		Now:  now,
		Topo: fakeTopo{},
		Nodes: []NodeState{
			{Addr: a1, RIBs: []RIB{{Proto: "test", Entries: []route.Entry{expired, invalid}}}},
			{Addr: a2},
			{Addr: a3},
		},
	}
	if v := (RouteLiveness{}).Check(snap); len(v) != 0 {
		t.Fatalf("stale routes flagged: %v", v)
	}
}

func TestNeighborSymmetry(t *testing.T) {
	sym := func(addr mnet.Addr) neighbor.Info {
		return neighbor.Info{Addr: addr, Status: neighbor.StatusSymmetric}
	}
	snap := &Snapshot{
		Topo: link([2]mnet.Addr{a1, a2}),
		Nodes: []NodeState{
			// a1 thinks both a2 (fine) and a3 (link down) are symmetric.
			{Addr: a1, Neighbors: []neighbor.Info{sym(a2), sym(a3)}},
			// a2 reciprocates a1.
			{Addr: a2, Neighbors: []neighbor.Info{sym(a1)}},
			{Addr: a3, Neighbors: []neighbor.Info{}},
		},
	}
	v := NeighborSymmetry{}.Check(snap)
	if len(v) != 1 || v[0].Node != a1 || !strings.Contains(v[0].Detail, "10.0.0.3") {
		t.Fatalf("got %v", v)
	}
}

func TestNeighborSymmetryFlagsUnrequitedBelief(t *testing.T) {
	snap := &Snapshot{
		Topo: link([2]mnet.Addr{a1, a2}),
		Nodes: []NodeState{
			{Addr: a1, Neighbors: []neighbor.Info{{Addr: a2, Status: neighbor.StatusSymmetric}}},
			// a2 has marked a1 lost even though the medium link is up.
			{Addr: a2, Neighbors: []neighbor.Info{{Addr: a1, Status: neighbor.StatusLost}}},
		},
	}
	v := NeighborSymmetry{}.Check(snap)
	if len(v) != 1 || !strings.Contains(v[0].Detail, "does not hear it back") {
		t.Fatalf("got %v", v)
	}
}

func TestSuiteRunsAllCheckersSorted(t *testing.T) {
	s := DefaultSuite()
	if got := s.Checkers(); len(got) != 3 {
		t.Fatalf("default suite: %v", got)
	}
	snap := &Snapshot{Topo: fakeTopo{}, Nodes: nil}
	if v := s.Run(snap); len(v) != 0 {
		t.Fatalf("empty snapshot produced %v", v)
	}
}

// controlFrame builds a first-hop control frame carrying one message.
func controlFrame(orig mnet.Addr, typ packetbb.MsgType, seq uint16, origSeq *uint16) emunet.Frame {
	msg := packetbb.Message{
		Type:       typ,
		Originator: orig,
		SeqNum:     seq,
	}
	if origSeq != nil {
		msg.AddrBlocks = []packetbb.AddrBlock{{
			Addrs: []mnet.Addr{orig},
			TLVs: []packetbb.AddrTLV{{
				Type: packetbb.ATLVOrigSeq, IndexStart: 0, IndexStop: 0,
				Value: packetbb.U16(*origSeq),
			}},
		}}
	}
	wire, err := packetbb.EncodePacket(&packetbb.Packet{Messages: []packetbb.Message{msg}})
	if err != nil {
		panic(err)
	}
	return emunet.Frame{Src: orig, Dst: mnet.Broadcast, Payload: append([]byte{0x01}, wire...)}
}

func TestSeqWatcherFlagsRegression(t *testing.T) {
	w := NewSeqWatcher()
	w.Observe(controlFrame(a1, packetbb.MsgHello, 100, nil), a2)
	w.Observe(controlFrame(a1, packetbb.MsgHello, 101, nil), a2)
	// Way back beyond the tolerance: violation.
	w.Observe(controlFrame(a1, packetbb.MsgHello, 10, nil), a2)
	v := w.Violations()
	if len(v) != 1 || v[0].Node != a1 {
		t.Fatalf("got %v", v)
	}
	if w.Frames() != 3 {
		t.Fatalf("frames = %d", w.Frames())
	}
}

func TestSeqWatcherToleratesReorderDuplicatesAndWraparound(t *testing.T) {
	w := NewSeqWatcher()
	w.Observe(controlFrame(a1, packetbb.MsgHello, 100, nil), a2)
	w.Observe(controlFrame(a1, packetbb.MsgHello, 99, nil), a2)  // adjacent swap
	w.Observe(controlFrame(a1, packetbb.MsgHello, 100, nil), a2) // duplicate
	// Wraparound: 0xfffe then 3.
	w.Observe(controlFrame(a2, packetbb.MsgTC, 0xfffe, nil), a1)
	w.Observe(controlFrame(a2, packetbb.MsgTC, 3, nil), a1)
	if v := w.Violations(); len(v) != 0 {
		t.Fatalf("false positives: %v", v)
	}
}

func TestSeqWatcherTracksOrigSeqAndForget(t *testing.T) {
	w := NewSeqWatcher()
	s1, s2 := uint16(50), uint16(5)
	w.Observe(controlFrame(a1, packetbb.MsgRREQ, 1, &s1), a2)
	w.Observe(controlFrame(a1, packetbb.MsgRREQ, 2, &s2), a2)
	if v := w.Violations(); len(v) != 1 || !strings.Contains(v[0].Detail, "originator seq") {
		t.Fatalf("got %v", v)
	}

	// After a legitimate reboot the same regression is forgiven.
	w2 := NewSeqWatcher()
	w2.Observe(controlFrame(a1, packetbb.MsgRREQ, 1, &s1), a2)
	w2.Forget(a1)
	w2.Observe(controlFrame(a1, packetbb.MsgRREQ, 2, &s2), a2)
	if v := w2.Violations(); len(v) != 0 {
		t.Fatalf("Forget did not reset: %v", v)
	}
}

func TestSeqWatcherIgnoresCorruptedAndForwardedFrames(t *testing.T) {
	w := NewSeqWatcher()
	w.Observe(controlFrame(a1, packetbb.MsgHello, 100, nil), a2)
	// A corrupted frame carrying a regressed number is skipped on the
	// FCS marker.
	bad := controlFrame(a1, packetbb.MsgHello, 1, nil)
	bad.Corrupted = true
	w.Observe(bad, a2)
	// A forwarded copy (frame source != originator) is skipped too.
	fwd := controlFrame(a1, packetbb.MsgHello, 1, nil)
	fwd.Src = a3
	w.Observe(fwd, a2)
	// Garbage does not panic the watcher.
	w.Observe(emunet.Frame{Src: a1, Payload: []byte{0x01, 0xde, 0xad}}, a2)
	w.Observe(emunet.Frame{Src: a1, Payload: nil}, a2)
	if v := w.Violations(); len(v) != 0 {
		t.Fatalf("got %v", v)
	}
}
