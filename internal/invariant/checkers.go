package invariant

import (
	"fmt"
	"strings"

	"manetkit/internal/mnet"
	"manetkit/internal/neighbor"
)

// NoLoops walks every forwarding decision hop by hop across the cluster's
// FIBs and reports any cycle: the distance-vector protocols' loop-freedom
// guarantee (DYMO/AODV sequence numbers, OLSR shortest-path trees) made
// machine-checkable.
type NoLoops struct{}

// Name implements Checker.
func (NoLoops) Name() string { return "no-loops" }

// Check implements Checker.
func (NoLoops) Check(s *Snapshot) []Violation {
	idx := s.nodeIndex()
	var out []Violation
	for _, n := range s.Nodes {
		for _, r := range n.FIB {
			if r.Dst.Bits != 8*mnet.AddrLen {
				continue // gateway/HNA prefixes route off-cluster
			}
			dst := r.Dst.Addr
			if dst == n.Addr {
				continue
			}
			path := []mnet.Addr{n.Addr}
			visited := map[mnet.Addr]bool{n.Addr: true}
			cur := n.Addr
			for {
				state, ok := idx[cur]
				if !ok {
					break // next hop outside the snapshot: liveness's department
				}
				if cur == dst {
					break // delivered
				}
				hop, ok := lookupFIB(state.FIB, dst)
				if !ok {
					break // dead end, not a loop
				}
				next := hop.NextHop
				if visited[next] {
					out = append(out, Violation{
						Checker: "no-loops",
						Node:    n.Addr,
						Detail: fmt.Sprintf("routing loop towards %v: %s -> %v",
							dst, pathString(path), next),
					})
					break
				}
				visited[next] = true
				path = append(path, next)
				cur = next
			}
		}
	}
	return out
}

func pathString(path []mnet.Addr) string {
	parts := make([]string, len(path))
	for i, a := range path {
		parts[i] = a.String()
	}
	return strings.Join(parts, " -> ")
}

// RouteLiveness checks that every valid, unexpired route corresponds to the
// live network: its next hop must be reachable in one hop, and its
// destination must be reachable at all over current links. Run only after
// the convergence bound — mid-churn, stale routes are expected.
type RouteLiveness struct{}

// Name implements Checker.
func (RouteLiveness) Name() string { return "route-liveness" }

// Check implements Checker.
func (RouteLiveness) Check(s *Snapshot) []Violation {
	idx := s.nodeIndex()
	var out []Violation
	for _, n := range s.Nodes {
		for _, rib := range n.RIBs {
			for _, e := range rib.Entries {
				if !e.Valid || e.Dst.Bits != 8*mnet.AddrLen {
					continue
				}
				best, ok := e.Best(s.Now)
				if !ok {
					continue // all paths expired: harmlessly stale
				}
				dst := e.Dst.Addr
				if dst == n.Addr {
					continue
				}
				if !s.Topo.Linked(n.Addr, best.NextHop) {
					out = append(out, Violation{
						Checker: "route-liveness",
						Node:    n.Addr,
						Detail: fmt.Sprintf("%s route to %v via %v, but the link to %v is down",
							rib.Proto, dst, best.NextHop, best.NextHop),
					})
					continue
				}
				if _, known := idx[dst]; !known {
					out = append(out, Violation{
						Checker: "route-liveness",
						Node:    n.Addr,
						Detail: fmt.Sprintf("%s route to %v, which is not an attached node",
							rib.Proto, dst),
					})
					continue
				}
				if !reachable(s.Topo, s.Nodes, n.Addr, dst) {
					out = append(out, Violation{
						Checker: "route-liveness",
						Node:    n.Addr,
						Detail: fmt.Sprintf("%s route to %v, which is unreachable over live links",
							rib.Proto, dst),
					})
				}
			}
		}
	}
	return out
}

// NeighborSymmetry checks the sensing layer: a neighbour a node believes
// symmetric must be linked both ways on the medium, and (when the peer
// exposes a neighbour table) the peer must still know about the node.
type NeighborSymmetry struct{}

// Name implements Checker.
func (NeighborSymmetry) Name() string { return "neighbor-symmetry" }

// Check implements Checker.
func (NeighborSymmetry) Check(s *Snapshot) []Violation {
	idx := s.nodeIndex()
	var out []Violation
	for _, n := range s.Nodes {
		for _, nb := range n.Neighbors {
			if nb.Status != neighbor.StatusSymmetric {
				continue
			}
			if !s.Topo.Linked(n.Addr, nb.Addr) || !s.Topo.Linked(nb.Addr, n.Addr) {
				out = append(out, Violation{
					Checker: "neighbor-symmetry",
					Node:    n.Addr,
					Detail: fmt.Sprintf("believes %v symmetric but the medium link is down",
						nb.Addr),
				})
				continue
			}
			peer, ok := idx[nb.Addr]
			if !ok || peer.Neighbors == nil {
				continue
			}
			mutual := false
			for _, back := range peer.Neighbors {
				if back.Addr == n.Addr && back.Status != neighbor.StatusLost {
					mutual = true
					break
				}
			}
			if !mutual {
				out = append(out, Violation{
					Checker: "neighbor-symmetry",
					Node:    n.Addr,
					Detail: fmt.Sprintf("believes %v symmetric but %v does not hear it back",
						nb.Addr, nb.Addr),
				})
			}
		}
	}
	return out
}
