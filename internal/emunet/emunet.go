// Package emunet emulates the wireless testbed the paper evaluates on: an
// 802.11-style broadcast medium with an explicit connectivity matrix.
//
// The paper's testbed was five Linux nodes whose multi-hop topology was
// emulated with MAC-level filtering plus the MobiEmu emulator (§6). emunet
// reproduces that arrangement in-process: nodes attach NICs to a Network,
// the connectivity matrix (the MAC-filter analogue) decides who hears whom,
// and each directed link carries a delay, a loss probability and a signal
// strength. Mobility scenarios are scripted timeline mutations of the
// matrix, like MobiEmu scenario playback.
//
// Frame delivery runs on the sharded discrete-event engine (engine.go) by
// default, which scales the medium to thousands of nodes; NewWithConfig
// selects the original timer-per-delivery path for differential testing.
// All timing goes through vclock.Clock, so a whole scenario is
// deterministic under a virtual clock on either engine.
package emunet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/trace"
	"manetkit/internal/vclock"
)

// Frame is one link-layer transmission as seen by a receiver.
type Frame struct {
	Src     mnet.Addr
	Dst     mnet.Addr // mnet.Broadcast for broadcast frames
	Payload []byte
	Device  string
	// RSSI is the emulated received signal strength in dBm.
	RSSI float64
	// Corrupted marks a frame mangled by fault injection. A real MAC would
	// discard it on the frame checksum; the emulator delivers it anyway so
	// decoder robustness is exercised, and diagnostic taps (which model
	// capture above the MAC) can use this bit to ignore mangled frames.
	Corrupted bool
	// Corr is the message correlation ID of the payload (empty when the
	// sender did not tag the frame). It exists only in the emulator — real
	// radios carry no such field — so the frame-rx trace span on the
	// receiving node can be stitched to the frame-tx span on the sender.
	Corr string
}

// Quality describes one directed link.
type Quality struct {
	// Delay is the propagation+MAC delay applied to each frame.
	Delay time.Duration
	// Loss is the independent per-frame drop probability in [0,1].
	Loss float64
	// SignalDBm is the received signal strength reported with each frame.
	SignalDBm float64
}

// DefaultQuality approximates a healthy one-hop 802.11b/g link.
func DefaultQuality() Quality {
	return Quality{Delay: 1500 * time.Microsecond, Loss: 0, SignalDBm: -55}
}

// Stats aggregates medium activity; used by the overhead experiments.
type Stats struct {
	TxFrames      uint64 // transmissions attempted (one per Send call)
	RxFrames      uint64 // deliveries completed
	DroppedLoss   uint64 // deliveries lost to link loss
	DroppedNoLink uint64 // unicast sends with no link to the destination
	TxBytes       uint64
	RxBytes       uint64
	// Fault-injection activity (see FaultPlan).
	Corrupted  uint64 // deliveries whose payload was mangled
	Duplicated uint64 // extra deliveries injected by duplication
	Reordered  uint64 // deliveries delayed by reorder jitter
}

// Errors reported by the emulated medium.
var (
	ErrAttached = errors.New("emunet: address already attached")
	ErrNotFound = errors.New("emunet: no such node")
	ErrDetached = errors.New("emunet: NIC detached")
	ErrSelfLink = errors.New("emunet: node cannot link to itself")
)

type linkKey struct{ from, to mnet.Addr }

// neighborLink is one entry of the adjacency index: a directed link with
// its receiving NIC resolved, kept sorted by destination address. Broadcast
// fan-out iterates a sender's entries directly — the deterministic receiver
// order the legacy path got by scanning and sorting the whole O(E) link
// matrix on every send.
type neighborLink struct {
	to  mnet.Addr
	nic *NIC
	q   Quality
}

// Network is the emulated broadcast medium plus connectivity matrix.
type Network struct {
	clock vclock.Clock

	mu    sync.Mutex
	rng   *rand.Rand
	nodes map[mnet.Addr]*NIC
	links map[linkKey]Quality
	adj   map[mnet.Addr][]neighborLink
	stats Stats                  // legacy engine's global counters
	eng   *engine                // nil on the legacy path
	tap   func(Frame, mnet.Addr) // (frame, receiver); nil when unset
	txTap func(Frame)            // transmission-side tap; nil when unset
	inj   *Injector              // nil until a FaultPlan is applied
	obs   *netObs                // nil when observability is disabled

	// epochObs, when set, receives one EpochStats per committed engine
	// epoch, on the clock goroutine, outside the network mutex. Unused on
	// the legacy path (which has no epochs).
	epochObs func(EpochStats)
}

// New creates an empty medium on the given clock, running the sharded
// discrete-event engine with default tuning. seed drives the loss process,
// making lossy runs reproducible.
func New(clock vclock.Clock, seed int64) *Network {
	return NewWithConfig(clock, seed, EngineConfig{})
}

// NewWithConfig is New with explicit engine selection and tuning — the
// constructor differential tests use to pit the legacy timer-per-delivery
// path against the event core on identical seeds.
func NewWithConfig(clock vclock.Clock, seed int64, cfg EngineConfig) *Network {
	n := &Network{
		clock: clock,
		rng:   rand.New(rand.NewSource(seed)),
		nodes: make(map[mnet.Addr]*NIC),
		links: make(map[linkKey]Quality),
		adj:   make(map[mnet.Addr][]neighborLink),
	}
	if !cfg.Legacy {
		n.eng = newEngine(n, cfg)
	}
	return n
}

// Clock returns the clock the medium schedules deliveries on.
func (n *Network) Clock() vclock.Clock { return n.clock }

// Attach joins a node to the medium and returns its NIC. The device name is
// synthesised ("emu0" style) and unique per node.
func (n *Network) Attach(addr mnet.Addr) (*NIC, error) {
	if addr.IsBroadcast() || addr.IsUnspecified() {
		return nil, fmt.Errorf("emunet: cannot attach reserved address %v", addr)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[addr]; ok {
		return nil, fmt.Errorf("%w: %v", ErrAttached, addr)
	}
	nic := &NIC{
		net:    n,
		addr:   addr,
		device: fmt.Sprintf("emu%d", len(n.nodes)),
	}
	n.nodes[addr] = nic
	return nic, nil
}

// Reattach restores a previously detached NIC at its old address — the
// second half of a crash+restart fault. The NIC keeps its device name; any
// protocol stack still holding it resumes transmitting, but all links were
// lost on Detach and must be re-installed by the caller (or a FaultPlan).
func (n *Network) Reattach(nic *NIC) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[nic.addr]; ok {
		return fmt.Errorf("%w: %v", ErrAttached, nic.addr)
	}
	nic.mu.Lock()
	nic.detached = false
	nic.mu.Unlock()
	n.nodes[nic.addr] = nic
	return nil
}

// Detach removes a node and all its links — a node leaving the network.
func (n *Network) Detach(addr mnet.Addr) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	nic, ok := n.nodes[addr]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotFound, addr)
	}
	nic.mu.Lock()
	nic.detached = true
	nic.mu.Unlock()
	delete(n.nodes, addr)
	for k := range n.links {
		if k.from == addr || k.to == addr {
			delete(n.links, k)
			if k.to == addr {
				n.removeAdjLocked(k.from, addr)
			}
		}
	}
	delete(n.adj, addr)
	return nil
}

// SetLink installs a symmetric link between a and b with quality q in both
// directions.
func (n *Network) SetLink(a, b mnet.Addr, q Quality) error {
	if err := n.SetDirectedLink(a, b, q); err != nil {
		return err
	}
	return n.SetDirectedLink(b, a, q)
}

// SetDirectedLink installs or updates the from→to direction only, allowing
// asymmetric ("heard but not symmetric") links.
func (n *Network) SetDirectedLink(from, to mnet.Addr, q Quality) error {
	if from == to {
		return ErrSelfLink
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[from]; !ok {
		return fmt.Errorf("%w: %v", ErrNotFound, from)
	}
	toNIC, ok := n.nodes[to]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotFound, to)
	}
	n.links[linkKey{from, to}] = q
	n.setAdjLocked(from, to, toNIC, q)
	return nil
}

// CutLink removes both directions between a and b — the MAC-filter move that
// models nodes drifting out of range.
func (n *Network) CutLink(a, b mnet.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.links, linkKey{a, b})
	delete(n.links, linkKey{b, a})
	n.removeAdjLocked(a, b)
	n.removeAdjLocked(b, a)
}

// setAdjLocked inserts or updates the from→to adjacency entry, keeping the
// slice sorted by destination. Caller holds n.mu.
func (n *Network) setAdjLocked(from, to mnet.Addr, nic *NIC, q Quality) {
	nl := n.adj[from]
	i := sort.Search(len(nl), func(i int) bool { return !nl[i].to.Less(to) })
	if i < len(nl) && nl[i].to == to {
		nl[i].nic, nl[i].q = nic, q
		return
	}
	nl = append(nl, neighborLink{})
	copy(nl[i+1:], nl[i:])
	nl[i] = neighborLink{to: to, nic: nic, q: q}
	n.adj[from] = nl
}

// removeAdjLocked deletes the from→to adjacency entry if present,
// preserving order. Caller holds n.mu.
func (n *Network) removeAdjLocked(from, to mnet.Addr) {
	nl := n.adj[from]
	i := sort.Search(len(nl), func(i int) bool { return !nl[i].to.Less(to) })
	if i >= len(nl) || nl[i].to != to {
		return
	}
	copy(nl[i:], nl[i+1:])
	nl[len(nl)-1] = neighborLink{}
	n.adj[from] = nl[:len(nl)-1]
}

// Linked reports whether from can currently reach to in one hop.
func (n *Network) Linked(from, to mnet.Addr) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.links[linkKey{from, to}]
	return ok
}

// LinkQuality returns the quality of the from→to link.
func (n *Network) LinkQuality(from, to mnet.Addr) (Quality, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	q, ok := n.links[linkKey{from, to}]
	return q, ok
}

// Neighbors lists the nodes from can reach in one hop, sorted. It reads the
// adjacency index; the links matrix is the ground truth it must agree with
// (the shard property test checks exactly that).
func (n *Network) Neighbors(from mnet.Addr) []mnet.Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	nl := n.adj[from]
	if len(nl) == 0 {
		return nil
	}
	out := make([]mnet.Addr, len(nl))
	for i := range nl {
		out[i] = nl[i].to
	}
	return out
}

// Nodes lists attached addresses, sorted.
func (n *Network) Nodes() []mnet.Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]mnet.Addr, 0, len(n.nodes))
	for a := range n.nodes {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// NIC looks up the NIC attached at addr.
func (n *Network) NIC(addr mnet.Addr) (*NIC, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	nic, ok := n.nodes[addr]
	return nic, ok
}

// Stats returns a snapshot of medium counters. On the event core this is
// the sum over spatial shards; on the legacy path, the global struct.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.eng != nil {
		return n.eng.totalsLocked()
	}
	return n.stats
}

// ShardStats returns a copy of the per-shard medium counters, keyed by
// spatial shard ID (address / ShardSize). Each counter is attributed to
// exactly one shard — transmission-side events to the sender's, per-target
// events to the receiver's — so summing the values reproduces Stats even
// across shard-boundary links. The legacy engine has no shards and returns
// nil.
func (n *Network) ShardStats() map[uint32]Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.eng == nil {
		return nil
	}
	return n.eng.snapshotLocked()
}

// SetEpochObserver installs fn to receive one EpochStats per committed
// engine epoch — the streaming bus's engine feed. fn runs on the clock
// goroutine, after the epoch's commit phase, outside the network mutex;
// it is a no-op on the legacy engine. Pass nil to remove.
func (n *Network) SetEpochObserver(fn func(EpochStats)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.epochObs = fn
}

// EngineStats returns the event core's cumulative epoch telemetry. ok is
// false on the legacy engine, which has no epochs.
func (n *Network) EngineStats() (EngineStats, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.eng == nil {
		return EngineStats{}, false
	}
	return n.eng.engStats, true
}

// ResetStats zeroes the medium counters (between experiment phases).
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = Stats{}
	if n.eng != nil {
		n.eng.shardStats = make(map[uint32]*Stats)
	}
}

// statsLocked returns the counter bucket that events at addr are charged
// to: addr's spatial shard on the event core, the global struct on the
// legacy path. Caller holds n.mu.
func (n *Network) statsLocked(addr mnet.Addr) *Stats {
	if n.eng != nil {
		return n.eng.statsForLocked(addr)
	}
	return &n.stats
}

// SetTap installs a packet-capture hook (the libpcap analogue): fn observes
// every delivered frame together with its receiver. Pass nil to remove.
func (n *Network) SetTap(fn func(f Frame, receiver mnet.Addr)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tap = fn
}

// SetTxTap installs a transmission-side capture hook: fn observes every
// frame the medium accepts for transmission (one call per Send, before
// loss, link filtering or fault injection — the workload as offered, not as
// delivered). The receiver-side SetTap sees only completed deliveries; the
// pair is what lets the evaluation campaign compute control overhead per
// transmission, the convention of the protocol-comparison literature. The
// frame's payload is the sender's live buffer: fn must treat it as
// read-only and must not retain it. Pass nil to remove.
func (n *Network) SetTxTap(fn func(Frame)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.txTap = fn
}

// ScheduleAt runs fn on the medium's clock after d — the primitive from
// which mobility scenarios are scripted.
func (n *Network) ScheduleAt(d time.Duration, fn func(*Network)) {
	n.clock.AfterFunc(d, func() { fn(n) })
}

// send performs the medium's half of a transmission from src.
func (n *Network) send(src mnet.Addr, dst mnet.Addr, payload []byte, device, corr string) {
	n.mu.Lock()
	now := n.clock.Now()
	txTap := n.txTap
	txStats := n.statsLocked(src)
	txStats.TxFrames++
	txStats.TxBytes += uint64(len(payload))
	if n.obs != nil {
		n.obs.txFrames.Inc()
		if n.obs.tracer != nil {
			n.obs.tracer.Record(now, trace.Span{
				Node: src.String(), Kind: trace.KindFrameTx,
				To: traceTo(dst), Corr: corr, Bytes: len(payload),
			})
		}
	}

	type target struct {
		nic *NIC
		q   Quality
	}
	var targets []target
	if dst.IsBroadcast() {
		// The adjacency index is sorted by destination, which fixes the
		// delivery order under equal delays.
		for _, nl := range n.adj[src] {
			targets = append(targets, target{nl.nic, nl.q})
		}
	} else {
		q, ok := n.links[linkKey{src, dst}]
		nic, attached := n.nodes[dst]
		if !ok || !attached {
			n.statsLocked(dst).DroppedNoLink++
			if n.obs != nil {
				n.obs.droppedNoLink.Inc()
				if n.obs.tracer != nil {
					n.obs.tracer.Record(now, trace.Span{
						Node: src.String(), Kind: trace.KindFrameDrop,
						Event: "no-link", To: dst.String(), Corr: corr, Bytes: len(payload),
					})
				}
			}
			n.mu.Unlock()
			if txTap != nil {
				txTap(Frame{Src: src, Dst: dst, Payload: payload, Device: device, Corr: corr})
			}
			return
		}
		targets = append(targets, target{nic, q})
	}

	// Copy the payload once; receivers must not alias the sender's buffer.
	buf := append([]byte(nil), payload...)
	type pending struct {
		nic   *NIC
		frame Frame
		delay time.Duration
	}
	var due []pending
	for _, d := range targets {
		if d.q.Loss > 0 && n.rng.Float64() < d.q.Loss {
			n.statsLocked(d.nic.addr).DroppedLoss++
			if n.obs != nil {
				n.obs.droppedLoss.Inc()
				if n.obs.tracer != nil {
					n.obs.tracer.Record(now, trace.Span{
						Node: src.String(), Kind: trace.KindFrameDrop,
						Event: "loss", To: d.nic.addr.String(), Corr: corr, Bytes: len(buf),
					})
				}
			}
			continue
		}
		frame := Frame{Src: src, Dst: dst, Payload: buf, Device: device, RSSI: d.q.SignalDBm, Corr: corr}
		delay := d.q.Delay
		if n.inj != nil {
			extras := n.inj.injectLocked(n, n.statsLocked(d.nic.addr), d.nic.addr, &frame, &delay)
			for _, e := range extras {
				due = append(due, pending{d.nic, e.frame, e.delay})
			}
		}
		due = append(due, pending{d.nic, frame, delay})
	}
	if n.obs != nil && n.obs.linkDelay != nil {
		for _, d := range due {
			n.obs.linkDelay.Observe(d.delay)
		}
	}
	if n.eng != nil {
		for _, d := range due {
			dl := n.eng.newDeliveryLocked()
			dl.nic = d.nic
			dl.frame = d.frame
			n.eng.scheduleLocked(dl, now.Add(d.delay))
		}
	}
	n.mu.Unlock()

	if txTap != nil {
		txTap(Frame{Src: src, Dst: dst, Payload: payload, Device: device, Corr: corr})
	}
	if n.eng == nil {
		for _, d := range due {
			d := d
			n.clock.AfterFunc(d.delay, func() { d.nic.deliver(d.frame) })
		}
	}
}

// NIC is one node's attachment to the medium.
type NIC struct {
	net    *Network
	addr   mnet.Addr
	device string

	mu       sync.Mutex
	recv     func(Frame)
	detached bool
	rx, tx   uint64
}

// Addr returns the NIC's node address.
func (c *NIC) Addr() mnet.Addr { return c.addr }

// Device returns the NIC's synthetic device name (e.g. "emu0").
func (c *NIC) Device() string { return c.device }

// SetReceiver installs the upcall invoked for each delivered frame.
// Deliveries run on the clock's timer context; under a virtual clock that
// is the goroutine driving the simulation.
func (c *NIC) SetReceiver(fn func(Frame)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recv = fn
}

// Send transmits payload to dst (unicast or mnet.Broadcast). The send is
// fire-and-forget, like a radio: absence of a link loses the frame.
func (c *NIC) Send(dst mnet.Addr, payload []byte) error {
	return c.SendTagged(dst, payload, "")
}

// SendTagged is Send with a message correlation ID attached to the frame
// and its trace spans; "" is equivalent to Send.
func (c *NIC) SendTagged(dst mnet.Addr, payload []byte, corr string) error {
	c.mu.Lock()
	if c.detached {
		c.mu.Unlock()
		return ErrDetached
	}
	c.tx++
	c.mu.Unlock()
	c.net.send(c.addr, dst, payload, c.device, corr)
	return nil
}

// SendWithFeedback transmits a unicast frame and reports MAC-level delivery
// feedback (the 802.11 ACK analogue) through cb once the frame is delivered
// or known lost. Broadcast destinations receive no feedback (as in 802.11).
func (c *NIC) SendWithFeedback(dst mnet.Addr, payload []byte, cb func(delivered bool)) error {
	return c.SendWithFeedbackTagged(dst, payload, "", cb)
}

// SendWithFeedbackTagged is SendWithFeedback with a message correlation ID
// attached to the frame and its trace spans.
func (c *NIC) SendWithFeedbackTagged(dst mnet.Addr, payload []byte, corr string, cb func(delivered bool)) error {
	if dst.IsBroadcast() {
		if err := c.SendTagged(dst, payload, corr); err != nil {
			return err
		}
		return nil
	}
	c.mu.Lock()
	if c.detached {
		c.mu.Unlock()
		return ErrDetached
	}
	c.tx++
	c.mu.Unlock()

	n := c.net
	n.mu.Lock()
	now := n.clock.Now()
	txTap := n.txTap
	txStats := n.statsLocked(c.addr)
	txStats.TxFrames++
	txStats.TxBytes += uint64(len(payload))
	if n.obs != nil {
		n.obs.txFrames.Inc()
		if n.obs.tracer != nil {
			n.obs.tracer.Record(now, trace.Span{
				Node: c.addr.String(), Kind: trace.KindFrameTx,
				To: dst.String(), Corr: corr, Bytes: len(payload),
			})
		}
	}
	q, linked := n.links[linkKey{c.addr, dst}]
	nic, attached := n.nodes[dst]
	lost := false
	if !linked || !attached {
		n.statsLocked(dst).DroppedNoLink++
		if n.obs != nil {
			n.obs.droppedNoLink.Inc()
		}
	} else if q.Loss > 0 && n.rng.Float64() < q.Loss {
		n.statsLocked(dst).DroppedLoss++
		if n.obs != nil {
			n.obs.droppedLoss.Inc()
		}
		lost = true
	}
	if n.obs != nil && n.obs.tracer != nil && (!linked || !attached || lost) {
		reason := "no-link"
		if lost {
			reason = "loss"
		}
		n.obs.tracer.Record(now, trace.Span{
			Node: c.addr.String(), Kind: trace.KindFrameDrop,
			Event: reason, To: dst.String(), Corr: corr, Bytes: len(payload),
		})
	}
	var frame Frame
	delay := q.Delay
	if linked && attached && !lost {
		// The frame keeps the sender's buffer unaliased, and corruption
		// (only — duplication and reordering are suppressed by the 802.11
		// ACK exchange this path models) may still mangle it in flight.
		frame = Frame{Src: c.addr, Dst: dst, Payload: append([]byte(nil), payload...),
			Device: c.device, RSSI: q.SignalDBm, Corr: corr}
		if n.inj != nil {
			n.inj.corruptOnlyLocked(n, n.statsLocked(dst), dst, &frame)
		}
		if n.obs != nil && n.obs.linkDelay != nil {
			n.obs.linkDelay.Observe(delay)
		}
	}
	if n.eng != nil {
		dl := n.eng.newDeliveryLocked()
		dl.cb = cb
		if !linked || !attached || lost {
			// MAC retry window before the failure is reported.
			n.eng.scheduleLocked(dl, now.Add(q.Delay+2*time.Millisecond))
		} else {
			dl.nic = nic
			dl.frame = frame
			dl.ok = true
			n.eng.scheduleLocked(dl, now.Add(delay))
		}
		n.mu.Unlock()
		if txTap != nil {
			txTap(Frame{Src: c.addr, Dst: dst, Payload: payload, Device: c.device, Corr: corr})
		}
		return nil
	}
	n.mu.Unlock()

	if txTap != nil {
		txTap(Frame{Src: c.addr, Dst: dst, Payload: payload, Device: c.device, Corr: corr})
	}
	if !linked || !attached || lost {
		// MAC retry window before the failure is reported.
		n.clock.AfterFunc(q.Delay+2*time.Millisecond, func() { cb(false) })
		return nil
	}
	n.clock.AfterFunc(delay, func() {
		nic.deliver(frame)
		cb(true)
	})
	return nil
}

// deliver hands a frame to the receiver callback and accounts for it — the
// legacy path's delivery tail. The event core splits the same work into
// prep/commit halves (engine.go).
//
//mk:hotpath
func (c *NIC) deliver(f Frame) {
	c.mu.Lock()
	if c.detached {
		c.mu.Unlock()
		return
	}
	recv := c.recv
	c.rx++
	c.mu.Unlock()

	n := c.net
	n.mu.Lock()
	n.stats.RxFrames++
	n.stats.RxBytes += uint64(len(f.Payload))
	if n.obs != nil {
		n.obs.rxFrames.Inc()
		if f.Corrupted {
			n.obs.corrupted.Inc()
		}
		if n.obs.tracer != nil {
			n.obs.tracer.Record(n.clock.Now(), trace.Span{
				Node: c.addr.String(), Kind: trace.KindFrameRx,
				From: f.Src.String(), Corr: f.Corr, Bytes: len(f.Payload),
			})
		}
	}
	tap := n.tap
	n.mu.Unlock()

	if tap != nil {
		tap(f, c.addr)
	}
	if recv != nil {
		recv(f)
	}
}

// Counters returns the NIC's transmit/receive frame counts.
func (c *NIC) Counters() (tx, rx uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tx, c.rx
}
