package emunet_test

// The telemetry bus under real load: a thousand-node emulation (the same
// scenario shape as the replay-scale gate, rebuilt over the exported API
// because this external package is what may import telemetry) streams
// spans and engine epochs to live subscribers. The gates:
//
//   - a deliberately tiny spans subscriber loses events but never stalls
//     the emulation, and its accounting is exact to the event;
//   - the engine subscriber with ample buffer sees every epoch, and the
//     decoded epochs reproduce the engine's own cumulative counters;
//   - the flight recorder's dump is byte-identical across GOMAXPROCS 1
//     and all CPUs — the streaming layer inherits the sharded core's
//     replay determinism.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
	"time"

	"manetkit/internal/emunet"
	"manetkit/internal/mnet"
	"manetkit/internal/telemetry"
	"manetkit/internal/trace"
	"manetkit/internal/vclock"
)

// thousandNodeBusRun drives the 1000-node grid with a bus attached and
// one subscriber per busy stream. Returns the recorder dump fingerprint
// and the network's engine stats.
func thousandNodeBusRun(t *testing.T) (string, emunet.EngineStats) {
	t.Helper()
	const n, cols = 1000, 32
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := vclock.NewVirtual(epoch)
	net := emunet.NewWithConfig(clk, 1701, emunet.EngineConfig{})
	tr := trace.New(epoch, 0)
	net.SetTracer(tr)

	bus := telemetry.New(telemetry.Config{Epoch: epoch, RecorderCapacity: 1 << 17})
	telemetry.AttachTracer(bus, tr)
	telemetry.AttachEngine(bus, net)
	engineSub := bus.Subscribe(1<<16, telemetry.StreamEngine) // ample: loses nothing
	spansSub := bus.Subscribe(64, telemetry.StreamSpans)      // tiny: must drop, not stall
	idleSub := bus.Subscribe(8, telemetry.StreamHealth)       // nothing flows here

	nodes := emunet.Addrs(n)
	q := emunet.DefaultQuality()
	q.Loss = 0.05
	if err := emunet.BuildGrid(net, nodes, cols, q); err != nil {
		t.Fatalf("BuildGrid: %v", err)
	}
	for i, a := range nodes {
		a := a
		echoed := false
		nic, _ := net.NIC(a)
		back := nodes[(i+n-1)%n]
		nic.SetReceiver(func(f emunet.Frame) {
			if f.Dst == a && !echoed && len(f.Payload) > 0 && f.Payload[0] == 'p' {
				echoed = true
				_ = nic.Send(back, []byte("echo"))
			}
		})
	}
	emunet.NewFaultPlan(93).
		Partition(80*time.Millisecond, 200*time.Millisecond, nodes[:n/2], nodes[n/2:]).
		CorruptFrames(0, 300*time.Millisecond, 0.1).
		DuplicateFrames(0, 300*time.Millisecond, 0.1).
		Apply(net)
	for i, a := range nodes {
		a := a
		peer := nodes[(i+cols+1)%n]
		for k := 0; k < 3; k++ {
			k := k
			clk.AfterFunc(time.Duration(10+k*90)*time.Millisecond, func() {
				nic, ok := net.NIC(a)
				if !ok {
					return
				}
				_ = nic.Send(mnet.Broadcast, []byte(fmt.Sprintf("b%d", k)))
				_ = nic.Send(peer, []byte("ping"))
			})
		}
	}
	clk.Advance(400 * time.Millisecond)
	fp := bus.Fingerprint()
	bus.Close()

	// Exact accounting, stream by stream.
	spanTotal := uint64(tr.Len()) + tr.Dropped()
	if st := spansSub.Stats(); st.Published != spanTotal {
		t.Errorf("spans published %d, want every recorded span (%d)", st.Published, spanTotal)
	} else if st.Published != st.Delivered+st.Dropped {
		t.Errorf("spans accounting broken: %+v", st)
	} else if st.Dropped == 0 {
		t.Errorf("spans subscriber with buffer 64 dropped nothing over %d spans", st.Published)
	}

	var drained []telemetry.Event
	for ev := range engineSub.C() {
		drained = append(drained, ev)
	}
	eng, ok := net.EngineStats()
	if !ok {
		t.Fatal("EngineStats: not the event core")
	}
	if st := engineSub.Stats(); st.Dropped != 0 || st.Delivered != uint64(len(drained)) {
		t.Errorf("engine subscriber stats %+v over %d drained", st, len(drained))
	}
	if uint64(len(drained)) != eng.Epochs {
		t.Errorf("engine stream delivered %d epochs, engine committed %d", len(drained), eng.Epochs)
	}
	var sum uint64
	for _, ev := range drained {
		var es emunet.EpochStats
		if err := json.Unmarshal(ev.Data, &es); err != nil {
			t.Fatalf("epoch event payload: %v", err)
		}
		sum += uint64(es.Events)
	}
	if sum != eng.Events {
		t.Errorf("epoch events sum %d != engine total %d", sum, eng.Events)
	}
	if st := idleSub.Stats(); st.Published != 0 {
		t.Errorf("health subscriber saw %d events on a run with no monitor", st.Published)
	}
	return fp, eng
}

func TestThousandNodeTelemetryAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("thousand-node telemetry run; skipped in -short")
	}
	prev := runtime.GOMAXPROCS(1)
	serialFP, serialEng := thousandNodeBusRun(t)
	runtime.GOMAXPROCS(prev)
	parallelFP, parallelEng := thousandNodeBusRun(t)
	if serialEng.Events == 0 {
		t.Fatalf("empty run: %+v", serialEng)
	}
	if serialFP != parallelFP {
		t.Errorf("flight-recorder fingerprint diverged across GOMAXPROCS 1 vs %d: %s vs %s",
			runtime.GOMAXPROCS(0), serialFP, parallelFP)
	}
	if serialEng != parallelEng {
		t.Errorf("EngineStats diverged across GOMAXPROCS:\n serial   %+v\n parallel %+v",
			serialEng, parallelEng)
	}
}
