// The sharded discrete-event core of the emulated medium.
//
// The legacy medium scheduled one vclock timer per in-flight frame and did
// all per-delivery bookkeeping under the network mutex — fine for the
// paper's five nodes, quadratic misery for a thousand. The engine replaces
// that with a classic discrete-event simulator: deliveries live in an
// engine-owned priority queue ordered by (deadline, sequence), and exactly
// one "anchor" timer sits in the virtual clock at the queue's earliest
// deadline. When the anchor fires, every delivery due at that instant — an
// *epoch* — is popped as one batch.
//
// Within an epoch the batch is partitioned by the receiver's spatial shard
// (contiguous address blocks; the topology builders hand out addresses in
// spatial order, so a block is a radio neighbourhood). Shard groups run a
// *prep* phase on parallel workers: the per-receiver work that is node-
// local — detach checks, NIC counters, per-shard stats deltas, span
// materialisation — touching nothing shared except atomic metrics
// counters. A barrier follows, then the *merge* phase walks the batch in
// global (deadline, seq) order on the clock goroutine and commits the
// observable effects: trace spans, capture taps, receiver upcalls and MAC
// feedback callbacks. Everything a protocol can observe — rng draws for
// loss and faults (made inside Send, which merge-phase upcalls execute
// serially), trace order, tap order, upcall order — therefore happens in
// one deterministic total order, byte-identical whether the prep phase ran
// on one worker or sixteen. That is the whole determinism argument:
// parallelism is confined to a phase with no observable ordering, and the
// merge imposes (epoch, seq) as the total order.
//
// Same-instant cascades (a merge-phase upcall sending over a zero-delay
// link) re-arm the anchor with a fresh timer at the same instant, which the
// virtual clock orders after every timer already queued there — exactly
// where the legacy path's per-delivery timers would have landed.
package emunet

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"manetkit/internal/metrics"
	"manetkit/internal/mnet"
	"manetkit/internal/trace"
	"manetkit/internal/vclock"
)

// EngineConfig selects and tunes the medium's delivery engine.
type EngineConfig struct {
	// Legacy selects the original timer-per-delivery path (one vclock
	// timer and one closure per frame, all bookkeeping under the network
	// mutex). It exists for differential testing against the event core;
	// new code should leave it false.
	Legacy bool
	// ShardSize is the number of consecutive addresses per spatial shard
	// (default 256). Smaller shards expose more parallelism and more
	// per-epoch grouping overhead.
	ShardSize int
	// ParallelThreshold is the minimum epoch batch size before the prep
	// phase fans out to workers (default 64); below it the grouping and
	// goroutine cost outweighs the win.
	ParallelThreshold int
	// Workers caps the prep-phase worker count (default GOMAXPROCS at
	// epoch time). The merged output is identical for any worker count.
	Workers int
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.ShardSize <= 0 {
		c.ShardSize = 256
	}
	if c.ParallelThreshold <= 0 {
		c.ParallelThreshold = 64
	}
	return c
}

// EpochStats describes one committed engine epoch — the per-tick shard
// telemetry the streaming bus exports. Every field is a pure function of
// the schedule (batch sizes, shard occupancy, virtual-clock deadlines):
// nothing GOMAXPROCS- or wall-clock-dependent may appear here, because
// epoch events land in the flight recorder, whose fingerprint must be
// byte-identical across parallelism settings.
type EpochStats struct {
	// Now is the virtual instant the epoch committed at (excluded from the
	// JSON encoding; the bus stamps its own epoch-relative offset).
	Now time.Time `json:"-"`
	// Epoch is the 1-based epoch ordinal.
	Epoch uint64 `json:"epoch"`
	// Events is the batch size: frame deliveries plus MAC feedback events
	// that fell due at this instant.
	Events int `json:"events"`
	// Shards is how many receiver shards the batch touched.
	Shards int `json:"shards"`
	// MaxShard is the busiest shard's ID and MaxShardEvents its share of
	// the batch — the imbalance signal.
	MaxShard       uint32 `json:"max_shard"`
	MaxShardEvents int    `json:"max_shard_events"`
	// Parallel reports whether the epoch was parallel-eligible: the batch
	// met ParallelThreshold with more than one shard group. Whether the
	// prep fan-out actually engaged additionally depends on GOMAXPROCS,
	// which deliberately does not appear in telemetry (determinism).
	Parallel bool `json:"parallel"`
	// CommitLag is how far past the earliest deadline the commit ran. On a
	// virtual clock this is 0 by construction; under a real clock it is
	// the scheduling slip of the anchor timer.
	CommitLag time.Duration `json:"commit_lag_ns"`
	// QueueDepth is the number of deliveries still scheduled after the
	// epoch drained.
	QueueDepth int `json:"queue_depth"`
}

// EngineStats are the event core's cumulative counters, aggregated from
// every committed epoch. Deterministic for a given seed (see EpochStats).
type EngineStats struct {
	// Epochs counts committed epochs; ParallelEpochs the parallel-eligible
	// subset (see EpochStats.Parallel).
	Epochs         uint64 `json:"epochs"`
	ParallelEpochs uint64 `json:"parallel_epochs"`
	// Events is the total delivery count across all epochs.
	Events uint64 `json:"events"`
	// MaxEpochEvents and MaxEpochShards are the largest single-epoch batch
	// and widest shard spread seen.
	MaxEpochEvents int `json:"max_epoch_events"`
	MaxEpochShards int `json:"max_epoch_shards"`
}

// delivery is one scheduled event: a frame arriving at a NIC, or a MAC
// feedback verdict falling due (nic == nil). The fields below the cb pair
// are filled by the prep phase and consumed by the merge phase.
type delivery struct {
	when time.Time
	seq  uint64

	nic   *NIC
	frame Frame
	cb    func(delivered bool) // MAC feedback; nil unless SendWithFeedback
	ok    bool                 // verdict passed to cb on a pure feedback event

	recv    func(Frame)
	span    trace.Span
	hasSpan bool
	dropped bool // receiver detached while the frame was in flight
}

// engine is the event core installed on a Network unless EngineConfig.Legacy
// is set. Queue and anchor state are guarded by the owning Network's mutex;
// epoch execution happens on the clock goroutine with a bounded excursion
// into the prep worker pool.
type engine struct {
	net *Network
	cfg EngineConfig

	q        deliveryHeap
	seq      uint64
	anchor   vclock.Timer
	anchorAt time.Time // zero when no anchor is armed

	// shardStats holds the per-shard medium counters. Attribution rule
	// (the aggregation contract): transmission-side counters go to the
	// sender's shard; every per-target event — delivery, loss, corruption,
	// duplication, reorder, missing-link drop — to the receiver's shard. A
	// shard-boundary link therefore contributes each event to exactly one
	// side, and the sum over shards equals the legacy global Stats.
	shardStats map[uint32]*Stats

	// engStats accumulates per-epoch telemetry; guarded by the network
	// mutex like the shard counters.
	engStats EngineStats

	// Per-shard gauge cache, resolved lazily against the registry the
	// network currently carries and refreshed at epoch commit for the
	// shards the epoch touched. Guarded by the network mutex.
	gaugeReg *metrics.Registry
	shardRxG map[uint32]*metrics.Gauge
	shardTxG map[uint32]*metrics.Gauge
	shardsG  *metrics.Gauge

	// scratch reused across epochs (touched only by the clock goroutine).
	batch  []*delivery
	groups []shardGroup
	free   []*delivery
}

// shardGroup is one shard's slice of an epoch batch, in (when, seq) order.
type shardGroup struct {
	shard uint32
	items []*delivery
	stats Stats // prep-phase delta, folded under the network mutex after the barrier
}

func newEngine(n *Network, cfg EngineConfig) *engine {
	return &engine{net: n, cfg: cfg.withDefaults(), shardStats: make(map[uint32]*Stats)}
}

// shardOf maps an address to its spatial shard: contiguous blocks of
// ShardSize addresses. Addrs hands out consecutive addresses and the
// topology builders wire neighbours consecutively, so blocks track radio
// neighbourhoods on the line/grid topologies the scale runs use.
func (e *engine) shardOf(a mnet.Addr) uint32 {
	return a.Uint32() / uint32(e.cfg.ShardSize)
}

// statsForLocked returns the shard bucket for addr, creating it on first
// touch. Caller holds the network mutex.
func (e *engine) statsForLocked(a mnet.Addr) *Stats {
	return e.bucketLocked(e.shardOf(a))
}

func (e *engine) bucketLocked(id uint32) *Stats {
	st := e.shardStats[id]
	if st == nil {
		st = &Stats{}
		e.shardStats[id] = st
	}
	return st
}

// totalsLocked sums the per-shard counters. Caller holds the network mutex.
func (e *engine) totalsLocked() Stats {
	var sum Stats
	for _, st := range e.shardStats {
		sum.TxFrames += st.TxFrames
		sum.RxFrames += st.RxFrames
		sum.DroppedLoss += st.DroppedLoss
		sum.DroppedNoLink += st.DroppedNoLink
		sum.TxBytes += st.TxBytes
		sum.RxBytes += st.RxBytes
		sum.Corrupted += st.Corrupted
		sum.Duplicated += st.Duplicated
		sum.Reordered += st.Reordered
	}
	return sum
}

// snapshotLocked copies the per-shard counters, keyed by shard ID.
func (e *engine) snapshotLocked() map[uint32]Stats {
	out := make(map[uint32]Stats, len(e.shardStats))
	for id, st := range e.shardStats {
		out[id] = *st
	}
	return out
}

// newDeliveryLocked takes a delivery from the free list or allocates one.
func (e *engine) newDeliveryLocked() *delivery {
	if n := len(e.free); n > 0 {
		d := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*d = delivery{}
		return d
	}
	return &delivery{}
}

// scheduleLocked enqueues a delivery at the absolute instant when,
// assigning its merge sequence, and keeps the anchor invariant: whenever
// the queue is non-empty, one vclock timer is armed at its earliest
// deadline. Caller holds the network mutex.
func (e *engine) scheduleLocked(d *delivery, when time.Time) {
	d.when = when
	d.seq = e.seq
	e.seq++
	e.q.push(d)
	if e.anchorAt.IsZero() || when.Before(e.anchorAt) {
		e.armLocked(when)
	}
}

// armLocked (re)arms the anchor at the absolute deadline when. The old
// anchor, if any, is stopped rather than reset so the replacement picks up
// a fresh registration sequence — the virtual clock then orders it among
// equal-deadline protocol timers exactly where a newly scheduled
// per-delivery timer would have landed. Caller holds the network mutex;
// the lock order network→clock is safe because vclock invokes callbacks
// with its own lock released.
func (e *engine) armLocked(when time.Time) {
	if e.anchor != nil {
		e.anchor.Stop()
	}
	e.anchorAt = when
	if v, ok := e.net.clock.(*vclock.Virtual); ok {
		e.anchor = v.AfterFuncAt(when, e.run)
		return
	}
	e.anchor = e.net.clock.AfterFunc(when.Sub(e.net.clock.Now()), e.run)
}

// rearmLocked re-establishes the anchor invariant after an epoch. A
// same-instant follow-on (zero-delay link) gets a fresh timer at the
// current instant, which the clock fires after every timer already queued
// there — matching the legacy path, where such a delivery's timer was also
// registered behind them.
func (e *engine) rearmLocked() {
	if e.q.len() == 0 {
		if e.anchor != nil {
			e.anchor.Stop()
			e.anchor = nil
		}
		e.anchorAt = time.Time{}
		return
	}
	e.armLocked(e.q.min().when)
}

// run is the anchor callback: pop the epoch due now, execute it, re-arm.
func (e *engine) run() {
	n := e.net
	n.mu.Lock()
	now := n.clock.Now()
	e.anchorAt = time.Time{}
	batch := e.batch[:0]
	for e.q.len() > 0 && !e.q.min().when.After(now) {
		batch = append(batch, e.q.pop())
	}
	if len(batch) == 0 {
		e.batch = batch
		e.rearmLocked()
		n.mu.Unlock()
		return
	}
	commitLag := now.Sub(batch[0].when)
	obs := n.obs
	epochObs := n.epochObs
	n.mu.Unlock()

	groups := e.prepPhase(batch, obs)

	// Fold the per-group rx deltas into the shard counters before any
	// upcall can observe Stats.
	n.mu.Lock()
	for i := range groups {
		g := &groups[i]
		if g.stats == (Stats{}) {
			continue
		}
		st := e.bucketLocked(g.shard)
		st.RxFrames += g.stats.RxFrames
		st.RxBytes += g.stats.RxBytes
	}
	n.mu.Unlock()

	// Merge phase: commit observable effects in global (when, seq) order.
	// Receiver upcalls run here, serially; any Send they make re-enters the
	// medium immediately — drawing loss and fault randomness and scheduling
	// follow-on deliveries in exactly the order a sequential run would.
	for _, d := range batch {
		e.commit(d, now, obs)
	}

	es := EpochStats{
		Now:       now,
		Events:    len(batch),
		Shards:    len(groups),
		Parallel:  len(batch) >= e.cfg.ParallelThreshold && len(groups) > 1,
		CommitLag: commitLag,
	}
	for i := range groups {
		if ln := len(groups[i].items); ln > es.MaxShardEvents {
			es.MaxShardEvents = ln
			es.MaxShard = groups[i].shard
		}
	}

	n.mu.Lock()
	for i, d := range batch {
		e.free = append(e.free, d)
		batch[i] = nil
	}
	e.batch = batch[:0]
	e.rearmLocked()
	es.QueueDepth = e.q.len()
	e.engStats.Epochs++
	es.Epoch = e.engStats.Epochs
	if es.Parallel {
		e.engStats.ParallelEpochs++
	}
	e.engStats.Events += uint64(es.Events)
	if es.Events > e.engStats.MaxEpochEvents {
		e.engStats.MaxEpochEvents = es.Events
	}
	if es.Shards > e.engStats.MaxEpochShards {
		e.engStats.MaxEpochShards = es.Shards
	}
	if obs != nil && obs.reg != nil {
		e.refreshShardGaugesLocked(obs.reg, groups)
	}
	n.mu.Unlock()

	if obs != nil {
		obs.engEpochs.Inc()
		if es.Parallel {
			obs.engEpochsParallel.Inc()
		}
		obs.engEpochEvents.Add(uint64(es.Events))
	}
	// The epoch observer runs outside every lock, after the commit phase,
	// on the clock goroutine — so bus events interleave deterministically
	// with the spans the epoch just committed.
	if epochObs != nil {
		epochObs(es)
	}
}

// refreshShardGaugesLocked mirrors the shard counters the epoch touched
// into per-shard metrics gauges (net_shard_rx_frames:<id> and
// net_shard_tx_frames:<id>), making per-shard imbalance visible without a
// debugger. Gauges refresh lazily — a shard's gauge updates at the commit
// of any epoch that delivered into it — which bounds the per-epoch cost
// to the shards actually active. Caller holds the network mutex.
func (e *engine) refreshShardGaugesLocked(reg *metrics.Registry, groups []shardGroup) {
	if e.gaugeReg != reg {
		e.gaugeReg = reg
		e.shardRxG = make(map[uint32]*metrics.Gauge)
		e.shardTxG = make(map[uint32]*metrics.Gauge)
		e.shardsG = reg.Gauge("net_engine_shards")
	}
	for i := range groups {
		sid := groups[i].shard
		st := e.shardStats[sid]
		if st == nil {
			continue
		}
		rg := e.shardRxG[sid]
		if rg == nil {
			rg = reg.Gauge(fmt.Sprintf("net_shard_rx_frames:%d", sid))
			e.shardRxG[sid] = rg
			e.shardTxG[sid] = reg.Gauge(fmt.Sprintf("net_shard_tx_frames:%d", sid))
		}
		rg.Set(int64(st.RxFrames))
		e.shardTxG[sid].Set(int64(st.TxFrames))
	}
	e.shardsG.Set(int64(len(e.shardStats)))
}

// prepPhase runs the node-local half of every delivery, fanning out to
// workers when the epoch is large enough. Group contents stay in (when,
// seq) order; nothing observable depends on worker count or scheduling.
func (e *engine) prepPhase(batch []*delivery, obs *netObs) []shardGroup {
	groups := e.groupByShard(batch)
	workers := e.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	if len(batch) < e.cfg.ParallelThreshold || workers <= 1 {
		for i := range groups {
			g := &groups[i]
			for _, d := range g.items {
				prep(d, &g.stats, obs)
			}
		}
		return groups
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(groups) {
					return
				}
				g := &groups[i]
				for _, d := range g.items {
					prep(d, &g.stats, obs)
				}
			}
		}()
	}
	wg.Wait()
	return groups
}

// groupByShard partitions a batch by receiver shard, preserving (when,
// seq) order inside each group, groups sorted by shard ID. Epochs touch a
// handful of shards, so a linear scan beats a map and allocates nothing
// once the scratch is warm.
func (e *engine) groupByShard(batch []*delivery) []shardGroup {
	groups := e.groups[:0]
	for _, d := range batch {
		var sid uint32
		if d.nic != nil {
			sid = e.shardOf(d.nic.addr)
		}
		gi := -1
		for i := range groups {
			if groups[i].shard == sid {
				gi = i
				break
			}
		}
		if gi < 0 {
			gi = len(groups)
			groups = append(groups, shardGroup{shard: sid})
		}
		groups[gi].items = append(groups[gi].items, d)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].shard < groups[j].shard })
	e.groups = groups
	return groups
}

// prep is the parallel half of one delivery: everything node-local. It
// must not touch the network mutex, the rng, the tracer ring or any other
// cross-shard state — only its own NIC, its group's stats delta, the
// atomic metrics counters and its own delivery slot. The epochpurity
// analyzer proves that statically for everything reachable from here.
//
//mk:parallelprep
func prep(d *delivery, st *Stats, obs *netObs) {
	if d.nic == nil {
		return // pure feedback event
	}
	c := d.nic
	c.mu.Lock()
	if c.detached {
		c.mu.Unlock()
		d.dropped = true
		return
	}
	d.recv = c.recv
	c.rx++
	c.mu.Unlock()

	st.RxFrames++
	st.RxBytes += uint64(len(d.frame.Payload))
	if obs != nil {
		obs.rxFrames.Inc()
		if d.frame.Corrupted {
			obs.corrupted.Inc()
		}
		if obs.tracer != nil {
			d.span = trace.Span{
				Node: c.addr.String(), Kind: trace.KindFrameRx,
				From: d.frame.Src.String(), Corr: d.frame.Corr, Bytes: len(d.frame.Payload),
			}
			d.hasSpan = true
		}
	}
}

// commit is the serial half of one delivery, in global (when, seq) order:
// record the span, invoke the capture tap, hand the frame to the receiver
// and deliver MAC feedback. A frame whose receiver detached in flight is
// dropped silently, but its MAC feedback still reports success — the ACK
// left the receiver before it crashed, matching the legacy path.
func (e *engine) commit(d *delivery, now time.Time, obs *netObs) {
	if d.nic == nil {
		if d.cb != nil {
			d.cb(d.ok)
		}
		return
	}
	if !d.dropped {
		if d.hasSpan && obs != nil && obs.tracer != nil {
			obs.tracer.Record(now, d.span)
		}
		n := e.net
		n.mu.Lock()
		tap := n.tap
		n.mu.Unlock()
		if tap != nil {
			tap(d.frame, d.nic.addr)
		}
		if d.recv != nil {
			d.recv(d.frame)
		}
	}
	if d.cb != nil {
		d.cb(true)
	}
}

// deliveryHeap is a binary min-heap of deliveries ordered by (when, seq),
// hand-rolled rather than container/heap to keep pushes and pops free of
// interface conversions on the hot path.
type deliveryHeap struct {
	items []*delivery
}

func (h *deliveryHeap) len() int       { return len(h.items) }
func (h *deliveryHeap) min() *delivery { return h.items[0] }

func (h *deliveryHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if !a.when.Equal(b.when) {
		return a.when.Before(b.when)
	}
	return a.seq < b.seq
}

func (h *deliveryHeap) push(d *delivery) {
	h.items = append(h.items, d)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *deliveryHeap) pop() *delivery {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = nil
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.items) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}
