package emunet

import (
	"fmt"
	"testing"
	"time"

	"manetkit/internal/metrics"
	"manetkit/internal/mnet"
	"manetkit/internal/vclock"
)

// TestEpochObserverAndShardGauges drives a 12-node clique through one
// broadcast storm and checks the per-epoch telemetry against the engine's
// own cumulative counters, the metrics registry and the shard buckets.
func TestEpochObserverAndShardGauges(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := vclock.NewVirtual(epoch)
	net := NewWithConfig(clk, 7, EngineConfig{ShardSize: 4, ParallelThreshold: 2})
	reg := metrics.NewRegistry()
	net.SetMetrics(reg)

	var epochs []EpochStats
	net.SetEpochObserver(func(es EpochStats) { epochs = append(epochs, es) })

	nodes := Addrs(12)
	if err := BuildClique(net, nodes, DefaultQuality()); err != nil {
		t.Fatalf("BuildClique: %v", err)
	}
	// Every node broadcasts at the same instant: all deliveries share one
	// arrival time, so they land in one epoch spanning every shard.
	for _, a := range nodes {
		a := a
		clk.AfterFunc(time.Millisecond, func() {
			nic, _ := net.NIC(a)
			_ = nic.Send(mnet.Broadcast, []byte("hello"))
		})
	}
	clk.Advance(50 * time.Millisecond)

	if len(epochs) == 0 {
		t.Fatal("no epochs observed")
	}
	var sum, parallel uint64
	var maxEvents, maxShards int
	for i, es := range epochs {
		if es.Epoch != uint64(i+1) {
			t.Fatalf("epoch %d has ordinal %d, want %d", i, es.Epoch, i+1)
		}
		if es.CommitLag != 0 {
			t.Errorf("epoch %d commit lag %s: must be 0 on the virtual clock", i, es.CommitLag)
		}
		if wantPar := es.Events >= 2 && es.Shards > 1; es.Parallel != wantPar {
			t.Errorf("epoch %d: Parallel=%v but events=%d shards=%d (eligibility rule broken)",
				i, es.Parallel, es.Events, es.Shards)
		}
		if es.MaxShardEvents > es.Events || es.MaxShardEvents <= 0 {
			t.Errorf("epoch %d: max shard events %d of %d", i, es.MaxShardEvents, es.Events)
		}
		sum += uint64(es.Events)
		if es.Parallel {
			parallel++
		}
		if es.Events > maxEvents {
			maxEvents = es.Events
		}
		if es.Shards > maxShards {
			maxShards = es.Shards
		}
	}
	if epochs[len(epochs)-1].QueueDepth != 0 {
		t.Errorf("final epoch left queue depth %d", epochs[len(epochs)-1].QueueDepth)
	}
	// The storm epoch: 12 broadcasts × 11 receivers at one instant.
	if maxEvents != 132 || maxShards < 2 {
		t.Errorf("storm epoch: %d events over %d shards, want 132 over >=2", maxEvents, maxShards)
	}

	eng, ok := net.EngineStats()
	if !ok {
		t.Fatal("EngineStats: not the event core")
	}
	want := EngineStats{
		Epochs: uint64(len(epochs)), ParallelEpochs: parallel, Events: sum,
		MaxEpochEvents: maxEvents, MaxEpochShards: maxShards,
	}
	if eng != want {
		t.Fatalf("EngineStats %+v, want %+v (from observed epochs)", eng, want)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["net_engine_epochs"]; got != uint64(len(epochs)) {
		t.Errorf("net_engine_epochs = %d, want %d", got, len(epochs))
	}
	if got := snap.Counters["net_engine_epoch_events"]; got != sum {
		t.Errorf("net_engine_epoch_events = %d, want %d", got, sum)
	}
	if got := snap.Counters["net_engine_epochs_parallel"]; got != parallel {
		t.Errorf("net_engine_epochs_parallel = %d, want %d", got, parallel)
	}

	shards := net.ShardStats()
	if got := snap.Gauges["net_engine_shards"]; got != int64(len(shards)) {
		t.Errorf("net_engine_shards = %d, want %d", got, len(shards))
	}
	var totalRx uint64
	for id, st := range shards {
		totalRx += st.RxFrames
		if g := snap.Gauges[fmt.Sprintf("net_shard_rx_frames:%d", id)]; g != int64(st.RxFrames) {
			t.Errorf("net_shard_rx_frames:%d = %d, want %d", id, g, st.RxFrames)
		}
		if g := snap.Gauges[fmt.Sprintf("net_shard_tx_frames:%d", id)]; g != int64(st.TxFrames) {
			t.Errorf("net_shard_tx_frames:%d = %d, want %d", id, g, st.TxFrames)
		}
	}
	if totalRx != net.Stats().RxFrames {
		t.Errorf("shard rx sum %d != Stats.RxFrames %d", totalRx, net.Stats().RxFrames)
	}
}

// TestEpochObserverLegacyEngine: the legacy matrix engine has no epochs;
// the observer must simply never fire and EngineStats must say so.
func TestEpochObserverLegacyEngine(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := vclock.NewVirtual(epoch)
	net := NewWithConfig(clk, 7, EngineConfig{Legacy: true})
	fired := false
	net.SetEpochObserver(func(EpochStats) { fired = true })
	nodes := Addrs(2)
	if err := BuildLine(net, nodes, DefaultQuality()); err != nil {
		t.Fatal(err)
	}
	nic, _ := net.NIC(nodes[0])
	_ = nic.Send(nodes[1], []byte("x"))
	clk.Advance(10 * time.Millisecond)
	if fired {
		t.Fatal("epoch observer fired on the legacy engine")
	}
	if _, ok := net.EngineStats(); ok {
		t.Fatal("EngineStats ok on the legacy engine")
	}
	if net.Stats().RxFrames != 1 {
		t.Fatalf("legacy delivery broken: %+v", net.Stats())
	}
}
