package emunet

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/vclock"
)

// TestEngineRaceStress hammers the sharded event core from the outside
// while its epoch workers run: one goroutine drives the virtual clock (and
// with it the parallel prep phase), while others churn the topology, fire
// scripted traffic, apply fault schedules and read every observer surface.
// Run under -race in CI it proves the shard workers never share mutable
// state with the admin or observer paths. Determinism is NOT asserted here
// — concurrent admin ops interleave with the clock arbitrarily — only
// memory safety and liveness; the replay tests cover determinism.
func TestEngineRaceStress(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := vclock.NewVirtual(epoch)
	// Tiny shards + threshold 1 force the parallel path on every epoch.
	net := NewWithConfig(clk, 3, EngineConfig{ShardSize: 2, ParallelThreshold: 1})
	const n = 24
	addrs := Addrs(n)
	if err := BuildGrid(net, addrs, 6, DefaultQuality()); err != nil {
		t.Fatalf("BuildGrid: %v", err)
	}
	for _, a := range addrs {
		nic, _ := net.NIC(a)
		nic.SetReceiver(func(f Frame) {})
	}
	// A rolling fault schedule keeps injector callbacks (corrupt, duplicate,
	// reorder, partition heal/cut) firing inside epochs for the whole run.
	NewFaultPlan(99).
		Partition(5*time.Millisecond, 80*time.Millisecond, addrs[:n/2], addrs[n/2:]).
		CorruptFrames(0, 200*time.Millisecond, 0.2).
		DuplicateFrames(0, 200*time.Millisecond, 0.2).
		ReorderFrames(0, 200*time.Millisecond, 0.2, 2*time.Millisecond).
		Apply(net)

	// Scripted traffic: every node broadcasts and unicasts on a dense timer
	// grid so epochs stay full while the churn goroutines run.
	for i, a := range addrs {
		a := a
		peer := addrs[(i+5)%n]
		for k := 0; k < 40; k++ {
			k := k
			clk.AfterFunc(time.Duration(k)*5*time.Millisecond, func() {
				nic, ok := net.NIC(a)
				if !ok {
					return
				}
				_ = nic.Send(mnet.Broadcast, []byte(fmt.Sprintf("b %d", k)))
				_ = nic.SendWithFeedback(peer, []byte("f"), func(bool) {})
			})
		}
	}

	var wg sync.WaitGroup
	done := make(chan struct{})

	// Clock driver: the only goroutine advancing virtual time; each Advance
	// runs epochs whose prep phase fans out across shard workers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 50; i++ {
			clk.Advance(4 * time.Millisecond)
		}
	}()

	// Topology churn: cut, relink, detach and reattach while frames are in
	// flight between those same nodes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(17))
		for {
			select {
			case <-done:
				return
			default:
			}
			a, b := addrs[rng.Intn(n)], addrs[rng.Intn(n)]
			switch rng.Intn(4) {
			case 0:
				_ = net.SetLink(a, b, DefaultQuality())
			case 1:
				net.CutLink(a, b)
			case 2:
				q := DefaultQuality()
				q.Loss = 0.3
				_ = net.SetDirectedLink(a, b, q)
			case 3:
				if nic, ok := net.NIC(a); ok {
					_ = net.Detach(a)
					_ = net.Reattach(nic)
				}
			}
		}
	}()

	// Observer: every read-side surface, concurrently with epochs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(23))
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = net.Stats()
			_ = net.ShardStats()
			_ = net.Neighbors(addrs[rng.Intn(n)])
			_ = net.Nodes()
			_, _ = net.LinkQuality(addrs[rng.Intn(n)], addrs[rng.Intn(n)])
		}
	}()

	// Tap churn: install and remove packet taps mid-run — the commit phase
	// snapshots them per delivery.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if i%2 == 0 {
				net.SetTap(func(f Frame, r mnet.Addr) {})
				net.SetTxTap(func(f Frame) {})
			} else {
				net.SetTap(nil)
				net.SetTxTap(nil)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	if s := net.Stats(); s.TxFrames == 0 {
		t.Fatal("stress run moved no traffic")
	}
}
