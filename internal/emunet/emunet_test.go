package emunet

import (
	"errors"
	"testing"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/vclock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newNet(t *testing.T) (*Network, *vclock.Virtual) {
	t.Helper()
	clk := vclock.NewVirtual(epoch)
	return New(clk, 1), clk
}

func attach(t *testing.T, n *Network, a mnet.Addr) *NIC {
	t.Helper()
	nic, err := n.Attach(a)
	if err != nil {
		t.Fatalf("Attach(%v): %v", a, err)
	}
	return nic
}

func TestAttachDetach(t *testing.T) {
	n, _ := newNet(t)
	a := mnet.MustParseAddr("10.0.0.1")
	nic := attach(t, n, a)
	if nic.Addr() != a || nic.Device() != "emu0" {
		t.Fatalf("NIC = %v/%s", nic.Addr(), nic.Device())
	}
	if _, err := n.Attach(a); !errors.Is(err, ErrAttached) {
		t.Fatalf("double attach = %v", err)
	}
	if _, err := n.Attach(mnet.Broadcast); err == nil {
		t.Fatal("attached broadcast address")
	}
	if _, err := n.Attach(mnet.Addr{}); err == nil {
		t.Fatal("attached unspecified address")
	}
	if err := n.Detach(a); err != nil {
		t.Fatal(err)
	}
	if err := n.Detach(a); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double detach = %v", err)
	}
	if err := nic.Send(mnet.Broadcast, []byte("x")); !errors.Is(err, ErrDetached) {
		t.Fatalf("send on detached NIC = %v", err)
	}
}

func TestUnicastDelivery(t *testing.T) {
	n, clk := newNet(t)
	addrs := Addrs(2)
	na := attach(t, n, addrs[0])
	nb := attach(t, n, addrs[1])
	q := Quality{Delay: 2 * time.Millisecond, SignalDBm: -60}
	if err := n.SetLink(addrs[0], addrs[1], q); err != nil {
		t.Fatal(err)
	}
	var got []Frame
	nb.SetReceiver(func(f Frame) { got = append(got, f) })
	if err := na.Send(addrs[1], []byte("hello")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Millisecond)
	if len(got) != 0 {
		t.Fatal("frame arrived before link delay")
	}
	clk.Advance(time.Millisecond)
	if len(got) != 1 {
		t.Fatalf("got %d frames", len(got))
	}
	f := got[0]
	if f.Src != addrs[0] || f.Dst != addrs[1] || string(f.Payload) != "hello" || f.RSSI != -60 {
		t.Fatalf("frame = %+v", f)
	}
}

func TestBroadcastReachesOnlyLinkedNodes(t *testing.T) {
	n, clk := newNet(t)
	addrs := Addrs(4)
	nics := make([]*NIC, 4)
	for i, a := range addrs {
		nics[i] = attach(t, n, a)
	}
	q := DefaultQuality()
	n.SetLink(addrs[0], addrs[1], q)
	n.SetLink(addrs[0], addrs[2], q)
	// addrs[3] is out of range.
	counts := make([]int, 4)
	for i := range nics {
		i := i
		nics[i].SetReceiver(func(Frame) { counts[i]++ })
	}
	nics[0].Send(mnet.Broadcast, []byte("beacon"))
	clk.RunUntilIdle(-1)
	if counts[0] != 0 {
		t.Fatal("sender received own broadcast")
	}
	if counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("linked nodes got %v", counts)
	}
	if counts[3] != 0 {
		t.Fatal("out-of-range node received broadcast")
	}
}

func TestUnicastWithoutLinkIsLost(t *testing.T) {
	n, clk := newNet(t)
	addrs := Addrs(2)
	na := attach(t, n, addrs[0])
	nb := attach(t, n, addrs[1])
	received := false
	nb.SetReceiver(func(Frame) { received = true })
	na.Send(addrs[1], []byte("x"))
	clk.RunUntilIdle(-1)
	if received {
		t.Fatal("frame crossed a non-existent link")
	}
	if st := n.Stats(); st.DroppedNoLink != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestAsymmetricLink(t *testing.T) {
	n, clk := newNet(t)
	addrs := Addrs(2)
	na := attach(t, n, addrs[0])
	nb := attach(t, n, addrs[1])
	if err := n.SetDirectedLink(addrs[0], addrs[1], DefaultQuality()); err != nil {
		t.Fatal(err)
	}
	var aGot, bGot int
	na.SetReceiver(func(Frame) { aGot++ })
	nb.SetReceiver(func(Frame) { bGot++ })
	na.Send(addrs[1], []byte("fwd"))
	nb.Send(addrs[0], []byte("rev"))
	clk.RunUntilIdle(-1)
	if bGot != 1 || aGot != 0 {
		t.Fatalf("aGot=%d bGot=%d; directed link not enforced", aGot, bGot)
	}
	if !n.Linked(addrs[0], addrs[1]) || n.Linked(addrs[1], addrs[0]) {
		t.Fatal("Linked does not reflect direction")
	}
}

func TestSelfLinkRejected(t *testing.T) {
	n, _ := newNet(t)
	a := Addrs(1)[0]
	attach(t, n, a)
	if err := n.SetDirectedLink(a, a, DefaultQuality()); !errors.Is(err, ErrSelfLink) {
		t.Fatalf("self link = %v", err)
	}
}

func TestLossIsAppliedAndSeeded(t *testing.T) {
	run := func(seed int64) uint64 {
		clk := vclock.NewVirtual(epoch)
		n := New(clk, seed)
		addrs := Addrs(2)
		na, _ := n.Attach(addrs[0])
		n.Attach(addrs[1])
		n.SetLink(addrs[0], addrs[1], Quality{Delay: time.Millisecond, Loss: 0.5})
		for i := 0; i < 1000; i++ {
			na.Send(addrs[1], []byte("x"))
		}
		clk.RunUntilIdle(-1)
		return n.Stats().DroppedLoss
	}
	d1, d2 := run(7), run(7)
	if d1 != d2 {
		t.Fatalf("same seed, different loss: %d vs %d", d1, d2)
	}
	if d1 < 350 || d1 > 650 {
		t.Fatalf("loss count %d wildly off 50%%", d1)
	}
	if d3 := run(8); d3 == d1 {
		t.Fatalf("different seeds, same loss sequence (%d)", d3)
	}
}

func TestCutLinkStopsTraffic(t *testing.T) {
	n, clk := newNet(t)
	addrs := Addrs(2)
	na := attach(t, n, addrs[0])
	nb := attach(t, n, addrs[1])
	n.SetLink(addrs[0], addrs[1], DefaultQuality())
	var got int
	nb.SetReceiver(func(Frame) { got++ })
	na.Send(addrs[1], []byte("1"))
	clk.RunUntilIdle(-1)
	n.CutLink(addrs[0], addrs[1])
	na.Send(addrs[1], []byte("2"))
	clk.RunUntilIdle(-1)
	if got != 1 {
		t.Fatalf("got %d frames, want 1", got)
	}
}

func TestSendWithFeedback(t *testing.T) {
	n, clk := newNet(t)
	addrs := Addrs(2)
	na := attach(t, n, addrs[0])
	nb := attach(t, n, addrs[1])
	n.SetLink(addrs[0], addrs[1], DefaultQuality())
	var fb []bool
	var rx int
	nb.SetReceiver(func(Frame) { rx++ })
	na.SendWithFeedback(addrs[1], []byte("ok"), func(d bool) { fb = append(fb, d) })
	clk.RunUntilIdle(-1)
	n.CutLink(addrs[0], addrs[1])
	na.SendWithFeedback(addrs[1], []byte("fail"), func(d bool) { fb = append(fb, d) })
	clk.RunUntilIdle(-1)
	if rx != 1 {
		t.Fatalf("rx = %d", rx)
	}
	if len(fb) != 2 || fb[0] != true || fb[1] != false {
		t.Fatalf("feedback = %v", fb)
	}
}

func TestPayloadIsCopied(t *testing.T) {
	n, clk := newNet(t)
	addrs := Addrs(2)
	na := attach(t, n, addrs[0])
	nb := attach(t, n, addrs[1])
	n.SetLink(addrs[0], addrs[1], DefaultQuality())
	var got []byte
	nb.SetReceiver(func(f Frame) { got = f.Payload })
	buf := []byte("original")
	na.Send(addrs[1], buf)
	buf[0] = 'X' // sender mutates its buffer after Send
	clk.RunUntilIdle(-1)
	if string(got) != "original" {
		t.Fatalf("payload aliased sender buffer: %q", got)
	}
}

func TestTapSeesDeliveries(t *testing.T) {
	n, clk := newNet(t)
	addrs := Addrs(3)
	na := attach(t, n, addrs[0])
	attach(t, n, addrs[1])
	attach(t, n, addrs[2])
	n.SetLink(addrs[0], addrs[1], DefaultQuality())
	n.SetLink(addrs[0], addrs[2], DefaultQuality())
	var seen []mnet.Addr
	n.SetTap(func(f Frame, rcv mnet.Addr) { seen = append(seen, rcv) })
	na.Send(mnet.Broadcast, []byte("x"))
	clk.RunUntilIdle(-1)
	if len(seen) != 2 {
		t.Fatalf("tap saw %v", seen)
	}
	n.SetTap(nil)
	na.Send(mnet.Broadcast, []byte("x"))
	clk.RunUntilIdle(-1)
	if len(seen) != 2 {
		t.Fatal("tap fired after removal")
	}
}

func TestNeighborsSorted(t *testing.T) {
	n, _ := newNet(t)
	addrs := Addrs(4)
	for _, a := range addrs {
		attach(t, n, a)
	}
	n.SetLink(addrs[2], addrs[3], DefaultQuality())
	n.SetLink(addrs[2], addrs[0], DefaultQuality())
	n.SetLink(addrs[2], addrs[1], DefaultQuality())
	got := n.Neighbors(addrs[2])
	if len(got) != 3 || got[0] != addrs[0] || got[1] != addrs[1] || got[2] != addrs[3] {
		t.Fatalf("Neighbors = %v", got)
	}
}

func TestBuildLine(t *testing.T) {
	n, _ := newNet(t)
	addrs := Addrs(5)
	if err := BuildLine(n, addrs, DefaultQuality()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < 5; i++ {
		if !n.Linked(addrs[i], addrs[i+1]) || !n.Linked(addrs[i+1], addrs[i]) {
			t.Fatalf("chain broken at %d", i)
		}
	}
	if n.Linked(addrs[0], addrs[2]) {
		t.Fatal("non-adjacent nodes linked in line")
	}
	if len(n.Nodes()) != 5 {
		t.Fatalf("Nodes = %v", n.Nodes())
	}
}

func TestBuildGrid(t *testing.T) {
	n, _ := newNet(t)
	addrs := Addrs(6) // 2 rows x 3 cols
	if err := BuildGrid(n, addrs, 3, DefaultQuality()); err != nil {
		t.Fatal(err)
	}
	// Node 0 links: right (1) and down (3).
	if !n.Linked(addrs[0], addrs[1]) || !n.Linked(addrs[0], addrs[3]) {
		t.Fatal("grid adjacency missing")
	}
	if n.Linked(addrs[0], addrs[4]) || n.Linked(addrs[2], addrs[3]) {
		t.Fatal("grid has illegal diagonal/wrap link")
	}
	if err := BuildGrid(n, addrs, 0, DefaultQuality()); err == nil {
		t.Fatal("zero-width grid accepted")
	}
}

func TestBuildClique(t *testing.T) {
	n, _ := newNet(t)
	addrs := Addrs(4)
	if err := BuildClique(n, addrs, DefaultQuality()); err != nil {
		t.Fatal(err)
	}
	for i := range addrs {
		if got := len(n.Neighbors(addrs[i])); got != 3 {
			t.Fatalf("clique node %d has %d neighbours", i, got)
		}
	}
}

func TestBuildRandomConnectedAndSeeded(t *testing.T) {
	count := func(seed int64) int {
		clk := vclock.NewVirtual(epoch)
		n := New(clk, 1)
		addrs := Addrs(12)
		if err := BuildRandom(n, addrs, 0.3, seed, DefaultQuality()); err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, a := range addrs {
			total += len(n.Neighbors(a))
		}
		// Chain guarantees connectivity.
		for i := 0; i+1 < len(addrs); i++ {
			if !n.Linked(addrs[i], addrs[i+1]) {
				t.Fatal("random graph missing connectivity chain")
			}
		}
		return total
	}
	if count(5) != count(5) {
		t.Fatal("same seed produced different graphs")
	}
	if err := BuildRandom(New(vclock.NewVirtual(epoch), 1), Addrs(3), 1.5, 1, DefaultQuality()); err == nil {
		t.Fatal("invalid density accepted")
	}
}

func TestScenarioPlayback(t *testing.T) {
	n, clk := newNet(t)
	addrs := Addrs(3)
	BuildLine(n, addrs, DefaultQuality())
	s := WalkAway(addrs[2], []mnet.Addr{addrs[1], addrs[0]}, 10*time.Millisecond, 5*time.Millisecond)
	s.Play(n)
	if !n.Linked(addrs[1], addrs[2]) {
		t.Fatal("link cut before scenario time")
	}
	clk.Advance(10 * time.Millisecond)
	if n.Linked(addrs[1], addrs[2]) {
		t.Fatal("first WalkAway step did not cut link")
	}
	clk.Advance(5 * time.Millisecond)
	if n.Linked(addrs[0], addrs[2]) {
		t.Fatal("second WalkAway step did not cut link")
	}
}

func TestDetachedNodeDropsInFlightFrames(t *testing.T) {
	n, clk := newNet(t)
	addrs := Addrs(2)
	na := attach(t, n, addrs[0])
	nb := attach(t, n, addrs[1])
	n.SetLink(addrs[0], addrs[1], Quality{Delay: 5 * time.Millisecond})
	var got int
	nb.SetReceiver(func(Frame) { got++ })
	na.Send(addrs[1], []byte("x"))
	n.Detach(addrs[1]) // detach while frame is in flight
	clk.RunUntilIdle(-1)
	if got != 0 {
		t.Fatal("detached node received in-flight frame")
	}
}

func TestStatsAccounting(t *testing.T) {
	n, clk := newNet(t)
	addrs := Addrs(3)
	na := attach(t, n, addrs[0])
	attach(t, n, addrs[1])
	attach(t, n, addrs[2])
	n.SetLink(addrs[0], addrs[1], DefaultQuality())
	n.SetLink(addrs[0], addrs[2], DefaultQuality())
	na.Send(mnet.Broadcast, []byte("abcd"))
	clk.RunUntilIdle(-1)
	st := n.Stats()
	if st.TxFrames != 1 || st.RxFrames != 2 || st.TxBytes != 4 || st.RxBytes != 8 {
		t.Fatalf("Stats = %+v", st)
	}
	tx, rx := na.Counters()
	if tx != 1 || rx != 0 {
		t.Fatalf("NIC counters = %d/%d", tx, rx)
	}
	n.ResetStats()
	if st := n.Stats(); st.TxFrames != 0 {
		t.Fatalf("ResetStats left %+v", st)
	}
}
