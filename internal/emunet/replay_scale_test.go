package emunet

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/trace"
	"manetkit/internal/vclock"
)

// The headline determinism claim of the sharded event core: a thousand-node
// emulation replays byte-identically whatever parallelism the host offers.
// Worker goroutines only do order-insensitive prep; everything observable
// commits in global (virtual time, schedule seq) order — so the full span
// trace, not just aggregate counters, must fingerprint identically with the
// scheduler pinned to one CPU and with all of them.

// thousandNodeTrace drives a 1000-node grid: every node beacons, a strided
// unicast mesh forces shard-boundary traffic, receivers echo the first ping
// (send-from-receive re-entrancy inside epochs), and a fault plan partitions
// half the grid with corruption and duplication live. Returns the trace
// fingerprint, the span count and the final Stats.
func thousandNodeTrace(t *testing.T, cfg EngineConfig) (string, int, Stats) {
	t.Helper()
	const n, cols = 1000, 32
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := vclock.NewVirtual(epoch)
	net := NewWithConfig(clk, 1701, cfg)
	tr := trace.New(epoch, 0)
	net.SetTracer(tr)
	nodes := Addrs(n)
	q := DefaultQuality()
	q.Loss = 0.05
	if err := BuildGrid(net, nodes, cols, q); err != nil {
		t.Fatalf("BuildGrid: %v", err)
	}
	for i, a := range nodes {
		a := a
		echoed := false
		nic, _ := net.NIC(a)
		back := nodes[(i+n-1)%n]
		nic.SetReceiver(func(f Frame) {
			if f.Dst == a && !echoed && len(f.Payload) > 0 && f.Payload[0] == 'p' {
				echoed = true
				_ = nic.Send(back, []byte("echo"))
			}
		})
	}
	NewFaultPlan(93).
		Partition(80*time.Millisecond, 200*time.Millisecond, nodes[:n/2], nodes[n/2:]).
		CorruptFrames(0, 300*time.Millisecond, 0.1).
		DuplicateFrames(0, 300*time.Millisecond, 0.1).
		Apply(net)
	for i, a := range nodes {
		a := a
		peer := nodes[(i+cols+1)%n]
		for k := 0; k < 3; k++ {
			k := k
			clk.AfterFunc(time.Duration(10+k*90)*time.Millisecond, func() {
				nic, ok := net.NIC(a)
				if !ok {
					return
				}
				_ = nic.Send(mnet.Broadcast, []byte(fmt.Sprintf("b%d", k)))
				_ = nic.Send(peer, []byte("ping"))
			})
		}
	}
	clk.Advance(400 * time.Millisecond)
	return tr.Fingerprint(), len(tr.Spans()), net.Stats()
}

// TestThousandNodeReplayAcrossGOMAXPROCS is the satellite gate: GOMAXPROCS=1
// versus all CPUs, same seed ⇒ byte-identical trace fingerprint and Stats at
// 1000 nodes, for the default engine and an aggressively sharded variant.
func TestThousandNodeReplayAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("thousand-node replay; skipped in -short")
	}
	for name, cfg := range map[string]EngineConfig{
		"default": {},
		"shard64": {ShardSize: 64, ParallelThreshold: 1},
	} {
		prev := runtime.GOMAXPROCS(1)
		//mk:allow maporder test-table range: each case fingerprints its own run, cross-case order is immaterial
		serialFP, serialSpans, serialStats := thousandNodeTrace(t, cfg)
		runtime.GOMAXPROCS(prev)
		//mk:allow maporder test-table range: each case fingerprints its own run, cross-case order is immaterial
		parallelFP, parallelSpans, parallelStats := thousandNodeTrace(t, cfg)
		if serialSpans == 0 || serialStats.RxFrames == 0 {
			t.Fatalf("%s: trace is empty (%d spans, stats %+v)", name, serialSpans, serialStats)
		}
		if parallelFP != serialFP {
			t.Errorf("%s: trace fingerprint diverged across GOMAXPROCS 1 vs %d: %s (%d spans) vs %s (%d spans)",
				name, runtime.GOMAXPROCS(0), serialFP, serialSpans, parallelFP, parallelSpans)
		}
		if parallelStats != serialStats {
			t.Errorf("%s: Stats diverged across GOMAXPROCS:\n serial   %+v\n parallel %+v",
				name, serialStats, parallelStats)
		}
	}
}
