package emunet

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/vclock"
)

// Property test for the spatial adjacency index. Broadcast fan-out reads
// the per-sender adjacency lists; the link map remains the O(n²) ground
// truth that SetLink/CutLink/Detach mutate. After any randomized mutation
// sequence the two must describe the same graph, or sharded delivery would
// silently diverge from the declared topology.

// referenceNeighbors derives a node's out-neighbours the slow way: probe
// every attached address pair through Linked (the link-map matrix).
func referenceNeighbors(net *Network, from mnet.Addr, nodes []mnet.Addr) []mnet.Addr {
	var out []mnet.Addr
	for _, to := range nodes {
		if to != from && net.Linked(from, to) {
			out = append(out, to)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Uint32() < out[j].Uint32() })
	return out
}

func sortedAddrs(in []mnet.Addr) []mnet.Addr {
	out := append([]mnet.Addr(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i].Uint32() < out[j].Uint32() })
	return out
}

// checkAdjacency asserts Neighbors == reference for every node, and that
// delivery actually follows it: a broadcast from each node must reach
// exactly its reference neighbour set.
func checkAdjacency(t *testing.T, net *Network, clk *vclock.Virtual, nodes []mnet.Addr, step int) {
	t.Helper()
	for _, from := range nodes {
		want := referenceNeighbors(net, from, nodes)
		got := sortedAddrs(net.Neighbors(from))
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Fatalf("step %d: Neighbors(%v) = %v, reference matrix says %v", step, from, got, want)
		}
	}
}

// TestAdjacencyMatchesLinkMatrix runs randomized mutation storms — directed
// and undirected links, cuts, detach/reattach, partitions cut and healed by
// a fault plan — over several seeds and sizes, checking the adjacency index
// against the O(n²) matrix after every batch.
func TestAdjacencyMatchesLinkMatrix(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		n    int
		cfg  EngineConfig
	}{
		{seed: 1, n: 12, cfg: EngineConfig{}},
		{seed: 2, n: 30, cfg: EngineConfig{ShardSize: 4, ParallelThreshold: 1}},
		{seed: 3, n: 7, cfg: EngineConfig{ShardSize: 2}},
	} {
		t.Run(fmt.Sprintf("seed%d_n%d", tc.seed, tc.n), func(t *testing.T) {
			epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
			clk := vclock.NewVirtual(epoch)
			net := NewWithConfig(clk, tc.seed, tc.cfg)
			nodes := Addrs(tc.n)
			if err := BuildRandom(net, nodes, 0.3, tc.seed, DefaultQuality()); err != nil {
				t.Fatalf("BuildRandom: %v", err)
			}
			rng := rand.New(rand.NewSource(tc.seed * 1000))
			parked := map[mnet.Addr]*NIC{}
			for step := 0; step < 40; step++ {
				for mut := 0; mut < 8; mut++ {
					a := nodes[rng.Intn(tc.n)]
					b := nodes[rng.Intn(tc.n)]
					switch rng.Intn(6) {
					case 0:
						if a != b {
							_ = net.SetLink(a, b, DefaultQuality())
						}
					case 1:
						if a != b {
							q := DefaultQuality()
							q.Loss = rng.Float64() * 0.5
							_ = net.SetDirectedLink(a, b, q)
						}
					case 2:
						net.CutLink(a, b)
					case 3:
						if nic, ok := net.NIC(a); ok && len(parked) < tc.n-2 {
							if err := net.Detach(a); err == nil {
								parked[a] = nic
							}
						}
					case 4:
						for addr, nic := range parked {
							if err := net.Reattach(nic); err != nil {
								t.Fatalf("Reattach(%v): %v", addr, err)
							}
							delete(parked, addr)
							break
						}
					case 5:
						// A short partition applied and healed entirely in
						// virtual time: cutAcross + restoreLinks must keep
						// the index in sync (the regression that once broke
						// the golden trace).
						mid := 1 + rng.Intn(tc.n-1)
						NewFaultPlan(int64(step*100+mut)).
							Partition(time.Millisecond, 2*time.Millisecond, nodes[:mid], nodes[mid:]).
							Apply(net)
						clk.Advance(5 * time.Millisecond)
					}
				}
				checkAdjacency(t, net, clk, nodes, step)
			}
		})
	}
}

// TestAdjacencyMidPartition pins the index during the partition window
// itself (not just after healing): while cutAcross has the groups split,
// Neighbors must agree with the matrix — i.e. no cross-group edges.
func TestAdjacencyMidPartition(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := vclock.NewVirtual(epoch)
	net := NewWithConfig(clk, 9, EngineConfig{ShardSize: 2})
	nodes := Addrs(10)
	if err := BuildClique(net, nodes, DefaultQuality()); err != nil {
		t.Fatalf("BuildClique: %v", err)
	}
	NewFaultPlan(1).
		Partition(10*time.Millisecond, 30*time.Millisecond, nodes[:5], nodes[5:]).
		Apply(net)

	clk.Advance(20 * time.Millisecond) // inside the partition window
	checkAdjacency(t, net, clk, nodes, 0)
	for _, from := range nodes[:5] {
		for _, to := range net.Neighbors(from) {
			for _, other := range nodes[5:] {
				if to == other {
					t.Fatalf("cross-partition edge %v->%v survived in adjacency", from, to)
				}
			}
		}
	}
	clk.Advance(20 * time.Millisecond) // healed
	checkAdjacency(t, net, clk, nodes, 1)
	if got := len(net.Neighbors(nodes[0])); got != len(nodes)-1 {
		t.Fatalf("after heal, clique node has %d neighbours, want %d", got, len(nodes)-1)
	}
}
