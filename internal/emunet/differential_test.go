package emunet

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/trace"
	"manetkit/internal/vclock"
)

// The differential suite pits the legacy timer-per-delivery path against
// the discrete-event core on identical seeds and asserts the two are
// observably indistinguishable: same frame-level span stream, same receive
// upcall sequence, same Stats, same fault firing log. This is the contract
// that lets every golden gate in the repo keep its committed values across
// the engine swap.

// engineConfigs enumerates the medium variants the differential tests
// compare. Shard size 2 forces shard-boundary traffic on 4-node runs;
// threshold 1 forces the parallel prep path even for tiny epochs.
func engineConfigs() map[string]EngineConfig {
	return map[string]EngineConfig{
		"legacy":        {Legacy: true},
		"event":         {},
		"event-shard2":  {ShardSize: 2, ParallelThreshold: 1},
		"event-serial":  {Workers: 1},
		"event-1worker": {ShardSize: 2, ParallelThreshold: 1, Workers: 1},
	}
}

// chaosObservables runs the seed-7 chaos scenario (the TestGoldenFrameTrace
// workload: lossy line, partition+crash+corrupt+duplicate+reorder plan,
// scripted beacons and unicasts) on the given engine and returns everything
// a protocol or test could observe.
func chaosObservables(t *testing.T, seed int64, cfg EngineConfig) (Stats, []string, []string, []trace.Span, string) {
	t.Helper()
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := vclock.NewVirtual(epoch)
	net := NewWithConfig(clk, seed, cfg)
	tr := trace.New(epoch, 0)
	net.SetTracer(tr)
	addrs := Addrs(4)
	q := DefaultQuality()
	q.Loss = 0.2
	if err := BuildLine(net, addrs, q); err != nil {
		t.Fatalf("BuildLine: %v", err)
	}

	var rxLog []string
	for _, a := range addrs {
		a := a
		nic, _ := net.NIC(a)
		nic.SetReceiver(func(f Frame) {
			rxLog = append(rxLog, fmt.Sprintf("t=%v %v->%v rx %x corrupted=%v",
				clk.Now().Sub(epoch), f.Src, a, f.Payload, f.Corrupted))
		})
	}

	plan := NewFaultPlan(seed+100).
		Partition(300*time.Millisecond, 600*time.Millisecond, addrs[:2], addrs[2:]).
		Crash(700*time.Millisecond, 900*time.Millisecond, addrs[1]).
		CorruptFrames(0, time.Second, 0.3).
		DuplicateFrames(0, time.Second, 0.3).
		ReorderFrames(0, time.Second, 0.3, 3*time.Millisecond)
	inj := plan.Apply(net)

	for i, a := range addrs {
		a := a
		next := addrs[(i+1)%len(addrs)]
		for k := 0; k < 20; k++ {
			k := k
			clk.AfterFunc(time.Duration(k)*50*time.Millisecond, func() {
				nic, ok := net.NIC(a)
				if !ok {
					return
				}
				_ = nic.Send(mnet.Broadcast, []byte(fmt.Sprintf("beacon %v %d", a, k)))
				_ = nic.Send(next, []byte(fmt.Sprintf("uni %v %d", a, k)))
			})
		}
	}
	clk.Advance(1200 * time.Millisecond)
	return net.Stats(), inj.Log(), rxLog, tr.Spans(), tr.Fingerprint()
}

// diffSpans reports the first span where two streams diverge.
func diffSpans(t *testing.T, name string, want, got []trace.Span) {
	t.Helper()
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			t.Errorf("%s: span %d diverged:\n legacy %+v\n %s %+v", name, i, want[i], name, got[i])
			return
		}
	}
	if len(want) != len(got) {
		t.Errorf("%s: span count %d, legacy %d; first extra span %+v",
			name, len(got), len(want), longer(want, got)[n])
	}
}

func longer(a, b []trace.Span) []trace.Span {
	if len(a) > len(b) {
		return a
	}
	return b
}

// TestDifferentialChaos asserts that every event-core variant reproduces
// the legacy path's observable behaviour bit-for-bit on the chaos workload,
// across several seeds.
func TestDifferentialChaos(t *testing.T) {
	for _, seed := range []int64{7, 8, 41} {
		refStats, refLog, refRx, refSpans, refFP := chaosObservables(t, seed, EngineConfig{Legacy: true})
		for name, cfg := range engineConfigs() {
			if cfg.Legacy {
				continue
			}
			//mk:allow maporder test-table range: each case rebuilds its network and fingerprints it independently, cross-case order is immaterial
			stats, log, rx, spans, fp := chaosObservables(t, seed, cfg)
			if stats != refStats {
				t.Errorf("seed %d %s: Stats diverged:\n legacy %+v\n %s %+v", seed, name, refStats, name, stats)
			}
			if !reflect.DeepEqual(log, refLog) {
				t.Errorf("seed %d %s: fault firing logs diverged:\n legacy %q\n %s %q", seed, name, refLog, name, log)
			}
			if !reflect.DeepEqual(rx, refRx) {
				for i := range rx {
					if i >= len(refRx) || rx[i] != refRx[i] {
						t.Errorf("seed %d %s: receive %d diverged:\n legacy %q\n %s %q",
							seed, name, i, refRx[min(i, len(refRx)-1)], name, rx[i])
						break
					}
				}
				if len(rx) != len(refRx) {
					t.Errorf("seed %d %s: %d receives, legacy %d", seed, name, len(rx), len(refRx))
				}
			}
			if fp != refFP {
				diffSpans(t, fmt.Sprintf("seed %d %s", seed, name), refSpans, spans)
			}
		}
	}
}

// TestDifferentialFeedback covers the MAC-feedback (802.11 ACK analogue)
// path: delivery verdicts and their order must match across engines, for
// linked, lossy, missing-link and mid-flight-crash cases.
func TestDifferentialFeedback(t *testing.T) {
	run := func(cfg EngineConfig) []string {
		epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
		clk := vclock.NewVirtual(epoch)
		net := NewWithConfig(clk, 5, cfg)
		addrs := Addrs(3)
		for _, a := range addrs {
			if _, err := net.Attach(a); err != nil {
				t.Fatalf("Attach: %v", err)
			}
		}
		lossy := DefaultQuality()
		lossy.Loss = 0.5
		if err := net.SetLink(addrs[0], addrs[1], lossy); err != nil {
			t.Fatalf("SetLink: %v", err)
		}
		if err := net.SetLink(addrs[1], addrs[2], DefaultQuality()); err != nil {
			t.Fatalf("SetLink: %v", err)
		}

		var verdicts []string
		nic0, _ := net.NIC(addrs[0])
		nic1, _ := net.NIC(addrs[1])
		for k := 0; k < 20; k++ {
			k := k
			clk.AfterFunc(time.Duration(k)*10*time.Millisecond, func() {
				_ = nic0.SendWithFeedback(addrs[1], []byte(fmt.Sprintf("ack me %d", k)), func(ok bool) {
					verdicts = append(verdicts, fmt.Sprintf("t=%v 0->1 #%d ok=%v", clk.Now().Sub(epoch), k, ok))
				})
				_ = nic1.SendWithFeedback(addrs[2], []byte(fmt.Sprintf("fwd %d", k)), func(ok bool) {
					verdicts = append(verdicts, fmt.Sprintf("t=%v 1->2 #%d ok=%v", clk.Now().Sub(epoch), k, ok))
				})
				// No link 0->2: the frame is lost and the MAC reports failure.
				_ = nic0.SendWithFeedback(addrs[2], []byte("void"), func(ok bool) {
					verdicts = append(verdicts, fmt.Sprintf("t=%v 0->2 #%d ok=%v", clk.Now().Sub(epoch), k, ok))
				})
			})
		}
		// Crash the middle node mid-run so in-flight frames to it are dropped.
		clk.AfterFunc(95*time.Millisecond, func() { _ = net.Detach(addrs[1]) })
		clk.Advance(400 * time.Millisecond)
		return verdicts
	}

	ref := run(EngineConfig{Legacy: true})
	if len(ref) == 0 {
		t.Fatal("no feedback verdicts")
	}
	for name, cfg := range engineConfigs() {
		if cfg.Legacy {
			continue
		}
		got := run(cfg)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%s: feedback verdicts diverged:\n legacy %q\n %s %q", name, ref, name, got)
		}
	}
}

// TestDifferentialTopologyEdges walks the topology mutation surface —
// detach with in-flight frames, reattach, asymmetric links, link cuts under
// traffic, scenario playback — and compares receive sequences.
func TestDifferentialTopologyEdges(t *testing.T) {
	run := func(cfg EngineConfig) ([]string, Stats) {
		epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
		clk := vclock.NewVirtual(epoch)
		net := NewWithConfig(clk, 11, cfg)
		addrs := Addrs(5)
		if err := BuildGrid(net, addrs, 5, DefaultQuality()); err != nil {
			t.Fatalf("BuildGrid: %v", err)
		}
		var rxLog []string
		for _, a := range addrs {
			a := a
			nic, _ := net.NIC(a)
			nic.SetReceiver(func(f Frame) {
				rxLog = append(rxLog, fmt.Sprintf("t=%v %v->%v %x", clk.Now().Sub(epoch), f.Src, a, f.Payload))
			})
		}
		var detached *NIC
		clk.AfterFunc(20*time.Millisecond, func() {
			detached, _ = net.NIC(addrs[2])
			_ = net.Detach(addrs[2])
		})
		clk.AfterFunc(60*time.Millisecond, func() {
			_ = net.Reattach(detached)
			_ = net.SetDirectedLink(addrs[1], addrs[2], DefaultQuality())
		})
		clk.AfterFunc(80*time.Millisecond, func() { net.CutLink(addrs[0], addrs[1]) })
		for i, a := range addrs {
			a := a
			peer := addrs[(i+2)%len(addrs)]
			for k := 0; k < 12; k++ {
				k := k
				clk.AfterFunc(time.Duration(k)*9*time.Millisecond, func() {
					nic, ok := net.NIC(a)
					if !ok {
						return
					}
					_ = nic.Send(mnet.Broadcast, []byte(fmt.Sprintf("b %v %d", a, k)))
					_ = nic.Send(peer, []byte(fmt.Sprintf("u %v %d", a, k)))
				})
			}
		}
		clk.Advance(300 * time.Millisecond)
		return rxLog, net.Stats()
	}

	refRx, refStats := run(EngineConfig{Legacy: true})
	if len(refRx) == 0 {
		t.Fatal("no deliveries in reference run")
	}
	for name, cfg := range engineConfigs() {
		if cfg.Legacy {
			continue
		}
		rx, stats := run(cfg)
		if stats != refStats {
			t.Errorf("%s: Stats diverged:\n legacy %+v\n %s %+v", name, refStats, name, stats)
		}
		if !reflect.DeepEqual(rx, refRx) {
			for i := range rx {
				if i >= len(refRx) || rx[i] != refRx[i] {
					t.Errorf("%s: receive %d diverged (legacy has %d, got %d)", name, i, len(refRx), len(rx))
					break
				}
			}
			if len(rx) != len(refRx) {
				t.Errorf("%s: %d receives, legacy %d", name, len(rx), len(refRx))
			}
		}
	}
}
