package emunet

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"manetkit/internal/mnet"
)

// FaultPlan is a seeded, scripted schedule of medium-level faults: network
// partitions that later heal, node crash+restart (Detach/Reattach with the
// deployment layer invoked for state loss), and windows of frame
// corruption, duplication and reordering injected into the delivery path.
//
// All fault timing runs on the network's clock, and all fault randomness
// comes from a dedicated generator seeded by Seed — independent of the
// medium's loss process — so a plan replayed against an identically seeded
// Network produces byte-identical Stats and firing logs. Build a plan with
// the fluent helpers, then Apply it:
//
//	plan := emunet.NewFaultPlan(7).
//		Partition(15*time.Second, 25*time.Second, groupA, groupB).
//		Crash(27*time.Second, 33*time.Second, addrs[2]).
//		CorruptFrames(36*time.Second, 44*time.Second, 0.25)
//	inj := plan.Apply(net)
//	... drive the clock ...
//	for _, line := range inj.Log() { fmt.Println(line) }
type FaultPlan struct {
	// Seed drives the fault randomness (corruption positions, duplication
	// and reorder draws). Zero means 1.
	Seed int64
	// OnCrash, when non-nil, runs right after a Crash event detaches the
	// node — the deployment layer's chance to halt the node's protocols.
	OnCrash func(addr mnet.Addr)
	// OnRestart, when non-nil, runs right after the node is re-attached —
	// the deployment layer's chance to flush protocol state (the "with
	// state loss" half of crash+restart) and restart its protocols.
	OnRestart func(addr mnet.Addr)

	events []planEvent
}

type planEvent struct {
	at  time.Duration
	run func(n *Network, inj *Injector)
}

// NewFaultPlan returns an empty plan with the given fault seed.
func NewFaultPlan(seed int64) *FaultPlan { return &FaultPlan{Seed: seed} }

// Partition cuts, at time at, every link that crosses between the given
// node groups (both directions, quality remembered), and restores the cut
// links at time heal. Nodes absent from every group keep all their links.
func (p *FaultPlan) Partition(at, heal time.Duration, groups ...[]mnet.Addr) *FaultPlan {
	var saved []savedLink
	p.events = append(p.events, planEvent{at, func(n *Network, inj *Injector) {
		saved = cutAcross(n, groups)
		inj.logf(n, "partition %s: cut %d links", describeGroups(groups), len(saved))
	}})
	p.events = append(p.events, planEvent{heal, func(n *Network, inj *Injector) {
		restored := restoreLinks(n, saved)
		inj.logf(n, "heal: restored %d links", restored)
	}})
	return p
}

// Crash detaches addr from the medium at time at — its transmissions fail
// and in-flight deliveries to it are dropped — and re-attaches it at time
// restart with its crash-time links restored. The plan's OnCrash/OnRestart
// hooks let the deployment layer stop the node's protocols and flush their
// state, completing the "restart with state loss" semantics.
func (p *FaultPlan) Crash(at, restart time.Duration, addr mnet.Addr) *FaultPlan {
	var (
		nic   *NIC
		saved []savedLink
	)
	p.events = append(p.events, planEvent{at, func(n *Network, inj *Injector) {
		got, ok := n.NIC(addr)
		if !ok {
			inj.logf(n, "crash %v: skipped, not attached", addr)
			return
		}
		nic = got
		saved = linksOf(n, addr)
		_ = n.Detach(addr)
		inj.logf(n, "crash %v: detached, %d links lost", addr, len(saved))
		if p.OnCrash != nil {
			p.OnCrash(addr)
		}
	}})
	p.events = append(p.events, planEvent{restart, func(n *Network, inj *Injector) {
		if nic == nil {
			inj.logf(n, "restart %v: skipped, never crashed", addr)
			return
		}
		if err := n.Reattach(nic); err != nil {
			inj.logf(n, "restart %v: %v", addr, err)
			return
		}
		restored := restoreLinks(n, saved)
		inj.logf(n, "restart %v: re-attached, %d links restored", addr, restored)
		if p.OnRestart != nil {
			p.OnRestart(addr)
		}
	}})
	return p
}

// CorruptFrames mangles each delivered frame with probability prob during
// [from, to): one to three payload bytes are flipped and the frame's
// Corrupted bit is set (the FCS-would-have-failed marker).
func (p *FaultPlan) CorruptFrames(from, to time.Duration, prob float64) *FaultPlan {
	return p.window(from, to, "corrupt", prob, func(inj *Injector, v float64) { inj.corruptP = v })
}

// DuplicateFrames delivers an extra copy of each frame with probability
// prob during [from, to); the duplicate arrives one propagation delay late.
func (p *FaultPlan) DuplicateFrames(from, to time.Duration, prob float64) *FaultPlan {
	return p.window(from, to, "duplicate", prob, func(inj *Injector, v float64) { inj.dupP = v })
}

// ReorderFrames delays each frame by a random jitter in (0, jitter] with
// probability prob during [from, to), letting later transmissions overtake
// it.
func (p *FaultPlan) ReorderFrames(from, to time.Duration, prob float64, jitter time.Duration) *FaultPlan {
	if jitter <= 0 {
		jitter = 5 * time.Millisecond
	}
	p.events = append(p.events, planEvent{from, func(n *Network, inj *Injector) {
		inj.reorderP, inj.jitter = prob, jitter
		inj.logf(n, "reorder window on p=%g jitter=%v", prob, jitter)
	}})
	p.events = append(p.events, planEvent{to, func(n *Network, inj *Injector) {
		inj.reorderP = 0
		inj.logf(n, "reorder window off")
	}})
	return p
}

func (p *FaultPlan) window(from, to time.Duration, kind string, prob float64, set func(*Injector, float64)) *FaultPlan {
	p.events = append(p.events, planEvent{from, func(n *Network, inj *Injector) {
		set(inj, prob)
		inj.logf(n, "%s window on p=%g", kind, prob)
	}})
	p.events = append(p.events, planEvent{to, func(n *Network, inj *Injector) {
		set(inj, 0)
		inj.logf(n, "%s window off", kind)
	}})
	return p
}

// Apply installs the plan's injector on the network and schedules every
// event on the network's clock, relative to now. It returns the Injector,
// whose Log method yields the deterministic firing log.
func (p *FaultPlan) Apply(n *Network) *Injector {
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	inj := &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		epoch: n.clock.Now(),
	}
	n.mu.Lock()
	n.inj = inj
	n.mu.Unlock()

	// Stable order: events scheduled in plan order; the virtual clock
	// breaks equal-deadline ties by registration sequence. Events due at or
	// before now run immediately so a window opening at t=0 covers frames
	// sent before the clock first advances.
	for _, ev := range p.events {
		ev := ev
		if ev.at <= 0 {
			ev.run(n, inj)
			continue
		}
		n.ScheduleAt(ev.at, func(net *Network) { ev.run(net, inj) })
	}
	return inj
}

// Injector is the live fault state installed by FaultPlan.Apply: the
// per-frame fault probabilities, the dedicated fault randomness, and the
// firing log. All fields are guarded by the owning Network's mutex.
type Injector struct {
	rng      *rand.Rand
	epoch    time.Time
	corruptP float64
	dupP     float64
	reorderP float64
	jitter   time.Duration
	log      []string
}

// extraDelivery is an additional (duplicated) delivery produced by
// injection.
type extraDelivery struct {
	frame Frame
	delay time.Duration
}

// injectLocked applies per-frame faults to one delivery: possibly corrupts
// the frame, possibly delays it (reordering), and possibly returns extra
// duplicated deliveries. Fault counters land in st, the receiver's shard
// bucket (or the legacy global struct). Caller holds the network mutex.
func (inj *Injector) injectLocked(n *Network, st *Stats, to mnet.Addr, f *Frame, delay *time.Duration) []extraDelivery {
	var extras []extraDelivery
	if inj.corruptP > 0 && inj.rng.Float64() < inj.corruptP {
		inj.corruptFrameLocked(n, st, to, f)
	}
	if inj.dupP > 0 && inj.rng.Float64() < inj.dupP {
		dup := *f
		dup.Payload = append([]byte(nil), f.Payload...)
		extras = append(extras, extraDelivery{dup, *delay * 2})
		st.Duplicated++
		inj.logf(n, "duplicate %v->%v (%dB)", f.Src, to, len(f.Payload))
	}
	if inj.reorderP > 0 && inj.rng.Float64() < inj.reorderP {
		// 1..jitter in whole clock ticks of the jitter's granularity.
		extra := time.Duration(inj.rng.Int63n(int64(inj.jitter))) + 1
		*delay += extra
		st.Reordered++
		inj.logf(n, "reorder %v->%v +%v", f.Src, to, extra)
	}
	return extras
}

// corruptOnlyLocked applies only the corruption fault — used on the
// MAC-feedback (802.11 ACK) path where duplication and reordering are
// suppressed by the ACK exchange. Caller holds the network mutex.
func (inj *Injector) corruptOnlyLocked(n *Network, st *Stats, to mnet.Addr, f *Frame) {
	if inj.corruptP > 0 && inj.rng.Float64() < inj.corruptP {
		inj.corruptFrameLocked(n, st, to, f)
	}
}

func (inj *Injector) corruptFrameLocked(n *Network, st *Stats, to mnet.Addr, f *Frame) {
	if len(f.Payload) == 0 {
		return
	}
	buf := append([]byte(nil), f.Payload...)
	flips := 1 + inj.rng.Intn(3)
	if flips > len(buf) {
		flips = len(buf)
	}
	for i := 0; i < flips; i++ {
		pos := inj.rng.Intn(len(buf))
		buf[pos] ^= byte(1 + inj.rng.Intn(255))
	}
	f.Payload = buf
	f.Corrupted = true
	st.Corrupted++
	inj.logf(n, "corrupt %v->%v flip %d/%dB", f.Src, to, flips, len(buf))
}

// logf appends one timestamped line to the firing log. Callers either hold
// the network mutex or run on the clock goroutine from a plan event; plan
// events take the mutex here.
func (inj *Injector) logf(n *Network, format string, args ...any) {
	line := fmt.Sprintf("t=%v ", n.clock.Now().Sub(inj.epoch)) + fmt.Sprintf(format, args...)
	inj.log = append(inj.log, line)
}

// Log returns a copy of the firing log: one line per plan event fired and
// per frame-level fault injected, in deterministic order.
func (inj *Injector) Log() []string {
	return append([]string(nil), inj.log...)
}

// savedLink is one directed link remembered for later restoration.
type savedLink struct {
	from, to mnet.Addr
	q        Quality
}

// cutAcross removes every directed link crossing between distinct groups
// and returns the removed links.
func cutAcross(n *Network, groups [][]mnet.Addr) []savedLink {
	group := make(map[mnet.Addr]int)
	for i, g := range groups {
		for _, a := range g {
			group[a] = i
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	var saved []savedLink
	for k, q := range n.links {
		gi, iok := group[k.from]
		gj, jok := group[k.to]
		if iok && jok && gi != gj {
			saved = append(saved, savedLink{k.from, k.to, q})
		}
	}
	sort.Slice(saved, func(i, j int) bool {
		if saved[i].from != saved[j].from {
			return saved[i].from.Less(saved[j].from)
		}
		return saved[i].to.Less(saved[j].to)
	})
	for _, s := range saved {
		delete(n.links, linkKey{s.from, s.to})
		n.removeAdjLocked(s.from, s.to)
	}
	return saved
}

// linksOf returns every directed link touching addr, sorted.
func linksOf(n *Network, addr mnet.Addr) []savedLink {
	n.mu.Lock()
	defer n.mu.Unlock()
	var saved []savedLink
	for k, q := range n.links {
		if k.from == addr || k.to == addr {
			saved = append(saved, savedLink{k.from, k.to, q})
		}
	}
	sort.Slice(saved, func(i, j int) bool {
		if saved[i].from != saved[j].from {
			return saved[i].from.Less(saved[j].from)
		}
		return saved[i].to.Less(saved[j].to)
	})
	return saved
}

// restoreLinks re-installs saved links, skipping endpoints that have left
// the network meanwhile. It returns the number restored.
func restoreLinks(n *Network, saved []savedLink) int {
	restored := 0
	for _, s := range saved {
		if err := n.SetDirectedLink(s.from, s.to, s.q); err == nil {
			restored++
		}
	}
	return restored
}

func describeGroups(groups [][]mnet.Addr) string {
	parts := make([]string, len(groups))
	for i, g := range groups {
		elems := make([]string, len(g))
		for j, a := range g {
			elems[j] = a.String()
		}
		parts[i] = "{" + strings.Join(elems, ",") + "}"
	}
	return strings.Join(parts, "|")
}
