package emunet

import (
	"manetkit/internal/metrics"
	"manetkit/internal/mnet"
	"manetkit/internal/trace"
)

// netObs bundles the medium's instruments, resolved once in SetMetrics /
// SetTracer so the per-frame paths never consult the registry. A nil
// bundle (observability disabled) costs one nil check per frame.
type netObs struct {
	reg    *metrics.Registry
	tracer *trace.Tracer

	txFrames      *metrics.Counter
	rxFrames      *metrics.Counter
	droppedLoss   *metrics.Counter
	droppedNoLink *metrics.Counter
	corrupted     *metrics.Counter

	linkDelay *metrics.Histogram // per-delivery scheduled link delay

	// Event-core epoch counters. engEpochsParallel counts parallel-
	// *eligible* epochs (batch over the threshold with more than one shard
	// group); whether the fan-out actually engaged additionally depends on
	// GOMAXPROCS, which must never leak into deterministic telemetry.
	engEpochs         *metrics.Counter
	engEpochsParallel *metrics.Counter
	engEpochEvents    *metrics.Counter
}

func newNetObs(reg *metrics.Registry, tr *trace.Tracer) *netObs {
	if reg == nil && tr == nil {
		return nil
	}
	return &netObs{
		reg:           reg,
		tracer:        tr,
		txFrames:      reg.Counter("net_tx_frames"),
		rxFrames:      reg.Counter("net_rx_frames"),
		droppedLoss:   reg.Counter("net_dropped_loss"),
		droppedNoLink: reg.Counter("net_dropped_nolink"),
		corrupted:     reg.Counter("net_rx_corrupted"),
		linkDelay:     reg.Histogram("net_link_delay"),

		engEpochs:         reg.Counter("net_engine_epochs"),
		engEpochsParallel: reg.Counter("net_engine_epochs_parallel"),
		engEpochEvents:    reg.Counter("net_engine_epoch_events"),
	}
}

// SetMetrics attaches a metrics registry to the medium (nil detaches,
// unless a tracer is still installed). Call before traffic starts.
func (n *Network) SetMetrics(reg *metrics.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var tr *trace.Tracer
	if n.obs != nil {
		tr = n.obs.tracer
	}
	n.obs = newNetObs(reg, tr)
}

// SetTracer attaches a span tracer to the medium (nil detaches, unless a
// metrics registry is still installed). Call before traffic starts.
func (n *Network) SetTracer(tr *trace.Tracer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var reg *metrics.Registry
	if n.obs != nil {
		reg = n.obs.reg
	}
	n.obs = newNetObs(reg, tr)
}

// traceTo renders a frame destination for spans.
func traceTo(dst mnet.Addr) string {
	if dst.IsBroadcast() {
		return "bcast"
	}
	return dst.String()
}
