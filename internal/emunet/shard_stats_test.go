package emunet

import (
	"fmt"
	"testing"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/vclock"
)

// Satellite regression suite for per-shard counter aggregation. The event
// core buckets Stats by spatial shard; every event must be charged to
// exactly one shard — tx-side counters to the sender's, per-target counters
// (rx, drops, fault injections) to the receiver's — so that summing the
// shard map reproduces the global Stats without double-counting on links
// whose endpoints live in different shards.

// sumShards folds a ShardStats map back into one Stats struct.
func sumShards(m map[uint32]Stats) Stats {
	var total Stats
	for _, s := range m {
		total.TxFrames += s.TxFrames
		total.RxFrames += s.RxFrames
		total.DroppedLoss += s.DroppedLoss
		total.DroppedNoLink += s.DroppedNoLink
		total.TxBytes += s.TxBytes
		total.RxBytes += s.RxBytes
		total.Corrupted += s.Corrupted
		total.Duplicated += s.Duplicated
		total.Reordered += s.Reordered
	}
	return total
}

// TestShardStatsSumEqualsTotals drives the chaos workload (loss, partition,
// crash, corruption, duplication, reorder) with shard size 2 — so the lossy
// line's links all straddle shard boundaries — and asserts the shard-map sum
// is exactly the global Stats, which in turn equals the legacy engine's.
func TestShardStatsSumEqualsTotals(t *testing.T) {
	for _, seed := range []int64{7, 21} {
		legacyStats, _, _, _, _ := chaosObservables(t, seed, EngineConfig{Legacy: true})
		for name, cfg := range engineConfigs() {
			if cfg.Legacy {
				continue
			}
			epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
			clk := vclock.NewVirtual(epoch)
			net := NewWithConfig(clk, seed, cfg)
			addrs := Addrs(4)
			q := DefaultQuality()
			q.Loss = 0.2
			if err := BuildLine(net, addrs, q); err != nil {
				t.Fatalf("BuildLine: %v", err)
			}
			plan := NewFaultPlan(seed+100).
				Partition(300*time.Millisecond, 600*time.Millisecond, addrs[:2], addrs[2:]).
				Crash(700*time.Millisecond, 900*time.Millisecond, addrs[1]).
				CorruptFrames(0, time.Second, 0.3).
				DuplicateFrames(0, time.Second, 0.3).
				ReorderFrames(0, time.Second, 0.3, 3*time.Millisecond)
			plan.Apply(net)
			for i, a := range addrs {
				a := a
				next := addrs[(i+1)%len(addrs)]
				for k := 0; k < 20; k++ {
					k := k
					clk.AfterFunc(time.Duration(k)*50*time.Millisecond, func() {
						nic, ok := net.NIC(a)
						if !ok {
							return
						}
						_ = nic.Send(mnet.Broadcast, []byte(fmt.Sprintf("beacon %v %d", a, k))) //mk:allow maporder test-table range: each case builds its own network and trace, cross-case order is immaterial
						_ = nic.Send(next, []byte(fmt.Sprintf("uni %v %d", a, k)))              //mk:allow maporder test-table range: each case builds its own network and trace, cross-case order is immaterial
					})
				}
			}
			clk.Advance(1200 * time.Millisecond)

			total := net.Stats()
			shards := net.ShardStats()
			if got := sumShards(shards); got != total {
				t.Errorf("seed %d %s: shard sum != Stats:\n sum   %+v\n total %+v\n shards %v",
					seed, name, got, total, shards)
			}
			if total != legacyStats {
				t.Errorf("seed %d %s: Stats != legacy:\n got    %+v\n legacy %+v", seed, name, total, legacyStats)
			}
			if cfg.ShardSize == 2 && len(shards) < 2 {
				t.Errorf("seed %d %s: expected multiple shards, got %d", seed, name, len(shards))
			}
		}
	}
}

// TestShardStatsAttribution pins the documented charging contract on a
// single shard-boundary link: with shard size 2, addresses .1/.2 and .3/.4
// land in different shards, so a lossy A→D unicast stream charges TxFrames
// to A's shard and RxFrames/DroppedLoss to D's, with nothing counted twice.
func TestShardStatsAttribution(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := vclock.NewVirtual(epoch)
	cfg := EngineConfig{ShardSize: 2, ParallelThreshold: 1}
	net := NewWithConfig(clk, 3, cfg)
	addrs := Addrs(4)
	a, d := addrs[0], addrs[3]
	shardA := a.Uint32() / 2
	shardB := addrs[1].Uint32() / 2
	shardD := d.Uint32() / 2
	if shardA == shardD {
		t.Fatalf("test setup: %v and %v fell in the same shard %d", a, d, shardA)
	}
	for _, ad := range []mnet.Addr{a, d} {
		if _, err := net.Attach(ad); err != nil {
			t.Fatalf("Attach: %v", err)
		}
	}
	lossy := DefaultQuality()
	lossy.Loss = 0.4
	if err := net.SetDirectedLink(a, d, lossy); err != nil {
		t.Fatalf("SetDirectedLink: %v", err)
	}

	nicA, _ := net.NIC(a)
	const sends = 50
	for k := 0; k < sends; k++ {
		k := k
		clk.AfterFunc(time.Duration(k)*10*time.Millisecond, func() {
			_ = nicA.Send(d, []byte("x"))
			// No link A→B exists (B never linked): the no-link drop is a
			// per-target event and must land in B's shard, not the sender's.
			_ = nicA.Send(addrs[1], []byte("y"))
		})
	}
	clk.Advance(2 * time.Second)

	total := net.Stats()
	shards := net.ShardStats()
	if got := sumShards(shards); got != total {
		t.Fatalf("shard sum != Stats:\n sum   %+v\n total %+v", got, total)
	}
	sa, sd := shards[shardA], shards[shardD]
	if sa.TxFrames != 2*sends {
		t.Errorf("sender shard TxFrames = %d, want %d", sa.TxFrames, 2*sends)
	}
	if sd.TxFrames != 0 {
		t.Errorf("receiver shard TxFrames = %d, want 0 (tx charged to sender only)", sd.TxFrames)
	}
	if sa.RxFrames != 0 || sa.DroppedLoss != 0 {
		t.Errorf("sender shard has receive-side counts %+v, want rx/loss in receiver shard only", sa)
	}
	if sd.RxFrames+sd.DroppedLoss != sends {
		t.Errorf("receiver shard rx(%d)+loss(%d) = %d, want %d (each frame exactly once)",
			sd.RxFrames, sd.DroppedLoss, sd.RxFrames+sd.DroppedLoss, sends)
	}
	if sd.RxFrames == 0 || sd.DroppedLoss == 0 {
		t.Errorf("lossy link should both deliver and drop: %+v", sd)
	}
	if got := shards[shardB].DroppedNoLink; got != sends {
		t.Errorf("no-link drops in target shard %d = %d, want %d (charged to target's shard)",
			shardB, got, sends)
	}
	if sa.DroppedNoLink != 0 {
		t.Errorf("sender shard DroppedNoLink = %d, want 0", sa.DroppedNoLink)
	}
	if total.RxFrames != sd.RxFrames || total.DroppedLoss != sd.DroppedLoss {
		t.Errorf("totals diverge from the single active receiver shard: total %+v shard %+v", total, sd)
	}
}

// TestShardStatsReset covers ResetStats on the event core: the shard map
// empties and subsequent traffic accumulates from zero.
func TestShardStatsReset(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := vclock.NewVirtual(epoch)
	net := NewWithConfig(clk, 1, EngineConfig{ShardSize: 2})
	addrs := Addrs(2)
	if err := BuildLine(net, addrs, DefaultQuality()); err != nil {
		t.Fatalf("BuildLine: %v", err)
	}
	nic, _ := net.NIC(addrs[0])
	_ = nic.Send(addrs[1], []byte("pre"))
	clk.Advance(50 * time.Millisecond)
	if s := net.Stats(); s.TxFrames != 1 || s.RxFrames != 1 {
		t.Fatalf("warmup stats %+v", s)
	}
	net.ResetStats()
	if s := net.Stats(); s != (Stats{}) {
		t.Fatalf("Stats after reset = %+v, want zero", s)
	}
	if m := net.ShardStats(); len(m) != 0 {
		t.Fatalf("ShardStats after reset = %v, want empty", m)
	}
	_ = nic.Send(addrs[1], []byte("post"))
	clk.Advance(50 * time.Millisecond)
	s := net.Stats()
	if s.TxFrames != 1 || s.RxFrames != 1 {
		t.Fatalf("post-reset stats %+v, want exactly one tx/rx", s)
	}
	if got := sumShards(net.ShardStats()); got != s {
		t.Fatalf("post-reset shard sum %+v != Stats %+v", got, s)
	}
}
