package emunet

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/trace"
	"manetkit/internal/vclock"
)

// chaosRun drives one seeded lossy run with a full FaultPlan and returns
// the medium Stats, the fault firing log, and a per-delivery receive trace.
func chaosRun(t *testing.T, seed int64) (Stats, []string, []string) {
	t.Helper()
	clk := vclock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := New(clk, seed)
	addrs := Addrs(4)
	q := DefaultQuality()
	q.Loss = 0.2
	if err := BuildLine(net, addrs, q); err != nil {
		t.Fatalf("BuildLine: %v", err)
	}

	var trace []string
	for i, a := range addrs {
		a := a
		nic, _ := net.NIC(a)
		nic.SetReceiver(func(f Frame) {
			trace = append(trace, fmt.Sprintf("t=%v %v->%v rx %x corrupted=%v",
				clk.Now().Sub(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)),
				f.Src, a, f.Payload, f.Corrupted))
		})
		_ = i
	}

	plan := NewFaultPlan(seed+100).
		Partition(300*time.Millisecond, 600*time.Millisecond, addrs[:2], addrs[2:]).
		Crash(700*time.Millisecond, 900*time.Millisecond, addrs[1]).
		CorruptFrames(0, time.Second, 0.3).
		DuplicateFrames(0, time.Second, 0.3).
		ReorderFrames(0, time.Second, 0.3, 3*time.Millisecond)
	inj := plan.Apply(net)

	// Scripted traffic: every node beacons every 50ms plus unicasts along
	// the line, all scheduled on the virtual clock.
	for i, a := range addrs {
		a := a
		next := addrs[(i+1)%len(addrs)]
		for k := 0; k < 20; k++ {
			k := k
			clk.AfterFunc(time.Duration(k)*50*time.Millisecond, func() {
				nic, ok := net.NIC(a)
				if !ok {
					return
				}
				_ = nic.Send(mnet.Broadcast, []byte(fmt.Sprintf("beacon %v %d", a, k)))
				_ = nic.Send(next, []byte(fmt.Sprintf("uni %v %d", a, k)))
			})
		}
	}
	clk.Advance(1200 * time.Millisecond)
	return net.Stats(), inj.Log(), trace
}

// TestDeterministicReplay is the determinism regression: two runs with the
// same seed and FaultPlan must produce byte-identical Stats, firing logs
// and delivery traces; a different seed must diverge.
func TestDeterministicReplay(t *testing.T) {
	stats1, log1, trace1 := chaosRun(t, 7)
	stats2, log2, trace2 := chaosRun(t, 7)

	if stats1 != stats2 {
		t.Fatalf("Stats diverged:\n run1 %+v\n run2 %+v", stats1, stats2)
	}
	if !reflect.DeepEqual(log1, log2) {
		t.Fatalf("fault logs diverged:\n run1 %q\n run2 %q", log1, log2)
	}
	if !reflect.DeepEqual(trace1, trace2) {
		t.Fatalf("delivery traces diverged")
	}
	if stats1.Corrupted == 0 || stats1.Duplicated == 0 || stats1.Reordered == 0 {
		t.Fatalf("fault plan injected nothing: %+v", stats1)
	}
	if len(log1) == 0 {
		t.Fatalf("empty firing log")
	}

	stats3, _, _ := chaosRun(t, 8)
	if stats1 == stats3 {
		t.Fatalf("different seeds produced identical stats — seed is not wired through")
	}
}

// goldenFrameFingerprint is the committed frame-level trace fingerprint of
// the seed-7 chaos run: every tx/rx/drop on the faulty medium, in order.
// Update it (from the failure message) only when a change intentionally
// alters medium behaviour.
const goldenFrameFingerprint = "75004474acac8156"

// frameTraceRun repeats the seed-7 chaos run with the structured tracer on
// the medium and returns the tracer.
func frameTraceRun(t *testing.T, seed int64) *trace.Tracer {
	t.Helper()
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := vclock.NewVirtual(epoch)
	net := New(clk, seed)
	tr := trace.New(epoch, 0)
	net.SetTracer(tr)
	addrs := Addrs(4)
	q := DefaultQuality()
	q.Loss = 0.2
	if err := BuildLine(net, addrs, q); err != nil {
		t.Fatalf("BuildLine: %v", err)
	}
	plan := NewFaultPlan(seed+100).
		Partition(300*time.Millisecond, 600*time.Millisecond, addrs[:2], addrs[2:]).
		Crash(700*time.Millisecond, 900*time.Millisecond, addrs[1]).
		CorruptFrames(0, time.Second, 0.3).
		DuplicateFrames(0, time.Second, 0.3).
		ReorderFrames(0, time.Second, 0.3, 3*time.Millisecond)
	plan.Apply(net)
	for i, a := range addrs {
		a := a
		next := addrs[(i+1)%len(addrs)]
		for k := 0; k < 20; k++ {
			k := k
			clk.AfterFunc(time.Duration(k)*50*time.Millisecond, func() {
				nic, ok := net.NIC(a)
				if !ok {
					return
				}
				_ = nic.Send(mnet.Broadcast, []byte(fmt.Sprintf("beacon %v %d", a, k)))
				_ = nic.Send(next, []byte(fmt.Sprintf("uni %v %d", a, k)))
			})
		}
	}
	clk.Advance(1200 * time.Millisecond)
	return tr
}

// TestGoldenFrameTrace pins the frame-level span stream of the faulty
// seed-7 run to a committed fingerprint: the structured-trace analogue of
// TestDeterministicReplay, sensitive to delivery *order* as well as counts.
func TestGoldenFrameTrace(t *testing.T) {
	tr := frameTraceRun(t, 7)
	if tr.Len() == 0 {
		t.Fatal("empty frame trace")
	}
	if tr.Dropped() != 0 {
		t.Fatalf("trace evicted %d spans", tr.Dropped())
	}
	if got := tr.Fingerprint(); got != goldenFrameFingerprint {
		t.Errorf("frame trace fingerprint = %s, want %s (%d spans)\n"+
			"If this change intentionally alters medium behaviour, update goldenFrameFingerprint.",
			got, goldenFrameFingerprint, tr.Len())
	}
	if got2 := frameTraceRun(t, 7).Fingerprint(); got2 != tr.Fingerprint() {
		t.Fatalf("same-seed frame traces diverged: %s vs %s", tr.Fingerprint(), got2)
	}
}
