package emunet

import (
	"reflect"
	"testing"
	"time"

	"manetkit/internal/mnet"
	"manetkit/internal/vclock"
)

func faultFixture(t *testing.T, nodes int) (*vclock.Virtual, *Network, []mnet.Addr) {
	t.Helper()
	clk := vclock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	net := New(clk, 1)
	addrs := Addrs(nodes)
	if err := BuildLine(net, addrs, DefaultQuality()); err != nil {
		t.Fatalf("BuildLine: %v", err)
	}
	return clk, net, addrs
}

func TestPartitionCutsAndHeals(t *testing.T) {
	clk, net, addrs := faultFixture(t, 4)
	plan := NewFaultPlan(1).Partition(time.Second, 2*time.Second,
		addrs[:2], addrs[2:])
	inj := plan.Apply(net)

	clk.Advance(time.Second)
	if net.Linked(addrs[1], addrs[2]) || net.Linked(addrs[2], addrs[1]) {
		t.Fatalf("cross-partition link survived the cut")
	}
	if !net.Linked(addrs[0], addrs[1]) || !net.Linked(addrs[2], addrs[3]) {
		t.Fatalf("intra-partition link was cut")
	}

	clk.Advance(time.Second)
	if !net.Linked(addrs[1], addrs[2]) || !net.Linked(addrs[2], addrs[1]) {
		t.Fatalf("partition did not heal")
	}
	if q, ok := net.LinkQuality(addrs[1], addrs[2]); !ok || q != DefaultQuality() {
		t.Fatalf("healed link lost its quality: %+v ok=%v", q, ok)
	}
	if len(inj.Log()) != 2 {
		t.Fatalf("expected 2 log lines, got %q", inj.Log())
	}
}

func TestCrashRestartRestoresNICAndLinks(t *testing.T) {
	clk, net, addrs := faultFixture(t, 3)
	mid := addrs[1]
	nic, _ := net.NIC(mid)

	var crashed, restarted []mnet.Addr
	plan := NewFaultPlan(1)
	plan.OnCrash = func(a mnet.Addr) { crashed = append(crashed, a) }
	plan.OnRestart = func(a mnet.Addr) { restarted = append(restarted, a) }
	plan.Crash(time.Second, 3*time.Second, mid)
	plan.Apply(net)

	clk.Advance(time.Second)
	if _, ok := net.NIC(mid); ok {
		t.Fatalf("crashed node still attached")
	}
	if err := nic.Send(addrs[0], []byte("x")); err != ErrDetached {
		t.Fatalf("send from crashed node: got %v, want ErrDetached", err)
	}
	if len(crashed) != 1 || crashed[0] != mid {
		t.Fatalf("OnCrash hook: %v", crashed)
	}

	clk.Advance(2 * time.Second)
	if _, ok := net.NIC(mid); !ok {
		t.Fatalf("restarted node not re-attached")
	}
	if !net.Linked(mid, addrs[0]) || !net.Linked(mid, addrs[2]) ||
		!net.Linked(addrs[0], mid) || !net.Linked(addrs[2], mid) {
		t.Fatalf("restart did not restore links")
	}
	if len(restarted) != 1 || restarted[0] != mid {
		t.Fatalf("OnRestart hook: %v", restarted)
	}
	// The same NIC handle works again.
	if err := nic.Send(addrs[0], []byte("x")); err != nil {
		t.Fatalf("send after restart: %v", err)
	}
}

func TestCrashOfUnknownNodeIsLogged(t *testing.T) {
	clk, net, _ := faultFixture(t, 2)
	ghost := mnet.MustParseAddr("10.9.9.9")
	inj := NewFaultPlan(1).Crash(time.Second, 2*time.Second, ghost).Apply(net)
	clk.Advance(2 * time.Second)
	log := inj.Log()
	if len(log) != 2 {
		t.Fatalf("log: %q", log)
	}
}

func TestCorruptionWindow(t *testing.T) {
	clk, net, addrs := faultFixture(t, 2)
	nicA, _ := net.NIC(addrs[0])
	nicB, _ := net.NIC(addrs[1])

	var clean, corrupted int
	nicB.SetReceiver(func(f Frame) {
		if f.Corrupted {
			corrupted++
		} else {
			clean++
		}
	})
	NewFaultPlan(42).CorruptFrames(0, time.Second, 1).Apply(net)

	payload := []byte("hello hello hello")
	for i := 0; i < 10; i++ {
		if err := nicA.Send(addrs[1], payload); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	clk.Advance(time.Second)
	if corrupted != 10 || clean != 0 {
		t.Fatalf("p=1 corruption: %d corrupted, %d clean", corrupted, clean)
	}
	if st := net.Stats(); st.Corrupted != 10 {
		t.Fatalf("Stats.Corrupted = %d", st.Corrupted)
	}

	// Window closed: frames flow clean again.
	for i := 0; i < 5; i++ {
		_ = nicA.Send(addrs[1], payload)
	}
	clk.Advance(time.Second)
	if clean != 5 {
		t.Fatalf("after window: %d clean", clean)
	}
}

func TestCorruptionNeverMutatesSenderBuffer(t *testing.T) {
	clk, net, addrs := faultFixture(t, 3)
	nicA, _ := net.NIC(addrs[0])
	// A broadcast reaches addrs[1] only (line topology neighbour), but use
	// two receivers via a clique to check per-receiver copies.
	if err := BuildClique(net, addrs, DefaultQuality()); err != nil {
		t.Fatalf("clique: %v", err)
	}
	payloads := make(map[mnet.Addr][]byte)
	for _, a := range addrs[1:] {
		a := a
		nic, _ := net.NIC(a)
		nic.SetReceiver(func(f Frame) { payloads[a] = f.Payload })
	}
	NewFaultPlan(7).CorruptFrames(0, time.Second, 1).Apply(net)

	original := []byte("immutable payload bytes")
	sent := append([]byte(nil), original...)
	if err := nicA.Send(mnet.Broadcast, sent); err != nil {
		t.Fatalf("send: %v", err)
	}
	clk.Advance(100 * time.Millisecond)
	if !reflect.DeepEqual(sent, original) {
		t.Fatalf("sender buffer mutated by corruption")
	}
	if len(payloads) != 2 {
		t.Fatalf("got %d receivers", len(payloads))
	}
	for a, p := range payloads {
		if reflect.DeepEqual(p, original) {
			t.Fatalf("receiver %v got uncorrupted payload under p=1", a)
		}
	}
}

func TestDuplicationWindow(t *testing.T) {
	clk, net, addrs := faultFixture(t, 2)
	nicA, _ := net.NIC(addrs[0])
	nicB, _ := net.NIC(addrs[1])
	got := 0
	nicB.SetReceiver(func(f Frame) { got++ })
	NewFaultPlan(42).DuplicateFrames(0, time.Second, 1).Apply(net)

	for i := 0; i < 4; i++ {
		_ = nicA.Send(addrs[1], []byte("dup me"))
	}
	clk.Advance(time.Second)
	if got != 8 {
		t.Fatalf("p=1 duplication: delivered %d, want 8", got)
	}
	if st := net.Stats(); st.Duplicated != 4 {
		t.Fatalf("Stats.Duplicated = %d", st.Duplicated)
	}
}

func TestReorderWindowSwapsDeliveries(t *testing.T) {
	clk, net, addrs := faultFixture(t, 2)
	nicA, _ := net.NIC(addrs[0])
	nicB, _ := net.NIC(addrs[1])
	var order []byte
	nicB.SetReceiver(func(f Frame) { order = append(order, f.Payload[0]) })
	// Deterministic swap: delay only the first frame far past the second.
	NewFaultPlan(3).ReorderFrames(0, time.Second, 1, 50*time.Millisecond).Apply(net)

	_ = nicA.Send(addrs[1], []byte{'a'})
	clk.Advance(time.Millisecond) // second send 1ms later
	inj := net.Stats().Reordered
	if inj == 0 {
		t.Fatalf("first frame was not jittered")
	}
	// Close the window so the chaser flies straight.
	clk.Advance(time.Second)
	_ = nicA.Send(addrs[1], []byte{'b'})
	clk.Advance(time.Second)

	if len(order) != 2 {
		t.Fatalf("delivered %d frames", len(order))
	}
	if st := net.Stats(); st.Reordered != 1 {
		t.Fatalf("Stats.Reordered = %d", st.Reordered)
	}
}

func TestReattachRejectsOccupiedAddress(t *testing.T) {
	_, net, addrs := faultFixture(t, 2)
	nic, _ := net.NIC(addrs[0])
	if err := net.Reattach(nic); err == nil {
		t.Fatalf("Reattach on attached address should fail")
	}
	if err := net.Detach(addrs[0]); err != nil {
		t.Fatalf("Detach: %v", err)
	}
	if err := net.Reattach(nic); err != nil {
		t.Fatalf("Reattach: %v", err)
	}
	if err := nic.Send(addrs[1], []byte("x")); err != nil {
		t.Fatalf("send after reattach: %v", err)
	}
}
