package emunet

// Edge cases of topology construction and link installation: self-loops,
// links naming unattached nodes, asymmetric (one-direction) links, ragged
// and degenerate grids, and random-topology parameter validation.

import (
	"errors"
	"testing"
	"time"

	"manetkit/internal/mnet"
)

func TestLinkInstallEdgeCases(t *testing.T) {
	lossless := Quality{Delay: time.Millisecond, SignalDBm: -60}
	unknownA := mnet.MustParseAddr("10.9.9.8")
	unknownB := mnet.MustParseAddr("10.9.9.9")

	cases := []struct {
		name     string
		from, to func(attached []mnet.Addr) (mnet.Addr, mnet.Addr)
		wantErr  error
	}{
		{
			name:    "self loop",
			from:    func(a []mnet.Addr) (mnet.Addr, mnet.Addr) { return a[0], a[0] },
			wantErr: ErrSelfLink,
		},
		{
			name:    "self loop on unattached address",
			from:    func([]mnet.Addr) (mnet.Addr, mnet.Addr) { return unknownA, unknownA },
			wantErr: ErrSelfLink,
		},
		{
			name:    "unattached source",
			from:    func(a []mnet.Addr) (mnet.Addr, mnet.Addr) { return unknownA, a[1] },
			wantErr: ErrNotFound,
		},
		{
			name:    "unattached destination",
			from:    func(a []mnet.Addr) (mnet.Addr, mnet.Addr) { return a[0], unknownB },
			wantErr: ErrNotFound,
		},
		{
			name:    "both unattached",
			from:    func([]mnet.Addr) (mnet.Addr, mnet.Addr) { return unknownA, unknownB },
			wantErr: ErrNotFound,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, _ := newNet(t)
			addrs := Addrs(2)
			for _, a := range addrs {
				attach(t, n, a)
			}
			from, to := tc.from(addrs)
			if err := n.SetDirectedLink(from, to, lossless); !errors.Is(err, tc.wantErr) {
				t.Errorf("SetDirectedLink(%v, %v) = %v, want %v", from, to, err, tc.wantErr)
			}
			if err := n.SetLink(from, to, lossless); !errors.Is(err, tc.wantErr) {
				t.Errorf("SetLink(%v, %v) = %v, want %v", from, to, err, tc.wantErr)
			}
			// A failed install must not leave a half-installed link behind.
			if n.Linked(from, to) || n.Linked(to, from) {
				t.Errorf("link %v<->%v partially installed after error", from, to)
			}
		})
	}
}

// TestAsymmetricLinkAccounting pins the medium-side semantics of a
// one-direction ("heard but not symmetric") link: frames flow with the
// link, unicast against it is counted as DroppedNoLink without erroring
// the sender, broadcast only radiates over outgoing links, and Neighbors
// reflects the directedness.
func TestAsymmetricLinkAccounting(t *testing.T) {
	n, clk := newNet(t)
	addrs := Addrs(2)
	na, nb := attach(t, n, addrs[0]), attach(t, n, addrs[1])
	if err := n.SetDirectedLink(addrs[0], addrs[1], Quality{Delay: time.Millisecond, SignalDBm: -60}); err != nil {
		t.Fatal(err)
	}

	if !n.Linked(addrs[0], addrs[1]) || n.Linked(addrs[1], addrs[0]) {
		t.Fatalf("directedness lost: a->b %v, b->a %v", n.Linked(addrs[0], addrs[1]), n.Linked(addrs[1], addrs[0]))
	}
	if nbs := n.Neighbors(addrs[1]); len(nbs) != 0 {
		t.Fatalf("Neighbors(b) = %v, want none", nbs)
	}

	var atA, atB []Frame
	na.SetReceiver(func(f Frame) { atA = append(atA, f) })
	nb.SetReceiver(func(f Frame) { atB = append(atB, f) })

	// With the link: delivered.
	if err := na.Send(addrs[1], []byte("with")); err != nil {
		t.Fatal(err)
	}
	// Against the link: silently dropped at the medium, like a real radio.
	if err := nb.Send(addrs[0], []byte("against")); err != nil {
		t.Fatal(err)
	}
	// Broadcast from b has no outgoing links, so it reaches nobody.
	if err := nb.Send(mnet.Broadcast, []byte("shout")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Millisecond)

	if len(atB) != 1 || string(atB[0].Payload) != "with" {
		t.Fatalf("b received %v, want the one forward frame", atB)
	}
	if len(atA) != 0 {
		t.Fatalf("a received %v over a reverse-only path", atA)
	}
	if st := n.Stats(); st.DroppedNoLink != 1 {
		t.Fatalf("DroppedNoLink = %d, want 1 (the reverse unicast)", st.DroppedNoLink)
	}
}

func TestBuildLineDegenerate(t *testing.T) {
	for _, nodes := range []int{0, 1} {
		n, _ := newNet(t)
		if err := BuildLine(n, Addrs(nodes), DefaultQuality()); err != nil {
			t.Fatalf("BuildLine(%d nodes) = %v", nodes, err)
		}
		if got := len(n.Nodes()); got != nodes {
			t.Fatalf("BuildLine(%d nodes) attached %d", nodes, got)
		}
	}
}

// TestBuildLineDuplicateAddr: a repeated address degenerates into a
// self-link, which must be rejected rather than silently installed.
func TestBuildLineDuplicateAddr(t *testing.T) {
	n, _ := newNet(t)
	a := Addrs(1)[0]
	if err := BuildLine(n, []mnet.Addr{a, a}, DefaultQuality()); !errors.Is(err, ErrSelfLink) {
		t.Fatalf("BuildLine with duplicate address = %v, want ErrSelfLink", err)
	}
}

func TestBuildGridEdgeCases(t *testing.T) {
	link := func(i, j int) [2]int {
		if i > j {
			i, j = j, i
		}
		return [2]int{i, j}
	}
	cases := []struct {
		name    string
		nodes   int
		cols    int
		wantErr bool
		// wantLinks is the full undirected edge set by node index.
		wantLinks [][2]int
	}{
		{name: "zero columns", nodes: 4, cols: 0, wantErr: true},
		{name: "negative columns", nodes: 4, cols: -3, wantErr: true},
		{
			// More columns than nodes: the single partial row is a chain.
			name: "wider than node count", nodes: 3, cols: 10,
			wantLinks: [][2]int{{0, 1}, {1, 2}},
		},
		{
			// A ragged grid: last row shorter than cols.
			name: "ragged last row", nodes: 5, cols: 2,
			wantLinks: [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {2, 4}},
		},
		{
			name: "exact 2x2", nodes: 4, cols: 2,
			wantLinks: [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, _ := newNet(t)
			addrs := Addrs(tc.nodes)
			err := BuildGrid(n, addrs, tc.cols, DefaultQuality())
			if tc.wantErr {
				if err == nil {
					t.Fatalf("BuildGrid(cols=%d) succeeded, want error", tc.cols)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			want := make(map[[2]int]bool, len(tc.wantLinks))
			for _, l := range tc.wantLinks {
				want[l] = true
			}
			for i := 0; i < tc.nodes; i++ {
				for j := i + 1; j < tc.nodes; j++ {
					fwd, rev := n.Linked(addrs[i], addrs[j]), n.Linked(addrs[j], addrs[i])
					if fwd != rev {
						t.Errorf("grid link %d-%d asymmetric: %v/%v", i, j, fwd, rev)
					}
					if fwd != want[link(i, j)] {
						t.Errorf("link %d-%d = %v, want %v", i, j, fwd, want[link(i, j)])
					}
				}
			}
		})
	}
}

func TestBuildRandomValidation(t *testing.T) {
	for _, density := range []float64{-0.1, 1.01, 2} {
		n, _ := newNet(t)
		if err := BuildRandom(n, Addrs(4), density, 1, DefaultQuality()); err == nil {
			t.Errorf("BuildRandom(density=%v) succeeded, want error", density)
		}
	}
}

func TestBuildRandomExtremesAndDeterminism(t *testing.T) {
	addrs := Addrs(8)
	linkSet := func(n *Network) map[[2]int]bool {
		out := make(map[[2]int]bool)
		for i := range addrs {
			for j := i + 1; j < len(addrs); j++ {
				if n.Linked(addrs[i], addrs[j]) {
					out[[2]int{i, j}] = true
				}
			}
		}
		return out
	}

	// Density 0 still guarantees connectivity: exactly the chain.
	n0, _ := newNet(t)
	if err := BuildRandom(n0, addrs, 0, 1, DefaultQuality()); err != nil {
		t.Fatal(err)
	}
	chain := linkSet(n0)
	if len(chain) != len(addrs)-1 {
		t.Fatalf("density 0 installed %d links, want the %d-link chain", len(chain), len(addrs)-1)
	}
	for i := 0; i+1 < len(addrs); i++ {
		if !chain[[2]int{i, i + 1}] {
			t.Fatalf("density 0 missing chain link %d-%d", i, i+1)
		}
	}

	// Density 1 is the clique.
	n1, _ := newNet(t)
	if err := BuildRandom(n1, addrs, 1, 1, DefaultQuality()); err != nil {
		t.Fatal(err)
	}
	if got, want := len(linkSet(n1)), len(addrs)*(len(addrs)-1)/2; got != want {
		t.Fatalf("density 1 installed %d links, want %d", got, want)
	}

	// Same seed, same topology — the reproducibility the campaign relies on.
	nA, _ := newNet(t)
	nB, _ := newNet(t)
	for _, n := range []*Network{nA, nB} {
		if err := BuildRandom(n, addrs, 0.4, 42, DefaultQuality()); err != nil {
			t.Fatal(err)
		}
	}
	setA, setB := linkSet(nA), linkSet(nB)
	if len(setA) != len(setB) {
		t.Fatalf("same seed, different link counts: %d vs %d", len(setA), len(setB))
	}
	for l := range setA {
		if !setB[l] {
			t.Fatalf("same seed, link %v present in one build only", l)
		}
	}
}

func TestAddrsSequence(t *testing.T) {
	got := Addrs(3)
	want := []string{"10.0.0.1", "10.0.0.2", "10.0.0.3"}
	if len(got) != len(want) {
		t.Fatalf("Addrs(3) = %v", got)
	}
	for i, w := range want {
		if got[i] != mnet.MustParseAddr(w) {
			t.Errorf("Addrs(3)[%d] = %v, want %s", i, got[i], w)
		}
	}
	if len(Addrs(0)) != 0 {
		t.Error("Addrs(0) not empty")
	}
}
