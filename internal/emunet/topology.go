package emunet

import (
	"fmt"
	"math/rand"
	"time"

	"manetkit/internal/mnet"
)

// Addrs generates n sequential node addresses starting at 10.0.0.1 — the
// convention used by the examples and the experiment harness.
func Addrs(n int) []mnet.Addr {
	out := make([]mnet.Addr, n)
	for i := range out {
		out[i] = mnet.AddrFrom(0x0a000001 + uint32(i))
	}
	return out
}

// BuildLine attaches the given nodes and links them in a chain — the
// paper's 5-node linear testbed topology. Already-attached nodes are
// reused.
func BuildLine(n *Network, addrs []mnet.Addr, q Quality) error {
	if err := attachAll(n, addrs); err != nil {
		return err
	}
	for i := 0; i+1 < len(addrs); i++ {
		if err := n.SetLink(addrs[i], addrs[i+1], q); err != nil {
			return err
		}
	}
	return nil
}

// BuildGrid attaches the nodes and links 4-neighbourhoods on a cols-wide
// grid; used by the scalability/fisheye experiments.
func BuildGrid(n *Network, addrs []mnet.Addr, cols int, q Quality) error {
	if cols <= 0 {
		return fmt.Errorf("emunet: invalid grid width %d", cols)
	}
	if err := attachAll(n, addrs); err != nil {
		return err
	}
	for i := range addrs {
		row, col := i/cols, i%cols
		if col+1 < cols && i+1 < len(addrs) {
			if err := n.SetLink(addrs[i], addrs[i+1], q); err != nil {
				return err
			}
		}
		if j := (row+1)*cols + col; j < len(addrs) {
			if err := n.SetLink(addrs[i], addrs[j], q); err != nil {
				return err
			}
		}
	}
	return nil
}

// BuildClique attaches the nodes and links every pair — a dense single-hop
// neighbourhood, the regime where MPR flooding pays off.
func BuildClique(n *Network, addrs []mnet.Addr, q Quality) error {
	if err := attachAll(n, addrs); err != nil {
		return err
	}
	for i := range addrs {
		for j := i + 1; j < len(addrs); j++ {
			if err := n.SetLink(addrs[i], addrs[j], q); err != nil {
				return err
			}
		}
	}
	return nil
}

// BuildRandom attaches the nodes and links each pair independently with
// probability density, using seed for reproducibility. It guarantees
// connectivity by additionally chaining the nodes in order.
func BuildRandom(n *Network, addrs []mnet.Addr, density float64, seed int64, q Quality) error {
	if density < 0 || density > 1 {
		return fmt.Errorf("emunet: invalid density %f", density)
	}
	if err := BuildLine(n, addrs, q); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range addrs {
		for j := i + 2; j < len(addrs); j++ {
			if rng.Float64() < density {
				if err := n.SetLink(addrs[i], addrs[j], q); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func attachAll(n *Network, addrs []mnet.Addr) error {
	for _, a := range addrs {
		if _, ok := n.NIC(a); ok {
			continue
		}
		if _, err := n.Attach(a); err != nil {
			return err
		}
	}
	return nil
}

// Step is one timed mutation in a mobility scenario.
type Step struct {
	At time.Duration
	Do func(n *Network)
}

// Scenario is a MobiEmu-style scripted mobility trace: a sequence of timed
// topology mutations.
type Scenario []Step

// Play schedules every step on the network's clock, relative to now.
func (s Scenario) Play(n *Network) {
	for _, step := range s {
		step := step
		n.ScheduleAt(step.At, step.Do)
	}
}

// WalkAway returns a scenario in which node m progressively cuts its links
// to the given peers, one every interval — the canonical link-break
// workload for route-repair experiments.
func WalkAway(m mnet.Addr, peers []mnet.Addr, start, interval time.Duration) Scenario {
	var s Scenario
	for i, p := range peers {
		p := p
		s = append(s, Step{
			At: start + time.Duration(i)*interval,
			Do: func(n *Network) { n.CutLink(m, p) },
		})
	}
	return s
}
