package kernel

import (
	"fmt"
	"testing"
)

func BenchmarkBindUnbind(b *testing.B) {
	k := New()
	a := newTestComp("a", "")
	c := newTestComp("b", "hello")
	k.Register(a)
	k.Register(c)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bd, err := k.Bind("a", "RGreet", "b", "IGreet")
		if err != nil {
			b.Fatal(err)
		}
		if err := k.Unbind(bd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuery(b *testing.B) {
	c := newTestComp("a", "hi")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := Query[greeter](c); !ok {
			b.Fatal("lost interface")
		}
	}
}

func BenchmarkCFInsertRemove(b *testing.B) {
	cf := NewCF("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := newTestComp(fmt.Sprintf("c%d", i), "")
		if err := cf.Insert(c); err != nil {
			b.Fatal(err)
		}
		if err := cf.Remove(c.Name()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCFReplace(b *testing.B) {
	cf := NewCF("bench")
	user := newTestComp("user", "")
	cf.Insert(user)
	cur := newTestComp("handler-0", "v")
	cf.Insert(cur)
	if _, err := cf.Bind("user", "RGreet", "handler-0", "IGreet"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next := newTestComp(fmt.Sprintf("handler-%d", i+1), "v")
		if err := cf.Replace(fmt.Sprintf("handler-%d", i), next); err != nil {
			b.Fatal(err)
		}
	}
}
