package kernel

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
)

// Factory instantiates a component type. args carries type-specific
// construction parameters (may be nil).
type Factory func(name string, args any) (Component, error)

// Binding records a live receptacle-to-interface connection created through
// a Kernel; it is the handle used to undo the connection.
type Binding struct {
	From       string // component owning the receptacle
	Receptacle string
	To         string // component owning the interface
	Interface  string

	impl any
}

// BindingInfo is the reflective description of a Binding.
type BindingInfo struct {
	From, Receptacle, To, Interface string
}

// Info returns the reflective description of the binding.
func (b *Binding) Info() BindingInfo {
	return BindingInfo{From: b.From, Receptacle: b.Receptacle, To: b.To, Interface: b.Interface}
}

// InterfaceInfo describes one provided interface for the interface
// meta-model.
type InterfaceInfo struct {
	Name string
	Type reflect.Type
}

// Kernel is the OpenCom runtime kernel: a registry of live components and
// the bindings between them, plus a factory registry for dynamic loading.
type Kernel struct {
	mu         sync.Mutex
	components map[string]Component
	bindings   []*Binding
	factories  map[string]Factory
	sealed     bool

	// loadedVia records which components were instantiated through a
	// factory, for Unload bookkeeping.
	loadedVia map[string]string
}

// New returns an empty kernel.
func New() *Kernel {
	return &Kernel{
		components: make(map[string]Component),
		factories:  make(map[string]Factory),
		loadedVia:  make(map[string]string),
	}
}

// RegisterFactory makes a component type dynamically loadable.
func (k *Kernel) RegisterFactory(typ string, f Factory) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.sealed {
		return ErrSealed
	}
	if _, ok := k.factories[typ]; ok {
		return fmt.Errorf("%w: factory %q", ErrDuplicate, typ)
	}
	k.factories[typ] = f
	return nil
}

// Load instantiates component type typ under the given instance name and
// registers it.
func (k *Kernel) Load(typ, name string, args any) (Component, error) {
	k.mu.Lock()
	if k.sealed {
		k.mu.Unlock()
		return nil, ErrSealed
	}
	f, ok := k.factories[typ]
	k.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownFactory, typ)
	}
	c, err := f(name, args)
	if err != nil {
		return nil, fmt.Errorf("load %q as %q: %w", typ, name, err)
	}
	if err := k.Register(c); err != nil {
		return nil, err
	}
	k.mu.Lock()
	k.loadedVia[name] = typ
	k.mu.Unlock()
	return c, nil
}

// Register adds an externally constructed component instance.
func (k *Kernel) Register(c Component) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.sealed {
		return ErrSealed
	}
	if _, ok := k.components[c.Name()]; ok {
		return fmt.Errorf("%w: component %q", ErrDuplicate, c.Name())
	}
	k.components[c.Name()] = c
	return nil
}

// Unload removes a component. It fails with ErrStillBound while any binding
// involves the component, mirroring OpenCom's destruction discipline.
func (k *Kernel) Unload(name string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, ok := k.components[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoComponent, name)
	}
	for _, b := range k.bindings {
		if b.From == name || b.To == name {
			return fmt.Errorf("%w: %q (binding %v)", ErrStillBound, name, b.Info())
		}
	}
	delete(k.components, name)
	delete(k.loadedVia, name)
	return nil
}

// Component looks up a registered component by name.
func (k *Kernel) Component(name string) (Component, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	c, ok := k.components[name]
	return c, ok
}

// Components lists registered component names in sorted order.
func (k *Kernel) Components() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	names := make([]string, 0, len(k.components))
	for n := range k.components {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Bind connects the named receptacle on component from to the named
// provided interface on component to.
func (k *Kernel) Bind(from, receptacle, to, iface string) (*Binding, error) {
	k.mu.Lock()
	fc, ok := k.components[from]
	if !ok {
		k.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNoComponent, from)
	}
	tc, ok := k.components[to]
	if !ok {
		k.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNoComponent, to)
	}
	k.mu.Unlock()

	impl, ok := tc.Provided()[iface]
	if !ok {
		return nil, fmt.Errorf("%w: %q on %q", ErrNoInterface, iface, to)
	}
	if err := fc.Connect(receptacle, impl); err != nil {
		return nil, err
	}
	b := &Binding{From: from, Receptacle: receptacle, To: to, Interface: iface, impl: impl}
	k.mu.Lock()
	k.bindings = append(k.bindings, b)
	k.mu.Unlock()
	return b, nil
}

// Unbind undoes a binding previously created with Bind.
func (k *Kernel) Unbind(b *Binding) error {
	k.mu.Lock()
	idx := -1
	for i, eb := range k.bindings {
		if eb == b {
			idx = i
			break
		}
	}
	if idx < 0 {
		k.mu.Unlock()
		return fmt.Errorf("%w: binding %v", ErrNotBound, b.Info())
	}
	fc, ok := k.components[b.From]
	if !ok {
		k.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoComponent, b.From)
	}
	k.bindings = append(k.bindings[:idx], k.bindings[idx+1:]...)
	k.mu.Unlock()

	return fc.Disconnect(b.Receptacle, b.impl)
}

// Bindings returns the reflective view of all live bindings.
func (k *Kernel) Bindings() []BindingInfo {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]BindingInfo, len(k.bindings))
	for i, b := range k.bindings {
		out[i] = b.Info()
	}
	return out
}

// InterfacesOf implements the interface meta-model: the runtime list of
// interfaces provided by the named component, with their Go types.
func (k *Kernel) InterfacesOf(name string) ([]InterfaceInfo, error) {
	c, ok := k.Component(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoComponent, name)
	}
	provided := c.Provided()
	out := make([]InterfaceInfo, 0, len(provided))
	for n, impl := range provided {
		out = append(out, InterfaceInfo{Name: n, Type: reflect.TypeOf(impl)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Seal drops the kernel's dynamic-loading and reconfiguration machinery
// (factory registry, load bookkeeping, binding records) to reclaim memory
// once a deployment has reached its desired configuration — the
// optimisation the paper's §6.2 footnote describes as "unloading the
// OpenCom kernel". Live components and their connections keep functioning;
// further Load/Register calls fail with ErrSealed, and existing bindings
// can no longer be undone.
func (k *Kernel) Seal() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.sealed = true
	k.factories = nil
	k.loadedVia = nil
	k.bindings = nil
}

// Sealed reports whether Seal has been called.
func (k *Kernel) Sealed() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.sealed
}
