package kernel

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// greeter is a tiny provided-interface type for wiring tests.
type greeter interface{ Greet() string }

type greetImpl struct{ msg string }

func (g *greetImpl) Greet() string { return g.msg }

// testComp is a component with one provided greeter and one greeter
// receptacle.
type testComp struct {
	base *Base
	peer greeter
}

func newTestComp(name, msg string) *testComp {
	c := &testComp{base: NewBase(name)}
	c.base.Provide("IGreet", &greetImpl{msg: msg})
	bind, unbind := Single(&c.peer)
	c.base.DefineReceptacle("RGreet", bind, unbind)
	return c
}

func (c *testComp) Name() string                        { return c.base.Name() }
func (c *testComp) Provided() map[string]any            { return c.base.Provided() }
func (c *testComp) ReceptacleNames() []string           { return c.base.ReceptacleNames() }
func (c *testComp) Connect(r string, impl any) error    { return c.base.Connect(r, impl) }
func (c *testComp) Disconnect(r string, impl any) error { return c.base.Disconnect(r, impl) }

func TestBaseProvideAndReceptacles(t *testing.T) {
	c := newTestComp("a", "hello")
	if got := c.ReceptacleNames(); len(got) != 1 || got[0] != "RGreet" {
		t.Fatalf("ReceptacleNames = %v", got)
	}
	p := c.Provided()
	if _, ok := p["IGreet"]; !ok {
		t.Fatalf("Provided = %v", p)
	}
}

func TestKernelBindDeliversImplementation(t *testing.T) {
	k := New()
	a := newTestComp("a", "from-a")
	b := newTestComp("b", "from-b")
	if err := k.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := k.Register(b); err != nil {
		t.Fatal(err)
	}
	bind, err := k.Bind("a", "RGreet", "b", "IGreet")
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if a.peer == nil || a.peer.Greet() != "from-b" {
		t.Fatalf("receptacle not wired: %v", a.peer)
	}
	if err := k.Unbind(bind); err != nil {
		t.Fatalf("Unbind: %v", err)
	}
	if a.peer != nil {
		t.Fatal("receptacle not cleared on Unbind")
	}
	if err := k.Unbind(bind); !errors.Is(err, ErrNotBound) {
		t.Fatalf("double Unbind = %v", err)
	}
}

func TestKernelBindErrors(t *testing.T) {
	k := New()
	a := newTestComp("a", "")
	k.Register(a)
	if _, err := k.Bind("missing", "RGreet", "a", "IGreet"); !errors.Is(err, ErrNoComponent) {
		t.Fatalf("bind from missing = %v", err)
	}
	if _, err := k.Bind("a", "RGreet", "missing", "IGreet"); !errors.Is(err, ErrNoComponent) {
		t.Fatalf("bind to missing = %v", err)
	}
	if _, err := k.Bind("a", "RGreet", "a", "nope"); !errors.Is(err, ErrNoInterface) {
		t.Fatalf("bind to missing iface = %v", err)
	}
	if _, err := k.Bind("a", "nope", "a", "IGreet"); !errors.Is(err, ErrNoReceptacle) {
		t.Fatalf("bind to missing receptacle = %v", err)
	}
}

func TestSingleReceptacleRejectsSecondBinding(t *testing.T) {
	k := New()
	a := newTestComp("a", "")
	b := newTestComp("b", "")
	c := newTestComp("c", "")
	for _, comp := range []Component{a, b, c} {
		k.Register(comp)
	}
	if _, err := k.Bind("a", "RGreet", "b", "IGreet"); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Bind("a", "RGreet", "c", "IGreet"); !errors.Is(err, ErrAlreadyBound) {
		t.Fatalf("second bind = %v", err)
	}
}

func TestSingleTypeMismatch(t *testing.T) {
	var g greeter
	bind, _ := Single(&g)
	if err := bind(42); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("bind(42) = %v", err)
	}
}

func TestMultiReceptacle(t *testing.T) {
	var sinks []greeter
	bind, unbind := Multi(&sinks)
	g1, g2 := &greetImpl{"1"}, &greetImpl{"2"}
	if err := bind(g1); err != nil {
		t.Fatal(err)
	}
	if err := bind(g2); err != nil {
		t.Fatal(err)
	}
	if len(sinks) != 2 {
		t.Fatalf("sinks = %v", sinks)
	}
	if err := unbind(g1); err != nil {
		t.Fatal(err)
	}
	if len(sinks) != 1 || sinks[0].Greet() != "2" {
		t.Fatalf("after unbind sinks = %v", sinks)
	}
	if err := unbind(g1); !errors.Is(err, ErrNotBound) {
		t.Fatalf("unbind absent = %v", err)
	}
	if err := bind("not a greeter"); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("bind wrong type = %v", err)
	}
}

func TestKernelUnloadRefusesWhileBound(t *testing.T) {
	k := New()
	a := newTestComp("a", "")
	b := newTestComp("b", "")
	k.Register(a)
	k.Register(b)
	bd, _ := k.Bind("a", "RGreet", "b", "IGreet")
	if err := k.Unload("b"); !errors.Is(err, ErrStillBound) {
		t.Fatalf("Unload bound component = %v", err)
	}
	k.Unbind(bd)
	if err := k.Unload("b"); err != nil {
		t.Fatalf("Unload after Unbind: %v", err)
	}
	if err := k.Unload("b"); !errors.Is(err, ErrNoComponent) {
		t.Fatalf("double Unload = %v", err)
	}
}

func TestKernelFactories(t *testing.T) {
	k := New()
	err := k.RegisterFactory("greeter", func(name string, args any) (Component, error) {
		msg, _ := args.(string)
		return newTestComp(name, msg), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.RegisterFactory("greeter", nil); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate factory = %v", err)
	}
	c, err := k.Load("greeter", "g1", "hi")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "g1" {
		t.Fatalf("Name = %q", c.Name())
	}
	if _, err := k.Load("nope", "x", nil); !errors.Is(err, ErrUnknownFactory) {
		t.Fatalf("unknown factory = %v", err)
	}
	if _, err := k.Load("greeter", "g1", nil); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate instance = %v", err)
	}
}

func TestKernelSeal(t *testing.T) {
	k := New()
	k.RegisterFactory("greeter", func(name string, args any) (Component, error) {
		return newTestComp(name, ""), nil
	})
	a, _ := k.Load("greeter", "a", nil)
	b, _ := k.Load("greeter", "b", nil)
	bd, err := k.Bind("a", "RGreet", "b", "IGreet")
	if err != nil {
		t.Fatal(err)
	}
	k.Seal()
	if !k.Sealed() {
		t.Fatal("Sealed() = false")
	}
	if _, err := k.Load("greeter", "c", nil); !errors.Is(err, ErrSealed) {
		t.Fatalf("Load after Seal = %v", err)
	}
	if err := k.Register(newTestComp("c", "")); !errors.Is(err, ErrSealed) {
		t.Fatalf("Register after Seal = %v", err)
	}
	// Live composition keeps working.
	if a.(*testComp).peer.Greet() != "" {
		t.Fatal("live binding broken by Seal")
	}
	// Binding records were unloaded: the connection persists but can no
	// longer be undone.
	if err := k.Unbind(bd); !errors.Is(err, ErrNotBound) {
		t.Fatalf("Unbind after Seal = %v, want ErrNotBound", err)
	}
	if len(k.Bindings()) != 0 {
		t.Fatal("binding records survived Seal")
	}
	_ = b
}

func TestInterfaceMetaModel(t *testing.T) {
	k := New()
	a := newTestComp("a", "")
	k.Register(a)
	infos, err := k.InterfacesOf("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "IGreet" {
		t.Fatalf("InterfacesOf = %+v", infos)
	}
	if infos[0].Type == nil || !strings.Contains(infos[0].Type.String(), "greetImpl") {
		t.Fatalf("interface type = %v", infos[0].Type)
	}
	if _, err := k.InterfacesOf("missing"); !errors.Is(err, ErrNoComponent) {
		t.Fatalf("missing component = %v", err)
	}
}

func TestQuery(t *testing.T) {
	a := newTestComp("a", "yo")
	g, ok := Query[greeter](a)
	if !ok || g.Greet() != "yo" {
		t.Fatalf("Query[greeter] = %v, %v", g, ok)
	}
	if _, ok := Query[interface{ Missing() }](a); ok {
		t.Fatal("Query matched absent interface")
	}
}

func TestKernelComponentsSorted(t *testing.T) {
	k := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		k.Register(newTestComp(n, ""))
	}
	got := k.Components()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Components = %v", got)
		}
	}
}

func TestBindingInfo(t *testing.T) {
	k := New()
	k.Register(newTestComp("a", ""))
	k.Register(newTestComp("b", ""))
	k.Bind("a", "RGreet", "b", "IGreet")
	infos := k.Bindings()
	if len(infos) != 1 {
		t.Fatalf("Bindings = %v", infos)
	}
	want := BindingInfo{From: "a", Receptacle: "RGreet", To: "b", Interface: "IGreet"}
	if infos[0] != want {
		t.Fatalf("Bindings[0] = %+v", infos[0])
	}
}

func TestConnectErrorSurfacesFromBind(t *testing.T) {
	k := New()
	a := newTestComp("a", "")
	k.Register(a)
	// Component providing a non-greeter under IGreet.
	bad := NewBase("bad")
	bad.Provide("IGreet", 42)
	k.Register(bad)
	if _, err := k.Bind("a", "RGreet", "bad", "IGreet"); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("Bind with wrong impl type = %v", err)
	}
	if len(k.Bindings()) != 0 {
		t.Fatal("failed Bind left a binding behind")
	}
}

func ExampleQuery() {
	c := newTestComp("node", "hello from the interface meta-model")
	if g, ok := Query[greeter](c); ok {
		fmt.Println(g.Greet())
	}
	// Output: hello from the interface meta-model
}
