package kernel

import (
	"fmt"
	"sync"
)

// Arch is a snapshot of a CF's internal architecture, exposed through the
// architecture reflective meta-model (the paper's ICFMeta interface).
type Arch struct {
	Components []string
	Bindings   []BindingInfo
}

// IntegrityRule is a structural invariant a CF enforces. Check inspects a
// tentative architecture; returning an error vetoes (and rolls back) the
// mutation that produced it.
type IntegrityRule struct {
	Name  string
	Check func(a Arch) error
}

// CF is a component framework: a composite component hosting plug-in
// components on an inner kernel, policed by integrity rules (§3). A CF is
// itself a Component, so CFs nest to arbitrary depth.
type CF struct {
	base  *Base
	inner *Kernel

	mu    sync.Mutex
	rules []IntegrityRule
}

var _ Component = (*CF)(nil)

// NewCF returns an empty component framework with the given integrity
// rules.
func NewCF(name string, rules ...IntegrityRule) *CF {
	return &CF{
		base:  NewBase(name),
		inner: New(),
		rules: rules,
	}
}

// Name implements Component.
func (cf *CF) Name() string { return cf.base.Name() }

// Provided implements Component; a CF exposes its own interfaces (exported
// with Provide) plus the ICFMeta architecture meta-model implicitly.
func (cf *CF) Provided() map[string]any {
	p := cf.base.Provided()
	p["ICFMeta"] = cf
	return p
}

// ReceptacleNames implements Component.
func (cf *CF) ReceptacleNames() []string { return cf.base.ReceptacleNames() }

// Connect implements Component.
func (cf *CF) Connect(receptacle string, impl any) error {
	return cf.base.Connect(receptacle, impl)
}

// Disconnect implements Component.
func (cf *CF) Disconnect(receptacle string, impl any) error {
	return cf.base.Disconnect(receptacle, impl)
}

// Provide exports a named interface on the CF's outer boundary, typically a
// facade over an inner component.
func (cf *CF) Provide(name string, impl any) { cf.base.Provide(name, impl) }

// DefineReceptacle exports a dependency slot on the CF's outer boundary.
func (cf *CF) DefineReceptacle(name string, bind func(any) error, unbind func(any) error) {
	cf.base.DefineReceptacle(name, bind, unbind)
}

// DefineMultiReceptacle exports a fan-out dependency slot.
func (cf *CF) DefineMultiReceptacle(name string, bind func(any) error, unbind func(any) error) {
	cf.base.DefineMultiReceptacle(name, bind, unbind)
}

// AddRule registers a further integrity rule. The rule is checked against
// the current architecture first; an already-violated rule is rejected.
func (cf *CF) AddRule(r IntegrityRule) error {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	if err := r.Check(cf.archLocked()); err != nil {
		return fmt.Errorf("%w: rule %q rejects current architecture: %v", ErrIntegrity, r.Name, err)
	}
	cf.rules = append(cf.rules, r)
	return nil
}

// Arch returns the reflective snapshot of the CF's internal architecture.
func (cf *CF) Arch() Arch {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	return cf.archLocked()
}

func (cf *CF) archLocked() Arch {
	return Arch{Components: cf.inner.Components(), Bindings: cf.inner.Bindings()}
}

// checkLocked validates the current architecture against all rules.
func (cf *CF) checkLocked(op string) error {
	a := cf.archLocked()
	for _, r := range cf.rules {
		if err := r.Check(a); err != nil {
			return fmt.Errorf("%w: %s rejected by rule %q: %v", ErrIntegrity, op, r.Name, err)
		}
	}
	return nil
}

// Insert plugs a component into the CF. The insertion is rolled back if it
// violates an integrity rule.
func (cf *CF) Insert(c Component) error {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	if err := cf.inner.Register(c); err != nil {
		return err
	}
	if err := cf.checkLocked(fmt.Sprintf("insert %q", c.Name())); err != nil {
		// Roll back; Unload of a just-registered unbound component
		// cannot fail.
		if uerr := cf.inner.Unload(c.Name()); uerr != nil {
			return fmt.Errorf("%v (rollback failed: %w)", err, uerr)
		}
		return err
	}
	return nil
}

// Remove unplugs a component; it must be unbound. Rolled back on integrity
// violation.
func (cf *CF) Remove(name string) error {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	c, ok := cf.inner.Component(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoComponent, name)
	}
	if err := cf.inner.Unload(name); err != nil {
		return err
	}
	if err := cf.checkLocked(fmt.Sprintf("remove %q", name)); err != nil {
		if rerr := cf.inner.Register(c); rerr != nil {
			return fmt.Errorf("%v (rollback failed: %w)", err, rerr)
		}
		return err
	}
	return nil
}

// Bind connects a receptacle to an interface between two plug-ins, subject
// to integrity rules.
func (cf *CF) Bind(from, receptacle, to, iface string) (*Binding, error) {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	b, err := cf.inner.Bind(from, receptacle, to, iface)
	if err != nil {
		return nil, err
	}
	if err := cf.checkLocked(fmt.Sprintf("bind %s.%s -> %s.%s", from, receptacle, to, iface)); err != nil {
		if uerr := cf.inner.Unbind(b); uerr != nil {
			return nil, fmt.Errorf("%v (rollback failed: %w)", err, uerr)
		}
		return nil, err
	}
	return b, nil
}

// Unbind disconnects a binding, subject to integrity rules.
func (cf *CF) Unbind(b *Binding) error {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	if err := cf.inner.Unbind(b); err != nil {
		return err
	}
	if err := cf.checkLocked(fmt.Sprintf("unbind %v", b.Info())); err != nil {
		if _, rerr := cf.inner.Bind(b.From, b.Receptacle, b.To, b.Interface); rerr != nil {
			return fmt.Errorf("%v (rollback failed: %w)", err, rerr)
		}
		return err
	}
	return nil
}

// Plug looks up a plug-in by name.
func (cf *CF) Plug(name string) (Component, bool) { return cf.inner.Component(name) }

// Seal unloads the CF's reconfiguration machinery — inner kernel metadata
// and integrity rules — keeping the live composition functional (§6.2
// footnote).
func (cf *CF) Seal() {
	cf.inner.Seal()
	cf.mu.Lock()
	cf.rules = nil
	cf.mu.Unlock()
}

// Replace atomically swaps the named plug-in for replacement: it quiesces
// the CF's Quiescable plug-ins, transfers every binding that involved the
// old component onto the replacement (matching receptacle/interface names),
// and validates integrity once at the end — the standard OpenCom
// reconfiguration enactment of §4.5.
func (cf *CF) Replace(name string, replacement Component) error {
	cf.mu.Lock()
	defer cf.mu.Unlock()

	old, ok := cf.inner.Component(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoComponent, name)
	}
	resume := cf.quiesceLocked()
	defer resume()

	// Capture and tear down bindings touching the old component.
	var touching []*Binding
	for _, b := range cf.inner.bindingsSnapshot() {
		if b.From == name || b.To == name {
			touching = append(touching, b)
		}
	}
	for _, b := range touching {
		if err := cf.inner.Unbind(b); err != nil {
			return fmt.Errorf("replace %q: unbind %v: %w", name, b.Info(), err)
		}
	}
	if err := cf.inner.Unload(name); err != nil {
		return fmt.Errorf("replace %q: %w", name, err)
	}
	if err := cf.inner.Register(replacement); err != nil {
		return fmt.Errorf("replace %q: %w", name, err)
	}
	newName := replacement.Name()
	for _, b := range touching {
		from, to := b.From, b.To
		if from == name {
			from = newName
		}
		if to == name {
			to = newName
		}
		if _, err := cf.inner.Bind(from, b.Receptacle, to, b.Interface); err != nil {
			return fmt.Errorf("replace %q: rebind %v: %w", name, b.Info(), err)
		}
	}
	if err := cf.checkLocked(fmt.Sprintf("replace %q with %q", name, newName)); err != nil {
		return err
	}
	// Restore the old component's suitability for reuse: nothing to do —
	// callers own its lifecycle (e.g. state transfer per §4.5).
	_ = old
	return nil
}

// Reconfigure quiesces all Quiescable plug-ins, runs fn against the CF, and
// validates integrity afterwards. fn may call Insert/Remove/Bind/Unbind
// through the passed Tx, which skips per-operation rule checks so that
// transient illegal intermediate states are permitted inside the
// transaction (integrity is checked once at the end).
func (cf *CF) Reconfigure(fn func(tx *Tx) error) error {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	resume := cf.quiesceLocked()
	defer resume()
	if err := fn(&Tx{cf: cf}); err != nil {
		return err
	}
	return cf.checkLocked("reconfigure transaction")
}

// quiesceLocked drives every Quiescable plug-in to a safe state; the
// returned func resumes them in reverse order.
func (cf *CF) quiesceLocked() func() {
	var resumes []func()
	for _, name := range cf.inner.Components() {
		c, ok := cf.inner.Component(name)
		if !ok {
			continue
		}
		if q, ok := c.(Quiescable); ok {
			resumes = append(resumes, q.Quiesce())
		}
	}
	return func() {
		for i := len(resumes) - 1; i >= 0; i-- {
			resumes[i]()
		}
	}
}

// Tx is the handle passed to a Reconfigure transaction; its operations
// mutate the CF without intermediate integrity checks.
type Tx struct {
	cf *CF
}

// Insert registers a plug-in within the transaction.
func (tx *Tx) Insert(c Component) error { return tx.cf.inner.Register(c) }

// Remove unregisters a plug-in within the transaction.
func (tx *Tx) Remove(name string) error { return tx.cf.inner.Unload(name) }

// Bind connects components within the transaction.
func (tx *Tx) Bind(from, receptacle, to, iface string) (*Binding, error) {
	return tx.cf.inner.Bind(from, receptacle, to, iface)
}

// Unbind disconnects components within the transaction.
func (tx *Tx) Unbind(b *Binding) error { return tx.cf.inner.Unbind(b) }

// Plug looks up a plug-in within the transaction.
func (tx *Tx) Plug(name string) (Component, bool) { return tx.cf.inner.Component(name) }

// Bindings lists live bindings within the transaction.
func (tx *Tx) Bindings() []*Binding { return tx.cf.inner.bindingsSnapshot() }

// bindingsSnapshot returns the live *Binding handles (not just the info),
// used internally by CF.Replace and Tx.
func (k *Kernel) bindingsSnapshot() []*Binding {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]*Binding(nil), k.bindings...)
}

// RuleSingleton returns an integrity rule enforcing that at most one
// component whose name matches the predicate is plugged in — the paper's
// example of "only one instance of a reactive routing protocol" and
// ManetControl rejecting a second C element.
func RuleSingleton(name string, match func(component string) bool) IntegrityRule {
	return IntegrityRule{
		Name: name,
		Check: func(a Arch) error {
			n := 0
			for _, c := range a.Components {
				if match(c) {
					n++
					if n > 1 {
						return fmt.Errorf("more than one %s component", name)
					}
				}
			}
			return nil
		},
	}
}

// RuleRequired returns an integrity rule demanding that a component matching
// the predicate is present.
func RuleRequired(name string, match func(component string) bool) IntegrityRule {
	return IntegrityRule{
		Name: name,
		Check: func(a Arch) error {
			for _, c := range a.Components {
				if match(c) {
					return nil
				}
			}
			return fmt.Errorf("no %s component present", name)
		},
	}
}
