package kernel

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func controlSingleton() IntegrityRule {
	return RuleSingleton("control", func(c string) bool { return strings.HasPrefix(c, "control") })
}

func TestCFInsertRemove(t *testing.T) {
	cf := NewCF("mp")
	a := newTestComp("a", "")
	if err := cf.Insert(a); err != nil {
		t.Fatal(err)
	}
	if _, ok := cf.Plug("a"); !ok {
		t.Fatal("inserted plug-in not found")
	}
	if err := cf.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := cf.Plug("a"); ok {
		t.Fatal("removed plug-in still present")
	}
	if err := cf.Remove("a"); !errors.Is(err, ErrNoComponent) {
		t.Fatalf("double remove = %v", err)
	}
}

func TestCFIntegrityRuleRollsBackInsert(t *testing.T) {
	cf := NewCF("mp", controlSingleton())
	if err := cf.Insert(newTestComp("control-1", "")); err != nil {
		t.Fatal(err)
	}
	err := cf.Insert(newTestComp("control-2", ""))
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("second control insert = %v", err)
	}
	if _, ok := cf.Plug("control-2"); ok {
		t.Fatal("violating insert not rolled back")
	}
	a := cf.Arch()
	if len(a.Components) != 1 {
		t.Fatalf("Arch.Components = %v", a.Components)
	}
}

func TestCFIntegrityRuleRollsBackRemove(t *testing.T) {
	cf := NewCF("mp", RuleRequired("control", func(c string) bool { return c == "control" }))
	// Required rule currently violated => cannot even add it; build CF
	// without rule first.
	cf = NewCF("mp")
	if err := cf.Insert(newTestComp("control", "")); err != nil {
		t.Fatal(err)
	}
	if err := cf.AddRule(RuleRequired("control", func(c string) bool { return c == "control" })); err != nil {
		t.Fatal(err)
	}
	if err := cf.Remove("control"); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("removing required component = %v", err)
	}
	if _, ok := cf.Plug("control"); !ok {
		t.Fatal("rollback did not restore required component")
	}
}

func TestCFAddRuleRejectsViolatedRule(t *testing.T) {
	cf := NewCF("mp")
	cf.Insert(newTestComp("control-1", ""))
	cf.Insert(newTestComp("control-2", ""))
	if err := cf.AddRule(controlSingleton()); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("AddRule on violated arch = %v", err)
	}
}

func TestCFBindUnbindWithRules(t *testing.T) {
	noBindings := IntegrityRule{
		Name: "no-bindings",
		Check: func(a Arch) error {
			if len(a.Bindings) > 0 {
				return errors.New("bindings forbidden")
			}
			return nil
		},
	}
	cf := NewCF("mp", noBindings)
	cf.Insert(newTestComp("a", ""))
	cf.Insert(newTestComp("b", ""))
	if _, err := cf.Bind("a", "RGreet", "b", "IGreet"); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("Bind under no-bindings rule = %v", err)
	}
	if got := cf.Arch(); len(got.Bindings) != 0 {
		t.Fatal("violating bind not rolled back")
	}
}

func TestCFIsComponentAndNests(t *testing.T) {
	inner := NewCF("inner")
	inner.Provide("IGreet", &greetImpl{"nested"})
	outer := NewCF("outer")
	if err := outer.Insert(inner); err != nil {
		t.Fatal(err)
	}
	outer.Insert(newTestComp("user", ""))
	if _, err := outer.Bind("user", "RGreet", "inner", "IGreet"); err != nil {
		t.Fatalf("bind to nested CF: %v", err)
	}
	u, _ := outer.Plug("user")
	if u.(*testComp).peer.Greet() != "nested" {
		t.Fatal("nested CF interface not delivered")
	}
	// ICFMeta is implicitly provided.
	if _, ok := inner.Provided()["ICFMeta"]; !ok {
		t.Fatal("CF does not export ICFMeta")
	}
}

func TestCFReplaceTransfersBindings(t *testing.T) {
	cf := NewCF("mp")
	a := newTestComp("a", "")
	b := newTestComp("handler", "v1")
	cf.Insert(a)
	cf.Insert(b)
	if _, err := cf.Bind("a", "RGreet", "handler", "IGreet"); err != nil {
		t.Fatal(err)
	}
	if a.peer.Greet() != "v1" {
		t.Fatal("initial wiring broken")
	}
	v2 := newTestComp("handler-v2", "v2")
	if err := cf.Replace("handler", v2); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	if a.peer == nil || a.peer.Greet() != "v2" {
		t.Fatalf("binding not transferred, peer = %v", a.peer)
	}
	if _, ok := cf.Plug("handler"); ok {
		t.Fatal("old component still plugged")
	}
	if _, ok := cf.Plug("handler-v2"); !ok {
		t.Fatal("replacement not plugged")
	}
	arch := cf.Arch()
	if len(arch.Bindings) != 1 || arch.Bindings[0].To != "handler-v2" {
		t.Fatalf("bindings after replace = %v", arch.Bindings)
	}
}

func TestCFReplaceMissing(t *testing.T) {
	cf := NewCF("mp")
	if err := cf.Replace("ghost", newTestComp("x", "")); !errors.Is(err, ErrNoComponent) {
		t.Fatalf("Replace missing = %v", err)
	}
}

// quiesComp records quiesce/resume calls.
type quiesComp struct {
	*Base
	mu       sync.Mutex
	quiesced int
	resumed  int
}

func newQuiesComp(name string) *quiesComp { return &quiesComp{Base: NewBase(name)} }

func (q *quiesComp) Quiesce() func() {
	q.mu.Lock()
	q.quiesced++
	q.mu.Unlock()
	return func() {
		q.mu.Lock()
		q.resumed++
		q.mu.Unlock()
	}
}

func TestCFReconfigureQuiescesPlugins(t *testing.T) {
	cf := NewCF("mp")
	q := newQuiesComp("proto")
	cf.Insert(q)
	err := cf.Reconfigure(func(tx *Tx) error {
		if q.quiesced != 1 {
			t.Error("plug-in not quiesced during transaction")
		}
		if q.resumed != 0 {
			t.Error("plug-in resumed during transaction")
		}
		return tx.Insert(newTestComp("extra", ""))
	})
	if err != nil {
		t.Fatal(err)
	}
	if q.resumed != 1 {
		t.Fatal("plug-in not resumed after transaction")
	}
	if _, ok := cf.Plug("extra"); !ok {
		t.Fatal("transaction insert lost")
	}
}

func TestCFReconfigureAllowsTransientIllegalStates(t *testing.T) {
	cf := NewCF("mp", RuleRequired("control", func(c string) bool { return strings.HasPrefix(c, "control") }))
	// Seed a valid architecture first (rule checked on Insert).
	cfNoRule := NewCF("mp2")
	_ = cfNoRule
	if err := cf.Reconfigure(func(tx *Tx) error {
		return tx.Insert(newTestComp("control-a", ""))
	}); err != nil {
		t.Fatal(err)
	}
	// Swap control-a for control-b: transiently there is no control at all,
	// which per-operation checks would reject but a transaction permits.
	err := cf.Reconfigure(func(tx *Tx) error {
		if err := tx.Remove("control-a"); err != nil {
			return err
		}
		return tx.Insert(newTestComp("control-b", ""))
	})
	if err != nil {
		t.Fatalf("transactional swap: %v", err)
	}
	// But a transaction ending in violation reports it.
	err = cf.Reconfigure(func(tx *Tx) error { return tx.Remove("control-b") })
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("violating transaction = %v", err)
	}
}

func TestRuleHelpers(t *testing.T) {
	single := RuleSingleton("x", func(c string) bool { return c == "x" })
	if err := single.Check(Arch{Components: []string{"x"}}); err != nil {
		t.Fatal(err)
	}
	if err := single.Check(Arch{Components: []string{"x", "x"}}); err == nil {
		t.Fatal("singleton rule passed two instances")
	}
	req := RuleRequired("x", func(c string) bool { return c == "x" })
	if err := req.Check(Arch{Components: []string{"y"}}); err == nil {
		t.Fatal("required rule passed without instance")
	}
}
