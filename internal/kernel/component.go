// Package kernel is MANETKit's runtime component model — a Go rendition of
// OpenCom (§3 of the paper). It supports dynamic loading/unloading and
// instantiation of lightweight components, composition through interfaces
// and receptacles, and two reflective meta-models:
//
//   - an *interface meta-model* exposing, at runtime, the interfaces and
//     receptacles a component supports (InterfacesOf, Query), and
//   - an *architecture meta-model* through which the interconnections of a
//     composite can be inspected and reconfigured (CF.Arch, CF.Reconfigure).
//
// Component frameworks (CFs) are domain-tailored composite components that
// accept plug-ins and actively police their own integrity: every structural
// mutation is validated against registered integrity rules and rolled back
// if a rule is violated. CFs are themselves components, so they nest.
package kernel

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
)

// identical reports whether two provided-interface values are the same
// implementation. It tolerates uncomparable implementations (funcs, slices)
// by falling back to pointer identity.
func identical(a, b any) bool {
	ta, tb := reflect.TypeOf(a), reflect.TypeOf(b)
	if ta != tb {
		return false
	}
	if ta != nil && !ta.Comparable() {
		switch ta.Kind() {
		case reflect.Func, reflect.Slice, reflect.Map, reflect.Chan, reflect.UnsafePointer:
			return reflect.ValueOf(a).Pointer() == reflect.ValueOf(b).Pointer()
		default:
			return false
		}
	}
	return a == b
}

// Component is the unit of composition: it exposes named provided
// interfaces and named receptacles (dependency slots).
type Component interface {
	// Name returns the component's instance name, unique within its host.
	Name() string
	// Provided returns the named interfaces the component exposes. The map
	// must be stable for the lifetime of the component.
	Provided() map[string]any
	// ReceptacleNames lists the component's dependency slots.
	ReceptacleNames() []string
	// Connect installs impl into the named receptacle.
	Connect(receptacle string, impl any) error
	// Disconnect removes impl from the named receptacle.
	Disconnect(receptacle string, impl any) error
}

// Quiescable is implemented by components that must be driven to a safe
// state before structural reconfiguration (§4.5). Quiesce blocks until the
// component is quiescent and returns a resume function.
type Quiescable interface {
	Quiesce() (resume func())
}

// Errors reported by the component model.
var (
	ErrNoReceptacle   = errors.New("kernel: no such receptacle")
	ErrNoInterface    = errors.New("kernel: no such interface")
	ErrNoComponent    = errors.New("kernel: no such component")
	ErrDuplicate      = errors.New("kernel: duplicate name")
	ErrTypeMismatch   = errors.New("kernel: implementation does not satisfy receptacle type")
	ErrAlreadyBound   = errors.New("kernel: receptacle already bound")
	ErrNotBound       = errors.New("kernel: receptacle not bound to that implementation")
	ErrStillBound     = errors.New("kernel: component still has bindings")
	ErrIntegrity      = errors.New("kernel: integrity rule violated")
	ErrSealed         = errors.New("kernel: kernel sealed")
	ErrUnknownFactory = errors.New("kernel: unknown component type")
)

// slot is one receptacle: a typed dependency slot, single- or multi-valued.
type slot struct {
	bind   func(any) error
	unbind func(any) error
	multi  bool
	bound  []any
}

// Base is a reusable Component implementation. Concrete components create a
// Base, register their interfaces and receptacles on it, and delegate the
// Component methods to it (composition, not embedding, keeps the public
// structs free of foreign methods).
type Base struct {
	name string

	mu          sync.Mutex
	provided    map[string]any
	receptacles map[string]*slot
}

var _ Component = (*Base)(nil)

// NewBase returns a Base for a component with the given instance name.
func NewBase(name string) *Base {
	return &Base{
		name:        name,
		provided:    make(map[string]any),
		receptacles: make(map[string]*slot),
	}
}

// Name implements Component.
func (b *Base) Name() string { return b.name }

// Provide registers a named provided interface.
func (b *Base) Provide(name string, impl any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.provided[name] = impl
}

// Provided implements Component. The returned map is a copy.
func (b *Base) Provided() map[string]any {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]any, len(b.provided))
	for k, v := range b.provided {
		out[k] = v
	}
	return out
}

// DefineReceptacle registers a single-valued receptacle whose connection is
// delivered through bind and removed through unbind. Either func may be nil.
func (b *Base) DefineReceptacle(name string, bind func(any) error, unbind func(any) error) {
	b.defineSlot(name, bind, unbind, false)
}

// DefineMultiReceptacle registers a receptacle accepting multiple
// simultaneous connections (e.g. an event fan-out).
func (b *Base) DefineMultiReceptacle(name string, bind func(any) error, unbind func(any) error) {
	b.defineSlot(name, bind, unbind, true)
}

func (b *Base) defineSlot(name string, bind, unbind func(any) error, multi bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.receptacles[name] = &slot{bind: bind, unbind: unbind, multi: multi}
}

// ReceptacleNames implements Component.
func (b *Base) ReceptacleNames() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.receptacles))
	for n := range b.receptacles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Connect implements Component.
func (b *Base) Connect(receptacle string, impl any) error {
	b.mu.Lock()
	s, ok := b.receptacles[receptacle]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("%w: %q on %q", ErrNoReceptacle, receptacle, b.name)
	}
	if !s.multi && len(s.bound) > 0 {
		b.mu.Unlock()
		return fmt.Errorf("%w: %q on %q", ErrAlreadyBound, receptacle, b.name)
	}
	b.mu.Unlock()

	if s.bind != nil {
		if err := s.bind(impl); err != nil {
			return fmt.Errorf("connect %q on %q: %w", receptacle, b.name, err)
		}
	}
	b.mu.Lock()
	s.bound = append(s.bound, impl)
	b.mu.Unlock()
	return nil
}

// Disconnect implements Component.
func (b *Base) Disconnect(receptacle string, impl any) error {
	b.mu.Lock()
	s, ok := b.receptacles[receptacle]
	if !ok {
		b.mu.Unlock()
		return fmt.Errorf("%w: %q on %q", ErrNoReceptacle, receptacle, b.name)
	}
	idx := -1
	for i, bound := range s.bound {
		if identical(bound, impl) {
			idx = i
			break
		}
	}
	if idx < 0 {
		b.mu.Unlock()
		return fmt.Errorf("%w: %q on %q", ErrNotBound, receptacle, b.name)
	}
	s.bound = append(s.bound[:idx], s.bound[idx+1:]...)
	b.mu.Unlock()

	if s.unbind != nil {
		if err := s.unbind(impl); err != nil {
			return fmt.Errorf("disconnect %q on %q: %w", receptacle, b.name, err)
		}
	}
	return nil
}

// BoundTo reports how many implementations are connected to the receptacle.
func (b *Base) BoundTo(receptacle string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if s, ok := b.receptacles[receptacle]; ok {
		return len(s.bound)
	}
	return 0
}

// Single builds a (bind, unbind) pair for a single-valued receptacle of
// type T stored at target. Bind fails with ErrTypeMismatch for foreign
// implementations; unbind zeroes the target.
func Single[T any](target *T) (bind func(any) error, unbind func(any) error) {
	bind = func(impl any) error {
		t, ok := impl.(T)
		if !ok {
			return fmt.Errorf("%w: %T", ErrTypeMismatch, impl)
		}
		*target = t
		return nil
	}
	unbind = func(any) error {
		var zero T
		*target = zero
		return nil
	}
	return bind, unbind
}

// Multi builds a (bind, unbind) pair for a multi-valued receptacle of type
// T appended to the slice at target.
func Multi[T comparable](target *[]T) (bind func(any) error, unbind func(any) error) {
	bind = func(impl any) error {
		t, ok := impl.(T)
		if !ok {
			return fmt.Errorf("%w: %T", ErrTypeMismatch, impl)
		}
		*target = append(*target, t)
		return nil
	}
	unbind = func(impl any) error {
		t, ok := impl.(T)
		if !ok {
			return fmt.Errorf("%w: %T", ErrTypeMismatch, impl)
		}
		s := *target
		for i, v := range s {
			if v == t {
				*target = append(s[:i], s[i+1:]...)
				return nil
			}
		}
		return ErrNotBound
	}
	return bind, unbind
}

// Query is the interface meta-model's typed lookup: it returns the first
// provided interface of c that satisfies Go type T. Used for the paper's
// "direct calls … typically benefit from OpenCom's interface meta-model to
// dynamically discover interfaces at runtime" (§4.2).
func Query[T any](c Component) (T, bool) {
	provided := c.Provided()
	names := make([]string, 0, len(provided))
	for n := range provided {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic choice
	for _, n := range names {
		if t, ok := provided[n].(T); ok {
			return t, true
		}
	}
	var zero T
	return zero, false
}
