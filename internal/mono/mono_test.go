package mono

import (
	"testing"
	"time"

	"manetkit/internal/emunet"
	"manetkit/internal/vclock"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func lineNet(t *testing.T, n int) (*vclock.Virtual, *emunet.Network, []*emunet.NIC) {
	t.Helper()
	clk := vclock.NewVirtual(epoch)
	net := emunet.New(clk, 1)
	addrs := emunet.Addrs(n)
	if err := emunet.BuildLine(net, addrs, emunet.DefaultQuality()); err != nil {
		t.Fatal(err)
	}
	nics := make([]*emunet.NIC, n)
	for i, a := range addrs {
		nic, ok := net.NIC(a)
		if !ok {
			t.Fatal("missing NIC")
		}
		nics[i] = nic
	}
	return clk, net, nics
}

func TestMonoOLSRConvergesOnLine(t *testing.T) {
	clk, _, nics := lineNet(t, 5)
	nodes := make([]*OLSR, 5)
	for i, nic := range nics {
		nodes[i] = NewOLSR(nic, clk, OLSRConfig{})
		nodes[i].Start()
		defer nodes[i].Stop()
	}
	clk.Advance(30 * time.Second)
	addrs := emunet.Addrs(5)
	for i, n := range nodes {
		if got := n.RouteCount(); got != 4 {
			t.Fatalf("node %d has %d routes", i, got)
		}
		for j, dst := range addrs {
			if i == j {
				continue
			}
			h, ok := n.Lookup(dst)
			if !ok {
				t.Fatalf("node %d: no route to %v", i, dst)
			}
			want := j - i
			if want < 0 {
				want = -want
			}
			if h.Metric != want {
				t.Fatalf("node %d -> %v metric %d, want %d", i, dst, h.Metric, want)
			}
		}
	}
}

func TestMonoOLSRExpiresNeighbors(t *testing.T) {
	clk, net, nics := lineNet(t, 2)
	a := NewOLSR(nics[0], clk, OLSRConfig{})
	b := NewOLSR(nics[1], clk, OLSRConfig{})
	a.Start()
	b.Start()
	defer a.Stop()
	defer b.Stop()
	clk.Advance(10 * time.Second)
	if a.RouteCount() != 1 {
		t.Fatal("setup: no route")
	}
	net.CutLink(emunet.Addrs(2)[0], emunet.Addrs(2)[1])
	clk.Advance(10 * time.Second)
	if a.RouteCount() != 0 {
		t.Fatal("route survived link cut")
	}
}

func TestMonoDYMODiscovery(t *testing.T) {
	clk, _, nics := lineNet(t, 5)
	nodes := make([]*DYMO, 5)
	for i, nic := range nics {
		nodes[i] = NewDYMO(nic, clk, DYMOConfig{})
		nodes[i].Start()
		defer nodes[i].Stop()
	}
	addrs := emunet.Addrs(5)
	var outcome []bool
	nodes[0].Discover(addrs[4], func(ok bool) { outcome = append(outcome, ok) })
	clk.Advance(time.Second)
	if len(outcome) != 1 || !outcome[0] {
		t.Fatalf("outcome = %v", outcome)
	}
	h, ok := nodes[0].Lookup(addrs[4])
	if !ok || h.Metric != 4 || h.NextHop != addrs[1] {
		t.Fatalf("route = %+v, %v", h, ok)
	}
	// Reverse route at the target.
	if h, ok := nodes[4].Lookup(addrs[0]); !ok || h.NextHop != addrs[3] {
		t.Fatalf("reverse = %+v, %v", h, ok)
	}
	// Second discovery is served from the table, immediately.
	served := false
	nodes[0].Discover(addrs[4], func(ok bool) { served = ok })
	if !served {
		t.Fatal("cached route not used")
	}
}

func TestMonoDYMOGivesUpUnreachable(t *testing.T) {
	clk := vclock.NewVirtual(epoch)
	net := emunet.New(clk, 1)
	addrs := emunet.Addrs(2)
	nicA, _ := net.Attach(addrs[0])
	if _, err := net.Attach(addrs[1]); err != nil {
		t.Fatal(err)
	}
	// No link between them.
	d := NewDYMO(nicA, clk, DYMOConfig{RREQWait: 50 * time.Millisecond})
	d.Start()
	defer d.Stop()
	var outcome []bool
	d.Discover(addrs[1], func(ok bool) { outcome = append(outcome, ok) })
	clk.Advance(2 * time.Second)
	if len(outcome) != 1 || outcome[0] {
		t.Fatalf("outcome = %v", outcome)
	}
}

func TestMonoDYMORoutesExpire(t *testing.T) {
	clk, _, nics := lineNet(t, 2)
	a := NewDYMO(nics[0], clk, DYMOConfig{RouteLifetime: time.Second})
	b := NewDYMO(nics[1], clk, DYMOConfig{RouteLifetime: time.Second})
	a.Start()
	b.Start()
	defer a.Stop()
	defer b.Stop()
	addrs := emunet.Addrs(2)
	a.Discover(addrs[1], nil)
	clk.Advance(200 * time.Millisecond)
	if _, ok := a.Lookup(addrs[1]); !ok {
		t.Fatal("no route after discovery")
	}
	clk.Advance(3 * time.Second)
	if _, ok := a.Lookup(addrs[1]); ok {
		t.Fatal("route never expired")
	}
}

func TestSerialOlder(t *testing.T) {
	if !serialOlder(1, 2) || serialOlder(2, 1) || serialOlder(3, 3) || !serialOlder(65000, 10) {
		t.Fatal("serialOlder broken")
	}
}
