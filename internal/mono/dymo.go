package mono

import (
	"sync"
	"time"

	"manetkit/internal/emunet"
	"manetkit/internal/mnet"
	"manetkit/internal/packetbb"
	"manetkit/internal/vclock"
)

// DYMOConfig parameterises the monolithic DYMO.
type DYMOConfig struct {
	RouteLifetime time.Duration // default 5s
	RREQWait      time.Duration // default 1s
	RREQTries     int           // default 3
	HopLimit      uint8         // default 10
}

func (c *DYMOConfig) fill() {
	if c.RouteLifetime <= 0 {
		c.RouteLifetime = 5 * time.Second
	}
	if c.RREQWait <= 0 {
		c.RREQWait = time.Second
	}
	if c.RREQTries <= 0 {
		c.RREQTries = 3
	}
	if c.HopLimit == 0 {
		c.HopLimit = 10
	}
}

// dymoRoute is a monolithic routing entry.
type dymoRoute struct {
	next    mnet.Addr
	metric  int
	seq     uint16
	expires time.Time
}

// dymoPending tracks one discovery.
type dymoPending struct {
	tries int
	timer vclock.Timer
	done  []func(ok bool)
}

// DYMO is the monolithic reactive comparator (the DYMOUM analogue).
type DYMO struct {
	nic   *emunet.NIC
	clock vclock.Clock
	cfg   DYMOConfig

	mu      sync.Mutex
	routes  map[mnet.Addr]*dymoRoute
	pending map[mnet.Addr]*dymoPending
	dupes   map[[2]uint32]time.Time
	seq     uint16
	pktSeq  uint16
	running bool

	sweepTimer *vclock.Periodic
}

// NewDYMO builds a monolithic DYMO instance on the given NIC.
func NewDYMO(nic *emunet.NIC, clock vclock.Clock, cfg DYMOConfig) *DYMO {
	cfg.fill()
	return &DYMO{
		nic:     nic,
		clock:   clock,
		cfg:     cfg,
		routes:  make(map[mnet.Addr]*dymoRoute),
		pending: make(map[mnet.Addr]*dymoPending),
		dupes:   make(map[[2]uint32]time.Time),
	}
}

// Start wires the NIC.
func (d *DYMO) Start() {
	d.mu.Lock()
	if d.running {
		d.mu.Unlock()
		return
	}
	d.running = true
	d.mu.Unlock()
	d.nic.SetReceiver(d.receive)
	d.sweepTimer = vclock.NewPeriodic(d.clock, d.cfg.RouteLifetime/2, 0,
		int64(d.nic.Addr().Uint32()), d.sweep)
}

// Stop detaches from the NIC.
func (d *DYMO) Stop() {
	d.mu.Lock()
	if !d.running {
		d.mu.Unlock()
		return
	}
	d.running = false
	for _, p := range d.pending {
		if p.timer != nil {
			p.timer.Stop()
		}
	}
	d.pending = make(map[mnet.Addr]*dymoPending)
	d.mu.Unlock()
	d.nic.SetReceiver(nil)
	if d.sweepTimer != nil {
		d.sweepTimer.Stop()
	}
}

// Discover requests a route to dst; done (optional) fires with the
// outcome. This is the monolithic stand-in for the NO_ROUTE trigger.
func (d *DYMO) Discover(dst mnet.Addr, done func(ok bool)) {
	d.mu.Lock()
	if r, ok := d.routes[dst]; ok && r.expires.After(d.clock.Now()) {
		d.mu.Unlock()
		if done != nil {
			done(true)
		}
		return
	}
	if p, ok := d.pending[dst]; ok {
		if done != nil {
			p.done = append(p.done, done)
		}
		d.mu.Unlock()
		return
	}
	p := &dymoPending{}
	if done != nil {
		p.done = append(p.done, done)
	}
	d.pending[dst] = p
	d.mu.Unlock()
	d.sendRREQ(dst, 1)
}

func (d *DYMO) sendRREQ(dst mnet.Addr, attempt int) {
	d.mu.Lock()
	d.seq++
	seq := d.seq
	d.dupes[[2]uint32{d.nic.Addr().Uint32(), uint32(seq)}] = d.clock.Now()
	d.mu.Unlock()

	msg := &packetbb.Message{
		Type:       packetbb.MsgRREQ,
		Originator: d.nic.Addr(),
		SeqNum:     seq,
		HopLimit:   d.cfg.HopLimit,
		AddrBlocks: []packetbb.AddrBlock{{Addrs: []mnet.Addr{dst}}},
	}
	d.send(msg, mnet.Broadcast)

	wait := d.cfg.RREQWait << (attempt - 1)
	timer := d.clock.AfterFunc(wait, func() { d.retry(dst, attempt) })
	d.mu.Lock()
	if p, ok := d.pending[dst]; ok {
		p.tries = attempt
		p.timer = timer
	} else {
		timer.Stop()
	}
	d.mu.Unlock()
}

func (d *DYMO) retry(dst mnet.Addr, attempt int) {
	d.mu.Lock()
	p, ok := d.pending[dst]
	if !ok || p.tries != attempt {
		d.mu.Unlock()
		return
	}
	if attempt >= d.cfg.RREQTries {
		delete(d.pending, dst)
		callbacks := p.done
		d.mu.Unlock()
		for _, fn := range callbacks {
			fn(false)
		}
		return
	}
	d.mu.Unlock()
	d.sendRREQ(dst, attempt+1)
}

func (d *DYMO) send(msg *packetbb.Message, dst mnet.Addr) {
	d.mu.Lock()
	d.pktSeq++
	seq := d.pktSeq
	d.mu.Unlock()
	pkt := &packetbb.Packet{SeqNum: seq, HasSeqNum: true, Messages: []packetbb.Message{*msg}}
	wire, err := packetbb.EncodePacket(pkt)
	if err != nil {
		return
	}
	_ = d.nic.Send(dst, append([]byte{0x01}, wire...))
}

func (d *DYMO) receive(f emunet.Frame) {
	if len(f.Payload) == 0 || f.Payload[0] != 0x01 {
		return
	}
	pkt, err := packetbb.DecodePacket(f.Payload[1:])
	if err != nil {
		return
	}
	for i := range pkt.Messages {
		msg := &pkt.Messages[i]
		switch msg.Type {
		case packetbb.MsgRREQ:
			d.HandleRREQ(msg, f.Src)
		case packetbb.MsgRREP:
			d.HandleRREP(msg, f.Src)
		case packetbb.MsgRERR:
			d.handleRERR(msg, f.Src)
		}
	}
}

// learn applies the DYMO route-update rule inline.
func (d *DYMO) learn(node, via mnet.Addr, metric int, seq uint16) {
	if node == d.nic.Addr() {
		return
	}
	if metric < 1 {
		metric = 1
	}
	now := d.clock.Now()
	d.mu.Lock()
	cur, ok := d.routes[node]
	accept := !ok || !cur.expires.After(now)
	if !accept {
		accept = serialOlder(cur.seq, seq) || (cur.seq == seq && metric < cur.metric)
	}
	if accept {
		d.routes[node] = &dymoRoute{next: via, metric: metric, seq: seq, expires: now.Add(d.cfg.RouteLifetime)}
	}
	p, hadPending := d.pending[node]
	if accept && hadPending {
		if p.timer != nil {
			p.timer.Stop()
		}
		delete(d.pending, node)
	}
	d.mu.Unlock()
	if accept && hadPending {
		for _, fn := range p.done {
			fn(true)
		}
	}
}

// HandleRREQ processes one route request; exported for the Table 1
// micro-benchmark.
func (d *DYMO) HandleRREQ(msg *packetbb.Message, from mnet.Addr) {
	self := d.nic.Addr()
	if msg.Originator == self || len(msg.AddrBlocks) == 0 {
		return
	}
	target := msg.AddrBlocks[0].Addrs[0]
	d.learn(msg.Originator, from, int(msg.HopCount)+1, msg.SeqNum)

	key := [2]uint32{msg.Originator.Uint32(), uint32(msg.SeqNum)}
	now := d.clock.Now()
	d.mu.Lock()
	_, dup := d.dupes[key]
	d.dupes[key] = now
	d.mu.Unlock()
	if dup {
		return
	}
	if target == self {
		d.mu.Lock()
		d.seq++
		seq := d.seq
		d.mu.Unlock()
		rrep := &packetbb.Message{
			Type:       packetbb.MsgRREP,
			Originator: self,
			SeqNum:     seq,
			HopLimit:   d.cfg.HopLimit,
			AddrBlocks: []packetbb.AddrBlock{{Addrs: []mnet.Addr{msg.Originator}}},
		}
		d.send(rrep, from)
		return
	}
	if msg.HopLimit <= 1 {
		return
	}
	fwd := msg.Clone()
	fwd.HopLimit--
	fwd.HopCount++
	d.send(fwd, mnet.Broadcast)
}

// HandleRREP processes one route reply; exported for benchmarks.
func (d *DYMO) HandleRREP(msg *packetbb.Message, from mnet.Addr) {
	self := d.nic.Addr()
	if msg.Originator == self || len(msg.AddrBlocks) == 0 {
		return
	}
	reqOrig := msg.AddrBlocks[0].Addrs[0]
	d.learn(msg.Originator, from, int(msg.HopCount)+1, msg.SeqNum)
	if reqOrig == self {
		return
	}
	d.mu.Lock()
	r, ok := d.routes[reqOrig]
	now := d.clock.Now()
	valid := ok && r.expires.After(now)
	var next mnet.Addr
	if valid {
		next = r.next
	}
	d.mu.Unlock()
	if !valid || msg.HopLimit <= 1 {
		return
	}
	fwd := msg.Clone()
	fwd.HopLimit--
	fwd.HopCount++
	d.send(fwd, next)
}

func (d *DYMO) handleRERR(msg *packetbb.Message, from mnet.Addr) {
	if len(msg.AddrBlocks) == 0 {
		return
	}
	var still []mnet.Addr
	d.mu.Lock()
	for _, dead := range msg.AddrBlocks[0].Addrs {
		if r, ok := d.routes[dead]; ok && r.next == from {
			delete(d.routes, dead)
			still = append(still, dead)
		}
	}
	d.mu.Unlock()
	if len(still) > 0 && msg.HopLimit > 1 {
		fwd := msg.Clone()
		fwd.HopLimit--
		fwd.AddrBlocks[0] = packetbb.AddrBlock{Addrs: still}
		d.send(fwd, mnet.Broadcast)
	}
}

func (d *DYMO) sweep() {
	now := d.clock.Now()
	d.mu.Lock()
	for a, r := range d.routes {
		if !r.expires.After(now) {
			delete(d.routes, a)
		}
	}
	for k, t := range d.dupes {
		if now.Sub(t) > 30*time.Second {
			delete(d.dupes, k)
		}
	}
	d.mu.Unlock()
}

// Lookup resolves a destination.
func (d *DYMO) Lookup(dst mnet.Addr) (Hop, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.routes[dst]
	if !ok || !r.expires.After(d.clock.Now()) {
		return Hop{}, false
	}
	return Hop{NextHop: r.next, Metric: r.metric}, true
}
