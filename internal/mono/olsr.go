// Package mono contains monolithic, framework-free implementations of OLSR
// and DYMO — the comparators of the paper's evaluation (§6), standing in
// for Unik-olsrd 0.5 and DYMOUM 0.3. They speak the same PacketBB wire
// format over the same emulated medium as the MANETKit compositions, but
// are built as single self-contained structs: no component kernel, no
// event framework, no reusable substrates. The performance and footprint
// deltas between these and the MANETKit versions are exactly the framework
// overhead Tables 1 and 2 measure.
package mono

import (
	"sort"
	"sync"
	"time"

	"manetkit/internal/emunet"
	"manetkit/internal/mnet"
	"manetkit/internal/packetbb"
	"manetkit/internal/vclock"
)

// Hop is a monolithic routing-table entry.
type Hop struct {
	NextHop mnet.Addr
	Metric  int
}

// OLSRConfig parameterises the monolithic OLSR.
type OLSRConfig struct {
	HelloInterval time.Duration // default 2s
	TCInterval    time.Duration // default 5s
	Jitter        float64       // default 0.1
}

func (c *OLSRConfig) fill() {
	if c.HelloInterval <= 0 {
		c.HelloInterval = 2 * time.Second
	}
	if c.TCInterval <= 0 {
		c.TCInterval = 5 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.1
	}
}

// olsrNeighbor is a monolithic neighbour record.
type olsrNeighbor struct {
	sym       bool
	lastHeard time.Time
	twoHop    []mnet.Addr
}

// OLSR is the monolithic OLSR node: one struct, one lock, inline handlers.
type OLSR struct {
	nic   *emunet.NIC
	clock vclock.Clock
	cfg   OLSRConfig

	mu        sync.Mutex
	neighbors map[mnet.Addr]*olsrNeighbor
	selected  map[mnet.Addr]bool
	selectors map[mnet.Addr]bool
	topo      map[[2]mnet.Addr]time.Time
	ansnSeen  map[mnet.Addr]uint16
	routes    map[mnet.Addr]Hop
	dupes     map[[2]uint32]time.Time // {origU32, seq}
	ansn      uint16
	seq       uint16
	pktSeq    uint16
	running   bool

	helloTimer *vclock.Periodic
	tcTimer    *vclock.Periodic
	sweepTimer *vclock.Periodic
}

// NewOLSR builds a monolithic OLSR instance on the given NIC.
func NewOLSR(nic *emunet.NIC, clock vclock.Clock, cfg OLSRConfig) *OLSR {
	cfg.fill()
	return &OLSR{
		nic:       nic,
		clock:     clock,
		cfg:       cfg,
		neighbors: make(map[mnet.Addr]*olsrNeighbor),
		selected:  make(map[mnet.Addr]bool),
		selectors: make(map[mnet.Addr]bool),
		topo:      make(map[[2]mnet.Addr]time.Time),
		ansnSeen:  make(map[mnet.Addr]uint16),
		routes:    make(map[mnet.Addr]Hop),
		dupes:     make(map[[2]uint32]time.Time),
	}
}

// Start wires the NIC and begins beaconing.
func (o *OLSR) Start() {
	o.mu.Lock()
	if o.running {
		o.mu.Unlock()
		return
	}
	o.running = true
	o.mu.Unlock()
	o.nic.SetReceiver(o.receive)
	seed := int64(o.nic.Addr().Uint32())
	// Beacon immediately on startup, like a real daemon, then periodically.
	o.clock.AfterFunc(0, func() {
		o.mu.Lock()
		running := o.running
		o.mu.Unlock()
		if running {
			o.sendHello()
		}
	})
	o.helloTimer = vclock.NewPeriodic(o.clock, o.cfg.HelloInterval, o.cfg.Jitter, seed, o.sendHello)
	o.tcTimer = vclock.NewPeriodic(o.clock, o.cfg.TCInterval, o.cfg.Jitter, seed+1, o.sendTC)
	o.sweepTimer = vclock.NewPeriodic(o.clock, o.cfg.HelloInterval/2, 0, seed+2, o.sweep)
}

// Stop halts beaconing and detaches from the NIC.
func (o *OLSR) Stop() {
	o.mu.Lock()
	if !o.running {
		o.mu.Unlock()
		return
	}
	o.running = false
	o.mu.Unlock()
	o.nic.SetReceiver(nil)
	for _, t := range []*vclock.Periodic{o.helloTimer, o.tcTimer, o.sweepTimer} {
		if t != nil {
			t.Stop()
		}
	}
}

func (o *OLSR) receive(f emunet.Frame) {
	if len(f.Payload) == 0 || f.Payload[0] != 0x01 {
		return
	}
	pkt, err := packetbb.DecodePacket(f.Payload[1:])
	if err != nil {
		return
	}
	for i := range pkt.Messages {
		msg := &pkt.Messages[i]
		switch msg.Type {
		case packetbb.MsgHello:
			o.HandleHello(msg, f.Src)
		case packetbb.MsgTC:
			o.HandleTC(msg, f.Src)
		}
	}
}

func (o *OLSR) send(msg *packetbb.Message) {
	o.mu.Lock()
	o.pktSeq++
	seq := o.pktSeq
	o.mu.Unlock()
	pkt := &packetbb.Packet{SeqNum: seq, HasSeqNum: true, Messages: []packetbb.Message{*msg}}
	wire, err := packetbb.EncodePacket(pkt)
	if err != nil {
		return
	}
	_ = o.nic.Send(mnet.Broadcast, append([]byte{0x01}, wire...))
}

func (o *OLSR) sendHello() {
	o.send(o.buildHello())
}

func (o *OLSR) buildHello() *packetbb.Message {
	o.mu.Lock()
	msg := &packetbb.Message{
		Type:       packetbb.MsgHello,
		Originator: o.nic.Addr(),
		HopLimit:   1,
		TLVs:       []packetbb.TLV{{Type: packetbb.TLVWillingness, Value: packetbb.U8(3)}},
	}
	if len(o.neighbors) > 0 {
		blk := packetbb.AddrBlock{}
		addrs := make([]mnet.Addr, 0, len(o.neighbors))
		for a := range o.neighbors {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
		for _, a := range addrs {
			blk.Addrs = append(blk.Addrs, a)
		}
		for i, a := range addrs {
			st := packetbb.LinkStatusHeard
			if o.neighbors[a].sym {
				st = packetbb.LinkStatusSymmetric
			}
			blk.TLVs = append(blk.TLVs, packetbb.AddrTLV{
				Type: packetbb.ATLVLinkStatus, IndexStart: uint8(i), IndexStop: uint8(i),
				Value: packetbb.U8(st),
			})
			if o.selected[a] {
				blk.TLVs = append(blk.TLVs, packetbb.AddrTLV{
					Type: packetbb.ATLVMPR, IndexStart: uint8(i), IndexStop: uint8(i),
				})
			}
		}
		msg.AddrBlocks = append(msg.AddrBlocks, blk)
	}
	o.mu.Unlock()
	return msg
}

// HandleHello processes one HELLO; exported for the micro-benchmark.
func (o *OLSR) HandleHello(msg *packetbb.Message, from mnet.Addr) {
	self := o.nic.Addr()
	src := msg.Originator
	if src.IsUnspecified() {
		src = from
	}
	listsUs := false
	selectedUs := false
	var syms []mnet.Addr
	for bi := range msg.AddrBlocks {
		blk := &msg.AddrBlocks[bi]
		for i, a := range blk.Addrs {
			if a == self {
				listsUs = true
				if _, ok := blk.AddrTLVFor(packetbb.ATLVMPR, i); ok {
					selectedUs = true
				}
				continue
			}
			if tlv, ok := blk.AddrTLVFor(packetbb.ATLVLinkStatus, i); ok {
				if v, err := packetbb.ParseU8(tlv.Value); err == nil && v == packetbb.LinkStatusSymmetric {
					syms = append(syms, a)
				}
			}
		}
	}
	o.mu.Lock()
	nb := o.neighbors[src]
	if nb == nil {
		nb = &olsrNeighbor{}
		o.neighbors[src] = nb
	}
	nb.sym = listsUs
	nb.lastHeard = o.clock.Now()
	nb.twoHop = append(nb.twoHop[:0], syms...)
	if selectedUs {
		o.selectors[src] = true
	} else {
		delete(o.selectors, src)
	}
	o.selectMPRsLocked()
	o.computeRoutesLocked()
	o.mu.Unlock()
}

// HandleTC processes one topology-control message; exported for the
// micro-benchmark (Table 1 "Time to Process Message").
func (o *OLSR) HandleTC(msg *packetbb.Message, from mnet.Addr) {
	self := o.nic.Addr()
	if msg.Originator == self {
		return
	}
	ansn := uint16(0)
	if tlv, ok := msg.FindTLV(packetbb.TLVANSN); ok {
		if v, err := packetbb.ParseU16(tlv.Value); err == nil {
			ansn = v
		}
	}
	now := o.clock.Now()
	o.mu.Lock()
	if nb := o.neighbors[from]; nb == nil || !nb.sym {
		o.mu.Unlock()
		return
	}
	if prev, ok := o.ansnSeen[msg.Originator]; ok && serialOlder(ansn, prev) {
		o.mu.Unlock()
		return
	}
	if prev, ok := o.ansnSeen[msg.Originator]; !ok || serialOlder(prev, ansn) {
		for e := range o.topo {
			if e[0] == msg.Originator {
				delete(o.topo, e)
			}
		}
	}
	o.ansnSeen[msg.Originator] = ansn
	expiry := now.Add(3 * o.cfg.TCInterval)
	for bi := range msg.AddrBlocks {
		for _, a := range msg.AddrBlocks[bi].Addrs {
			if a != msg.Originator {
				o.topo[[2]mnet.Addr{msg.Originator, a}] = expiry
			}
		}
	}
	o.computeRoutesLocked()

	// MPR forwarding.
	key := [2]uint32{msg.Originator.Uint32(), uint32(msg.SeqNum)}
	_, dup := o.dupes[key]
	o.dupes[key] = now
	forward := !dup && o.selectors[from] && msg.HopLimit > 1
	o.mu.Unlock()

	if forward {
		fwd := msg.Clone()
		fwd.HopLimit--
		fwd.HopCount++
		o.send(fwd)
	}
}

func (o *OLSR) sendTC() {
	o.mu.Lock()
	if len(o.selectors) == 0 {
		o.mu.Unlock()
		return
	}
	o.seq++
	sel := make([]mnet.Addr, 0, len(o.selectors))
	for a := range o.selectors {
		sel = append(sel, a)
	}
	sort.Slice(sel, func(i, j int) bool { return sel[i].Less(sel[j]) })
	msg := &packetbb.Message{
		Type:       packetbb.MsgTC,
		Originator: o.nic.Addr(),
		HopLimit:   255,
		SeqNum:     o.seq,
		TLVs:       []packetbb.TLV{{Type: packetbb.TLVANSN, Value: packetbb.U16(o.ansn)}},
		AddrBlocks: []packetbb.AddrBlock{{Addrs: sel}},
	}
	o.dupes[[2]uint32{o.nic.Addr().Uint32(), uint32(o.seq)}] = o.clock.Now()
	o.mu.Unlock()
	o.send(msg)
}

func (o *OLSR) sweep() {
	now := o.clock.Now()
	hold := time.Duration(3.5 * float64(o.cfg.HelloInterval))
	o.mu.Lock()
	for a, nb := range o.neighbors {
		if now.Sub(nb.lastHeard) > hold {
			delete(o.neighbors, a)
			delete(o.selectors, a)
		}
	}
	for e, exp := range o.topo {
		if !exp.After(now) {
			delete(o.topo, e)
		}
	}
	for k, t := range o.dupes {
		if now.Sub(t) > 30*time.Second {
			delete(o.dupes, k)
		}
	}
	o.selectMPRsLocked()
	o.computeRoutesLocked()
	o.mu.Unlock()
}

// selectMPRsLocked runs inline greedy MPR selection.
func (o *OLSR) selectMPRsLocked() {
	self := o.nic.Addr()
	twoHop := make(map[mnet.Addr][]mnet.Addr)
	for nbAddr, nb := range o.neighbors {
		if !nb.sym {
			continue
		}
		for _, th := range nb.twoHop {
			if th == self {
				continue
			}
			if n2, ok := o.neighbors[th]; ok && n2 != nil {
				continue // 1-hop already
			}
			twoHop[th] = append(twoHop[th], nbAddr)
		}
	}
	prevLen := len(o.selected)
	selected := make(map[mnet.Addr]bool)
	uncovered := make(map[mnet.Addr]bool, len(twoHop))
	for d := range twoHop {
		uncovered[d] = true
	}
	for len(uncovered) > 0 {
		var best mnet.Addr
		bestCov := 0
		for nbAddr, nb := range o.neighbors {
			if !nb.sym || selected[nbAddr] {
				continue
			}
			cov := 0
			for d := range uncovered {
				for _, v := range twoHop[d] {
					if v == nbAddr {
						cov++
						break
					}
				}
			}
			if cov > bestCov || (cov == bestCov && cov > 0 && nbAddr.Less(best)) {
				best, bestCov = nbAddr, cov
			}
		}
		if bestCov == 0 {
			break
		}
		selected[best] = true
		for d := range uncovered {
			for _, v := range twoHop[d] {
				if v == best {
					delete(uncovered, d)
					break
				}
			}
		}
	}
	o.selected = selected
	if len(selected) != prevLen {
		o.ansn++
	}
}

// computeRoutesLocked rebuilds the routing table.
func (o *OLSR) computeRoutesLocked() {
	routes := make(map[mnet.Addr]Hop, len(o.routes))
	for a, nb := range o.neighbors {
		if nb.sym {
			routes[a] = Hop{NextHop: a, Metric: 1}
		}
	}
	for a, nb := range o.neighbors {
		if !nb.sym {
			continue
		}
		for _, th := range nb.twoHop {
			if th == o.nic.Addr() {
				continue
			}
			if _, ok := routes[th]; !ok {
				routes[th] = Hop{NextHop: a, Metric: 2}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for e := range o.topo {
			last, dest := e[0], e[1]
			if dest == o.nic.Addr() {
				continue
			}
			le, ok := routes[last]
			if !ok {
				continue
			}
			if cur, ok := routes[dest]; !ok || le.Metric+1 < cur.Metric {
				routes[dest] = Hop{NextHop: le.NextHop, Metric: le.Metric + 1}
				changed = true
			}
		}
	}
	o.routes = routes
}

// Lookup resolves a destination.
func (o *OLSR) Lookup(dst mnet.Addr) (Hop, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	h, ok := o.routes[dst]
	return h, ok
}

// RouteCount returns the number of reachable destinations.
func (o *OLSR) RouteCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.routes)
}

// serialOlder reports a older than b under 16-bit serial arithmetic.
func serialOlder(a, b uint16) bool {
	return a != b && ((a < b && b-a < 0x8000) || (a > b && a-b > 0x8000))
}
