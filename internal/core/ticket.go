package core

import "sync"

// TicketMutex is a FIFO-fair mutex. It implements the paper's two
// concurrency guarantees at once (§4.4): each ManetProtocol instance runs
// as a single critical section (handlers are atomic), and events delivered
// to the same instance are processed in the order they were issued — even
// under the thread-per-message model, where each event is shepherded by its
// own goroutine. Tickets are drawn synchronously at emission time and
// redeemed by the shepherding goroutine, so FIFO order is the emission
// order, not the goroutine scheduling order.
//
// Handoff is direct: each waiter parks on its own channel and is woken
// exactly once when its ticket is served, so a long queue of shepherding
// goroutines costs O(1) per handoff rather than a broadcast stampede.
type TicketMutex struct {
	mu      sync.Mutex
	next    uint64
	serving uint64
	waiters map[uint64]chan struct{}
}

// Ticket reserves the next place in line without blocking.
func (t *TicketMutex) Ticket() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	t.next++
	return n
}

// Wait blocks until the given ticket is served, entering the critical
// section.
func (t *TicketMutex) Wait(ticket uint64) {
	t.mu.Lock()
	if t.serving == ticket {
		t.mu.Unlock()
		return
	}
	if t.waiters == nil {
		t.waiters = make(map[uint64]chan struct{})
	}
	ch := make(chan struct{})
	t.waiters[ticket] = ch
	t.mu.Unlock()
	<-ch
}

// Lock draws a ticket and waits for it — plain mutex behaviour with FIFO
// fairness.
func (t *TicketMutex) Lock() {
	t.Wait(t.Ticket())
}

// Unlock leaves the critical section, admitting the next ticket holder.
func (t *TicketMutex) Unlock() {
	t.mu.Lock()
	t.serving++
	if ch, ok := t.waiters[t.serving]; ok {
		delete(t.waiters, t.serving)
		close(ch)
	}
	t.mu.Unlock()
}
