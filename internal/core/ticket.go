package core

import (
	"sync"
	"sync/atomic"
)

// TicketMutex is a FIFO-fair mutex. It implements the paper's two
// concurrency guarantees at once (§4.4): each ManetProtocol instance runs
// as a single critical section (handlers are atomic), and events delivered
// to the same instance are processed in the order they were issued — even
// under the thread-per-message model, where each event is shepherded by its
// own goroutine. Tickets are drawn synchronously at emission time and
// redeemed by the shepherding goroutine, so FIFO order is the emission
// order, not the goroutine scheduling order.
//
// The uncontended path is two atomic ops end to end: Ticket is a fetch-add,
// a served Wait is a single load, and Unlock is an add plus a load of the
// parked flag. Only actual waiters touch the internal mutex, parking each on
// its own channel for an O(1) direct handoff rather than a broadcast
// stampede.
type TicketMutex struct {
	next    atomic.Uint64
	serving atomic.Uint64
	// parked is true while any waiter is registered; Unlock skips the mutex
	// entirely when it is false. A waiter sets it (under mu) before
	// re-checking serving, so an unlocker that reads false is guaranteed the
	// waiter's re-check will observe the new serving value and self-serve.
	parked  atomic.Bool
	mu      sync.Mutex
	waiters map[uint64]chan struct{}
}

// Ticket reserves the next place in line without blocking.
//
//mk:hotpath
func (t *TicketMutex) Ticket() uint64 {
	return t.next.Add(1) - 1
}

// Wait blocks until the given ticket is served, entering the critical
// section.
//
//mk:hotpath
func (t *TicketMutex) Wait(ticket uint64) {
	if t.serving.Load() == ticket {
		return
	}
	t.mu.Lock()
	if t.waiters == nil {
		//mk:allow hotalloc contended park path; the uncontended fast path above is allocation-free
		t.waiters = make(map[uint64]chan struct{})
	}
	//mk:allow hotalloc contended park path; the uncontended fast path above is allocation-free
	ch := make(chan struct{})
	t.waiters[ticket] = ch
	t.parked.Store(true)
	if t.serving.Load() == ticket {
		// Served between the fast-path check and registration: withdraw.
		delete(t.waiters, ticket)
		if len(t.waiters) == 0 {
			t.parked.Store(false)
		}
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	<-ch
}

// Lock draws a ticket and waits for it — plain mutex behaviour with FIFO
// fairness.
//
//mk:hotpath
func (t *TicketMutex) Lock() {
	t.Wait(t.Ticket())
}

// Unlock leaves the critical section, admitting the next ticket holder.
//
//mk:hotpath
func (t *TicketMutex) Unlock() {
	s := t.serving.Add(1)
	if !t.parked.Load() {
		return
	}
	t.mu.Lock()
	if ch, ok := t.waiters[s]; ok {
		delete(t.waiters, s)
		if len(t.waiters) == 0 {
			t.parked.Store(false)
		}
		close(ch)
	}
	t.mu.Unlock()
}
