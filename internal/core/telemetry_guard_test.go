package core_test

// Telemetry overhead guard. This lives in an external test package on
// purpose: core cannot import telemetry (telemetry -> inspect -> core),
// so the proof that an attached-but-dormant bus costs nothing on the
// dispatch path has to be made from outside the package boundary —
// exactly where real callers stand.

import (
	"testing"
	"time"

	"manetkit/internal/core"
	"manetkit/internal/event"
	"manetkit/internal/metrics"
	"manetkit/internal/mnet"
	"manetkit/internal/telemetry"
	"manetkit/internal/trace"
	"manetkit/internal/vclock"
)

var guardEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// instrumentedEmit benchmarks the provider->requirer dispatch of a fully
// instrumented manager (metrics + tracing). When bus is non-nil it is
// attached to the tracer first, modelling a deployment that carries the
// streaming layer but has no live consumers.
func instrumentedEmit(b *testing.B, bus *telemetry.Bus) {
	reg := metrics.NewRegistry()
	tr := trace.New(guardEpoch, 1<<12)
	if bus != nil {
		telemetry.AttachTracer(bus, tr)
	}
	m, err := core.NewManager(core.Config{
		Node:    mnet.MustParseAddr("10.0.0.1"),
		Clock:   vclock.NewVirtual(guardEpoch),
		Model:   core.SingleThreaded,
		Metrics: reg,
		Tracer:  tr,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(m.Close)
	src := core.NewProtocol("src")
	src.SetTuple(event.Tuple{Provided: []event.Type{event.HelloIn}})
	sink := core.NewProtocol("sink")
	sink.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.HelloIn}}})
	sink.AddHandler(core.NewHandler("h", event.HelloIn, func(*core.Context, *event.Event) error { return nil }))
	for _, p := range []*core.Protocol{src, sink} {
		if err := m.Deploy(p); err != nil {
			b.Fatal(err)
		}
	}
	ev := &event.Event{Type: event.HelloIn}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = src.Emit(ev)
	}
}

// TestTelemetryOverheadGuard: attaching a telemetry bus with no recorder
// and no subscribers to an instrumented node must not change the dispatch
// cost — same allocations, and ns/op within noise (the dormant path is
// one atomic load behind the tracer's observer hook).
func TestTelemetryOverheadGuard(t *testing.T) {
	bus := telemetry.New(telemetry.Config{Epoch: guardEpoch, RecorderCapacity: -1})
	defer bus.Close()
	if bus.Active() {
		t.Fatal("bus with no recorder and no subscribers must be dormant")
	}

	base := testing.Benchmark(func(b *testing.B) { instrumentedEmit(b, nil) })
	withBus := testing.Benchmark(func(b *testing.B) { instrumentedEmit(b, bus) })
	if base.NsPerOp() <= 0 {
		t.Skip("benchmark resolution too coarse on this platform")
	}

	if d := withBus.AllocsPerOp() - base.AllocsPerOp(); d != 0 {
		t.Fatalf("dormant bus added %d allocs per dispatch (base %d, with bus %d)",
			d, base.AllocsPerOp(), withBus.AllocsPerOp())
	}
	ratio := float64(withBus.NsPerOp()) / float64(base.NsPerOp())
	t.Logf("instrumented dispatch %dns/op, with dormant bus %dns/op (ratio %.3f)",
		base.NsPerOp(), withBus.NsPerOp(), ratio)
	if ratio > 1.5 {
		t.Fatalf("dormant telemetry bus costs %.2fx on the dispatch path (budget 1.5x)", ratio)
	}
	// And nothing leaked into the bus itself.
	if bus.Seq() != 0 {
		t.Fatalf("dormant bus recorded %d events", bus.Seq())
	}
}
