package core

import (
	"sync"
	"testing"
	"time"

	"manetkit/internal/event"
	"manetkit/internal/mnet"
	"manetkit/internal/vclock"
)

func TestTicketMutexFIFO(t *testing.T) {
	var tm TicketMutex
	tm.Lock()
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	// Draw tickets in a known order, redeem from goroutines started in
	// reverse; the lock must still serve ticket order.
	tickets := make([]uint64, 10)
	for i := range tickets {
		tickets[i] = tm.Ticket()
	}
	for i := len(tickets) - 1; i >= 0; i-- {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tm.Wait(tickets[i])
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			tm.Unlock()
		}()
	}
	tm.Unlock()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("service order = %v", order)
		}
	}
}

func TestTicketMutexPlainLockUnlock(t *testing.T) {
	var tm TicketMutex
	n := 0
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tm.Lock()
			n++
			tm.Unlock()
		}()
	}
	wg.Wait()
	if n != 50 {
		t.Fatalf("n = %d", n)
	}
}

// orderSink records the order field of delivered events.
type orderSink struct {
	p   *Protocol
	mu  sync.Mutex
	got []string
}

func newOrderSink(name string) *orderSink {
	s := &orderSink{p: NewProtocol(name)}
	s.p.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.MsgIn}}})
	s.p.AddHandler(NewHandler(name+"-h", event.MsgIn, func(ctx *Context, ev *event.Event) error {
		s.mu.Lock()
		s.got = append(s.got, ev.Device) // Device abused as a label
		s.mu.Unlock()
		return nil
	}))
	return s
}

func (s *orderSink) labels() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.got...)
}

func runModelOrderTest(t *testing.T, model Model, setup func(m *Manager)) {
	t.Helper()
	clk := vclock.NewVirtual(epoch)
	m, err := NewManager(Config{Node: mnet.MustParseAddr("10.0.0.1"), Clock: clk, Model: model, PoolSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	src := newRecorder(t, "src", event.Tuple{Provided: []event.Type{event.HelloIn}})
	s1 := newOrderSink("sink1")
	s2 := newOrderSink("sink2")
	for _, u := range []*Protocol{src.p, s1.p, s2.p} {
		if err := m.Deploy(u); err != nil {
			t.Fatal(err)
		}
	}
	if setup != nil {
		setup(m)
	}
	const n = 200
	labels := make([]string, n)
	for i := 0; i < n; i++ {
		labels[i] = string(rune('a'+i%26)) + string(rune('0'+i%10))
		m.emit("src", &event.Event{Type: event.HelloIn, Device: labels[i]})
	}
	m.WaitIdle()
	for _, s := range []*orderSink{s1, s2} {
		got := s.labels()
		if len(got) != n {
			t.Fatalf("%s(%v): got %d events, want %d", s.p.Name(), model, len(got), n)
		}
		for i := range got {
			if got[i] != labels[i] {
				t.Fatalf("%s(%v): FIFO violated at %d: %q != %q", s.p.Name(), model, i, got[i], labels[i])
			}
		}
	}
}

func TestFIFOOrderSingleThreaded(t *testing.T) { runModelOrderTest(t, SingleThreaded, nil) }
func TestFIFOOrderPerMessage(t *testing.T)     { runModelOrderTest(t, PerMessage, nil) }
func TestFIFOOrderPerN(t *testing.T)           { runModelOrderTest(t, PerN, nil) }
func TestFIFOOrderDedicated(t *testing.T) {
	runModelOrderTest(t, PerMessage, func(m *Manager) {
		if err := m.EnableDedicatedThread("sink1"); err != nil {
			t.Fatal(err)
		}
	})
}

func TestModelString(t *testing.T) {
	if SingleThreaded.String() != "single-threaded" ||
		PerMessage.String() != "thread-per-message" ||
		PerN.String() != "thread-per-n-messages" {
		t.Fatal("model names wrong")
	}
	if Model(99).String() != "Model(99)" {
		t.Fatal("unknown model rendering wrong")
	}
}

func TestSetModelValidation(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	if err := m.SetModel(Model(42)); err == nil {
		t.Fatal("bogus model accepted")
	}
	if err := m.SetModel(PerN); err != nil {
		t.Fatal(err)
	}
	if m.Model() != PerN {
		t.Fatalf("Model = %v", m.Model())
	}
}

func TestDedicatedThreadHandoffDoesNotBlockEmitter(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	slow := NewProtocol("slow")
	slow.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.HelloIn}}})
	release := make(chan struct{})
	var processed int
	var mu sync.Mutex
	slow.AddHandler(NewHandler("slow-h", event.HelloIn, func(*Context, *event.Event) error {
		<-release
		mu.Lock()
		processed++
		mu.Unlock()
		return nil
	}))
	src := newRecorder(t, "src", event.Tuple{Provided: []event.Type{event.HelloIn}})
	m.Deploy(src.p)
	m.Deploy(slow)
	if err := m.EnableDedicatedThread("slow"); err != nil {
		t.Fatal(err)
	}
	// Under the dedicated model the emit returns immediately even though the
	// handler blocks.
	done := make(chan struct{})
	go func() {
		m.emit("src", &event.Event{Type: event.HelloIn})
		m.emit("src", &event.Event{Type: event.HelloIn})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("emit blocked on dedicated unit")
	}
	close(release)
	m.WaitIdle()
	mu.Lock()
	defer mu.Unlock()
	if processed != 2 {
		t.Fatalf("processed = %d", processed)
	}
}

func TestPreferDedicatedThreadAtDeploy(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	p := NewProtocol("p")
	p.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.HelloIn}}})
	var n int
	var mu sync.Mutex
	p.AddHandler(NewHandler("h", event.HelloIn, func(*Context, *event.Event) error {
		mu.Lock()
		n++
		mu.Unlock()
		return nil
	}))
	p.PreferDedicatedThread(true)
	src := newRecorder(t, "src", event.Tuple{Provided: []event.Type{event.HelloIn}})
	m.Deploy(src.p)
	if err := m.Deploy(p); err != nil {
		t.Fatal(err)
	}
	m.emit("src", &event.Event{Type: event.HelloIn})
	m.WaitIdle()
	mu.Lock()
	defer mu.Unlock()
	if n != 1 {
		t.Fatalf("n = %d", n)
	}
	if err := m.DisableDedicatedThread("p"); err != nil {
		t.Fatal(err)
	}
}

func TestHandlersAtomicUnderPerMessage(t *testing.T) {
	// Two events racing into one protocol must not interleave inside the
	// handler (critical-section guarantee).
	clk := vclock.NewVirtual(epoch)
	m, err := NewManager(Config{Node: mnet.MustParseAddr("10.0.0.1"), Clock: clk, Model: PerMessage})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	p := NewProtocol("p")
	p.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.HelloIn}}})
	inside := 0
	maxInside := 0
	p.AddHandler(NewHandler("h", event.HelloIn, func(*Context, *event.Event) error {
		inside++
		if inside > maxInside {
			maxInside = inside
		}
		time.Sleep(100 * time.Microsecond)
		inside--
		return nil
	}))
	src := newRecorder(t, "src", event.Tuple{Provided: []event.Type{event.HelloIn}})
	m.Deploy(src.p)
	m.Deploy(p)
	for i := 0; i < 50; i++ {
		m.emit("src", &event.Event{Type: event.HelloIn})
	}
	m.WaitIdle()
	if maxInside != 1 {
		t.Fatalf("handler concurrency observed: %d", maxInside)
	}
}
