package core

import (
	"testing"

	"manetkit/internal/event"
	"manetkit/internal/mnet"
	"manetkit/internal/vclock"
)

func benchManager(b *testing.B, model Model) *Manager {
	b.Helper()
	m, err := NewManager(Config{
		Node:  mnet.MustParseAddr("10.0.0.1"),
		Clock: vclock.NewVirtual(epoch),
		Model: model,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(m.Close)
	return m
}

func deployPair(b *testing.B, m *Manager) *Protocol {
	b.Helper()
	src := NewProtocol("src")
	src.SetTuple(event.Tuple{Provided: []event.Type{event.HelloIn}})
	sink := NewProtocol("sink")
	sink.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.HelloIn}}})
	sink.AddHandler(NewHandler("h", event.HelloIn, func(*Context, *event.Event) error { return nil }))
	for _, p := range []*Protocol{src, sink} {
		if err := m.Deploy(p); err != nil {
			b.Fatal(err)
		}
	}
	return src
}

// BenchmarkEmitDirect measures the provider->requirer path.
func BenchmarkEmitDirect(b *testing.B) {
	m := benchManager(b, SingleThreaded)
	src := deployPair(b, m)
	ev := &event.Event{Type: event.HelloIn}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = src.Emit(ev)
	}
}

// BenchmarkEmitThroughInterposer adds one interposer to the path.
func BenchmarkEmitThroughInterposer(b *testing.B) {
	m := benchManager(b, SingleThreaded)
	src := deployPair(b, m)
	inter := NewProtocol("inter")
	inter.SetTuple(event.Tuple{
		Required: []event.Requirement{{Type: event.HelloIn}},
		Provided: []event.Type{event.HelloIn},
	})
	inter.AddHandler(NewHandler("fwd", event.HelloIn, func(ctx *Context, ev *event.Event) error {
		ctx.Emit(ev)
		return nil
	}))
	if err := m.Deploy(inter); err != nil {
		b.Fatal(err)
	}
	ev := &event.Event{Type: event.HelloIn}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = src.Emit(ev)
	}
}

// BenchmarkEmitPerMessage measures the goroutine-shepherded path.
func BenchmarkEmitPerMessage(b *testing.B) {
	m := benchManager(b, PerMessage)
	src := deployPair(b, m)
	ev := &event.Event{Type: event.HelloIn}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = src.Emit(ev)
	}
	b.StopTimer()
	m.WaitIdle()
}

// BenchmarkRewire measures topology re-derivation for a 6-unit deployment.
func BenchmarkRewire(b *testing.B) {
	m := benchManager(b, SingleThreaded)
	types := []event.Type{event.HelloIn, event.TCIn, event.REIn, event.TCOut, event.HelloOut}
	for i, name := range []string{"a", "b", "c", "d", "e", "f"} {
		p := NewProtocol(name)
		p.SetTuple(event.Tuple{
			Required: []event.Requirement{{Type: types[i%len(types)]}},
			Provided: []event.Type{types[(i+2)%len(types)]},
		})
		if err := m.Deploy(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Rewire()
	}
}

// BenchmarkTicketMutexHandoff measures the FIFO lock's direct handoff.
func BenchmarkTicketMutexHandoff(b *testing.B) {
	var tm TicketMutex
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tm.Lock()
			tm.Unlock() //nolint:staticcheck // empty section is the measurement
		}
	})
}
