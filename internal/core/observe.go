package core

// Observability bundles: instruments are resolved once, when a Manager or
// Protocol is constructed/attached, and kept as plain pointers so the hot
// paths (emit, deliver, Accept) never touch the registry. When both the
// metrics registry and the tracer are disabled the bundle itself is nil,
// making the entire instrumented path a single nil check — the property
// the overhead guard test pins down.

import (
	"manetkit/internal/metrics"
	"manetkit/internal/mnet"
	"manetkit/internal/trace"
)

// managerObs is the Framework Manager's instrument bundle.
type managerObs struct {
	reg     *metrics.Registry
	tracer  *trace.Tracer
	nodeStr string

	emitted   *metrics.Counter
	delivered *metrics.Counter
	dropped   *metrics.Counter
	rewires   *metrics.Counter
	tickets   *metrics.Counter // tickets drawn by asynchronous models

	rewireLat  *metrics.Histogram // wall time to re-derive the topology
	ticketWait *metrics.Histogram // wall time a shepherd waited on its ticket
}

// newManagerObs returns nil when observability is fully disabled.
func newManagerObs(node mnet.Addr, reg *metrics.Registry, tr *trace.Tracer) *managerObs {
	if reg == nil && tr == nil {
		return nil
	}
	return &managerObs{
		reg:        reg,
		tracer:     tr,
		nodeStr:    node.String(),
		emitted:    reg.Counter("core_emitted"),
		delivered:  reg.Counter("core_delivered"),
		dropped:    reg.Counter("core_dropped"),
		rewires:    reg.Counter("core_rewires"),
		tickets:    reg.Counter("core_tickets"),
		rewireLat:  reg.Histogram("core_rewire_latency"),
		ticketWait: reg.Histogram("core_ticket_wait"),
	}
}

// protoObs is a Protocol's instrument bundle, rebuilt on every Attach.
type protoObs struct {
	tracer     *trace.Tracer
	nodeStr    string
	handlerLat *metrics.Histogram // wall time per handler invocation
}

// newProtoObs returns nil when the deployment carries no observability.
func newProtoObs(env *Env) *protoObs {
	if env == nil || (env.metrics == nil && env.tracer == nil) {
		return nil
	}
	return &protoObs{
		tracer:     env.tracer,
		nodeStr:    env.Node.String(),
		handlerLat: env.metrics.Histogram("core_handler_latency"),
	}
}
