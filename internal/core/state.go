package core

import (
	"sync"

	"manetkit/internal/kernel"
)

// StateComponent is a generic S element: a named component wrapping an
// arbitrary protocol-state value. Reifying state into a distinct component
// (the CFS pattern's S) is what makes the paper's state carry-over work:
// replacing a protocol while keeping its state is just moving this
// component to the new instance (§4.5).
type StateComponent struct {
	base *kernel.Base

	mu    sync.Mutex
	value any
}

var _ kernel.Component = (*StateComponent)(nil)

// NewStateComponent wraps value as an S element with the given component
// name (by convention "state").
func NewStateComponent(name string, value any) *StateComponent {
	s := &StateComponent{base: kernel.NewBase(name), value: value}
	s.base.Provide("IState", s)
	return s
}

func (s *StateComponent) Name() string                     { return s.base.Name() }
func (s *StateComponent) Provided() map[string]any         { return s.base.Provided() }
func (s *StateComponent) ReceptacleNames() []string        { return s.base.ReceptacleNames() }
func (s *StateComponent) Connect(r string, i any) error    { return s.base.Connect(r, i) }
func (s *StateComponent) Disconnect(r string, i any) error { return s.base.Disconnect(r, i) }

// Value returns the wrapped state.
func (s *StateComponent) Value() any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.value
}

// SetValue replaces the wrapped state.
func (s *StateComponent) SetValue(v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.value = v
}

// StateValue retrieves a protocol's S-element value with its concrete type.
// ok is false when the protocol has no S element, the S element is not a
// StateComponent, or the value has a different type.
func StateValue[T any](p *Protocol) (T, bool) {
	var zero T
	c := p.StateElement()
	if c == nil {
		return zero, false
	}
	sc, ok := c.(*StateComponent)
	if !ok {
		return zero, false
	}
	v, ok := sc.Value().(T)
	return v, ok
}
