package core

import (
	"testing"
	"time"

	"manetkit/internal/event"
	"manetkit/internal/metrics"
	"manetkit/internal/mnet"
	"manetkit/internal/trace"
	"manetkit/internal/vclock"
)

// newObservedMgr builds a manager with metrics and tracing enabled.
func newObservedMgr(t *testing.T, model Model) (*Manager, *metrics.Registry, *trace.Tracer) {
	t.Helper()
	reg := metrics.NewRegistry()
	tr := trace.New(epoch, 1<<12)
	m, err := NewManager(Config{
		Node:    mnet.MustParseAddr("10.0.0.1"),
		Clock:   vclock.NewVirtual(epoch),
		Model:   model,
		Metrics: reg,
		Tracer:  tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, reg, tr
}

func TestObservedDispatchCountsAndTraces(t *testing.T) {
	m, reg, tr := newObservedMgr(t, SingleThreaded)
	prov := newRecorder(t, "provider", event.Tuple{Provided: []event.Type{event.TCOut}})
	req := newRecorder(t, "requirer", event.Tuple{Required: []event.Requirement{{Type: event.TCOut}}})
	for _, p := range []*Protocol{prov.p, req.p} {
		if err := m.Deploy(p); err != nil {
			t.Fatal(err)
		}
	}
	emitFrom(t, m, "provider", &event.Event{Type: event.TCOut})
	emitFrom(t, m, "provider", &event.Event{Type: event.TCOut})

	snap := reg.Snapshot()
	if got := snap.Counters["core_emitted"]; got != 2 {
		t.Fatalf("core_emitted = %d, want 2", got)
	}
	if got := snap.Counters["core_delivered"]; got != 2 {
		t.Fatalf("core_delivered = %d, want 2", got)
	}
	// Deploys re-derive the topology.
	if got := snap.Counters["core_rewires"]; got < 2 {
		t.Fatalf("core_rewires = %d, want >= 2", got)
	}

	var emits, dispatches, handles int
	for _, s := range tr.Spans() {
		switch s.Kind {
		case trace.KindEmit:
			emits++
			if s.Node != "10.0.0.1" || s.Event != string(event.TCOut) {
				t.Fatalf("bad emit span: %+v", s)
			}
		case trace.KindDispatch:
			dispatches++
			if s.From != "provider" || s.To != "requirer" {
				t.Fatalf("bad dispatch span: %+v", s)
			}
		case trace.KindHandle:
			handles++
			if s.To != "requirer" {
				t.Fatalf("bad handle span: %+v", s)
			}
		}
	}
	if emits != 2 || dispatches != 2 || handles != 2 {
		t.Fatalf("spans: emit=%d dispatch=%d handle=%d, want 2 each", emits, dispatches, handles)
	}
}

func TestObservedDropOnUnroutedEvent(t *testing.T) {
	m, reg, tr := newObservedMgr(t, SingleThreaded)
	prov := newRecorder(t, "provider", event.Tuple{Provided: []event.Type{event.TCOut}})
	if err := m.Deploy(prov.p); err != nil {
		t.Fatal(err)
	}
	emitFrom(t, m, "provider", &event.Event{Type: event.TCOut})
	if got := reg.Snapshot().Counters["core_dropped"]; got != 1 {
		t.Fatalf("core_dropped = %d, want 1", got)
	}
	var drops int
	for _, s := range tr.Spans() {
		if s.Kind == trace.KindDrop {
			drops++
		}
	}
	if drops != 1 {
		t.Fatalf("drop spans = %d, want 1", drops)
	}
}

func TestObservedAsyncModelCountsTickets(t *testing.T) {
	m, reg, _ := newObservedMgr(t, PerMessage)
	prov := newRecorder(t, "provider", event.Tuple{Provided: []event.Type{event.TCOut}})
	req := newRecorder(t, "requirer", event.Tuple{Required: []event.Requirement{{Type: event.TCOut}}})
	for _, p := range []*Protocol{prov.p, req.p} {
		if err := m.Deploy(p); err != nil {
			t.Fatal(err)
		}
	}
	emitFrom(t, m, "provider", &event.Event{Type: event.TCOut})
	snap := reg.Snapshot()
	if got := snap.Counters["core_tickets"]; got != 1 {
		t.Fatalf("core_tickets = %d, want 1", got)
	}
	if got := snap.Histograms["core_ticket_wait"].Count; got != 1 {
		t.Fatalf("core_ticket_wait count = %d, want 1", got)
	}
}

func TestObservedDedicatedQueueGauge(t *testing.T) {
	m, reg, _ := newObservedMgr(t, SingleThreaded)
	prov := newRecorder(t, "provider", event.Tuple{Provided: []event.Type{event.TCOut}})
	req := newRecorder(t, "requirer", event.Tuple{Required: []event.Requirement{{Type: event.TCOut}}})
	for _, p := range []*Protocol{prov.p, req.p} {
		if err := m.Deploy(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.EnableDedicatedThread("requirer"); err != nil {
		t.Fatal(err)
	}
	emitFrom(t, m, "provider", &event.Event{Type: event.TCOut})
	snap := reg.Snapshot()
	if _, ok := snap.Gauges["core_dedicated_depth:requirer"]; !ok {
		t.Fatalf("dedicated depth gauge missing: %+v", snap.Gauges)
	}
	if got := snap.Counters["core_delivered"]; got != 1 {
		t.Fatalf("core_delivered = %d, want 1", got)
	}
}

// A manager built without observability must carry a nil bundle: the whole
// instrumented path is then a single nil check per site.
func TestDisabledObservabilityIsNil(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	if m.obs != nil {
		t.Fatal("manager without metrics/tracer carries a non-nil obs bundle")
	}
	p := NewProtocol("p")
	p.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.TCOut}}})
	if err := m.Deploy(p); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	obs := p.obs
	p.mu.Unlock()
	if obs != nil {
		t.Fatal("protocol in unobserved deployment carries a non-nil obs bundle")
	}
}

// TestObservabilityOverheadGuard is the <5% budget check from the issue:
// the disabled path's per-dispatch cost (a handful of nil-receiver method
// calls) must stay below 5% of the uninstrumented direct-dispatch cost.
// Measured as ratio of ns/op so the bound holds on any hardware.
func TestObservabilityOverheadGuard(t *testing.T) {
	if testing.Short() {
		// Keep it, but cheap: -short still runs the guard, just with the
		// default 1s benchtime halved by benchTime below being untunable;
		// the measurement itself is fast either way.
		t.Log("running overhead guard in short mode")
	}

	// Cost of one uninstrumented dispatch (provider -> requirer, inline).
	dispatch := testing.Benchmark(BenchmarkEmitDirect)
	perDispatch := float64(dispatch.NsPerOp())
	if perDispatch <= 0 {
		t.Skip("benchmark resolution too coarse on this platform")
	}

	// Cost of the checks the instrumentation adds per dispatch. With the
	// RCU dispatch plans the disabled steady-state path never calls an
	// instrument method: every site is one nil-bundle pointer load plus a
	// branch (one in emit, two per target delivery, two per handler demux —
	// five on the direct path; the nil-safe queue instruments only exist on
	// the dedicated-thread hand-off, which direct dispatch never takes).
	// Model it as 8 such guarded branches, loaded through a real manager so
	// the compiler cannot fold them — a strict over-count of the real path.
	unobs, err := NewManager(Config{
		Node:  mnet.MustParseAddr("10.0.0.9"),
		Clock: vclock.NewVirtual(epoch),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer unobs.Close()
	// 1024 sites per benchmark op amortise the loop bookkeeping below the
	// 1ns NsPerOp resolution; scale back down to the 8-site model.
	const sitesPerOp = 1024
	nilSite := testing.Benchmark(func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			for s := 0; s < sitesPerOp; s++ {
				if unobs.obs != nil {
					n++
				}
			}
		}
		if n != 0 {
			b.Fatalf("observability bundle unexpectedly present (%d)", n)
		}
	})
	perSite := float64(nilSite.NsPerOp()) * 8 / sitesPerOp

	ratio := perSite / perDispatch
	t.Logf("dispatch=%.1fns nil-instrumentation=%.1fns overhead=%.2f%%",
		perDispatch, perSite, 100*ratio)
	if ratio >= 0.05 {
		t.Fatalf("disabled observability overhead %.2f%% >= 5%% budget (dispatch %.1fns, nil sites %.1fns)",
			100*ratio, perDispatch, perSite)
	}
}

// BenchmarkEmitDirectInstrumented is BenchmarkEmitDirect with metrics and
// tracing enabled — the CI-tracked companion number.
func BenchmarkEmitDirectInstrumented(b *testing.B) {
	reg := metrics.NewRegistry()
	tr := trace.New(epoch, 1<<12)
	m, err := NewManager(Config{
		Node:    mnet.MustParseAddr("10.0.0.1"),
		Clock:   vclock.NewVirtual(epoch),
		Model:   SingleThreaded,
		Metrics: reg,
		Tracer:  tr,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(m.Close)
	src := deployPair(b, m)
	ev := &event.Event{Type: event.HelloIn}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = src.Emit(ev)
	}
}

// TestLatencyHistogramsUseDeploymentClock pins the fix for latency
// histograms that previously sampled time.Now directly (mkvet: determinism):
// under a virtual clock, real wall time spent in handlers, rewires and
// ticket waits must not leak into core_handler_latency, core_rewire_latency
// or core_ticket_wait — the virtual clock stands still, so their sums stay
// exactly zero no matter how slow the handler really is.
func TestLatencyHistogramsUseDeploymentClock(t *testing.T) {
	m, reg, _ := newObservedMgr(t, PerMessage)
	prov := newRecorder(t, "provider", event.Tuple{Provided: []event.Type{event.TCOut}})
	slow := NewProtocol("requirer")
	slow.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.TCOut}}})
	h := NewHandler("slow-h", event.Any, func(ctx *Context, ev *event.Event) error {
		time.Sleep(2 * time.Millisecond) // real wall time; the deployment clock is virtual
		return nil
	})
	if err := slow.AddHandler(h); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*Protocol{prov.p, slow} {
		if err := m.Deploy(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		emitFrom(t, m, "provider", &event.Event{Type: event.TCOut})
	}
	snap := reg.Snapshot()
	for _, name := range []string{"core_handler_latency", "core_rewire_latency"} {
		if snap.Histograms[name].Count == 0 {
			t.Fatalf("%s recorded no samples", name)
		}
	}
	for _, name := range []string{"core_handler_latency", "core_rewire_latency", "core_ticket_wait"} {
		if sum := snap.Histograms[name].Sum; sum != 0 {
			t.Fatalf("%s accumulated %v of wall time under a virtual clock", name, sum)
		}
	}
}
