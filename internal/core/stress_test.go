package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"manetkit/internal/event"
	"manetkit/internal/mnet"
	"manetkit/internal/trace"
	"manetkit/internal/vclock"
)

// TestEmitReconfigureStress hammers the lock-free emit path from many
// goroutines while the topology churns underneath it: Deploy, Undeploy,
// Rewire, SetTuple, dedicated-thread flips and concurrency-model switches
// all publish fresh dispatch plans concurrently with emission. Run under
// -race in CI, it proves plan-swap safety: readers see either the whole old
// topology or the whole new one, never a torn mix.
func TestEmitReconfigureStress(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)

	prov := newRecorder(t, "provider", event.Tuple{Provided: []event.Type{event.TCOut}})
	req := newRecorder(t, "requirer", event.Tuple{Required: []event.Requirement{{Type: event.TCOut}}})
	if err := m.Deploy(prov.p); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy(req.p); err != nil {
		t.Fatal(err)
	}

	const (
		emitters  = 4
		perEmit   = 1500
		churnIter = 60
	)
	var wg sync.WaitGroup
	var emitErrs atomic.Uint64

	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perEmit; i++ {
				if err := prov.p.Emit(&event.Event{Type: event.TCOut}); err != nil {
					// Only the not-deployed window during churn is legal.
					emitErrs.Add(1)
				}
			}
		}()
	}

	// Churn 1: a transient interposer appears and disappears, so emitters
	// race against plans that insert and remove a hop mid-chain.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < churnIter; i++ {
			mid := NewProtocol(fmt.Sprintf("mid-%d", i))
			mid.SetTuple(event.Tuple{
				Provided: []event.Type{event.TCOut},
				Required: []event.Requirement{{Type: event.TCOut}},
			})
			if err := mid.AddHandler(NewHandler("fwd", event.TCOut, func(ctx *Context, ev *event.Event) error {
				ctx.Emit(&event.Event{Type: event.TCOut, Msg: ev.Msg})
				return nil
			})); err != nil {
				t.Error(err)
				return
			}
			if err := m.Deploy(mid); err != nil {
				t.Error(err)
				return
			}
			if err := m.Undeploy(mid.Name()); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Churn 2: the requirer's dedicated thread flips on and off and its
	// tuple is rewritten, forcing both runner swaps and full replans.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < churnIter; i++ {
			if err := m.EnableDedicatedThread("requirer"); err != nil {
				t.Error(err)
				return
			}
			if err := m.DisableDedicatedThread("requirer"); err != nil {
				t.Error(err)
				return
			}
			req.p.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.TCOut}}})
			m.Rewire()
		}
	}()

	// Churn 3: the global concurrency model cycles through all three.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < churnIter; i++ {
			for _, mod := range []Model{PerMessage, PerN, SingleThreaded} {
				if err := m.SetModel(mod); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	wg.Wait()
	_ = m.SetModel(SingleThreaded)
	m.WaitIdle()

	if n := emitErrs.Load(); n != 0 {
		t.Fatalf("Emit returned %d errors for a continuously deployed protocol", n)
	}
	// Every emitted event must be accounted: delivered or dropped, never
	// silently lost. Interposer hops re-emit, so emitted can exceed the
	// emitter count, but the ledger must balance.
	st := m.Stats()
	if st.Emitted < emitters*perEmit {
		t.Fatalf("emitted %d < %d sent", st.Emitted, emitters*perEmit)
	}
	if st.Delivered+st.Dropped < st.Emitted {
		t.Fatalf("ledger leak: emitted=%d delivered=%d dropped=%d", st.Emitted, st.Delivered, st.Dropped)
	}
}

// TestVanishedInterposerCountsDrop pins the fix for the silent-loss bug:
// when a compiled route points at an interposer whose unit record has
// vanished (the Undeploy/Rewire race window), the event must be counted as
// dropped and traced, not lost without a ledger entry. The state is built
// white-box because every public mutation immediately replans.
func TestVanishedInterposerCountsDrop(t *testing.T) {
	tr := trace.New(epoch, 1<<8)
	m, err := NewManager(Config{
		Node:   mnet.MustParseAddr("10.0.0.1"),
		Clock:  vclock.NewVirtual(epoch),
		Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	m.mu.Lock()
	m.chains = map[event.Type]*chain{
		event.TCOut: {
			providers:   map[string]bool{"provider": true},
			interposers: []string{"ghost"},
		},
	}
	m.plan.Store(m.buildPlanLocked())
	m.mu.Unlock()

	m.emit("provider", &event.Event{Type: event.TCOut})

	st := m.Stats()
	if st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
	var drops int
	for _, s := range tr.Spans() {
		if s.Kind == trace.KindDrop {
			drops++
			if s.From != "provider" || s.Event != string(event.TCOut) {
				t.Fatalf("drop span misattributed: %+v", s)
			}
		}
	}
	if drops != 1 {
		t.Fatalf("drop spans = %d, want 1", drops)
	}
}

// TestStaleplanDeliveryToDetachedUnit pins the RCU generalisation of the
// same bug: a plan captured before an Undeploy may still route to the
// detached unit for a moment. Accept then reports ErrNotDeployed and the
// manager must account the loss as a drop naming the vanished target.
func TestStalePlanDeliveryToDetachedUnit(t *testing.T) {
	tr := trace.New(epoch, 1<<8)
	m, err := NewManager(Config{
		Node:   mnet.MustParseAddr("10.0.0.1"),
		Clock:  vclock.NewVirtual(epoch),
		Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	prov := newRecorder(t, "provider", event.Tuple{Provided: []event.Type{event.TCOut}})
	req := newRecorder(t, "requirer", event.Tuple{Required: []event.Requirement{{Type: event.TCOut}}})
	if err := m.Deploy(prov.p); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy(req.p); err != nil {
		t.Fatal(err)
	}

	stale := m.plan.Load()
	if err := m.Undeploy("requirer"); err != nil {
		t.Fatal(err)
	}
	// A concurrent emitter may still hold the pre-Undeploy plan.
	m.plan.Store(stale)
	m.emit("provider", &event.Event{Type: event.TCOut})

	st := m.Stats()
	if st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
	found := false
	for _, s := range tr.Spans() {
		if s.Kind == trace.KindDrop && s.To == "requirer" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no drop span naming the detached target; spans: %+v", tr.Spans())
	}
	if got := req.events(); len(got) != 0 {
		t.Fatalf("detached requirer still handled events: %v", got)
	}
}

// TestProtocolStatsConsistency pins the satellite bugfix for the
// Handled/Errors drift: both are settled when the handler returns, as
// adjacent atomic ops, so no snapshot can show an error without its handler
// invocation — under any interleaving.
func TestProtocolStatsConsistency(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	prov := newRecorder(t, "provider", event.Tuple{Provided: []event.Type{event.TCOut}})
	fail := NewProtocol("failer")
	fail.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.TCOut}}})
	if err := fail.AddHandler(NewHandler("boom", event.TCOut, func(ctx *Context, ev *event.Event) error {
		return fmt.Errorf("boom")
	})); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy(prov.p); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy(fail); err != nil {
		t.Fatal(err)
	}

	const (
		emitters = 4
		perEmit  = 2000
	)
	var emitWg, readWg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < emitters; g++ {
		emitWg.Add(1)
		go func() {
			defer emitWg.Done()
			for i := 0; i < perEmit; i++ {
				_ = prov.p.Emit(&event.Event{Type: event.TCOut})
			}
		}()
	}
	// Concurrent readers: no snapshot may ever show an error without its
	// handler invocation, or a handler invocation without its delivery.
	for g := 0; g < 2; g++ {
		readWg.Add(1)
		go func() {
			defer readWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := fail.Stats()
				if st.Errors > st.Handled {
					t.Errorf("snapshot drift: Errors=%d > Handled=%d", st.Errors, st.Handled)
					return
				}
				if st.Handled > st.Delivered {
					t.Errorf("snapshot drift: Handled=%d > Delivered=%d", st.Handled, st.Delivered)
					return
				}
				time.Sleep(time.Microsecond)
			}
		}()
	}
	emitWg.Wait()
	close(stop)
	readWg.Wait()
	m.WaitIdle()

	st := fail.Stats()
	want := uint64(emitters * perEmit)
	if st.Delivered != want || st.Handled != want || st.Errors != want {
		t.Fatalf("final stats = %+v, want all %d", st, want)
	}
}
