package core

import (
	"errors"
	"testing"

	"manetkit/internal/event"
	"manetkit/internal/kernel"
)

func TestManagerSealKeepsRoutingWorking(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	src := newRecorder(t, "src", event.Tuple{Provided: []event.Type{event.HelloIn}})
	sink := newRecorder(t, "sink", event.Tuple{Required: []event.Requirement{{Type: event.HelloIn}}})
	m.Deploy(src.p)
	m.Deploy(sink.p)
	if len(m.CF().Arch().Bindings) == 0 {
		t.Fatal("setup: no reflective bindings")
	}
	m.Seal()
	// Reflective metadata is unloaded...
	if got := m.CF().Arch().Bindings; len(got) != 0 {
		t.Fatalf("bindings survived Seal: %v", got)
	}
	// ...but event routing keeps working.
	emitFrom(t, m, "src", &event.Event{Type: event.HelloIn})
	if len(sink.events()) != 1 {
		t.Fatal("event routing broken by Seal")
	}
	// Rewire becomes a metadata no-op rather than an error.
	m.Rewire()
	emitFrom(t, m, "src", &event.Event{Type: event.HelloIn})
	if len(sink.events()) != 2 {
		t.Fatal("routing broken after post-seal Rewire")
	}
	// Protocol CFs are sealed too: structural mutation is refused.
	err := sink.p.CF().Insert(kernel.NewBase("late"))
	if !errors.Is(err, kernel.ErrSealed) {
		t.Fatalf("post-seal Insert = %v", err)
	}
}

func TestProtocolLifecycleErrors(t *testing.T) {
	p := NewProtocol("p")
	if err := p.Init(); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("Init undeployed = %v", err)
	}
	if err := p.Emit(&event.Event{Type: event.HelloIn}); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("Emit undeployed = %v", err)
	}
	if err := p.RunLocked(func(*Context) {}); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("RunLocked undeployed = %v", err)
	}
	if p.Clock() != nil {
		t.Fatal("Clock on undeployed protocol non-nil")
	}
	if err := p.Accept(&event.Event{Type: event.HelloIn}); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("Accept undeployed = %v", err)
	}
	if _, err := p.DetachState(); err == nil {
		t.Fatal("DetachState without state succeeded")
	}
	if err := p.RemoveHandler("ghost"); err == nil {
		t.Fatal("RemoveHandler of missing handler succeeded")
	}
	p.Stop() // Stop before Start is a no-op
}

func TestManagerMiscErrors(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	if err := m.EnableDedicatedThread("ghost"); err == nil {
		t.Fatal("EnableDedicatedThread on missing unit succeeded")
	}
	if err := m.DisableDedicatedThread("ghost"); err == nil {
		t.Fatal("DisableDedicatedThread on missing unit succeeded")
	}
	if _, ok := m.Unit("ghost"); ok {
		t.Fatal("Unit found a ghost")
	}
	inter, terms := m.Chain(event.HelloIn)
	if inter != nil || terms != nil {
		t.Fatal("Chain for unknown type non-empty")
	}
	// Deploy after Close fails.
	m.Close()
	p := NewProtocol("late")
	if err := m.Deploy(p); err == nil {
		t.Fatal("Deploy after Close succeeded")
	}
	m.Close() // idempotent
}

func TestStartHookFailureRollsBackStarted(t *testing.T) {
	m, clk := newMgr(t, SingleThreaded)
	p := NewProtocol("p")
	p.SetTuple(event.Tuple{})
	boom := errors.New("boom")
	p.OnStart(func(*Context) error { return boom })
	fired := 0
	p.AddSource(NewSource("s", 1e6, 0, func(*Context) { fired++ }))
	if err := m.Deploy(p); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); !errors.Is(err, boom) {
		t.Fatalf("Start = %v", err)
	}
	if p.Started() {
		t.Fatal("protocol marked started after hook failure")
	}
	clk.RunUntilIdle(10)
	if fired != 0 {
		t.Fatal("sources started despite hook failure")
	}
}

func TestQueryUnitDirectCall(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	p := NewProtocol("holder")
	p.SetTuple(event.Tuple{})
	type facade interface{ Magic() int }
	p.Provide("IMagic", magicImpl{})
	if err := m.Deploy(p); err != nil {
		t.Fatal(err)
	}
	probe := NewProtocol("probe")
	probe.SetTuple(event.Tuple{})
	if err := m.Deploy(probe); err != nil {
		t.Fatal(err)
	}
	var got int
	probe.RunLocked(func(ctx *Context) {
		if f, ok := QueryUnit[facade](ctx.Env(), "holder"); ok {
			got = f.Magic()
		}
	})
	if got != 42 {
		t.Fatalf("direct call got %d", got)
	}
	probe.RunLocked(func(ctx *Context) {
		if _, ok := QueryUnit[facade](ctx.Env(), "ghost"); ok {
			t.Error("QueryUnit found a ghost")
		}
	})
}

type magicImpl struct{}

func (magicImpl) Magic() int { return 42 }
