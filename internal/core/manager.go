package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"manetkit/internal/event"
	"manetkit/internal/kernel"
	"manetkit/internal/metrics"
	"manetkit/internal/mnet"
	"manetkit/internal/pool"
	"manetkit/internal/queue"
	"manetkit/internal/trace"
	"manetkit/internal/vclock"
)

// Model selects the concurrency model applied to event delivery (§4.4).
type Model uint8

// The concurrency models of §4.4. They govern events travelling up from
// the System CF; callers above MANETKit may always use multiple goroutines.
const (
	// SingleThreaded delivers every event inline on the emitting
	// goroutine: no races by construction, minimal resources (the model
	// the paper suggests for sensor motes, and the one used for its
	// comparative evaluation).
	SingleThreaded Model = iota + 1
	// PerMessage shepherds each delivery with its own goroutine; FIFO
	// order per unit is preserved by ticket locks drawn at emission time.
	PerMessage
	// PerN drains deliveries through a fixed worker pool —
	// the thread-per-n-messages midpoint.
	PerN
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case SingleThreaded:
		return "single-threaded"
	case PerMessage:
		return "thread-per-message"
	case PerN:
		return "thread-per-n-messages"
	default:
		return fmt.Sprintf("Model(%d)", uint8(m))
	}
}

// Config parameterises a Manager.
type Config struct {
	// Node is the local node address (required).
	Node mnet.Addr
	// Clock is the deployment's time source; defaults to vclock.Real().
	Clock vclock.Clock
	// Ontology defaults to event.NewOntology().
	Ontology *event.Ontology
	// Model defaults to SingleThreaded.
	Model Model
	// PoolSize sizes the PerN worker pool (default 2).
	PoolSize int
	// QueueBound bounds each dedicated per-protocol queue (default 1024).
	QueueBound int
	// Metrics, when non-nil, collects framework counters and latency
	// histograms (shared across a whole cluster). Nil disables metrics at
	// the cost of one nil check per dispatch.
	Metrics *metrics.Registry
	// Tracer, when non-nil, records structured dispatch spans stamped with
	// the deployment clock. Nil disables tracing.
	Tracer *trace.Tracer
}

// ManagerStats counts framework activity.
type ManagerStats struct {
	Emitted   uint64 // events entering the framework
	Delivered uint64 // unit deliveries
	Dropped   uint64 // deliveries dropped (queue overflow, no chain)
	Rewires   uint64 // topology re-derivations
}

// managerCounters is the hot-path representation of ManagerStats: plain
// atomics, so emit and deliver never serialise on the manager mutex just to
// count.
type managerCounters struct {
	emitted   atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
	rewires   atomic.Uint64
}

// terminal is one end-of-chain requirer.
type terminal struct {
	name      string
	exclusive bool
}

// chain is the derived delivery path for one concrete event type:
// providers feed the interposer sequence, which feeds the terminals.
type chain struct {
	providers   map[string]bool
	interposers []string
	terminals   []terminal
}

// unitRec tracks one deployed unit. Records are created once per deployment
// and shared by reference with every published dispatch plan, so flipping a
// unit to or from the thread-per-ManetProtocol model is visible to the
// current plan without a rebuild.
type unitRec struct {
	unit Unit
	// dedicated is non-nil when the unit runs the thread-per-ManetProtocol
	// model: its own goroutine draining a FIFO queue. Atomic because the
	// lock-free delivery path reads it concurrently with Enable/Disable.
	dedicated atomic.Pointer[dedicatedRunner]
}

// Manager is the MANETKit CF plus its Framework Manager (Fig 2): the
// top-level composite in which ManetProtocol instances and the System CF
// are deployed, and the machinery that derives receptacle-to-interface
// bindings from event tuples, routes events (broadcast, exclusive receive,
// interposition, loop avoidance), applies the selected concurrency model,
// and enacts reconfiguration.
type Manager struct {
	cf   *kernel.CF
	node mnet.Addr
	clk  vclock.Clock
	ont  *event.Ontology

	// mu guards reconfiguration state only: the unit table, the derived
	// chains, bindings, pollers and lifecycle flags. The steady-state emit
	// path never takes it — it routes via the published plan below.
	mu       sync.Mutex
	units    map[string]*unitRec
	order    []string // deployment order: interposer chains follow it
	chains   map[event.Type]*chain
	bindings map[kernel.BindingInfo]*kernel.Binding
	pollers  []*vclock.Periodic
	closed   bool
	sealed   bool

	// plan is the compiled event topology, rebuilt by every rewire and
	// swapped atomically (RCU): emit loads it once and routes over
	// immutable data.
	plan atomic.Pointer[dispatchPlan]
	// model is the global concurrency model, read once per emission.
	model atomic.Uint32
	// subs is the context concentrator's subscriber snapshot, republished
	// on SubscribeContext so dispatch iterates it without locks.
	subs atomic.Pointer[[]ctxSub]
	// stats are the hot-path counters; Stats() snapshots them.
	stats managerCounters

	// rewireHook, when set, runs after every topology re-derivation (and
	// after concurrency-model switches), outside m.mu so it can re-enter
	// the manager's reflective accessors — the attachment point for the
	// inspect package's rewire journal.
	rewireHook func()

	// workers is the PerN pool: built under m.mu, read atomically on the
	// delivery path.
	workers  atomic.Pointer[pool.Pool]
	poolSize int
	qBound   int
	inflight sync.WaitGroup

	// obs is the instrument bundle; nil when both metrics and tracing are
	// disabled. Set once at construction, never mutated: hot paths read it
	// without m.mu.
	obs *managerObs

	// Single-threaded delivery queue: inline deliveries are drained in
	// FIFO order by whichever goroutine first enters the framework, so a
	// handler-emitted event destined for a unit already on the call stack
	// is processed after the current delivery instead of deadlocking on
	// the unit's critical section ("the same thread is used to call each
	// ManetProtocol instance in turn", §4.4). dmu guards only this queue,
	// so inline delivery never contends with reconfiguration.
	dmu      sync.Mutex
	inlineQ  queue.Ring[inlineDelivery]
	draining bool
}

type inlineDelivery struct {
	rec *unitRec
	ev  *event.Event
}

type ctxSub struct {
	pattern event.Type
	fn      func(*event.Event)
}

// NewManager creates a MANETKit deployment for one node.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Node.IsUnspecified() || cfg.Node.IsBroadcast() {
		return nil, fmt.Errorf("core: invalid node address %v", cfg.Node)
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real()
	}
	if cfg.Ontology == nil {
		cfg.Ontology = event.NewOntology()
	}
	if cfg.Model == 0 {
		cfg.Model = SingleThreaded
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 2
	}
	if cfg.QueueBound <= 0 {
		cfg.QueueBound = 1024
	}
	m := &Manager{
		cf:       kernel.NewCF("manetkit"),
		node:     cfg.Node,
		clk:      cfg.Clock,
		ont:      cfg.Ontology,
		units:    make(map[string]*unitRec),
		chains:   make(map[event.Type]*chain),
		bindings: make(map[kernel.BindingInfo]*kernel.Binding),
		poolSize: cfg.PoolSize,
		qBound:   cfg.QueueBound,
		obs:      newManagerObs(cfg.Node, cfg.Metrics, cfg.Tracer),
	}
	m.model.Store(uint32(cfg.Model))
	m.plan.Store(emptyPlan)
	return m, nil
}

// Node returns the local node address.
func (m *Manager) Node() mnet.Addr { return m.node }

// Clock returns the deployment clock.
func (m *Manager) Clock() vclock.Clock { return m.clk }

// Ontology returns the deployment's event ontology.
func (m *Manager) Ontology() *event.Ontology { return m.ont }

// CF exposes the MANETKit CF's architecture meta-model: the deployed units
// and the event bindings derived from their tuples.
func (m *Manager) CF() *kernel.CF { return m.cf }

// SetModel switches the global concurrency model. Deliveries already in
// flight complete under the old model; FIFO order per unit is preserved
// across the switch because tickets are model-independent.
func (m *Manager) SetModel(mod Model) error {
	if mod < SingleThreaded || mod > PerN {
		return fmt.Errorf("core: unknown concurrency model %d", mod)
	}
	m.mu.Lock()
	if mod == PerN && m.workers.Load() == nil {
		p, err := pool.New(m.poolSize, 0)
		if err != nil {
			m.mu.Unlock()
			return err
		}
		m.workers.Store(p)
	}
	m.model.Store(uint32(mod))
	hook := m.rewireHook
	m.mu.Unlock()
	if hook != nil {
		hook()
	}
	return nil
}

// Model returns the current global concurrency model.
func (m *Manager) Model() Model {
	return Model(m.model.Load())
}

// Deploy inserts a unit (a ManetProtocol CF or the System CF) into the
// deployment and re-derives the event topology. Simultaneous deployment of
// multiple protocols is simply multiple Deploy calls.
func (m *Manager) Deploy(u Unit) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return errors.New("core: manager closed")
	}
	if _, ok := m.units[u.Name()]; ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: unit %q", kernel.ErrDuplicate, u.Name())
	}
	m.mu.Unlock()

	if err := m.cf.Insert(u); err != nil {
		return err
	}
	env := &Env{
		Node:     m.node,
		Clock:    m.clk,
		Ontology: m.ont,
		emit:     m.emit,
		unit:     m.Unit,
		retuple:  func(string) { m.Rewire() },
	}
	if m.obs != nil {
		env.metrics = m.obs.reg
		env.tracer = m.obs.tracer
	}
	u.Attach(env)

	rec := &unitRec{unit: u}
	m.mu.Lock()
	m.units[u.Name()] = rec
	m.order = append(m.order, u.Name())
	dedic := false
	if p, ok := u.(*Protocol); ok && p.wantsDedicated() {
		dedic = true
	}
	m.mu.Unlock()
	if dedic {
		if err := m.EnableDedicatedThread(u.Name()); err != nil {
			return err
		}
	}
	m.Rewire()
	return nil
}

// Undeploy stops and removes the named unit and re-derives the topology.
func (m *Manager) Undeploy(name string) error {
	m.mu.Lock()
	rec, ok := m.units[name]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: unit %q", kernel.ErrNoComponent, name)
	}
	delete(m.units, name)
	for i, n := range m.order {
		if n == name {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.mu.Unlock()

	if d := rec.dedicated.Swap(nil); d != nil {
		d.stop()
	}
	rec.unit.Detach()
	m.Rewire()
	return m.cf.Remove(name)
}

// Unit implements unit lookup for direct calls.
func (m *Manager) Unit(name string) (Unit, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.units[name]
	if !ok {
		return nil, false
	}
	return rec.unit, true
}

// Units lists deployed unit names in deployment order.
func (m *Manager) Units() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.order...)
}

// EnableDedicatedThread switches the named unit to the
// thread-per-ManetProtocol model: a dedicated goroutine drains a FIFO of
// its events, and emitters hand off without blocking (§4.4).
func (m *Manager) EnableDedicatedThread(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.units[name]
	if !ok {
		return fmt.Errorf("%w: unit %q", kernel.ErrNoComponent, name)
	}
	if rec.dedicated.Load() != nil {
		return nil
	}
	d := newDedicatedRunner(m, rec.unit, m.qBound)
	if m.obs != nil && m.obs.reg != nil {
		d.q.Instrument(
			m.obs.reg.Gauge("core_dedicated_depth:"+name),
			m.obs.reg.Counter("core_dedicated_dropped:"+name),
		)
	}
	rec.dedicated.Store(d)
	return nil
}

// DisableDedicatedThread reverts the unit to the global model.
func (m *Manager) DisableDedicatedThread(name string) error {
	m.mu.Lock()
	rec, ok := m.units[name]
	var d *dedicatedRunner
	if ok {
		d = rec.dedicated.Swap(nil)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: unit %q", kernel.ErrNoComponent, name)
	}
	if d != nil {
		d.stop()
	}
	return nil
}

// Rewire re-derives the per-event-type delivery chains from the deployed
// units' tuples and updates the MANETKit CF's reflective bindings to match
// — the automatic, declarative reconfiguration of §4.2/§4.5.
func (m *Manager) Rewire() {
	m.mu.Lock()
	m.rewireLocked()
	hook := m.rewireHook
	m.mu.Unlock()
	if hook != nil {
		hook()
	}
}

// SetRewireHook installs fn to run after every topology re-derivation
// triggered through Rewire (Deploy, Undeploy and tuple changes all funnel
// through it) and after SetModel. fn runs outside the manager's internal
// lock, so it may call the reflective accessors (Units, Unit, Model, CF,
// DedicatedThread) — the inspect package uses this to journal every
// reconfiguration as a snapshot diff. Passing nil removes the hook.
func (m *Manager) SetRewireHook(fn func()) {
	m.mu.Lock()
	m.rewireHook = fn
	m.mu.Unlock()
}

// DedicatedThread reports whether the named unit currently runs the
// thread-per-ManetProtocol model (reflective, for tooling).
func (m *Manager) DedicatedThread(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.units[name]
	return ok && rec.dedicated.Load() != nil
}

func (m *Manager) rewireLocked() {
	m.stats.rewires.Add(1)
	var rewireStart time.Time
	if m.obs != nil {
		m.obs.rewires.Inc()
		if m.obs.rewireLat != nil {
			rewireStart = m.clk.Now()
		}
	}
	chains := make(map[event.Type]*chain)

	// Collect the concrete provided types.
	for _, name := range m.order {
		u := m.units[name].unit
		for _, t := range u.Tuple().Provided {
			if chains[t] == nil {
				chains[t] = &chain{providers: make(map[string]bool)}
			}
		}
	}
	for t, ch := range chains {
		for _, name := range m.order {
			tp := m.units[name].unit.Tuple()
			provides := tp.Provides(t)
			requires := tp.Requires(m.ont, t)
			switch {
			case provides && requires:
				// Interposed in the t path; ordered by deployment, which
				// also precludes loops (§4.2 footnote 2).
				ch.interposers = append(ch.interposers, name)
				ch.providers[name] = true
			case provides:
				ch.providers[name] = true
			case requires:
				excl := false
				for _, r := range tp.Required {
					if r.Exclusive && m.ont.Matches(t, r.Type) {
						excl = true
						break
					}
				}
				ch.terminals = append(ch.terminals, terminal{name: name, exclusive: excl})
			}
		}
	}
	m.chains = chains
	m.plan.Store(m.buildPlanLocked())
	m.syncBindingsLocked()
	if m.obs != nil {
		if m.obs.rewireLat != nil {
			m.obs.rewireLat.Observe(m.clk.Now().Sub(rewireStart))
		}
		if m.obs.tracer != nil {
			m.obs.tracer.Record(m.clk.Now(), trace.Span{
				Node: m.obs.nodeStr, Kind: trace.KindRebind, QDepth: len(m.chains),
			})
		}
	}
}

// syncBindingsLocked mirrors the derived chains into kernel bindings on the
// MANETKit CF so that the architecture meta-model shows the real topology.
func (m *Manager) syncBindingsLocked() {
	if m.sealed {
		return
	}
	want := make(map[kernel.BindingInfo]bool)
	types := make([]event.Type, 0, len(m.chains))
	for t := range m.chains {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, t := range types {
		ch := m.chains[t]
		recept := "REvents"
		iface := "IEventSink"
		heads := make([]string, 0, len(ch.providers))
		for p := range ch.providers {
			if len(ch.interposers) > 0 && p == ch.interposers[len(ch.interposers)-1] {
				continue // last interposer binds forward, handled below
			}
			isInterposer := false
			for _, i := range ch.interposers {
				if i == p {
					isInterposer = true
					break
				}
			}
			if !isInterposer {
				heads = append(heads, p)
			}
		}
		sort.Strings(heads)
		link := func(from, to string) {
			if from == to {
				return
			}
			want[kernel.BindingInfo{From: from, Receptacle: recept, To: to, Interface: iface}] = true
		}
		if len(ch.interposers) > 0 {
			for _, p := range heads {
				link(p, ch.interposers[0])
			}
			for i := 0; i+1 < len(ch.interposers); i++ {
				link(ch.interposers[i], ch.interposers[i+1])
			}
			last := ch.interposers[len(ch.interposers)-1]
			for _, term := range ch.terminals {
				link(last, term.name)
			}
		} else {
			for _, p := range heads {
				for _, term := range ch.terminals {
					link(p, term.name)
				}
			}
		}
	}
	// Drop stale bindings, add missing ones.
	for info, b := range m.bindings {
		if !want[info] {
			_ = m.cf.Unbind(b)
			delete(m.bindings, info)
		}
	}
	for info := range want {
		if _, ok := m.bindings[info]; ok {
			continue
		}
		b, err := m.cf.Bind(info.From, info.Receptacle, info.To, info.Interface)
		if err != nil {
			continue // reflective mirror is best-effort
		}
		m.bindings[info] = b
	}
}

// emit routes ev from the named unit: through the remaining interposers for
// its type, then to the terminals (broadcast or exclusive). Routing reads
// only the published plan — no manager lock, no allocation: target lists
// were compiled at the last rewire.
//
//mk:hotpath
func (m *Manager) emit(from string, ev *event.Event) {
	if m.obs != nil {
		m.obs.emitted.Inc()
		if m.obs.tracer != nil {
			m.obs.tracer.Record(m.clk.Now(), trace.Span{
				Node: m.obs.nodeStr, Kind: trace.KindEmit,
				Event: string(ev.Type), From: from, Corr: ev.Corr,
			})
		}
	}
	m.stats.emitted.Add(1)
	var targets []*unitRec
	if tp := m.plan.Load().byType[ev.Type]; tp != nil {
		var ok bool
		if targets, ok = tp.perFrom[from]; !ok {
			targets = tp.def
		}
	}
	if len(targets) == 0 {
		// No chain for the type, or a chain whose compiled route is empty
		// (no terminals beyond the emitter, or a vanished interposer): every
		// such loss is counted and traced.
		m.dropEvent(from, ev)
		m.dispatchContextEvent(ev)
		return
	}
	m.deliverBatch(from, targets, ev, Model(m.model.Load()))
	m.dispatchContextEvent(ev)
}

// dropEvent accounts one undeliverable event.
//
//mk:hotpath
func (m *Manager) dropEvent(from string, ev *event.Event) {
	m.stats.dropped.Add(1)
	if m.obs != nil {
		m.obs.dropped.Inc()
		if m.obs.tracer != nil {
			m.obs.tracer.Record(m.clk.Now(), trace.Span{
				Node: m.obs.nodeStr, Kind: trace.KindDrop,
				Event: string(ev.Type), From: from, Corr: ev.Corr,
			})
		}
	}
}

// runAccept enters the unit's critical section and hands it the event. A
// unit detached while a stale plan (or an already-queued delivery) still
// referenced it reports ErrNotDeployed; that loss is accounted as a drop
// (with a drop span naming the vanished target) rather than vanishing
// silently.
//
//mk:hotpath
func (m *Manager) runAccept(u Unit, ev *event.Event) {
	sec := u.Section()
	sec.Lock()
	err := u.Accept(ev)
	sec.Unlock()
	m.accountAcceptErr(u, ev, err)
}

// accountAcceptErr records the delivery-to-detached-unit loss; any other
// Accept error is the unit's own business (protocols count handler errors
// themselves).
//
//mk:hotpath
func (m *Manager) accountAcceptErr(u Unit, ev *event.Event, err error) {
	if err == nil || !errors.Is(err, ErrNotDeployed) {
		return
	}
	m.stats.dropped.Add(1)
	if m.obs != nil {
		m.obs.dropped.Inc()
		if m.obs.tracer != nil {
			m.obs.tracer.Record(m.clk.Now(), trace.Span{
				Node: m.obs.nodeStr, Kind: trace.KindDrop,
				Event: string(ev.Type), To: u.Name(), Corr: ev.Corr,
			})
		}
	}
}

// deliverBatch hands ev to each target under the active concurrency model.
// All targets are enqueued/ticketed before any processing starts, so the
// per-unit FIFO order is the emission order even when handlers emit
// further events mid-delivery.
//
//mk:hotpath
func (m *Manager) deliverBatch(from string, targets []*unitRec, ev *event.Event, model Model) {
	if model == SingleThreaded {
		m.deliverSingleThreaded(from, targets, ev)
		return
	}
	for _, rec := range targets {
		m.deliver(from, rec, ev, model)
	}
}

// deliverSingleThreaded enqueues every target on the drain queue, then (as
// the outermost frame) drains it with m.dmu dropped around each Accept, so
// handler re-emits nest onto the same queue instead of recursing.
//
//mk:hotpath
func (m *Manager) deliverSingleThreaded(from string, targets []*unitRec, ev *event.Event) {
	m.dmu.Lock()
	for _, rec := range targets {
		m.stats.delivered.Add(1)
		if m.obs != nil {
			m.obs.delivered.Inc()
		}
		if d := rec.dedicated.Load(); d != nil {
			// enqueue never blocks (bounded TryPush), so the hand-off is
			// safe under dmu.
			if !d.enqueue(ev) {
				m.stats.dropped.Add(1)
				if m.obs != nil {
					m.obs.dropped.Inc()
				}
			} else if m.obs != nil && m.obs.tracer != nil {
				m.obs.tracer.Record(m.clk.Now(), trace.Span{
					Node: m.obs.nodeStr, Kind: trace.KindDispatch,
					Event: string(ev.Type), From: from, To: rec.unit.Name(),
					Corr: ev.Corr, QDepth: d.q.Len(),
				})
			}
			continue
		}
		m.inlineQ.Push(inlineDelivery{rec: rec, ev: ev})
		if m.obs != nil && m.obs.tracer != nil {
			m.obs.tracer.Record(m.clk.Now(), trace.Span{
				Node: m.obs.nodeStr, Kind: trace.KindDispatch,
				Event: string(ev.Type), From: from, To: rec.unit.Name(),
				Corr: ev.Corr, QDepth: m.inlineQ.Len(),
			})
		}
	}
	if m.draining {
		// An outer frame on this (or another) goroutine is already
		// draining; it will pick these up in order.
		m.dmu.Unlock()
		return
	}
	m.draining = true
	for {
		d, ok := m.inlineQ.Pop()
		if !ok {
			m.draining = false
			m.dmu.Unlock()
			return
		}
		m.dmu.Unlock()
		m.runAccept(d.rec.unit, d.ev)
		m.dmu.Lock()
	}
}

// deliver hands ev to one unit under an asynchronous concurrency model
// (PerMessage/PerN), always inside the unit's critical section and in FIFO
// emission order. SingleThreaded delivery goes through
// deliverSingleThreaded's drain queue instead.
func (m *Manager) deliver(from string, rec *unitRec, ev *event.Event, model Model) {
	m.stats.delivered.Add(1)
	dedicated := rec.dedicated.Load()
	if m.obs != nil {
		m.obs.delivered.Inc()
		if m.obs.tracer != nil {
			qdepth := 0
			if dedicated != nil {
				qdepth = dedicated.q.Len()
			}
			m.obs.tracer.Record(m.clk.Now(), trace.Span{
				Node: m.obs.nodeStr, Kind: trace.KindDispatch,
				Event: string(ev.Type), From: from, To: rec.unit.Name(),
				Corr: ev.Corr, QDepth: qdepth,
			})
		}
	}

	if dedicated != nil {
		if !dedicated.enqueue(ev) {
			m.stats.dropped.Add(1)
			if m.obs != nil {
				m.obs.dropped.Inc()
			}
		}
		return
	}
	sec := rec.unit.Section()
	switch model {
	case PerMessage:
		ticket := sec.Ticket()
		if m.obs != nil {
			m.obs.tickets.Inc()
		}
		m.inflight.Add(1)
		//mk:allow hotalloc PerMessage spawns one shepherd goroutine per delivery by design; the det(0) gate covers SingleThreaded dispatch
		go func() {
			defer m.inflight.Done()
			m.waitTicket(sec, ticket)
			err := rec.unit.Accept(ev)
			sec.Unlock()
			m.accountAcceptErr(rec.unit, ev, err)
		}()
	case PerN:
		workers := m.workers.Load()
		if workers == nil {
			//mk:allow hotalloc lazy PerN pool construction on the first delivery after a model switch — cold reconfiguration edge
			_ = m.SetModel(PerN)
			workers = m.workers.Load()
		}
		ticket := sec.Ticket()
		if m.obs != nil {
			m.obs.tickets.Inc()
		}
		m.inflight.Add(1)
		//mk:allow hotalloc PerN submits one closure per delivery by design; the det(0) gate covers SingleThreaded dispatch
		err := workers.Submit(func() {
			defer m.inflight.Done()
			m.waitTicket(sec, ticket)
			aerr := rec.unit.Accept(ev)
			sec.Unlock()
			m.accountAcceptErr(rec.unit, ev, aerr)
		})
		if err != nil {
			// Pool closed: account the ticket to keep the lock serviceable.
			sec.Wait(ticket)
			sec.Unlock()
			m.inflight.Done()
		}
	default:
		// Unreachable for SingleThreaded (deliverBatch owns that path);
		// defensively route through the drain queue rather than risking a
		// re-entrant section acquisition.
		m.stats.delivered.Add(^uint64(0)) // deliverBatch will re-count
		//mk:allow hotalloc defensive fallback for an unknown model; unreachable under normal routing
		m.deliverBatch(from, []*unitRec{rec}, ev, SingleThreaded)
	}
}

// waitTicket blocks until the shepherd's ticket is served, recording the
// wait in the ticket-acquisition histogram when metrics are enabled.
//
//mk:hotpath
func (m *Manager) waitTicket(sec *TicketMutex, ticket uint64) {
	if m.obs != nil && m.obs.ticketWait != nil {
		start := m.clk.Now()
		sec.Wait(ticket)
		m.obs.ticketWait.Observe(m.clk.Now().Sub(start))
		return
	}
	sec.Wait(ticket)
}

// WaitIdle blocks until all in-flight asynchronous deliveries (PerMessage,
// PerN and dedicated queues) have drained. Synchronous deliveries are by
// definition complete when emit returns.
func (m *Manager) WaitIdle() {
	m.inflight.Wait()
	m.mu.Lock()
	runners := make([]*dedicatedRunner, 0, len(m.units))
	for _, rec := range m.units {
		if d := rec.dedicated.Load(); d != nil {
			runners = append(runners, d)
		}
	}
	m.mu.Unlock()
	for _, d := range runners {
		d.waitIdle()
	}
}

// Stats returns a snapshot of the framework counters.
func (m *Manager) Stats() ManagerStats {
	return ManagerStats{
		Emitted:   m.stats.emitted.Load(),
		Delivered: m.stats.delivered.Load(),
		Dropped:   m.stats.dropped.Load(),
		Rewires:   m.stats.rewires.Load(),
	}
}

// Chain exposes the derived delivery chain for an event type (reflective,
// for tests and tooling): the interposer order and the terminal names.
func (m *Manager) Chain(t event.Type) (interposers, terminals []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch, ok := m.chains[t]
	if !ok {
		return nil, nil
	}
	interposers = append(interposers, ch.interposers...)
	for _, term := range ch.terminals {
		terminals = append(terminals, term.name)
	}
	return interposers, terminals
}

// SubscribeContext registers a callback with the Framework Manager's
// context concentrator (§4.5): fn observes every event matching pattern
// (typically event.Context or a concrete context type). Callbacks run
// synchronously on the emitting goroutine; keep them light.
func (m *Manager) SubscribeContext(pattern event.Type, fn func(*event.Event)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var cur []ctxSub
	if p := m.subs.Load(); p != nil {
		cur = *p
	}
	next := make([]ctxSub, 0, len(cur)+1)
	next = append(next, cur...)
	next = append(next, ctxSub{pattern: pattern, fn: fn})
	m.subs.Store(&next)
}

// AddContextPoller hides poll-based context sources behind the event facade
// (§4.5): poll is invoked every interval and any non-nil event it returns
// is fed to the concentrator's subscribers and the event topology.
func (m *Manager) AddContextPoller(interval time.Duration, poll func() *event.Event) {
	per := vclock.NewPeriodic(m.clk, interval, 0, int64(m.node.Uint32()), func() {
		if ev := poll(); ev != nil {
			m.emit("context-poller", ev)
		}
	})
	m.mu.Lock()
	m.pollers = append(m.pollers, per)
	m.mu.Unlock()
}

//mk:hotpath
func (m *Manager) dispatchContextEvent(ev *event.Event) {
	p := m.subs.Load()
	if p == nil {
		return
	}
	for _, s := range *p {
		if m.ont.Matches(ev.Type, s.pattern) {
			s.fn(ev)
		}
	}
}

// AddRule registers an integrity rule on the MANETKit CF — e.g. the
// paper's example of ensuring only one reactive routing protocol instance
// exists in a deployment (§4.2). Deployments violating the rule are
// rejected and rolled back.
func (m *Manager) AddRule(r kernel.IntegrityRule) error { return m.cf.AddRule(r) }

// Seal unloads the deployment's reconfiguration machinery once the desired
// configuration is reached (§6.2 footnote: "it is possible to unload the
// OpenCom kernel to free up memory"): the MANETKit CF's kernel metadata,
// the reflective binding mirror, integrity rules, and every deployed
// protocol's inner CF metadata. Event routing keeps working; further
// Deploy/Rewire calls become no-ops or fail.
func (m *Manager) Seal() {
	m.mu.Lock()
	m.sealed = true
	m.bindings = nil
	recs := make([]*unitRec, 0, len(m.units))
	for _, rec := range m.units {
		recs = append(recs, rec)
	}
	m.mu.Unlock()
	m.cf.Seal()
	for _, rec := range recs {
		if p, ok := rec.unit.(*Protocol); ok {
			p.CF().Seal()
		}
	}
}

// Quiesce enters every deployed unit's critical section (in deployment
// order) and returns a resume function — used for transactional
// reconfiguration spanning multiple protocols.
func (m *Manager) Quiesce() func() {
	m.mu.Lock()
	names := append([]string(nil), m.order...)
	recs := make([]*unitRec, 0, len(names))
	for _, n := range names {
		recs = append(recs, m.units[n])
	}
	m.mu.Unlock()
	var resumes []func()
	for _, rec := range recs {
		sec := rec.unit.Section()
		sec.Lock()
		resumes = append(resumes, sec.Unlock)
	}
	return func() {
		for i := len(resumes) - 1; i >= 0; i-- {
			resumes[i]()
		}
	}
}

// Close stops every deployed protocol's sources, then pollers, dedicated
// runners and the worker pool, and waits for in-flight deliveries. The
// manager is unusable afterwards: a closed deployment schedules no further
// timers and emits no further frames.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	pollers := m.pollers
	m.pollers = nil
	var dedicated []*dedicatedRunner
	var protos []*Protocol
	for _, rec := range m.units {
		if d := rec.dedicated.Swap(nil); d != nil {
			dedicated = append(dedicated, d)
		}
		if p, ok := rec.unit.(*Protocol); ok {
			protos = append(protos, p)
		}
	}
	workers := m.workers.Swap(nil)
	m.mu.Unlock()

	for _, p := range protos {
		p.Stop()
	}
	for _, p := range pollers {
		p.Stop()
	}
	m.inflight.Wait()
	for _, d := range dedicated {
		d.stop()
	}
	if workers != nil {
		workers.Close()
	}
}
