package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"manetkit/internal/event"
	"manetkit/internal/kernel"
	"manetkit/internal/mnet"
	"manetkit/internal/trace"
	"manetkit/internal/vclock"
)

// Handler is a plug-in event handler within a ManetProtocol CF — the unit
// the paper's fine-grained reconfigurations swap (e.g. multipath DYMO
// replaces the RE and RERR handlers, §5.2). Handlers run atomically inside
// the protocol's critical section.
type Handler interface {
	kernel.Component
	// Pattern returns the event type (possibly abstract) this handler
	// consumes; the protocol's demux matches delivered events against it.
	Pattern() event.Type
	// Handle processes one event.
	Handle(ctx *Context, ev *event.Event) error
}

// handlerComp is the standard Handler implementation: a named component
// wrapping a handler function.
type handlerComp struct {
	base    *kernel.Base
	pattern event.Type
	fn      func(*Context, *event.Event) error
}

var _ Handler = (*handlerComp)(nil)

// NewHandler builds a Handler component from a function.
func NewHandler(name string, pattern event.Type, fn func(*Context, *event.Event) error) Handler {
	return &handlerComp{base: kernel.NewBase(name), pattern: pattern, fn: fn}
}

func (h *handlerComp) Name() string                            { return h.base.Name() }
func (h *handlerComp) Provided() map[string]any                { return h.base.Provided() }
func (h *handlerComp) ReceptacleNames() []string               { return h.base.ReceptacleNames() }
func (h *handlerComp) Connect(r string, i any) error           { return h.base.Connect(r, i) }
func (h *handlerComp) Disconnect(r string, i any) error        { return h.base.Disconnect(r, i) }
func (h *handlerComp) Pattern() event.Type                     { return h.pattern }
func (h *handlerComp) Handle(c *Context, e *event.Event) error { return h.fn(c, e) }

// Context is passed to handlers and event sources: the protocol's view of
// its deployment.
type Context struct {
	proto *Protocol
	env   *Env
}

// Node returns the local node address.
func (c *Context) Node() mnet.Addr { return c.env.Node }

// Clock returns the deployment clock.
func (c *Context) Clock() vclock.Clock { return c.env.Clock }

// Emit pushes an event from this protocol into the framework; the Framework
// Manager routes it per the binding topology (interposers first, then
// requirers).
func (c *Context) Emit(ev *event.Event) { c.env.Emit(c.proto.Name(), ev) }

// State returns the protocol's S element.
func (c *Context) State() kernel.Component { return c.proto.StateElement() }

// Forward returns the protocol's F element.
func (c *Context) Forward() kernel.Component { return c.proto.ForwardElement() }

// Env exposes the deployment environment for direct calls to co-deployed
// units.
func (c *Context) Env() *Env { return c.env }

// Source is a timer-driven event source (the paper's Event Source
// components, e.g. the TC Generator): it fires periodically, inside the
// protocol's critical section.
type Source struct {
	base      *kernel.Base
	interval  time.Duration
	jitter    float64
	immediate bool
	fn        func(*Context)

	mu       sync.Mutex
	periodic *vclock.Periodic
	kick     vclock.Timer
}

var _ kernel.Component = (*Source)(nil)

// NewSource builds a Source component firing fn every interval with the
// given fractional jitter.
func NewSource(name string, interval time.Duration, jitter float64, fn func(*Context)) *Source {
	return &Source{base: kernel.NewBase(name), interval: interval, jitter: jitter, fn: fn}
}

// Immediate makes the source fire once right after the protocol starts,
// ahead of the first full interval — the behaviour of real routing daemons,
// which beacon as soon as they come up. It returns s for chaining.
func (s *Source) Immediate() *Source {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.immediate = true
	return s
}

func (s *Source) Name() string                     { return s.base.Name() }
func (s *Source) Provided() map[string]any         { return s.base.Provided() }
func (s *Source) ReceptacleNames() []string        { return s.base.ReceptacleNames() }
func (s *Source) Connect(r string, i any) error    { return s.base.Connect(r, i) }
func (s *Source) Disconnect(r string, i any) error { return s.base.Disconnect(r, i) }

// SetInterval retunes the firing cadence (used by e.g. fisheye variants).
func (s *Source) SetInterval(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.interval = d
	if s.periodic != nil {
		s.periodic.SetInterval(d)
	}
}

// Interval returns the current base interval.
func (s *Source) Interval() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.periodic != nil {
		return s.periodic.Interval()
	}
	return s.interval
}

func (s *Source) start(p *Protocol) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.periodic != nil {
		return
	}
	env := p.env
	if env == nil {
		return
	}
	seed := int64(env.Node.Uint32()) ^ int64(len(s.Name())<<16)
	fire := func() {
		p.section.Lock()
		defer p.section.Unlock()
		if !p.running() {
			return
		}
		s.fn(p.ctxFor(env))
	}
	s.periodic = vclock.NewPeriodic(env.Clock, s.interval, s.jitter, seed, fire)
	if s.immediate {
		s.kick = env.Clock.AfterFunc(0, fire)
	}
}

func (s *Source) stop() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.periodic != nil {
		s.periodic.Stop()
		s.periodic = nil
	}
	if s.kick != nil {
		s.kick.Stop()
		s.kick = nil
	}
}

// Stats counts a protocol's event activity.
type Stats struct {
	Delivered uint64 // events accepted
	Handled   uint64 // handler invocations
	Errors    uint64 // handler errors
}

// protoStats is the hot-path representation of Stats: per-event updates are
// single atomic ops, never mutex acquisitions. Handled is incremented after
// the handler returns, adjacent to Errors, so the two can no longer drift
// apart across separate lock acquisitions; Stats() loads Errors first, so a
// concurrent snapshot always observes Handled >= Errors.
type protoStats struct {
	delivered atomic.Uint64
	handled   atomic.Uint64
	errors    atomic.Uint64
}

// Protocol is the generic ManetProtocol CF (§4.2, Fig 3), instantiated and
// tailored per ad-hoc routing protocol. It hosts the protocol's plug-in
// Event Handlers and Event Sources, its Forward and State elements, and the
// ManetControl machinery: event registry (the tuple), demux, push/pop and
// lifecycle control. It is a CF, so its composition is policed by integrity
// rules (at most one C, F and S element) and reconfigurable at runtime.
type Protocol struct {
	cf      *kernel.CF
	section TicketMutex

	mu       sync.Mutex
	tuple    event.Tuple
	handlers []Handler
	sources  []*Source
	forward  kernel.Component
	state    kernel.Component
	env      *Env
	obs      *protoObs // rebuilt on Attach, nil when observability is off
	started  bool
	dedic    bool // prefer the thread-per-ManetProtocol model
	stats    protoStats

	// plan is the compiled demux state (pooled context, matched-handler
	// tables), rebuilt whenever the handler set or deployment changes and
	// read lock-free by Accept. Nil exactly when the protocol is unattached.
	plan atomic.Pointer[acceptPlan]

	// lifecycle hooks a concrete protocol installs
	onInit  func(ctx *Context) error
	onStart func(ctx *Context) error
	onStop  func(ctx *Context) error
}

var (
	_ Unit              = (*Protocol)(nil)
	_ kernel.Quiescable = (*Protocol)(nil)
)

// ErrNotDeployed is returned by lifecycle calls on an unattached protocol.
var ErrNotDeployed = errors.New("core: protocol not deployed")

// protocolSink adapts a Protocol to event.Sink with a comparable identity,
// as required for kernel binding bookkeeping.
type protocolSink struct{ p *Protocol }

var _ event.Sink = (*protocolSink)(nil)

// Deliver implements event.Sink.
func (s *protocolSink) Deliver(ev *event.Event) error { return s.p.Accept(ev) }

// NewProtocol creates an empty ManetProtocol CF with the standard integrity
// rules.
func NewProtocol(name string) *Protocol {
	p := &Protocol{}
	p.cf = kernel.NewCF(name,
		kernel.RuleSingleton("control element", func(c string) bool { return c == "control" }),
		kernel.RuleSingleton("forward element", func(c string) bool { return c == "forward" }),
		kernel.RuleSingleton("state element", func(c string) bool { return c == "state" }),
	)
	// The ManetControl C component: generic lifecycle operations (§4.2).
	control := kernel.NewBase("control")
	control.Provide("IControl", p)
	if err := p.cf.Insert(control); err != nil {
		panic(fmt.Sprintf("core: inserting control element: %v", err))
	}
	p.cf.Provide("IEventSink", &protocolSink{p: p})
	p.cf.Provide("IControl", p)
	p.cf.DefineMultiReceptacle("REvents", nil, nil)
	return p
}

// Name implements kernel.Component.
func (p *Protocol) Name() string { return p.cf.Name() }

// Provided implements kernel.Component.
func (p *Protocol) Provided() map[string]any { return p.cf.Provided() }

// ReceptacleNames implements kernel.Component.
func (p *Protocol) ReceptacleNames() []string { return p.cf.ReceptacleNames() }

// Connect implements kernel.Component.
func (p *Protocol) Connect(r string, impl any) error { return p.cf.Connect(r, impl) }

// Disconnect implements kernel.Component.
func (p *Protocol) Disconnect(r string, impl any) error { return p.cf.Disconnect(r, impl) }

// Provide exports an additional interface on the protocol boundary (e.g. a
// typed IState facade for direct calls from other protocols).
func (p *Protocol) Provide(name string, impl any) { p.cf.Provide(name, impl) }

// CF exposes the protocol's architecture meta-model (ICFMeta).
func (p *Protocol) CF() *kernel.CF { return p.cf }

// Section implements Unit.
func (p *Protocol) Section() *TicketMutex { return &p.section }

// Quiesce implements kernel.Quiescable by entering the protocol's critical
// section: any in-flight handler completes first, further event-shepherding
// threads queue behind the reconfiguration (§4.5).
func (p *Protocol) Quiesce() func() {
	p.section.Lock()
	return p.section.Unlock
}

// SetTuple declares the protocol's <required, provided> events. When the
// protocol is deployed, the Framework Manager re-derives the binding
// topology immediately (declarative reconfiguration, §4.5).
func (p *Protocol) SetTuple(t event.Tuple) {
	p.mu.Lock()
	p.tuple = t
	env := p.env
	p.mu.Unlock()
	if env != nil && env.retuple != nil {
		env.retuple(p.Name())
	}
}

// Tuple implements Unit.
func (p *Protocol) Tuple() event.Tuple {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tuple
}

// OnInit, OnStart and OnStop install lifecycle hooks (run inside the
// critical section).
func (p *Protocol) OnInit(fn func(*Context) error)  { p.mu.Lock(); p.onInit = fn; p.mu.Unlock() }
func (p *Protocol) OnStart(fn func(*Context) error) { p.mu.Lock(); p.onStart = fn; p.mu.Unlock() }
func (p *Protocol) OnStop(fn func(*Context) error)  { p.mu.Lock(); p.onStop = fn; p.mu.Unlock() }

// PreferDedicatedThread opts this protocol into the
// thread-per-ManetProtocol concurrency model, independent of the global
// model (§4.4).
func (p *Protocol) PreferDedicatedThread(on bool) {
	p.mu.Lock()
	p.dedic = on
	p.mu.Unlock()
}

func (p *Protocol) wantsDedicated() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dedic
}

// AddHandler plugs an event handler into the protocol.
func (p *Protocol) AddHandler(h Handler) error {
	if err := p.cf.Insert(h); err != nil {
		return err
	}
	p.mu.Lock()
	p.handlers = append(p.handlers, h)
	p.rebuildAcceptPlanLocked()
	p.mu.Unlock()
	return nil
}

// RemoveHandler unplugs the named handler.
func (p *Protocol) RemoveHandler(name string) error {
	if err := p.cf.Remove(name); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, h := range p.handlers {
		if h.Name() == name {
			p.handlers = append(p.handlers[:i], p.handlers[i+1:]...)
			break
		}
	}
	p.rebuildAcceptPlanLocked()
	return nil
}

// ReplaceHandler atomically swaps the named handler for h, quiescing the
// protocol first — the paper's fine-grained reconfiguration enactment.
func (p *Protocol) ReplaceHandler(name string, h Handler) error {
	resume := p.Quiesce()
	defer resume()
	if err := p.cf.Replace(name, h); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, old := range p.handlers {
		if old.Name() == name {
			p.handlers[i] = h
			p.rebuildAcceptPlanLocked()
			return nil
		}
	}
	p.handlers = append(p.handlers, h)
	p.rebuildAcceptPlanLocked()
	return nil
}

// Handlers returns the current handler plug-ins in registration order.
func (p *Protocol) Handlers() []Handler {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Handler(nil), p.handlers...)
}

// AddSource plugs in a timer-driven event source; it starts firing
// immediately if the protocol is already started.
func (p *Protocol) AddSource(s *Source) error {
	if err := p.cf.Insert(s); err != nil {
		return err
	}
	p.mu.Lock()
	p.sources = append(p.sources, s)
	started := p.started
	p.mu.Unlock()
	if started {
		s.start(p)
	}
	return nil
}

// RemoveSource stops and unplugs the named source.
func (p *Protocol) RemoveSource(name string) error {
	p.mu.Lock()
	var src *Source
	for i, s := range p.sources {
		if s.Name() == name {
			src = s
			p.sources = append(p.sources[:i], p.sources[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
	if src != nil {
		src.stop()
	}
	return p.cf.Remove(name)
}

// Source returns the named source plug-in.
func (p *Protocol) Source(name string) (*Source, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.sources {
		if s.Name() == name {
			return s, true
		}
	}
	return nil, false
}

// SetForward installs the protocol's F element (component name "forward").
func (p *Protocol) SetForward(c kernel.Component) error { return p.setElement("forward", c) }

// SetState installs the protocol's S element (component name "state").
// Passing the S element of a previous protocol instance implements the
// paper's state carry-over (§4.5).
func (p *Protocol) SetState(c kernel.Component) error { return p.setElement("state", c) }

func (p *Protocol) setElement(kind string, c kernel.Component) error {
	if c.Name() != kind {
		return fmt.Errorf("core: %s element must be named %q, got %q", kind, kind, c.Name())
	}
	p.mu.Lock()
	var cur kernel.Component
	if kind == "forward" {
		cur = p.forward
	} else {
		cur = p.state
	}
	p.mu.Unlock()

	var err error
	if cur != nil {
		resume := p.Quiesce()
		err = p.cf.Replace(kind, c)
		resume()
	} else {
		err = p.cf.Insert(c)
	}
	if err != nil {
		return err
	}
	p.mu.Lock()
	if kind == "forward" {
		p.forward = c
	} else {
		p.state = c
	}
	p.mu.Unlock()
	return nil
}

// DetachState removes and returns the S element so it can be carried over
// into a replacement protocol instance.
func (p *Protocol) DetachState() (kernel.Component, error) {
	p.mu.Lock()
	s := p.state
	p.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("%w: no state element", kernel.ErrNoComponent)
	}
	resume := p.Quiesce()
	defer resume()
	if err := p.cf.Remove("state"); err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.state = nil
	p.mu.Unlock()
	return s, nil
}

// StateElement returns the S element (nil if unset).
func (p *Protocol) StateElement() kernel.Component {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// ForwardElement returns the F element (nil if unset).
func (p *Protocol) ForwardElement() kernel.Component {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.forward
}

// Attach implements Unit.
func (p *Protocol) Attach(env *Env) {
	p.mu.Lock()
	p.env = env
	p.obs = newProtoObs(env)
	p.rebuildAcceptPlanLocked()
	p.mu.Unlock()
}

// Detach implements Unit.
func (p *Protocol) Detach() {
	p.Stop()
	p.mu.Lock()
	p.env = nil
	p.obs = nil
	p.rebuildAcceptPlanLocked()
	p.mu.Unlock()
}

// Deployed reports whether the protocol is attached to a Manager.
func (p *Protocol) Deployed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.env != nil
}

func (p *Protocol) running() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.started
}

// Init runs the protocol's initialisation hook (IControl.init).
func (p *Protocol) Init() error {
	p.mu.Lock()
	env, fn := p.env, p.onInit
	p.mu.Unlock()
	if env == nil {
		return ErrNotDeployed
	}
	if fn == nil {
		return nil
	}
	p.section.Lock()
	defer p.section.Unlock()
	return fn(&Context{proto: p, env: env})
}

// Start begins protocol execution: the start hook runs and the event
// sources begin firing.
func (p *Protocol) Start() error {
	p.mu.Lock()
	if p.env == nil {
		p.mu.Unlock()
		return ErrNotDeployed
	}
	if p.started {
		p.mu.Unlock()
		return nil
	}
	p.started = true
	env := p.env
	fn := p.onStart
	sources := append([]*Source(nil), p.sources...)
	p.mu.Unlock()

	if fn != nil {
		p.section.Lock()
		err := fn(&Context{proto: p, env: env})
		p.section.Unlock()
		if err != nil {
			p.mu.Lock()
			p.started = false
			p.mu.Unlock()
			return err
		}
	}
	for _, s := range sources {
		s.start(p)
	}
	return nil
}

// Stop halts the sources and runs the stop hook. Stop is idempotent.
func (p *Protocol) Stop() {
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return
	}
	p.started = false
	env := p.env
	fn := p.onStop
	sources := append([]*Source(nil), p.sources...)
	p.mu.Unlock()

	for _, s := range sources {
		s.stop()
	}
	if fn != nil && env != nil {
		p.section.Lock()
		defer p.section.Unlock()
		_ = fn(&Context{proto: p, env: env})
	}
}

// Started reports whether the protocol is running.
func (p *Protocol) Started() bool { return p.running() }

// Tracing reports whether the deployment this protocol is attached to
// records trace spans — the gate for optional per-message work (such as
// correlation-ID derivation) that only pays off when a tracer will see it.
// Lock-free: hot paths consult it per message.
func (p *Protocol) Tracing() bool {
	plan := p.plan.Load()
	return plan != nil && plan.env.tracer != nil
}

// Clock returns the deployment clock, or nil before the protocol is
// deployed.
func (p *Protocol) Clock() vclock.Clock {
	if plan := p.plan.Load(); plan != nil {
		return plan.env.Clock
	}
	return nil
}

// Emit pushes an event from this protocol into the framework from outside a
// handler — the ManetControl push operation (IPush). Used by components that
// receive stimuli from below the framework, such as the System CF's network
// driver upcall. Lock-free: the deployment environment rides the published
// accept plan.
func (p *Protocol) Emit(ev *event.Event) error {
	plan := p.plan.Load()
	if plan == nil {
		return ErrNotDeployed
	}
	plan.env.Emit(p.Name(), ev)
	return nil
}

// RunLocked executes fn inside the protocol's critical section with a
// deployment context. Timer callbacks (e.g. route-discovery retries) use it
// to interact with protocol state under the same atomicity guarantee as
// event handlers.
func (p *Protocol) RunLocked(fn func(*Context)) error {
	plan := p.plan.Load()
	if plan == nil {
		return ErrNotDeployed
	}
	p.section.Lock()
	defer p.section.Unlock()
	fn(plan.ctx)
	return nil
}

// Accept implements Unit: the demux dispatches the event to every handler
// whose pattern matches. The Framework Manager holds the critical section
// when calling Accept, so handler execution is atomic. The steady-state path
// reads only the published plan: no p.mu, no handler-slice copy, no
// per-handler ontology walk, no Context allocation.
//
//mk:hotpath
func (p *Protocol) Accept(ev *event.Event) error {
	plan := p.plan.Load()
	if plan == nil {
		return ErrNotDeployed
	}
	if plan.ontVersion != plan.ont.Version() {
		// RegisterType re-shaped the hierarchy since compilation; the
		// matched-handler tables may be stale. Rare, so recompile here.
		//mk:allow hotalloc lazy plan recompile after an ontology reshape — reconfiguration-class work, not steady-state dispatch
		if plan = p.rebuildAcceptPlan(); plan == nil {
			return ErrNotDeployed
		}
	}
	p.stats.delivered.Add(1)
	var errs []error
	if matched, ok := plan.byType[ev.Type]; ok {
		for _, h := range matched {
			errs = p.runHandler(plan, h, ev, errs)
		}
	} else {
		// Type unknown to the ontology at compile time: match on the fly
		// (identity and Any still apply; Matches is lock-free).
		for _, h := range plan.handlers {
			if !plan.ont.Matches(ev.Type, h.Pattern()) {
				continue
			}
			errs = p.runHandler(plan, h, ev, errs)
		}
	}
	return errors.Join(errs...)
}

// runHandler invokes one matched handler with the plan's pooled context and
// settles the per-event counters: Handled is counted when the handler
// returns, immediately followed by Errors on failure.
//
//mk:hotpath
func (p *Protocol) runHandler(plan *acceptPlan, h Handler, ev *event.Event, errs []error) []error {
	obs := plan.obs
	if obs != nil && obs.tracer != nil {
		obs.tracer.Record(plan.env.Clock.Now(), trace.Span{
			Node: obs.nodeStr, Kind: trace.KindHandle,
			Event: string(ev.Type), To: p.Name(), Handler: h.Name(),
			Corr: ev.Corr,
		})
	}
	var err error
	if obs != nil && obs.handlerLat != nil {
		clk := plan.env.Clock
		start := clk.Now()
		err = h.Handle(plan.ctx, ev)
		obs.handlerLat.Observe(clk.Now().Sub(start))
	} else {
		err = h.Handle(plan.ctx, ev)
	}
	p.stats.handled.Add(1)
	if err != nil {
		p.stats.errors.Add(1)
		//mk:allow hotalloc error path is cold; the success path allocates nothing
		errs = append(errs, fmt.Errorf("handler %q: %w", h.Name(), err))
	}
	return errs
}

// Stats returns a snapshot of the protocol's event counters. Errors is
// loaded before Handled, so the snapshot never shows an error without its
// handler invocation.
func (p *Protocol) Stats() Stats {
	e := p.stats.errors.Load()
	h := p.stats.handled.Load()
	d := p.stats.delivered.Load()
	return Stats{Delivered: d, Handled: h, Errors: e}
}

// Reconfigure quiesces the protocol and runs fn — arbitrary fine-grained
// reconfiguration under mutual exclusion with event processing.
func (p *Protocol) Reconfigure(fn func() error) error {
	resume := p.Quiesce()
	defer resume()
	return fn()
}

// String renders a short diagnostic description.
func (p *Protocol) String() string {
	t := p.Tuple()
	var req, prov []string
	for _, r := range t.Required {
		s := string(r.Type)
		if r.Exclusive {
			s += "!"
		}
		req = append(req, s)
	}
	for _, pr := range t.Provided {
		prov = append(prov, string(pr))
	}
	return fmt.Sprintf("%s<req:%s prov:%s>", p.Name(), strings.Join(req, ","), strings.Join(prov, ","))
}
