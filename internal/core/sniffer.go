package core

import (
	"fmt"

	"manetkit/internal/event"
)

// NewSniffer builds a diagnostic unit that observes every event flowing
// through the deployment it is deployed into — the packet-capture analogue
// at the framework layer. It declares a required-events set of just
// event.Any, so the ontology routes every concrete type to it; it provides
// nothing, so it never perturbs the topology.
//
// fn runs inside the sniffer's own critical section (not the observed
// protocols'), so a slow observer cannot distort protocol atomicity —
// though under the single-threaded model it still shares the one delivery
// thread.
func NewSniffer(name string, fn func(ev *event.Event)) (*Protocol, error) {
	if name == "" {
		name = "sniffer"
	}
	p := NewProtocol(name)
	p.SetTuple(event.Tuple{Required: []event.Requirement{{Type: event.Any}}})
	if err := p.AddHandler(NewHandler(name+"-tap", event.Any, func(ctx *Context, ev *event.Event) error {
		fn(ev)
		return nil
	})); err != nil {
		return nil, fmt.Errorf("core: sniffer handler: %w", err)
	}
	return p, nil
}
