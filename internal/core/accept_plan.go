package core

import (
	"manetkit/internal/event"
)

// acceptPlan is the Protocol-side half of the RCU dispatch design: everything
// Accept needs per event — the environment, the instrument bundle, a pooled
// Context, the handler list and per-event-type matched-handler tables — is
// compiled whenever the handler set or deployment changes and published via
// atomic.Pointer. The demux then runs without p.mu, without copying the
// handler slice, and without re-matching patterns against the ontology.
type acceptPlan struct {
	env *Env
	obs *protoObs
	// ctx is the pooled handler context; it is immutable (protocol + env),
	// so one value serves every delivery under this plan.
	ctx *Context
	ont *event.Ontology
	// ontVersion pins the ontology revision byType was computed against;
	// Accept rebuilds lazily when RegisterType has re-shaped the hierarchy.
	ontVersion uint64
	// handlers is the registration-order handler list, for events whose type
	// the ontology has never seen (matched by identity/Any on the fly).
	handlers []Handler
	// byType maps every ontology-known event type to the handlers whose
	// pattern it matches, in registration order.
	byType map[event.Type][]Handler
}

// rebuildAcceptPlan recompiles and publishes the accept plan; it returns the
// new plan (nil when the protocol is not deployed).
func (p *Protocol) rebuildAcceptPlan() *acceptPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rebuildAcceptPlanLocked()
}

func (p *Protocol) rebuildAcceptPlanLocked() *acceptPlan {
	if p.env == nil {
		p.plan.Store(nil)
		return nil
	}
	ont := p.env.Ontology
	plan := &acceptPlan{
		env:        p.env,
		obs:        p.obs,
		ctx:        &Context{proto: p, env: p.env},
		ont:        ont,
		ontVersion: ont.Version(),
		handlers:   append([]Handler(nil), p.handlers...),
	}
	types := ont.Types()
	plan.byType = make(map[event.Type][]Handler, len(types))
	for _, t := range types {
		var matched []Handler
		for _, h := range plan.handlers {
			if ont.Matches(t, h.Pattern()) {
				matched = append(matched, h)
			}
		}
		plan.byType[t] = matched
	}
	p.plan.Store(plan)
	return plan
}

// ctxFor returns the plan's pooled Context when it belongs to env, avoiding a
// per-call allocation on timer and lifecycle paths.
//
//mk:hotpath
func (p *Protocol) ctxFor(env *Env) *Context {
	if plan := p.plan.Load(); plan != nil && plan.env == env {
		return plan.ctx
	}
	//mk:allow hotalloc cold fallback: only reached mid-rewire when the plan is stale
	return &Context{proto: p, env: env}
}
