package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"manetkit/internal/event"
	"manetkit/internal/mnet"
	"manetkit/internal/vclock"
)

// TestDeliveryInvariantsProperty checks the Framework Manager's §4.2
// semantics over randomly generated deployments:
//
//  1. an emitted event reaches every unit whose tuple requires its type
//     (directly or via the ontology) exactly once — unless an interposer
//     drops it or an exclusive requirer shadows the rest;
//  2. no unit receives an event type its tuple does not require;
//  3. interposers (provide+require) see the event before pure requirers.
func TestDeliveryInvariantsProperty(t *testing.T) {
	concrete := []event.Type{event.HelloIn, event.TCIn, event.TCOut, event.REIn, event.PowerStatus}

	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clk := vclock.NewVirtual(epoch)
		mgr, err := NewManager(Config{Node: mnet.MustParseAddr("10.0.0.1"), Clock: clk})
		if err != nil {
			t.Fatal(err)
		}
		defer mgr.Close()

		ont := mgr.Ontology()
		type unitSpec struct {
			proto *Protocol
			tuple event.Tuple
		}
		var units []unitSpec
		var mu sync.Mutex
		received := make(map[string][]event.Type) // unit -> events seen
		order := make(map[event.Type][]string)    // per emission: arrival order

		nUnits := 2 + rng.Intn(5)
		for i := 0; i < nUnits; i++ {
			name := fmt.Sprintf("u%d", i)
			tp := event.Tuple{}
			for _, c := range concrete {
				r := rng.Intn(10)
				if r < 3 {
					tp.Required = append(tp.Required, event.Requirement{Type: c})
				}
				if r >= 8 {
					tp.Provided = append(tp.Provided, c)
				}
				// 1-in-10: interposer for this type.
				if r == 7 {
					tp.Required = append(tp.Required, event.Requirement{Type: c})
					tp.Provided = append(tp.Provided, c)
				}
			}
			p := NewProtocol(name)
			p.SetTuple(tp)
			spec := unitSpec{proto: p, tuple: tp}
			name = p.Name()
			p.AddHandler(NewHandler(name+"-h", event.Any, func(ctx *Context, ev *event.Event) error {
				mu.Lock()
				received[name] = append(received[name], ev.Type)
				order[ev.Type] = append(order[ev.Type], name)
				mu.Unlock()
				// Interposers must re-emit to keep the chain flowing.
				if spec.tuple.Provides(ev.Type) && spec.tuple.Requires(ont, ev.Type) {
					ctx.Emit(ev)
				}
				return nil
			}))
			if err := mgr.Deploy(p); err != nil {
				t.Fatal(err)
			}
			units = append(units, spec)
		}
		// One dedicated emitter providing everything.
		emitter := NewProtocol("emitter")
		emitter.SetTuple(event.Tuple{Provided: concrete})
		if err := mgr.Deploy(emitter); err != nil {
			t.Fatal(err)
		}

		for _, typ := range concrete {
			mu.Lock()
			received = make(map[string][]event.Type)
			order = make(map[event.Type][]string)
			mu.Unlock()
			if err := emitter.Emit(&event.Event{Type: typ, Time: clk.Now()}); err != nil {
				t.Fatal(err)
			}
			mgr.WaitIdle()

			interposers, terminals := mgr.Chain(typ)
			isInterposer := make(map[string]bool)
			for _, n := range interposers {
				isInterposer[n] = true
			}
			isTerminal := make(map[string]bool)
			for _, n := range terminals {
				isTerminal[n] = true
			}
			mu.Lock()
			for _, u := range units {
				got := 0
				for _, rt := range received[u.proto.Name()] {
					if rt == typ {
						got++
					}
				}
				name := u.proto.Name()
				switch {
				case isInterposer[name]:
					if got != 1 {
						t.Errorf("seed %d type %s: interposer %s saw %d", seed, typ, name, got)
					}
				case isTerminal[name]:
					if got != 1 {
						t.Errorf("seed %d type %s: terminal %s saw %d", seed, typ, name, got)
					}
				default:
					if got != 0 {
						t.Errorf("seed %d type %s: non-requirer %s saw %d", seed, typ, name, got)
					}
				}
			}
			// Interposers appear in the arrival order before any terminal.
			seq := order[typ]
			lastInterposer, firstTerminal := -1, len(seq)
			for i, n := range seq {
				if isInterposer[n] && i > lastInterposer {
					lastInterposer = i
				}
				if isTerminal[n] && i < firstTerminal {
					firstTerminal = i
				}
			}
			if lastInterposer >= 0 && firstTerminal < lastInterposer {
				t.Errorf("seed %d type %s: terminal before interposer in %v", seed, typ, seq)
			}
			mu.Unlock()
		}
		return !t.Failed()
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// TestRewireIdempotentProperty: re-deriving the topology without tuple
// changes never alters the reflective binding set.
func TestRewireIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mgr, err := NewManager(Config{Node: mnet.MustParseAddr("10.0.0.1"), Clock: vclock.NewVirtual(epoch)})
		if err != nil {
			t.Fatal(err)
		}
		defer mgr.Close()
		concrete := []event.Type{event.HelloIn, event.TCOut, event.NoRoute}
		for i := 0; i < 2+rng.Intn(4); i++ {
			p := NewProtocol(fmt.Sprintf("u%d", i))
			tp := event.Tuple{}
			for _, c := range concrete {
				if rng.Intn(2) == 0 {
					tp.Required = append(tp.Required, event.Requirement{Type: c})
				}
				if rng.Intn(2) == 0 {
					tp.Provided = append(tp.Provided, c)
				}
			}
			p.SetTuple(tp)
			if err := mgr.Deploy(p); err != nil {
				t.Fatal(err)
			}
		}
		before := fmt.Sprint(mgr.CF().Arch())
		mgr.Rewire()
		mgr.Rewire()
		return fmt.Sprint(mgr.CF().Arch()) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
