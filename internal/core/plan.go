package core

import "manetkit/internal/event"

// The dispatch plan is the RCU half of the Framework Manager: every topology
// mutation (Deploy, Undeploy, Rewire, SetTuple, concurrency-model changes
// funnelled through Rewire) compiles the derived chains into an immutable
// plan and publishes it via atomic.Pointer. The steady-state emit path then
// routes with two map probes over immutable data — no manager mutex, no
// per-emission target-list rebuild — while reconfiguration stays correct
// because a plan is never mutated after publication: readers see either the
// whole old topology or the whole new one.

// typePlan is the compiled route for one concrete event type. Routing
// depends on the emitter (its position in the interposer chain, and the
// skip-self rule at the terminal stage), so the target list is resolved per
// deployed emitter at compile time; emitters the deployment has never heard
// of (context pollers, tests) use the default route, which is the route for
// an emitter that appears nowhere in the chain.
type typePlan struct {
	perFrom map[string][]*unitRec
	def     []*unitRec
}

// dispatchPlan is one immutable compilation of the whole event topology.
type dispatchPlan struct {
	byType map[event.Type]*typePlan
}

// emptyPlan routes nothing; it is published at construction so emit never
// sees a nil plan.
var emptyPlan = &dispatchPlan{byType: map[event.Type]*typePlan{}}

// buildPlanLocked compiles m.chains into a fresh dispatch plan. Callers hold
// m.mu, so the chains, unit records and deployment order are a consistent
// snapshot.
func (m *Manager) buildPlanLocked() *dispatchPlan {
	plan := &dispatchPlan{byType: make(map[event.Type]*typePlan, len(m.chains))}
	for t, ch := range m.chains {
		tp := &typePlan{
			perFrom: make(map[string][]*unitRec, len(m.order)),
			def:     m.routeLocked(ch, ""),
		}
		for _, name := range m.order {
			tp.perFrom[name] = m.routeLocked(ch, name)
		}
		plan.byType[t] = tp
	}
	return plan
}

// routeLocked resolves the delivery targets for one chain as seen by the
// named emitter — the same decision emit used to make per event, hoisted to
// compile time: the next interposer after the emitter if any remain,
// otherwise the terminal stage (exclusive receive already resolved, the
// emitter itself already skipped).
func (m *Manager) routeLocked(ch *chain, from string) []*unitRec {
	next := 0
	for i, name := range ch.interposers {
		if name == from {
			next = i + 1
			break
		}
	}
	if next < len(ch.interposers) {
		if rec := m.units[ch.interposers[next]]; rec != nil {
			return []*unitRec{rec}
		}
		// Interposer without a unit record: nothing to deliver to. The
		// empty route makes emit account the loss as a drop (with a drop
		// span) instead of losing the event silently.
		return nil
	}
	var targets []*unitRec
	for _, term := range ch.terminals {
		if term.name == from {
			continue
		}
		if term.exclusive {
			if rec := m.units[term.name]; rec != nil {
				targets = []*unitRec{rec}
			}
			break
		}
	}
	if targets == nil {
		for _, term := range ch.terminals {
			if term.name == from {
				continue
			}
			if rec := m.units[term.name]; rec != nil {
				targets = append(targets, rec)
			}
		}
	}
	return targets
}
