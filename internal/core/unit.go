// Package core is MANETKit itself (§4 of the paper): the MANETKit CF and
// its Framework Manager, the generic ManetProtocol CF with its ManetControl
// machinery (event registry, demux, event sources and handlers, push/pop),
// the automatic event-tuple composition mechanism, the pluggable
// concurrency models, and reconfiguration enactment.
//
// The composition model is two-level:
//
//   - Coarse grained: CFS units (protocol implementations and the System
//     CF) declare <required-events, provided-events> tuples; the Framework
//     Manager derives and maintains the binding topology from them (§4.2),
//     including broadcast fan-out, exclusive receive and interposition of
//     units that both provide and require an event type.
//
//   - Fine grained: within a ManetProtocol CF, Control/Forward/State
//     elements and plug-in Event Handlers/Sources are OpenCom components
//     that can be inspected and swapped at runtime (§4.5).
package core

import (
	"manetkit/internal/event"
	"manetkit/internal/kernel"
	"manetkit/internal/metrics"
	"manetkit/internal/mnet"
	"manetkit/internal/trace"
	"manetkit/internal/vclock"
)

// Unit is a CFS unit participating in event-tuple composition: every
// ManetProtocol CF and the System CF are Units. A Unit is an OpenCom
// component, declares an event tuple, processes events delivered to it,
// and exposes the critical section the Framework Manager serialises
// delivery and reconfiguration through.
type Unit interface {
	kernel.Component

	// Tuple returns the unit's current <required, provided> declaration.
	Tuple() event.Tuple
	// Accept processes one event. The Framework Manager calls it with the
	// unit's critical section held, so implementations are single-threaded.
	Accept(ev *event.Event) error
	// Section returns the unit's critical-section mutex.
	Section() *TicketMutex
	// Attach is called when the unit is deployed into a Manager, giving it
	// its emission path; Detach on undeployment.
	Attach(env *Env)
	Detach()
}

// Env is the deployment environment a Manager hands to its units: identity,
// time, and the emission path back into the framework.
type Env struct {
	// Node is the local node address.
	Node mnet.Addr
	// Clock is the deployment's time source.
	Clock vclock.Clock
	// Ontology is the deployment's event-type hierarchy.
	Ontology *event.Ontology
	// emit routes an event from the named unit through the framework.
	emit func(from string, ev *event.Event)
	// unit resolves co-deployed units for direct calls (§4.2: "out of
	// band" interaction via the interface meta-model).
	unit func(name string) (Unit, bool)
	// retuple notifies the Framework Manager that the named unit's event
	// tuple changed, triggering automatic re-derivation of the topology.
	retuple func(name string)
	// metrics and tracer carry the Manager's observability sinks into the
	// deployed units; both are nil when observability is disabled.
	metrics *metrics.Registry
	tracer  *trace.Tracer
}

// Metrics returns the deployment's metrics registry (nil when disabled; a
// nil registry hands out nil no-op instruments).
func (e *Env) Metrics() *metrics.Registry { return e.metrics }

// Tracer returns the deployment's span tracer (nil when disabled).
func (e *Env) Tracer() *trace.Tracer { return e.tracer }

// Emit routes ev from the unit named from through the Framework Manager's
// binding topology. When tracing is enabled and the event carries a
// PacketBB message without an explicit correlation ID (forwarded or
// received messages), the ID is derived here from the message identity so
// every span downstream carries it; the tracer gate keeps the disabled
// path allocation-free.
//
//mk:hotpath
func (e *Env) Emit(from string, ev *event.Event) {
	if ev.Time.IsZero() {
		ev.Time = e.Clock.Now()
	}
	if e.tracer != nil && ev.Corr == "" && ev.Msg != nil {
		//mk:allow hotalloc corr-ID derivation is tracer-gated; the det(0) config runs with tracing disabled
		ev.Corr = ev.Msg.CorrID()
	}
	e.emit(from, ev)
}

// Unit resolves a co-deployed unit by name for direct calls.
func (e *Env) Unit(name string) (Unit, bool) { return e.unit(name) }

// QueryUnit finds interface T on a co-deployed unit via the interface
// meta-model — the paper's direct-call path for e.g. reading another
// protocol's State element.
func QueryUnit[T any](e *Env, name string) (T, bool) {
	var zero T
	u, ok := e.unit(name)
	if !ok {
		return zero, false
	}
	return kernel.Query[T](u)
}
