package core

import (
	"sync"

	"manetkit/internal/event"
	"manetkit/internal/queue"
)

// dedicatedRunner implements the thread-per-ManetProtocol model (§4.4): a
// goroutine owned by one unit drains a FIFO of waiting events, so a thread
// passing an event from a lower layer returns immediately after the
// hand-off.
type dedicatedRunner struct {
	m    *Manager
	unit Unit
	q    *queue.FIFO[*event.Event]

	mu   sync.Mutex
	idle sync.Cond
	busy int // queued + executing
	done chan struct{}
}

func newDedicatedRunner(m *Manager, u Unit, bound int) *dedicatedRunner {
	d := &dedicatedRunner{
		m:    m,
		unit: u,
		q:    queue.NewFIFO[*event.Event](bound),
		done: make(chan struct{}),
	}
	d.idle.L = &d.mu
	go d.run()
	return d
}

func (d *dedicatedRunner) run() {
	defer close(d.done)
	for {
		ev, err := d.q.Pop()
		if err != nil {
			return
		}
		d.m.runAccept(d.unit, ev)
		d.mu.Lock()
		d.busy--
		if d.busy == 0 {
			d.idle.Broadcast()
		}
		d.mu.Unlock()
	}
}

// enqueue hands off an event; it reports false when the queue rejected it.
func (d *dedicatedRunner) enqueue(ev *event.Event) bool {
	d.mu.Lock()
	d.busy++
	d.mu.Unlock()
	if err := d.q.Push(ev); err != nil {
		d.mu.Lock()
		d.busy--
		if d.busy == 0 {
			d.idle.Broadcast()
		}
		d.mu.Unlock()
		return false
	}
	return true
}

// waitIdle blocks until the queue is drained and no event is executing.
func (d *dedicatedRunner) waitIdle() {
	d.mu.Lock()
	for d.busy > 0 {
		d.idle.Wait()
	}
	d.mu.Unlock()
}

// stop closes the queue and waits for the runner goroutine to exit.
func (d *dedicatedRunner) stop() {
	d.q.Close()
	<-d.done
}
