package core

import (
	"testing"

	"manetkit/internal/event"
)

func TestSnifferSeesEverything(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	src := newRecorder(t, "src", event.Tuple{Provided: []event.Type{event.HelloIn, event.TCOut, event.PowerStatus}})
	sink := newRecorder(t, "sink", event.Tuple{Required: []event.Requirement{{Type: event.HelloIn}}})
	var seen []event.Type
	sniff, err := NewSniffer("", func(ev *event.Event) { seen = append(seen, ev.Type) })
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []*Protocol{src.p, sink.p, sniff} {
		if err := m.Deploy(u); err != nil {
			t.Fatal(err)
		}
	}
	for _, typ := range []event.Type{event.HelloIn, event.TCOut, event.PowerStatus} {
		emitFrom(t, m, "src", &event.Event{Type: typ})
	}
	if len(seen) != 3 {
		t.Fatalf("sniffer saw %v", seen)
	}
	// The regular requirer still got its event (sniffing is passive).
	if len(sink.events()) != 1 {
		t.Fatalf("sink got %v", sink.events())
	}
	// The sniffer provides nothing: no chain treats it as a provider.
	if inter, _ := m.Chain(event.HelloIn); len(inter) != 0 {
		t.Fatalf("sniffer interposed: %v", inter)
	}
}

func TestSnifferDoesNotReceiveOwnName(t *testing.T) {
	m, _ := newMgr(t, SingleThreaded)
	sniff, err := NewSniffer("custom-tap", func(*event.Event) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy(sniff); err != nil {
		t.Fatal(err)
	}
	if sniff.Name() != "custom-tap" {
		t.Fatalf("Name = %q", sniff.Name())
	}
}
